package harmonia

import (
	"math"
	"sync"
	"testing"
)

// Share one System across API tests; predictor training is the expensive
// part.
var (
	sysOnce sync.Once
	sys     *System
)

func system() *System {
	sysOnce.Do(func() {
		sys = NewSystem()
		sys.Predictor()
	})
	return sys
}

func TestSuiteAccessors(t *testing.T) {
	if got := len(Suite()); got != 14 {
		t.Errorf("Suite has %d apps, want 14", got)
	}
	if App("Graph500") == nil || App("nope") != nil {
		t.Error("App lookup broken")
	}
	if got := len(AllKernels()); got < 24 {
		t.Errorf("AllKernels = %d", got)
	}
	if got := len(ConfigSpace()); got != 448 {
		t.Errorf("ConfigSpace = %d, want 448", got)
	}
}

func TestEndToEndHarmoniaBeatsBaseline(t *testing.T) {
	s := system()
	app := App("Sort")
	base, err := s.Run(app, s.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	hm, err := s.Run(App("Sort"), s.Harmonia())
	if err != nil {
		t.Fatal(err)
	}
	gain := Improvement(base.ED2(), hm.ED2())
	if gain < 0.05 {
		t.Errorf("Harmonia ED2 gain on Sort = %.1f%%, want >5%%", gain*100)
	}
	// Performance essentially preserved.
	if slow := hm.TotalTime()/base.TotalTime() - 1; slow > 0.02 {
		t.Errorf("Harmonia slowed Sort by %.1f%%", slow*100)
	}
}

func TestOracleUpperBound(t *testing.T) {
	s := system()
	app := App("miniFE")
	base, err := s.Run(app, s.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	or, err := s.Run(App("miniFE"), s.Oracle(App("miniFE")))
	if err != nil {
		t.Fatal(err)
	}
	hm, err := s.Run(App("miniFE"), s.Harmonia())
	if err != nil {
		t.Fatal(err)
	}
	if or.ED2() > base.ED2() {
		t.Error("oracle worse than baseline")
	}
	if or.ED2() > hm.ED2()*1.02 {
		t.Error("oracle worse than Harmonia")
	}
}

func TestCGOnlyAndComputeOnlyPolicies(t *testing.T) {
	s := system()
	if s.CGOnly().Name() != "harmonia-cg" {
		t.Error("CGOnly name wrong")
	}
	if s.ComputeDVFSOnly().Name() != "compute-dvfs-only" {
		t.Error("ComputeDVFSOnly name wrong")
	}
	rep, err := s.Run(App("SRAD"), s.ComputeDVFSOnly())
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if run.Config.Compute.CUs != 32 || run.Config.Memory.BusFreq != 1375 {
			t.Fatalf("compute-only touched CUs/memory: %v", run.Config)
		}
	}
}

func TestFixedPolicy(t *testing.T) {
	s := system()
	cfg := MinConfig()
	rep, err := s.Run(App("MaxFlops"), s.Fixed(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if run.Config != cfg {
			t.Fatalf("fixed policy deviated: %v", run.Config)
		}
	}
}

func TestHarmoniaWithOptions(t *testing.T) {
	s := system()
	c := s.HarmoniaWith(ControllerOptions{Tunables: []Tunable{TunableMemFreq}})
	rep, err := s.Run(App("CoMD"), c)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if run.Config.Compute != MaxConfig().Compute {
			t.Fatalf("mem-only controller changed compute: %v", run.Config)
		}
	}
}

func TestTrainPredictorOnSubset(t *testing.T) {
	s := NewSystem() // fresh: avoid contaminating the shared predictor
	kernels := App("CoMD").Kernels
	p, err := s.TrainPredictor(kernels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bandwidth == nil || p.Compute == nil {
		t.Fatal("incomplete predictor")
	}
	s.UsePredictor(p)
	if s.Predictor() != p {
		t.Error("UsePredictor not honored")
	}
}

func TestPaperTable3Reference(t *testing.T) {
	p := PaperTable3()
	if p.Bandwidth.Intercept != -0.42 || p.Compute.Intercept != 0.06 {
		t.Error("paper coefficients wrong")
	}
}

func TestHelperMath(t *testing.T) {
	if got := Improvement(100, 88); math.Abs(got-0.12) > 1e-12 {
		t.Errorf("Improvement = %v", got)
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
}

func TestLabFacade(t *testing.T) {
	s := system()
	lab := s.Lab()
	if lab == nil || lab.Sim != s.Sim || lab.Power != s.Power {
		t.Error("Lab not sharing system models")
	}
}

func TestConfigHelpers(t *testing.T) {
	if MaxConfig().Compute.CUs != 32 || MinConfig().Compute.CUs != 4 {
		t.Error("config helpers wrong")
	}
	if MaxConfig().OpsPerByte() <= MinConfig().OpsPerByte() {
		t.Error("ops/byte ordering wrong")
	}
}
