package harmonia

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPowerTunePolicyThroughAPI(t *testing.T) {
	s := system()
	// Stock cap: no throttling, identical to baseline.
	rep, err := s.Run(App("Stencil"), s.PowerTune(250))
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.Run(App("Stencil"), s.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTime() > base.TotalTime()*1.001 {
		t.Errorf("PowerTune@250W slower than baseline: %v vs %v", rep.TotalTime(), base.TotalTime())
	}
	// Tight cap: throttling.
	capped, err := s.Run(App("Stencil"), s.PowerTune(110))
	if err != nil {
		t.Fatal(err)
	}
	if capped.AveragePower() >= base.AveragePower() {
		t.Error("110W cap did not reduce power")
	}
	if capped.TotalTime() <= base.TotalTime() {
		t.Error("110W cap came for free; expected throttling cost")
	}
}

func TestAnalyzeThroughAPI(t *testing.T) {
	s := system()
	var mf *Kernel
	for _, k := range AllKernels() {
		if k.Name == "MaxFlops.Main" {
			mf = k
		}
	}
	p := s.Analyze(mf, 0, MaxConfig())
	if p.Boundedness.String() != "compute-bound" {
		t.Errorf("MaxFlops boundedness = %v", p.Boundedness)
	}
	if p.Efficiency() <= 0 || p.Efficiency() > 1.05 {
		t.Errorf("efficiency = %v", p.Efficiency())
	}
}

func TestBalancedConfigsThroughAPI(t *testing.T) {
	s := system()
	var dm *Kernel
	for _, k := range AllKernels() {
		if k.Name == "DeviceMemory.Stream" {
			dm = k
		}
	}
	cfgs := s.BalancedConfigs(dm, 0)
	if len(cfgs) == 0 {
		t.Fatal("no balanced configs")
	}
	for _, c := range cfgs {
		if !c.Valid() {
			t.Fatalf("invalid config %v", c)
		}
	}
}

func powerActivity() Activity {
	return Activity{VALUBusyFrac: 0.6, MemUnitBusyFrac: 0.7, AchievedGBs: 80}
}

func TestMemVoltageScalingThroughAPI(t *testing.T) {
	s := NewSystem()
	fixedRails := s.Power.Rails(Config{
		Compute: ComputeConfig{CUs: 32, Freq: 1000},
		Memory:  MemConfig{BusFreq: 475},
	}, powerActivity())
	s.EnableMemVoltageScaling()
	scaledRails := s.Power.Rails(Config{
		Compute: ComputeConfig{CUs: 32, Freq: 1000},
		Memory:  MemConfig{BusFreq: 475},
	}, powerActivity())
	if scaledRails.Mem >= fixedRails.Mem {
		t.Errorf("voltage scaling did not reduce memory power: %v vs %v",
			scaledRails.Mem, fixedRails.Mem)
	}
}

func TestExportThroughAPI(t *testing.T) {
	s := system()
	rep, err := s.Run(App("XSBench"), s.Baseline())
	if err != nil {
		t.Fatal(err)
	}

	var jsonBuf bytes.Buffer
	if err := WriteReportJSON(&jsonBuf, rep); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(jsonBuf.Bytes()) {
		t.Error("invalid JSON output")
	}

	var csvBuf bytes.Buffer
	if err := WriteRunsCSV(&csvBuf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(csvBuf.String(), "\n")
	if lines != len(rep.Runs)+1 {
		t.Errorf("CSV lines = %d, want %d", lines, len(rep.Runs)+1)
	}

	var traceBuf bytes.Buffer
	if err := WriteTraceCSV(&traceBuf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(traceBuf.String(), "time_s,") {
		t.Error("trace CSV header missing")
	}
}

func TestKernelBuilderThroughAPI(t *testing.T) {
	s := system()
	k, err := StreamingKernel("Api.Stream").Grid(256, 2000).Build()
	if err != nil {
		t.Fatal(err)
	}
	p := s.Analyze(k, 0, MaxConfig())
	if p.Boundedness.String() != "memory-bound" {
		t.Errorf("streaming template boundedness = %v", p.Boundedness)
	}
	c, err := ComputeHeavyKernel("Api.Flops").Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Analyze(c, 0, MaxConfig()); got.Boundedness.String() != "compute-bound" {
		t.Errorf("compute template boundedness = %v", got.Boundedness)
	}
	if _, err := NewKernel("").Build(); err == nil {
		t.Error("unnamed kernel accepted")
	}
	chase, err := PointerChaseKernel("Api.Chase").Build()
	if err != nil {
		t.Fatal(err)
	}
	if chase.L2Thrash <= 0 {
		t.Error("pointer-chase template has no thrash")
	}
}

func TestControllerDecisionLogThroughAPI(t *testing.T) {
	s := system()
	ctrl := s.Harmonia()
	if _, err := s.Run(App("Sort"), ctrl); err != nil {
		t.Fatal(err)
	}
	log := ctrl.Log()
	if len(log) == 0 {
		t.Fatal("empty decision log")
	}
	for _, a := range log {
		if a.Kernel == "" || !a.To.Valid() {
			t.Fatalf("malformed log entry %+v", a)
		}
	}
}
