// Package harmonia is a Go reproduction of "Harmonia: Balancing Compute
// and Memory Power in High-Performance GPUs" (Paul, Huang, Arora,
// Yalamanchili — ISCA 2015): a two-level runtime power-management scheme
// that coordinates the hardware power states of a discrete GPU and its
// memory system so that the platform's delivered ops/byte matches the
// running kernel's demand.
//
// Because the paper's evaluation is hardware measurement on an AMD Radeon
// HD 7970, this package ships a faithful simulated platform in its place:
// a GCN-class interval timing simulator, a rail-decomposed board power
// model, the paper's performance-counter vocabulary, its 14-application
// workload suite as kernel descriptors, the linear-regression sensitivity
// predictors of Table 3, the Harmonia CG+FG controller of Algorithm 1,
// the stock PowerTune baseline, and an exhaustive ED² oracle. DESIGN.md
// documents every substitution; EXPERIMENTS.md records each reproduced
// table and figure against the paper's published numbers.
//
// # Quick start
//
//	sys := harmonia.NewSystem()
//	app := harmonia.App("Graph500")
//	rep, err := sys.Run(app, sys.Harmonia())
//	if err != nil { ... }
//	base, _ := sys.Run(harmonia.App("Graph500"), sys.Baseline())
//	fmt.Printf("ED² improvement: %.1f%%\n",
//	    100*harmonia.Improvement(base.ED2(), rep.ED2()))
//
// Policies are stateful; construct a fresh one per application run.
package harmonia

import (
	"context"
	"fmt"
	"io"
	"sync"

	"harmonia/internal/analysis"
	"harmonia/internal/core"
	"harmonia/internal/counters"
	"harmonia/internal/experiments"
	"harmonia/internal/export"
	"harmonia/internal/faults"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/quality"
	"harmonia/internal/sensitivity"
	"harmonia/internal/session"
	"harmonia/internal/simcache"
	"harmonia/internal/telemetry"
	"harmonia/internal/timeline"
	"harmonia/internal/trace"
	"harmonia/internal/workloads"

	powermodel "harmonia/internal/power"
)

// Re-exported core types. The aliases make the full internal APIs
// available through this package.
type (
	// Config is a full hardware configuration: active CU count, compute
	// frequency, and memory bus frequency.
	Config = hw.Config
	// ComputeConfig is the GPU-side half of a Config.
	ComputeConfig = hw.ComputeConfig
	// MemConfig is the memory-side half of a Config.
	MemConfig = hw.MemConfig
	// Tunable identifies one of the three hardware tunables.
	Tunable = hw.Tunable
	// MHz is a clock frequency in megahertz.
	MHz = hw.MHz

	// Application is a multi-kernel iterative GPGPU application.
	Application = workloads.Application
	// Kernel is a GPU kernel descriptor.
	Kernel = workloads.Kernel
	// Phase modulates a kernel invocation for one iteration.
	Phase = workloads.Phase
	// KernelBuilder constructs kernel descriptors fluently.
	KernelBuilder = workloads.Builder

	// Counters is the Table 2 performance-counter sample.
	Counters = counters.Set
	// SimResult is the outcome of simulating one kernel invocation.
	SimResult = gpusim.Result

	// Policy chooses hardware configurations at kernel boundaries.
	Policy = policy.Policy
	// Controller is the Harmonia two-level controller.
	Controller = core.Controller
	// ControllerOptions configures a Controller.
	ControllerOptions = core.Options
	// RobustOptions configures the controller's hardening layer
	// (outlier rejection, configuration verification, watchdog).
	RobustOptions = core.RobustOptions

	// FaultConfig parameterizes the platform fault-injection layer
	// (WithFaultInjection / RunWithFaults). The zero value injects
	// nothing.
	FaultConfig = faults.Config

	// Telemetry is a metrics registry (counters, gauges, histograms
	// with Prometheus text exposition). Attach one with WithTelemetry
	// and every run records traffic metrics into it.
	Telemetry = telemetry.Registry

	// Predictor holds the trained sensitivity models.
	Predictor = sensitivity.Predictor
	// SensitivityBins is the per-tunable HIGH/MED/LOW classification.
	SensitivityBins = sensitivity.Bins

	// Report is the outcome of running an application under a policy.
	Report = session.Report
	// KernelRun is one kernel invocation within a Report.
	KernelRun = session.KernelRun

	// Sample is an execution-time/average-power pair with energy, ED,
	// and ED² derivations.
	Sample = metrics.Sample

	// Rails is the GPU/memory/other power decomposition in watts.
	Rails = powermodel.Rails
	// Activity is the hardware-activity summary the power model consumes.
	Activity = powermodel.Activity

	// Lab regenerates the paper's tables and figures.
	Lab = experiments.Env

	// OperatingPoint is a kernel's position on a configuration's
	// roofline (compute/memory boundedness analysis).
	OperatingPoint = analysis.OperatingPoint
	// Roofline is the attainable-throughput model of a configuration.
	Roofline = analysis.Roofline

	// PowerParams holds the power model's calibration constants.
	PowerParams = powermodel.Params
)

// Tunable identifiers.
const (
	TunableCUs     = hw.TunableCUs
	TunableCUFreq  = hw.TunableCUFreq
	TunableMemFreq = hw.TunableMemFreq
)

// System bundles the simulated platform: timing simulator, power model,
// and a lazily trained sensitivity predictor.
//
// A System is safe for concurrent use: many goroutines may call
// RunContext/Run and the controller constructors on one shared System
// (the timing and power models are immutable calibration constants, the
// predictor trains exactly once, and fault configuration is snapshotted
// per run). The exceptions are the explicitly mutating setters —
// EnableMemVoltageScaling and direct writes to Sim/Power — which must
// happen before the System is shared.
type System struct {
	Sim   *gpusim.Model
	Power *powermodel.Model

	// predMu guards pred; trainOnce/trainErr serialize lazy training.
	predMu    sync.Mutex
	pred      *sensitivity.Predictor
	trainOnce sync.Once
	trainErr  error

	faultsMu sync.Mutex
	faults   *faults.Config

	telemetry *telemetry.Registry

	// cache, when non-nil (WithSimCache), memoizes simulation results
	// across runs, oracle sweeps, and predictor training. The simulator
	// is pure, so cached results are bit-identical to uncached ones.
	// Fault-injected runs always bypass it and hit the raw simulator.
	cache *simcache.Cache
}

// Option configures a System at construction (the v2 construction
// style; see NewSystem).
type Option func(*System)

// WithFaultInjection arms the platform fault-injection layer at
// construction: every run executes under a fresh, seed-deterministic
// injector built from fc, unless overridden per run with RunWithFaults
// or RunWithoutFaults.
func WithFaultInjection(fc FaultConfig) Option {
	return func(s *System) { s.faults = &fc }
}

// WithPredictor installs a pre-trained sensitivity predictor, skipping
// the lazy training sweep (e.g. one trained with TrainPredictor on
// custom workloads, or PaperTable3).
func WithPredictor(p *Predictor) Option {
	return func(s *System) { s.pred = p }
}

// WithTelemetry attaches a metrics registry: every run records traffic
// instrumentation (runs started/completed/failed, kernel invocations,
// simulated seconds, per-policy ED² histograms) into it. Recording is
// pure observation and never changes run results.
func WithTelemetry(t *Telemetry) Option {
	return func(s *System) { s.telemetry = t }
}

// WithSimCache installs a shared simulation memo: every run, oracle
// sweep, and predictor-training sweep on the System reuses previously
// simulated (kernel, iteration, configuration) results instead of
// re-simulating them. Because the timing simulator is a pure function
// of its inputs, cached runs are bit-identical to uncached ones.
// Fault-injected runs bypass the cache entirely — the injected path
// always exercises the raw platform.
func WithSimCache() Option {
	return func(s *System) { s.cache = simcache.New() }
}

// NewSystem returns a System with the default calibrated platform,
// adjusted by the given options:
//
//	sys := harmonia.NewSystem(
//	    harmonia.WithFaultInjection(harmonia.FaultProfile(42, 0.5)),
//	    harmonia.WithTelemetry(harmonia.NewTelemetry()),
//	)
func NewSystem(opts ...Option) *System {
	s := &System{Sim: gpusim.Default(), Power: powermodel.Default()}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// NewTelemetry returns an empty metrics registry for WithTelemetry;
// expose it with its WritePrometheus method (cmd/harmonia-serve does
// both automatically).
func NewTelemetry() *Telemetry { return telemetry.New() }

// Telemetry returns the registry attached with WithTelemetry, or nil.
func (s *System) Telemetry() *Telemetry { return s.telemetry }

// runner returns the simulator as runs and sweeps consume it: memoized
// through the WithSimCache memo when one is installed, raw otherwise.
func (s *System) runner() gpusim.Runner {
	return simcache.For(s.Sim, s.cache)
}

// SimCacheStats reports the WithSimCache memo's cumulative hit and miss
// counts (both zero when no cache is installed).
func (s *System) SimCacheStats() (hits, misses uint64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.Stats()
}

// TrainedPredictor returns the system's sensitivity predictor, training
// it on the standard workload suite on first use (an exhaustive sweep
// of the 448-point configuration space). Training happens exactly once
// even under concurrent callers; every caller observes the same
// predictor or the same training error.
func (s *System) TrainedPredictor() (*Predictor, error) {
	s.predMu.Lock()
	if p := s.pred; p != nil {
		s.predMu.Unlock()
		return p, nil
	}
	s.predMu.Unlock()
	s.trainOnce.Do(func() {
		p, err := s.TrainPredictor(workloads.AllKernels())
		if err != nil {
			s.trainErr = err
			return
		}
		s.predMu.Lock()
		if s.pred == nil { // an interleaved UsePredictor wins
			s.pred = p
		}
		s.predMu.Unlock()
	})
	if s.trainErr != nil {
		return nil, s.trainErr
	}
	s.predMu.Lock()
	defer s.predMu.Unlock()
	return s.pred, nil
}

// must unwraps a (value, error) constructor result for the panicking
// convenience variants: every panicking constructor is exactly
// must(itsEVariant()), so the two spellings cannot drift apart.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// Harmonia returns a fresh Harmonia controller (coarse-grain plus
// fine-grain tuning) bound to this system's predictor, panicking if
// lazy training fails; HarmoniaE returns the error instead.
func (s *System) Harmonia() *Controller { return must(s.HarmoniaE()) }

// HarmoniaE is Harmonia with the lazy-training error returned rather
// than panicked (the v2 style; the E suffix mirrors the template
// package's Must-free variants).
func (s *System) HarmoniaE() (*Controller, error) {
	p, err := s.TrainedPredictor()
	if err != nil {
		return nil, err
	}
	return core.New(core.Options{Predictor: p}), nil
}

// HarmoniaWith returns a Harmonia controller with custom options; a nil
// options predictor defaults to the system's. Panics if lazy training
// fails; HarmoniaWithE returns the error instead.
func (s *System) HarmoniaWith(opts ControllerOptions) *Controller {
	return must(s.HarmoniaWithE(opts))
}

// HarmoniaWithE is HarmoniaWith with the lazy-training error returned
// rather than panicked.
func (s *System) HarmoniaWithE(opts ControllerOptions) (*Controller, error) {
	if opts.Predictor == nil {
		p, err := s.TrainedPredictor()
		if err != nil {
			return nil, err
		}
		opts.Predictor = p
	}
	return core.New(opts), nil
}

// CGOnly returns the coarse-grain-only variant used in the paper's CG
// bars (Figures 10-13). Panics if lazy training fails; CGOnlyE returns
// the error instead.
func (s *System) CGOnly() *Controller { return must(s.CGOnlyE()) }

// CGOnlyE is CGOnly with the lazy-training error returned rather than
// panicked.
func (s *System) CGOnlyE() (*Controller, error) {
	p, err := s.TrainedPredictor()
	if err != nil {
		return nil, err
	}
	return core.New(core.Options{Predictor: p, DisableFG: true}), nil
}

// ComputeDVFSOnly returns the compute-frequency-only policy of the
// paper's Section 7.2 study. Panics if lazy training fails;
// ComputeDVFSOnlyE returns the error instead.
func (s *System) ComputeDVFSOnly() *Controller { return must(s.ComputeDVFSOnlyE()) }

// ComputeDVFSOnlyE is ComputeDVFSOnly with the lazy-training error
// returned rather than panicked.
func (s *System) ComputeDVFSOnlyE() (*Controller, error) {
	p, err := s.TrainedPredictor()
	if err != nil {
		return nil, err
	}
	return core.NewComputeOnly(p), nil
}

// Baseline returns the stock PowerTune behaviour: boost frequency, all
// CUs, full memory speed. (With thermal headroom available — true for
// every workload in the suite at the 250 W cap — the real PowerTune
// manager degenerates to exactly this; see PowerTune for the capped
// variant.)
func (s *System) Baseline() Policy { return policy.NewBaseline() }

// PowerTune returns the TDP-constrained stock power manager: it boosts
// when board power fits under tdpWatts and steps the compute DPM state
// down when it does not (Section 2.3).
func (s *System) PowerTune(tdpWatts float64) Policy {
	return policy.NewPowerTuneWithTDP(s.Power, tdpWatts)
}

// Fixed returns a policy pinned to one configuration.
func (s *System) Fixed(cfg Config) Policy { return policy.NewFixed(cfg) }

// Oracle returns the exhaustive per-invocation ED²-optimal policy for
// the given applications (impractical on real hardware; the paper's
// comparison upper bound). Its sweeps use the full machine; callers
// that run many oracle sessions concurrently should use
// OracleWithWorkers to hand each one a share instead.
func (s *System) Oracle(apps ...*Application) Policy {
	return oracle.New(s.runner(), s.Power, apps...)
}

// OracleWithWorkers is Oracle with a bounded sweep width: each
// exhaustive search uses at most the given number of workers. A pool
// that runs W oracle sessions concurrently should hand each a share of
// roughly GOMAXPROCS/W so nested sweeps don't oversubscribe the
// machine; decisions are identical at any width.
func (s *System) OracleWithWorkers(workers int, apps ...*Application) Policy {
	return oracle.New(s.runner(), s.Power, apps...).WithWorkers(workers)
}

// faultConfig snapshots the armed fault configuration, so a run holds
// an immutable copy even if WithFaults/WithoutFaults race with it.
func (s *System) faultConfig() *faults.Config {
	s.faultsMu.Lock()
	defer s.faultsMu.Unlock()
	if s.faults == nil {
		return nil
	}
	fc := *s.faults
	return &fc
}

// FaultProfile returns the canonical fault profile of the robustness
// study at the given intensity in [0, 1]; intensity 0 disables
// everything.
func FaultProfile(seed int64, intensity float64) FaultConfig {
	return faults.Profile(seed, intensity)
}

// RunOption adjusts one RunContext call without touching shared System
// state, so concurrent runs with different settings can share a System.
type RunOption func(*runSettings)

type runSettings struct {
	faults   *faults.Config
	tracer   *trace.Recorder
	timeline *timeline.Recorder
}

// RunWithFaults executes this run under a fresh, seed-deterministic
// injector built from fc, overriding whatever fault configuration the
// System was constructed with.
func RunWithFaults(fc FaultConfig) RunOption {
	return func(rs *runSettings) { rs.faults = &fc }
}

// RunWithoutFaults executes this run fault-free even when the System
// was constructed with WithFaultInjection.
func RunWithoutFaults() RunOption {
	return func(rs *runSettings) { rs.faults = nil }
}

// RunWithTrace records this run's span tree — run, kernel, and
// decide/simulate/observe phase spans, plus the policy's decision spans
// — onto rec (see NewTraceRecorder). Tracing is pure observation: the
// traced run's Report is bit-identical to an untraced one, and two
// same-seed recorders over the same run produce byte-identical span
// trees (given the same clock).
func RunWithTrace(rec *TraceRecorder) RunOption {
	return func(rs *runSettings) { rs.tracer = rec }
}

// TraceRecorder collects a run's hierarchical span tree; TraceSnapshot
// is its exported copy, serializable as native JSON (WriteJSON) or
// Chrome trace-event JSON (WriteChrome, loadable in Perfetto).
type (
	TraceRecorder = trace.Recorder
	TraceSnapshot = trace.Snapshot
)

// NewTraceRecorder returns a span recorder whose span IDs are derived
// deterministically from seed: same seed, same run, same clock →
// byte-identical span trees.
func NewTraceRecorder(seed uint64) *TraceRecorder { return trace.New(seed) }

// RunWithTimeline flight-records this run onto rec: the DAQ power
// stream folded into bounded deterministic buckets (Eq. 4 GPU/Mem/Other
// decomposition), one decision record per kernel boundary (counters,
// sensitivity bins, configuration, action source), and hardware state
// transitions. Like tracing, recording is pure observation — the
// recorded run's Report is bit-identical to an unrecorded one, and the
// recorder has no clock or seed, so same-seed runs produce
// byte-identical timeline snapshots.
func RunWithTimeline(rec *TimelineRecorder) RunOption {
	return func(rs *runSettings) { rs.timeline = rec }
}

// TimelineRecorder is a run flight recorder (see RunWithTimeline);
// TimelineSnapshot is its exported deep copy, serializable as JSON
// (WriteJSON) or a power-timeline CSV (WriteCSV) and summarizable
// (Summary) into a per-kernel energy breakdown.
type (
	TimelineRecorder = timeline.Recorder
	TimelineSnapshot = timeline.Snapshot
	// TimelineSummary is the per-kernel energy breakdown and action
	// census digest of a timeline.
	TimelineSummary = timeline.Summary

	// QualityEngine computes decision-quality metrics (oracle gap, bin
	// confusion, FG convergence/dither, config churn) from a timeline;
	// QualityResult is one run's analysis.
	QualityEngine = quality.Engine
	QualityResult = quality.Result
)

// NewTimelineRecorder returns an empty run flight recorder with the
// default bounds (1 ms power buckets, doubling past 8192; 16384
// decision records).
func NewTimelineRecorder() *TimelineRecorder { return timeline.New() }

// QualityEngine returns a decision-quality analyzer sharing this
// system's simulator (including the WithSimCache memo, when installed —
// strongly recommended: every sampled boundary costs one exhaustive
// oracle sweep) and power model. maxSamples caps oracle-gap sampling
// per run (0 = the default 8, negative disables); workers bounds each
// sweep's parallelism (0 = GOMAXPROCS).
func (s *System) QualityEngine(maxSamples, workers int) *QualityEngine {
	return quality.NewEngine(quality.Options{
		Sim: s.runner(), Power: s.Power, MaxSamples: maxSamples, Workers: workers,
	})
}

// RunContext executes the application under the policy and returns the
// report. Cancellation is honoured at every kernel-invocation boundary:
// a canceled context stops the run before the next kernel launches and
// returns the context's error. RunContext is safe for concurrent use on
// one System — each call gets its own session, fault injector, and DAQ,
// and the run's fault configuration is an immutable snapshot taken at
// entry.
func (s *System) RunContext(ctx context.Context, app *Application, p Policy, opts ...RunOption) (*Report, error) {
	rs := runSettings{faults: s.faultConfig()}
	for _, opt := range opts {
		opt(&rs)
	}
	sess := &session.Session{
		Sim: s.runner(), Power: s.Power, Policy: p,
		Telemetry: s.telemetry, Tracer: rs.tracer, Timeline: rs.timeline,
	}
	if rs.faults != nil && rs.faults.Enabled() {
		sess.Faults = faults.New(*rs.faults)
		// Fault-injected runs bypass the simulation memo: the injected
		// path always exercises the raw platform.
		sess.Sim = s.Sim
	}
	return sess.RunContext(ctx, app)
}

// Run executes the application under the policy and returns the report.
// It is RunContext with a background context.
func (s *System) Run(app *Application, p Policy) (*Report, error) {
	return s.RunContext(context.Background(), app, p)
}

// HarmoniaNaive returns a Harmonia controller with the hardening layer
// disabled: the un-armored Algorithm 1 loop, kept as the comparison
// point of the robustness study. Panics if lazy training fails;
// HarmoniaNaiveE returns the error instead.
func (s *System) HarmoniaNaive() *Controller { return must(s.HarmoniaNaiveE()) }

// HarmoniaNaiveE is HarmoniaNaive with the lazy-training error returned
// rather than panicked.
func (s *System) HarmoniaNaiveE() (*Controller, error) {
	p, err := s.TrainedPredictor()
	if err != nil {
		return nil, err
	}
	return core.New(core.Options{
		Predictor: p,
		Robust:    core.RobustOptions{Disabled: true},
	}), nil
}

// TrainPredictor trains sensitivity models on the given kernels using
// this system's simulator (Section 4's methodology). Use it to extend the
// predictor to custom workloads. A failure wraps ErrTrainingFailed.
func (s *System) TrainPredictor(kernels []*Kernel) (*Predictor, error) {
	p, err := sensitivity.Train(sensitivity.BuildConfigTrainingSet(s.runner(), kernels))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTrainingFailed, err)
	}
	return p, nil
}

// Lab returns an experiments environment sharing this system's models
// (and its WithSimCache memo, when installed), for regenerating the
// paper's tables and figures.
func (s *System) Lab() *Lab {
	return &experiments.Env{Sim: s.Sim, Power: s.Power, Cache: s.cache}
}

// Suite returns the paper's 14-application evaluation suite.
func Suite() []*Application { return workloads.Suite() }

// App returns the named suite application (e.g. "Graph500"), or nil.
func App(name string) *Application { return workloads.ByName(name) }

// AllKernels returns every kernel of the suite.
func AllKernels() []*Kernel { return workloads.AllKernels() }

// NewKernel starts a fluent kernel-descriptor builder with
// representative defaults.
func NewKernel(name string) *KernelBuilder { return workloads.NewKernel(name) }

// Workload templates: bandwidth-bound streaming, FLOP-bound compute, and
// latency-bound pointer chasing.
func StreamingKernel(name string) *KernelBuilder    { return workloads.Streaming(name) }
func ComputeHeavyKernel(name string) *KernelBuilder { return workloads.ComputeHeavy(name) }
func PointerChaseKernel(name string) *KernelBuilder { return workloads.PointerChase(name) }

// ConfigSpace returns all ~450 legal hardware configurations.
func ConfigSpace() []Config { return hw.ConfigSpace() }

// MaxConfig returns the stock maximum configuration (32 CUs, 1 GHz,
// 264 GB/s).
func MaxConfig() Config { return hw.MaxConfig() }

// MinConfig returns the minimum configuration the paper normalizes
// against (4 CUs, 300 MHz, 90 GB/s).
func MinConfig() Config { return hw.MinConfig() }

// PaperTable3 returns the predictor with the paper's published Table 3
// coefficients (for reference; they were fit to the physical HD 7970).
func PaperTable3() *Predictor { return sensitivity.PaperModel() }

// Improvement returns the fractional improvement of got over base for a
// lower-is-better metric: Improvement(100, 88) = 0.12.
func Improvement(base, got float64) float64 { return metrics.Improvement(base, got) }

// GeoMean returns the geometric mean of xs, the paper's cross-application
// aggregate.
func GeoMean(xs []float64) float64 { return metrics.GeoMean(xs) }

// Analyze places a kernel on a configuration's roofline: demanded vs
// delivered ops/byte, boundedness, and achieved vs attainable throughput
// (the paper's Section 3 hardware-balance analysis).
func (s *System) Analyze(k *Kernel, iter int, cfg Config) OperatingPoint {
	return analysis.Measure(s.Sim, k, iter, cfg)
}

// BalancedConfigs returns the hardware configurations whose delivered
// ops/byte matches the kernel's demand — the balance points Harmonia's
// coarse-grain step targets — sorted from least to most power-hungry.
func (s *System) BalancedConfigs(k *Kernel, iter int) []Config {
	return analysis.BalancedConfigs(s.Sim, k, iter)
}

// EnableMemVoltageScaling switches the power model to the paper's
// what-if of a voltage-scalable memory rail (Sections 3.3/7.2).
func (s *System) EnableMemVoltageScaling() {
	p := s.Power.Params()
	p.MemVoltageScaling = true
	s.Power = powermodel.New(p)
}

// WriteReportJSON serializes a report as indented JSON.
func WriteReportJSON(w io.Writer, r *Report) error { return export.WriteReportJSON(w, r) }

// WriteRunsCSV serializes a report's per-invocation rows as CSV.
func WriteRunsCSV(w io.Writer, r *Report) error { return export.WriteRunsCSV(w, r) }

// WriteTraceCSV serializes a report's 1 kHz power trace as CSV.
func WriteTraceCSV(w io.Writer, r *Report) error { return export.WriteTraceCSV(w, r.Trace) }
