// Package harmonia is a Go reproduction of "Harmonia: Balancing Compute
// and Memory Power in High-Performance GPUs" (Paul, Huang, Arora,
// Yalamanchili — ISCA 2015): a two-level runtime power-management scheme
// that coordinates the hardware power states of a discrete GPU and its
// memory system so that the platform's delivered ops/byte matches the
// running kernel's demand.
//
// Because the paper's evaluation is hardware measurement on an AMD Radeon
// HD 7970, this package ships a faithful simulated platform in its place:
// a GCN-class interval timing simulator, a rail-decomposed board power
// model, the paper's performance-counter vocabulary, its 14-application
// workload suite as kernel descriptors, the linear-regression sensitivity
// predictors of Table 3, the Harmonia CG+FG controller of Algorithm 1,
// the stock PowerTune baseline, and an exhaustive ED² oracle. DESIGN.md
// documents every substitution; EXPERIMENTS.md records each reproduced
// table and figure against the paper's published numbers.
//
// # Quick start
//
//	sys := harmonia.NewSystem()
//	app := harmonia.App("Graph500")
//	rep, err := sys.Run(app, sys.Harmonia())
//	if err != nil { ... }
//	base, _ := sys.Run(harmonia.App("Graph500"), sys.Baseline())
//	fmt.Printf("ED² improvement: %.1f%%\n",
//	    100*harmonia.Improvement(base.ED2(), rep.ED2()))
//
// Policies are stateful; construct a fresh one per application run.
package harmonia

import (
	"io"

	"harmonia/internal/analysis"
	"harmonia/internal/core"
	"harmonia/internal/counters"
	"harmonia/internal/experiments"
	"harmonia/internal/export"
	"harmonia/internal/faults"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/sensitivity"
	"harmonia/internal/session"
	"harmonia/internal/workloads"

	powermodel "harmonia/internal/power"
)

// Re-exported core types. The aliases make the full internal APIs
// available through this package.
type (
	// Config is a full hardware configuration: active CU count, compute
	// frequency, and memory bus frequency.
	Config = hw.Config
	// ComputeConfig is the GPU-side half of a Config.
	ComputeConfig = hw.ComputeConfig
	// MemConfig is the memory-side half of a Config.
	MemConfig = hw.MemConfig
	// Tunable identifies one of the three hardware tunables.
	Tunable = hw.Tunable
	// MHz is a clock frequency in megahertz.
	MHz = hw.MHz

	// Application is a multi-kernel iterative GPGPU application.
	Application = workloads.Application
	// Kernel is a GPU kernel descriptor.
	Kernel = workloads.Kernel
	// Phase modulates a kernel invocation for one iteration.
	Phase = workloads.Phase
	// KernelBuilder constructs kernel descriptors fluently.
	KernelBuilder = workloads.Builder

	// Counters is the Table 2 performance-counter sample.
	Counters = counters.Set
	// SimResult is the outcome of simulating one kernel invocation.
	SimResult = gpusim.Result

	// Policy chooses hardware configurations at kernel boundaries.
	Policy = policy.Policy
	// Controller is the Harmonia two-level controller.
	Controller = core.Controller
	// ControllerOptions configures a Controller.
	ControllerOptions = core.Options
	// RobustOptions configures the controller's hardening layer
	// (outlier rejection, configuration verification, watchdog).
	RobustOptions = core.RobustOptions

	// FaultConfig parameterizes the platform fault-injection layer
	// (System.WithFaults). The zero value injects nothing.
	FaultConfig = faults.Config

	// Predictor holds the trained sensitivity models.
	Predictor = sensitivity.Predictor
	// SensitivityBins is the per-tunable HIGH/MED/LOW classification.
	SensitivityBins = sensitivity.Bins

	// Report is the outcome of running an application under a policy.
	Report = session.Report
	// KernelRun is one kernel invocation within a Report.
	KernelRun = session.KernelRun

	// Sample is an execution-time/average-power pair with energy, ED,
	// and ED² derivations.
	Sample = metrics.Sample

	// Rails is the GPU/memory/other power decomposition in watts.
	Rails = powermodel.Rails
	// Activity is the hardware-activity summary the power model consumes.
	Activity = powermodel.Activity

	// Lab regenerates the paper's tables and figures.
	Lab = experiments.Env

	// OperatingPoint is a kernel's position on a configuration's
	// roofline (compute/memory boundedness analysis).
	OperatingPoint = analysis.OperatingPoint
	// Roofline is the attainable-throughput model of a configuration.
	Roofline = analysis.Roofline

	// PowerParams holds the power model's calibration constants.
	PowerParams = powermodel.Params
)

// Tunable identifiers.
const (
	TunableCUs     = hw.TunableCUs
	TunableCUFreq  = hw.TunableCUFreq
	TunableMemFreq = hw.TunableMemFreq
)

// System bundles the simulated platform: timing simulator, power model,
// and a lazily trained sensitivity predictor.
type System struct {
	Sim   *gpusim.Model
	Power *powermodel.Model

	pred   *sensitivity.Predictor
	faults *faults.Config
}

// NewSystem returns a System with the default calibrated platform.
func NewSystem() *System {
	return &System{Sim: gpusim.Default(), Power: powermodel.Default()}
}

// Predictor returns the system's sensitivity predictor, training it on
// the standard workload suite on first use (an exhaustive sweep of the
// 448-point configuration space; it takes a moment).
func (s *System) Predictor() *Predictor {
	if s.pred == nil {
		p, err := s.TrainPredictor(workloads.AllKernels())
		if err != nil {
			panic(err) // the default training set is fixed and known good
		}
		s.pred = p
	}
	return s.pred
}

// UsePredictor installs a custom predictor (e.g. one trained with
// TrainPredictor on user workloads).
func (s *System) UsePredictor(p *Predictor) { s.pred = p }

// Harmonia returns a fresh Harmonia controller (coarse-grain plus
// fine-grain tuning) bound to this system's predictor.
func (s *System) Harmonia() *Controller {
	return core.New(core.Options{Predictor: s.Predictor()})
}

// HarmoniaWith returns a Harmonia controller with custom options; a nil
// options predictor defaults to the system's.
func (s *System) HarmoniaWith(opts ControllerOptions) *Controller {
	if opts.Predictor == nil {
		opts.Predictor = s.Predictor()
	}
	return core.New(opts)
}

// CGOnly returns the coarse-grain-only variant used in the paper's CG
// bars (Figures 10-13).
func (s *System) CGOnly() *Controller {
	return core.New(core.Options{Predictor: s.Predictor(), DisableFG: true})
}

// ComputeDVFSOnly returns the compute-frequency-only policy of the
// paper's Section 7.2 study.
func (s *System) ComputeDVFSOnly() *Controller {
	return core.NewComputeOnly(s.Predictor())
}

// Baseline returns the stock PowerTune behaviour: boost frequency, all
// CUs, full memory speed. (With thermal headroom available — true for
// every workload in the suite at the 250 W cap — the real PowerTune
// manager degenerates to exactly this; see PowerTune for the capped
// variant.)
func (s *System) Baseline() Policy { return policy.NewBaseline() }

// PowerTune returns the TDP-constrained stock power manager: it boosts
// when board power fits under tdpWatts and steps the compute DPM state
// down when it does not (Section 2.3).
func (s *System) PowerTune(tdpWatts float64) Policy {
	return policy.NewPowerTuneWithTDP(s.Power, tdpWatts)
}

// Fixed returns a policy pinned to one configuration.
func (s *System) Fixed(cfg Config) Policy { return policy.NewFixed(cfg) }

// Oracle returns the exhaustive per-invocation ED²-optimal policy for
// the given applications (impractical on real hardware; the paper's
// comparison upper bound).
func (s *System) Oracle(apps ...*Application) Policy {
	return oracle.New(s.Sim, s.Power, apps...)
}

// WithFaults arms the platform fault-injection layer: every subsequent
// Run wraps the simulated hardware in a fresh, seed-deterministic
// injector built from fc, so the policy and the DAQ observe degraded
// inputs (noisy/stale counters, stuck DPM transitions, thermal
// throttles, trace dropout) while the report keeps recording the true
// physics. Each Run replays the same fault sequence for the same
// workload and policy, which makes A/B policy comparisons under
// identical faults meaningful. It returns s for chaining; use
// WithoutFaults to disarm.
func (s *System) WithFaults(fc FaultConfig) *System {
	s.faults = &fc
	return s
}

// WithoutFaults disarms the fault-injection layer.
func (s *System) WithoutFaults() *System {
	s.faults = nil
	return s
}

// FaultProfile returns the canonical fault profile of the robustness
// study at the given intensity in [0, 1]; intensity 0 disables
// everything.
func FaultProfile(seed int64, intensity float64) FaultConfig {
	return faults.Profile(seed, intensity)
}

// Run executes the application under the policy and returns the report.
func (s *System) Run(app *Application, p Policy) (*Report, error) {
	sess := &session.Session{Sim: s.Sim, Power: s.Power, Policy: p}
	if s.faults != nil && s.faults.Enabled() {
		sess.Faults = faults.New(*s.faults)
	}
	return sess.Run(app)
}

// HarmoniaNaive returns a Harmonia controller with the hardening layer
// disabled: the un-armored Algorithm 1 loop, kept as the comparison
// point of the robustness study.
func (s *System) HarmoniaNaive() *Controller {
	return core.New(core.Options{
		Predictor: s.Predictor(),
		Robust:    core.RobustOptions{Disabled: true},
	})
}

// TrainPredictor trains sensitivity models on the given kernels using
// this system's simulator (Section 4's methodology). Use it to extend the
// predictor to custom workloads.
func (s *System) TrainPredictor(kernels []*Kernel) (*Predictor, error) {
	return sensitivity.Train(sensitivity.BuildConfigTrainingSet(s.Sim, kernels))
}

// Lab returns an experiments environment sharing this system's models,
// for regenerating the paper's tables and figures.
func (s *System) Lab() *Lab {
	return &experiments.Env{Sim: s.Sim, Power: s.Power}
}

// Suite returns the paper's 14-application evaluation suite.
func Suite() []*Application { return workloads.Suite() }

// App returns the named suite application (e.g. "Graph500"), or nil.
func App(name string) *Application { return workloads.ByName(name) }

// AllKernels returns every kernel of the suite.
func AllKernels() []*Kernel { return workloads.AllKernels() }

// NewKernel starts a fluent kernel-descriptor builder with
// representative defaults.
func NewKernel(name string) *KernelBuilder { return workloads.NewKernel(name) }

// Workload templates: bandwidth-bound streaming, FLOP-bound compute, and
// latency-bound pointer chasing.
func StreamingKernel(name string) *KernelBuilder    { return workloads.Streaming(name) }
func ComputeHeavyKernel(name string) *KernelBuilder { return workloads.ComputeHeavy(name) }
func PointerChaseKernel(name string) *KernelBuilder { return workloads.PointerChase(name) }

// ConfigSpace returns all ~450 legal hardware configurations.
func ConfigSpace() []Config { return hw.ConfigSpace() }

// MaxConfig returns the stock maximum configuration (32 CUs, 1 GHz,
// 264 GB/s).
func MaxConfig() Config { return hw.MaxConfig() }

// MinConfig returns the minimum configuration the paper normalizes
// against (4 CUs, 300 MHz, 90 GB/s).
func MinConfig() Config { return hw.MinConfig() }

// PaperTable3 returns the predictor with the paper's published Table 3
// coefficients (for reference; they were fit to the physical HD 7970).
func PaperTable3() *Predictor { return sensitivity.PaperModel() }

// Improvement returns the fractional improvement of got over base for a
// lower-is-better metric: Improvement(100, 88) = 0.12.
func Improvement(base, got float64) float64 { return metrics.Improvement(base, got) }

// GeoMean returns the geometric mean of xs, the paper's cross-application
// aggregate.
func GeoMean(xs []float64) float64 { return metrics.GeoMean(xs) }

// Analyze places a kernel on a configuration's roofline: demanded vs
// delivered ops/byte, boundedness, and achieved vs attainable throughput
// (the paper's Section 3 hardware-balance analysis).
func (s *System) Analyze(k *Kernel, iter int, cfg Config) OperatingPoint {
	return analysis.Measure(s.Sim, k, iter, cfg)
}

// BalancedConfigs returns the hardware configurations whose delivered
// ops/byte matches the kernel's demand — the balance points Harmonia's
// coarse-grain step targets — sorted from least to most power-hungry.
func (s *System) BalancedConfigs(k *Kernel, iter int) []Config {
	return analysis.BalancedConfigs(s.Sim, k, iter)
}

// EnableMemVoltageScaling switches the power model to the paper's
// what-if of a voltage-scalable memory rail (Sections 3.3/7.2).
func (s *System) EnableMemVoltageScaling() {
	p := s.Power.Params()
	p.MemVoltageScaling = true
	s.Power = powermodel.New(p)
}

// WriteReportJSON serializes a report as indented JSON.
func WriteReportJSON(w io.Writer, r *Report) error { return export.WriteReportJSON(w, r) }

// WriteRunsCSV serializes a report's per-invocation rows as CSV.
func WriteRunsCSV(w io.Writer, r *Report) error { return export.WriteRunsCSV(w, r) }

// WriteTraceCSV serializes a report's 1 kHz power trace as CSV.
func WriteTraceCSV(w io.Writer, r *Report) error { return export.WriteTraceCSV(w, r.Trace) }
