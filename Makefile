GO ?= go

.PHONY: check build vet test race fuzz

# The full pre-commit gate: build, vet, and the test suite under the
# race detector.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every fuzz target in internal/core.
fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzControllerUnderFaults -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzInjectorDeterminism -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzControllerRobustness -fuzztime 15s
