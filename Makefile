GO ?= go

.PHONY: check build vet test race bench fuzz serve fmt-check lint lint-fix-check soak

# The full pre-commit gate: formatting, build, vet, the domain linters
# (including the suggested-fix gate), and the test suite under the race
# detector.
check: fmt-check build vet lint lint-fix-check race

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis (see DESIGN.md §10): the six
# intraprocedural checks (determinism, hardware-envelope, lock-scope,
# float-equality, error-drop, worker-budget) plus the four call-graph
# checks (detertaint, ctxflow, spawnjoin, spanend) over the module-wide
# effect summaries. -werror also fails on malformed //lint:ignore
# directives.
lint:
	$(GO) run ./cmd/harmonia-lint -werror ./...

# The suggested-fix layer's gate: -diff over the clean tree must print
# nothing (no fixable findings pending), and the scratch-module fix
# tests pin the -fix output bytes, gofmt cleanliness, and idempotence.
lint-fix-check:
	@fixdiff="$$($(GO) run ./cmd/harmonia-lint -diff ./... || true)"; \
	if [ -n "$$fixdiff" ]; then \
		echo "harmonia-lint -diff shows pending fixable findings:"; \
		echo "$$fixdiff"; exit 1; \
	fi
	$(GO) test -count=1 -run 'TestFixApply|TestFixDiff' ./internal/lint/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Infrastructure benchmarks: memoized oracle sweep vs uncached, and the
# suite under the serial vs parallel batch pool. Emits BENCH_sweep.json
# and fails if the cached sweep speedup drops below 5x.
bench:
	sh scripts/bench.sh

# Chaos soak: the mixed-workload resilience harness (panicking backend,
# overload shedding, drain mid-flight, journal audit) under the race
# detector for a bounded number of iterations.
SOAK_ITERS ?= 8
soak:
	HARMONIA_SOAK_ITERS=$(SOAK_ITERS) $(GO) test -race -count=1 \
		-run 'TestChaosMixedWorkloadSoak|TestCrashRestartReplayByteIdentical|TestPanickingBackendQuarantined' \
		-v ./internal/serve/

# Run the HTTP evaluation service on :8792 (see cmd/harmonia-serve).
serve:
	$(GO) run ./cmd/harmonia-serve

# Short fuzzing pass over every fuzz target in internal/core.
fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzControllerUnderFaults -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzInjectorDeterminism -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzControllerRobustness -fuzztime 15s
