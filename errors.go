package harmonia

import (
	"errors"
	"fmt"

	"harmonia/internal/hw"
)

// Sentinel errors for the failure classes callers branch on. Every API
// that can hit one of these wraps it, so errors.Is works across layers:
// TrainPredictor and the *E controller constructors wrap
// ErrTrainingFailed, ParseConfig wraps ErrInvalidConfig, and the serve
// layer wraps ErrRunNotFound and ErrShedding — with the HTTP status for
// each class mapped in exactly one place there (statusFor).
var (
	// ErrTrainingFailed marks a sensitivity-predictor training failure
	// (lazy training in TrainedPredictor, or an explicit TrainPredictor
	// call on a degenerate training set).
	ErrTrainingFailed = errors.New("harmonia: predictor training failed")
	// ErrInvalidConfig marks a hardware configuration that is not on
	// the platform's legal grid (bad ParseConfig input, out-of-range CU
	// count or frequency).
	ErrInvalidConfig = errors.New("harmonia: invalid hardware configuration")
	// ErrRunNotFound marks a lookup of a run (or batch) ID the serve
	// registry does not hold — expired, evicted, or never created.
	ErrRunNotFound = errors.New("harmonia: run not found")
	// ErrShedding marks a submission rejected by the serve layer's
	// admission control (draining, queue full, rate limited, or circuit
	// breaker open) rather than failed by the backend.
	ErrShedding = errors.New("harmonia: submission shed by admission control")
)

// ParseConfig parses a configuration in CUs/cuMHz/memMHz form, e.g.
// "16/700/925", and validates it against the platform's legal grid. The
// error wraps ErrInvalidConfig.
func ParseConfig(s string) (Config, error) {
	cfg, err := hw.ParseConfig(s)
	if err != nil {
		return Config{}, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	return cfg, nil
}
