package harmonia

// Acceptance gates for the power-timeline flight recorder: attaching a
// recorder must not change a single computed value (inertness), and
// same-seed runs must serialize byte-identical timelines — the recorder
// has no clock and no seed, so a timeline is a pure function of the
// run's inputs.

import (
	"bytes"
	"reflect"
	"testing"
)

// TestTimelineRunBitIdentical is the inertness gate: flight-recording a
// run must not change a single computed value, across the Harmonia
// controller (annotated decisions), the oracle (answer-source
// annotations), and the cached baseline path.
func TestTimelineRunBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		app   string
		cache bool
		mk    func(*System) Policy
	}{
		{"harmonia/Graph500", "Graph500", false, func(s *System) Policy { return s.Harmonia() }},
		{"oracle/LUD", "LUD", true, func(s *System) Policy { return s.Oracle(App("LUD")) }},
		{"baseline-cached/SRAD", "SRAD", true, func(s *System) Policy { return s.Baseline() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mkSys := func() *System {
				if tc.cache {
					return NewSystem(WithSimCache())
				}
				return NewSystem()
			}
			plain := mkSys()
			bare, err := plain.Run(App(tc.app), tc.mk(plain))
			if err != nil {
				t.Fatal(err)
			}
			observed := mkSys()
			rec := NewTimelineRecorder()
			recorded, err := observed.RunContext(t.Context(), App(tc.app), tc.mk(observed), RunWithTimeline(rec))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(recorded, bare) {
				t.Fatal("flight-recorded report differs from bare (DeepEqual)")
			}
			var rb, bb bytes.Buffer
			if err := WriteReportJSON(&rb, recorded); err != nil {
				t.Fatal(err)
			}
			if err := WriteReportJSON(&bb, bare); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rb.Bytes(), bb.Bytes()) {
				t.Fatal("flight-recorded report JSON differs from bare")
			}
			decs, _, _ := rec.Counts()
			if decs == 0 {
				t.Fatal("flight-recorded run captured no decisions")
			}
			if snap := rec.Snapshot(); snap.SampleCount == 0 {
				t.Fatal("flight-recorded run captured no power samples")
			}
		})
	}
}

// TestSameSeedTimelinesByteIdentical: two runs of the same workload
// under the same policy must serialize byte-identical timelines.
func TestSameSeedTimelinesByteIdentical(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		sys := NewSystem(WithSimCache())
		rec := NewTimelineRecorder()
		if _, err := sys.RunContext(t.Context(), App("SRAD"), sys.Harmonia(), RunWithTimeline(rec)); err != nil {
			t.Fatal(err)
		}
		if err := rec.Snapshot().WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same-seed timelines differ:\n%.2000s\n---\n%.2000s", bufs[0].String(), bufs[1].String())
	}
}

// TestTimelineDecisionAnnotations: the Harmonia controller annotates
// every boundary with an action source and, once its predictor has
// classified the kernel, sensitivity bins; the oracle annotates its
// answer sources. Without an annotating policy the source stays empty.
func TestTimelineDecisionAnnotations(t *testing.T) {
	sys := NewSystem(WithSimCache())
	rec := NewTimelineRecorder()
	if _, err := sys.RunContext(t.Context(), App("SRAD"), sys.Harmonia(), RunWithTimeline(rec)); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if !snap.Complete {
		t.Fatal("finished run's snapshot not marked complete")
	}
	sources := map[string]int{}
	withBins := 0
	for _, d := range snap.Decisions {
		sources[d.Source]++
		if d.Bins != nil {
			withBins++
		}
		if d.TimeS <= 0 || d.EnergyJ <= 0 {
			t.Fatalf("decision %d has non-positive time/energy: %+v", d.Index, d)
		}
	}
	if sources[""] > 0 {
		t.Fatalf("harmonia run left %d boundaries unannotated (sources %v)", sources[""], sources)
	}
	if withBins == 0 {
		t.Fatal("no boundary carried sensitivity bins")
	}

	orc := NewTimelineRecorder()
	osys := NewSystem(WithSimCache())
	if _, err := osys.RunContext(t.Context(), App("LUD"), osys.Oracle(App("LUD")), RunWithTimeline(orc)); err != nil {
		t.Fatal(err)
	}
	oracleSources := map[string]int{}
	for _, d := range orc.Snapshot().Decisions {
		oracleSources[d.Source]++
	}
	if oracleSources["oracle-sweep"] == 0 {
		t.Fatalf("oracle run recorded no sweep-sourced decisions (sources %v)", oracleSources)
	}
}
