// Command harmonia-sim runs one application of the evaluation suite on
// the simulated platform under a chosen power-management policy and
// reports timing, power, energy, and ED² against the PowerTune baseline.
//
// Usage:
//
//	harmonia-sim -app Graph500 -policy harmonia [-trace]
//
// Policies: baseline, harmonia, cg, compute-only, oracle.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harmonia"
	"harmonia/internal/hw"
)

func main() {
	var (
		appName  = flag.String("app", "Graph500", "application to run (see -list)")
		polName  = flag.String("policy", "harmonia", "policy: baseline|harmonia|cg|compute-only|oracle|fixed")
		fixedCfg = flag.String("config", "", "configuration for -policy fixed, e.g. 16/700/925")
		trace    = flag.Bool("trace", false, "print every kernel invocation")
		list     = flag.Bool("list", false, "list available applications and exit")
	)
	flag.Parse()

	if *list {
		for _, app := range harmonia.Suite() {
			fmt.Printf("%-14s %2d iterations, kernels: %s\n",
				app.Name, app.Iterations, strings.Join(app.KernelNames(), ", "))
		}
		return
	}

	app := harmonia.App(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "harmonia-sim: unknown application %q (try -list)\n", *appName)
		os.Exit(1)
	}

	sys := harmonia.NewSystem()
	var pol harmonia.Policy
	switch *polName {
	case "baseline":
		pol = sys.Baseline()
	case "harmonia":
		pol = sys.Harmonia()
	case "cg":
		pol = sys.CGOnly()
	case "compute-only":
		pol = sys.ComputeDVFSOnly()
	case "oracle":
		pol = sys.Oracle(app)
	case "fixed":
		cfg, err := hw.ParseConfig(*fixedCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-sim:", err)
			os.Exit(1)
		}
		pol = sys.Fixed(cfg)
	default:
		fmt.Fprintf(os.Stderr, "harmonia-sim: unknown policy %q\n", *polName)
		os.Exit(1)
	}

	base, err := sys.Run(harmonia.App(*appName), sys.Baseline())
	if err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-sim:", err)
		os.Exit(1)
	}
	rep, err := sys.Run(app, pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-sim:", err)
		os.Exit(1)
	}

	if *trace {
		for _, run := range rep.Runs {
			fmt.Printf("iter %3d  %-26s %-36v %8.3f ms  %6.1f W\n",
				run.Iter, run.Kernel, run.Config, run.Result.Time*1e3, run.Rails.Card())
		}
		fmt.Println()
	}

	fmt.Printf("%s under %s\n", rep.App, rep.Policy)
	fmt.Printf("  time    : %8.3f s  (baseline %8.3f s, %+.2f%%)\n",
		rep.TotalTime(), base.TotalTime(), (rep.TotalTime()/base.TotalTime()-1)*100)
	fmt.Printf("  power   : %8.1f W  (baseline %8.1f W, saving %.1f%%)\n",
		rep.AveragePower(), base.AveragePower(),
		harmonia.Improvement(base.AveragePower(), rep.AveragePower())*100)
	fmt.Printf("  energy  : %8.1f J  (saving %.1f%%)\n",
		rep.TotalEnergy(), harmonia.Improvement(base.TotalEnergy(), rep.TotalEnergy())*100)
	fmt.Printf("  ED2     : improvement %.1f%% over baseline\n",
		harmonia.Improvement(base.ED2(), rep.ED2())*100)
	fmt.Printf("  rails   : GPU %.1f J, memory %.1f J, other %.1f J\n",
		rep.Energy.GPU, rep.Energy.Mem, rep.Energy.Other)

	fmt.Println("  residency:")
	for _, tu := range []harmonia.Tunable{harmonia.TunableCUs, harmonia.TunableCUFreq, harmonia.TunableMemFreq} {
		res := rep.Residency(tu)
		fmt.Printf("    %-8v", tu)
		for _, state := range sortedKeys(res) {
			fmt.Printf("  %d: %.0f%%", state, res[state]*100)
		}
		fmt.Println()
	}
}

func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}
