// Command harmonia-train rebuilds the sensitivity predictors of the
// paper's Section 4 on the simulated platform: it measures ground-truth
// per-tunable sensitivities for every suite kernel, trains the linear
// models (the Table 3 analogue), and prints coefficients, per-kernel
// predictions, and accuracy.
//
// Usage:
//
//	harmonia-train [-verbose]
package main

import (
	"flag"
	"fmt"

	"harmonia/internal/gpusim"
	"harmonia/internal/sensitivity"
	"harmonia/internal/workloads"
)

func main() {
	verbose := flag.Bool("verbose", false, "print per-kernel truths and predictions")
	flag.Parse()

	sim := gpusim.Default()
	kernels := workloads.AllKernels()

	fmt.Printf("measuring ground-truth sensitivities for %d kernels...\n", len(kernels))
	kernelPts := sensitivity.BuildTrainingSet(sim, kernels)

	fmt.Println("training on per-configuration rows (Section 4.2 scale)...")
	cfgPts := sensitivity.BuildConfigTrainingSet(sim, kernels)
	pred, err := sensitivity.Train(cfgPts)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nTable 3 (platform-trained) — %d training rows\n", len(cfgPts))
	fmt.Printf("  bandwidth sensitivity model (corr %.3f):\n    %v\n", pred.Bandwidth.Corr, pred.Bandwidth)
	fmt.Printf("  compute sensitivity model   (corr %.3f):\n    %v\n", pred.Compute.Corr, pred.Compute)

	paper := sensitivity.PaperModel()
	fmt.Println("\npublished Table 3 coefficients (AMD HD 7970, for reference):")
	fmt.Printf("  bandwidth: %v\n  compute:   %v\n", paper.Bandwidth, paper.Compute)

	acc := sensitivity.Evaluate(pred, kernelPts)
	fmt.Printf("\nprediction error (MAE): bandwidth %.4f, compute %.4f, CU %.4f, CU-freq %.4f\n",
		acc.BandwidthMAE, acc.ComputeMAE, acc.CUsMAE, acc.CUFreqMAE)
	fmt.Println("paper reports 0.0303 (bandwidth) and 0.0571 (compute) on hardware")

	if *verbose {
		fmt.Printf("\n%-28s %6s %6s %6s | %6s %6s %6s | bins\n",
			"kernel", "sCU", "sCUF", "sBW", "pCU", "pCUF", "pBW")
		for _, pt := range kernelPts {
			bins := pred.PredictBins(pt.Features)
			fmt.Printf("%-28s %6.3f %6.3f %6.3f | %6.3f %6.3f %6.3f | %v/%v/%v\n",
				pt.Kernel, pt.Truth.CUs, pt.Truth.CUFreq, pt.Truth.Bandwidth,
				pred.PredictCUs(pt.Features), pred.PredictCUFreq(pt.Features),
				pred.PredictBandwidth(pt.Features),
				bins.CUs, bins.CUFreq, bins.MemFreq)
		}
	}
}
