// Command harmonia-report regenerates every table and figure of the
// paper's evaluation on the simulated platform and prints the full
// report. EXPERIMENTS.md is the curated record of one such run.
//
// Usage:
//
//	harmonia-report [-only fig10]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"harmonia/internal/experiments"
)

func main() {
	only := flag.String("only", "", "regenerate a single artifact (fig1, table1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table2, table3, results, fig14, fig15, fig16, fig17, fig18, computeonly, accuracy, memvolt, objective, tdp, knobs, stacked, timeline)")
	tlApp := flag.String("timeline-app", "SRAD", "application the timeline artifact flight-records")
	flag.Parse()

	// Interrupting the report cancels in-flight fan-out at the next
	// kernel boundary instead of abandoning workers mid-sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	e := experiments.NewEnv()
	want := func(name string) bool { return *only == "" || *only == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "harmonia-report:", err)
		os.Exit(1)
	}

	if want("fig1") {
		fmt.Println(experiments.Fig1PowerBreakdown(e))
		fmt.Println()
	}
	if want("table1") {
		fmt.Println(experiments.Table1String())
	}
	if want("fig3") {
		for _, k := range []string{"MaxFlops.Main", "DeviceMemory.Stream", "LUD.Internal"} {
			fmt.Println(experiments.Fig3BalanceCurves(e, k))
		}
	}
	if want("fig4") {
		fmt.Println(experiments.Fig4ComputePowerRange(e))
		fmt.Println()
	}
	if want("fig5") {
		fmt.Println(experiments.Fig5MemoryPowerRange(e))
		fmt.Println()
	}
	if want("fig6") {
		fmt.Println(experiments.Fig6MetricComparison(e))
	}
	if want("fig7") {
		fmt.Println("Figure 7 — kernel occupancy vs bandwidth sensitivity")
		for _, r := range experiments.Fig7OccupancyEffect(e) {
			fmt.Printf("  %-24s occupancy %3.0f%%  bandwidth sensitivity %.2f\n",
				r.Kernel, r.Occupancy*100, r.BandwidthSensitivity)
		}
		fmt.Println()
	}
	if want("fig8") {
		fmt.Println("Figure 8 — branch divergence vs compute-frequency sensitivity")
		for _, r := range experiments.Fig8DivergenceEffect(e) {
			fmt.Printf("  %-24s divergence %4.0f%%  insts %.2g  freq sensitivity %.2f\n",
				r.Kernel, r.BranchDivergence, r.VALUInsts, r.ComputeFreqSensitive)
		}
		fmt.Println()
	}
	if want("fig9") {
		fmt.Println(experiments.Fig9ClockDomains(e))
		fmt.Println()
	}
	if want("table2") {
		fmt.Println("Table 2 — performance counters and metrics")
		for _, d := range experiments.Table2Counters() {
			fmt.Printf("  %-18s %s\n", d.Name, d.Text)
		}
		fmt.Println()
	}
	if want("table3") {
		fmt.Println(experiments.Table3Model(e))
	}
	if want("results") {
		rows, sum, err := experiments.Fig10ED2(ctx, e)
		if err != nil {
			fail(err)
		}
		_ = rows
		results, err := e.Results(ctx)
		if err != nil {
			fail(err)
		}
		fmt.Println("Figures 10-13 — per-application results vs baseline")
		fmt.Println(experiments.ResultsTable(results))
		fmt.Println(sum)
		fmt.Println()
	}
	if want("computeonly") {
		r, err := experiments.ComputeOnlyStudy(ctx, e)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Compute-DVFS-only study — ED2 gain %.1f%%, slowdown %.2f%% (paper: ~3%% / ~1%%)\n\n",
			r.ED2Gain*100, r.Slowdown*100)
	}
	if want("accuracy") {
		acc := experiments.PredictorAccuracy(e)
		fmt.Printf("Predictor accuracy — MAE bandwidth %.4f, compute %.4f (paper: 0.0303 / 0.0571)\n\n",
			acc.BandwidthMAE, acc.ComputeMAE)
	}
	if want("fig14") {
		fmt.Println(experiments.Fig14String(experiments.Fig14Graph500Phases(e)))
	}
	if want("fig15") {
		r, err := experiments.Fig15MemFreqResidency(e)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
	if want("fig16") {
		r, err := experiments.Fig16TunableResidency(e)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
	if want("fig17") {
		r, err := experiments.Fig17PowerSharing(ctx, e)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
	if want("fig18") {
		rows, err := experiments.Fig18CGvsFG(ctx, e)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.Fig18String(rows))
	}
	if want("memvolt") {
		r, err := experiments.MemVoltageScalingStudy(ctx, e)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
		fmt.Println()
	}
	if want("objective") {
		r, err := experiments.ObjectiveStudy(ctx, e)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
		fmt.Println()
	}
	if want("tdp") {
		rows, err := experiments.TDPStudy(ctx, e, []float64{250, 180, 150, 120})
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.TDPString(rows))
	}
	if want("stacked") {
		r, err := experiments.StackedEnvelopeStudy(e, 85)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
	if want("knobs") {
		rows, err := experiments.ControllerKnobStudy(ctx, e)
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.KnobString(rows))
	}
	if want("timeline") {
		sum, err := experiments.TimelineStudy(ctx, e, *tlApp)
		if err != nil {
			fail(err)
		}
		fmt.Println(sum)
	}

	if *only != "" && !strings.Contains(
		"fig1 table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 table2 table3 results fig14 fig15 fig16 fig17 fig18 computeonly accuracy memvolt objective tdp knobs stacked timeline",
		*only) {
		fmt.Fprintf(os.Stderr, "harmonia-report: unknown artifact %q\n", *only)
		os.Exit(1)
	}
}
