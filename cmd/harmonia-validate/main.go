// Command harmonia-validate cross-checks the interval timing model
// (internal/gpusim) against the wavefront-level event-driven simulator
// (internal/eventsim) across kernels and hardware configurations, and
// prints the per-point time ratio. The two simulators share their
// hardware calibration but compute time in entirely different ways —
// closed-form intervals versus cycle-driven execution — so agreement is
// evidence that the physics Harmonia reacts to is modeled, not assumed.
//
// Usage:
//
//	harmonia-validate [-grid 400]
package main

import (
	"flag"
	"fmt"

	"harmonia/internal/eventsim"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

func main() {
	grid := flag.Int("grid", 400, "workgroup cap for the event-driven runs")
	flag.Parse()

	ev := eventsim.New()
	iv := gpusim.Default()

	kernels := []string{
		"MaxFlops.Main", "DeviceMemory.Stream", "Sort.BottomScan",
		"CoMD.AdvanceVelocity", "CoMD.EAM_Force_1", "Stencil.Step",
		"SPMV.CSRVector", "miniFE.Dot", "Streamcluster.PGain",
	}
	configs := []hw.Config{
		hw.MaxConfig(),
		{Compute: hw.ComputeConfig{CUs: hw.MaxCUs, Freq: hw.MaxCUFreq}, Memory: hw.MemConfig{BusFreq: hw.MinMemFreq}},
		{Compute: hw.ComputeConfig{CUs: hw.MaxCUs, Freq: hw.MinCUFreq}, Memory: hw.MemConfig{BusFreq: hw.MaxMemFreq}},
		hw.NewConfig(8, hw.MaxCUFreq, hw.MaxMemFreq),
		hw.NewConfig(16, 600, 925),
	}

	fmt.Printf("%-24s %-36s %12s %12s %7s\n", "kernel", "config", "event (ms)", "interval", "ratio")
	var worstLo, worstHi float64 = 1, 1
	points, within25 := 0, 0
	for _, name := range kernels {
		var k *workloads.Kernel
		for _, kk := range workloads.AllKernels() {
			if kk.Name == name {
				k = kk
			}
		}
		trunc := *k
		trunc.Phases = nil
		if trunc.Workgroups > *grid {
			trunc.Workgroups = *grid
		}
		for _, cfg := range configs {
			et := ev.Run(&trunc, 0, cfg, *grid).Time
			it := iv.Run(&trunc, 0, cfg).Time
			ratio := et / it
			fmt.Printf("%-24s %-36v %12.4f %12.4f %7.2f\n", name, cfg, et*1e3, it*1e3, ratio)
			points++
			if ratio > 0.75 && ratio < 1.33 {
				within25++
			}
			if ratio < worstLo {
				worstLo = ratio
			}
			if ratio > worstHi {
				worstHi = ratio
			}
		}
	}
	fmt.Printf("\n%d/%d points within ±25%% (worst ratios %.2f / %.2f)\n",
		within25, points, worstLo, worstHi)
}
