// Command harmonia-sweep explores the hardware design space for one
// kernel: it simulates every compute/memory configuration, prints the
// balance curves of the paper's Figure 3, and reports the best
// configuration under each objective (performance, energy, ED²).
//
// Usage:
//
//	harmonia-sweep -kernel LUD.Internal [-curves] [-workers N] [-cache=false]
//	harmonia-sweep -faults [-fault-seed 42] [-fault-intensities 0,0.25,0.5,1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"harmonia"
	"harmonia/internal/batch"
	"harmonia/internal/experiments"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/power"
)

func main() {
	var (
		kernelName  = flag.String("kernel", "LUD.Internal", "kernel to sweep (App.Kernel)")
		curves      = flag.Bool("curves", false, "print every balance-curve point")
		list        = flag.Bool("list", false, "list available kernels and exit")
		workers     = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS, 1 = serial; results are identical either way)")
		useCache    = flag.Bool("cache", true, "memoize simulation results across sweeps (bit-identical; -cache=false re-simulates everything)")
		faultsSweep = flag.Bool("faults", false, "run the fault-injection robustness study instead of a kernel sweep")
		faultSeed   = flag.Int64("fault-seed", 42, "fault-injection seed for -faults")
		intensities = flag.String("fault-intensities", "", "comma-separated fault intensities for -faults (default 0,0.25,0.5,1)")
	)
	flag.Parse()

	if *faultsSweep {
		var grid []float64
		if *intensities != "" {
			for _, f := range strings.Split(*intensities, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil || v < 0 {
					fmt.Fprintf(os.Stderr, "harmonia-sweep: bad intensity %q\n", f)
					os.Exit(1)
				}
				grid = append(grid, v)
			}
		}
		env := experiments.NewEnv()
		env.Workers = *workers
		if !*useCache {
			env.Cache = nil
		}
		// A robustness sweep runs the whole suite per intensity; an
		// interrupt cancels at the next kernel boundary.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, err := experiments.Robustness(ctx, env, *faultSeed, grid)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harmonia-sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res)
		return
	}

	if *list {
		for _, k := range harmonia.AllKernels() {
			fmt.Printf("%-28s occupancy %.0f%%  demand %.1f ops/byte\n",
				k.Name, k.Occupancy()*100, k.DemandOpsPerByte())
		}
		return
	}

	var kernel *harmonia.Kernel
	for _, k := range harmonia.AllKernels() {
		if k.Name == *kernelName {
			kernel = k
		}
	}
	if kernel == nil {
		fmt.Fprintf(os.Stderr, "harmonia-sweep: unknown kernel %q (try -list)\n", *kernelName)
		os.Exit(1)
	}

	var sysOpts []harmonia.Option
	if *useCache {
		sysOpts = append(sysOpts, harmonia.WithSimCache())
	}
	sys := harmonia.NewSystem(sysOpts...)
	lab := sys.Lab()
	lab.Workers = *workers

	fig3 := experiments.Fig3BalanceCurves(lab, *kernelName)
	fmt.Println(fig3)
	if *curves {
		for _, c := range fig3.Curves {
			for _, p := range c.Points {
				fmt.Printf("  mem %4d  x=%7.2f  perf=%7.2f  (%v)\n",
					int(c.MemFreq), p.HwOpsPerByte, p.Performance, p.Config)
			}
		}
	}

	// Objective winners across the full space.
	type best struct {
		name   string
		metric func(metrics.Sample) float64
		cfg    harmonia.Config
		val    float64
		sample metrics.Sample
	}
	objectives := []best{
		{name: "performance", metric: func(s metrics.Sample) float64 { return s.Seconds }},
		{name: "energy", metric: func(s metrics.Sample) float64 { return s.Energy() }},
		{name: "ED2", metric: func(s metrics.Sample) float64 { return s.ED2() }},
	}
	for i := range objectives {
		objectives[i].val = -1
	}
	// Evaluate every configuration on the batch pool (input-order
	// results, so the winner scan below is deterministic regardless of
	// worker count), through the Lab's simulation memo when -cache is on.
	space := hw.ConfigSpace()
	runner := lab.Runner()
	//lint:ignore errdrop the eval closure never errors and the background context is never canceled
	samples, _ := batch.Map(context.Background(), *workers, space,
		func(_ context.Context, _ int, cfg harmonia.Config) (metrics.Sample, error) {
			r := runner.Run(kernel, 0, cfg)
			rails := sys.Power.Rails(cfg, power.Activity{
				VALUBusyFrac:    r.Counters.VALUBusy / 100,
				MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
				AchievedGBs:     r.AchievedGBs,
			})
			return metrics.Sample{Seconds: r.Time, Watts: rails.Card()}, nil
		})
	for ci, cfg := range space {
		s := samples[ci]
		for i := range objectives {
			v := objectives[i].metric(s)
			if objectives[i].val < 0 || v < objectives[i].val {
				objectives[i].val = v
				objectives[i].cfg = cfg
				objectives[i].sample = s
			}
		}
	}
	fmt.Println("objective winners:")
	for _, o := range objectives {
		fmt.Printf("  %-12s %-36v  %8.3f ms  %6.1f W  %8.2f mJ\n",
			o.name, o.cfg, o.sample.Seconds*1e3, o.sample.Watts, o.sample.Energy()*1e3)
	}
}
