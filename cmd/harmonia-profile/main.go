// Command harmonia-profile reproduces the paper's CodeXL-style
// measurement flow (Section 6): run an application's kernels for several
// iterations at a chosen configuration, sample the Table 2 performance
// counters at every kernel boundary, and print per-kernel statistics.
//
// Usage:
//
//	harmonia-profile -app Graph500
//	harmonia-profile -suite -cus 16 -cufreq 700 -memfreq 925
package main

import (
	"flag"
	"fmt"
	"os"

	"harmonia/internal/hw"
	"harmonia/internal/profiler"
	"harmonia/internal/workloads"
)

func main() {
	var (
		appName = flag.String("app", "", "application to profile (empty with -suite profiles everything)")
		suite   = flag.Bool("suite", false, "profile every kernel in the suite")
		iters   = flag.Int("iters", 0, "iteration override (0 = application default)")
		cus     = flag.Int("cus", 32, "active CU count")
		cufreq  = flag.Int("cufreq", 1000, "compute frequency (MHz)")
		memfreq = flag.Int("memfreq", 1375, "memory bus frequency (MHz)")
	)
	flag.Parse()

	cfg := hw.Config{
		Compute: hw.ComputeConfig{CUs: *cus, Freq: hw.MHz(*cufreq)},
		Memory:  hw.MemConfig{BusFreq: hw.MHz(*memfreq)},
	}
	if !cfg.Valid() {
		fmt.Fprintf(os.Stderr, "harmonia-profile: %v is not on the legal configuration grid\n", cfg)
		os.Exit(1)
	}

	p := profiler.New()
	p.Iterations = *iters

	switch {
	case *suite:
		fmt.Printf("profiling the %d-kernel suite at %v\n\n", len(workloads.AllKernels()), cfg)
		fmt.Print(profiler.Table(p.ProfileSuite(cfg)))
	case *appName != "":
		app := workloads.ByName(*appName)
		if app == nil {
			fmt.Fprintf(os.Stderr, "harmonia-profile: unknown application %q\n", *appName)
			os.Exit(1)
		}
		fmt.Printf("profiling %s (%d iterations) at %v\n\n", app.Name, app.Iterations, cfg)
		fmt.Print(profiler.Table(p.ProfileApp(app, cfg)))
	default:
		fmt.Fprintln(os.Stderr, "harmonia-profile: pass -app <name> or -suite")
		os.Exit(1)
	}
}
