// Command harmonia-lint runs the repo's domain-specific static
// analyzers (internal/lint) over module packages and reports invariant
// violations with file:line:col positions. Six analyzers are
// intraprocedural; four (detertaint, ctxflow, spawnjoin, spanend) run
// over a module-wide call graph with effect summaries propagated to a
// fixed point, so they see through any wrapper depth.
//
// Usage:
//
//	harmonia-lint [flags] [packages]
//
// Packages default to ./... (the whole module containing the working
// directory); explicit arguments name package directories. When a
// call-graph analyzer is selected alongside explicit directories, the
// whole module is loaded anyway (interprocedural summaries are only
// sound over the full graph) and findings are filtered to the requested
// directories. Flags:
//
//	-checks a,b   run only the named checks (default: all ten)
//	-json         emit the stable JSON report instead of text
//	-werror       treat warnings (malformed suppressions) as errors
//	-list         print the available checks and exit
//	-fix          apply suggested fixes in place (gofmt-clean, idempotent)
//	-diff         print suggested fixes as a unified diff, change nothing
//
// The exit status is 1 when any error-severity finding survives
// suppression (or any warning, under -werror), 2 on usage or load
// failure, and 0 otherwise. -fix does not change the exit status: it
// reflects the findings of this run, before fixes were applied, so a
// fix-then-verify flow re-runs the linter. Suppress an individual
// finding with a trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"harmonia/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("harmonia-lint", flag.ContinueOnError)
	var (
		checks   = fs.String("checks", "", "comma-separated checks to run (default all)")
		asJSON   = fs.Bool("json", false, "emit the stable JSON report")
		werror   = fs.Bool("werror", false, "treat warnings as errors")
		list     = fs.Bool("list", false, "list available checks and exit")
		applyFix = fs.Bool("fix", false, "apply suggested fixes in place")
		showDiff = fs.Bool("diff", false, "print suggested fixes as a unified diff without applying")
		rootDir  = fs.String("root", "", "module root (default: found from the working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *applyFix && *showDiff {
		fmt.Fprintln(os.Stderr, "harmonia-lint: -fix and -diff are mutually exclusive")
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	selected, err := lint.Select(all, *checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
		return 2
	}

	root := *rootDir
	if root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
		root, err = lint.FindModuleRoot(cwd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
	}

	loader := lint.NewLoader(root)
	pkgs, onlyDirs, err := loadPatterns(loader, fs.Args(), lint.NeedsProgram(selected))
	if err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
		return 2
	}

	diags := lint.Run(pkgs, selected, lint.DefaultPolicy())
	if onlyDirs != nil {
		diags = filterToDirs(diags, onlyDirs)
	}

	names := make([]string, len(selected))
	for i, a := range selected {
		names[i] = a.Name()
	}
	rep := lint.NewReport(root, names, diags)
	switch {
	case *showDiff:
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
		fmt.Print(res.Diff(root))
	case *asJSON:
		if err := lint.WriteJSON(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
	default:
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s: [%s] %s\n", f.File, f.Line, f.Col, f.Severity, f.Check, f.Message)
		}
		if rep.Errors+rep.Warnings > 0 {
			fmt.Printf("harmonia-lint: %d error(s), %d warning(s)\n", rep.Errors, rep.Warnings)
		}
	}
	if *applyFix {
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
		if err := res.WriteFiles(); err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "harmonia-lint: applied %d fix(es) to %d file(s), %d skipped (overlap)\n",
			res.Applied, len(res.Files), res.Skipped)
	}

	if rep.Errors > 0 || (*werror && rep.Warnings > 0) {
		return 1
	}
	return 0
}

// loadPatterns resolves command-line package arguments. "./..." (or no
// arguments) loads the whole module; other arguments name package
// directories, with a trailing "/..." loading the subtree. When an
// interprocedural analyzer is selected (needsProgram) and the arguments
// name a subset, the whole module is loaded instead and the requested
// directories are returned so the caller can filter findings — the call
// graph must see every caller to be sound.
func loadPatterns(loader *lint.Loader, args []string, needsProgram bool) ([]*lint.Package, []string, error) {
	if len(args) == 0 {
		pkgs, err := loader.LoadModule()
		return pkgs, nil, err
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(ds ...string) {
		for _, d := range ds {
			if abs, err := filepath.Abs(d); err == nil {
				d = abs
			}
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			pkgs, err := loader.LoadModule()
			return pkgs, nil, err
		}
		if dir, ok := strings.CutSuffix(arg, "/..."); ok {
			sub, err := subdirsWithGo(dir)
			if err != nil {
				return nil, nil, err
			}
			add(sub...)
			continue
		}
		add(arg)
	}
	if needsProgram {
		pkgs, err := loader.LoadModule()
		return pkgs, dirs, err
	}
	pkgs, err := loader.LoadDirs(dirs...)
	return pkgs, nil, err
}

// filterToDirs keeps diagnostics whose file lives directly in one of the
// requested package directories.
func filterToDirs(diags []lint.Diagnostic, dirs []string) []lint.Diagnostic {
	want := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		want[filepath.Clean(d)] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if want[filepath.Dir(filepath.Clean(d.Pos.Filename))] {
			out = append(out, d)
		}
	}
	return out
}

func subdirsWithGo(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	return out, err
}
