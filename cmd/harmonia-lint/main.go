// Command harmonia-lint runs the repo's domain-specific static
// analyzers (internal/lint) over module packages and reports invariant
// violations with file:line:col positions.
//
// Usage:
//
//	harmonia-lint [flags] [packages]
//
// Packages default to ./... (the whole module containing the working
// directory); explicit arguments name package directories. Flags:
//
//	-checks a,b   run only the named checks (default: all six)
//	-json         emit the stable JSON report instead of text
//	-werror       treat warnings (malformed suppressions) as errors
//	-list         print the available checks and exit
//
// The exit status is 1 when any error-severity finding survives
// suppression (or any warning, under -werror), 2 on usage or load
// failure, and 0 otherwise. Suppress an individual finding with a
// trailing or preceding comment:
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"harmonia/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("harmonia-lint", flag.ContinueOnError)
	var (
		checks  = fs.String("checks", "", "comma-separated checks to run (default all)")
		asJSON  = fs.Bool("json", false, "emit the stable JSON report")
		werror  = fs.Bool("werror", false, "treat warnings as errors")
		list    = fs.Bool("list", false, "list available checks and exit")
		rootDir = fs.String("root", "", "module root (default: found from the working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	selected, err := lint.Select(all, *checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
		return 2
	}

	root := *rootDir
	if root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
		root, err = lint.FindModuleRoot(cwd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
	}

	loader := lint.NewLoader(root)
	pkgs, err := loadPatterns(loader, root, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
		return 2
	}

	diags := lint.Run(pkgs, selected, lint.DefaultPolicy())

	names := make([]string, len(selected))
	for i, a := range selected {
		names[i] = a.Name()
	}
	rep := lint.NewReport(root, names, diags)
	if *asJSON {
		if err := lint.WriteJSON(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "harmonia-lint:", err)
			return 2
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s: [%s] %s\n", f.File, f.Line, f.Col, f.Severity, f.Check, f.Message)
		}
		if rep.Errors+rep.Warnings > 0 {
			fmt.Printf("harmonia-lint: %d error(s), %d warning(s)\n", rep.Errors, rep.Warnings)
		}
	}

	if rep.Errors > 0 || (*werror && rep.Warnings > 0) {
		return 1
	}
	return 0
}

// loadPatterns resolves command-line package arguments. "./..." (or no
// arguments) loads the whole module; other arguments name package
// directories, with a trailing "/..." loading the subtree.
func loadPatterns(loader *lint.Loader, root string, args []string) ([]*lint.Package, error) {
	if len(args) == 0 {
		return loader.LoadModule()
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(ds ...string) {
		for _, d := range ds {
			if abs, err := filepath.Abs(d); err == nil {
				d = abs
			}
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return loader.LoadModule()
		}
		if dir, ok := strings.CutSuffix(arg, "/..."); ok {
			sub, err := subdirsWithGo(dir)
			if err != nil {
				return nil, err
			}
			add(sub...)
			continue
		}
		add(arg)
	}
	return loader.LoadDirs(dirs...)
}

func subdirsWithGo(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	return out, err
}
