// Command harmonia-serve runs the simulated Harmonia platform as a
// long-lived HTTP evaluation service with built-in Prometheus-style
// telemetry.
//
// Usage:
//
//	harmonia-serve [-addr :8792] [-workers N] [-run-ttl 1h] [-max-runs 4096] [-pretrain] [-simcache]
//
// Endpoints:
//
//	POST /v1/runs            execute an app under a policy (JSON body)
//	GET  /v1/runs            list retained runs
//	POST /v1/batch           execute an app x policy matrix, aggregated
//	GET  /v1/batch/{id}      one batch's aggregate and per-cell status
//	GET  /v1/runs/{id}       one run's report
//	GET  /v1/runs/{id}/trace the 1 kHz power trace (CSV; ?format=json)
//	GET  /v1/apps            the 14-application evaluation suite
//	GET  /v1/configs         the legal hardware configuration space
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus text-format telemetry
//
// Example:
//
//	curl -s localhost:8792/v1/runs -d '{"app":"Graph500","policy":"harmonia"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harmonia"
	"harmonia/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8792", "listen address")
		workers  = flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
		runTTL   = flag.Duration("run-ttl", time.Hour, "how long finished runs stay pollable (negative = forever)")
		maxRuns  = flag.Int("max-runs", 4096, "cap on retained run records (negative = unbounded)")
		pretrain = flag.Bool("pretrain", true, "train the sensitivity predictor at startup instead of on the first harmonia request")
		simcache = flag.Bool("simcache", true, "memoize simulation results across served runs (bit-identical; fault-injected runs always bypass it)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "harmonia-serve ", log.LstdFlags|log.LUTC)

	reg := harmonia.NewTelemetry()
	sysOpts := []harmonia.Option{harmonia.WithTelemetry(reg)}
	if *simcache {
		sysOpts = append(sysOpts, harmonia.WithSimCache())
	}
	sys := harmonia.NewSystem(sysOpts...)
	if *pretrain {
		t0 := time.Now()
		if _, err := sys.TrainedPredictor(); err != nil {
			logger.Fatalf("training sensitivity predictor: %v", err)
		}
		logger.Printf("predictor trained in %s", time.Since(t0).Round(time.Millisecond))
	}

	srv := serve.New(sys, serve.Options{
		Workers:   *workers,
		RunTTL:    *runTTL,
		MaxRuns:   *maxRuns,
		Telemetry: reg,
		Logger:    logger,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	select {
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "harmonia-serve:", err)
			os.Exit(1)
		}
	}
}
