// Command harmonia-serve runs the simulated Harmonia platform as a
// long-lived HTTP evaluation service with built-in Prometheus-style
// telemetry, graceful drain, load shedding, and crash-safe
// checkpoint/resume journaling.
//
// Usage:
//
//	harmonia-serve [-addr :8792] [-workers N] [-run-ttl 1h] [-max-runs 4096]
//	               [-pretrain] [-simcache] [-journal wal.jsonl]
//	               [-request-timeout 0] [-drain-timeout 30s]
//	               [-rate 0] [-burst 0] [-breaker-threshold 5]
//	               [-debug-addr localhost:8793]
//
// Endpoints:
//
//	POST /v1/runs            execute an app under a policy (JSON body)
//	GET  /v1/runs            list retained runs
//	POST /v1/batch           execute an app x policy matrix, aggregated
//	GET  /v1/batch/{id}      one batch's aggregate and per-cell status
//	GET  /v1/runs/{id}       one run's report
//	GET  /v1/runs/{id}/trace the 1 kHz power trace (CSV; ?format=json)
//	GET  /v1/runs/{id}/spans the run's span tree (?format=chrome for
//	                         Chrome trace-event JSON; open in Perfetto)
//	GET  /v1/runs/{id}/timeline the run's power timeline and decision
//	                         log (JSON; ?format=csv, ?res=seconds)
//	GET  /v1/runs/{id}/live  Server-Sent Events stream of the run's
//	                         kernel-boundary decisions
//	GET  /v1/stats/quality   per-policy decision-quality aggregate
//	                         (oracle gap, bin confusion, churn)
//	GET  /v1/apps            the 14-application evaluation suite
//	GET  /v1/configs         the legal hardware configuration space
//	GET  /healthz            liveness (200 even while draining)
//	GET  /readyz             readiness (503 while draining)
//	GET  /metrics            Prometheus text-format telemetry
//
// SIGTERM or SIGINT starts a graceful drain: the listener stops
// accepting, /readyz turns 503, new submissions are shed, and in-flight
// runs get -drain-timeout to finish before being canceled at their next
// kernel boundary. With -journal, every submission and outcome is
// write-ahead logged; a restarted daemon replays the journal, restores
// finished runs bit-exactly, quarantines interrupted standalone runs,
// and re-executes unfinished batch cells.
//
// Example:
//
//	curl -s localhost:8792/v1/runs -d '{"app":"Graph500","policy":"harmonia"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harmonia"
	"harmonia/internal/resilience"
	"harmonia/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8792", "listen address")
		workers  = flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
		runTTL   = flag.Duration("run-ttl", time.Hour, "how long finished runs stay pollable (negative = forever)")
		maxRuns  = flag.Int("max-runs", 4096, "cap on retained run records (negative = unbounded)")
		pretrain = flag.Bool("pretrain", true, "train the sensitivity predictor at startup instead of on the first harmonia request")
		simcache = flag.Bool("simcache", true, "memoize simulation results across served runs (bit-identical; fault-injected runs always bypass it)")

		journalPath = flag.String("journal", "", "write-ahead journal path for checkpoint/resume (empty = no journal)")
		queueDepth  = flag.Int("queue-depth", 0, "admission bound on queued+executing runs; beyond it submissions get 429 (0 = 1024 + 4x workers)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-run execution deadline (0 = none)")
		drainTO     = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight runs on SIGTERM before cancellation")
		rate        = flag.Float64("rate", 0, "sustained submissions admitted per second (0 = unlimited)")
		burst       = flag.Int("burst", 0, "rate limiter burst capacity (values below 1 become 1)")
		brkThresh   = flag.Int("breaker-threshold", 5, "consecutive backend failures tripping the circuit breaker (negative = disabled)")
		brkCooldown = flag.Duration("breaker-cooldown", 10*time.Second, "initial breaker fail-fast window, doubling per failed probe")
		httpTimeout = flag.Duration("http-timeout", time.Minute, "HTTP read/write/idle timeouts for slow-client hardening (0 = none)")
		debugAddr   = flag.String("debug-addr", "", "operator debug listener for net/http/pprof and expvar, e.g. localhost:8793 (empty = disabled; keep it off the service port)")
		qualitySamp = flag.Int("quality-samples", 8, "boundaries re-scored against the oracle per finished run for /v1/stats/quality (0 = disable quality analysis)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "harmonia-serve ", log.LstdFlags|log.LUTC)

	reg := harmonia.NewTelemetry()
	sysOpts := []harmonia.Option{harmonia.WithTelemetry(reg)}
	if *simcache {
		sysOpts = append(sysOpts, harmonia.WithSimCache())
	}
	sys := harmonia.NewSystem(sysOpts...)
	if *pretrain {
		t0 := time.Now()
		if _, err := sys.TrainedPredictor(); err != nil {
			logger.Fatalf("training sensitivity predictor: %v", err)
		}
		logger.Printf("predictor trained in %s", time.Since(t0).Round(time.Millisecond))
	}

	var (
		journal *resilience.Journal
		replay  *resilience.State
	)
	if *journalPath != "" {
		var err error
		journal, replay, err = resilience.OpenJournal(*journalPath)
		if err != nil {
			logger.Fatalf("opening journal: %v", err)
		}
		if replay.Records > 0 {
			logger.Printf("journal %s: %d records, %d runs, %d batches to replay",
				*journalPath, replay.Records, len(replay.Runs), len(replay.Batches))
		}
	}

	srv := serve.New(sys, serve.Options{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		RunTTL:            *runTTL,
		MaxRuns:           *maxRuns,
		Telemetry:         reg,
		Logger:            logger,
		RequestTimeout:    *reqTimeout,
		RatePerSec:        *rate,
		RateBurst:         *burst,
		BreakerThreshold:  *brkThresh,
		BreakerCooldown:   *brkCooldown,
		Journal:           journal,
		Replay:            replay,
		QualityMaxSamples: *qualitySamp,
	})

	// Full slow-client hardening, not just header reads: a client that
	// trickles its body or never drains the response cannot pin a
	// connection (and its run slot) forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *httpTimeout > 0 {
		httpSrv.ReadTimeout = *httpTimeout
		httpSrv.WriteTimeout = *httpTimeout
		httpSrv.IdleTimeout = 2 * *httpTimeout
	}

	// The debug mux (pprof, expvar) binds to its own listener so
	// profiling endpoints never share the service port. Errors here are
	// fatal: an operator who asked for -debug-addr wants to know it is
	// not serving, not discover so mid-incident.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           serve.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		//lint:ignore spawnjoin the debug listener lives until process exit; a real listen error is fatal by design
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Fatalf("debug listener on %s: %v", *debugAddr, err)
			}
		}()
		logger.Printf("debug endpoints (pprof, expvar) on %s", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	select {
	case <-ctx.Done():
		logger.Printf("draining: shedding new work, waiting up to %s for in-flight runs", *drainTO)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		// Drain the service first — in-flight runs finish or are
		// canceled at kernel boundaries, queued jobs are failed, batch
		// watchers reaped, the journal flushed and closed — then close
		// the listener. Synchronous HTTP waiters got their responses
		// when their runs went terminal, so the HTTP shutdown is quick.
		if err := srv.Shutdown(drainCtx); err != nil {
			logger.Printf("drain: %v (remaining runs were canceled)", err)
		} else {
			logger.Printf("drained cleanly")
		}
		httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelHTTP()
		if err := httpSrv.Shutdown(httpCtx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(httpCtx)
		}
	case err := <-errc:
		srv.Close()
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "harmonia-serve:", err)
			os.Exit(1)
		}
	}
}
