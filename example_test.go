package harmonia_test

import (
	"fmt"

	"harmonia"
)

// The canonical flow: run an application under the baseline and under
// Harmonia, then compare the figures of merit.
func Example() {
	sys := harmonia.NewSystem()

	base, err := sys.Run(harmonia.App("Sort"), sys.Baseline())
	if err != nil {
		panic(err)
	}
	hm, err := sys.Run(harmonia.App("Sort"), sys.Harmonia())
	if err != nil {
		panic(err)
	}

	fmt.Printf("power saved: %.0f%%\n",
		100*harmonia.Improvement(base.AveragePower(), hm.AveragePower()))
	fmt.Printf("performance kept: %v\n",
		hm.TotalTime() < base.TotalTime()*1.01)
	// Output:
	// power saved: 12%
	// performance kept: true
}

// Inspecting the hardware configuration space the paper sweeps.
func ExampleConfigSpace() {
	space := harmonia.ConfigSpace()
	fmt.Println(len(space), "configurations")
	fmt.Println("min:", harmonia.MinConfig())
	fmt.Println("max:", harmonia.MaxConfig())
	// Output:
	// 448 configurations
	// min: 4CU@300MHz/mem@475MHz(91GB/s)
	// max: 32CU@1000MHz/mem@1375MHz(264GB/s)
}

// Placing a kernel on the roofline (Section 3's balance analysis).
func ExampleSystem_Analyze() {
	sys := harmonia.NewSystem()
	var kernel *harmonia.Kernel
	for _, k := range harmonia.AllKernels() {
		if k.Name == "DeviceMemory.Stream" {
			kernel = k
		}
	}
	p := sys.Analyze(kernel, 0, harmonia.MaxConfig())
	fmt.Println(p.Boundedness)
	// Output:
	// memory-bound
}

// The published Table 3 coefficients ship for reference.
func ExamplePaperTable3() {
	p := harmonia.PaperTable3()
	fmt.Printf("bandwidth intercept: %.2f\n", p.Bandwidth.Intercept)
	fmt.Printf("compute intercept: %.2f\n", p.Compute.Intercept)
	// Output:
	// bandwidth intercept: -0.42
	// compute intercept: 0.06
}
