package harmonia

// This file holds one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact on the simulated
// platform and reports the headline quantities as custom metrics
// (b.ReportMetric), so `go test -bench=. -benchmem` prints the full
// reproduction alongside the runtime cost of regenerating it.
// EXPERIMENTS.md records one such run next to the paper's numbers.

import (
	"context"

	"sync"
	"testing"

	"harmonia/internal/experiments"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/session"
	"harmonia/internal/simcache"
	"harmonia/internal/sweep"
	"harmonia/internal/trace"
)

// The experiment environment is shared across benchmarks: predictor
// training and the five-policy sweep dominate setup cost and the
// results are deterministic.
var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func benchLab(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv = experiments.NewEnv() })
	return benchEnv
}

func BenchmarkFig01PowerBreakdown(b *testing.B) {
	e := benchLab(b)
	var r experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1PowerBreakdown(e)
	}
	b.ReportMetric(r.GPUShare*100, "gpu-share-%")
	b.ReportMetric(r.MemShare*100, "mem-share-%")
	b.ReportMetric(r.OtherShare*100, "other-share-%")
}

func BenchmarkTable1DVFSTable(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Table1DVFS())
	}
	b.ReportMetric(float64(n), "dpm-states")
}

func BenchmarkFig03BalanceCurves(b *testing.B) {
	e := benchLab(b)
	var dmKnee, ludKnee float64
	for i := 0; i < b.N; i++ {
		dmKnee = experiments.Fig3BalanceCurves(e, "DeviceMemory.Stream").Knee
		ludKnee = experiments.Fig3BalanceCurves(e, "LUD.Internal").Knee
	}
	b.ReportMetric(dmKnee, "devicememory-knee-x")
	b.ReportMetric(ludKnee, "lud-knee-x")
}

func BenchmarkFig04ComputePower(b *testing.B) {
	e := benchLab(b)
	var v float64
	for i := 0; i < b.N; i++ {
		v = experiments.Fig4ComputePowerRange(e).Variation
	}
	b.ReportMetric(v*100, "variation-%")
}

func BenchmarkFig05MemoryPower(b *testing.B) {
	e := benchLab(b)
	var v float64
	for i := 0; i < b.N; i++ {
		v = experiments.Fig5MemoryPowerRange(e).Variation
	}
	b.ReportMetric(v*100, "variation-%")
}

func BenchmarkFig06MetricComparison(b *testing.B) {
	e := benchLab(b)
	var r experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6MetricComparison(e)
	}
	if row, ok := r.Row("LUD", "energy"); ok {
		b.ReportMetric(row.Performance*100, "lud-energyopt-perf-%")
	}
	if row, ok := r.Row("LUD", "ed2"); ok {
		b.ReportMetric(row.Performance*100, "lud-ed2opt-perf-%")
	}
}

func BenchmarkFig07Occupancy(b *testing.B) {
	e := benchLab(b)
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig7OccupancyEffect(e)
	}
	b.ReportMetric(rows[0].BandwidthSensitivity, "bottomscan-bw-sens")
	b.ReportMetric(rows[1].BandwidthSensitivity, "advancevelocity-bw-sens")
}

func BenchmarkFig08Divergence(b *testing.B) {
	e := benchLab(b)
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8DivergenceEffect(e)
	}
	b.ReportMetric(rows[0].ComputeFreqSensitive, "srad-prepare-freq-sens")
	b.ReportMetric(rows[1].ComputeFreqSensitive, "bottomscan-freq-sens")
}

func BenchmarkFig09ClockDomains(b *testing.B) {
	e := benchLab(b)
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9ClockDomains(e)
	}
	b.ReportMetric(r.ICActivity, "ic-activity")
	b.ReportMetric(r.ComputeFreqSensitivity, "freq-sens")
}

func BenchmarkTable3SensitivityTraining(b *testing.B) {
	e := benchLab(b)
	var r experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3Model(e)
	}
	b.ReportMetric(r.Bandwidth.Corr, "bw-model-corr")
	b.ReportMetric(r.Compute.Corr, "comp-model-corr")
	b.ReportMetric(r.Accuracy.BandwidthMAE, "bw-mae")
	b.ReportMetric(r.Accuracy.ComputeMAE, "comp-mae")
}

func BenchmarkFig10ED2(b *testing.B) {
	e := benchLab(b)
	var sum experiments.Summary
	for i := 0; i < b.N; i++ {
		var err error
		_, sum, err = experiments.Fig10ED2(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.ED2Harmonia*100, "harmonia-ed2-gain-%")
	b.ReportMetric(sum.ED2CG*100, "cg-ed2-gain-%")
	b.ReportMetric(sum.ED2Oracle*100, "oracle-ed2-gain-%")
	b.ReportMetric(sum.BestED2*100, "best-app-ed2-gain-%")
}

func BenchmarkFig11Energy(b *testing.B) {
	e := benchLab(b)
	var sum experiments.Summary
	for i := 0; i < b.N; i++ {
		var err error
		_, sum, err = experiments.Fig11Energy(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.EnergySaving*100, "harmonia-energy-saving-%")
}

func BenchmarkFig12Power(b *testing.B) {
	e := benchLab(b)
	var sum experiments.Summary
	for i := 0; i < b.N; i++ {
		var err error
		_, sum, err = experiments.Fig12Power(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.PowerSaving*100, "harmonia-power-saving-%")
}

func BenchmarkFig13Performance(b *testing.B) {
	e := benchLab(b)
	var sum experiments.Summary
	for i := 0; i < b.N; i++ {
		var err error
		_, sum, err = experiments.Fig13Performance(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.SlowdownHarmonia*100, "harmonia-slowdown-%")
	b.ReportMetric(sum.WorstCGSlowdown*100, "worst-cg-slowdown-%")
}

func BenchmarkComputeOnlyDVFS(b *testing.B) {
	e := benchLab(b)
	var r experiments.ComputeOnlyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ComputeOnlyStudy(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ED2Gain*100, "ed2-gain-%")
}

func BenchmarkPredictorAccuracy(b *testing.B) {
	e := benchLab(b)
	var mae float64
	for i := 0; i < b.N; i++ {
		mae = experiments.PredictorAccuracy(e).BandwidthMAE
	}
	b.ReportMetric(mae, "bw-mae")
}

func BenchmarkFig14Graph500Phases(b *testing.B) {
	e := benchLab(b)
	var swing float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig14Graph500Phases(e)
		lo, hi := rows[0].VALUInsts, rows[0].VALUInsts
		for _, r := range rows {
			if r.VALUInsts < lo {
				lo = r.VALUInsts
			}
			if r.VALUInsts > hi {
				hi = r.VALUInsts
			}
		}
		swing = hi / lo
	}
	b.ReportMetric(swing, "inst-swing-x")
}

func BenchmarkFig15Residency(b *testing.B) {
	e := benchLab(b)
	var states int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15MemFreqResidency(e)
		if err != nil {
			b.Fatal(err)
		}
		states = len(r.Overall)
	}
	b.ReportMetric(float64(states), "mem-states")
}

func BenchmarkFig16TunableResidency(b *testing.B) {
	e := benchLab(b)
	var at32 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16TunableResidency(e)
		if err != nil {
			b.Fatal(err)
		}
		at32 = r.CUs[32]
	}
	b.ReportMetric(at32*100, "time-at-32cu-%")
}

func BenchmarkFig17PowerSharing(b *testing.B) {
	e := benchLab(b)
	var gpuShare float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17PowerSharing(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
		gpuShare = r.GPUSavingsShare
	}
	b.ReportMetric(gpuShare*100, "gpu-savings-share-%")
}

func BenchmarkFig18CGvsFG(b *testing.B) {
	e := benchLab(b)
	var fgIncr float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig18CGvsFG(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "Streamcluster" {
				fgIncr = r.FGIncrement
			}
		}
	}
	b.ReportMetric(fgIncr*100, "streamcluster-fg-increment-%")
}

// Ablation benches: the design-choice studies DESIGN.md §6 documents.

func BenchmarkAblationMemVoltageScaling(b *testing.B) {
	e := benchLab(b)
	var r experiments.MemVoltageResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.MemVoltageScalingStudy(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FixedRail*100, "fixed-rail-saving-%")
	b.ReportMetric(r.ScaledRail*100, "scaled-rail-saving-%")
}

func BenchmarkAblationObjectiveEDvsED2(b *testing.B) {
	e := benchLab(b)
	var r experiments.ObjectiveResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ObjectiveStudy(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ED2Gain*100, "ed2-oracle-gain-%")
	b.ReportMetric(r.EDGain*100, "ed-oracle-gain-%")
}

func BenchmarkAblationTDPCaps(b *testing.B) {
	e := benchLab(b)
	var rows []experiments.TDPRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TDPStudy(context.Background(), e, []float64{250, 120})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Slowdown*100, "slowdown-at-120W-%")
}

func BenchmarkAblationControllerKnobs(b *testing.B) {
	e := benchLab(b)
	var rows []experiments.KnobRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ControllerKnobStudy(context.Background(), e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ED2Gain*100, "default-ed2-gain-%")
}

func BenchmarkExtensionStackedEnvelope(b *testing.B) {
	e := benchLab(b)
	var r experiments.StackedResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.StackedEnvelopeStudy(e, 85)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[0].Slowdown*100, "baseline-throttle-slowdown-%")
	b.ReportMetric(r.Rows[1].Slowdown*100, "harmonia-throttle-slowdown-%")
}

// Component micro-benchmarks: the cost of the moving parts themselves.

func BenchmarkSimulatorKernelInvocation(b *testing.B) {
	sys := NewSystem()
	k := AllKernels()[0]
	cfg := MaxConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Sim.Run(k, i, cfg)
	}
}

func BenchmarkControllerObserveDecide(b *testing.B) {
	e := benchLab(b)
	sys := NewSystem()
	sys.UsePredictor(e.Predictor())
	ctrl := sys.Harmonia()
	k := AllKernels()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := ctrl.Decide(k.Name, i)
		ctrl.Observe(k.Name, i, sys.Sim.Run(k, i, cfg))
	}
}

func BenchmarkFullApplicationUnderHarmonia(b *testing.B) {
	e := benchLab(b)
	sys := NewSystem()
	sys.UsePredictor(e.Predictor())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(App("Sort"), sys.Harmonia()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleExhaustiveSearch(b *testing.B) {
	sys := NewSystem()
	app := App("SPMV")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(App("SPMV"), sys.Oracle(app)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulation memo and batch engine (DESIGN.md section 9) ---------------
//
// The remaining benchmarks quantify the tentpole infrastructure rather
// than a paper figure: how much a warm simulation memo accelerates the
// oracle's exhaustive sweep, and what the bounded worker pool buys the
// five-policy suite. scripts/bench.sh runs them and records the headline
// ratios in BENCH_sweep.json.

// oracleSweep builds a fresh Oracle (so its per-kernel decision cache
// cannot hide the sweep) and decides every kernel of the app, forcing a
// full exhaustive search over hw.ConfigSpace per kernel. A non-nil rec
// attaches the span recorder, the way a traced served run would.
func oracleSweep(b *testing.B, sim gpusim.Runner, rec *trace.Recorder) {
	b.Helper()
	app := App("LUD")
	o := oracle.New(sim, power.Default(), app)
	if rec != nil {
		o.AttachTracer(rec)
	}
	for _, k := range app.Kernels {
		o.Decide(k.Name, 0)
	}
}

func BenchmarkOracleSweepUncached(b *testing.B) {
	sim := gpusim.Default()
	for i := 0; i < b.N; i++ {
		oracleSweep(b, sim, nil)
	}
}

func BenchmarkOracleSweepCached(b *testing.B) {
	// One memo shared across iterations: the first sweep populates it,
	// every later sweep answers from cache — the steady state a served
	// deployment reaches after its first oracle run. No recorder is
	// attached, so this measures the disabled-tracing (nil fast path)
	// cost; scripts/bench.sh gates BenchmarkOracleSweepCachedTraced
	// against it at <5% overhead, and the disabled path is a strict
	// subset of the traced one.
	runner := simcache.For(gpusim.Default(), simcache.New())
	oracleSweep(b, runner, nil) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracleSweep(b, runner, nil)
	}
}

// The disabled-tracing gate: sweep.MinTraced with a nil span must cost
// the same as plain sweep.Min over a warm memo — the nil fast path is
// one branch. scripts/bench.sh asserts the pair stays within 5%.

func cachedSweepEval(b *testing.B) ([]hw.Config, sweep.Eval) {
	b.Helper()
	runner := simcache.For(gpusim.Default(), simcache.New())
	k := AllKernels()[0]
	space := hw.ConfigSpace()
	eval := func(cfg hw.Config) float64 { return runner.Run(k, 0, cfg).Time }
	sweep.Min(space, 1, eval) // warm the memo
	return space, eval
}

func BenchmarkCachedSweepMin(b *testing.B) {
	space, eval := cachedSweepEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep.Min(space, 1, eval)
	}
}

func BenchmarkCachedSweepMinNilTraced(b *testing.B) {
	space, eval := cachedSweepEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep.MinTraced(nil, space, 1, eval)
	}
}

func BenchmarkOracleSweepCachedTraced(b *testing.B) {
	// The same steady-state sweep with a live span recorder: each
	// iteration records one decision span (with its sweep child and
	// argmin attributes) per kernel. A fresh recorder per iteration
	// keeps the span slice from growing across b.N.
	runner := simcache.For(gpusim.Default(), simcache.New())
	oracleSweep(b, runner, nil) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracleSweep(b, runner, trace.New(uint64(i)+1))
	}
}

// The disabled-flight-recorder gate: a cached run with no timeline
// recorder attached must cost what driving the session directly costs —
// the recorder-off path adds only a nil check per kernel boundary.
// scripts/bench.sh takes the minimum of repeated interleaved runs of
// this trio and fails if Off exceeds Base by more than 5%. The Off/On
// pair is reported as timeline recording overhead but not gated:
// recording does real work (bucketing every DAQ sample and appending a
// decision record per boundary).

func BenchmarkCachedRunBase(b *testing.B) {
	runner := simcache.For(gpusim.Default(), simcache.New())
	pow := power.Default()
	app := App("SRAD")
	warm := &session.Session{Sim: runner, Power: pow, Policy: policy.NewBaseline()}
	if _, err := warm.Run(app); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &session.Session{Sim: runner, Power: pow, Policy: policy.NewBaseline()}
		if _, err := s.Run(app); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachedRunTimelineOff(b *testing.B) {
	sys := NewSystem(WithSimCache())
	app := App("SRAD")
	if _, err := sys.Run(app, sys.Baseline()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(app, sys.Baseline()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachedRunTimelineOn(b *testing.B) {
	sys := NewSystem(WithSimCache())
	app := App("SRAD")
	if _, err := sys.Run(app, sys.Baseline()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := NewTimelineRecorder()
		if _, err := sys.RunContext(context.Background(), app, sys.Baseline(), RunWithTimeline(rec)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSuite evaluates the full five-policy suite from scratch with the
// given worker bound. Each iteration builds a fresh environment (fresh
// memo, fresh predictor) so serial and parallel runs do identical work.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := experiments.NewEnv()
		e.Workers = workers
		if _, err := e.Results(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// The worker-count axis: scripts/bench.sh derives
// suite.speedup_by_workers from these (Serial doubles as the 1-worker
// point, Parallel as the GOMAXPROCS point) and gates the 4-worker
// speedup against a machine-aware floor — the single serial/parallel
// pair this file used to record is what let the 1.17× scaling bug hide
// in trend data.
func BenchmarkSuiteSerial(b *testing.B)   { benchSuite(b, 1) }
func BenchmarkSuiteWorkers2(b *testing.B) { benchSuite(b, 2) }
func BenchmarkSuiteWorkers4(b *testing.B) { benchSuite(b, 4) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }
