package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	// Same name returns the same series.
	if got := r.Counter("test_total", "help").Value(); got != 3.5 {
		t.Errorf("re-lookup = %v, want 3.5", got)
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := New()
	g := r.Gauge("test_gauge", "help")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := New()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Errorf("sum = %v, want 55.55", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="10"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		`test_seconds_sum 55.55`,
		`test_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := New()
	v := r.CounterVec("req_total", "requests", "method", "code")
	v.With("GET", "200").Add(3)
	v.With("POST", "500").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total requests",
		"# TYPE req_total counter",
		`req_total{method="GET",code="200"} 3`,
		`req_total{method="POST",code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionDeterministic(t *testing.T) {
	build := func() string {
		r := New()
		r.Counter("zz_total", "z").Inc()
		r.Gauge("aa_gauge", "a").Set(1)
		v := r.CounterVec("mm_total", "m", "k")
		v.With("b").Inc()
		v.With("a").Inc()
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := build()
	for i := 0; i < 10; i++ {
		if got := build(); got != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	// Families sort by name.
	if strings.Index(first, "aa_gauge") > strings.Index(first, "mm_total") ||
		strings.Index(first, "mm_total") > strings.Index(first, "zz_total") {
		t.Errorf("families not sorted:\n%s", first)
	}
	// Series sort by label value.
	if strings.Index(first, `mm_total{k="a"}`) > strings.Index(first, `mm_total{k="b"}`) {
		t.Errorf("series not sorted:\n%s", first)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "h", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}

// TestExpositionBytePinned pins the complete rendered exposition —
// byte for byte — for a registry whose labels and help text hold every
// character the format escapes (backslash, double quote, newline).
// Labeled quality families (misbin tunable/pair labels) ride on this
// escaping; a renderer change that shifts a single byte must be
// deliberate.
func TestExpositionBytePinned(t *testing.T) {
	r := New()
	r.Counter("pin_plain_total", "plain help").Add(2)
	r.CounterVec("pin_esc_total", `help with \ and`+"\nnewline", "path", "quote").
		With(`C:\tmp`+"\nend", `say "hi"`).Inc()
	r.HistogramVec("pin_hist", "h", []float64{0.5, 2}, "bin").With("LOW\\HIGH").Observe(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP pin_esc_total help with \\\\ and\\nnewline\n" +
		"# TYPE pin_esc_total counter\n" +
		"pin_esc_total{path=\"C:\\\\tmp\\nend\",quote=\"say \\\"hi\\\"\"} 1\n" +
		"# HELP pin_hist h\n" +
		"# TYPE pin_hist histogram\n" +
		"pin_hist_bucket{bin=\"LOW\\\\HIGH\",le=\"0.5\"} 0\n" +
		"pin_hist_bucket{bin=\"LOW\\\\HIGH\",le=\"2\"} 1\n" +
		"pin_hist_bucket{bin=\"LOW\\\\HIGH\",le=\"+Inf\"} 1\n" +
		"pin_hist_sum{bin=\"LOW\\\\HIGH\"} 1\n" +
		"pin_hist_count{bin=\"LOW\\\\HIGH\"} 1\n" +
		"# HELP pin_plain_total plain help\n" +
		"# TYPE pin_plain_total counter\n" +
		"pin_plain_total 2\n"
	if got := b.String(); got != want {
		t.Errorf("exposition bytes drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("dup", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("dup", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	r.Counter("bad-name", "h")
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 10, 3)
	if len(exp) != 3 || exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
	lin := LinearBuckets(0.5, 0.5, 3)
	if len(lin) != 3 || lin[0] != 0.5 || lin[1] != 1 || lin[2] != 1.5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
}

// TestConcurrentUse hammers every metric kind from many goroutines;
// run under -race this is the registry's thread-safety regression test.
func TestConcurrentUse(t *testing.T) {
	r := New()
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := string(rune('a' + g%4))
			for i := 0; i < iters; i++ {
				r.Counter("conc_total", "h").Inc()
				r.CounterVec("conc_vec_total", "h", "l").With(label).Inc()
				r.Gauge("conc_gauge", "h").Add(1)
				r.Histogram("conc_hist", "h", []float64{1, 10}).Observe(float64(i))
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "h").Value(); got != goroutines*iters {
		t.Errorf("concurrent counter = %v, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("conc_hist", "h", []float64{1, 10}).Count(); got != goroutines*iters {
		t.Errorf("concurrent histogram count = %v, want %d", got, goroutines*iters)
	}
}
