// Package telemetry is a dependency-free metrics layer for the Harmonia
// service: counters, gauges, and histograms — optionally labelled — that
// render in the Prometheus text exposition format. It is modelled on the
// collector shape of production GPU exporters (a registry owning metric
// families, families owning labelled series) but carries no client
// library: the simulator must stay importable with a bare Go toolchain.
//
// All operations are safe for concurrent use. Exposition output is
// deterministic: families sort by name and series by label values, so
// tests can diff scrapes textually.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// metricType is the TYPE line vocabulary of the exposition format.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry owns a set of metric families and renders them as a
// Prometheus text-format scrape.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one metric family: a name, a type, and its labelled series.
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// series is one labelled time series of a family.
type series struct {
	labelValues []string

	mu    sync.Mutex
	value float64 // counter and gauge

	counts []uint64 // histogram: cumulative-to-be bucket counts (per bucket)
	sum    float64
	count  uint64
}

// lookup returns the family with the given identity, creating it on
// first use. Re-registering a name with a different type or label set is
// a programming error and panics — silently returning a mismatched
// family would corrupt the scrape.
func (r *Registry) lookup(name, help string, typ metricType, labelNames []string, buckets []float64) *family {
	if err := checkName(name); err != nil {
		panic("telemetry: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v, was %s%v",
				name, typ, labelNames, f.typ, f.labelNames))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// get returns the series for the given label values, creating it on
// first use.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	if f.typ == typeHistogram {
		s.counts = make([]uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	c.s.mu.Lock()
	c.s.value += v
	c.s.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.value
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.value = v
	g.s.mu.Unlock()
}

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) {
	g.s.mu.Lock()
	g.s.value += v
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.value
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	f *family
	s *series
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	for i, ub := range h.f.buckets {
		if v <= ub {
			h.s.counts[i]++
		}
	}
	h.s.sum += v
	h.s.count++
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.count
}

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.sum
}

// Counter returns the unlabelled counter with the given name, creating
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, nil, nil)
	return &Counter{s: f.get(nil)}
}

// Gauge returns the unlabelled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// Histogram returns the unlabelled histogram with the given name and
// bucket upper bounds (ascending; a +Inf bucket is implied).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, typeHistogram, nil, checkBuckets(buckets))
	return &Histogram{f: f, s: f.get(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labelled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, typeCounter, labelNames, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labelled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, typeGauge, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.get(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labelled histogram family with the given
// name and bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.lookup(name, help, typeHistogram, labelNames, checkBuckets(buckets))}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.get(labelValues)}
}

// ExponentialBuckets returns n upper bounds starting at start and
// multiplying by factor: the standard latency/energy bucketing.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds starting at start and stepping
// by width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// DefDurationBuckets is the default bucketing for request durations in
// seconds.
var DefDurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Families returns the number of metric families registered.
func (r *Registry) Families() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fams)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// write renders one family.
func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, len(keys))
	for i, k := range keys {
		sers[i] = f.series[k]
	}
	f.mu.Unlock()
	for _, s := range sers {
		s.mu.Lock()
		switch f.typ {
		case typeHistogram:
			for i, ub := range f.buckets {
				// counts[i] is already cumulative: Observe increments
				// every bucket whose bound the value fits under.
				fmt.Fprintf(b, "%s_bucket%s %d\n",
					f.name, f.labelString(s.labelValues, formatFloat(ub)), s.counts[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labelString(s.labelValues, "+Inf"), s.count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, f.labelString(s.labelValues, ""), formatFloat(s.sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, f.labelString(s.labelValues, ""), s.count)
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name, f.labelString(s.labelValues, ""), formatFloat(s.value))
		}
		s.mu.Unlock()
	}
}

// labelString renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label.
func (f *family) labelString(values []string, le string) string {
	if len(f.labelNames) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range f.labelNames {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", n, escapeLabel(values[i]))
	}
	if le != "" {
		if len(f.labelNames) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	s := fmt.Sprintf("%g", v)
	return s
}

// escapeHelp escapes backslash and newline for HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslash, double quote, and newline inside label
// values, per the exposition-format rules.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// checkName validates a metric name against [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// checkBuckets validates ascending positive-count bucket bounds.
func checkBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("telemetry: histogram wants at least one bucket")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("telemetry: histogram buckets must ascend")
		}
	}
	return buckets
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
