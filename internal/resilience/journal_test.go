package resilience

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Runs) != 0 || len(st.Batches) != 0 {
		t.Fatalf("fresh journal not empty: %+v", st)
	}

	ed2 := math.Pi * 1e3 // an awkward float: restore must be bit-exact
	records := []Record{
		{T: RecBatch, ID: "batch-000001", Apps: []string{"Graph500"}, Policies: []string{"harmonia", "baseline"}, Runs: []string{"run-000001", "run-000002"}},
		{T: RecRun, ID: "run-000001", App: "Graph500", Policy: "harmonia", Batch: "batch-000001"},
		{T: RecRun, ID: "run-000002", App: "Graph500", Policy: "baseline", Batch: "batch-000001"},
		{T: RecRun, ID: "run-000003", App: "SRAD", Policy: "fixed", Config: "16/700/925", FaultSeed: 7, FaultIntensity: 0.5},
		{T: RecDone, ID: "run-000001", ED2: F64(ed2), TimeS: F64(1.25), EnergyJ: F64(300.5)},
		{T: RecFail, ID: "run-000002", Status: "panicked", Err: "boom"},
	}
	for _, rec := range records {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{T: RecRun, ID: "x"}); err == nil {
		t.Error("append after close should fail")
	}

	j2, st2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st2.Records != len(records) {
		t.Errorf("replayed %d records, want %d", st2.Records, len(records))
	}
	if got := st2.RunOrder; len(got) != 3 || got[0] != "run-000001" || got[2] != "run-000003" {
		t.Errorf("run order = %v", got)
	}

	done := st2.Runs["run-000001"]
	if done.Status != "done" || done.ED2 == nil ||
		math.Float64bits(*done.ED2) != math.Float64bits(ed2) {
		t.Errorf("done run restored wrong: %+v", done)
	}
	panicked := st2.Runs["run-000002"]
	if panicked.Status != "panicked" || panicked.Err != "boom" {
		t.Errorf("panicked run restored wrong: %+v", panicked)
	}
	interrupted := st2.Runs["run-000003"]
	if interrupted.Terminal() {
		t.Errorf("run with no outcome record should be non-terminal: %+v", interrupted)
	}
	if interrupted.FaultSeed != 7 || interrupted.FaultIntensity != 0.5 || interrupted.Config != "16/700/925" {
		t.Errorf("submission settings lost: %+v", interrupted)
	}

	b := st2.Batches["batch-000001"]
	if b == nil || b.Done || len(b.Runs) != 2 {
		t.Errorf("batch restored wrong: %+v", b)
	}

	// Appends continue the same file: mark the batch done, reopen.
	if err := j2.Append(Record{T: RecBatchDone, ID: "batch-000001"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, st3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Batches["batch-000001"].Done {
		t.Error("batchdone record not folded on reopen")
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	full := `{"t":"run","id":"run-000001","app":"SRAD","policy":"baseline"}` + "\n" +
		`{"t":"done","id":"run-000001","ed2":1.5}` + "\n" +
		`{"t":"run","id":"run-0000` // the crash happened mid-write
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	j, st, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	defer j.Close()
	if len(st.Runs) != 1 || st.Runs["run-000001"].Status != "done" {
		t.Errorf("state = %+v", st.Runs)
	}
}

// TestJournalTruncatesTornTailBeforeAppend is the post-crash poisoning
// regression: OpenJournal must cut the torn fragment off the file so
// the first append after the crash starts a fresh line. Without the
// truncation, the append concatenates onto the fragment and the NEXT
// restart rejects the whole journal as corrupt.
func TestJournalTruncatesTornTailBeforeAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	full := `{"t":"run","id":"run-000001","app":"SRAD","policy":"baseline"}` + "\n" +
		`{"t":"done","id":"run-000001","ed2":1.5}` + "\n" +
		`{"t":"run","id":"run-torn","ap` // the crash happened mid-write
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	j, st, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if st.Records != 2 {
		t.Fatalf("replayed %d records, want 2", st.Records)
	}
	// The post-crash daemon appends a new record and exits cleanly.
	if err := j.Append(Record{T: RecRun, ID: "run-000002", App: "LUD", Policy: "baseline"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "run-torn") {
		t.Errorf("torn fragment survived on disk:\n%s", raw)
	}
	// The second restart — the one the un-truncated append used to
	// poison — must read every record back.
	j2, st2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal poisoned by post-crash append: %v", err)
	}
	defer j2.Close()
	if st2.Records != 3 || st2.Runs["run-000002"] == nil {
		t.Errorf("second restart folded %d records (run-000002: %v), want 3 with run-000002 present",
			st2.Records, st2.Runs["run-000002"])
	}
	if st2.Runs["run-000001"].Status != "done" {
		t.Errorf("pre-crash outcome lost: %+v", st2.Runs["run-000001"])
	}
}

func TestJournalRejectsMidStreamCorruption(t *testing.T) {
	body := `{"t":"run","id":"run-000001"}` + "\n" +
		`garbage garbage` + "\n" +
		`{"t":"done","id":"run-000001"}` + "\n"
	if _, err := ReadState(strings.NewReader(body)); err == nil {
		t.Fatal("mid-stream corruption should be an error, not a silent skip")
	}
}

func TestJournalConcurrentAppendsDoNotInterleave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j.Append(Record{T: RecRun, ID: "run", App: strings.Repeat("x", 1+i%7)}) //nolint:errcheck
		}(i)
	}
	wg.Wait()
	if got := j.Records(); got != n {
		t.Errorf("records = %d, want %d", got, n)
	}
	j.Close()
	_, st, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("concurrent appends produced a corrupt journal: %v", err)
	}
	if st.Records != n {
		t.Errorf("replayed %d records, want %d", st.Records, n)
	}
}

func TestNilJournalIsSilent(t *testing.T) {
	var j *Journal
	if err := j.Append(Record{T: RecRun, ID: "x"}); err != nil {
		t.Error("nil journal append should succeed silently")
	}
	if err := j.Close(); err != nil {
		t.Error("nil journal close should succeed")
	}
	if j.Records() != 0 {
		t.Error("nil journal records != 0")
	}
}
