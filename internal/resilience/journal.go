package resilience

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record kinds. A journal is a flat stream of these; State folds the
// stream into per-run and per-batch outcomes.
const (
	// RecRun journals a run submission (standalone or batch cell) with
	// everything needed to re-execute it: app, policy, policy
	// parameters, and the fault seed/intensity.
	RecRun = "run"
	// RecDone journals a successful completion with the run's headline
	// numbers. encoding/json round-trips float64 exactly, so a restored
	// record reproduces the bits.
	RecDone = "done"
	// RecFail journals a terminal failure (status "failed" or
	// "panicked") with its error text.
	RecFail = "fail"
	// RecBatch journals a batch submission: the matrix and the IDs of
	// its cell runs, each of which has its own RecRun line.
	RecBatch = "batch"
	// RecBatchDone journals that every cell of a batch reached a
	// terminal state.
	RecBatchDone = "batchdone"
)

// Record is one journal line. Field presence depends on T; omitempty
// keeps the common lines short.
type Record struct {
	T  string `json:"t"`
	ID string `json:"id"`

	// Submission fields (RecRun).
	App            string  `json:"app,omitempty"`
	Policy         string  `json:"policy,omitempty"`
	Config         string  `json:"config,omitempty"`
	TDPWatts       float64 `json:"tdp_watts,omitempty"`
	FaultSeed      int64   `json:"fault_seed,omitempty"`
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	// Batch is the owning batch ID when the run is a batch cell.
	Batch string `json:"batch,omitempty"`

	// Matrix fields (RecBatch).
	Apps     []string `json:"apps,omitempty"`
	Policies []string `json:"policies,omitempty"`
	Runs     []string `json:"runs,omitempty"`

	// Outcome fields (RecDone, RecFail).
	Status  string   `json:"status,omitempty"`
	Err     string   `json:"err,omitempty"`
	ED2     *float64 `json:"ed2,omitempty"`
	TimeS   *float64 `json:"time_s,omitempty"`
	EnergyJ *float64 `json:"energy_j,omitempty"`
}

// RunState is one run's journal-derived lifecycle.
type RunState struct {
	ID             string
	App            string
	Policy         string
	Config         string
	TDPWatts       float64
	FaultSeed      int64
	FaultIntensity float64
	Batch          string

	// Status is "" while the run has no terminal record (interrupted by
	// the crash), else "done", "failed", or "panicked".
	Status  string
	Err     string
	ED2     *float64
	TimeS   *float64
	EnergyJ *float64
}

// Terminal reports whether the journal recorded an outcome for the run.
func (r *RunState) Terminal() bool { return r.Status != "" }

// BatchState is one batch's journal-derived lifecycle.
type BatchState struct {
	ID       string
	Apps     []string
	Policies []string
	Runs     []string
	Done     bool
}

// State is a journal folded into resumable form.
type State struct {
	// Runs maps run ID to lifecycle; RunOrder preserves submission
	// order (replay re-creates records in the order they were born).
	Runs     map[string]*RunState
	RunOrder []string
	// Batches maps batch ID to lifecycle; BatchOrder preserves
	// submission order.
	Batches    map[string]*BatchState
	BatchOrder []string
	// Records counts well-formed lines consumed.
	Records int
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Runs: make(map[string]*RunState), Batches: make(map[string]*BatchState)}
}

// Apply folds one record into the state. Unknown kinds and outcome
// records for unknown IDs are ignored (forward compatibility: an older
// daemon replaying a newer journal resumes what it understands).
func (s *State) Apply(rec Record) {
	s.Records++
	switch rec.T {
	case RecRun:
		if _, ok := s.Runs[rec.ID]; ok {
			return
		}
		s.Runs[rec.ID] = &RunState{
			ID: rec.ID, App: rec.App, Policy: rec.Policy, Config: rec.Config,
			TDPWatts: rec.TDPWatts, FaultSeed: rec.FaultSeed, FaultIntensity: rec.FaultIntensity,
			Batch: rec.Batch,
		}
		s.RunOrder = append(s.RunOrder, rec.ID)
	case RecDone:
		if run, ok := s.Runs[rec.ID]; ok {
			run.Status = "done"
			run.ED2, run.TimeS, run.EnergyJ = rec.ED2, rec.TimeS, rec.EnergyJ
		}
	case RecFail:
		if run, ok := s.Runs[rec.ID]; ok {
			run.Status = rec.Status
			if run.Status == "" {
				run.Status = "failed"
			}
			run.Err = rec.Err
		}
	case RecBatch:
		if _, ok := s.Batches[rec.ID]; ok {
			return
		}
		s.Batches[rec.ID] = &BatchState{
			ID: rec.ID, Apps: rec.Apps, Policies: rec.Policies, Runs: rec.Runs,
		}
		s.BatchOrder = append(s.BatchOrder, rec.ID)
	case RecBatchDone:
		if b, ok := s.Batches[rec.ID]; ok {
			b.Done = true
		}
	}
}

// maxJournalLine bounds one journal line; anything longer is treated as
// corruption rather than buffered without limit.
const maxJournalLine = 1 << 20

// ReadState folds a journal stream into a State. A torn final line — the
// signature of a crash mid-append — terminates the read cleanly; a
// malformed line anywhere else is reported as an error so silent
// corruption can't masquerade as a short journal.
func ReadState(r io.Reader) (*State, error) {
	s, _, err := readState(r)
	return s, err
}

// readState is ReadState plus the byte offset just past the last intact
// line, so OpenJournal can truncate a torn tail before appending.
func readState(r io.Reader) (*State, int64, error) {
	s := NewState()
	br := bufio.NewReaderSize(r, 64*1024)
	var pos, intact int64
	sawTorn := false
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if len(raw) > 0 {
			line++
			pos += int64(len(raw))
			body := bytes.TrimRight(raw, "\r\n")
			switch {
			case len(body) == 0:
				if !sawTorn {
					intact = pos
				}
			case sawTorn:
				return nil, 0, fmt.Errorf("resilience: journal line %d: well-formed record after a torn line", line)
			case len(body) > maxJournalLine:
				return nil, 0, fmt.Errorf("resilience: journal line %d exceeds %d bytes", line, maxJournalLine)
			default:
				var rec Record
				if jerr := json.Unmarshal(body, &rec); jerr != nil {
					// Tolerate exactly one trailing partial write.
					sawTorn = true
				} else {
					s.Apply(rec)
					intact = pos
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("resilience: reading journal: %w", err)
		}
	}
	return s, intact, nil
}

// Journal is an append-only JSONL write-ahead log. Append is safe for
// concurrent use; each record is written as one line in a single Write
// call so concurrent appends never interleave bytes.
type Journal struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
	n  int
}

// NewJournal wraps an arbitrary writer (tests use a buffer).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// OpenJournal opens (creating if absent) the journal at path, folds any
// existing records into a State, and returns the journal positioned for
// appending. A torn final line left by a crash mid-append is tolerated
// on read but must not survive into the append path: the file is
// truncated back to its last intact line so the first post-crash Append
// starts a fresh line instead of concatenating onto the partial record
// (which would make the NEXT restart reject the journal as corrupt).
func OpenJournal(path string) (*Journal, *State, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("resilience: opening journal: %w", err)
	}
	st, intact, err := readState(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(intact); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("resilience: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("resilience: seeking journal: %w", err)
	}
	return &Journal{w: f, c: f, n: st.Records}, st, nil
}

// Append writes one record. A nil journal discards silently, so callers
// can thread an optional journal without nil checks at every site.
func (j *Journal) Append(rec Record) error {
	if j == nil {
		return nil
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resilience: encoding journal record: %w", err)
	}
	raw = append(raw, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return fmt.Errorf("resilience: journal is closed")
	}
	if _, err := j.w.Write(raw); err != nil {
		return fmt.Errorf("resilience: appending journal record: %w", err)
	}
	j.n++
	return nil
}

// Records returns how many records the journal holds (replayed plus
// appended this process).
func (j *Journal) Records() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Close flushes and closes the underlying file (a no-op for nil
// journals and plain writers). Further Appends fail.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w = nil
	if j.c == nil {
		return nil
	}
	c := j.c
	j.c = nil
	return c.Close()
}

// F64 returns a pointer to v, for Record's optional float fields.
func F64(v float64) *float64 { return &v }
