package resilience

import (
	"sync"
	"testing"
	"time"
)

// testClock is a manually advanced clock shared by the resilience
// tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: 10 * time.Second, Now: clock.Now})

	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if ok, _, _ := b.Allow(); !ok {
		t.Fatal("breaker tripped below threshold")
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	ok, _, retry := b.Allow()
	if ok {
		t.Fatal("open breaker admitted a request")
	}
	if retry <= 0 || retry > 10*time.Second {
		t.Errorf("retry-after = %v, want (0, 10s]", retry)
	}
	if b.Trips() != 1 {
		t.Errorf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerOptions{Threshold: 2, Now: clock.Now})
	b.Failure()
	b.Success()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Errorf("state = %v, want closed (success should reset the streak)", got)
	}
}

func TestBreakerHalfOpenProbeAndBackoff(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: 10 * time.Second, MaxCooldown: 25 * time.Second, Now: clock.Now})

	b.Failure() // trip 1: cooldown 10s
	clock.Advance(11 * time.Second)
	ok, probe, _ := b.Allow() // becomes the half-open probe
	if !ok || !probe {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// A second caller during the probe is rejected.
	if ok, _, retry := b.Allow(); ok || retry <= 0 {
		t.Errorf("half-open admitted a second caller (ok=%v retry=%v)", ok, retry)
	}

	// Probe fails: re-open with doubled cooldown (20s).
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state/trips after failed probe = %v/%d, want open/2", b.State(), b.Trips())
	}
	clock.Advance(11 * time.Second)
	if ok, _, _ := b.Allow(); ok {
		t.Fatal("doubled cooldown should still reject at +11s")
	}
	clock.Advance(10 * time.Second)
	if ok, _, _ := b.Allow(); !ok {
		t.Fatal("probe rejected after doubled cooldown elapsed")
	}

	// Probe fails again: cooldown doubles to 40s but caps at 25s.
	b.Failure()
	clock.Advance(26 * time.Second)
	if ok, _, _ := b.Allow(); !ok {
		t.Fatal("probe rejected after capped cooldown elapsed")
	}

	// A healthy probe closes the breaker and resets the backoff.
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after healthy probe = %v, want closed", got)
	}
	b.Failure() // trip again: cooldown must be back to the initial 10s
	clock.Advance(11 * time.Second)
	if ok, _, _ := b.Allow(); !ok {
		t.Error("cooldown did not reset to initial after recovery")
	}
}

func TestBreakerLateFailuresWhileOpenAreIgnored(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: 10 * time.Second, Now: clock.Now})
	b.Failure()
	trips := b.Trips()
	b.Failure() // a straggling in-flight run reporting after the trip
	b.Failure()
	if b.Trips() != trips {
		t.Errorf("late failures re-tripped the breaker: %d -> %d", trips, b.Trips())
	}
}

func TestNilBreakerAllowsEverything(t *testing.T) {
	var b *Breaker
	if ok, _, _ := b.Allow(); !ok {
		t.Error("nil breaker rejected")
	}
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Error("nil breaker reported non-zero state")
	}
}

func TestBucketAdmitsBurstThenRefills(t *testing.T) {
	clock := newTestClock()
	b := NewBucket(BucketOptions{Rate: 2, Burst: 3, Now: clock.Now})

	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Errorf("retry-after = %v, want (0, 500ms] at 2 tokens/s", retry)
	}

	clock.Advance(time.Second) // +2 tokens
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("refilled request %d rejected", i)
		}
	}
	if ok, _ := b.Allow(); ok {
		t.Error("bucket over-refilled")
	}

	clock.Advance(time.Hour) // refill clamps at burst
	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("post-idle burst request %d rejected", i)
		}
	}
	if ok, _ := b.Allow(); ok {
		t.Error("bucket exceeded burst after long idle")
	}
}

func TestBucketDisabledAndNil(t *testing.T) {
	if b := NewBucket(BucketOptions{Rate: 0}); b != nil {
		t.Error("zero rate should disable the limiter")
	}
	var b *Bucket
	for i := 0; i < 100; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatal("nil bucket rejected")
		}
	}
}

func TestBreakerCancelProbeReopensWithoutBackoff(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: 10 * time.Second, Now: clock.Now})
	b.Failure() // trip 1
	clock.Advance(11 * time.Second)
	ok, probe, _ := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want an admitted probe", ok, probe)
	}
	// The probe's request is cancelled before observing backend health:
	// the slot goes back and the breaker re-opens — without this, it
	// would stay half-open rejecting everything forever.
	b.CancelProbe()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after cancelled probe = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Errorf("trips after cancelled probe = %d, want 1 (a cancellation is not a trip)", b.Trips())
	}
	if ok, _, _ := b.Allow(); ok {
		t.Fatal("breaker admitted during the post-cancel cooldown")
	}
	// The cooldown must NOT have doubled: the original 10s still opens
	// the next probe window.
	clock.Advance(11 * time.Second)
	ok, probe, _ = b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after post-cancel cooldown = (%v, %v), want a fresh probe", ok, probe)
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after healthy probe = %v, want closed", got)
	}
}

func TestBreakerCancelProbeOutsideHalfOpenIsNoOp(t *testing.T) {
	clock := newTestClock()
	b := NewBreaker(BreakerOptions{Threshold: 2, Cooldown: 10 * time.Second, Now: clock.Now})
	b.CancelProbe() // closed: nothing to release
	if got := b.State(); got != BreakerClosed {
		t.Errorf("state after closed-state CancelProbe = %v, want closed", got)
	}
	b.Failure()
	b.Failure()     // trip
	b.CancelProbe() // open: a straggler cancellation; ignore
	if got := b.State(); got != BreakerOpen {
		t.Errorf("state after open-state CancelProbe = %v, want open", got)
	}
	var nb *Breaker
	nb.CancelProbe() // must not panic
}

func TestBucketRefund(t *testing.T) {
	clock := newTestClock()
	b := NewBucket(BucketOptions{Rate: 0.001, Burst: 2, Now: clock.Now})
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	// A later admission check shed the submission: the token comes back.
	b.Refund()
	if ok, _ := b.Allow(); !ok {
		t.Error("refunded token not spendable")
	}
	// Refunds clamp at burst — they never mint capacity.
	for i := 0; i < 5; i++ {
		b.Refund()
	}
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("post-refund request %d rejected", i)
		}
	}
	if ok, _ := b.Allow(); ok {
		t.Error("refunds minted tokens beyond burst")
	}
	var nb *Bucket
	nb.Refund() // must not panic
}
