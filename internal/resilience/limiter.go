package resilience

import (
	"sync"
	"time"
)

// BucketOptions configures a Bucket.
type BucketOptions struct {
	// Rate is the sustained admission rate in tokens per second; it
	// must be positive (a non-positive rate makes NewBucket return nil,
	// which disables limiting — every nil-Bucket Allow succeeds).
	Rate float64
	// Burst is the bucket capacity — how many requests may be admitted
	// back to back after an idle period. Values below 1 are raised to
	// 1 so a full bucket always admits at least one request.
	Burst float64
	// Now is the clock, injectable for tests; nil means time.Now.
	Now func() time.Time
}

// Bucket is a token-bucket rate limiter: tokens refill continuously at
// Rate per second up to Burst, and each admitted request spends one.
// The zero of capacity starts full so a fresh service accepts its first
// burst immediately. All methods are safe for concurrent use; a nil
// *Bucket admits everything.
type Bucket struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewBucket returns a full bucket, or nil (no limiting) when the rate
// is not positive.
func NewBucket(o BucketOptions) *Bucket {
	if o.Rate <= 0 {
		return nil
	}
	if o.Burst < 1 {
		o.Burst = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Bucket{rate: o.Rate, burst: o.Burst, now: o.Now, tokens: o.Burst, last: o.Now()}
}

// Allow spends one token if available. A rejected caller gets the time
// until the next token accrues as a Retry-After hint.
func (b *Bucket) Allow() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Refund returns one token, undoing an Allow whose submission a later
// admission check went on to shed — the request did no work, so it
// should not count against the client's rate. Capped at burst, so
// refunds never mint capacity. A nil bucket ignores it.
func (b *Bucket) Refund() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens = min(b.burst, b.tokens+1)
}
