// Package resilience is the service-survival toolkit of the Harmonia
// daemon: a consecutive-failure circuit breaker with half-open probing
// and exponential cooldown, a token-bucket admission limiter, and an
// append-only JSONL write-ahead journal that lets a restarted daemon
// resume interrupted work. The package is deliberately free of any
// simulator dependency — it speaks time, tokens, and records — so the
// serve layer can compose it without dragging physics into the
// resilience tests.
//
// Unlike the deterministic simulation packages, resilience components
// are clocked: they read wall time through an injectable now() so tests
// can drive them deterministically while production uses time.Now (the
// lint nondeterminism policy exempts this package for exactly that
// reason; see internal/lint.DefaultPolicy).
package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's tri-state.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: one probe is in flight; everything else is
	// rejected until the probe resolves the state.
	BreakerHalfOpen
	// BreakerOpen: all traffic is rejected until the cooldown elapses.
	BreakerOpen
)

// String returns the state's conventional lowercase name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerOptions configures a Breaker. The zero value gets production
// defaults.
type BreakerOptions struct {
	// Threshold is how many consecutive failures trip the breaker;
	// zero means 5.
	Threshold int
	// Cooldown is the first open interval; zero means 10s. Each
	// successive trip doubles it up to MaxCooldown (the half-open
	// backoff schedule).
	Cooldown time.Duration
	// MaxCooldown caps the doubling; zero means 5m.
	MaxCooldown time.Duration
	// Now is the clock, injectable for tests; nil means time.Now.
	Now func() time.Time
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures
// in a row trip it open, rejected callers get a Retry-After hint, and
// after the cooldown one probe is let through half-open — its outcome
// either closes the breaker or re-opens it with a doubled cooldown.
// All methods are safe for concurrent use.
type Breaker struct {
	threshold   int
	initial     time.Duration
	maxCooldown time.Duration
	now         func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	cooldown    time.Duration
	openedUntil time.Time
	trips       uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(o BreakerOptions) *Breaker {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 10 * time.Second
	}
	if o.MaxCooldown <= 0 {
		o.MaxCooldown = 5 * time.Minute
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return &Breaker{
		threshold:   o.Threshold,
		initial:     o.Cooldown,
		maxCooldown: o.MaxCooldown,
		now:         o.Now,
		cooldown:    o.Cooldown,
	}
}

// Allow reports whether a request may proceed, and whether the admitted
// request holds the half-open probe slot. The probe's owner must
// resolve the slot — Success, Failure, or CancelProbe — or the breaker
// stays half-open rejecting everything. A rejected caller gets a
// retry-after hint: the remaining cooldown when open, one full cooldown
// when a half-open probe is already in flight. A nil breaker allows
// everything.
func (b *Breaker) Allow() (ok bool, probe bool, retryAfter time.Duration) {
	if b == nil {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false, 0
	case BreakerOpen:
		now := b.now()
		if now.Before(b.openedUntil) {
			return false, false, b.openedUntil.Sub(now)
		}
		// Cooldown elapsed: this caller becomes the half-open probe.
		b.state = BreakerHalfOpen
		return true, true, 0
	default: // BreakerHalfOpen: the probe slot is taken.
		return false, false, b.cooldown
	}
}

// Success reports a request that completed healthily.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state == BreakerHalfOpen {
		// The probe came back clean: close and forgive the backoff.
		b.state = BreakerClosed
		b.cooldown = b.initial
	}
}

// Failure reports a backend failure (panic or internal error — caller
// cancellations should not be fed here).
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back off harder.
		b.cooldown = min(2*b.cooldown, b.maxCooldown)
		b.trip()
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.trip()
		}
	default: // BreakerOpen: a straggler from before the trip; ignore.
	}
}

// CancelProbe returns a half-open probe slot whose request was
// cancelled before it observed backend health: the breaker re-opens for
// one more cooldown — unchanged, because the backend was not seen
// failing, so no backoff doubling and no trip counted. A no-op in any
// other state (a concurrent Success or Failure already resolved the
// probe) and on a nil breaker.
func (b *Breaker) CancelProbe() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	b.state = BreakerOpen
	b.openedUntil = b.now().Add(b.cooldown)
}

// trip opens the breaker for the current cooldown. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.consecutive = 0
	b.openedUntil = b.now().Add(b.cooldown)
	b.trips++
}

// State returns the current state (open lazily decays to half-open only
// on Allow, so State may report open after the cooldown elapsed).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
