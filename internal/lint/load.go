package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this module. Packages under it
// are loaded from the module tree and fully type-checked; everything else
// is resolved as a dependency (standard library) with function bodies
// skipped, since the analyzers only need exported signatures from
// imports.
const ModulePath = "harmonia"

// Package is one parsed and type-checked package ready for analysis.
// Type information is best-effort: fixture packages and packages with
// unresolved imports still analyze, with TypeErrors recording what the
// checker could not resolve and Info partially populated ("go/types
// where resolvable").
type Package struct {
	Path  string // import path, e.g. "harmonia/internal/sweep"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File

	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader parses and type-checks packages of the module rooted at Root.
// It is a types.ImporterFrom: module-internal imports are loaded from
// source on demand, and standard-library imports are type-checked from
// GOROOT source with function bodies ignored. The zero value is not
// usable; construct with NewLoader.
type Loader struct {
	Root string
	fset *token.FileSet
	ctxt build.Context

	mods       map[string]*Package
	modLoading map[string]bool
	deps       map[string]*types.Package
	depLoading map[string]bool
}

// NewLoader returns a loader for the module rooted at root (the
// directory holding go.mod).
func NewLoader(root string) *Loader {
	ctxt := build.Default
	// The analyzers never need cgo-backed declarations, and disabling
	// cgo keeps the standard library resolvable from pure-Go sources.
	ctxt.CgoEnabled = false
	return &Loader{
		Root:       root,
		fset:       token.NewFileSet(),
		ctxt:       ctxt,
		mods:       make(map[string]*Package),
		modLoading: make(map[string]bool),
		deps:       make(map[string]*types.Package),
		depLoading: make(map[string]bool),
	}
}

// Fset returns the loader's file set, shared by every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads every package of the module (skipping testdata and
// hidden directories), returning them sorted by import path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs...)
}

// LoadDirs loads the packages in the given directories, which must lie
// inside the module tree. Results are sorted by import path.
func (l *Loader) LoadDirs(dirs ...string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// pathFor maps a directory inside the module tree to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module root %s", dir, l.Root)
	}
	return ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirFor(path string) string {
	if path == ModulePath {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, ModulePath+"/")))
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadModulePkg parses and type-checks one module package (non-test
// files only), memoized by import path.
func (l *Loader) loadModulePkg(path string) (*Package, error) {
	if pkg, ok := l.mods[path]; ok {
		return pkg, nil
	}
	if l.modLoading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.modLoading[path] = true
	defer delete(l.modLoading, path)

	dir := l.dirFor(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var files []*ast.File
	var parseErrs []error
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			parseErrs = append(parseErrs, err)
		}
		if f != nil {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no buildable Go files in %s", path, dir)
	}

	pkg := &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		TypeErrors: parseErrs,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check continues past errors when an Error handler is installed;
	// the returned package and the partially filled Info are still
	// usable for analysis.
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	l.mods[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom. Module-internal paths load
// from the module tree; anything else resolves through go/build (which
// handles GOROOT vendoring relative to srcDir) and is type-checked with
// function bodies ignored.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
		pkg, err := l.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("type-checking %q failed", path)
		}
		return pkg.Types, nil
	}
	return l.importDep(path, srcDir)
}

func (l *Loader) importDep(path, srcDir string) (*types.Package, error) {
	bp, err := l.ctxt.Import(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	key := bp.ImportPath
	if tp, ok := l.deps[key]; ok {
		return tp, nil
	}
	if l.depLoading[key] {
		return nil, fmt.Errorf("import cycle through %q", key)
	}
	l.depLoading[key] = true
	defer delete(l.depLoading, key)

	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // dependency bodies/details are best-effort
	}
	tp, err := conf.Check(key, l.fset, files, nil)
	if tp == nil {
		return nil, err
	}
	l.deps[key] = tp
	return tp, nil
}
