package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Finding is the machine-readable form of a Diagnostic. Field order is
// part of the output contract (see DESIGN.md §10.4): check, severity,
// file, line, col, message — encoding/json emits struct fields in
// declaration order, and TestJSONStableSchema pins it.
type Finding struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Report is the top-level -json document.
type Report struct {
	Module   string    `json:"module"`
	Checks   []string  `json:"checks"`
	Errors   int       `json:"errors"`
	Warnings int       `json:"warnings"`
	Findings []Finding `json:"findings"`
}

// NewReport converts diagnostics into the stable JSON document. File
// paths are made relative to root (slash-separated) so output does not
// depend on the checkout location.
func NewReport(root string, checks []string, diags []Diagnostic) Report {
	rep := Report{
		Module:   ModulePath,
		Checks:   checks,
		Findings: make([]Finding, 0, len(diags)),
	}
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
			file = filepath.ToSlash(rel)
		}
		switch d.Severity {
		case SevWarn:
			rep.Warnings++
		default:
			rep.Errors++
		}
		rep.Findings = append(rep.Findings, Finding{
			Check:    d.Check,
			Severity: string(d.Severity),
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	return rep
}

// WriteJSON emits the report as indented JSON followed by a newline.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
