package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Finding is the machine-readable form of a Diagnostic. Field order is
// part of the output contract (see DESIGN.md §10.4): check, severity,
// file, line, col, message, suggested_fixes — encoding/json emits
// struct fields in declaration order, and TestJSONStableSchema pins it.
// suggested_fixes is omitted when the finding carries no
// machine-applicable fix, so fix-free reports are byte-identical to the
// pre-fix schema.
type Finding struct {
	Check          string         `json:"check"`
	Severity       string         `json:"severity"`
	File           string         `json:"file"`
	Line           int            `json:"line"`
	Col            int            `json:"col"`
	Message        string         `json:"message"`
	SuggestedFixes []SuggestedFix `json:"suggested_fixes,omitempty"`
}

// Report is the top-level -json document.
type Report struct {
	Module   string    `json:"module"`
	Checks   []string  `json:"checks"`
	Errors   int       `json:"errors"`
	Warnings int       `json:"warnings"`
	Findings []Finding `json:"findings"`
}

// NewReport converts diagnostics into the stable JSON document. File
// paths are made relative to root (slash-separated) so output does not
// depend on the checkout location.
func NewReport(root string, checks []string, diags []Diagnostic) Report {
	rep := Report{
		Module:   ModulePath,
		Checks:   checks,
		Findings: make([]Finding, 0, len(diags)),
	}
	for _, d := range diags {
		file := relToRoot(root, d.Pos.Filename)
		switch d.Severity {
		case SevWarn:
			rep.Warnings++
		default:
			rep.Errors++
		}
		rep.Findings = append(rep.Findings, Finding{
			Check:          d.Check,
			Severity:       string(d.Severity),
			File:           file,
			Line:           d.Pos.Line,
			Col:            d.Pos.Column,
			Message:        d.Message,
			SuggestedFixes: relativizeFixes(root, d.Fixes),
		})
	}
	return rep
}

// relToRoot makes file root-relative and slash-separated when it lies
// under root, so output does not depend on the checkout location.
func relToRoot(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return file
}

// relativizeFixes deep-copies fixes with edit paths made root-relative.
// The in-memory fixes keep absolute paths (ApplyFixes reads the files);
// only the serialized form is relativized.
func relativizeFixes(root string, fixes []SuggestedFix) []SuggestedFix {
	if len(fixes) == 0 {
		return nil
	}
	out := make([]SuggestedFix, len(fixes))
	for i, fix := range fixes {
		out[i] = fix
		out[i].Edits = make([]TextEdit, len(fix.Edits))
		for j, e := range fix.Edits {
			e.File = relToRoot(root, e.File)
			out[i].Edits[j] = e
		}
	}
	return out
}

// WriteJSON emits the report as indented JSON followed by a newline.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
