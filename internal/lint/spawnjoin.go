package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpawnJoin flags goroutines with no join or cancellation edge back to
// their spawner — the leak class the chaos soak only catches
// dynamically, caught here at review time. A goroutine is considered
// joined when the spawned work (the literal's body, or the called
// function's transitive summary — this is where the call graph sees
// what the intraprocedural view cannot) exhibits any of:
//
//   - a sync.WaitGroup Done/Wait (counter join),
//   - a channel operation — send, receive, close, select, or ranging
//     over a channel (communication join, including errgroup-style
//     first-error channels),
//   - a context consultation (ctx.Done/Err), the cancellation edge.
//
// A goroutine with none of these can outlive every structure that
// could observe it: nothing ever learns whether it finished, and
// nothing can stop it.
type SpawnJoin struct{}

// Name implements Analyzer.
func (*SpawnJoin) Name() string { return "spawnjoin" }

// Doc implements Analyzer.
func (*SpawnJoin) Doc() string {
	return "forbid goroutines with no join or cancellation edge (WaitGroup, channel, or ctx) reachable from the spawned body"
}

func (*SpawnJoin) needsProgram() bool { return true }

// Run implements Analyzer.
func (a *SpawnJoin) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !a.spawnJoined(pass, gs.Call) {
					pass.Reportf(gs.Pos(),
						"goroutine has no join or cancellation edge — no WaitGroup, channel operation, or ctx consultation reachable from the spawned body; nothing can observe or stop it")
				}
				return true
			})
		}
	}
}

// joinEffects are the summary bits that constitute a join edge.
const joinEffects = EffJoinSignal | EffConsultsCtx

// spawnJoined reports whether the spawned call has a join edge.
func (a *SpawnJoin) spawnJoined(pass *Pass, call *ast.CallExpr) bool {
	// go func() { ... }(): inspect the literal body directly, chasing
	// calls out of it through the graph.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return a.bodyHasJoin(pass, lit.Body)
	}
	// go s.worker() / go helper(): the callee's transitive summary.
	fn := calleeFunc(pass, call)
	if fn == nil {
		return true // unresolved spawn target: assume joined
	}
	if pass.Prog != nil {
		if node := pass.Prog.Nodes[fn]; node != nil {
			return node.Trans&joinEffects != 0
		}
	}
	// Callee outside the graph (stdlib or unanalyzed package): assume
	// joined rather than guess.
	return true
}

// bodyHasJoin walks a spawned body for direct join evidence and chases
// its calls one level into the graph for transitive evidence.
func (a *SpawnJoin) bodyHasJoin(pass *Pass, body *ast.BlockStmt) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			joined = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			if a.callIsJoin(pass, n) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// callIsJoin classifies one call inside a spawned body: a WaitGroup
// Done/Wait, a ctx consultation, a channel close, or a call into a
// function whose transitive summary joins.
func (a *SpawnJoin) callIsJoin(pass *Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isFn := pass.ObjectOf(id).(*types.Func); !isFn {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := pass.TypeOf(sel.X); t != nil {
			path, name, named := namedFrom(t)
			if named && path == "sync" && name == "WaitGroup" && (sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
				return true
			}
			if isContextType(t) {
				switch sel.Sel.Name {
				case "Done", "Err", "Deadline":
					return true
				}
			}
		}
	}
	fn := calleeFunc(pass, call)
	if fn == nil || pass.Prog == nil {
		return false
	}
	node := pass.Prog.Nodes[fn]
	return node != nil && node.Trans&joinEffects != 0
}
