package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureLoader shares one loader (and its type-checked dependency
// graph) across every fixture test in the package.
var (
	loaderOnce sync.Once
	fixLoader  *Loader
	fixRoot    string
	loaderErr  error
)

func fixtureEnv(t *testing.T) (*Loader, string) {
	t.Helper()
	loaderOnce.Do(func() {
		fixRoot, loaderErr = FindModuleRoot(".")
		if loaderErr != nil {
			return
		}
		fixLoader = NewLoader(fixRoot)
	})
	if loaderErr != nil {
		t.Fatalf("finding module root: %v", loaderErr)
	}
	return fixLoader, fixRoot
}

func fixtureDir(root, name string) string {
	return filepath.Join(root, "internal", "lint", "testdata", "src", name)
}

func fixturePath(name string) string {
	return ModulePath + "/internal/lint/testdata/src/" + name
}

// renderDiags formats diagnostics with fixture-relative paths so golden
// files are checkout-independent.
func renderDiags(root string, diags []Diagnostic) string {
	base := filepath.Join(root, "internal", "lint", "testdata", "src")
	var buf bytes.Buffer
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(base, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		fmt.Fprintf(&buf, "%s:%d:%d: %s: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Severity, d.Check, d.Message)
	}
	return buf.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestGoldenNondeterminism demonstrates the true positives in nondetfix
// (clock reads, unseeded rand, map-order escape), the in-file
// suppression, and the policy allowlist: nondetallow commits the same
// violation but is exempt, mirroring serve/telemetry/faults.
func TestGoldenNondeterminism(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "nondetfix"), fixtureDir(root, "nondetallow"))
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{Scopes: map[string]Scope{
		"nondeterminism": {
			Only:   []string{fixturePath("nondetfix"), fixturePath("nondetallow")},
			Exempt: []string{fixturePath("nondetallow")},
		},
	}}
	diags := Run(pkgs, []Analyzer{&Nondeterminism{}}, pol)
	checkGolden(t, "nondeterminism", renderDiags(root, diags))
}

func TestGoldenHWEnvelope(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "hwfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&HWEnvelope{}}, DefaultPolicy())
	checkGolden(t, "hwenvelope", renderDiags(root, diags))
}

func TestGoldenLockScope(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "lockfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&LockScope{}}, DefaultPolicy())
	checkGolden(t, "lockscope", renderDiags(root, diags))
}

// TestGoldenFloatEq exercises both escape hatches: approxEqual is
// allowlisted through AllowFuncs, and Suppressed carries a directive.
func TestGoldenFloatEq(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "floatfix"))
	if err != nil {
		t.Fatal(err)
	}
	a := NewFloatEq()
	a.AllowFuncs[fixturePath("floatfix")+".approxEqual"] = true
	diags := Run(pkgs, []Analyzer{a}, DefaultPolicy())
	checkGolden(t, "floateq", renderDiags(root, diags))
}

// TestGoldenWorkerBudget demonstrates the raw-width true positives
// (direct GOMAXPROCS/NumCPU calls and arithmetic over them, across
// batch.Map and the sweep entry points), the budgeted and
// caller-provided clean idioms, and the in-file suppression.
func TestGoldenWorkerBudget(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "budgetfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&WorkerBudget{}}, DefaultPolicy())
	checkGolden(t, "workerbudget", renderDiags(root, diags))
}

func TestGoldenErrDrop(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "errfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&ErrDrop{}}, DefaultPolicy())
	checkGolden(t, "errdrop", renderDiags(root, diags))
}
