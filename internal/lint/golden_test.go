package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureLoader shares one loader (and its type-checked dependency
// graph) across every fixture test in the package.
var (
	loaderOnce sync.Once
	fixLoader  *Loader
	fixRoot    string
	loaderErr  error
)

func fixtureEnv(t *testing.T) (*Loader, string) {
	t.Helper()
	loaderOnce.Do(func() {
		fixRoot, loaderErr = FindModuleRoot(".")
		if loaderErr != nil {
			return
		}
		fixLoader = NewLoader(fixRoot)
	})
	if loaderErr != nil {
		t.Fatalf("finding module root: %v", loaderErr)
	}
	return fixLoader, fixRoot
}

func fixtureDir(root, name string) string {
	return filepath.Join(root, "internal", "lint", "testdata", "src", name)
}

func fixturePath(name string) string {
	return ModulePath + "/internal/lint/testdata/src/" + name
}

// renderDiags formats diagnostics with fixture-relative paths so golden
// files are checkout-independent.
func renderDiags(root string, diags []Diagnostic) string {
	base := filepath.Join(root, "internal", "lint", "testdata", "src")
	var buf bytes.Buffer
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(base, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		fmt.Fprintf(&buf, "%s:%d:%d: %s: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Severity, d.Check, d.Message)
	}
	return buf.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestGoldenNondeterminism demonstrates the true positives in nondetfix
// (clock reads, unseeded rand, map-order escape), the in-file
// suppression, and the policy allowlist: nondetallow commits the same
// violation but is exempt, mirroring serve/telemetry/faults.
func TestGoldenNondeterminism(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "nondetfix"), fixtureDir(root, "nondetallow"))
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{Scopes: map[string]Scope{
		"nondeterminism": {
			Only:   []string{fixturePath("nondetfix"), fixturePath("nondetallow")},
			Exempt: []string{fixturePath("nondetallow")},
		},
	}}
	diags := Run(pkgs, []Analyzer{&Nondeterminism{}}, pol)
	checkGolden(t, "nondeterminism", renderDiags(root, diags))
}

func TestGoldenHWEnvelope(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "hwfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&HWEnvelope{}}, DefaultPolicy())
	checkGolden(t, "hwenvelope", renderDiags(root, diags))
}

func TestGoldenLockScope(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "lockfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&LockScope{}}, DefaultPolicy())
	checkGolden(t, "lockscope", renderDiags(root, diags))
}

// TestGoldenFloatEq exercises both escape hatches: approxEqual is
// allowlisted through AllowFuncs, and Suppressed carries a directive.
func TestGoldenFloatEq(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "floatfix"))
	if err != nil {
		t.Fatal(err)
	}
	a := NewFloatEq()
	a.AllowFuncs[fixturePath("floatfix")+".approxEqual"] = true
	diags := Run(pkgs, []Analyzer{a}, DefaultPolicy())
	checkGolden(t, "floateq", renderDiags(root, diags))
}

// TestGoldenWorkerBudget demonstrates the raw-width true positives
// (direct GOMAXPROCS/NumCPU calls and arithmetic over them, across
// batch.Map and the sweep entry points), the budgeted and
// caller-provided clean idioms, and the in-file suppression.
func TestGoldenWorkerBudget(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "budgetfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&WorkerBudget{}}, DefaultPolicy())
	checkGolden(t, "workerbudget", renderDiags(root, diags))
}

func TestGoldenErrDrop(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "errfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&ErrDrop{}}, DefaultPolicy())
	checkGolden(t, "errdrop", renderDiags(root, diags))
}

// TestGoldenDeterTaint demonstrates the wrapper-indirected true positive
// (taintdet reaches time.Now two hops away through taintwrap), the
// sanctioned-seed escape (a directive on the seed keeps it out of the
// summaries), the barrier escape (taintallow is policy-exempt, so its
// taint stays put), and the in-file suppression.
func TestGoldenDeterTaint(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(
		fixtureDir(root, "taintdet"),
		fixtureDir(root, "taintwrap"),
		fixtureDir(root, "taintallow"),
	)
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{Scopes: map[string]Scope{
		"detertaint": {
			Only:   []string{fixturePath("taintdet")},
			Exempt: []string{fixturePath("taintallow")},
		},
	}}
	diags := Run(pkgs, []Analyzer{&DeterTaint{}}, pol)
	checkGolden(t, "detertaint", renderDiags(root, diags))
}

// TestGoldenCtxFlow demonstrates the Background/TODO findings, the
// same-package delegation-wrapper escape versus the cross-package
// wrapper finding, the stored-context field, the fan-out loop whose
// goroutine spawn is two wrapper hops away, the joined loop whose ctx
// consultation is equally indirect, and the in-file suppression.
func TestGoldenCtxFlow(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "ctxfix"), fixtureDir(root, "ctxhelp"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&CtxFlow{}}, DefaultPolicy())
	checkGolden(t, "ctxflow", renderDiags(root, diags))
}

// TestGoldenSpawnJoin demonstrates the no-join leaks (named callee and
// literal), the joined shapes — WaitGroup Done two helper hops away,
// channel send, ctx cancellation edge — and the in-file suppression.
func TestGoldenSpawnJoin(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "spawnfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&SpawnJoin{}}, DefaultPolicy())
	checkGolden(t, "spawnjoin", renderDiags(root, diags))
}

// TestGoldenSpanEnd demonstrates the never-Ended and early-return
// leaks, the dropped start, and the clean shapes: deferred End,
// delegation to an ending helper two hops away, ownership escape by
// return, the closure frame, and the in-file suppression.
func TestGoldenSpanEnd(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "spanfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, []Analyzer{&SpanEnd{}}, DefaultPolicy())
	checkGolden(t, "spanend", renderDiags(root, diags))
}
