package lint

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixAnalyzers are the three analyzers that attach suggested fixes.
func fixAnalyzers() []Analyzer {
	return []Analyzer{&HWEnvelope{}, NewFloatEq(), &ErrDrop{}}
}

// setupFixModule builds a scratch module containing the fixapply
// fixture plus the packages its fixes reference (hw for the
// constructors, floats for the comparison helpers), so fixes can be
// applied and the result re-linted without touching the repo tree.
func setupFixModule(t *testing.T) (tmpRoot, fixtureDir string) {
	t.Helper()
	_, root := fixtureEnv(t)
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module harmonia\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	copyGo := func(srcDir, dstDir string) {
		t.Helper()
		if err := os.MkdirAll(dstDir, 0o755); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(srcDir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dstDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	copyGo(filepath.Join(root, "internal", "hw"), filepath.Join(tmp, "internal", "hw"))
	copyGo(filepath.Join(root, "internal", "floats"), filepath.Join(tmp, "internal", "floats"))
	dir := filepath.Join(tmp, "fixapply")
	copyGo(filepath.Join(root, "internal", "lint", "testdata", "src", "fixapply"), dir)
	return tmp, dir
}

func lintFixModule(t *testing.T, tmpRoot, dir string) []Diagnostic {
	t.Helper()
	loader := NewLoader(tmpRoot)
	pkgs, err := loader.LoadDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fix module does not type-check: %v", terr)
		}
	}
	return Run(pkgs, fixAnalyzers(), DefaultPolicy())
}

// TestFixApplyGolden pins the exact post-fix bytes of the fixapply
// fixture: every finding carries a fix, one application pass resolves
// them all (the shared floats import is deduplicated, not skipped), and
// the output is gofmt-clean.
func TestFixApplyGolden(t *testing.T) {
	tmp, dir := setupFixModule(t)
	diags := lintFixModule(t, tmp, dir)
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings")
	}
	// A multi-field envelope literal yields one finding per field but
	// carries its whole-literal fix on the first; count fix-bearing
	// findings rather than findings.
	withFix := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			withFix++
		}
	}
	if want := 5; withFix != want { // ComputeConfig, MemConfig, errdrop stub, Equal, Zero
		t.Errorf("got %d fix-bearing findings, want %d", withFix, want)
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 {
		t.Errorf("ApplyFixes skipped %d fixes; the fixture's fixes must not conflict", res.Skipped)
	}
	if res.Applied != withFix {
		t.Errorf("applied %d fixes for %d fix-bearing findings", res.Applied, withFix)
	}
	fixed, ok := res.Files[filepath.Join(dir, "fixapply.go")]
	if !ok {
		t.Fatal("no fixed content for fixapply.go")
	}
	if formatted, err := format.Source(fixed); err != nil {
		t.Fatalf("fixed output does not parse: %v", err)
	} else if !bytes.Equal(formatted, fixed) {
		t.Errorf("fixed output is not gofmt-clean:\n%s", fixed)
	}
	checkGolden(t, "fixapply.go", string(fixed))
}

// TestFixApplyIdempotent writes the fixed tree back and re-lints it:
// the fixable findings are gone, and a second -fix pass changes
// nothing.
func TestFixApplyIdempotent(t *testing.T) {
	tmp, dir := setupFixModule(t)
	diags := lintFixModule(t, tmp, dir)
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteFiles(); err != nil {
		t.Fatal(err)
	}

	again := lintFixModule(t, tmp, dir)
	if len(again) != 0 {
		for _, d := range again {
			t.Errorf("fixed tree still has a finding: %s", d)
		}
	}
	res2, err := ApplyFixes(again)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Applied != 0 || len(res2.Files) != 0 {
		t.Errorf("second fix pass applied %d fixes to %d files; -fix must be idempotent", res2.Applied, len(res2.Files))
	}
}

// TestFixDiff asserts the unified-diff rendering covers every touched
// file with root-relative paths and hunk headers.
func TestFixDiff(t *testing.T) {
	tmp, dir := setupFixModule(t)
	diags := lintFixModule(t, tmp, dir)
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	diff := res.Diff(tmp)
	if !strings.Contains(diff, "--- a/fixapply/fixapply.go") || !strings.Contains(diff, "+++ b/fixapply/fixapply.go") {
		t.Errorf("diff missing root-relative file header:\n%s", diff)
	}
	if !strings.Contains(diff, "@@ ") {
		t.Errorf("diff has no hunk headers:\n%s", diff)
	}
	if !strings.Contains(diff, "+\treturn hw.NewComputeConfig(10, 500)") {
		t.Errorf("diff missing constructor rewrite:\n%s", diff)
	}
}
