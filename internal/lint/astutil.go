package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// localImportName returns the identifier a file binds the given import
// path to (the declared alias, or the path's base name), and whether
// the file imports it at all. Dot and blank imports report false.
func localImportName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return "", false
			}
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// isPkgRef reports whether the identifier denotes a package name. When
// type information is unavailable it answers true, keeping the
// import-name match authoritative (a local variable shadowing a package
// name is vanishingly rare in this codebase and suppressible).
func isPkgRef(pass *Pass, id *ast.Ident) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.PkgName)
	return ok
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// namedFrom unwraps pointers and reports the named type's package path
// and name, or false when t is not (a pointer to) a named type.
func namedFrom(t types.Type) (pkgPath, name string, ok bool) {
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// calleeFunc resolves the function or method object a call invokes, or
// nil for builtins, conversions, indirect calls, and unresolved code.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// funcFullName renders the enclosing function as
// "pkgpath.Func" or "pkgpath.Recv.Method" (pointer receivers are
// spelled the same as value receivers).
func funcFullName(pkgPath string, decl *ast.FuncDecl) string {
	name := decl.Name.Name
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		switch rt := t.(type) {
		case *ast.Ident:
			name = rt.Name + "." + name
		case *ast.IndexExpr: // generic receiver
			if id, ok := rt.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
	}
	return pkgPath + "." + name
}
