package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the repo's context discipline — the piece of the
// cancellation story (run contexts cancel at kernel boundaries, the
// serve layer drains by canceling its base context) that only works if
// contexts actually flow:
//
//   - context.Background()/context.TODO() outside package main: library
//     code minting its own root context detaches the work from every
//     caller's cancellation. The one sanctioned idiom is the
//     documented convenience wrapper whose entire body delegates to a
//     ctx-taking variant (session.Run → RunContext).
//   - contexts stored in struct fields: a stashed context outlives the
//     call it belonged to and silently pins the wrong lifetime.
//   - fan-out loops that never consult ctx: a loop in a ctx-taking
//     function that calls into the fan-out layers (gpusim/sweep/batch)
//     or spawns goroutines, yet neither checks ctx.Done/Err nor passes
//     ctx to a callee that (transitively) consults it. The transitive
//     part is what the call graph buys: passing ctx to a helper only
//     counts if the helper actually looks at it somewhere down the
//     chain.
type CtxFlow struct{}

// Name implements Analyzer.
func (*CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (*CtxFlow) Doc() string {
	return "forbid context.Background outside main, ctx in struct fields, and fan-out loops that never consult ctx"
}

func (*CtxFlow) needsProgram() bool { return true }

// ctxFanoutTargets are the packages whose calls make a loop a fan-out
// loop for the never-consults-ctx check.
var ctxFanoutTargets = []string{
	"harmonia/internal/gpusim",
	"harmonia/internal/sweep",
	"harmonia/internal/batch",
}

// Run implements Analyzer.
func (a *CtxFlow) Run(pass *Pass) {
	isMain := len(pass.Pkg.Files) > 0 && pass.Pkg.Files[0].Name.Name == "main"
	for _, f := range pass.Pkg.Files {
		ctxName, ctxOK := localImportName(f, "context")
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				a.checkStructFields(pass, d)
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				if !isMain && ctxOK {
					a.checkBackground(pass, d, ctxName)
				}
				a.checkLoops(pass, d)
			}
		}
	}
}

// checkStructFields flags context.Context struct fields.
func (a *CtxFlow) checkStructFields(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			if isContextType(pass.TypeOf(field.Type)) {
				pass.Reportf(field.Pos(),
					"context.Context stored in struct %s; contexts are call-scoped — pass them as parameters so cancellation follows the call",
					ts.Name.Name)
			}
		}
	}
}

// checkBackground flags context.Background/TODO calls, excepting the
// single-statement delegation wrapper (the documented Run → RunContext
// convenience idiom).
func (a *CtxFlow) checkBackground(pass *Pass, fd *ast.FuncDecl, ctxName string) {
	wrapperCall := delegationWrapperCall(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != ctxName || !isPkgRef(pass, id) {
			return true
		}
		switch sel.Sel.Name {
		case "Background":
			if wrapperCall != nil && callContainsArg(wrapperCall, call) &&
				delegatesWithinPackage(pass, wrapperCall) {
				return true
			}
			pass.Reportf(call.Pos(),
				"context.Background() outside package main detaches this work from every caller's cancellation; accept a ctx parameter (or make this a one-line wrapper delegating to a Context variant)")
		case "TODO":
			pass.Reportf(call.Pos(), "context.TODO() is a placeholder; thread a real ctx parameter")
		}
		return true
	})
}

// delegationWrapperCall returns the delegated call when fd's entire
// body is a single return of one call — `return s.RunContext(...)` —
// and nil otherwise.
func delegationWrapperCall(fd *ast.FuncDecl) *ast.CallExpr {
	if len(fd.Body.List) != 1 {
		return nil
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	call, _ := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	return call
}

// delegatesWithinPackage reports whether the wrapper's delegated call
// targets a function declared in the same package — the Run →
// RunContext convenience idiom. A "wrapper" whose single return calls
// another package (batch.Map) is the implementation, not a wrapper, and
// stays flagged.
func delegatesWithinPackage(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || pass.Pkg.Types == nil {
		return false
	}
	return fn.Pkg() == pass.Pkg.Types
}

// callContainsArg reports whether arg appears (possibly nested) in one
// of call's argument expressions.
func callContainsArg(call *ast.CallExpr, arg ast.Expr) bool {
	found := false
	for _, a := range call.Args {
		ast.Inspect(a, func(n ast.Node) bool {
			if n == ast.Node(arg) {
				found = true
			}
			return !found
		})
	}
	return found
}

// checkLoops flags for/range statements in ctx-taking functions whose
// body fans out but never consults the context. Function literals are
// frames: a literal declaring its own context parameter (a batch.Map
// callback) has its loops judged against that parameter, while a plain
// closure inherits the enclosing frame's ctx (capture).
func (a *CtxFlow) checkLoops(pass *Pass, fd *ast.FuncDecl) {
	a.checkLoopFrame(pass, fd.Body, ctxParamObj(pass, fd.Type.Params))
}

func (a *CtxFlow) checkLoopFrame(pass *Pass, body *ast.BlockStmt, ctxParam types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body == body {
				return true
			}
			frameCtx := ctxParam
			if hasCtxParam(pass, n.Type.Params) {
				// The literal's own ctx governs; a blank _ discards it,
				// and its loops are out of the check's reach (nil).
				frameCtx = ctxParamObj(pass, n.Type.Params)
			}
			a.checkLoopFrame(pass, n.Body, frameCtx)
			return false
		case *ast.ForStmt:
			a.checkLoop(pass, n, n.Body, ctxParam)
		case *ast.RangeStmt:
			a.checkLoop(pass, n, n.Body, ctxParam)
		}
		return true
	})
}

// checkLoop reports one loop that fans out without consulting ctx.
func (a *CtxFlow) checkLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt, ctxParam types.Object) {
	if ctxParam == nil {
		return
	}
	if fan, desc := a.loopFansOut(pass, body); fan && !a.loopConsultsCtx(pass, body, ctxParam) {
		pass.Reportf(loop.Pos(),
			"loop calls %s but never consults ctx; check ctx.Err at the boundary or pass ctx to a callee that does (cancellation cannot reach this loop)",
			desc)
	}
}

// hasCtxParam reports whether the parameter list declares a
// context.Context parameter (named or blank).
func hasCtxParam(pass *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// ctxParamObj returns the object of the parameter list's named
// context.Context parameter, or nil (absent or blank).
func ctxParamObj(pass *Pass, params *ast.FieldList) types.Object {
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		if !isContextType(pass.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.ObjectOf(name); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// loopFansOut reports whether the loop body calls into the fan-out
// packages or spawns goroutines (directly or through a callee).
func (a *CtxFlow) loopFansOut(pass *Pass, body *ast.BlockStmt) (bool, string) {
	fan := false
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if fan {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			fan, desc = true, "a spawned goroutine"
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if matchAny(path, ctxFanoutTargets) {
			fan, desc = true, shortPkg(path)+"."+fn.Name()
			return false
		}
		if pass.Prog != nil {
			if node := pass.Prog.Nodes[fn]; node != nil && node.Trans&EffSpawnsGoroutine != 0 {
				fan, desc = true, node.Name()+" (which spawns goroutines)"
				return false
			}
		}
		return true
	})
	return fan, desc
}

// loopConsultsCtx reports whether the loop body consults ctx: calls
// Done/Err/Deadline on it, or passes it to a callee whose transitive
// summary consults its context. An unresolved callee receiving ctx is
// assumed to consult it (no false positives on interface indirection
// the graph cannot see).
func (a *CtxFlow) loopConsultsCtx(pass *Pass, body *ast.BlockStmt, ctxParam types.Object) bool {
	consults := false
	ast.Inspect(body, func(n ast.Node) bool {
		if consults {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// ctx.Done() / ctx.Err() / ctx.Deadline()
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == ctxParam {
				switch sel.Sel.Name {
				case "Done", "Err", "Deadline":
					consults = true
					return false
				}
			}
		}
		// ctx passed onward.
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok || pass.ObjectOf(id) != ctxParam {
				// Derived contexts (context.WithTimeout(ctx, ...)) count
				// as consultation at the derivation call itself.
				if isContextType(pass.TypeOf(arg)) && containsObjUse(pass, arg, ctxParam) {
					consults = true
					return false
				}
				continue
			}
			fn := calleeFunc(pass, call)
			if fn == nil || pass.Prog == nil {
				consults = true // unresolved: assume the callee consults
				return false
			}
			node := pass.Prog.Nodes[fn]
			if node == nil {
				// Callee outside the graph (stdlib, another module
				// surface): assume it consults.
				consults = true
				return false
			}
			if node.Trans&EffConsultsCtx != 0 {
				consults = true
				return false
			}
		}
		return true
	})
	return consults
}

// containsObjUse reports whether expr references obj anywhere.
func containsObjUse(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
