package lint

import (
	"go/ast"
	"strings"
)

// WorkerBudget flags fan-out call sites that feed a raw machine width —
// runtime.GOMAXPROCS or runtime.NumCPU — into the workers argument of
// batch.Map or the sweep entry points. That shape is exactly how the
// suite's 1.17× scaling bug happened: every layer that sizes itself to
// the whole machine multiplies with every other layer that does, so W
// outer jobs each spawning GOMAXPROCS inner workers oversubscribes the
// scheduler W-fold. Fan-out widths must come from a budgeted share
// (batch.Budget.Split) or a caller-provided setting, never straight
// from the machine.
type WorkerBudget struct{}

// Name implements Analyzer.
func (*WorkerBudget) Name() string { return "workerbudget" }

// Doc implements Analyzer.
func (*WorkerBudget) Doc() string {
	return "forbid raw runtime.GOMAXPROCS/NumCPU widths in the workers argument of batch/sweep fan-out calls"
}

// workerParams maps the qualified fan-out entry points to the index of
// their workers parameter.
var workerParams = map[string]int{
	"harmonia/internal/batch.Map":       1,
	"harmonia/internal/sweep.Map":       1,
	"harmonia/internal/sweep.MapInto":   2,
	"harmonia/internal/sweep.Min":       1,
	"harmonia/internal/sweep.All":       1,
	"harmonia/internal/sweep.MinTraced": 2,
}

// Run implements Analyzer.
func (a *WorkerBudget) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		runtimeName, ok := localImportName(f, "runtime")
		if !ok {
			continue
		}
		batchName, batchOK := localImportName(f, "harmonia/internal/batch")
		sweepName, sweepOK := localImportName(f, "harmonia/internal/sweep")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, idx := a.workerCallee(pass, call, batchName, batchOK, sweepName, sweepOK)
			if callee == "" || idx >= len(call.Args) {
				return true
			}
			if raw := rawWidthCall(pass, call.Args[idx], runtimeName); raw != "" {
				pass.Reportf(call.Args[idx].Pos(),
					"runtime.%s in the workers argument of %s sizes this fan-out to the whole machine; pass a batch.Budget share so nested parallelism stays within one allowance",
					raw, callee)
			}
			return true
		})
	}
}

// workerCallee resolves whether call targets one of the fan-out entry
// points, returning its short name ("batch.Map") and the workers
// parameter index. Resolution is type-based when the checker resolved
// the callee, with an import-name fallback for partially checked code.
func (a *WorkerBudget) workerCallee(pass *Pass, call *ast.CallExpr, batchName string, batchOK bool, sweepName string, sweepOK bool) (string, int) {
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
		full := fn.Pkg().Path() + "." + fn.Name()
		if idx, ok := workerParams[full]; ok {
			short := full[strings.LastIndex(full, "/")+1:]
			return short, idx
		}
		return "", 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", 0
	}
	var pkg string
	switch {
	case batchOK && id.Name == batchName:
		pkg = "batch"
	case sweepOK && id.Name == sweepName:
		pkg = "sweep"
	default:
		return "", 0
	}
	short := pkg + "." + sel.Sel.Name
	if idx, ok := workerParams["harmonia/internal/"+short]; ok {
		return short, idx
	}
	return "", 0
}

// rawWidthCall reports the runtime function name ("GOMAXPROCS" or
// "NumCPU") when the expression contains a direct call to one anywhere
// in its subtree — `runtime.GOMAXPROCS(0)`, `runtime.NumCPU()-1`, and
// similar arithmetic all count; a width computed elsewhere and stored
// in a variable does not.
func rawWidthCall(pass *Pass, e ast.Expr, runtimeName string) string {
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != runtimeName || !isPkgRef(pass, id) {
			return true
		}
		if sel.Sel.Name == "GOMAXPROCS" || sel.Sel.Name == "NumCPU" {
			found = sel.Sel.Name
		}
		return true
	})
	return found
}
