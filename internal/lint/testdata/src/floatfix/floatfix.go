// Package floatfix is a lint fixture: true positives, an allowlisted
// helper, and a suppressed case for the floateq analyzer.
package floatfix

// Same compares floats exactly. (true positive)
func Same(a, b float64) bool {
	return a == b
}

// Changed compares floats exactly with a literal. (true positive)
func Changed(xs []float64) bool {
	return xs[0] != 1.0
}

// approxEqual is named in the golden test's AllowFuncs. (allowlisted)
func approxEqual(a, b float64) bool {
	return a == b
}

// IntsAreFine compares integers. (clean)
func IntsAreFine(a, b int) bool {
	return a == b
}

// Suppressed documents why its exact comparison is acceptable.
func Suppressed(v float64) bool {
	//lint:ignore floateq fixture demonstrating a justified sentinel comparison
	return v == -1
}

var _ = approxEqual
