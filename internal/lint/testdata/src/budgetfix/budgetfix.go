// Package budgetfix is a lint fixture: fan-out call sites that feed
// raw machine widths into worker arguments (true positives for the
// workerbudget analyzer), the budgeted idiom they should use, and a
// suppressed case.
package budgetfix

import (
	"context"
	"runtime"

	"harmonia/internal/batch"
	"harmonia/internal/hw"
	"harmonia/internal/sweep"
)

func evalCfg(hw.Config) float64 { return 0 }

// RawBatchFanout sizes an outer fan-out to the whole machine.
// (true positive)
func RawBatchFanout(ctx context.Context, apps []string) error {
	_, err := batch.Map(ctx, runtime.GOMAXPROCS(0), apps,
		func(context.Context, int, string) (int, error) { return 0, nil })
	return err
}

// RawSweepMin feeds NumCPU into a sweep. (true positive)
func RawSweepMin(space []hw.Config) (hw.Config, float64, bool) {
	return sweep.Min(space, runtime.NumCPU(), evalCfg)
}

// RawArithmeticWidth hides the machine width inside arithmetic; still
// the whole machine. (true positive)
func RawArithmeticWidth(space []hw.Config) []float64 {
	return sweep.Map(space, runtime.GOMAXPROCS(0)-1, evalCfg)
}

// RawTraced flags the traced variant's shifted workers index.
// (true positive)
func RawTraced(space []hw.Config) (hw.Config, float64, bool) {
	return sweep.MinTraced(nil, space, runtime.NumCPU(), evalCfg)
}

// Budgeted splits one machine-wide allowance between the outer fan-out
// and the nested sweeps. (clean)
func Budgeted(ctx context.Context, apps []string, space []hw.Config) error {
	outer, inner := batch.NewBudget(0).Split(len(apps))
	_, err := batch.Map(ctx, outer, apps,
		func(context.Context, int, string) (float64, error) {
			_, best, _ := sweep.Min(space, inner.Workers(), evalCfg)
			return best, nil
		})
	return err
}

// FromSetting takes the width from a caller-provided variable; where
// the value came from is the caller's contract, not this call site's.
// (clean)
func FromSetting(space []hw.Config, workers int) []float64 {
	return sweep.Map(space, workers, evalCfg)
}

// Suppressed documents why a machine-wide width is acceptable here.
func Suppressed(space []hw.Config) []float64 {
	//lint:ignore workerbudget fixture demonstrating a justified top-level fan-out
	return sweep.Map(space, runtime.GOMAXPROCS(0), evalCfg)
}
