// Package badsuppress is a lint fixture for directive hygiene: a
// directive with no reason (warns but suppresses), a directive naming
// an unknown check (warns and suppresses nothing), and an unannotated
// violation.
package badsuppress

// NoReason suppresses without explaining itself.
func NoReason(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}

// UnknownCheck names a check that does not exist.
func UnknownCheck(a, b float64) bool {
	//lint:ignore floatcompare wrong check name
	return a == b
}

// Unannotated is a plain violation.
func Unannotated(a, b float64) bool {
	return a == b
}
