// Package suppressforms is a lint fixture for the two directive
// placements the framework accepts.
package suppressforms

// Trailing carries the directive on the offending line itself.
func Trailing(a, b float64) bool {
	return a == b //lint:ignore floateq trailing-form fixture
}

// Preceding carries the directive on the line above.
func Preceding(a, b float64) bool {
	//lint:ignore floateq preceding-form fixture
	return a == b
}
