// Package hwfix is a lint fixture: true positives and suppressed cases
// for the hwenvelope analyzer.
package hwfix

import "harmonia/internal/hw"

// Escaped builds an operating point from raw literals.
// (true positives: one per tunable field)
func Escaped() hw.Config {
	return hw.Config{
		Compute: hw.ComputeConfig{CUs: 16, Freq: 700},
		Memory:  hw.MemConfig{BusFreq: 925},
	}
}

// RawFreq conjures a frequency from a bare number. (true positive)
func RawFreq() hw.MHz {
	return hw.MHz(925)
}

// Poked writes a literal into an envelope field. (true positive)
func Poked(c hw.Config) hw.Config {
	c.Compute.Freq = 700
	return c
}

// Clamped goes through the sanctioned constructor. (clean)
func Clamped() hw.Config {
	return hw.NewConfig(16, 700, 925)
}

// FromConstants uses the named grid constants. (clean)
func FromConstants() hw.Config {
	return hw.Config{
		Compute: hw.ComputeConfig{CUs: hw.MinCUs, Freq: hw.MinCUFreq},
		Memory:  hw.MemConfig{BusFreq: hw.MinMemFreq},
	}
}

// Suppressed documents why its literal is acceptable.
func Suppressed() hw.MemConfig {
	//lint:ignore hwenvelope fixture demonstrating an annotated off-grid point
	return hw.MemConfig{BusFreq: 500}
}
