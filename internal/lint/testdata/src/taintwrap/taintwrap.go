// Package taintwrap is the wrapper layer of the detertaint fixture: it
// sits outside the deterministic scope and hides a wall-clock read one
// call deep, the indirection the intraprocedural nondeterminism check
// cannot see.
package taintwrap

import "time"

// Stamp is the tainted wrapper: it never spells time.Now itself.
func Stamp() int64 { return nowMillis() }

func nowMillis() int64 { return time.Now().UnixMilli() }

// Pure is effect-free; calling it from the deterministic scope is fine.
func Pure(a, b int) int { return a + b }

// SanctionedID reads the clock through a sanctioned seed: the directive
// keeps the read out of the taint summaries, mirroring the trace
// package's injectable wall-clock default.
func SanctionedID() int64 {
	//lint:ignore detertaint fixture: injectable-clock default, sanctioned seed
	return time.Now().UnixNano()
}
