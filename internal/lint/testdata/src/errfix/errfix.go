// Package errfix is a lint fixture: true positives and suppressed
// cases for the errdrop analyzer. Its own import path lies under the
// module prefix, so its error-returning functions count as module APIs.
package errfix

import "errors"

// Fallible is a module API returning only an error.
func Fallible() error {
	return errors.New("boom")
}

// Pair is a module API returning a value and an error.
func Pair() (int, error) {
	return 0, errors.New("boom")
}

// DropsBareCall discards the error of a bare call. (true positive)
func DropsBareCall() {
	Fallible()
}

// DropsBlank discards the error via the blank identifier.
// (true positive)
func DropsBlank() {
	_ = Fallible()
}

// DropsTupleBlank discards the error half of a tuple. (true positive)
func DropsTupleBlank() int {
	n, _ := Pair()
	return n
}

// Handled propagates the error. (clean)
func Handled() error {
	if err := Fallible(); err != nil {
		return err
	}
	return nil
}

// Suppressed documents why dropping the error is acceptable.
func Suppressed() {
	//lint:ignore errdrop fixture demonstrating a justified best-effort call
	_ = Fallible()
}
