// Package nondetfix is a lint fixture: true positives and suppressed
// cases for the nondeterminism analyzer.
package nondetfix

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock. (true positive: time.Now)
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed derives a duration from the clock. (true positive: time.Since)
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

// Jitter draws from the global source. (true positive: unseeded rand)
func Jitter() float64 {
	return rand.Float64()
}

// Keys leaks map order into a returned slice. (true positive: map range)
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Seeded derives randomness from an explicit seed. (clean)
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Sum folds a map without ordering output. (clean: no escape)
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SuppressedStamp documents why its clock read is acceptable.
func SuppressedStamp() int64 {
	//lint:ignore nondeterminism fixture demonstrating an annotated, justified clock read
	return time.Now().UnixNano()
}
