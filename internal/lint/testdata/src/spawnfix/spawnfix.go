// Package spawnfix exercises the spawnjoin analyzer: fire-and-forget
// goroutines with no join edge, against the joined shapes (WaitGroup
// through helper hops, channel sends, context consultation).
package spawnfix

import (
	"context"
	"sync"
)

// Leak spawns a named callee with no join signal anywhere in its
// transitive summary. Finding.
func Leak() {
	go tick()
}

func tick() {
	for i := 0; i < 1000; i++ {
		_ = i
	}
}

// LeakLit spawns a literal with no join evidence. Finding.
func LeakLit() {
	go func() { _ = add(1, 2) }()
}

func add(a, b int) int { return a + b }

// Spawn is joined: the WaitGroup Done is two helper hops away, visible
// only through the call graph. Clean.
func Spawn(wg *sync.WaitGroup) {
	go worker(wg)
}

func worker(wg *sync.WaitGroup) { signal(wg) }

func signal(wg *sync.WaitGroup) { wg.Done() }

// SpawnChan is joined by a channel send in the literal body. Clean.
func SpawnChan() chan int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return ch
}

// SpawnCtx is joined by the cancellation edge: the worker blocks on
// ctx.Done. Clean.
func SpawnCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// Sanctioned is a process-lifetime goroutine under an in-file
// suppression.
func Sanctioned() {
	//lint:ignore spawnjoin fixture: process-lifetime goroutine by design
	go tick()
}
