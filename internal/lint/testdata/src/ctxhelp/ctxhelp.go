// Package ctxhelp is the cross-package delegate of the ctxflow fixture:
// a wrapper returning ctxhelp.DoCtx(context.Background()) is an
// implementation rooting its own context, not a sanctioned same-package
// convenience alias.
package ctxhelp

import "context"

// DoCtx consumes a caller context.
func DoCtx(ctx context.Context) error { return ctx.Err() }
