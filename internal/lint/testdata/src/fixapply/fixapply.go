// Package fixapply holds one of every fixable finding class. The fix
// tests copy it into a scratch module, apply the suggested fixes, pin
// the post-fix bytes against a golden file, and assert the fixed tree
// re-lints clean (idempotence).
package fixapply

import (
	"harmonia/internal/hw"
)

// Grid builds a keyed envelope literal; the fix rewrites it to the
// clamping constructor.
func Grid() hw.ComputeConfig {
	return hw.ComputeConfig{CUs: 10, Freq: 500}
}

// Mem is the positional form.
func Mem() hw.MemConfig {
	return hw.MemConfig{825}
}

func mightFail() error { return nil }

// Drop discards a module error; the fix wraps the call in an explicit
// handling stub.
func Drop() {
	mightFail()
}

// Same compares floats exactly; the fix routes it through floats.Equal
// and inserts the import.
func Same(a, b float64) bool {
	return a == b
}

// NonZero is the negated zero-literal form; its fix shares the import
// insertion with Same's.
func NonZero(v float64) bool {
	return v != 0
}
