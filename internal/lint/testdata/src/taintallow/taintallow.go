// Package taintallow is the detertaint fixture's allowlisted sink: it
// reads the clock by design (mirroring serve/telemetry/faults), and the
// policy exemption makes it a barrier — its taint does not flow into
// deterministic callers.
package taintallow

import "time"

// Telemetry is sanctioned wall-clock use; as a barrier function its
// effect stays here.
func Telemetry() int64 { return time.Now().UnixNano() }
