// Package taintdet is the deterministic-scoped package of the
// detertaint fixture: calls out of it are judged against the module
// call graph.
package taintdet

import (
	"harmonia/internal/lint/testdata/src/taintallow"
	"harmonia/internal/lint/testdata/src/taintwrap"
)

// Tainted reaches time.Now two wrapper hops away: the true positive the
// intraprocedural check misses.
func Tainted() int64 { return taintwrap.Stamp() }

// Sanctioned calls a wrapper whose seed carries an ignore directive; a
// sanctioned seed does not taint.
func Sanctioned() int64 { return taintwrap.SanctionedID() }

// ThroughBarrier calls into the allowlisted package; barrier functions
// keep their taint to themselves.
func ThroughBarrier() int64 { return taintallow.Telemetry() }

// Clean calls an effect-free helper.
func Clean(a int) int { return taintwrap.Pure(a, a) }

// Suppressed commits the violation under an in-file suppression.
func Suppressed() int64 {
	//lint:ignore detertaint fixture: demonstrating the in-file suppression
	return taintwrap.Stamp()
}
