// Package ctxfix exercises the ctxflow analyzer: root contexts minted
// in library code, contexts stashed in struct fields, and fan-out loops
// that never consult their context.
package ctxfix

import (
	"context"

	"harmonia/internal/lint/testdata/src/ctxhelp"
)

// Holder stashes a context beyond its call. Finding.
type Holder struct {
	ctx context.Context
}

// Library mints its own root context. Finding.
func Library() error {
	ctx := context.Background()
	return work(ctx)
}

// Run is the sanctioned delegation wrapper: a single return delegating
// to the same-package Context variant. Clean.
func Run() error { return RunContext(context.Background()) }

// RunContext is the real entry point.
func RunContext(ctx context.Context) error { return work(ctx) }

// BadWrapper has the wrapper shape but delegates across packages — that
// is the implementation, not a convenience alias. Finding.
func BadWrapper() error { return ctxhelp.DoCtx(context.Background()) }

// Placeholder leaves a TODO context in place. Finding.
func Placeholder() error { return work(context.TODO()) }

// Suppressed mints a root context under an in-file suppression.
func Suppressed() error {
	//lint:ignore ctxflow fixture: demonstrating the in-file suppression
	ctx := context.Background()
	return work(ctx)
}

func work(ctx context.Context) error { return ctx.Err() }

// FanOutLoop spawns work each iteration — through two wrapper hops the
// call graph resolves — and never consults ctx. Finding.
func FanOutLoop(ctx context.Context, jobs []int) {
	for range jobs {
		spawnWorker()
	}
}

func spawnWorker() { spawnInner() }

func spawnInner() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// FanOutJoined spawns per-iteration work but hands ctx to a helper that
// consults it two hops down. Clean.
func FanOutJoined(ctx context.Context, jobs []int) {
	for range jobs {
		go drain(ctx)
	}
}

func drain(ctx context.Context) { inner(ctx) }

func inner(ctx context.Context) { _ = ctx.Err() }
