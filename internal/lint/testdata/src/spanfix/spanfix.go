// Package spanfix exercises the spanend analyzer: spans that are never
// Ended or leak on early returns, against the clean shapes (deferred
// End, delegation to an ending helper resolved through the call graph,
// ownership escapes).
package spanfix

import (
	"errors"

	"harmonia/internal/trace"
)

// Never starts a span and forgets it. Finding at the start.
func Never(rec *trace.Recorder) {
	sp := rec.Start(nil, "never")
	_ = sp
}

// Dropped discards the span expression outright. Finding.
func Dropped(rec *trace.Recorder) {
	rec.Start(nil, "dropped")
}

// Early Ends the span on the happy path but leaks it on the error
// return. Finding at the early return.
func Early(rec *trace.Recorder, fail bool) error {
	sp := rec.Start(nil, "early")
	if fail {
		return errors.New("fixture failure")
	}
	sp.End()
	return nil
}

// Deferred is the canonical clean shape.
func Deferred(rec *trace.Recorder) {
	sp := rec.Start(nil, "deferred")
	defer sp.End()
}

// Delegated hands its span to a helper that Ends it two hops down — the
// wrapper indirection only the call graph resolves. Clean.
func Delegated(rec *trace.Recorder) {
	sp := rec.Start(nil, "delegated")
	finish(sp)
}

func finish(sp *trace.Span) { closeSpan(sp) }

func closeSpan(sp *trace.Span) { sp.End() }

// Opened transfers ownership to the caller. Clean here.
func Opened(rec *trace.Recorder) *trace.Span {
	sp := rec.Start(nil, "opened")
	return sp
}

// InClosure starts and Ends the span inside a literal frame; the
// literal's (absent) returns govern, not the enclosing function's.
// Clean.
func InClosure(rec *trace.Recorder) func() {
	return func() {
		sp := rec.Start(nil, "closure")
		child := sp.Child("child")
		child.End()
		sp.End()
	}
}

// Sanctioned leaves a span open under an in-file suppression.
func Sanctioned(rec *trace.Recorder) {
	//lint:ignore spanend fixture: span intentionally left open for a snapshot assertion
	sp := rec.Start(nil, "open")
	_ = sp
}
