// Package lockfix is a lint fixture: true positives and suppressed
// cases for the lockscope analyzer.
package lockfix

import (
	"sync"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/sweep"
	"harmonia/internal/workloads"
)

// Store caches sweep results behind a mutex.
type Store struct {
	mu    sync.Mutex
	sim   gpusim.Runner
	cache map[string]hw.Config
}

// HeldAcrossSweep holds the lock across the exhaustive search.
// (true positive: the PR 3 oracle-cache bug shape)
func (s *Store) HeldAcrossSweep(key string, space []hw.Config) hw.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg, ok := s.cache[key]; ok {
		return cfg
	}
	best, _, _ := sweep.Min(space, 1, func(hw.Config) float64 { return 0 })
	s.cache[key] = best
	return best
}

// HeldAcrossRun holds the lock across a simulator call.
// (true positive: method on a gpusim-declared type)
func (s *Store) HeldAcrossRun(k *workloads.Kernel, cfg hw.Config) gpusim.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim.Run(k, 0, cfg)
}

// ReleasedAroundSweep drops the lock before sweeping. (clean)
func (s *Store) ReleasedAroundSweep(key string, space []hw.Config) hw.Config {
	s.mu.Lock()
	cfg, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return cfg
	}
	best, _, _ := sweep.Min(space, 1, func(hw.Config) float64 { return 0 })
	s.mu.Lock()
	s.cache[key] = best
	s.mu.Unlock()
	return best
}

// Suppressed documents why holding the lock is acceptable here.
func (s *Store) Suppressed(space []hw.Config) hw.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockscope fixture demonstrating a justified single-point sweep under lock
	best, _, _ := sweep.Min(space[:1], 1, func(hw.Config) float64 { return 0 })
	return best
}
