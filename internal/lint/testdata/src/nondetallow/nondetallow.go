// Package nondetallow is a lint fixture: it commits the same
// violations as nondetfix but is allowlisted by policy in the golden
// test (the serve/telemetry/faults mechanism), so none are reported.
package nondetallow

import "time"

// Stamp reads the wall clock, which this package is allowed to do.
func Stamp() int64 {
	return time.Now().UnixNano()
}
