package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the interprocedural half of the framework: a module-wide
// call graph over every loaded package, per-function effect summaries,
// and a fixed-point propagation that makes transitive facts ("this call
// eventually reads the wall clock", "this helper does consult its
// context") available to analyzers. The intraprocedural analyzers see
// one function body at a time; the Program sees through any wrapper
// depth.
//
// Precision model, documented so analyzer semantics stay honest:
//
//   - Static calls to module functions and methods resolve exactly
//     (go/types object identity).
//   - Calls through the module's small interface surfaces
//     (policy.Policy, gpusim.Runner, gpusim.PreparedRunner,
//     trace.Traceable) resolve to every module type implementing the
//     interface — sound fan-out, not points-to precision.
//   - Function values passed as arguments (batch.Map callbacks) are
//     not tracked through the call; effects inside a func literal are
//     attributed to the function that lexically contains it, which
//     covers the repo's closure idioms.
//   - Standard-library callees are opaque except for the recognized
//     effect sources (time.Now, math/rand, sync primitives, channels).

// Effect is a bitmask of summarized behaviors.
type Effect uint16

const (
	// EffWallClock: the function (transitively) reads the wall clock.
	EffWallClock Effect = 1 << iota
	// EffUnseededRand: draws from math/rand's global or runtime-seeded
	// source.
	EffUnseededRand
	// EffSpawnsGoroutine: contains a go statement.
	EffSpawnsGoroutine
	// EffAcquiresMutex: locks a sync.Mutex/RWMutex.
	EffAcquiresMutex
	// EffConsultsCtx: consults a context — calls Done/Err/Deadline on a
	// context.Context value, or passes a context into a callee that
	// (transitively) consults it.
	EffConsultsCtx
	// EffJoinSignal: signals completion or participates in a join — a
	// sync.WaitGroup.Done, a channel send/receive/close, or a select.
	// Spawned work with none of these (and no context consultation) has
	// no edge back to its spawner: the spawnjoin leak class.
	EffJoinSignal
)

// taintEffects are the effect bits detertaint propagates, and the bits
// the clean-package barrier zeroes.
const taintEffects = EffWallClock | EffUnseededRand

// effectDesc names the seed of each taint bit for diagnostics.
var effectDesc = map[Effect]string{
	EffWallClock:    "wall-clock read",
	EffUnseededRand: "unseeded math/rand draw",
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Pos    token.Pos
	Callee *FuncNode
	// PassesCtx marks a call that forwards a context.Context value;
	// EffConsultsCtx propagates only across these edges.
	PassesCtx bool
	// spanArgs maps the callee's parameter index to true for arguments
	// that are trace spans tracked by spanend (the wrapper-ends-my-span
	// resolution).
	spanArgs map[int]ast.Expr
}

// FuncNode is one declared function or method in the graph.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Direct Effect
	Trans  Effect

	Calls []*CallEdge

	// seedPos/seedDesc record where each Direct taint bit was
	// introduced ("time.Now at internal/trace/trace.go:153").
	seedPos  map[Effect]token.Position
	seedDesc map[Effect]string
	// via records, per transitive bit, the first call edge that carried
	// it in — the witness used to print the offending call path.
	via map[Effect]*CallEdge

	// endsSpanParams marks parameter indices of type *trace.Span on
	// which End is (transitively) called — the "helper closes my span"
	// summary spanend consults.
	endsSpanParams map[int]bool

	// barrier marks functions in sanctioned-nondeterminism packages:
	// their wall-clock/rand effects do not leak to callers.
	barrier bool
}

// Name renders the node as "pkg.Func" or "pkg.Recv.Method" with the
// short package name.
func (n *FuncNode) Name() string {
	return shortPkg(n.Pkg.Path) + "." + strings.TrimPrefix(funcFullName(n.Pkg.Path, n.Decl), n.Pkg.Path+".")
}

// Program is the module-wide interprocedural index built once per Run.
type Program struct {
	Nodes   map[*types.Func]*FuncNode
	ordered []*FuncNode // deterministic iteration order

	// ifaceImpls maps an interface method object to the concrete module
	// methods a dynamic call may dispatch to.
	ifaceImpls map[*types.Func][]*FuncNode

	fset *token.FileSet
}

// ProgramOptions configure summary construction.
type ProgramOptions struct {
	// CleanPackages are import-path prefixes whose functions are
	// sanctioned nondeterminism sinks (serve, telemetry, faults,
	// resilience under the default policy): wall-clock and rand effects
	// neither seed nor flow out of them.
	CleanPackages []string
	// SuppressedSeedLines holds "file:line" keys whose direct
	// wall-clock/rand effects carry a //lint:ignore for nondeterminism
	// or detertaint — sanctioned seeds (the trace package's injectable
	// wall-clock default) must not taint their callers.
	SuppressedSeedLines map[string]bool
}

// ifaceSurfaces are the interface types whose dynamic calls the graph
// resolves by method-set matching.
var ifaceSurfaces = [][2]string{
	{"harmonia/internal/policy", "Policy"},
	{"harmonia/internal/gpusim", "Runner"},
	{"harmonia/internal/gpusim", "PreparedRunner"},
	{"harmonia/internal/trace", "Traceable"},
}

// BuildProgram indexes every function declared in pkgs, extracts direct
// effect summaries, resolves static and interface call edges, and runs
// the propagation to a fixed point.
func BuildProgram(pkgs []*Package, opts ProgramOptions) *Program {
	prog := &Program{
		Nodes:      make(map[*types.Func]*FuncNode),
		ifaceImpls: make(map[*types.Func][]*FuncNode),
	}
	if len(pkgs) > 0 {
		prog.fset = pkgs[0].Fset
	}

	// Pass 1: index declared functions.
	for _, pkg := range pkgs {
		barrier := matchAny(pkg.Path, opts.CleanPackages)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pkg.Info == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{
					Fn: obj, Decl: fd, Pkg: pkg,
					seedPos:        make(map[Effect]token.Position),
					seedDesc:       make(map[Effect]string),
					via:            make(map[Effect]*CallEdge),
					endsSpanParams: make(map[int]bool),
					barrier:        barrier,
				}
				prog.Nodes[obj] = node
				prog.ordered = append(prog.ordered, node)
			}
		}
	}
	sort.Slice(prog.ordered, func(i, j int) bool {
		a, b := prog.ordered[i], prog.ordered[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})

	prog.resolveInterfaces(pkgs)

	// Pass 2: direct effects and call edges.
	for _, node := range prog.ordered {
		prog.summarize(node, opts)
	}

	prog.propagate()
	return prog
}

// NodeOf returns the graph node for a resolved function object.
func (p *Program) NodeOf(fn *types.Func) *FuncNode { return p.Nodes[fn] }

// resolveInterfaces builds the dynamic-dispatch table for the module's
// small interface surfaces.
func (p *Program) resolveInterfaces(pkgs []*Package) {
	// Locate the interface types among the loaded packages (they may be
	// absent in fixture-only runs).
	var ifaces []*types.Interface
	var ifaceObjs []*types.TypeName
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, surf := range ifaceSurfaces {
			if pkg.Path != surf[0] {
				continue
			}
			obj, ok := pkg.Types.Scope().Lookup(surf[1]).(*types.TypeName)
			if !ok {
				continue
			}
			if it, ok := obj.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, it)
				ifaceObjs = append(ifaceObjs, obj)
			}
		}
	}
	// Also resolve through dependency-loaded module packages: a fixture
	// importing gpusim sees the interface via the dependency path even
	// when gpusim is not among the analyzed pkgs. The Uses map at call
	// sites references those objects directly, so collecting interfaces
	// from analyzed packages is only needed to enumerate method objects.
	if len(ifaces) == 0 {
		return
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			ptr := types.NewPointer(named)
			for i, it := range ifaces {
				_ = ifaceObjs[i]
				var impl types.Type
				switch {
				case types.Implements(named, it):
					impl = named
				case types.Implements(ptr, it):
					impl = ptr
				default:
					continue
				}
				for m := 0; m < it.NumMethods(); m++ {
					im := it.Method(m)
					obj, _, _ := types.LookupFieldOrMethod(impl, true, pkg.Types, im.Name())
					cf, ok := obj.(*types.Func)
					if !ok {
						continue
					}
					if node := p.Nodes[cf]; node != nil {
						p.ifaceImpls[im] = append(p.ifaceImpls[im], node)
					}
				}
			}
		}
	}
	// Deterministic dispatch order.
	for _, impls := range p.ifaceImpls {
		sort.Slice(impls, func(i, j int) bool {
			a, b := impls[i], impls[j]
			if a.Pkg.Path != b.Pkg.Path {
				return a.Pkg.Path < b.Pkg.Path
			}
			return a.Decl.Pos() < b.Decl.Pos()
		})
	}
}

// summarize extracts node's direct effects and outgoing call edges.
func (p *Program) summarize(node *FuncNode, opts ProgramOptions) {
	pkg := node.Pkg
	file := fileOf(pkg, node.Decl.Pos())
	timeName, timeOK := localImportName(file, "time")
	randName, randOK := localImportName(file, "math/rand")
	randV2Name, randV2OK := localImportName(file, "math/rand/v2")

	seed := func(eff Effect, pos token.Pos, desc string) {
		position := pkg.Fset.Position(pos)
		if eff&taintEffects != 0 && opts.SuppressedSeedLines[seedKey(position)] {
			return
		}
		if node.Direct&eff == 0 {
			node.Direct |= eff
			node.seedPos[eff] = position
			node.seedDesc[eff] = desc
		}
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			node.Direct |= EffSpawnsGoroutine
		case *ast.SendStmt, *ast.SelectStmt:
			node.Direct |= EffJoinSignal
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				node.Direct |= EffJoinSignal
			}
		case *ast.RangeStmt:
			if t := typeOf(pkg, n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					node.Direct |= EffJoinSignal
				}
			}
		case *ast.CallExpr:
			p.summarizeCall(node, n, seed, timeName, timeOK, randName, randOK, randV2Name, randV2OK)
		}
		return true
	})
}

// summarizeCall classifies one call expression: an effect source, a
// context consultation, a join signal, or a resolved call edge.
func (p *Program) summarizeCall(node *FuncNode, call *ast.CallExpr,
	seed func(Effect, token.Pos, string),
	timeName string, timeOK bool, randName string, randOK bool, randV2Name string, randV2OK bool) {

	pkg := node.Pkg

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isFn := objOf(pkg, id).(*types.Func); !isFn { // the builtin
			node.Direct |= EffJoinSignal
		}
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Effect sources by qualified package call.
		if id, ok := sel.X.(*ast.Ident); ok && isPkgIdent(pkg, id) {
			switch {
			case timeOK && id.Name == timeName && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since"):
				seed(EffWallClock, call.Pos(), "time."+sel.Sel.Name)
			case randOK && id.Name == randName && !randConstructors[sel.Sel.Name]:
				seed(EffUnseededRand, call.Pos(), "rand."+sel.Sel.Name)
			case randV2OK && id.Name == randV2Name && !randConstructors[sel.Sel.Name]:
				seed(EffUnseededRand, call.Pos(), "rand."+sel.Sel.Name+" (v2)")
			}
		}
		// Mutex / WaitGroup / context / span method calls by receiver type.
		if recvT := typeOf(pkg, sel.X); recvT != nil {
			recvPath, recvName, named := namedFrom(recvT)
			switch {
			case named && recvPath == "sync" && (recvName == "Mutex" || recvName == "RWMutex"):
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					node.Direct |= EffAcquiresMutex
				}
			case named && recvPath == "sync" && recvName == "WaitGroup":
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Wait" {
					node.Direct |= EffJoinSignal
				}
			case isContextType(recvT):
				switch sel.Sel.Name {
				case "Done", "Err", "Deadline":
					node.Direct |= EffConsultsCtx
				}
			case named && recvPath == tracePkg && recvName == "Span" && sel.Sel.Name == "End":
				if i := spanParamIndex(node, sel.X, pkg); i >= 0 {
					node.endsSpanParams[i] = true
				}
			}
		}
	}

	// Resolve the callee to graph nodes.
	callees := p.resolveCallees(pkg, call)
	if len(callees) == 0 {
		return
	}
	passesCtx := false
	spanArgs := map[int]ast.Expr{}
	for i, arg := range call.Args {
		t := typeOf(pkg, arg)
		if isContextType(t) {
			passesCtx = true
		}
		if isSpanType(t) {
			spanArgs[i] = arg
		}
	}
	if len(spanArgs) == 0 {
		spanArgs = nil
	}
	for _, callee := range callees {
		node.Calls = append(node.Calls, &CallEdge{
			Pos: call.Pos(), Callee: callee, PassesCtx: passesCtx, spanArgs: spanArgs,
		})
	}
}

// resolveCallees maps a call to its possible targets within the graph:
// the statically bound function, or every implementation of an
// interface method.
func (p *Program) resolveCallees(pkg *Package, call *ast.CallExpr) []*FuncNode {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	obj, _ := objOf(pkg, id).(*types.Func)
	if obj == nil {
		return nil
	}
	if node := p.Nodes[obj]; node != nil {
		return []*FuncNode{node}
	}
	if impls := p.ifaceImpls[obj]; len(impls) > 0 {
		return impls
	}
	// Interface method objects obtained through embedding resolve to a
	// distinct *types.Func per embedding level; match by name against
	// the declared surfaces as a fallback.
	return nil
}

// propagate runs the effect fixed point: Trans = Direct ∪ callee Trans,
// with wall-clock/rand blocked at barrier nodes and context
// consultation flowing only across context-passing edges. Span-param
// closure (endsSpanParams through helper chains) reaches a fixed point
// in the same loop.
func (p *Program) propagate() {
	for _, n := range p.ordered {
		n.Trans = n.Direct
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.ordered {
			for _, e := range n.Calls {
				in := e.Callee.Trans
				if e.Callee.barrier {
					in &^= taintEffects
				}
				if !e.PassesCtx {
					in &^= EffConsultsCtx
				}
				if add := in &^ n.Trans; add != 0 {
					n.Trans |= add
					for _, bit := range []Effect{EffWallClock, EffUnseededRand, EffSpawnsGoroutine, EffAcquiresMutex, EffConsultsCtx, EffJoinSignal} {
						if add&bit != 0 && n.via[bit] == nil {
							n.via[bit] = e
						}
					}
					changed = true
				}
				// Span closure: passing our span param into a callee
				// position that (transitively) Ends it means we end it.
				for argIdx, argExpr := range e.spanArgs {
					if !e.Callee.endsSpanParams[argIdx] {
						continue
					}
					if i := spanParamIndex(n, argExpr, n.Pkg); i >= 0 && !n.endsSpanParams[i] {
						n.endsSpanParams[i] = true
						changed = true
					}
				}
			}
		}
	}
}

// TaintPath renders the witness chain for a taint bit starting at node:
// "a.F → b.G → time.Now (internal/x/y.go:12)". The path is
// deterministic: the first edge (in source order) that carried the bit
// during propagation is recorded as the witness.
func (p *Program) TaintPath(node *FuncNode, bit Effect, root string) string {
	var parts []string
	seen := map[*FuncNode]bool{}
	cur := node
	for cur != nil && !seen[cur] {
		seen[cur] = true
		parts = append(parts, cur.Name())
		if cur.Direct&bit != 0 {
			pos := cur.seedPos[bit]
			parts = append(parts, cur.seedDesc[bit]+" ("+relPos(pos, root)+")")
			return strings.Join(parts, " → ")
		}
		edge := cur.via[bit]
		if edge == nil {
			break
		}
		cur = edge.Callee
	}
	return strings.Join(parts, " → ")
}

// EndsSpanParam reports whether fn (transitively) calls End on its i-th
// parameter.
func (p *Program) EndsSpanParam(fn *types.Func, i int) bool {
	node := p.Nodes[fn]
	return node != nil && node.endsSpanParams[i]
}

const tracePkg = "harmonia/internal/trace"

// spanParamIndex resolves an expression to the index of the enclosing
// function's parameter it denotes, or -1. Used to summarize "this
// function Ends its span argument".
func spanParamIndex(node *FuncNode, e ast.Expr, pkg *Package) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := objOf(pkg, id)
	if obj == nil {
		return -1
	}
	sig, ok := node.Fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	path, name, ok := namedFrom(t)
	return ok && path == "context" && name == "Context"
}

// isSpanType reports whether t is *trace.Span (or trace.Span).
func isSpanType(t types.Type) bool {
	path, name, ok := namedFrom(t)
	return ok && path == tracePkg && name == "Span"
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if pkg.Info == nil {
		return nil
	}
	return pkg.Info.TypeOf(e)
}

func objOf(pkg *Package, id *ast.Ident) types.Object {
	if pkg.Info == nil {
		return nil
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

func isPkgIdent(pkg *Package, id *ast.Ident) bool {
	obj := objOf(pkg, id)
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.PkgName)
	return ok
}

// fileOf returns the *ast.File of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return pkg.Files[0]
}

// seedKey renders a position as the "file:line" suppression key.
func seedKey(pos token.Position) string {
	return pos.Filename + ":" + strconv.Itoa(pos.Line)
}

// relPos renders a position with the path relative to root.
func relPos(pos token.Position, root string) string {
	file := pos.Filename
	if root != "" && strings.HasPrefix(file, root) {
		file = strings.TrimPrefix(strings.TrimPrefix(file, root), "/")
	}
	return file + ":" + strconv.Itoa(pos.Line)
}
