package lint

import (
	"go/ast"
	"strings"
)

// Nondeterminism forbids the three bug classes that break bit-identical
// replay inside the deterministic packages (see DeterministicPackages):
//
//   - wall-clock reads (time.Now, time.Since): any value derived from
//     the clock poisons memoization keys and run/rerun equivalence.
//   - unseeded math/rand: the package-level functions draw from the
//     shared global source, whose state depends on everything else in
//     the process; randomness must flow from rand.New(rand.NewSource)
//     with an explicit seed.
//   - map iteration whose order can reach output: ranging over a map
//     while appending to a slice or writing to a stream bakes Go's
//     randomized iteration order into the result.
type Nondeterminism struct{}

// Name implements Analyzer.
func (*Nondeterminism) Name() string { return "nondeterminism" }

// Doc implements Analyzer.
func (*Nondeterminism) Doc() string {
	return "forbid wall-clock reads, unseeded math/rand, and output-reaching map iteration in deterministic packages"
}

// randConstructors are the math/rand entry points that do not touch the
// global source: they build explicitly seeded generators.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Run implements Analyzer.
func (a *Nondeterminism) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		timeName, timeOK := localImportName(f, "time")
		randName, randOK := localImportName(f, "math/rand")
		randV2Name, randV2OK := localImportName(f, "math/rand/v2")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if timeOK && id.Name == timeName && isPkgRef(pass, id) {
					if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock; deterministic packages must take time as an input", sel.Sel.Name)
					}
				}
				if randOK && id.Name == randName && isPkgRef(pass, id) && !randConstructors[sel.Sel.Name] {
					pass.Reportf(n.Pos(), "rand.%s draws from the unseeded global source; use rand.New(rand.NewSource(seed))", sel.Sel.Name)
				}
				if randV2OK && id.Name == randV2Name && isPkgRef(pass, id) && !randConstructors[sel.Sel.Name] {
					pass.Reportf(n.Pos(), "rand.%s (math/rand/v2) draws from a runtime-seeded source; use rand.New with an explicit seed", sel.Sel.Name)
				}
			case *ast.RangeStmt:
				a.checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange flags a range over a map whose body can propagate the
// randomized iteration order into ordered output: an append, a stream
// write, or a formatted print inside the loop body.
func (a *Nondeterminism) checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil || !isMapType(t) {
		return
	}
	var escape ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if escape != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				escape = call
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
				escape = call
			}
		}
		return true
	})
	if escape != nil {
		pass.Reportf(escape.Pos(), "%s inside map iteration (line %d) bakes random order into output; collect and sort keys first",
			describeEscape(escape), pass.Pkg.Fset.Position(rng.Pos()).Line)
	}
}

func describeEscape(n ast.Node) string {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "write"
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "write"
}
