package lint

import (
	"strings"
	"testing"
)

// TestRepoIsLintClean is the regression gate behind `make lint`: the
// whole module — internal/... AND cmd/... — must pass every analyzer
// under the default policy with zero findings — errors AND warnings, so
// -werror in CI can never regress silently. A future PR that introduces
// a violation fails this test even if it forgets to run the linter.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root).LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module walk looks broken", len(pkgs))
	}
	// The cmd binaries are part of the clean surface: the interprocedural
	// analyzers need their mains as call-graph roots, and a violation in
	// a main is as real as one in a library. Guard against a loader
	// regression silently dropping them.
	cmds := 0
	for _, pkg := range pkgs {
		if strings.HasPrefix(pkg.Path, ModulePath+"/cmd/") {
			cmds++
		}
	}
	if cmds < 8 {
		t.Fatalf("loaded only %d cmd/... packages; the binaries must be part of the lint surface", cmds)
	}
	diags := Run(pkgs, Analyzers(), DefaultPolicy())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("harmonia-lint found %d finding(s); the tree must stay lint-clean (see DESIGN.md §10)", len(diags))
	}
}
