package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestScopeApplies(t *testing.T) {
	s := Scope{
		Only:   []string{"harmonia/internal/sweep", "harmonia/internal/core"},
		Exempt: []string{"harmonia/internal/core"},
	}
	cases := []struct {
		path string
		want bool
	}{
		{"harmonia/internal/sweep", true},
		{"harmonia/internal/sweep/sub", true}, // prefix match covers subtrees
		{"harmonia/internal/sweeper", false},  // not a path-segment match
		{"harmonia/internal/core", false},     // exempt wins over only
		{"harmonia/internal/serve", false},    // not in only
	}
	for _, c := range cases {
		if got := s.Applies(c.path); got != c.want {
			t.Errorf("Applies(%q) = %v, want %v", c.path, got, c.want)
		}
	}

	var empty Scope
	if !empty.Applies("anything") {
		t.Error("empty scope must apply everywhere")
	}
}

func TestPolicyDefaultsAndUnknownChecks(t *testing.T) {
	pol := DefaultPolicy()
	if pol.Applies("nondeterminism", "harmonia/internal/serve") {
		t.Error("serve must be allowlisted for nondeterminism")
	}
	if !pol.Applies("nondeterminism", "harmonia/internal/sweep") {
		t.Error("sweep must be under nondeterminism enforcement")
	}
	if pol.Applies("hwenvelope", "harmonia/internal/hw") {
		t.Error("hw itself must be exempt from hwenvelope")
	}
	if !pol.Applies("errdrop", "harmonia/internal/anything") {
		t.Error("checks without a scope must run everywhere")
	}
}

func TestSelect(t *testing.T) {
	all := Analyzers()
	got, err := Select(all, "floateq, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name() != "floateq" || got[1].Name() != "errdrop" {
		t.Fatalf("Select returned %d analyzers in wrong order", len(got))
	}
	if _, err := Select(all, "nosuchcheck"); err == nil {
		t.Error("Select must reject unknown check names")
	}
	whole, err := Select(all, "")
	if err != nil || len(whole) != len(all) {
		t.Errorf("empty selection must return all analyzers, got %d, %v", len(whole), err)
	}
}

// TestDirectiveWarnings verifies that malformed suppressions surface as
// "directive" warnings: a missing reason and an unknown check name.
func TestDirectiveWarnings(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "badsuppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers(), DefaultPolicy())

	var noReason, unknown, errors int
	for _, d := range diags {
		if d.Severity == SevError {
			errors++
			continue
		}
		if d.Check != "directive" {
			t.Errorf("unexpected warning check %q", d.Check)
		}
		switch {
		case strings.Contains(d.Message, "no reason"):
			noReason++
		case strings.Contains(d.Message, "unknown check"):
			unknown++
		}
	}
	if noReason != 1 || unknown != 1 {
		t.Errorf("got %d missing-reason and %d unknown-check warnings, want 1 and 1:\n%v", noReason, unknown, diags)
	}
	// The reasonless directive still suppresses its finding; the
	// unknown-check directive suppresses nothing, and the unannotated
	// site reports normally.
	if errors != 2 {
		t.Errorf("got %d error findings, want 2 (unknown-check site + unannotated site):\n%v", errors, diags)
	}
}

// TestSuppressionLineForms verifies both directive placements: trailing
// on the offending line, and standalone on the line above.
func TestSuppressionLineForms(t *testing.T) {
	loader, root := fixtureEnv(t)
	pkgs, err := loader.LoadDirs(fixtureDir(root, "suppressforms"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Analyzers(), DefaultPolicy())
	if len(diags) != 0 {
		t.Errorf("both directive forms must suppress; got %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Check:    "floateq",
		Severity: SevError,
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "bad",
	}
	if got, want := d.String(), "x.go:3:7: floateq: bad"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
