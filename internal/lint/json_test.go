package lint

import (
	"bytes"
	"go/token"
	"testing"
)

// TestJSONStableSchema pins the -json output contract byte-for-byte:
// top-level field order (module, checks, errors, warnings, findings)
// and per-finding field order (check, severity, file, line, col,
// message). The serve/CI layer may ingest this format; changing it is
// an API break and must update DESIGN.md §10.4 alongside this test.
func TestJSONStableSchema(t *testing.T) {
	diags := []Diagnostic{
		{
			Check:    "floateq",
			Severity: SevError,
			Pos:      token.Position{Filename: "/repo/internal/sweep/sweep.go", Line: 12, Column: 4},
			Message:  "== on float operands",
		},
		{
			Check:    "directive",
			Severity: SevWarn,
			Pos:      token.Position{Filename: "/repo/cmd/x/main.go", Line: 3, Column: 1},
			Message:  "lint:ignore errdrop has no reason",
		},
	}
	rep := NewReport("/repo", []string{"floateq", "errdrop"}, diags)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := `{
  "module": "harmonia",
  "checks": [
    "floateq",
    "errdrop"
  ],
  "errors": 1,
  "warnings": 1,
  "findings": [
    {
      "check": "floateq",
      "severity": "error",
      "file": "internal/sweep/sweep.go",
      "line": 12,
      "col": 4,
      "message": "== on float operands"
    },
    {
      "check": "directive",
      "severity": "warn",
      "file": "cmd/x/main.go",
      "line": 3,
      "col": 1,
      "message": "lint:ignore errdrop has no reason"
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("JSON schema drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestJSONEmptyFindings pins the zero-finding document: findings must
// be an empty array, never null.
func TestJSONEmptyFindings(t *testing.T) {
	rep := NewReport("/repo", []string{"floateq"}, nil)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := `{
  "module": "harmonia",
  "checks": [
    "floateq"
  ],
  "errors": 0,
  "warnings": 0,
  "findings": []
}
`
	if buf.String() != want {
		t.Errorf("empty report drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}
