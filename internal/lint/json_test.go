package lint

import (
	"bytes"
	"go/token"
	"testing"
)

// TestJSONStableSchema pins the -json output contract byte-for-byte:
// top-level field order (module, checks, errors, warnings, findings)
// and per-finding field order (check, severity, file, line, col,
// message, suggested_fixes — the last omitted when the finding carries
// no fix). The serve/CI layer may ingest this format; changing it is an
// API break and must update DESIGN.md §10.4 alongside this test.
func TestJSONStableSchema(t *testing.T) {
	diags := []Diagnostic{
		{
			Check:    "floateq",
			Severity: SevError,
			Pos:      token.Position{Filename: "/repo/internal/sweep/sweep.go", Line: 12, Column: 4},
			Message:  "== on float operands",
		},
		{
			Check:    "directive",
			Severity: SevWarn,
			Pos:      token.Position{Filename: "/repo/cmd/x/main.go", Line: 3, Column: 1},
			Message:  "lint:ignore errdrop has no reason",
		},
	}
	rep := NewReport("/repo", []string{"floateq", "errdrop"}, diags)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := `{
  "module": "harmonia",
  "checks": [
    "floateq",
    "errdrop"
  ],
  "errors": 1,
  "warnings": 1,
  "findings": [
    {
      "check": "floateq",
      "severity": "error",
      "file": "internal/sweep/sweep.go",
      "line": 12,
      "col": 4,
      "message": "== on float operands"
    },
    {
      "check": "directive",
      "severity": "warn",
      "file": "cmd/x/main.go",
      "line": 3,
      "col": 1,
      "message": "lint:ignore errdrop has no reason"
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("JSON schema drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestJSONSuggestedFixes pins the suggested_fixes serialization: fix
// messages and byte-offset edits with root-relative file paths, nested
// under the finding. In-memory fixes keep absolute paths (application
// reads the files); only the serialized form is relativized.
func TestJSONSuggestedFixes(t *testing.T) {
	diags := []Diagnostic{
		{
			Check:    "floateq",
			Severity: SevError,
			Pos:      token.Position{Filename: "/repo/internal/core/core.go", Line: 8, Column: 9},
			Message:  "== on float operands",
			Fixes: []SuggestedFix{{
				Message: "replace exact float comparison with floats helper",
				Edits: []TextEdit{
					{File: "/repo/internal/core/core.go", Start: 120, End: 126, NewText: "floats.Equal(a, b)"},
					{File: "/repo/internal/core/core.go", Start: 40, End: 40, NewText: "\n\"harmonia/internal/floats\""},
				},
			}},
		},
	}
	rep := NewReport("/repo", []string{"floateq"}, diags)
	if got := diags[0].Fixes[0].Edits[0].File; got != "/repo/internal/core/core.go" {
		t.Errorf("NewReport mutated the in-memory fix path: %s", got)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := `{
  "module": "harmonia",
  "checks": [
    "floateq"
  ],
  "errors": 1,
  "warnings": 0,
  "findings": [
    {
      "check": "floateq",
      "severity": "error",
      "file": "internal/core/core.go",
      "line": 8,
      "col": 9,
      "message": "== on float operands",
      "suggested_fixes": [
        {
          "message": "replace exact float comparison with floats helper",
          "edits": [
            {
              "file": "internal/core/core.go",
              "start": 120,
              "end": 126,
              "new_text": "floats.Equal(a, b)"
            },
            {
              "file": "internal/core/core.go",
              "start": 40,
              "end": 40,
              "new_text": "\n\"harmonia/internal/floats\""
            }
          ]
        }
      ]
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("suggested_fixes schema drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestJSONEmptyFindings pins the zero-finding document: findings must
// be an empty array, never null.
func TestJSONEmptyFindings(t *testing.T) {
	rep := NewReport("/repo", []string{"floateq"}, nil)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := `{
  "module": "harmonia",
  "checks": [
    "floateq"
  ],
  "errors": 0,
  "warnings": 0,
  "findings": []
}
`
	if buf.String() != want {
		t.Errorf("empty report drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}
