package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd flags trace spans that are started but not Ended on every
// return path. An un-Ended span exports with Ended=false and a zero end
// time, corrupting duration math in the Chrome exporter and leaking the
// open span into every later snapshot. Spans whose End is delegated to
// a helper are resolved through the call graph: a call `finish(sp)`
// counts as an End when finish (transitively) Ends its span parameter —
// the wrapper indirection an intraprocedural scan cannot see.
//
// The path check is a lexical approximation, deliberately biased
// against false positives:
//
//   - a deferred End (direct or inside a deferred literal) is always
//     clean;
//   - a span with no End anywhere after its start is reported at the
//     start;
//   - a return statement after the start with no End (or ending helper
//     call) lexically between start and return is reported as an
//     un-Ended early-return path;
//   - spans that escape — returned, assigned to a field, or passed to
//     a non-ending call — transfer ownership and are skipped.
//
// Function literals are separate frames: a span started inside a
// closure is judged against the closure's returns, not the enclosing
// function's.
type SpanEnd struct{}

// Name implements Analyzer.
func (*SpanEnd) Name() string { return "spanend" }

// Doc implements Analyzer.
func (*SpanEnd) Doc() string {
	return "require trace spans to be Ended (directly, deferred, or via an ending helper) on every return path"
}

func (*SpanEnd) needsProgram() bool { return true }

// spanStartMethods are the trace.Recorder/Span methods that open spans.
var spanStartMethods = map[string]bool{"Start": true, "StartAmbient": true, "Child": true}

// Run implements Analyzer.
func (a *SpanEnd) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFrame(pass, fd.Body)
		}
	}
}

// inspectFrame walks root without descending into nested function
// literals (each literal is its own frame).
func inspectFrame(root *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == ast.Node(root) {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// spanUse records every interesting event for one span variable.
type spanUse struct {
	obj      types.Object
	name     string
	startPos token.Pos
	deferred bool        // defer sp.End() seen
	endPos   []token.Pos // direct or helper Ends, in source order
	escapes  bool
}

// checkFrame analyzes one function body (declaration or literal),
// recursing into nested literals as independent frames.
func (a *SpanEnd) checkFrame(pass *Pass, body *ast.BlockStmt) {
	// Recurse into nested literal frames first.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			a.checkFrame(pass, lit.Body)
			return false
		}
		return true
	})

	uses := map[types.Object]*spanUse{}
	var order []*spanUse

	// Phase 1: span starts assigned to locals, and dropped starts.
	inspectFrame(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !a.isSpanStart(pass, call) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj == nil || uses[obj] != nil {
					continue
				}
				u := &spanUse{obj: obj, name: id.Name, startPos: call.Pos()}
				uses[obj] = u
				order = append(order, u)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && a.isSpanStart(pass, call) {
				pass.Reportf(call.Pos(), "span started and immediately dropped; it can never be Ended — assign it and End it on every path")
			}
		}
		return true
	})
	if len(order) == 0 {
		return
	}

	// Phase 2: classify every use of each span variable. Nested
	// literals ARE entered here: a closure capturing the span and
	// Ending (or leaking) it acts on this frame's span, and a deferred
	// literal is the standard defer-End shape.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			for _, u := range order {
				if deferEndsSpan(pass, n, u.obj) {
					u.deferred = true
				}
			}
		case *ast.CallExpr:
			// sp.End()
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if u := uses[pass.ObjectOf(id)]; u != nil && sel.Sel.Name == "End" {
						u.endPos = append(u.endPos, n.Pos())
						return true
					}
				}
			}
			// helper(sp): an ending helper counts as End; anything else
			// is an ownership escape — except the trace API's own
			// non-consuming entry points (SetAmbient, NewContext).
			for argIdx, arg := range n.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				u := uses[pass.ObjectOf(id)]
				if u == nil {
					continue
				}
				fn := calleeFunc(pass, n)
				switch {
				case fn != nil && pass.Prog != nil && pass.Prog.EndsSpanParam(fn, argIdx):
					u.endPos = append(u.endPos, n.Pos())
				case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == tracePkg &&
					(fn.Name() == "SetAmbient" || fn.Name() == "NewContext"):
					// Ambient installation and context attachment do not
					// take ownership; the local variable still Ends it.
				default:
					u.escapes = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if u := uses[pass.ObjectOf(id)]; u != nil {
							u.escapes = true
						}
					}
					return true
				})
			}
		case *ast.AssignStmt:
			// Assignment through a non-ident lvalue (field, index, or
			// deref) stores the span beyond the frame: escapes.
			escape := false
			for _, lhs := range n.Lhs {
				if _, isIdent := lhs.(*ast.Ident); !isIdent {
					escape = true
				}
			}
			if escape {
				for _, rhs := range n.Rhs {
					ast.Inspect(rhs, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if u := uses[pass.ObjectOf(id)]; u != nil {
								u.escapes = true
							}
						}
						return true
					})
				}
			}
		}
		return true
	})

	// Phase 3: judge each span against this frame's returns.
	var returns []token.Pos
	inspectFrame(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
		return true
	})

	for _, u := range order {
		if u.deferred || u.escapes {
			continue
		}
		if len(u.endPos) == 0 {
			pass.Reportf(u.startPos, "span %s is started but never Ended; End it on every return path or defer %s.End()", u.name, u.name)
			continue
		}
		for _, ret := range returns {
			if ret <= u.startPos {
				continue
			}
			ended := false
			for _, ep := range u.endPos {
				if ep > u.startPos && ep < ret {
					ended = true
					break
				}
			}
			if !ended {
				pass.Reportf(ret, "return path leaves span %s un-Ended (started at line %d); End it before returning or defer %s.End()",
					u.name, pass.Pkg.Fset.Position(u.startPos).Line, u.name)
				break // one finding per span
			}
		}
	}
}

// isSpanStart reports whether call opens a trace span: a method named
// Start/StartAmbient/Child on a trace.Recorder or trace.Span returning
// *trace.Span.
func (a *SpanEnd) isSpanStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !spanStartMethods[sel.Sel.Name] {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != tracePkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isSpanType(sig.Results().At(0).Type())
}

// deferEndsSpan reports whether d defers an End of the span object —
// `defer sp.End()` or `defer func() { ...; sp.End(); ... }()`.
func deferEndsSpan(pass *Pass, d *ast.DeferStmt, obj types.Object) bool {
	if sel, ok := ast.Unparen(d.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			return true
		}
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
