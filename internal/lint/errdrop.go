package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error returns from module APIs: a call used
// as a bare statement whose harmonia/internal callee returns an error,
// or an error result explicitly assigned to the blank identifier.
// Predict, the registry operations, and the export writers all signal
// real failures through their error; dropping it turns a detectable
// fault into silent corruption. Deliberate drops must carry a
// //lint:ignore errdrop <reason> directive.
type ErrDrop struct{}

// Name implements Analyzer.
func (*ErrDrop) Name() string { return "errdrop" }

// Doc implements Analyzer.
func (*ErrDrop) Doc() string {
	return "flag discarded error returns from harmonia module APIs"
}

// Run implements Analyzer.
func (a *ErrDrop) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					a.checkBareCall(pass, call)
				}
			case *ast.AssignStmt:
				a.checkBlankAssign(pass, n)
			}
			return true
		})
	}
}

// moduleCallErrors returns the callee's rendered name and the indices
// of its error results when the call targets a module function.
func moduleCallErrors(pass *Pass, call *ast.CallExpr) (name string, errIdx []int) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil
	}
	path := fn.Pkg().Path()
	if path != ModulePath && !strings.HasPrefix(path, ModulePath+"/") {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return "", nil
	}
	return shortPkg(path) + "." + fn.Name(), errIdx
}

func (a *ErrDrop) checkBareCall(pass *Pass, call *ast.CallExpr) {
	name, errIdx := moduleCallErrors(pass, call)
	if len(errIdx) == 0 {
		return
	}
	msg := "error from %s discarded; handle it or annotate with lint:ignore errdrop <reason>"
	if fix, ok := a.handleStubFix(pass, call, name, errIdx); ok {
		pass.ReportFixf(call.Pos(), fix, msg, name)
		return
	}
	pass.Reportf(call.Pos(), msg, name)
}

// handleStubFix rewrites a bare statement call into an explicit
// error-handling stub:
//
//	pkg.Fn(args)   →   if err := pkg.Fn(args); err != nil {
//	                       // TODO(harmonia-lint): handle this error explicitly.
//	                   }
//
// Non-error results are discarded with blanks. Only offered for a call
// with exactly one error result; the stub compiles, is gofmt-clean, and
// re-linting the fixed tree reports nothing (the error is no longer
// discarded).
func (a *ErrDrop) handleStubFix(pass *Pass, call *ast.CallExpr, name string, errIdx []int) (SuggestedFix, bool) {
	if len(errIdx) != 1 {
		return SuggestedFix{}, false
	}
	fn := calleeFunc(pass, call)
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return SuggestedFix{}, false
	}
	lhs := make([]string, sig.Results().Len())
	for i := range lhs {
		lhs[i] = "_"
	}
	lhs[errIdx[0]] = "err"
	repl := "if " + strings.Join(lhs, ", ") + " := " + pass.srcText(call.Pos(), call.End()) +
		"; err != nil {\n// TODO(harmonia-lint): handle this error from " + name + " explicitly.\n}"
	return SuggestedFix{
		Message: "wrap the call in an explicit error-handling stub",
		Edits:   []TextEdit{pass.edit(call.Pos(), call.End(), repl)},
	}, true
}

// checkBlankAssign flags `_`-assigned error results of module calls,
// both `_ = f()` and the blank positions of `v, _ := g()`.
func (a *ErrDrop) checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple form: v, _ := g()
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		name, errIdx := moduleCallErrors(pass, call)
		for _, i := range errIdx {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(), "error from %s assigned to _; handle it or annotate with lint:ignore errdrop <reason>", name)
			}
		}
		return
	}
	for i := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if name, errIdx := moduleCallErrors(pass, call); len(errIdx) > 0 && isErrorType(pass.TypeOf(as.Rhs[i])) {
			pass.Reportf(as.Lhs[i].Pos(), "error from %s assigned to _; handle it or annotate with lint:ignore errdrop <reason>", name)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
