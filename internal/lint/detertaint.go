package lint

import (
	"go/ast"
	"go/types"
)

// DeterTaint is the interprocedural companion to Nondeterminism: it
// flags calls, inside the deterministic packages, whose callee
// transitively reaches a wall-clock read or an unseeded math/rand draw
// through any wrapper depth. The intraprocedural check only sees
// time.Now spelled in the current function body; a helper that wraps it
// one package away sails through. This check walks the module call
// graph instead, and prints the offending call path in the diagnostic
// so the violation is actionable without re-deriving the chain by hand.
//
// Sanctioned sinks do not taint: functions in the policy's exempt
// packages (serve, telemetry, faults, resilience under the default
// policy) are barriers, and direct seeds carrying a //lint:ignore
// nondeterminism (or detertaint) directive — the trace package's
// injectable wall-clock default — are not seeds at all.
//
// A callee living inside the deterministic scope itself is not
// re-reported at every caller: the violation is reported where the
// taint enters the scope (the callee's own body fails nondeterminism or
// this check), so each root cause surfaces exactly once.
type DeterTaint struct{}

// Name implements Analyzer.
func (*DeterTaint) Name() string { return "detertaint" }

// Doc implements Analyzer.
func (*DeterTaint) Doc() string {
	return "forbid calls in deterministic packages that transitively reach wall-clock/unseeded-rand through any wrapper depth"
}

func (*DeterTaint) needsProgram() bool { return true }

// Run implements Analyzer.
func (a *DeterTaint) Run(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	scope := pass.Scope
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := prog.Nodes[funcObj(pass, fd)]
			if node == nil {
				continue
			}
			seen := map[string]bool{}
			for _, edge := range node.Calls {
				callee := edge.Callee
				// Report where the taint crosses into the deterministic
				// scope: callees already inside the scope carry their
				// own findings.
				if scope.Applies(callee.Pkg.Path) {
					continue
				}
				if callee.barrier {
					continue
				}
				for _, bit := range []Effect{EffWallClock, EffUnseededRand} {
					if callee.Trans&bit == 0 {
						continue
					}
					key := pass.Pkg.Fset.Position(edge.Pos).String() + callee.Name()
					if seen[key] {
						continue
					}
					seen[key] = true
					pass.Reportf(edge.Pos,
						"call to %s transitively reaches a %s: %s; deterministic packages must take time/randomness as inputs",
						callee.Name(), effectDesc[bit], prog.TaintPath(callee, bit, pass.Root))
				}
			}
		}
	}
}

// funcObj resolves a declaration to its function object.
func funcObj(pass *Pass, fd *ast.FuncDecl) *types.Func {
	if pass.Pkg.Info == nil {
		return nil
	}
	fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}
