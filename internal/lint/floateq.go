package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != on floating-point operands. Exact float
// comparison is how the sweep.Min NaN bug class enters: NaN compares
// false against everything, so a poisoned value silently falls through
// equality-guarded paths. Intentional exact comparisons belong in the
// approved helpers (internal/floats, which the default policy exempts)
// or in a function named in AllowFuncs.
type FloatEq struct {
	// AllowFuncs names enclosing functions permitted to compare floats
	// exactly, as "pkgpath.Func" or "pkgpath.Recv.Method".
	AllowFuncs map[string]bool
}

// NewFloatEq returns the analyzer with the default allowlist: the
// approved comparison helpers in internal/floats (also policy-exempt;
// the entries document the mechanism and keep a custom policy safe).
func NewFloatEq() *FloatEq {
	return &FloatEq{AllowFuncs: map[string]bool{
		"harmonia/internal/floats.Equal":  true,
		"harmonia/internal/floats.Zero":   true,
		"harmonia/internal/floats.Within": true,
	}}
}

// Name implements Analyzer.
func (*FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (*FloatEq) Doc() string {
	return "forbid ==/!= on float operands outside approved helpers (NaN compares false against everything)"
}

// Run implements Analyzer.
func (a *FloatEq) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if a.AllowFuncs[funcFullName(pass.Pkg.Path, fn)] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.TypeOf(bin.X)) || isFloat(pass.TypeOf(bin.Y)) {
					msg := "%s on float operands; NaN breaks exact comparison — use internal/floats helpers or an epsilon"
					if fix, ok := a.suggestFix(pass, f, bin); ok {
						pass.ReportFixf(bin.Pos(), fix, msg, bin.Op)
					} else {
						pass.Reportf(bin.Pos(), msg, bin.Op)
					}
				}
				return true
			})
		}
	}
}

// floatsPkg holds the approved comparison helpers the fixes target.
const floatsPkg = "harmonia/internal/floats"

// suggestFix rewrites `a == b` to floats.Equal(a, b), `a != b` to
// !floats.Equal(a, b), and the zero-literal forms to floats.Zero. Fixes
// are attached only when both operands fit the helpers' float64
// signatures, so applying an edit can never break the build.
func (a *FloatEq) suggestFix(pass *Pass, f *ast.File, bin *ast.BinaryExpr) (SuggestedFix, bool) {
	if pass.Pkg.Path == floatsPkg {
		return SuggestedFix{}, false // the helpers define the comparisons
	}
	if !float64Compatible(pass, bin.X) || !float64Compatible(pass, bin.Y) {
		return SuggestedFix{}, false
	}
	impEdit, local, needsImport := pass.importEdit(f, floatsPkg)

	neg := ""
	if bin.Op == token.NEQ {
		neg = "!"
	}
	var repl string
	switch {
	case isZeroLiteral(bin.Y):
		repl = neg + local + ".Zero(" + pass.srcText(bin.X.Pos(), bin.X.End()) + ")"
	case isZeroLiteral(bin.X):
		repl = neg + local + ".Zero(" + pass.srcText(bin.Y.Pos(), bin.Y.End()) + ")"
	default:
		repl = neg + local + ".Equal(" + pass.srcText(bin.X.Pos(), bin.X.End()) + ", " + pass.srcText(bin.Y.Pos(), bin.Y.End()) + ")"
	}
	fix := SuggestedFix{
		Message: "replace exact float comparison with " + local + " helper",
		Edits:   []TextEdit{pass.edit(bin.Pos(), bin.End(), repl)},
	}
	if needsImport {
		fix.Edits = append(fix.Edits, impEdit)
	}
	return fix, true
}

// float64Compatible reports whether e can be passed to a float64
// parameter verbatim: typed float64, or an untyped constant.
func float64Compatible(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	if b.Kind() == types.Float64 {
		return true
	}
	// Untyped constants adapt to the helper's parameter type.
	if pass.Pkg.Info != nil {
		if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
			return b.Info()&(types.IsUntyped|types.IsNumeric) == types.IsUntyped|types.IsNumeric ||
				b.Kind() == types.Float64
		}
	}
	return false
}

// isZeroLiteral reports whether e is the literal 0 or 0.0 (possibly
// parenthesized).
func isZeroLiteral(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || (bl.Kind != token.INT && bl.Kind != token.FLOAT) {
		return false
	}
	switch bl.Value {
	case "0", "0.0", "0.":
		return true
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
