package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq forbids == and != on floating-point operands. Exact float
// comparison is how the sweep.Min NaN bug class enters: NaN compares
// false against everything, so a poisoned value silently falls through
// equality-guarded paths. Intentional exact comparisons belong in the
// approved helpers (internal/floats, which the default policy exempts)
// or in a function named in AllowFuncs.
type FloatEq struct {
	// AllowFuncs names enclosing functions permitted to compare floats
	// exactly, as "pkgpath.Func" or "pkgpath.Recv.Method".
	AllowFuncs map[string]bool
}

// NewFloatEq returns the analyzer with the default allowlist: the
// approved comparison helpers in internal/floats (also policy-exempt;
// the entries document the mechanism and keep a custom policy safe).
func NewFloatEq() *FloatEq {
	return &FloatEq{AllowFuncs: map[string]bool{
		"harmonia/internal/floats.Equal":  true,
		"harmonia/internal/floats.Zero":   true,
		"harmonia/internal/floats.Within": true,
	}}
}

// Name implements Analyzer.
func (*FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (*FloatEq) Doc() string {
	return "forbid ==/!= on float operands outside approved helpers (NaN compares false against everything)"
}

// Run implements Analyzer.
func (a *FloatEq) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if a.AllowFuncs[funcFullName(pass.Pkg.Path, fn)] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.TypeOf(bin.X)) || isFloat(pass.TypeOf(bin.Y)) {
					pass.Reportf(bin.Pos(), "%s on float operands; NaN breaks exact comparison — use internal/floats helpers or an epsilon", bin.Op)
				}
				return true
			})
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
