package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The suggested-fix layer: analyzers attach machine-applicable textual
// edits to diagnostics, cmd/harmonia-lint applies them (-fix) or prints
// them as a unified diff (-diff), and the -json schema carries them in
// a suggested_fixes field. Fixes are byte-offset edits resolved at
// report time, so application needs no re-analysis; applied files are
// passed through gofmt, making -fix output formatting-clean and
// idempotent (a fixed tree produces no further fixable findings).

// TextEdit replaces the byte range [Start, End) of File with NewText.
// Offsets are resolved from the analysis FileSet when the diagnostic is
// reported; File is absolute internally and relativized in JSON.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// SuggestedFix is one self-contained alternative: applying all its
// edits resolves the finding.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// edit builds a TextEdit replacing the source range [pos, end) with
// newText, resolving byte offsets from the analysis FileSet.
func (p *Pass) edit(pos, end token.Pos, newText string) TextEdit {
	start := p.Pkg.Fset.Position(pos)
	stop := p.Pkg.Fset.Position(end)
	return TextEdit{File: start.Filename, Start: start.Offset, End: stop.Offset, NewText: newText}
}

// ReportFixf records a finding carrying one suggested fix.
func (p *Pass) ReportFixf(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.check,
		Severity: SevError,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// importEdit returns the edit that adds path to f's imports (empty edit
// with ok=false when the file already imports it), plus the local name
// the import is reachable under.
func (p *Pass) importEdit(f *ast.File, path string) (TextEdit, string, bool) {
	if name, ok := localImportName(f, path); ok {
		return TextEdit{}, name, false
	}
	base := path[strings.LastIndex(path, "/")+1:]
	// Insert after the last existing import spec, or after the package
	// clause when the file has no imports.
	for i := len(f.Decls) - 1; i >= 0; i-- {
		gd, ok := f.Decls[i].(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || len(gd.Specs) == 0 {
			continue
		}
		if !gd.Lparen.IsValid() {
			// Unparenthesized `import "x"`: a bare spec after it would not
			// parse, so append a sibling import declaration instead.
			return p.edit(gd.End(), gd.End(), "\nimport \""+path+"\""), base, true
		}
		last := gd.Specs[len(gd.Specs)-1]
		return p.edit(last.End(), last.End(), "\n\""+path+"\""), base, true
	}
	return p.edit(f.Name.End(), f.Name.End(), "\n\nimport \""+path+"\""), base, true
}

// srcText returns the source text of the node range, read back from the
// file bytes (the loader parses from disk, so offsets are exact).
func (p *Pass) srcText(pos, end token.Pos) string {
	start := p.Pkg.Fset.Position(pos)
	stop := p.Pkg.Fset.Position(end)
	data, err := os.ReadFile(start.Filename)
	if err != nil || stop.Offset > len(data) || start.Offset > stop.Offset {
		return ""
	}
	return string(data[start.Offset:stop.Offset])
}

// FixResult is the outcome of applying suggested fixes to a tree.
type FixResult struct {
	// Files maps absolute paths to their post-fix, gofmt-clean content.
	Files map[string][]byte
	// Originals holds the pre-fix content of each touched file.
	Originals map[string][]byte
	// Applied counts fixes applied; Skipped counts fixes dropped
	// because their edits overlapped an earlier fix.
	Applied, Skipped int
}

// ApplyFixes computes the result of applying every suggested fix
// carried by diags. Conflicting fixes (overlapping edits in one file)
// are applied first-come by diagnostic order; later overlapping fixes
// are skipped and counted. Nothing is written to disk — the caller
// decides between writing (-fix) and diffing (-diff).
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	res := &FixResult{Files: map[string][]byte{}, Originals: map[string][]byte{}}
	type span struct{ start, end int }
	type insertion struct {
		file string
		off  int
		text string
	}
	taken := map[string][]span{}
	inserted := map[insertion]bool{}
	edits := map[string][]TextEdit{}

	overlaps := func(file string, s span) bool {
		for _, t := range taken[file] {
			if s.start < t.end && t.start < s.end {
				// Zero-width inserts at the same offset conflict too —
				// two fixes adding different imports at one point would
				// need ordering this layer does not define.
				return true
			}
			if s.start == t.start && s.end == t.end {
				return true
			}
		}
		return false
	}

	for _, d := range diags {
		for _, fix := range d.Fixes {
			conflict := false
			var apply []TextEdit
			for _, e := range fix.Edits {
				// An insertion identical to one already taken (two fixes in
				// one file both adding the same import) is satisfied by the
				// first occurrence: drop the edit, keep the fix.
				if e.Start == e.End && inserted[insertion{e.File, e.Start, e.NewText}] {
					continue
				}
				s := span{e.Start, e.End}
				if s.start == s.end { // insertion: widen so overlaps collide
					s.end++
				}
				if overlaps(e.File, s) {
					conflict = true
					break
				}
				apply = append(apply, e)
			}
			if conflict {
				res.Skipped++
				continue
			}
			for _, e := range apply {
				s := span{e.Start, e.End}
				if s.start == s.end {
					s.end++
					inserted[insertion{e.File, e.Start, e.NewText}] = true
				}
				taken[e.File] = append(taken[e.File], s)
				edits[e.File] = append(edits[e.File], e)
			}
			res.Applied++
			break // one fix per diagnostic
		}
	}

	for file, es := range edits {
		orig, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("applying fixes: %w", err)
		}
		res.Originals[file] = orig
		sort.Slice(es, func(i, j int) bool { return es[i].Start > es[j].Start })
		out := append([]byte(nil), orig...)
		for _, e := range es {
			if e.Start < 0 || e.End > len(out) || e.Start > e.End {
				return nil, fmt.Errorf("edit out of range in %s: [%d,%d) of %d bytes", file, e.Start, e.End, len(out))
			}
			out = append(out[:e.Start], append([]byte(e.NewText), out[e.End:]...)...)
		}
		formatted, err := format.Source(out)
		if err != nil {
			// A fix that breaks parsing is a bug; surface it rather than
			// writing a broken file.
			return nil, fmt.Errorf("fix output for %s does not parse: %w", file, err)
		}
		res.Files[file] = formatted
	}
	return res, nil
}

// WriteFiles writes every fixed file back to disk.
func (r *FixResult) WriteFiles() error {
	files := make([]string, 0, len(r.Files))
	for f := range r.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		info, err := os.Stat(f)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode()
		}
		if err := os.WriteFile(f, r.Files[f], mode); err != nil {
			return err
		}
	}
	return nil
}

// Diff renders the pending changes as a unified diff with root-relative
// paths, files in sorted order.
func (r *FixResult) Diff(root string) string {
	files := make([]string, 0, len(r.Files))
	for f := range r.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	var buf bytes.Buffer
	for _, f := range files {
		rel := f
		if rr, err := filepath.Rel(root, f); err == nil && !strings.HasPrefix(rr, "..") {
			rel = filepath.ToSlash(rr)
		}
		fmt.Fprintf(&buf, "--- a/%s\n+++ b/%s\n", rel, rel)
		buf.WriteString(unifiedDiff(string(r.Originals[f]), string(r.Files[f])))
	}
	return buf.String()
}

// unifiedDiff computes hunks via a line-level LCS; the inputs are
// source files small enough that the quadratic table is irrelevant.
func unifiedDiff(a, b string) string {
	al := splitLines(a)
	bl := splitLines(b)
	// LCS table.
	n, m := len(al), len(bl)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	type op struct {
		kind byte // ' ', '-', '+'
		text string
		ai   int
		bi   int
	}
	var ops []op
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case al[i] == bl[j]:
			ops = append(ops, op{' ', al[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, op{'-', al[i], i, j})
			i++
		default:
			ops = append(ops, op{'+', bl[j], i, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, op{'-', al[i], i, j})
	}
	for ; j < m; j++ {
		ops = append(ops, op{'+', bl[j], i, j})
	}

	const ctx = 3
	var buf bytes.Buffer
	k := 0
	for k < len(ops) {
		if ops[k].kind == ' ' {
			k++
			continue
		}
		// Hunk around the change run starting at k.
		start := k - ctx
		if start < 0 {
			start = 0
		}
		end := k
		gap := 0
		for end < len(ops) && gap <= 2*ctx {
			if ops[end].kind == ' ' {
				gap++
			} else {
				gap = 0
			}
			end++
		}
		// Trim trailing context beyond ctx lines.
		trail := 0
		for end > k && ops[end-1].kind == ' ' && trail < gap-ctx {
			end--
			trail++
		}
		aStart, bStart := ops[start].ai+1, ops[start].bi+1
		var aCount, bCount int
		for _, o := range ops[start:end] {
			if o.kind != '+' {
				aCount++
			}
			if o.kind != '-' {
				bCount++
			}
		}
		fmt.Fprintf(&buf, "@@ -%d,%d +%d,%d @@\n", aStart, aCount, bStart, bCount)
		for _, o := range ops[start:end] {
			buf.WriteByte(o.kind)
			buf.WriteString(o.text)
			buf.WriteByte('\n')
		}
		k = end
	}
	return buf.String()
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// FixableChecks names the analyzers that attach suggested fixes; the
// scripts/check.sh lint-fix-check gate asserts a fixed tree is clean
// for exactly this set.
func FixableChecks() []string { return []string{"floateq", "hwenvelope", "errdrop"} }
