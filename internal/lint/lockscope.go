package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockScope reports a sync.Mutex or sync.RWMutex held across a call
// into the simulation fan-out layers (gpusim, sweep, batch). Those
// calls can run for an entire ~448-point sweep — exactly the shape of
// the oracle decision-cache bug fixed in PR 3, where a lock held across
// sweep.Min serialized every concurrent session behind one search. The
// pattern is approximated lexically within each function: a Lock/RLock
// opens a held region that a matching Unlock/RUnlock on the same
// receiver closes, a deferred unlock holds to function end, and nested
// function literals are not entered (work scheduled for later execution
// is out of scope).
type LockScope struct{}

// lockScopeTargets are the packages a held lock must not call into.
var lockScopeTargets = []string{
	"harmonia/internal/gpusim",
	"harmonia/internal/sweep",
	"harmonia/internal/batch",
}

// Name implements Analyzer.
func (*LockScope) Name() string { return "lockscope" }

// Doc implements Analyzer.
func (*LockScope) Doc() string {
	return "forbid holding a mutex across calls into gpusim/sweep/batch (sweep-length critical sections)"
}

// Run implements Analyzer.
func (a *LockScope) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			a.checkFunc(pass, f, fn)
		}
	}
}

type lockEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 deferred unlock, 3 target call
	key  string
	desc string
}

func (a *LockScope) checkFunc(pass *Pass, file *ast.File, fn *ast.FuncDecl) {
	var events []lockEvent
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs later, not under this frame's locks
			case *ast.DeferStmt:
				// defer recv.Unlock() and defer func(){ recv.Unlock() }()
				for _, key := range deferredUnlockKeys(pass, n) {
					events = append(events, lockEvent{pos: n.Pos(), kind: 2, key: key})
				}
				// Target calls inside the deferred call's arguments still
				// execute now; the call itself runs at return, outside the
				// lexical region — skip descending.
				return false
			case *ast.CallExpr:
				if key, kind, ok := mutexOp(pass, n); ok {
					events = append(events, lockEvent{pos: n.Pos(), kind: kind, key: key})
					return true
				}
				if pkg, desc, ok := targetCall(pass, file, n); ok {
					events = append(events, lockEvent{pos: n.Pos(), kind: 3, key: pkg, desc: desc})
				}
			}
			return true
		})
	}
	walk(fn.Body)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := make(map[string]bool)
	for _, ev := range events {
		switch ev.kind {
		case 0, 2:
			held[ev.key] = true
		case 1:
			delete(held, ev.key)
		case 3:
			if len(held) == 0 {
				continue
			}
			keys := make([]string, 0, len(held))
			for k := range held {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pass.Reportf(ev.pos, "%s called into %s while %s is held; release the lock around sweep-length work",
				ev.desc, shortPkg(ev.key), strings.Join(keys, ", "))
		}
	}
}

// mutexOp classifies recv.Lock/RLock/Unlock/RUnlock calls, returning
// the receiver's stable key and the event kind.
func mutexOp(pass *Pass, call *ast.CallExpr) (key string, kind int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 0
	case "Unlock", "RUnlock":
		kind = 1
	default:
		return "", 0, false
	}
	if !isMutexExpr(pass, sel.X) {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// isMutexExpr reports whether e is (a pointer to) sync.Mutex/RWMutex.
// Without type information it falls back to a receiver-name heuristic.
func isMutexExpr(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		pkgPath, name, ok := namedFrom(t)
		return ok && pkgPath == "sync" && (name == "Mutex" || name == "RWMutex")
	}
	s := types.ExprString(e)
	if i := strings.LastIndex(s, "."); i >= 0 {
		s = s[i+1:]
	}
	ls := strings.ToLower(s)
	return strings.Contains(ls, "mu") || strings.Contains(ls, "lock")
}

// deferredUnlockKeys extracts the mutex keys a defer statement releases,
// covering both `defer mu.Unlock()` and `defer func(){ mu.Unlock() }()`.
func deferredUnlockKeys(pass *Pass, d *ast.DeferStmt) []string {
	if key, kind, ok := mutexOp(pass, d.Call); ok && kind == 1 {
		return []string{key}
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, kind, ok := mutexOp(pass, call); ok && kind == 1 {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// targetCall reports whether the call enters one of the fan-out
// packages, either as a qualified call (sweep.Min) or as a method on a
// value whose type is declared there (a gpusim.Runner's Run).
func targetCall(pass *Pass, file *ast.File, call *ast.CallExpr) (pkg, desc string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if obj := pass.ObjectOf(id); obj != nil {
			if pn, isPkg := obj.(*types.PkgName); isPkg {
				p := pn.Imported().Path()
				if matchAny(p, lockScopeTargets) {
					return p, shortPkg(p) + "." + sel.Sel.Name, true
				}
				return "", "", false
			}
		} else {
			// Unresolved: fall back to the file's import names.
			for _, target := range lockScopeTargets {
				if name, imported := localImportName(file, target); imported && name == id.Name {
					return target, shortPkg(target) + "." + sel.Sel.Name, true
				}
			}
		}
	}
	if pkgPath, name, named := namedFrom(pass.TypeOf(sel.X)); named && matchAny(pkgPath, lockScopeTargets) {
		return pkgPath, name + "." + sel.Sel.Name, true
	}
	return "", "", false
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
