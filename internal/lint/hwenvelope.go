package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// HWEnvelope keeps the paper's hardware envelope — 8 CU counts × 8
// compute frequencies × 7 memory frequencies, 448 configurations — in
// exactly one place: internal/hw. Outside that package, hardware
// operating points must be built from the hw constants, the enumerators
// (ConfigSpace, CUFreqs, ...), or the clamping constructors
// (hw.NewConfig and friends); a raw integer literal stuffed into a
// Config field or converted to hw.MHz silently escapes the envelope and
// bypasses grid validation.
type HWEnvelope struct{}

// hwPkg is the single source of truth for the tunable ranges.
const hwPkg = "harmonia/internal/hw"

// hwConfigTypes are the envelope types whose literal construction is
// restricted, with the fields that carry tunable values.
var hwConfigTypes = map[string]map[string]bool{
	"Config":        {},
	"ComputeConfig": {"CUs": true, "Freq": true},
	"MemConfig":     {"BusFreq": true},
}

// Name implements Analyzer.
func (*HWEnvelope) Name() string { return "hwenvelope" }

// Doc implements Analyzer.
func (*HWEnvelope) Doc() string {
	return "forbid raw frequency/CU-count literals outside internal/hw; construct configs via hw constants or clamping constructors"
}

// Run implements Analyzer.
func (a *HWEnvelope) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				a.checkComposite(pass, n)
			case *ast.CallExpr:
				a.checkConversion(pass, n)
			case *ast.AssignStmt:
				a.checkAssign(pass, n)
			}
			return true
		})
	}
}

// checkComposite flags integer literals assigned to tunable fields of
// hw.Config / hw.ComputeConfig / hw.MemConfig composite literals.
func (a *HWEnvelope) checkComposite(pass *Pass, lit *ast.CompositeLit) {
	pkgPath, name, ok := namedFrom(pass.TypeOf(lit))
	if !ok || pkgPath != hwPkg {
		return
	}
	fields, isEnvelope := hwConfigTypes[name]
	if !isEnvelope {
		return
	}
	// When the literal can be rewritten as a clamping-constructor call
	// outright, the first flagged field carries the whole-literal fix.
	fix, fixable := a.constructorFix(pass, lit, name)
	reported := false
	report := func(pos token.Pos, format string, args ...any) {
		if fixable && !reported {
			reported = true
			pass.ReportFixf(pos, fix, format, args...)
			return
		}
		pass.Reportf(pos, format, args...)
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			// Positional form: any literal element is a raw tunable.
			if bl := intLiteral(elt); bl != nil {
				report(bl.Pos(), "raw hardware literal %s in hw.%s; use hw constants or hw.NewConfig/NewComputeConfig/NewMemConfig", bl.Value, name)
			}
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !fields[key.Name] {
			continue
		}
		if bl := intLiteral(kv.Value); bl != nil {
			report(bl.Pos(), "raw hardware literal %s for hw.%s.%s; use hw constants or hw.NewConfig/NewComputeConfig/NewMemConfig", bl.Value, name, key.Name)
		}
	}
}

// hwConstructorArgs maps each envelope type to its clamping
// constructor's parameter order.
var hwConstructorArgs = map[string]struct {
	ctor   string
	params []string
}{
	"ComputeConfig": {"NewComputeConfig", []string{"CUs", "Freq"}},
	"MemConfig":     {"NewMemConfig", []string{"BusFreq"}},
}

// constructorFix rewrites a fully-literal envelope composite into the
// matching clamping-constructor call — hw.ComputeConfig{CUs: 10, Freq:
// 500} becomes hw.NewComputeConfig(10, 500). Only offered when every
// constructor parameter is supplied as a literal (keyed in any order, or
// exactly positional), so the rewrite never changes which fields are
// set.
func (a *HWEnvelope) constructorFix(pass *Pass, lit *ast.CompositeLit, name string) (SuggestedFix, bool) {
	ctor, ok := hwConstructorArgs[name]
	if !ok {
		return SuggestedFix{}, false
	}
	// The literal must be written with a qualified type (hw.X) so the
	// constructor is reachable under the same qualifier.
	sel, ok := ast.Unparen(lit.Type).(*ast.SelectorExpr)
	if !ok {
		return SuggestedFix{}, false
	}
	qual, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return SuggestedFix{}, false
	}
	vals := map[string]string{}
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					return SuggestedFix{}, false
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || intLiteral(kv.Value) == nil {
					return SuggestedFix{}, false
				}
				vals[key.Name] = pass.srcText(kv.Value.Pos(), kv.Value.End())
			}
		} else {
			if len(lit.Elts) != len(ctor.params) {
				return SuggestedFix{}, false
			}
			for i, elt := range lit.Elts {
				if intLiteral(elt) == nil {
					return SuggestedFix{}, false
				}
				vals[ctor.params[i]] = pass.srcText(elt.Pos(), elt.End())
			}
		}
	}
	args := make([]string, len(ctor.params))
	for i, p := range ctor.params {
		v, ok := vals[p]
		if !ok {
			return SuggestedFix{}, false
		}
		args[i] = v
	}
	if len(vals) != len(ctor.params) {
		return SuggestedFix{}, false
	}
	repl := qual.Name + "." + ctor.ctor + "(" + strings.Join(args, ", ") + ")"
	return SuggestedFix{
		Message: "construct through the clamping constructor " + qual.Name + "." + ctor.ctor,
		Edits:   []TextEdit{pass.edit(lit.Pos(), lit.End(), repl)},
	}, true
}

// checkConversion flags hw.MHz(<literal>): a frequency conjured from a
// bare number rather than the named grid constants.
func (a *HWEnvelope) checkConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	bl := intLiteral(call.Args[0])
	if bl == nil {
		return
	}
	if pass.Pkg.Info == nil {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if pkgPath, name, ok := namedFrom(tv.Type); ok && pkgPath == hwPkg && name == "MHz" {
		pass.Reportf(call.Pos(), "raw frequency literal hw.MHz(%s); use the hw grid constants or a clamping constructor", bl.Value)
	}
}

// checkAssign flags `cfg.Compute.Freq = 700`-style writes of literals
// into envelope fields.
func (a *HWEnvelope) checkAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		bl := intLiteral(as.Rhs[i])
		if bl == nil {
			continue
		}
		pkgPath, name, ok := namedFrom(pass.TypeOf(sel.X))
		if !ok || pkgPath != hwPkg {
			continue
		}
		if fields, isEnvelope := hwConfigTypes[name]; isEnvelope && fields[sel.Sel.Name] {
			pass.Reportf(as.Pos(), "raw hardware literal %s assigned to hw.%s.%s; use hw constants or a clamping constructor", bl.Value, name, sel.Sel.Name)
		}
	}
}

// intLiteral unwraps parens and unary +/- and returns the integer
// BasicLit, or nil.
func intLiteral(e ast.Expr) *ast.BasicLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.INT {
		return nil
	}
	return bl
}
