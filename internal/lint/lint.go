// Package lint is harmonia's domain-specific static-analysis framework.
// The repo's load-bearing guarantees — bit-identical memoized runs,
// order-identical parallel fan-out, and the paper's exact 448-point
// tunable space — are invariants that ordinary tests only catch after a
// violation ships. This package makes them machine-checked at review
// time: a stdlib-only (go/parser, go/ast, go/token, go/types) analysis
// pass with a common Analyzer interface, per-package policy scoping,
// position-accurate diagnostics, and //lint:ignore suppression, exposed
// through cmd/harmonia-lint.
//
// Ten domain analyzers ship with the framework. Six are
// intraprocedural (one function body at a time):
//
//   - nondeterminism: wall-clock reads, unseeded math/rand, and
//     output-reaching map iteration inside the deterministic packages
//   - hwenvelope: raw frequency/CU-count literals outside internal/hw
//   - lockscope: mutexes held across calls into gpusim/sweep/batch
//   - floateq: ==/!= on floating-point operands outside approved helpers
//   - errdrop: discarded error returns from module APIs
//   - workerbudget: raw runtime.GOMAXPROCS/NumCPU widths in the workers
//     argument of batch/sweep fan-out calls
//
// Four run over the module-wide call graph (callgraph.go) with
// per-function effect summaries propagated to a fixed point, so they see
// through any wrapper depth:
//
//   - detertaint: calls in deterministic packages that transitively
//     reach wall-clock/unseeded-rand, offending path printed
//   - ctxflow: context.Background outside main, ctx struct fields, and
//     fan-out loops that never consult ctx
//   - spawnjoin: goroutines with no join or cancellation edge
//   - spanend: trace spans started but not Ended on every return path
//
// Analyzers may attach machine-applicable suggested fixes (fix.go);
// cmd/harmonia-lint applies them with -fix or previews with -diff.
//
// See DESIGN.md §10 for each analyzer's invariant and rationale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Severity classifies a diagnostic. Errors are invariant violations and
// fail the build; warnings (malformed suppression directives) fail only
// under -werror.
type Severity string

const (
	// SevError marks a finding that violates an enforced invariant.
	SevError Severity = "error"
	// SevWarn marks a hygiene finding (e.g. an ignore directive with no
	// reason) promoted to failing only under -werror.
	SevWarn Severity = "warn"
)

// Diagnostic is one position-accurate finding.
type Diagnostic struct {
	Check    string
	Severity Severity
	Pos      token.Position // absolute file path
	Message  string
	// Fixes holds machine-applicable alternatives; applying all edits of
	// any one fix resolves the finding.
	Fixes []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named static check over a single package.
type Analyzer interface {
	// Name is the check identifier used in -checks, policy scopes, and
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// Run inspects pass.Pkg and reports findings through the pass.
	Run(pass *Pass)
}

// Pass carries one (analyzer, package) execution.
type Pass struct {
	Pkg    *Package
	check  string
	report func(Diagnostic)

	// Prog is the module-wide call graph, built once per Run and shared
	// by every analyzer that declares needsProgram(); nil otherwise.
	Prog *Program
	// Scope is the policy scope of the running check (zero value when
	// the policy has no entry for it).
	Scope Scope
	// Root is the module root directory, used to relativize paths in
	// diagnostics.
	Root string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.check,
		Severity: SevError,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker could not
// resolve it ("go/types where resolvable").
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// Scope restricts where one check runs. A package matches an entry when
// its import path equals the entry or lies underneath it
// (entry + "/..."). An empty Scope applies everywhere.
type Scope struct {
	// Only, when non-empty, limits the check to matching packages.
	Only []string
	// Exempt lists packages the check never runs in (the allowlist
	// mechanism); it takes precedence over Only.
	Exempt []string
}

func matchAny(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasPrefix(path, e+"/") {
			return true
		}
	}
	return false
}

// Applies reports whether a check with this scope runs in pkgPath.
func (s Scope) Applies(pkgPath string) bool {
	if matchAny(pkgPath, s.Exempt) {
		return false
	}
	return len(s.Only) == 0 || matchAny(pkgPath, s.Only)
}

// Policy maps check names to scopes. Checks without an entry run in
// every package.
type Policy struct {
	Scopes map[string]Scope
}

// Applies reports whether the named check runs in pkgPath under the
// policy.
func (p Policy) Applies(check, pkgPath string) bool {
	s, ok := p.Scopes[check]
	if !ok {
		return true
	}
	return s.Applies(pkgPath)
}

// DeterministicPackages lists the packages whose outputs must be pure
// functions of their inputs: the simulator, the search/memoization
// machinery, and everything that produces the paper's numbers. The
// nondeterminism analyzer is scoped to exactly this set.
func DeterministicPackages() []string {
	return []string{
		"harmonia/internal/gpusim",
		"harmonia/internal/oracle",
		"harmonia/internal/sweep",
		"harmonia/internal/simcache",
		"harmonia/internal/batch",
		"harmonia/internal/core",
		"harmonia/internal/policy",
		"harmonia/internal/sensitivity",
		"harmonia/internal/experiments",
		// trace promises byte-identical span trees for same-seed runs, so
		// it is held to the same standard; its single sanctioned exception
		// — the injectable clock's wall-time default — carries inline
		// ignore directives rather than a package-wide exemption.
		"harmonia/internal/trace",
		// timeline promises byte-identical flight recordings for
		// same-seed runs (it has no clock at all), and quality's
		// analyses feed telemetry that must not wobble across restarts.
		"harmonia/internal/timeline",
		"harmonia/internal/quality",
	}
}

// DefaultPolicy is the repo's enforcement policy: nondeterminism is
// confined to the deterministic packages (serve/telemetry/faults are
// explicitly allowlisted — wall-clock and seeded randomness are their
// job, as are resilience's breaker cooldowns and rate-limiter refills),
// hwenvelope exempts internal/hw itself (the single source of truth),
// floateq exempts internal/floats (the approved comparison helpers),
// and workerbudget exempts internal/batch (the budget arithmetic's
// home) and internal/serve (which legitimately derives per-request
// shares from the machine width).
func DefaultPolicy() Policy {
	nondetExempt := []string{
		"harmonia/internal/serve",
		"harmonia/internal/telemetry",
		"harmonia/internal/faults",
		// resilience is timer-driven by design: breaker cooldowns,
		// token-bucket refill, and journal timestamps read the
		// clock through an injectable now() that tests pin.
		"harmonia/internal/resilience",
	}
	return Policy{Scopes: map[string]Scope{
		"nondeterminism": {
			Only:   DeterministicPackages(),
			Exempt: nondetExempt,
		},
		// detertaint is nondeterminism's interprocedural companion: same
		// scope, and the exempt packages double as taint barriers (their
		// wall-clock/rand effects do not leak to callers).
		"detertaint": {
			Only:   DeterministicPackages(),
			Exempt: nondetExempt,
		},
		"hwenvelope": {Exempt: []string{"harmonia/internal/hw"}},
		"floateq":    {Exempt: []string{"harmonia/internal/floats"}},
		"workerbudget": {Exempt: []string{
			// batch owns the budget arithmetic: resolving 0 to GOMAXPROCS
			// is its job, not a violation.
			"harmonia/internal/batch",
			// serve derives per-request sweep shares from GOMAXPROCS by
			// design (the machine width divided by the pool size).
			"harmonia/internal/serve",
		}},
	}}
}

// Analyzers returns the ten domain analyzers in stable order: the six
// intraprocedural checks first, then the four call-graph checks.
func Analyzers() []Analyzer {
	return []Analyzer{
		&Nondeterminism{},
		&HWEnvelope{},
		&LockScope{},
		NewFloatEq(),
		&ErrDrop{},
		&WorkerBudget{},
		&DeterTaint{},
		&CtxFlow{},
		&SpawnJoin{},
		&SpanEnd{},
	}
}

// Select filters analyzers by a comma-separated name list; an empty
// list selects all. Unknown names return an error.
func Select(all []Analyzer, names string) ([]Analyzer, error) {
	if names == "" {
		return all, nil
	}
	byName := make(map[string]Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos    token.Position
	check  string
	reason string
}

// directivesFor extracts //lint:ignore directives from a package's
// comments. A directive suppresses findings of its named check on the
// directive's own line (trailing-comment form) and on the following
// line (standalone-comment form).
func directivesFor(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				check, reason, _ := strings.Cut(rest, " ")
				out = append(out, directive{
					pos:    pkg.Fset.Position(c.Pos()),
					check:  check,
					reason: strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// Run executes the analyzers over the packages under the policy,
// applies suppression directives, and returns the surviving diagnostics
// sorted by position. Malformed directives (no check name, unknown
// check, or missing reason) surface as "directive" warnings so -werror
// keeps the suppression mechanism itself honest.
func Run(pkgs []*Package, analyzers []Analyzer, pol Policy) []Diagnostic {
	// Directives are validated against the full check universe, not the
	// selected subset, so running with -checks does not misflag
	// directives for unselected checks.
	known := make(map[string]bool)
	for _, n := range AllCheckNames() {
		known[n] = true
	}
	for _, a := range analyzers {
		known[a.Name()] = true
	}

	// Build the interprocedural Program once when any selected analyzer
	// declares it needs one. The detertaint exempt packages double as
	// taint barriers, and any direct wall-clock/rand seed carrying a
	// //lint:ignore for nondeterminism or detertaint is a sanctioned
	// seed that must not taint callers.
	var prog *Program
	root := moduleRootOf(pkgs)
	if NeedsProgram(analyzers) {
		clean := pol.Scopes["detertaint"].Exempt
		if len(clean) == 0 {
			clean = pol.Scopes["nondeterminism"].Exempt
		}
		sanctioned := make(map[string]bool)
		for _, pkg := range pkgs {
			for _, d := range directivesFor(pkg) {
				if d.check == "nondeterminism" || d.check == "detertaint" {
					sanctioned[fmt.Sprintf("%s:%d", d.pos.Filename, d.pos.Line)] = true
					sanctioned[fmt.Sprintf("%s:%d", d.pos.Filename, d.pos.Line+1)] = true
				}
			}
		}
		prog = BuildProgram(pkgs, ProgramOptions{
			CleanPackages:       clean,
			SuppressedSeedLines: sanctioned,
		})
	}

	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := directivesFor(pkg)
		suppressed := make(map[string]bool) // "file:line:check"
		for _, d := range dirs {
			switch {
			case d.check == "":
				diags = append(diags, Diagnostic{
					Check: "directive", Severity: SevWarn, Pos: d.pos,
					Message: "lint:ignore needs a check name and a reason",
				})
				continue
			case d.reason == "":
				diags = append(diags, Diagnostic{
					Check: "directive", Severity: SevWarn, Pos: d.pos,
					Message: fmt.Sprintf("lint:ignore %s has no reason; explain why the finding is acceptable", d.check),
				})
			case !known[d.check]:
				diags = append(diags, Diagnostic{
					Check: "directive", Severity: SevWarn, Pos: d.pos,
					Message: fmt.Sprintf("lint:ignore names unknown check %q", d.check),
				})
			}
			suppressed[fmt.Sprintf("%s:%d:%s", d.pos.Filename, d.pos.Line, d.check)] = true
			suppressed[fmt.Sprintf("%s:%d:%s", d.pos.Filename, d.pos.Line+1, d.check)] = true
		}

		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if !pol.Applies(a.Name(), pkg.Path) {
				continue
			}
			pass := &Pass{
				Pkg:    pkg,
				check:  a.Name(),
				report: func(d Diagnostic) { pkgDiags = append(pkgDiags, d) },
				Prog:   prog,
				Scope:  pol.Scopes[a.Name()],
				Root:   root,
			}
			a.Run(pass)
		}
		for _, d := range pkgDiags {
			if suppressed[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Check)] {
				continue
			}
			diags = append(diags, d)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// NeedsProgram reports whether any of the analyzers requires the
// module-wide call graph. Callers loading a package subset (explicit
// directory arguments) use this to decide whether the whole module must
// be loaded anyway — interprocedural summaries are only sound over the
// full graph.
func NeedsProgram(analyzers []Analyzer) bool {
	for _, a := range analyzers {
		if pn, ok := a.(interface{ needsProgram() bool }); ok && pn.needsProgram() {
			return true
		}
	}
	return false
}

// moduleRootOf derives the module root directory from any loaded
// package: the package's Dir minus its path below the module.
func moduleRootOf(pkgs []*Package) string {
	for _, pkg := range pkgs {
		if pkg.Dir == "" {
			continue
		}
		sub := strings.TrimPrefix(pkg.Path, ModulePath)
		return strings.TrimSuffix(filepath.ToSlash(pkg.Dir), sub)
	}
	return ""
}

// AllCheckNames returns the names of the shipped analyzers in stable
// order.
func AllCheckNames() []string {
	as := Analyzers()
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name()
	}
	return out
}
