package workloads

import "fmt"

// Builder constructs Kernel descriptors fluently, applying sensible
// defaults and deferring validation to Build. It exists so downstream
// users modelling their own workloads do not need to memorize every
// descriptor field:
//
//	k, err := workloads.NewKernel("My.Gemm").
//	    Grid(256, 4000).
//	    Compute(600, 40).
//	    Memory(8, 2, 4, 4).
//	    Registers(64, 40).
//	    Cache(0.6, 0, 0.8).
//	    Build()
type Builder struct {
	k Kernel
}

// NewKernel starts a builder with representative defaults: 256-wide
// workgroups, light scalar work, perfectly coalesced 4-byte accesses,
// moderate registers, no divergence, mid cache behaviour.
func NewKernel(name string) *Builder {
	return &Builder{k: Kernel{
		Name:           name,
		WorkgroupSize:  256,
		Workgroups:     4000,
		VALUPerWI:      100,
		SALUPerWI:      8,
		FetchPerWI:     4,
		WritePerWI:     1,
		BytesPerFetch:  4,
		BytesPerWrite:  4,
		VGPRs:          32,
		SGPRs:          24,
		Divergence:     0,
		L2Hit:          0.4,
		L2Thrash:       0,
		RowHit:         0.6,
		MLPPerWave:     2,
		SerialCycles:   15000,
		LaunchOverhead: 10e-6,
	}}
}

// Grid sets the workgroup size and count.
func (b *Builder) Grid(workgroupSize, workgroups int) *Builder {
	b.k.WorkgroupSize = workgroupSize
	b.k.Workgroups = workgroups
	return b
}

// Compute sets per-work-item vector and scalar instruction counts.
func (b *Builder) Compute(valuPerWI, saluPerWI float64) *Builder {
	b.k.VALUPerWI = valuPerWI
	b.k.SALUPerWI = saluPerWI
	return b
}

// Memory sets per-work-item fetch/write instruction counts and their
// post-coalescing traffic in bytes.
func (b *Builder) Memory(fetchPerWI, writePerWI, bytesPerFetch, bytesPerWrite float64) *Builder {
	b.k.FetchPerWI = fetchPerWI
	b.k.WritePerWI = writePerWI
	b.k.BytesPerFetch = bytesPerFetch
	b.k.BytesPerWrite = bytesPerWrite
	return b
}

// Registers sets the VGPR (per work-item) and SGPR (per wavefront)
// footprint — the occupancy limiters of Section 3.5.
func (b *Builder) Registers(vgprs, sgprs int) *Builder {
	b.k.VGPRs = vgprs
	b.k.SGPRs = sgprs
	return b
}

// LDS sets local-data-share bytes per workgroup.
func (b *Builder) LDS(bytes int) *Builder {
	b.k.LDSBytes = bytes
	return b
}

// Divergence sets the inactive-lane fraction (0..1).
func (b *Builder) Divergence(frac float64) *Builder {
	b.k.Divergence = frac
	return b
}

// Cache sets L2 hit rate at minimum CUs, the CU-count thrash factor, and
// DRAM row-buffer locality.
func (b *Builder) Cache(l2Hit, l2Thrash, rowHit float64) *Builder {
	b.k.L2Hit = l2Hit
	b.k.L2Thrash = l2Thrash
	b.k.RowHit = rowHit
	return b
}

// MLP sets the outstanding memory requests one wavefront sustains.
func (b *Builder) MLP(perWave float64) *Builder {
	b.k.MLPPerWave = perWave
	return b
}

// Overheads sets per-invocation serial cycles and fixed launch time.
func (b *Builder) Overheads(serialCycles, launchOverheadSec float64) *Builder {
	b.k.SerialCycles = serialCycles
	b.k.LaunchOverhead = launchOverheadSec
	return b
}

// Phases installs a per-iteration modulation function.
func (b *Builder) Phases(fn func(iter int) Phase) *Builder {
	b.k.Phases = fn
	return b
}

// Build validates and returns the kernel.
func (b *Builder) Build() (*Kernel, error) {
	k := b.k // copy: the builder can keep being used
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: build %s: %w", b.k.Name, err)
	}
	return &k, nil
}

// MustBuild is Build for statically known-good descriptors; it panics on
// validation failure.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}

// Streaming returns a template for bandwidth-bound streaming kernels
// (DeviceMemory-like): minimal compute per byte, perfect coalescing, no
// reuse, deep MLP.
func Streaming(name string) *Builder {
	return NewKernel(name).
		Compute(60, 6).
		Memory(4, 1, 4, 4).
		Registers(28, 20).
		Cache(0.05, 0, 0.9).
		MLP(4)
}

// ComputeHeavy returns a template for FLOP-bound kernels
// (MaxFlops-like): long ALU chains, almost no memory traffic.
func ComputeHeavy(name string) *Builder {
	return NewKernel(name).
		Compute(8000, 80).
		Memory(4, 1, 4, 4).
		Registers(32, 24).
		Cache(0.85, 0, 0.8).
		MLP(2)
}

// PointerChase returns a template for latency-bound irregular kernels
// (BPT-like): memory-divergent gathers, poor row locality, heavy L2
// contention that rewards CU power gating.
func PointerChase(name string) *Builder {
	return NewKernel(name).
		Grid(128, 8000).
		Compute(90, 20).
		Memory(12, 0.5, 16, 8).
		Registers(30, 30).
		Divergence(0.3).
		Cache(0.7, 0.6, 0.25).
		MLP(2)
}
