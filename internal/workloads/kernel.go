// Package workloads describes GPGPU applications as kernel descriptors:
// instruction mix, memory traffic, register/LDS footprint, control
// divergence, cache behaviour, and per-iteration phase variation.
//
// The paper evaluates 14 HPC and scientific-computing applications with 25
// kernels, measured on real hardware (Section 6). We cannot run OpenCL
// binaries here, so each kernel is represented by the quantities the
// paper's own characterization shows govern its performance and power
// scaling: ops/byte demand, occupancy limiters (VGPR/SGPR/LDS), branch
// divergence, L2 hit rate and CU-count-dependent cache interference, DRAM
// locality, and memory-level parallelism. The timing simulator
// (internal/gpusim) turns a descriptor plus a hardware configuration into
// execution time and the Table 2 performance counters; Harmonia only ever
// observes those outputs, exactly as it only observed counters on the
// real platform.
package workloads

import (
	"fmt"

	"harmonia/internal/hw"
)

// Kernel is a descriptor of one GPU kernel's execution behaviour.
type Kernel struct {
	// Name is "App.Kernel", e.g. "Sort.BottomScan".
	Name string

	// WorkgroupSize is the number of work-items per workgroup.
	WorkgroupSize int
	// Workgroups is the grid size per invocation (before phase scaling).
	Workgroups int

	// VALUPerWI is the number of vector-ALU instructions per work-item
	// on the active path (divergence inflates the issued count).
	VALUPerWI float64
	// SALUPerWI is the number of scalar-ALU instructions per work-item.
	SALUPerWI float64
	// FetchPerWI is the number of vector memory read instructions per
	// work-item.
	FetchPerWI float64
	// WritePerWI is the number of vector memory write instructions per
	// work-item.
	WritePerWI float64
	// BytesPerFetch is the average memory-hierarchy traffic per fetch per
	// work-item after coalescing (bytes). Poorly coalesced (memory
	// divergent) kernels have values well above the natural element size.
	BytesPerFetch float64
	// BytesPerWrite is the analogous per-write traffic.
	BytesPerWrite float64

	// VGPRs is the vector general-purpose registers per work-item.
	VGPRs int
	// SGPRs is the scalar registers per wavefront.
	SGPRs int
	// LDSBytes is local data share per workgroup.
	LDSBytes int

	// Divergence is the fraction of inactive vector lanes caused by
	// control divergence (0..1). VALUUtilization = 100·(1-Divergence).
	Divergence float64
	// L2Hit is the L2 hit rate with the minimum CU count active (0..1).
	L2Hit float64
	// L2Thrash is the fraction of L2Hit lost when going from the minimum
	// to the maximum CU count (0..1): more active CUs means more
	// concurrent workgroups contending for the shared 768 KB L2
	// (Section 7.1 — BPT, CFD and XSBench gain performance when CUs are
	// power-gated because interference drops).
	L2Thrash float64
	// RowHit is DRAM row-buffer locality (0..1); it scales achievable
	// channel efficiency.
	RowHit float64
	// MLPPerWave is the average number of outstanding memory requests a
	// single in-flight wavefront sustains. Together with occupancy it
	// bounds achievable bandwidth (Figure 7's latency-hiding argument).
	MLPPerWave float64

	// SerialCycles is per-invocation serial work (in compute-clock
	// cycles) that does not parallelize across CUs: kernel ramp-up/drain,
	// serialized critical sections.
	SerialCycles float64
	// LaunchOverhead is fixed per-invocation host-side time in seconds.
	LaunchOverhead float64

	// Phases optionally modulates the kernel per iteration, modelling
	// intra-kernel phase changes such as Graph500's breadth-first-search
	// frontier growth and collapse (Figure 14). Nil means no variation.
	Phases func(iter int) Phase
}

// Phase scales a kernel invocation for one iteration.
type Phase struct {
	// WorkScale multiplies the workgroup count (1 = nominal).
	WorkScale float64
	// Divergence, if non-negative, overrides the kernel's divergence.
	Divergence float64
	// FetchScale multiplies per-work-item fetch traffic (1 = nominal).
	FetchScale float64
}

// NominalPhase is the identity phase.
func NominalPhase() Phase { return Phase{WorkScale: 1, Divergence: -1, FetchScale: 1} }

// PhaseFor returns the kernel's phase for the given iteration, or the
// nominal phase when the kernel has no phase function.
func (k *Kernel) PhaseFor(iter int) Phase {
	if k.Phases == nil {
		return NominalPhase()
	}
	p := k.Phases(iter)
	if p.WorkScale <= 0 {
		p.WorkScale = 1
	}
	if p.FetchScale <= 0 {
		p.FetchScale = 1
	}
	return p
}

// DivergenceFor returns the effective divergence for a phase.
func (k *Kernel) DivergenceFor(p Phase) float64 {
	if p.Divergence >= 0 {
		return p.Divergence
	}
	return k.Divergence
}

// WavesPerWorkgroup returns the wavefronts needed per workgroup.
func (k *Kernel) WavesPerWorkgroup() int {
	return (k.WorkgroupSize + hw.WavefrontSize - 1) / hw.WavefrontSize
}

// OccupancyWaves returns the number of wavefronts per SIMD that can be
// resident given the kernel's register and LDS footprint (Section 3.5's
// kernel-occupancy analysis), before considering grid size.
func (k *Kernel) OccupancyWaves() int {
	waves := hw.MaxWavesPerSIMD
	if k.VGPRs > 0 {
		if v := hw.VGPRsPerSIMD / k.VGPRs; v < waves {
			waves = v
		}
	}
	if k.SGPRs > 0 {
		if s := hw.SGPRsPerCU / k.SGPRs; s < waves {
			waves = s
		}
	}
	if k.LDSBytes > 0 {
		wgPerCU := hw.LDSBytesPerCU / k.LDSBytes
		w := wgPerCU * k.WavesPerWorkgroup() / hw.SIMDsPerCU
		if w < waves {
			waves = w
		}
	}
	if waves < 1 {
		waves = 1
	}
	return waves
}

// Occupancy returns kernel occupancy as a fraction of the architectural
// wavefront limit (the quantity Figure 7 reports: 30% for
// Sort.BottomScan, 100% for CoMD.AdvanceVelocity).
func (k *Kernel) Occupancy() float64 {
	return float64(k.OccupancyWaves()) / hw.MaxWavesPerSIMD
}

// DemandOpsPerByte returns the kernel's demanded operational intensity:
// issued vector operations per byte of memory-hierarchy traffic, after
// divergence inflation. This is the application-side quantity the paper's
// "hardware balance" concept matches against hw.Config.OpsPerByte.
func (k *Kernel) DemandOpsPerByte() float64 {
	bytes := k.FetchPerWI*k.BytesPerFetch + k.WritePerWI*k.BytesPerWrite
	if bytes <= 0 {
		return 1e9
	}
	util := 1 - k.Divergence
	if util <= 0 {
		util = 1e-3
	}
	return k.VALUPerWI / util / bytes
}

// Validate reports descriptor inconsistencies.
func (k *Kernel) Validate() error {
	switch {
	case k.Name == "":
		return fmt.Errorf("workloads: kernel with empty name")
	case k.WorkgroupSize <= 0 || k.WorkgroupSize > 1024:
		return fmt.Errorf("workloads: %s: workgroup size %d out of range", k.Name, k.WorkgroupSize)
	case k.Workgroups <= 0:
		return fmt.Errorf("workloads: %s: no workgroups", k.Name)
	case k.VALUPerWI < 0 || k.FetchPerWI < 0 || k.WritePerWI < 0:
		return fmt.Errorf("workloads: %s: negative instruction counts", k.Name)
	case k.Divergence < 0 || k.Divergence >= 1:
		return fmt.Errorf("workloads: %s: divergence %v out of [0,1)", k.Name, k.Divergence)
	case k.L2Hit < 0 || k.L2Hit > 1:
		return fmt.Errorf("workloads: %s: L2 hit rate %v out of [0,1]", k.Name, k.L2Hit)
	case k.L2Thrash < 0 || k.L2Thrash > 1:
		return fmt.Errorf("workloads: %s: L2 thrash %v out of [0,1]", k.Name, k.L2Thrash)
	case k.RowHit < 0 || k.RowHit > 1:
		return fmt.Errorf("workloads: %s: row hit %v out of [0,1]", k.Name, k.RowHit)
	case k.VGPRs < 0 || k.VGPRs > hw.VGPRsPerSIMD:
		return fmt.Errorf("workloads: %s: VGPRs %d out of range", k.Name, k.VGPRs)
	case k.SGPRs < 0 || k.SGPRs > hw.SGPRsPerCU:
		return fmt.Errorf("workloads: %s: SGPRs %d out of range", k.Name, k.SGPRs)
	case k.LDSBytes < 0 || k.LDSBytes > hw.LDSBytesPerCU:
		return fmt.Errorf("workloads: %s: LDS %d out of range", k.Name, k.LDSBytes)
	case k.MLPPerWave <= 0:
		return fmt.Errorf("workloads: %s: MLP per wave must be positive", k.Name)
	}
	return nil
}

// Application is a GPGPU application: an ordered list of kernels invoked
// once each per iteration, for a number of iterations. Iterative
// convergence structure is common in HPC codes and is what Harmonia's
// per-kernel history exploits (Section 5.1).
type Application struct {
	Name string
	// Kernels are invoked in order within each iteration.
	Kernels []*Kernel
	// Iterations is the number of times the kernel sequence repeats.
	Iterations int
	// Stress marks the MaxFlops/DeviceMemory stress microbenchmarks that
	// the paper excludes from its second geometric mean (Section 7.1).
	Stress bool
}

// Validate checks the application and all its kernels.
func (a *Application) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workloads: application with empty name")
	}
	if len(a.Kernels) == 0 {
		return fmt.Errorf("workloads: %s: no kernels", a.Name)
	}
	if a.Iterations <= 0 {
		return fmt.Errorf("workloads: %s: no iterations", a.Name)
	}
	for _, k := range a.Kernels {
		if err := k.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// KernelNames returns the names of the application's kernels in order.
func (a *Application) KernelNames() []string {
	out := make([]string, len(a.Kernels))
	for i, k := range a.Kernels {
		out[i] = k.Name
	}
	return out
}
