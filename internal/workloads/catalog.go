package workloads

// This file instantiates the paper's 14-application evaluation suite
// (Section 6): Exascale HPC proxy apps (CoMD, XSBench, miniFE), Graph500,
// B+Tree (BPT), CFD, LUD, SRAD and Streamcluster from Rodinia, and
// Stencil, Sort, SPMV, MaxFlops and DeviceMemory from SHOC.
//
// Each descriptor encodes the characteristics the paper itself reports
// for that code: Sort.BottomScan's 66-VGPR / 30%-occupancy limit and 6%
// divergence over >2M instructions (Section 3.5, Figures 7-8),
// SRAD.Prepare's 75% divergence over only 8 ALU instructions (Figure 8),
// CoMD.AdvanceVelocity's 100% occupancy and memory intensity (Figure 7),
// DeviceMemory's ~4x-minimum balance knee (Figure 3b), LUD's ~15x knee
// (Figure 3c), Graph500's 0.64-264 ops/byte BFS phase swings (Figures
// 14-16), and the L2-thrashing behaviour that lets BPT, CFD and XSBench
// gain performance when CUs are power-gated (Section 7.1). Quantities the
// paper does not give are chosen to be representative of the published
// literature for those codes and, more importantly, to be *self-
// consistent*: the simulator turns these numbers into counters and
// timing, and every result in EXPERIMENTS.md is derived from those, never
// asserted directly.

// MaxFlops is the SHOC compute-stress microbenchmark: dense FMA chains,
// no divergence, almost no memory traffic (Figure 3a: performance scales
// linearly with compute throughput at any memory configuration).
func MaxFlops() *Application {
	return &Application{
		Name:   "MaxFlops",
		Stress: true,
		Kernels: []*Kernel{{
			Name:          "MaxFlops.Main",
			WorkgroupSize: 256, Workgroups: 2600,
			VALUPerWI: 12000, SALUPerWI: 100,
			FetchPerWI: 8, WritePerWI: 2, BytesPerFetch: 4, BytesPerWrite: 4,
			VGPRs: 32, SGPRs: 24, LDSBytes: 0,
			Divergence: 0, L2Hit: 0.85, L2Thrash: 0, RowHit: 0.8,
			MLPPerWave: 2, SerialCycles: 20000, LaunchOverhead: 10e-6,
		}},
		Iterations: 30,
	}
}

// DeviceMemory is the SHOC memory-stress microbenchmark: streaming
// reads/writes that saturate DRAM bandwidth. Its balance knee sits near
// 4x the minimum configuration's ops/byte (Figure 3b).
func DeviceMemory() *Application {
	return &Application{
		Name:   "DeviceMemory",
		Stress: true,
		Kernels: []*Kernel{{
			Name:          "DeviceMemory.Stream",
			WorkgroupSize: 256, Workgroups: 324000,
			VALUPerWI: 64, SALUPerWI: 6,
			FetchPerWI: 4, WritePerWI: 1, BytesPerFetch: 4, BytesPerWrite: 4,
			VGPRs: 28, SGPRs: 20, LDSBytes: 0,
			Divergence: 0, L2Hit: 0.05, L2Thrash: 0, RowHit: 0.9,
			MLPPerWave: 4, SerialCycles: 20000, LaunchOverhead: 10e-6,
		}},
		Iterations: 30,
	}
}

// LUD is Rodinia's LU matrix decomposition: a tiny divergent diagonal
// kernel, a perimeter kernel, and a large compute-dominant internal
// kernel whose balance knee is near 15x the minimum configuration
// (Figure 3c).
func LUD() *Application {
	return &Application{
		Name: "LUD",
		Kernels: []*Kernel{
			{
				Name:          "LUD.Diagonal",
				WorkgroupSize: 256, Workgroups: 4,
				VALUPerWI: 2400, SALUPerWI: 200,
				FetchPerWI: 40, WritePerWI: 8, BytesPerFetch: 8, BytesPerWrite: 8,
				VGPRs: 48, SGPRs: 40, LDSBytes: 32768,
				Divergence: 0.35, L2Hit: 0.6, L2Thrash: 0, RowHit: 0.6,
				MLPPerWave: 1, SerialCycles: 50000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "LUD.Perimeter",
				WorkgroupSize: 256, Workgroups: 60,
				VALUPerWI: 1600, SALUPerWI: 120,
				FetchPerWI: 30, WritePerWI: 8, BytesPerFetch: 8, BytesPerWrite: 8,
				VGPRs: 52, SGPRs: 36, LDSBytes: 16384,
				Divergence: 0.2, L2Hit: 0.55, L2Thrash: 0, RowHit: 0.6,
				MLPPerWave: 1.5, SerialCycles: 30000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "LUD.Internal",
				WorkgroupSize: 256, Workgroups: 12000,
				VALUPerWI: 300, SALUPerWI: 20,
				FetchPerWI: 10, WritePerWI: 2, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 36, SGPRs: 28, LDSBytes: 8192,
				Divergence: 0.05, L2Hit: 0.5, L2Thrash: 0.1, RowHit: 0.7,
				MLPPerWave: 2, SerialCycles: 20000, LaunchOverhead: 12e-6,
			},
		},
		Iterations: 50,
	}
}

// SRAD is Rodinia's speckle-reducing anisotropic diffusion. SRAD.Prepare
// has 75% branch divergence but only 8 ALU instructions, so despite the
// divergence its compute-frequency sensitivity is low (Figure 8).
func SRAD() *Application {
	return &Application{
		Name: "SRAD",
		Kernels: []*Kernel{
			{
				Name:          "SRAD.Prepare",
				WorkgroupSize: 64, Workgroups: 200,
				VALUPerWI: 8, SALUPerWI: 4,
				FetchPerWI: 2, WritePerWI: 1, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 12, SGPRs: 16, LDSBytes: 0,
				Divergence: 0.75, L2Hit: 0.3, L2Thrash: 0, RowHit: 0.6,
				MLPPerWave: 1, SerialCycles: 5000, LaunchOverhead: 15e-6,
			},
			{
				Name:          "SRAD.Main",
				WorkgroupSize: 256, Workgroups: 8000,
				VALUPerWI: 120, SALUPerWI: 10,
				FetchPerWI: 8, WritePerWI: 2, BytesPerFetch: 5.5, BytesPerWrite: 4,
				VGPRs: 40, SGPRs: 30, LDSBytes: 0,
				Divergence: 0.1, L2Hit: 0.25, L2Thrash: 0.05, RowHit: 0.6,
				MLPPerWave: 2.5, SerialCycles: 15000, LaunchOverhead: 12e-6,
			},
		},
		Iterations: 60,
	}
}

// CFD is Rodinia's unstructured-grid Euler solver: memory-divergent
// gathers with heavy L2 contention; power-gating CUs reduces cache
// interference enough to *improve* performance by ~3% (Section 7.1).
func CFD() *Application {
	return &Application{
		Name: "CFD",
		Kernels: []*Kernel{
			{
				Name:          "CFD.ComputeFlux",
				WorkgroupSize: 192, Workgroups: 6000,
				VALUPerWI: 260, SALUPerWI: 20,
				FetchPerWI: 14, WritePerWI: 3, BytesPerFetch: 12, BytesPerWrite: 8,
				VGPRs: 60, SGPRs: 40, LDSBytes: 0,
				Divergence: 0.25, L2Hit: 0.6, L2Thrash: 0.65, RowHit: 0.4,
				MLPPerWave: 2.5, SerialCycles: 20000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "CFD.TimeStep",
				WorkgroupSize: 256, Workgroups: 2000,
				VALUPerWI: 40, SALUPerWI: 4,
				FetchPerWI: 4, WritePerWI: 2, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 20, SGPRs: 16, LDSBytes: 0,
				Divergence: 0.02, L2Hit: 0.2, L2Thrash: 0, RowHit: 0.8,
				MLPPerWave: 3, SerialCycles: 8000, LaunchOverhead: 10e-6,
			},
		},
		Iterations: 40,
	}
}

// Streamcluster is Rodinia's online clustering kernel: genuinely high
// compute sensitivity, but with a counter profile that lands the
// predicted sensitivity just below the HIGH bin edge — the paper's
// explanation for its 27% CG-only slowdown that fine-grain feedback
// repairs (Section 7.1).
func Streamcluster() *Application {
	return &Application{
		Name: "Streamcluster",
		Kernels: []*Kernel{{
			Name:          "Streamcluster.PGain",
			WorkgroupSize: 256, Workgroups: 5000,
			VALUPerWI: 340, SALUPerWI: 30,
			FetchPerWI: 11, WritePerWI: 1, BytesPerFetch: 5, BytesPerWrite: 4,
			VGPRs: 44, SGPRs: 34, LDSBytes: 0,
			Divergence: 0.12, L2Hit: 0.55, L2Thrash: 0.05, RowHit: 0.6,
			MLPPerWave: 1.8, SerialCycles: 25000, LaunchOverhead: 12e-6,
		}},
		Iterations: 60,
	}
}

// BPT is the B+Tree search workload: pointer-chasing with severe memory
// divergence and L2 thrashing. The paper's best case: Harmonia improves
// ED2 by 36% and performance by 11% by power-gating CUs (Section 7.1).
func BPT() *Application {
	return &Application{
		Name: "BPT",
		Kernels: []*Kernel{
			{
				Name:          "BPT.FindK",
				WorkgroupSize: 128, Workgroups: 10000,
				VALUPerWI: 90, SALUPerWI: 20,
				FetchPerWI: 12, WritePerWI: 0.5, BytesPerFetch: 16, BytesPerWrite: 8,
				VGPRs: 30, SGPRs: 30, LDSBytes: 0,
				Divergence: 0.3, L2Hit: 0.7, L2Thrash: 0.6, RowHit: 0.25,
				MLPPerWave: 2, SerialCycles: 15000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "BPT.FindRangeK",
				WorkgroupSize: 128, Workgroups: 6000,
				VALUPerWI: 110, SALUPerWI: 22,
				FetchPerWI: 14, WritePerWI: 0.5, BytesPerFetch: 16, BytesPerWrite: 8,
				VGPRs: 34, SGPRs: 32, LDSBytes: 0,
				Divergence: 0.35, L2Hit: 0.65, L2Thrash: 0.55, RowHit: 0.25,
				MLPPerWave: 2, SerialCycles: 15000, LaunchOverhead: 12e-6,
			},
		},
		Iterations: 40,
	}
}

// Sort is SHOC's radix sort. BottomScan is VGPR-limited to 30% occupancy
// (66 of 256 registers), has only 6% divergence across >2M dynamic
// instructions, is highly compute-sensitive, and — because its low
// occupancy caps memory-level parallelism — can run at the minimum
// memory bus frequency without losing performance (Sections 3.5, 7.1).
func Sort() *Application {
	return &Application{
		Name: "Sort",
		Kernels: []*Kernel{
			{
				Name:          "Sort.BottomScan",
				WorkgroupSize: 256, Workgroups: 8000,
				VALUPerWI: 420, SALUPerWI: 30,
				FetchPerWI: 4, WritePerWI: 2, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 66, SGPRs: 48, LDSBytes: 0,
				Divergence: 0.06, L2Hit: 0.5, L2Thrash: 0, RowHit: 0.7,
				MLPPerWave: 1.0, SerialCycles: 20000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "Sort.TopScan",
				WorkgroupSize: 256, Workgroups: 64,
				VALUPerWI: 150, SALUPerWI: 16,
				FetchPerWI: 3, WritePerWI: 1, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 32, SGPRs: 24, LDSBytes: 4096,
				Divergence: 0.1, L2Hit: 0.6, L2Thrash: 0, RowHit: 0.7,
				MLPPerWave: 1, SerialCycles: 10000, LaunchOverhead: 10e-6,
			},
		},
		Iterations: 50,
	}
}

// SPMV is SHOC's sparse matrix-vector multiply: irregular gathers,
// memory-bound, with enough prediction noise that the paper singles it
// out as a case where FG tuning must correct CG (Section 7.2).
func SPMV() *Application {
	return &Application{
		Name: "SPMV",
		Kernels: []*Kernel{{
			Name:          "SPMV.CSRVector",
			WorkgroupSize: 128, Workgroups: 7000,
			VALUPerWI: 60, SALUPerWI: 10,
			FetchPerWI: 7, WritePerWI: 0.5, BytesPerFetch: 9, BytesPerWrite: 4,
			VGPRs: 26, SGPRs: 26, LDSBytes: 0,
			Divergence: 0.18, L2Hit: 0.4, L2Thrash: 0.25, RowHit: 0.35,
			MLPPerWave: 2.5, SerialCycles: 12000, LaunchOverhead: 12e-6,
		}},
		Iterations: 50,
	}
}

// Stencil is SHOC's 9-point stencil: regular, LDS-tiled, compute-leaning.
// The paper's largest overall power saving (19%) comes from running its
// memory system slow (Section 7.1).
func Stencil() *Application {
	return &Application{
		Name: "Stencil",
		Kernels: []*Kernel{{
			Name:          "Stencil.Step",
			WorkgroupSize: 256, Workgroups: 9000,
			VALUPerWI: 150, SALUPerWI: 8,
			FetchPerWI: 4, WritePerWI: 1, BytesPerFetch: 4, BytesPerWrite: 4,
			VGPRs: 32, SGPRs: 24, LDSBytes: 8192,
			Divergence: 0.03, L2Hit: 0.85, L2Thrash: 0.05, RowHit: 0.85,
			MLPPerWave: 2.5, SerialCycles: 15000, LaunchOverhead: 10e-6,
		}},
		Iterations: 60,
	}
}

// CoMD is the molecular-dynamics exascale proxy app. EAM_Force_1 is
// compute-heavy with low bandwidth sensitivity (the paper lowers its
// memory bus without exposing latency); AdvanceVelocity runs at 100%
// occupancy and is memory-intensive with moderate compute demand
// (Figure 7, Section 7.1).
func CoMD() *Application {
	return &Application{
		Name: "CoMD",
		Kernels: []*Kernel{
			{
				Name:          "CoMD.EAM_Force_1",
				WorkgroupSize: 256, Workgroups: 4000,
				VALUPerWI: 800, SALUPerWI: 60,
				FetchPerWI: 12, WritePerWI: 2, BytesPerFetch: 4.5, BytesPerWrite: 4,
				VGPRs: 48, SGPRs: 38, LDSBytes: 0,
				Divergence: 0.15, L2Hit: 0.55, L2Thrash: 0, RowHit: 0.6,
				MLPPerWave: 2, SerialCycles: 25000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "CoMD.EAM_Force_2",
				WorkgroupSize: 256, Workgroups: 4000,
				VALUPerWI: 300, SALUPerWI: 30,
				FetchPerWI: 10, WritePerWI: 2, BytesPerFetch: 4.5, BytesPerWrite: 4,
				VGPRs: 44, SGPRs: 34, LDSBytes: 0,
				Divergence: 0.12, L2Hit: 0.5, L2Thrash: 0, RowHit: 0.6,
				MLPPerWave: 2, SerialCycles: 20000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "CoMD.AdvanceVelocity",
				WorkgroupSize: 256, Workgroups: 5000,
				VALUPerWI: 40, SALUPerWI: 4,
				FetchPerWI: 6, WritePerWI: 3, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 24, SGPRs: 40, LDSBytes: 0,
				Divergence: 0.02, L2Hit: 0.15, L2Thrash: 0, RowHit: 0.8,
				MLPPerWave: 3.5, SerialCycles: 8000, LaunchOverhead: 10e-6,
			},
		},
		Iterations: 50,
	}
}

// XSBench is the Monte Carlo neutron-transport proxy app: random
// cross-section table lookups with poor locality and L2 pollution. It
// runs only two iterations per kernel, making it the paper's showcase
// for CG tuning's single-iteration convergence (Section 7.2).
func XSBench() *Application {
	return &Application{
		Name: "XSBench",
		Kernels: []*Kernel{
			{
				Name:          "XSBench.Lookup",
				WorkgroupSize: 256, Workgroups: 12000,
				VALUPerWI: 75, SALUPerWI: 12,
				FetchPerWI: 22, WritePerWI: 0.3, BytesPerFetch: 12, BytesPerWrite: 4,
				VGPRs: 40, SGPRs: 36, LDSBytes: 0,
				Divergence: 0.2, L2Hit: 0.5, L2Thrash: 0.62, RowHit: 0.2,
				MLPPerWave: 3, SerialCycles: 20000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "XSBench.Reduce",
				WorkgroupSize: 256, Workgroups: 500,
				VALUPerWI: 80, SALUPerWI: 10,
				FetchPerWI: 4, WritePerWI: 1, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 24, SGPRs: 20, LDSBytes: 2048,
				Divergence: 0.05, L2Hit: 0.5, L2Thrash: 0, RowHit: 0.7,
				MLPPerWave: 2, SerialCycles: 8000, LaunchOverhead: 10e-6,
			},
		},
		Iterations: 2,
	}
}

// MiniFE is the implicit finite-element exascale proxy app: a sparse
// matrix-vector product plus a streaming dot-product reduction.
func MiniFE() *Application {
	return &Application{
		Name: "miniFE",
		Kernels: []*Kernel{
			{
				Name:          "miniFE.MatVec",
				WorkgroupSize: 128, Workgroups: 8000,
				VALUPerWI: 70, SALUPerWI: 10,
				FetchPerWI: 8, WritePerWI: 0.5, BytesPerFetch: 7, BytesPerWrite: 4,
				VGPRs: 28, SGPRs: 28, LDSBytes: 0,
				Divergence: 0.12, L2Hit: 0.45, L2Thrash: 0.15, RowHit: 0.4,
				MLPPerWave: 2.5, SerialCycles: 12000, LaunchOverhead: 12e-6,
			},
			{
				Name:          "miniFE.Dot",
				WorkgroupSize: 256, Workgroups: 3000,
				VALUPerWI: 30, SALUPerWI: 4,
				FetchPerWI: 4, WritePerWI: 0.1, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 16, SGPRs: 16, LDSBytes: 1024,
				Divergence: 0.02, L2Hit: 0.1, L2Thrash: 0, RowHit: 0.9,
				MLPPerWave: 3.5, SerialCycles: 6000, LaunchOverhead: 10e-6,
			},
		},
		Iterations: 50,
	}
}

// graph500Work is the BFS frontier profile over the eight iterations the
// paper plots in Figure 14: small frontier, explosive growth, then decay.
var graph500Work = []Phase{
	{WorkScale: 0.35, Divergence: 0.48, FetchScale: 1.15},
	{WorkScale: 1.00, Divergence: 0.46, FetchScale: 1.05},
	{WorkScale: 2.80, Divergence: 0.42, FetchScale: 0.80},
	{WorkScale: 2.20, Divergence: 0.43, FetchScale: 0.78},
	{WorkScale: 1.30, Divergence: 0.45, FetchScale: 0.90},
	{WorkScale: 0.70, Divergence: 0.47, FetchScale: 1.00},
	{WorkScale: 0.45, Divergence: 0.50, FetchScale: 1.10},
	{WorkScale: 0.30, Divergence: 0.53, FetchScale: 1.20},
}

// Graph500 is the breadth-first-search graph benchmark. Its main kernel
// BottomStepUp shows strong intra-kernel phase behaviour: instruction
// volume swings several-fold across iterations (Figure 14), ops/byte
// ranges from 0.64 to bursts of 264, divergence stays high (so Harmonia
// pins the compute frequency at maximum), and bandwidth sensitivity
// dithers between medium and low (Figures 15-16).
func Graph500() *Application {
	phase := func(iter int) Phase { return graph500Work[iter%len(graph500Work)] }
	return &Application{
		Name: "Graph500",
		Kernels: []*Kernel{
			{
				Name:          "Graph500.BottomStepUp",
				WorkgroupSize: 256, Workgroups: 20000,
				VALUPerWI: 500, SALUPerWI: 60,
				FetchPerWI: 8, WritePerWI: 2, BytesPerFetch: 6, BytesPerWrite: 4,
				VGPRs: 42, SGPRs: 36, LDSBytes: 0,
				Divergence: 0.45, L2Hit: 0.55, L2Thrash: 0.2, RowHit: 0.3,
				MLPPerWave: 2, SerialCycles: 200000, LaunchOverhead: 15e-6,
				Phases: phase,
			},
			{
				Name:          "Graph500.TopDown",
				WorkgroupSize: 256, Workgroups: 8000,
				VALUPerWI: 150, SALUPerWI: 24,
				FetchPerWI: 8, WritePerWI: 2, BytesPerFetch: 8, BytesPerWrite: 4,
				VGPRs: 36, SGPRs: 32, LDSBytes: 0,
				Divergence: 0.5, L2Hit: 0.4, L2Thrash: 0.15, RowHit: 0.3,
				MLPPerWave: 2, SerialCycles: 100000, LaunchOverhead: 15e-6,
			},
			{
				Name:          "Graph500.BitmapConstruct",
				WorkgroupSize: 256, Workgroups: 3000,
				VALUPerWI: 60, SALUPerWI: 8,
				FetchPerWI: 5, WritePerWI: 2, BytesPerFetch: 4, BytesPerWrite: 4,
				VGPRs: 20, SGPRs: 20, LDSBytes: 0,
				Divergence: 0.1, L2Hit: 0.3, L2Thrash: 0, RowHit: 0.7,
				MLPPerWave: 3, SerialCycles: 20000, LaunchOverhead: 12e-6,
			},
		},
		Iterations: 24,
	}
}

// Suite returns the full 14-application evaluation suite in the order the
// paper's result figures present them.
func Suite() []*Application {
	return []*Application{
		BPT(), CFD(), CoMD(), DeviceMemory(), Graph500(), LUD(), MaxFlops(),
		MiniFE(), Sort(), SPMV(), SRAD(), Stencil(), Streamcluster(), XSBench(),
	}
}

// NonStress returns the suite without the MaxFlops and DeviceMemory
// stress microbenchmarks — the population of the paper's "Geomean 2"
// (Section 7.1).
func NonStress() []*Application {
	var out []*Application
	for _, a := range Suite() {
		if !a.Stress {
			out = append(out, a)
		}
	}
	return out
}

// ByName returns the application with the given name, or nil.
func ByName(name string) *Application {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AllKernels returns every kernel in the suite, in suite order. The paper
// trains its sensitivity predictors over "a total of 25 application
// kernels" (Section 4); this catalog has 26.
func AllKernels() []*Kernel {
	var out []*Kernel
	for _, a := range Suite() {
		out = append(out, a.Kernels...)
	}
	return out
}
