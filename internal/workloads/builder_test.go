package workloads

import (
	"testing"
)

func TestBuilderDefaultsAreValid(t *testing.T) {
	k, err := NewKernel("t.default").Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.WorkgroupSize != 256 || k.MLPPerWave != 2 {
		t.Errorf("defaults: %+v", k)
	}
}

func TestBuilderSettersFlowThrough(t *testing.T) {
	k, err := NewKernel("t.full").
		Grid(128, 2000).
		Compute(500, 30).
		Memory(6, 2, 8, 4).
		Registers(66, 48).
		LDS(8192).
		Divergence(0.2).
		Cache(0.5, 0.3, 0.7).
		MLP(3).
		Overheads(40000, 20e-6).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.WorkgroupSize != 128 || k.Workgroups != 2000 ||
		k.VALUPerWI != 500 || k.SALUPerWI != 30 ||
		k.FetchPerWI != 6 || k.BytesPerFetch != 8 ||
		k.VGPRs != 66 || k.SGPRs != 48 || k.LDSBytes != 8192 ||
		k.Divergence != 0.2 || k.L2Hit != 0.5 || k.L2Thrash != 0.3 ||
		k.RowHit != 0.7 || k.MLPPerWave != 3 ||
		k.SerialCycles != 40000 || k.LaunchOverhead != 20e-6 {
		t.Errorf("builder lost fields: %+v", k)
	}
	// VGPR 66 must reproduce the Sort.BottomScan occupancy limit.
	if k.OccupancyWaves() != 3 {
		t.Errorf("occupancy waves = %d, want 3", k.OccupancyWaves())
	}
}

func TestBuilderValidationFailure(t *testing.T) {
	if _, err := NewKernel("t.bad").Divergence(1.5).Build(); err == nil {
		t.Error("invalid divergence accepted")
	}
	if _, err := NewKernel("").Build(); err == nil {
		t.Error("empty name accepted")
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	NewKernel("t.bad").Grid(0, 0).MustBuild()
}

func TestBuilderCopySemantics(t *testing.T) {
	b := NewKernel("t.copy")
	k1 := b.MustBuild()
	b.Compute(999, 0)
	k2 := b.MustBuild()
	if k1.VALUPerWI == k2.VALUPerWI {
		t.Error("builder mutation leaked into previously built kernel")
	}
}

func TestPhasesInstalled(t *testing.T) {
	k := NewKernel("t.phase").Phases(func(iter int) Phase {
		return Phase{WorkScale: float64(iter + 1), Divergence: -1, FetchScale: 1}
	}).MustBuild()
	if k.PhaseFor(3).WorkScale != 4 {
		t.Error("phase function not installed")
	}
}

func TestTemplatesMatchTheirArchetypes(t *testing.T) {
	stream := Streaming("t.stream").MustBuild()
	compute := ComputeHeavy("t.compute").MustBuild()
	chase := PointerChase("t.chase").MustBuild()

	if stream.DemandOpsPerByte() >= compute.DemandOpsPerByte() {
		t.Error("streaming template demands more ops/byte than compute template")
	}
	if compute.DemandOpsPerByte() < 100 {
		t.Errorf("compute template ops/byte = %v, want large", compute.DemandOpsPerByte())
	}
	if chase.L2Thrash < 0.4 {
		t.Errorf("pointer-chase template thrash = %v, want strong", chase.L2Thrash)
	}
	if chase.Divergence <= 0 {
		t.Error("pointer-chase template should diverge")
	}
	for _, k := range []*Kernel{stream, compute, chase} {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}
