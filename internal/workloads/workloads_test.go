package workloads

import (
	"math"
	"strings"
	"testing"

	"harmonia/internal/hw"
)

func TestSuiteComposition(t *testing.T) {
	suite := Suite()
	if len(suite) != 14 {
		t.Fatalf("suite has %d applications, want 14 (Section 6)", len(suite))
	}
	names := map[string]bool{}
	for _, a := range suite {
		if names[a.Name] {
			t.Errorf("duplicate application %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"CoMD", "XSBench", "miniFE", "Graph500", "BPT", "CFD", "LUD",
		"SRAD", "Streamcluster", "Stencil", "Sort", "SPMV", "MaxFlops", "DeviceMemory",
	} {
		if !names[want] {
			t.Errorf("suite missing %q", want)
		}
	}
}

func TestSuiteValidates(t *testing.T) {
	for _, a := range Suite() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestKernelCountNearPaper(t *testing.T) {
	n := len(AllKernels())
	// The paper uses 25 kernels; our catalog has 26.
	if n < 24 || n > 28 {
		t.Errorf("suite has %d kernels, want about 25", n)
	}
	seen := map[string]bool{}
	for _, k := range AllKernels() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
		if !strings.Contains(k.Name, ".") {
			t.Errorf("kernel name %q not in App.Kernel form", k.Name)
		}
	}
}

func TestStressClassification(t *testing.T) {
	if !MaxFlops().Stress || !DeviceMemory().Stress {
		t.Error("MaxFlops and DeviceMemory must be marked as stress benchmarks")
	}
	ns := NonStress()
	if len(ns) != 12 {
		t.Errorf("NonStress has %d apps, want 12", len(ns))
	}
	for _, a := range ns {
		if a.Stress {
			t.Errorf("stress app %q in NonStress", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("Graph500") == nil {
		t.Error("ByName(Graph500) = nil")
	}
	if ByName("NoSuchApp") != nil {
		t.Error("ByName of unknown app should be nil")
	}
}

func TestSortBottomScanOccupancy(t *testing.T) {
	// Section 3.5: 66 VGPRs -> only 3 waves per SIMD -> 30% occupancy.
	k := findKernel(t, "Sort.BottomScan")
	if k.VGPRs != 66 {
		t.Errorf("BottomScan VGPRs = %d, want 66", k.VGPRs)
	}
	if waves := k.OccupancyWaves(); waves != 3 {
		t.Errorf("BottomScan occupancy waves = %d, want 3", waves)
	}
	if occ := k.Occupancy(); math.Abs(occ-0.3) > 1e-9 {
		t.Errorf("BottomScan occupancy = %v, want 0.30", occ)
	}
	// Section 3.5: only 6% branch divergence.
	if k.Divergence != 0.06 {
		t.Errorf("BottomScan divergence = %v, want 0.06", k.Divergence)
	}
}

func TestCoMDAdvanceVelocityOccupancy(t *testing.T) {
	// Figure 7: AdvanceVelocity has 100% kernel occupancy.
	k := findKernel(t, "CoMD.AdvanceVelocity")
	if occ := k.Occupancy(); occ != 1.0 {
		t.Errorf("AdvanceVelocity occupancy = %v, want 1.0", occ)
	}
}

func TestSRADPrepareCharacteristics(t *testing.T) {
	// Figure 8: 75% divergence, only 8 ALU instructions.
	k := findKernel(t, "SRAD.Prepare")
	if k.Divergence != 0.75 {
		t.Errorf("SRAD.Prepare divergence = %v, want 0.75", k.Divergence)
	}
	if k.VALUPerWI != 8 {
		t.Errorf("SRAD.Prepare VALU/WI = %v, want 8", k.VALUPerWI)
	}
}

func TestThrashingApps(t *testing.T) {
	// Section 7.1: BPT, CFD, XSBench gain performance under CU gating
	// due to cache interference; their kernels need meaningful thrash.
	for _, name := range []string{"BPT.FindK", "CFD.ComputeFlux", "XSBench.Lookup"} {
		k := findKernel(t, name)
		if k.L2Thrash < 0.4 {
			t.Errorf("%s L2Thrash = %v, expected strong (>0.4)", name, k.L2Thrash)
		}
	}
	// MaxFlops must not thrash.
	if k := findKernel(t, "MaxFlops.Main"); k.L2Thrash != 0 {
		t.Errorf("MaxFlops thrash = %v, want 0", k.L2Thrash)
	}
}

func TestXSBenchIterations(t *testing.T) {
	// Section 7.2: XSBench executes only 2 iterations per kernel.
	if got := ByName("XSBench").Iterations; got != 2 {
		t.Errorf("XSBench iterations = %d, want 2", got)
	}
}

func TestGraph500PhaseBehaviour(t *testing.T) {
	k := findKernel(t, "Graph500.BottomStepUp")
	if k.Phases == nil {
		t.Fatal("BottomStepUp must have phase modulation (Figure 14)")
	}
	// Work volume must vary several-fold across iterations.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 8; i++ {
		p := k.PhaseFor(i)
		lo = math.Min(lo, p.WorkScale)
		hi = math.Max(hi, p.WorkScale)
		if d := k.DivergenceFor(p); d < 0.3 {
			t.Errorf("iteration %d divergence %v; BFS stays divergent", i, d)
		}
	}
	if hi/lo < 4 {
		t.Errorf("frontier work swing = %.1fx, want >4x (Figure 14)", hi/lo)
	}
}

func TestPhaseForDefaults(t *testing.T) {
	k := findKernel(t, "MaxFlops.Main")
	p := k.PhaseFor(3)
	if p.WorkScale != 1 || p.FetchScale != 1 {
		t.Errorf("nominal phase = %+v", p)
	}
	if got := k.DivergenceFor(p); got != k.Divergence {
		t.Errorf("DivergenceFor nominal = %v, want %v", got, k.Divergence)
	}
}

func TestDemandOpsPerByteOrdering(t *testing.T) {
	// MaxFlops must demand far more ops/byte than DeviceMemory; LUD's
	// dominant kernel should sit in between and above DeviceMemory.
	mf := findKernel(t, "MaxFlops.Main").DemandOpsPerByte()
	dm := findKernel(t, "DeviceMemory.Stream").DemandOpsPerByte()
	lud := findKernel(t, "LUD.Internal").DemandOpsPerByte()
	if !(mf > lud && lud > dm) {
		t.Errorf("ops/byte ordering wrong: MaxFlops=%.1f LUD=%.1f DeviceMemory=%.1f", mf, lud, dm)
	}
	if dm > 5 {
		t.Errorf("DeviceMemory demand = %.2f ops/byte, expected low (memory bound)", dm)
	}
}

func TestValidationCatchesBadDescriptors(t *testing.T) {
	good := *findKernel(t, "MaxFlops.Main")
	cases := []func(*Kernel){
		func(k *Kernel) { k.Name = "" },
		func(k *Kernel) { k.WorkgroupSize = 0 },
		func(k *Kernel) { k.Workgroups = 0 },
		func(k *Kernel) { k.Divergence = 1.5 },
		func(k *Kernel) { k.L2Hit = -0.1 },
		func(k *Kernel) { k.VGPRs = 500 },
		func(k *Kernel) { k.MLPPerWave = 0 },
		func(k *Kernel) { k.LDSBytes = 1 << 20 },
	}
	for i, mutate := range cases {
		k := good
		mutate(&k)
		if err := k.Validate(); err == nil {
			t.Errorf("case %d: bad kernel accepted", i)
		}
	}
	app := Application{Name: "x", Kernels: []*Kernel{&good}, Iterations: 0}
	if err := app.Validate(); err == nil {
		t.Error("zero-iteration app accepted")
	}
	app = Application{Name: "", Kernels: []*Kernel{&good}, Iterations: 1}
	if err := app.Validate(); err == nil {
		t.Error("unnamed app accepted")
	}
	app = Application{Name: "x", Iterations: 1}
	if err := app.Validate(); err == nil {
		t.Error("kernel-less app accepted")
	}
}

func TestOccupancyLimiters(t *testing.T) {
	base := Kernel{
		Name: "t.k", WorkgroupSize: 256, Workgroups: 10,
		MLPPerWave: 1,
	}
	// No limits: full 10 waves.
	if w := base.OccupancyWaves(); w != hw.MaxWavesPerSIMD {
		t.Errorf("unlimited waves = %d, want %d", w, hw.MaxWavesPerSIMD)
	}
	// VGPR limited.
	k := base
	k.VGPRs = 128
	if w := k.OccupancyWaves(); w != 2 {
		t.Errorf("VGPR-128 waves = %d, want 2", w)
	}
	// LDS limited: one workgroup (4 waves) per CU -> 1 wave per SIMD.
	k = base
	k.LDSBytes = hw.LDSBytesPerCU
	if w := k.OccupancyWaves(); w != 1 {
		t.Errorf("full-LDS waves = %d, want 1", w)
	}
	// Never below 1.
	k = base
	k.VGPRs = 256
	if w := k.OccupancyWaves(); w != 1 {
		t.Errorf("VGPR-256 waves = %d, want 1", w)
	}
}

func TestKernelNames(t *testing.T) {
	a := LUD()
	names := a.KernelNames()
	if len(names) != 3 || names[0] != "LUD.Diagonal" || names[2] != "LUD.Internal" {
		t.Errorf("KernelNames = %v", names)
	}
}

func findKernel(t *testing.T, name string) *Kernel {
	t.Helper()
	for _, k := range AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %q not in catalog", name)
	return nil
}
