package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigSpaceSize(t *testing.T) {
	space := ConfigSpace()
	if len(space) != NumConfigs() {
		t.Fatalf("ConfigSpace has %d entries, NumConfigs says %d", len(space), NumConfigs())
	}
	// The paper describes "approximately 450" configurations; the exact
	// grid is 8 CU counts x 8 compute freqs x 7 memory freqs = 448.
	if len(space) != 448 {
		t.Fatalf("expected 448 configurations, got %d", len(space))
	}
}

func TestConfigSpaceAllValidAndUnique(t *testing.T) {
	seen := make(map[Config]bool)
	for _, c := range ConfigSpace() {
		if !c.Valid() {
			t.Errorf("invalid configuration in space: %v", c)
		}
		if seen[c] {
			t.Errorf("duplicate configuration in space: %v", c)
		}
		seen[c] = true
	}
}

func TestTunableGrids(t *testing.T) {
	if got := CUCounts(); len(got) != 8 || got[0] != 4 || got[7] != 32 {
		t.Errorf("CUCounts = %v", got)
	}
	if got := CUFreqs(); len(got) != 8 || got[0] != 300 || got[7] != 1000 {
		t.Errorf("CUFreqs = %v", got)
	}
	if got := MemFreqs(); len(got) != 7 || got[0] != 475 || got[6] != 1375 {
		t.Errorf("MemFreqs = %v", got)
	}
}

func TestBandwidthEndpoints(t *testing.T) {
	lo := MemConfig{BusFreq: MinMemFreq}.BandwidthGBs()
	hi := MemConfig{BusFreq: MaxMemFreq}.BandwidthGBs()
	// Paper: 90 GB/s at 475 MHz (91.2 exact), 264 GB/s at 1375 MHz.
	if math.Abs(hi-264) > 0.5 {
		t.Errorf("max bandwidth = %.1f GB/s, want 264", hi)
	}
	if math.Abs(lo-91.2) > 0.5 {
		t.Errorf("min bandwidth = %.1f GB/s, want ~91", lo)
	}
}

func TestBandwidthStep(t *testing.T) {
	// Each 150 MHz step should move bandwidth by about 30 GB/s.
	freqs := MemFreqs()
	for i := 1; i < len(freqs); i++ {
		d := MemConfig{BusFreq: freqs[i]}.BandwidthGBs() - MemConfig{BusFreq: freqs[i-1]}.BandwidthGBs()
		if math.Abs(d-28.8) > 0.1 {
			t.Errorf("bandwidth step %v->%v = %.2f GB/s, want 28.8", freqs[i-1], freqs[i], d)
		}
	}
}

func TestCoreVoltageAnchors(t *testing.T) {
	for _, s := range DPMTable {
		if got := CoreVoltage(s.Freq); math.Abs(got-s.Voltage) > 1e-9 {
			t.Errorf("CoreVoltage(%v) = %v, want %v (%s)", s.Freq, got, s.Voltage, s.Name)
		}
	}
}

func TestCoreVoltageMonotone(t *testing.T) {
	prev := 0.0
	for f := MinCUFreq; f <= MaxCUFreq; f += CUFreqStep {
		v := CoreVoltage(f)
		if v < prev {
			t.Errorf("voltage not monotone at %v: %v < %v", f, v, prev)
		}
		if v < 0.84 || v > 1.20 {
			t.Errorf("voltage out of plausible range at %v: %v", f, v)
		}
		prev = v
	}
}

func TestCoreVoltageClamps(t *testing.T) {
	if got := CoreVoltage(100); got != 0.85 {
		t.Errorf("below-range voltage = %v, want 0.85", got)
	}
	if got := CoreVoltage(1200); got != 1.19 {
		t.Errorf("above-range voltage = %v, want 1.19", got)
	}
}

func TestPeakGFLOPS(t *testing.T) {
	// 32 CU x 4 SIMD x 16 lanes x 2 flops x 1 GHz = 4096 GFLOPS
	// (Section 2.2 of the paper).
	max := MaxConfig().Compute.PeakGFLOPS()
	if math.Abs(max-4096) > 1e-9 {
		t.Errorf("peak GFLOPS = %v, want 4096", max)
	}
}

func TestOpsPerByteRange(t *testing.T) {
	lo := MinConfig().OpsPerByte()
	hi := Config{
		Compute: ComputeConfig{CUs: MaxCUs, Freq: MaxCUFreq},
		Memory:  MemConfig{BusFreq: MinMemFreq},
	}.OpsPerByte()
	if lo >= hi {
		t.Fatalf("ops/byte range inverted: lo=%v hi=%v", lo, hi)
	}
	if lo < 0.5 || lo > 2 {
		t.Errorf("min config ops/byte = %v, expected order ~1", lo)
	}
	if hi < 15 || hi > 30 {
		t.Errorf("max-compute/min-memory ops/byte = %v, expected ~22", hi)
	}
}

func TestStepFunctions(t *testing.T) {
	c := MinConfig()
	if _, ok := StepCUs(c, Down); ok {
		t.Error("StepCUs below minimum should fail")
	}
	c2, ok := StepCUs(c, Up)
	if !ok || c2.Compute.CUs != MinCUs+CUStep {
		t.Errorf("StepCUs up = %v, ok=%v", c2, ok)
	}
	c = MaxConfig()
	if _, ok := StepCUFreq(c, Up); ok {
		t.Error("StepCUFreq above maximum should fail")
	}
	c2, ok = StepMemFreq(c, Down)
	if !ok || c2.Memory.BusFreq != MaxMemFreq-MemFreqStep {
		t.Errorf("StepMemFreq down = %v, ok=%v", c2, ok)
	}
}

func TestTunableStepMatchesSpecificSteps(t *testing.T) {
	c := Config{Compute: ComputeConfig{CUs: 16, Freq: 600}, Memory: MemConfig{BusFreq: 925}}
	for _, tu := range Tunables() {
		up, okUp := tu.Step(c, Up)
		down, okDown := tu.Step(c, Down)
		if !okUp || !okDown {
			t.Fatalf("%v: interior step should succeed", tu)
		}
		if tu.Value(up) <= tu.Value(c) || tu.Value(down) >= tu.Value(c) {
			t.Errorf("%v: step direction wrong: down=%d cur=%d up=%d",
				tu, tu.Value(down), tu.Value(c), tu.Value(up))
		}
		// Stepping must not disturb the other tunables.
		for _, other := range Tunables() {
			if other == tu {
				continue
			}
			if other.Value(up) != other.Value(c) || other.Value(down) != other.Value(c) {
				t.Errorf("%v: stepping changed %v", tu, other)
			}
		}
	}
}

func TestTunableLevelRoundTrip(t *testing.T) {
	for _, tu := range Tunables() {
		for lvl := 0; lvl < tu.Levels(); lvl++ {
			c := tu.WithLevel(MinConfig(), lvl)
			if got := tu.LevelFor(c); got != lvl {
				t.Errorf("%v: LevelFor(WithLevel(%d)) = %d", tu, lvl, got)
			}
			if !c.Valid() {
				t.Errorf("%v: WithLevel(%d) produced invalid config %v", tu, lvl, c)
			}
		}
	}
}

func TestTunableWithLevelClamps(t *testing.T) {
	for _, tu := range Tunables() {
		lo := tu.WithLevel(MinConfig(), -5)
		hi := tu.WithLevel(MinConfig(), 1000)
		if tu.LevelFor(lo) != 0 {
			t.Errorf("%v: negative level not clamped to 0", tu)
		}
		if tu.LevelFor(hi) != tu.Levels()-1 {
			t.Errorf("%v: oversized level not clamped to max", tu)
		}
	}
}

// Property: ops/byte is monotone increasing in compute throughput and
// monotone decreasing in memory bandwidth.
func TestOpsPerByteMonotonicityProperty(t *testing.T) {
	f := func(cuLvl, cfLvl, mfLvl uint8) bool {
		c := MinConfig()
		c = TunableCUs.WithLevel(c, int(cuLvl)%TunableCUs.Levels())
		c = TunableCUFreq.WithLevel(c, int(cfLvl)%TunableCUFreq.Levels())
		c = TunableMemFreq.WithLevel(c, int(mfLvl)%TunableMemFreq.Levels())

		if up, ok := StepCUs(c, Up); ok && up.OpsPerByte() <= c.OpsPerByte() {
			return false
		}
		if up, ok := StepCUFreq(c, Up); ok && up.OpsPerByte() <= c.OpsPerByte() {
			return false
		}
		if up, ok := StepMemFreq(c, Up); ok && up.OpsPerByte() >= c.OpsPerByte() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: voltage is non-decreasing in frequency across arbitrary pairs.
func TestVoltageMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		fa, fb := MHz(a%1400), MHz(b%1400)
		if fa > fb {
			fa, fb = fb, fa
		}
		return CoreVoltage(fa) <= CoreVoltage(fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	c := MaxConfig()
	if got := c.String(); got != "32CU@1000MHz/mem@1375MHz(264GB/s)" {
		t.Errorf("Config.String() = %q", got)
	}
	if got := TunableMemFreq.String(); got != "MemFreq" {
		t.Errorf("Tunable.String() = %q", got)
	}
}
