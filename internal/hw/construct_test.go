package hw

import "testing"

func TestNewConfigSnapsToGrid(t *testing.T) {
	cases := []struct {
		cus           int
		cuF, memF     MHz
		wantCUs       int
		wantF, wantMF MHz
	}{
		{16, 700, 925, 16, 700, 925},   // already on grid
		{17, 749, 930, 16, 700, 925},   // rounds down
		{18, 751, 1000, 20, 800, 1075}, // rounds up (18 is midpoint, rounds up)
		{0, 0, 0, MinCUs, MinCUFreq, MinMemFreq},
		{100, 5000, 5000, MaxCUs, MaxCUFreq, MaxMemFreq},
		{-4, -100, -100, MinCUs, MinCUFreq, MinMemFreq},
	}
	for _, c := range cases {
		got := NewConfig(c.cus, c.cuF, c.memF)
		if !got.Valid() {
			t.Errorf("NewConfig(%d, %v, %v) = %v, not valid", c.cus, c.cuF, c.memF, got)
		}
		want := Config{
			Compute: ComputeConfig{CUs: c.wantCUs, Freq: c.wantF},
			Memory:  MemConfig{BusFreq: c.wantMF},
		}
		if got != want {
			t.Errorf("NewConfig(%d, %v, %v) = %v, want %v", c.cus, c.cuF, c.memF, got, want)
		}
	}
}

func TestNewConfigCoversWholeSpace(t *testing.T) {
	for _, cfg := range ConfigSpace() {
		got := NewConfig(cfg.Compute.CUs, cfg.Compute.Freq, cfg.Memory.BusFreq)
		if got != cfg {
			t.Fatalf("NewConfig is not the identity on grid point %v: got %v", cfg, got)
		}
	}
}
