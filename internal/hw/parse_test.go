package hw

import (
	"testing"
	"testing/quick"
)

func TestParseConfigCompact(t *testing.T) {
	cfg, err := ParseConfig("16/700/925")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Compute: ComputeConfig{CUs: 16, Freq: 700}, Memory: MemConfig{BusFreq: 925}}
	if cfg != want {
		t.Errorf("got %v, want %v", cfg, want)
	}
}

func TestParseConfigDecorated(t *testing.T) {
	cfg, err := ParseConfig("32CU@1000MHz/mem@1375MHz(264GB/s)")
	if err != nil {
		t.Fatal(err)
	}
	if cfg != MaxConfig() {
		t.Errorf("got %v", cfg)
	}
}

func TestParseConfigWhitespace(t *testing.T) {
	cfg, err := ParseConfig("  4 / 300 / 475 ")
	if err != nil {
		t.Fatal(err)
	}
	if cfg != MinConfig() {
		t.Errorf("got %v", cfg)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"", "32/1000", "32/1000/1375/0", "a/b/c",
		"33/1000/1375",  // off-grid CUs
		"32/1050/1375",  // off-grid frequency
		"32/1000/500",   // off-grid memory
		"32CU@(900MHz)", // mangled decorated form
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}

// Property: every legal configuration round-trips through its String()
// form.
func TestParseConfigRoundTripProperty(t *testing.T) {
	space := ConfigSpace()
	f := func(idx uint16) bool {
		cfg := space[int(idx)%len(space)]
		back, err := ParseConfig(cfg.String())
		return err == nil && back == cfg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
