package hw

// Clamping constructors. These are the sanctioned way to build hardware
// operating points from numbers that did not come from the hw constants
// or enumerators: every value is snapped to the nearest legal grid
// point and clamped to the paper's tunable ranges (Section 3.1), so a
// configuration built here is always Valid. The hwenvelope analyzer
// (internal/lint) forbids raw tunable literals everywhere else in the
// module, making this file plus the constants the envelope's single
// source of truth.

// snap rounds v to the nearest point of the arithmetic grid
// [min, min+step, ..., max], clamping at the ends.
func snap(v, min, max, step int) int {
	if v <= min {
		return min
	}
	if v >= max {
		return max
	}
	k := (v - min + step/2) / step
	return min + k*step
}

// NewComputeConfig returns the compute configuration with the CU count
// and frequency snapped to the legal grid.
func NewComputeConfig(cus int, freq MHz) ComputeConfig {
	return ComputeConfig{
		CUs:  snap(cus, MinCUs, MaxCUs, CUStep),
		Freq: MHz(snap(int(freq), int(MinCUFreq), int(MaxCUFreq), int(CUFreqStep))),
	}
}

// NewMemConfig returns the memory configuration with the bus frequency
// snapped to the legal grid.
func NewMemConfig(busFreq MHz) MemConfig {
	return MemConfig{
		BusFreq: MHz(snap(int(busFreq), int(MinMemFreq), int(MaxMemFreq), int(MemFreqStep))),
	}
}

// NewConfig returns the full configuration with all three tunables
// snapped to the legal grid.
func NewConfig(cus int, cuFreq, memFreq MHz) Config {
	return Config{
		Compute: NewComputeConfig(cus, cuFreq),
		Memory:  NewMemConfig(memFreq),
	}
}
