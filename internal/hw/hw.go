// Package hw describes the hardware platform Harmonia manages: the three
// hardware tunables (active compute-unit count, compute frequency, and
// memory bus frequency), their legal values on an AMD Radeon HD 7970-class
// GPU, the DVFS voltage tables, and the enumerable space of roughly 450
// combined compute/memory configurations that the paper's policies search.
//
// Everything here is pure data and arithmetic: no simulation and no power
// modelling. The timing simulator (internal/gpusim) and the power model
// (internal/power) both consume these types.
package hw

import "fmt"

// MHz is a clock frequency in megahertz.
type MHz int

// GHz returns the frequency in gigahertz.
func (f MHz) GHz() float64 { return float64(f) / 1000 }

// Hz returns the frequency in hertz.
func (f MHz) Hz() float64 { return float64(f) * 1e6 }

func (f MHz) String() string { return fmt.Sprintf("%dMHz", int(f)) }

// Platform constants for the AMD Radeon HD 7970 ("Tahiti", GCN) used as
// the paper's test bed (Section 2.2).
const (
	// MaxCUs is the total number of compute units on the chip.
	MaxCUs = 32
	// MinCUs is the smallest number of CUs the paper's methodology
	// enables (Section 3.1).
	MinCUs = 4
	// CUStep is the granularity at which CUs are enabled/power-gated.
	CUStep = 4

	// SIMDsPerCU is the number of SIMD vector units per compute unit.
	SIMDsPerCU = 4
	// LanesPerSIMD is the number of processing elements (ALUs) per SIMD.
	LanesPerSIMD = 16
	// WavefrontSize is the number of work-items per wavefront.
	WavefrontSize = 64
	// MaxWavesPerSIMD is the architectural limit on in-flight wavefronts
	// per SIMD unit.
	MaxWavesPerSIMD = 10

	// VGPRsPerSIMD is the vector register file capacity, in registers
	// per work-item slot, available to one SIMD (256 per wavefront lane).
	VGPRsPerSIMD = 256
	// SGPRsPerCU is the scalar register file capacity per CU. The paper
	// normalizes kernel SGPR usage by 102 (Table 2).
	SGPRsPerCU = 512
	// MaxSGPRsPerWave is the per-wavefront scalar register allocation
	// limit used for normalization in Table 2.
	MaxSGPRsPerWave = 102

	// LDSBytesPerCU is the local data share (scratchpad) per CU.
	LDSBytesPerCU = 64 * 1024
	// L1BytesPerCU is the per-CU L1 data cache size.
	L1BytesPerCU = 16 * 1024
	// L2Bytes is the shared L2 cache size.
	L2Bytes = 768 * 1024

	// MemChannels is the number of 64-bit dual-channel GDDR5 memory
	// controllers.
	MemChannels = 6
	// BusWidthBits is the total memory bus width in bits.
	BusWidthBits = MemChannels * 64
	// GDDR5TransferRate is the number of data transfers per bus-clock
	// cycle for GDDR5 (quad data rate relative to the command clock the
	// paper calls "memory bus frequency").
	GDDR5TransferRate = 4

	// CacheLineBytes is the transaction granularity between L2 and DRAM.
	CacheLineBytes = 64
)

// Compute frequency range (Section 3.1): 300 MHz to 1 GHz in 100 MHz steps.
const (
	MinCUFreq  MHz = 300
	MaxCUFreq  MHz = 1000
	CUFreqStep MHz = 100
)

// Memory bus frequency range (Section 3.1): 475 MHz (90 GB/s) to
// 1375 MHz (264 GB/s) in 150 MHz (30 GB/s) steps.
const (
	MinMemFreq  MHz = 475
	MaxMemFreq  MHz = 1375
	MemFreqStep MHz = 150
)

// DPMState is one entry of the stock PowerTune DVFS table (Table 1).
type DPMState struct {
	Name    string
	Freq    MHz
	Voltage float64 // volts
}

// DPMTable is the published AMD HD 7970 GPU DVFS table (Table 1) plus the
// 1 GHz boost state at 1.19 V mentioned in Section 2.3. Harmonia's 100 MHz
// sweep grid interpolates voltages between these anchor points.
var DPMTable = []DPMState{
	{Name: "DPM0", Freq: 300, Voltage: 0.85},
	{Name: "DPM1", Freq: 500, Voltage: 0.95},
	{Name: "DPM2", Freq: 925, Voltage: 1.17},
	{Name: "Boost", Freq: 1000, Voltage: 1.19},
}

// MemVoltage is the fixed memory interface voltage. The paper's platform
// could not scale the memory rail (Sections 3.3, 6), so all memory bus
// frequencies run at this voltage.
const MemVoltage = 1.5

// CoreVoltage returns the GPU core voltage for a compute frequency,
// linearly interpolating between the DPM anchor points of Table 1.
// Frequencies below DPM0 clamp to 0.85 V; above boost clamp to 1.19 V.
func CoreVoltage(f MHz) float64 {
	t := DPMTable
	if f <= t[0].Freq {
		return t[0].Voltage
	}
	for i := 1; i < len(t); i++ {
		if f <= t[i].Freq {
			lo, hi := t[i-1], t[i]
			frac := float64(f-lo.Freq) / float64(hi.Freq-lo.Freq)
			return lo.Voltage + frac*(hi.Voltage-lo.Voltage)
		}
	}
	return t[len(t)-1].Voltage
}

// ComputeConfig is a setting of the GPU-side tunables: the number of
// active (non-power-gated) CUs and the common CU clock frequency
// (Section 3.1 calls this the "compute configuration").
type ComputeConfig struct {
	CUs  int
	Freq MHz
}

// Valid reports whether the compute configuration lies on the legal grid.
func (c ComputeConfig) Valid() bool {
	return c.CUs >= MinCUs && c.CUs <= MaxCUs && c.CUs%CUStep == 0 &&
		c.Freq >= MinCUFreq && c.Freq <= MaxCUFreq && (c.Freq-MinCUFreq)%CUFreqStep == 0
}

// Voltage returns the core voltage for this configuration's frequency.
func (c ComputeConfig) Voltage() float64 { return CoreVoltage(c.Freq) }

// PeakGFLOPS returns the single-precision FMA throughput of the
// configuration in GFLOP/s (two floating-point operations per FMA lane
// per cycle).
func (c ComputeConfig) PeakGFLOPS() float64 {
	lanes := float64(c.CUs * SIMDsPerCU * LanesPerSIMD)
	return lanes * 2 * c.Freq.GHz()
}

// PeakGOPS returns peak vector operation issue throughput in Gops/s
// (one vector instruction slot per lane per cycle).
func (c ComputeConfig) PeakGOPS() float64 {
	lanes := float64(c.CUs * SIMDsPerCU * LanesPerSIMD)
	return lanes * c.Freq.GHz()
}

func (c ComputeConfig) String() string {
	return fmt.Sprintf("%dCU@%v", c.CUs, c.Freq)
}

// MemConfig is a setting of the memory-side tunable: the memory bus
// frequency, which drives the memory controllers, the GDDR5 PHYs, and the
// DRAM devices (Section 2.4 calls this the "memory configuration").
type MemConfig struct {
	BusFreq MHz
}

// Valid reports whether the memory configuration lies on the legal grid.
func (m MemConfig) Valid() bool {
	return m.BusFreq >= MinMemFreq && m.BusFreq <= MaxMemFreq &&
		(m.BusFreq-MinMemFreq)%MemFreqStep == 0
}

// BandwidthGBs returns the peak DRAM bandwidth in GB/s delivered at this
// bus frequency: freq × transfer rate × bus width (Eq. 2 of the paper).
// At 1375 MHz this is 264 GB/s; at 475 MHz it is about 91 GB/s, which the
// paper rounds to 90 GB/s.
func (m MemConfig) BandwidthGBs() float64 {
	return m.BusFreq.GHz() * GDDR5TransferRate * (BusWidthBits / 8)
}

func (m MemConfig) String() string {
	return fmt.Sprintf("mem@%v(%.0fGB/s)", m.BusFreq, m.BandwidthGBs())
}

// Config is a full hardware configuration: one compute configuration plus
// one memory configuration. Each Config corresponds to a specific value of
// platform ops/byte and a specific balance between compute and memory
// power (Section 3.1).
type Config struct {
	Compute ComputeConfig
	Memory  MemConfig
}

// Valid reports whether both halves lie on the legal grid.
func (c Config) Valid() bool { return c.Compute.Valid() && c.Memory.Valid() }

// OpsPerByte returns the hardware-delivered operation intensity of the
// configuration: peak vector operations per second divided by peak memory
// bandwidth. It is the x-axis of the paper's balance plots (Figure 3).
func (c Config) OpsPerByte() float64 {
	return c.Compute.PeakGOPS() / c.Memory.BandwidthGBs()
}

func (c Config) String() string {
	return c.Compute.String() + "/" + c.Memory.String()
}

// MinConfig returns the minimum hardware configuration the paper
// normalizes against (4 CUs, 300 MHz compute, 90 GB/s memory).
func MinConfig() Config {
	return Config{
		Compute: ComputeConfig{CUs: MinCUs, Freq: MinCUFreq},
		Memory:  MemConfig{BusFreq: MinMemFreq},
	}
}

// MaxConfig returns the maximum hardware configuration (32 CUs, 1 GHz,
// 264 GB/s), which is also the stock PowerTune operating point when
// thermal headroom is available (Section 7.1).
func MaxConfig() Config {
	return Config{
		Compute: ComputeConfig{CUs: MaxCUs, Freq: MaxCUFreq},
		Memory:  MemConfig{BusFreq: MaxMemFreq},
	}
}

// CUCounts returns the legal active-CU counts in increasing order.
func CUCounts() []int {
	out := make([]int, 0, (MaxCUs-MinCUs)/CUStep+1)
	for n := MinCUs; n <= MaxCUs; n += CUStep {
		out = append(out, n)
	}
	return out
}

// CUFreqs returns the legal compute frequencies in increasing order.
func CUFreqs() []MHz {
	out := make([]MHz, 0, int(MaxCUFreq-MinCUFreq)/int(CUFreqStep)+1)
	for f := MinCUFreq; f <= MaxCUFreq; f += CUFreqStep {
		out = append(out, f)
	}
	return out
}

// MemFreqs returns the legal memory bus frequencies in increasing order.
func MemFreqs() []MHz {
	out := make([]MHz, 0, int(MaxMemFreq-MinMemFreq)/int(MemFreqStep)+1)
	for f := MinMemFreq; f <= MaxMemFreq; f += MemFreqStep {
		out = append(out, f)
	}
	return out
}

// ConfigSpace returns every legal hardware configuration, ordered by
// CU count, then compute frequency, then memory frequency. The paper
// describes this space as "approximately 450" points (Section 3.1); the
// exact count is 8 × 8 × 7 = 448.
func ConfigSpace() []Config {
	// The axis slices are hoisted out of the nested loops: rebuilding
	// MemFreqs per (CU count, compute freq) pair used to dominate the
	// allocation profile of every uncached oracle sweep.
	cus, cfreqs, mfreqs := CUCounts(), CUFreqs(), MemFreqs()
	space := make([]Config, 0, NumConfigs())
	for _, n := range cus {
		for _, cf := range cfreqs {
			for _, mf := range mfreqs {
				space = append(space, Config{
					Compute: ComputeConfig{CUs: n, Freq: cf},
					Memory:  MemConfig{BusFreq: mf},
				})
			}
		}
	}
	return space
}

// NumConfigs returns the size of the configuration space.
func NumConfigs() int {
	return len(CUCounts()) * len(CUFreqs()) * len(MemFreqs())
}

// Step direction for tunable adjustment.
const (
	// Down moves a tunable one step toward lower power.
	Down = -1
	// Up moves a tunable one step toward higher power.
	Up = +1
)

// StepCUs returns the configuration with the active-CU count moved one
// step in the given direction, clamped to the legal range. The returned
// bool is false when the value was already at the boundary.
func StepCUs(c Config, dir int) (Config, bool) {
	n := c.Compute.CUs + dir*CUStep
	if n < MinCUs || n > MaxCUs {
		return c, false
	}
	c.Compute.CUs = n
	return c, true
}

// StepCUFreq returns the configuration with the compute frequency moved
// one step in the given direction, clamped to the legal range.
func StepCUFreq(c Config, dir int) (Config, bool) {
	f := c.Compute.Freq + MHz(dir)*CUFreqStep
	if f < MinCUFreq || f > MaxCUFreq {
		return c, false
	}
	c.Compute.Freq = f
	return c, true
}

// StepMemFreq returns the configuration with the memory bus frequency
// moved one step in the given direction, clamped to the legal range.
func StepMemFreq(c Config, dir int) (Config, bool) {
	f := c.Memory.BusFreq + MHz(dir)*MemFreqStep
	if f < MinMemFreq || f > MaxMemFreq {
		return c, false
	}
	c.Memory.BusFreq = f
	return c, true
}

// Tunable identifies one of the three hardware tunables Harmonia manages.
type Tunable int

const (
	// TunableCUs is the active compute-unit count.
	TunableCUs Tunable = iota
	// TunableCUFreq is the compute (CU) clock frequency.
	TunableCUFreq
	// TunableMemFreq is the memory bus frequency.
	TunableMemFreq
	// NumTunables is the number of tunables.
	NumTunables
)

func (t Tunable) String() string {
	switch t {
	case TunableCUs:
		return "CUs"
	case TunableCUFreq:
		return "CUFreq"
	case TunableMemFreq:
		return "MemFreq"
	default:
		return fmt.Sprintf("Tunable(%d)", int(t))
	}
}

// Step moves the given tunable of c one step in direction dir, clamping at
// the grid boundary. The bool is false if no movement was possible.
func (t Tunable) Step(c Config, dir int) (Config, bool) {
	switch t {
	case TunableCUs:
		return StepCUs(c, dir)
	case TunableCUFreq:
		return StepCUFreq(c, dir)
	case TunableMemFreq:
		return StepMemFreq(c, dir)
	default:
		return c, false
	}
}

// Value returns the current scalar value of the tunable in c (CU count, or
// frequency in MHz).
func (t Tunable) Value(c Config) int {
	switch t {
	case TunableCUs:
		return c.Compute.CUs
	case TunableCUFreq:
		return int(c.Compute.Freq)
	case TunableMemFreq:
		return int(c.Memory.BusFreq)
	default:
		return 0
	}
}

// Levels returns the number of grid points for the tunable.
func (t Tunable) Levels() int {
	switch t {
	case TunableCUs:
		return len(CUCounts())
	case TunableCUFreq:
		return len(CUFreqs())
	case TunableMemFreq:
		return len(MemFreqs())
	default:
		return 0
	}
}

// LevelFor returns the zero-based grid index of the tunable's value in c
// (0 = lowest power).
func (t Tunable) LevelFor(c Config) int {
	switch t {
	case TunableCUs:
		return (c.Compute.CUs - MinCUs) / CUStep
	case TunableCUFreq:
		return int(c.Compute.Freq-MinCUFreq) / int(CUFreqStep)
	case TunableMemFreq:
		return int(c.Memory.BusFreq-MinMemFreq) / int(MemFreqStep)
	default:
		return 0
	}
}

// WithLevel returns c with the tunable set to the grid point at the given
// zero-based index, clamped to the legal range.
func (t Tunable) WithLevel(c Config, level int) Config {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	level = clamp(level, 0, t.Levels()-1)
	switch t {
	case TunableCUs:
		c.Compute.CUs = MinCUs + level*CUStep
	case TunableCUFreq:
		c.Compute.Freq = MinCUFreq + MHz(level)*CUFreqStep
	case TunableMemFreq:
		c.Memory.BusFreq = MinMemFreq + MHz(level)*MemFreqStep
	}
	return c
}

// Tunables lists all three tunables in a stable order.
func Tunables() []Tunable {
	return []Tunable{TunableCUs, TunableCUFreq, TunableMemFreq}
}
