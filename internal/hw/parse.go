package hw

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseConfig parses the compact configuration syntax used by the
// command-line tools: "<cus>/<cufreq>/<memfreq>", e.g. "32/1000/1375" or
// "16/700/925". It also accepts the String() form
// ("32CU@1000MHz/mem@1375MHz(264GB/s)") so round-trips work.
func ParseConfig(s string) (Config, error) {
	orig := s
	// Strip the decorated form down to the three numbers.
	s = strings.TrimSpace(s)
	if strings.Contains(s, "CU@") {
		s = strings.ReplaceAll(s, "CU@", "/")
		s = strings.ReplaceAll(s, "mem@", "")
		s = strings.ReplaceAll(s, "MHz", "")
		if i := strings.IndexByte(s, '('); i >= 0 {
			j := strings.IndexByte(s, ')')
			if j < i {
				return Config{}, fmt.Errorf("hw: malformed config %q", orig)
			}
			s = s[:i] + s[j+1:]
		}
		s = strings.ReplaceAll(s, "//", "/")
		s = strings.Trim(s, "/")
	}
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return Config{}, fmt.Errorf("hw: config %q: want <cus>/<cufreq>/<memfreq>", orig)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return Config{}, fmt.Errorf("hw: config %q: %q is not a number", orig, p)
		}
		nums[i] = v
	}
	cfg := Config{
		Compute: ComputeConfig{CUs: nums[0], Freq: MHz(nums[1])},
		Memory:  MemConfig{BusFreq: MHz(nums[2])},
	}
	if !cfg.Valid() {
		return Config{}, fmt.Errorf("hw: config %q is not on the legal grid "+
			"(CUs %d-%d step %d, compute %d-%d step %d MHz, memory %d-%d step %d MHz)",
			orig, MinCUs, MaxCUs, CUStep,
			MinCUFreq, MaxCUFreq, CUFreqStep,
			MinMemFreq, MaxMemFreq, MemFreqStep)
	}
	return cfg, nil
}
