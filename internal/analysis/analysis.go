// Package analysis provides the hardware-balance and roofline analytics
// underlying the paper's Section 3: the relationship between a kernel's
// demanded operational intensity (ops/byte) and the intensity a hardware
// configuration delivers, the classification of operating points as
// compute- or memory-bound, and the identification of balanced
// configurations — the points Harmonia's runtime seeks dynamically.
//
// The roofline construction follows Williams et al. (the paper's [51]):
// attainable throughput at intensity I is min(peak compute, I × peak
// bandwidth); the paper's "hardware balance" concept is the statement
// that a configuration is efficient for a kernel exactly when the
// kernel's intensity sits at the roofline's ridge point.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

// Boundedness classifies an operating point.
type Boundedness int

const (
	// ComputeBound: the kernel demands more ops/byte than the hardware
	// delivers — compute is the bottleneck and memory power is partially
	// wasted.
	ComputeBound Boundedness = iota
	// MemoryBound: the hardware delivers more ops/byte than the kernel
	// demands — memory is the bottleneck and compute power is partially
	// wasted.
	MemoryBound
	// Balanced: demand and delivery match within the balance tolerance.
	Balanced
)

func (b Boundedness) String() string {
	switch b {
	case ComputeBound:
		return "compute-bound"
	case MemoryBound:
		return "memory-bound"
	case Balanced:
		return "balanced"
	default:
		return "unknown"
	}
}

// BalanceTolerance is the relative band around equality within which an
// operating point counts as balanced.
const BalanceTolerance = 0.25

// Classify compares a kernel's demanded ops/byte with a configuration's
// delivered ops/byte (Section 3.2's balance argument).
func Classify(demand, delivered float64) Boundedness {
	if demand <= 0 || delivered <= 0 {
		return Balanced
	}
	ratio := demand / delivered
	switch {
	case ratio > 1+BalanceTolerance:
		return ComputeBound
	case ratio < 1/(1+BalanceTolerance):
		return MemoryBound
	default:
		return Balanced
	}
}

// Roofline is the attainable-throughput model of one hardware
// configuration.
type Roofline struct {
	// PeakGOPS is the configuration's vector-issue throughput ceiling.
	PeakGOPS float64
	// PeakGBs is the configuration's memory bandwidth ceiling in GB/s.
	PeakGBs float64
}

// RooflineOf builds the roofline for a configuration.
func RooflineOf(cfg hw.Config) Roofline {
	return Roofline{PeakGOPS: cfg.Compute.PeakGOPS(), PeakGBs: cfg.Memory.BandwidthGBs()}
}

// Attainable returns the attainable throughput in Gops/s at operational
// intensity I (ops/byte): min(peak compute, I × bandwidth).
func (r Roofline) Attainable(intensity float64) float64 {
	if intensity <= 0 {
		return 0
	}
	return math.Min(r.PeakGOPS, intensity*r.PeakGBs)
}

// Ridge returns the roofline's ridge point: the operational intensity at
// which the compute and memory ceilings meet. It equals the
// configuration's delivered ops/byte.
func (r Roofline) Ridge() float64 {
	if r.PeakGBs <= 0 {
		return math.Inf(1)
	}
	return r.PeakGOPS / r.PeakGBs
}

// OperatingPoint is a kernel's position against a configuration's
// roofline, measured by the simulator.
type OperatingPoint struct {
	Kernel string
	Config hw.Config
	// DemandOpsPerByte is the kernel's measured operational intensity at
	// this configuration: executed vector operations per DRAM byte.
	DemandOpsPerByte float64
	// DeliveredOpsPerByte is the configuration's ridge point.
	DeliveredOpsPerByte float64
	// AchievedGOPS is the realized vector throughput.
	AchievedGOPS float64
	// AttainableGOPS is the roofline bound at the kernel's intensity.
	AttainableGOPS float64
	// Boundedness classifies the point.
	Boundedness Boundedness
}

// Efficiency returns achieved/attainable throughput in [0, ~1].
func (p OperatingPoint) Efficiency() float64 {
	if p.AttainableGOPS <= 0 {
		return 0
	}
	return p.AchievedGOPS / p.AttainableGOPS
}

// Measure places a kernel on a configuration's roofline using the
// simulator.
func Measure(m *gpusim.Model, k *workloads.Kernel, iter int, cfg hw.Config) OperatingPoint {
	r := m.Run(k, iter, cfg)
	roof := RooflineOf(cfg)
	ops := r.Counters.VALUInsts * hw.WavefrontSize // work-item level operations
	demand := math.Inf(1)
	if r.DRAMBytes > 0 {
		demand = ops / r.DRAMBytes
	}
	achieved := ops / r.Time / 1e9
	return OperatingPoint{
		Kernel:              k.Name,
		Config:              cfg,
		DemandOpsPerByte:    demand,
		DeliveredOpsPerByte: roof.Ridge(),
		AchievedGOPS:        achieved,
		AttainableGOPS:      roof.Attainable(demand),
		Boundedness:         Classify(demand, roof.Ridge()),
	}
}

func (p OperatingPoint) String() string {
	return fmt.Sprintf("%s @ %v: demand %.1f ops/B vs ridge %.1f ops/B (%v), %.0f of %.0f Gops/s",
		p.Kernel, p.Config, p.DemandOpsPerByte, p.DeliveredOpsPerByte,
		p.Boundedness, p.AchievedGOPS, p.AttainableGOPS)
}

// BalancedConfigs returns the configurations whose delivered ops/byte
// lies within the balance tolerance of the kernel's demand at that
// configuration, sorted by ascending peak power proxy (compute throughput
// × bandwidth). These are the candidates Harmonia's coarse-grain step
// aims for.
func BalancedConfigs(m *gpusim.Model, k *workloads.Kernel, iter int) []hw.Config {
	var out []hw.Config
	for _, cfg := range hw.ConfigSpace() {
		p := Measure(m, k, iter, cfg)
		if p.Boundedness == Balanced {
			out = append(out, cfg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi := out[i].Compute.PeakGOPS() * out[i].Memory.BandwidthGBs()
		pj := out[j].Compute.PeakGOPS() * out[j].Memory.BandwidthGBs()
		return pi < pj
	})
	return out
}

// KneePoint finds the balance knee of a kernel at a fixed memory
// configuration: the smallest compute configuration reaching the given
// fraction of the best achievable performance (Figure 3's "knee of the
// curve").
func KneePoint(m *gpusim.Model, k *workloads.Kernel, memFreq hw.MHz, fraction float64) (hw.Config, bool) {
	if fraction <= 0 || fraction > 1 {
		return hw.Config{}, false
	}
	type point struct {
		cfg  hw.Config
		perf float64
	}
	var pts []point
	best := 0.0
	for _, n := range hw.CUCounts() {
		for _, f := range hw.CUFreqs() {
			cfg := hw.Config{
				Compute: hw.ComputeConfig{CUs: n, Freq: f},
				Memory:  hw.MemConfig{BusFreq: memFreq},
			}
			perf := 1 / m.Run(k, 0, cfg).Time
			pts = append(pts, point{cfg, perf})
			best = math.Max(best, perf)
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		return pts[i].cfg.OpsPerByte() < pts[j].cfg.OpsPerByte()
	})
	for _, p := range pts {
		if p.perf >= fraction*best {
			return p.cfg, true
		}
	}
	return hw.Config{}, false
}
