package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

func kernel(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %q missing", name)
	return nil
}

func TestClassify(t *testing.T) {
	cases := []struct {
		demand, delivered float64
		want              Boundedness
	}{
		{10, 2, ComputeBound},
		{2, 10, MemoryBound},
		{5, 5, Balanced},
		{5.5, 5, Balanced}, // within tolerance
		{0, 5, Balanced},   // degenerate
		{5, 0, Balanced},   // degenerate
	}
	for _, c := range cases {
		if got := Classify(c.demand, c.delivered); got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.demand, c.delivered, got, c.want)
		}
	}
}

func TestBoundednessString(t *testing.T) {
	if ComputeBound.String() != "compute-bound" || MemoryBound.String() != "memory-bound" ||
		Balanced.String() != "balanced" || Boundedness(9).String() != "unknown" {
		t.Error("strings wrong")
	}
}

func TestRooflineShape(t *testing.T) {
	r := RooflineOf(hw.MaxConfig())
	// Ridge = peak GOPS / peak GB/s; at max config 2048/264 ≈ 7.76.
	if math.Abs(r.Ridge()-hw.MaxConfig().OpsPerByte()) > 1e-9 {
		t.Errorf("ridge %v != config ops/byte %v", r.Ridge(), hw.MaxConfig().OpsPerByte())
	}
	// Below the ridge, attainable is bandwidth-limited and linear.
	if got := r.Attainable(r.Ridge() / 2); math.Abs(got-r.PeakGOPS/2) > 1e-9 {
		t.Errorf("attainable at half ridge = %v, want %v", got, r.PeakGOPS/2)
	}
	// Above the ridge, it is flat at peak compute.
	if got := r.Attainable(r.Ridge() * 10); got != r.PeakGOPS {
		t.Errorf("attainable above ridge = %v, want %v", got, r.PeakGOPS)
	}
	if got := r.Attainable(0); got != 0 {
		t.Errorf("attainable at 0 = %v", got)
	}
	if rz := (Roofline{PeakGOPS: 1}).Ridge(); !math.IsInf(rz, 1) {
		t.Errorf("ridge with zero bandwidth = %v", rz)
	}
}

// Property: attainable is monotone non-decreasing in intensity and never
// exceeds the compute ceiling.
func TestAttainableMonotoneProperty(t *testing.T) {
	r := RooflineOf(hw.MaxConfig())
	f := func(a, b uint16) bool {
		x, y := float64(a)/100, float64(b)/100
		if x > y {
			x, y = y, x
		}
		ax, ay := r.Attainable(x), r.Attainable(y)
		return ax <= ay+1e-9 && ay <= r.PeakGOPS+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeasureKnownKernels(t *testing.T) {
	m := gpusim.Default()
	// MaxFlops at max config: strongly compute bound, high efficiency.
	mf := Measure(m, kernel(t, "MaxFlops.Main"), 0, hw.MaxConfig())
	if mf.Boundedness != ComputeBound {
		t.Errorf("MaxFlops boundedness = %v", mf.Boundedness)
	}
	if mf.Efficiency() < 0.8 {
		t.Errorf("MaxFlops efficiency = %v, want high", mf.Efficiency())
	}
	// DeviceMemory at max config: memory bound.
	dm := Measure(m, kernel(t, "DeviceMemory.Stream"), 0, hw.MaxConfig())
	if dm.Boundedness != MemoryBound {
		t.Errorf("DeviceMemory boundedness = %v", dm.Boundedness)
	}
	if dm.DemandOpsPerByte >= mf.DemandOpsPerByte {
		t.Error("DeviceMemory should demand fewer ops/byte than MaxFlops")
	}
	// Achieved never exceeds attainable by more than rounding.
	for _, p := range []OperatingPoint{mf, dm} {
		if p.AchievedGOPS > p.AttainableGOPS*1.02 {
			t.Errorf("%s: achieved %v exceeds attainable %v", p.Kernel, p.AchievedGOPS, p.AttainableGOPS)
		}
		if p.String() == "" {
			t.Error("empty rendering")
		}
	}
}

func TestMeasureAcrossSpaceNeverExceedsRoofline(t *testing.T) {
	m := gpusim.Default()
	for _, k := range workloads.AllKernels() {
		for _, cfg := range []hw.Config{hw.MinConfig(), hw.MaxConfig()} {
			p := Measure(m, k, 0, cfg)
			if p.AchievedGOPS > p.AttainableGOPS*1.02+1e-9 {
				t.Errorf("%s @ %v: achieved %.1f above roofline %.1f",
					k.Name, cfg, p.AchievedGOPS, p.AttainableGOPS)
			}
		}
	}
}

func TestBalancedConfigsForDeviceMemory(t *testing.T) {
	m := gpusim.Default()
	cfgs := BalancedConfigs(m, kernel(t, "DeviceMemory.Stream"), 0)
	if len(cfgs) == 0 {
		t.Fatal("no balanced configurations found for a streaming kernel")
	}
	// They must be sorted by the power proxy.
	for i := 1; i < len(cfgs); i++ {
		pi := cfgs[i-1].Compute.PeakGOPS() * cfgs[i-1].Memory.BandwidthGBs()
		pj := cfgs[i].Compute.PeakGOPS() * cfgs[i].Memory.BandwidthGBs()
		if pi > pj {
			t.Fatal("balanced configs not sorted")
		}
	}
	// Every returned config must actually classify as balanced.
	for _, cfg := range cfgs[:min(5, len(cfgs))] {
		if p := Measure(m, kernel(t, "DeviceMemory.Stream"), 0, cfg); p.Boundedness != Balanced {
			t.Errorf("config %v classified %v", cfg, p.Boundedness)
		}
	}
}

func TestKneePointDeviceMemory(t *testing.T) {
	m := gpusim.Default()
	k := kernel(t, "DeviceMemory.Stream")
	knee, ok := KneePoint(m, k, hw.MaxMemFreq, 0.98)
	if !ok {
		t.Fatal("no knee found")
	}
	// Figure 3b: the knee sits at an interior compute configuration —
	// well below the maximum compute throughput.
	if knee.Compute.PeakGOPS() >= hw.MaxConfig().Compute.PeakGOPS() {
		t.Errorf("knee at maximum compute %v; expected interior", knee)
	}
	// The knee's performance must indeed be >= 98% of the best.
	bestPerf := 0.0
	for _, n := range hw.CUCounts() {
		for _, f := range hw.CUFreqs() {
			cfg := hw.Config{Compute: hw.ComputeConfig{CUs: n, Freq: f}, Memory: hw.MemConfig{BusFreq: hw.MaxMemFreq}}
			if p := 1 / m.Run(k, 0, cfg).Time; p > bestPerf {
				bestPerf = p
			}
		}
	}
	kneePerf := 1 / m.Run(k, 0, knee).Time
	if kneePerf < 0.98*bestPerf {
		t.Errorf("knee perf %.3f below 98%% of best %.3f", kneePerf, bestPerf)
	}
}

func TestKneePointMaxFlopsIsMaxCompute(t *testing.T) {
	m := gpusim.Default()
	knee, ok := KneePoint(m, kernel(t, "MaxFlops.Main"), hw.MinMemFreq, 0.99)
	if !ok {
		t.Fatal("no knee found")
	}
	// A purely compute-bound kernel's knee is the top compute config.
	if knee.Compute.CUs != hw.MaxCUs || knee.Compute.Freq != hw.MaxCUFreq {
		t.Errorf("MaxFlops knee = %v, want maximum compute", knee)
	}
}

func TestKneePointBadFraction(t *testing.T) {
	m := gpusim.Default()
	if _, ok := KneePoint(m, kernel(t, "MaxFlops.Main"), hw.MaxMemFreq, 0); ok {
		t.Error("fraction 0 accepted")
	}
	if _, ok := KneePoint(m, kernel(t, "MaxFlops.Main"), hw.MaxMemFreq, 1.5); ok {
		t.Error("fraction >1 accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
