package floats

import (
	"math"
	"testing"
)

func TestEqual(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 2, false},
		{0, math.Copysign(0, -1), true}, // -0 == +0
		{nan, nan, true},
		{nan, 1, false},
		{1, nan, false},
		{inf, inf, true},
		{inf, -inf, false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(math.Copysign(0, -1)) {
		t.Error("Zero should accept both signed zeros")
	}
	if Zero(math.NaN()) || Zero(1e-300) {
		t.Error("Zero must reject NaN and nonzero values")
	}
}

func TestWithin(t *testing.T) {
	if !Within(1.0, 1.0+1e-12, 1e-9) {
		t.Error("Within should accept values inside tolerance")
	}
	if Within(1.0, 1.1, 1e-9) {
		t.Error("Within should reject values outside tolerance")
	}
	if Within(math.NaN(), math.NaN(), math.Inf(1)) {
		t.Error("NaN is never within tolerance")
	}
	if !Within(math.Inf(1), math.Inf(1), 0) {
		t.Error("equal infinities are within every tolerance")
	}
}
