// Package floats holds the module's approved floating-point comparison
// helpers. The floateq analyzer (internal/lint) forbids raw == and !=
// on float operands everywhere else: NaN compares false against
// everything, which is how the sweep.Min poisoning bug entered — a
// single NaN silently fell through every equality- and ordering-guarded
// path. Code that genuinely needs a float comparison routes it through
// one of these helpers, which document intent and handle NaN
// explicitly. The default lint policy exempts this package.
package floats

import "math"

// Equal reports exact value equality, with NaN equal to NaN. It is the
// bit-identical-replay comparison: two deterministic runs must agree
// even on poisoned values.
func Equal(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// Zero reports whether v is exactly zero (either sign). NaN is not
// zero.
func Zero(v float64) bool {
	return v == 0
}

// Within reports |a-b| <= tol. NaN operands are never within any
// tolerance of anything; equal infinities are within every tolerance.
func Within(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}
