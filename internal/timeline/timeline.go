// Package timeline is the run-level flight recorder: a bounded,
// deterministic record of what one session did and why. It captures
// three streams the paper's analysis is built from —
//
//   - the DAQ's 1 kHz power samples, downsampled into fixed-resolution
//     buckets decomposed as GPU/Mem/Other watts (the Eq. 4 board
//     breakdown of Section 6);
//   - one decision record per kernel boundary: the counters the policy
//     saw, the sensitivity bins it predicted, the configuration the
//     hardware ran, and the action source (CG, FG, revert, oracle
//     cache/memo/sweep, ...);
//   - frequency/CU state transitions, whenever the configuration
//     actually changed between consecutive invocations.
//
// Like internal/trace, the recorder is built around two guarantees:
//
//   - Inertness. Recording is pure observation — it reads values the
//     session already computed and never feeds anything back, so a
//     recorded run's Report is bit-identical to an unrecorded one. All
//     methods are safe on a nil *Recorder and the disabled path costs
//     one nil check per call site.
//
//   - Determinism. The recorder has no clock and no seed: every
//     timestamp is DAQ trace time and every record is a pure function
//     of the run's inputs, so two same-seed runs (or a run and its
//     journal-replay re-execution) produce byte-identical snapshots.
//
// Memory is bounded: power buckets are capped and the resolution
// doubles (merging bucket pairs in place) when a run outgrows the cap,
// and the decision/transition logs drop the newest entries past their
// caps, counting what was dropped. Bucket indices are computed from
// each sample's absolute timestamp, never from a running count, so DAQ
// dropouts thin a bucket without ever shifting bucket boundaries.
package timeline

import (
	"sync"

	"harmonia/internal/daq"
	"harmonia/internal/hw"
	"harmonia/internal/sensitivity"
)

// Config is the timeline's flattened form of a hardware configuration.
type Config struct {
	CUs    int `json:"cus"`
	CUMHz  int `json:"cu_mhz"`
	MemMHz int `json:"mem_mhz"`
}

// ConfigOf flattens a hardware configuration for recording.
func ConfigOf(c hw.Config) Config {
	return Config{CUs: c.Compute.CUs, CUMHz: int(c.Compute.Freq), MemMHz: int(c.Memory.BusFreq)}
}

// HW reassembles the hardware configuration (for analysis layers that
// need to re-simulate at the recorded operating point).
func (c Config) HW() hw.Config {
	return hw.Config{
		Compute: hw.ComputeConfig{CUs: c.CUs, Freq: hw.MHz(c.CUMHz)},
		Memory:  hw.MemConfig{BusFreq: hw.MHz(c.MemMHz)},
	}
}

// Bins is the serialized per-tunable sensitivity classification of a
// decision record ("HIGH"/"MED"/"LOW" per tunable).
type Bins struct {
	CUs     string `json:"cus"`
	CUFreq  string `json:"cu_freq"`
	MemFreq string `json:"mem_freq"`
}

// BinsOf serializes a sensitivity classification for recording.
func BinsOf(b sensitivity.Bins) Bins {
	return Bins{CUs: b.CUs.String(), CUFreq: b.CUFreq.String(), MemFreq: b.MemFreq.String()}
}

// Detail is a policy's annotation of one decision: how the action was
// produced and what the controller believed at the time. Policies that
// can provide it implement Annotator.
type Detail struct {
	// Source classifies the action: the controller's ActionKind string
	// (hold, cg, fg, revert, freeze, reject, retry, degrade, recover)
	// or the oracle's answer source (oracle-cache, oracle-memo,
	// oracle-sweep).
	Source string
	// Bins is the sensitivity classification in effect; HaveBins is
	// false for policies that do not predict sensitivities.
	Bins     sensitivity.Bins
	HaveBins bool
	// Proxy is the machine-utilization reading that drove the decision.
	Proxy float64
}

// Annotator is implemented by policies (the Harmonia controller, the
// oracle) that can annotate the decision they took at a kernel
// boundary. The session queries it after Observe, so the annotation
// reflects the boundary just processed. Recording is pure observation:
// the session only calls it when a recorder is attached.
type Annotator interface {
	TimelineDecision(kernel string, iter int) (Detail, bool)
}

// Attachable is implemented by policies that must be told a timeline
// recorder is active before they can answer Annotator queries (the
// oracle starts remembering per-invocation answer sources only once
// attached, keeping the unrecorded path allocation-free). The session
// attaches the recorder at run start; unrecorded runs never call it.
type Attachable interface {
	AttachTimeline(*Recorder)
}

// Decision is one kernel-boundary record.
type Decision struct {
	// Index is the boundary sequence number within the run (0-based).
	Index  int    `json:"index"`
	Kernel string `json:"kernel"`
	Iter   int    `json:"iter"`
	// StartS/EndS are DAQ trace time at the invocation's start and end.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// TimeS and EnergyJ are the invocation's execution time and card
	// energy (Rails.Card x time, the per-invocation ED^2 basis).
	TimeS   float64 `json:"time_s"`
	EnergyJ float64 `json:"energy_j"`
	CardW   float64 `json:"card_w"`
	// Config is what the hardware actually ran; Commanded is what the
	// policy asked for (they differ only under fault injection).
	Config    Config `json:"config"`
	Commanded Config `json:"commanded"`
	// Source, Bins, and Proxy carry the policy's Detail annotation;
	// empty/nil/zero for policies that are not Annotators.
	Source string  `json:"source,omitempty"`
	Bins   *Bins   `json:"bins,omitempty"`
	Proxy  float64 `json:"proxy,omitempty"`
	// The performance-counter view of the invocation.
	VALUBusy    float64 `json:"valu_busy_pct"`
	MemUnitBusy float64 `json:"mem_busy_pct"`
	// Transition marks a boundary whose actual configuration differs
	// from the previous invocation's.
	Transition bool `json:"transition,omitempty"`
}

// Transition is one hardware state change: the configuration actually
// in effect moved between consecutive kernel invocations.
type Transition struct {
	// Index is the decision index at which the new configuration ran.
	Index  int     `json:"index"`
	AtS    float64 `json:"at_s"`
	Kernel string  `json:"kernel"`
	From   Config  `json:"from"`
	To     Config  `json:"to"`
}

// bucket accumulates the power samples of one resolution interval as
// per-rail sums, so downsampled output can report exact means.
type bucket struct {
	n               int
	gpu, mem, other float64
}

func (b *bucket) add(o bucket) {
	b.n += o.n
	b.gpu += o.gpu
	b.mem += o.mem
	b.other += o.other
}

// Defaults. The base bucket resolution matches the DAQ's 1 kHz period;
// with the 8192-bucket cap the resolution doubles past ~8.2 simulated
// seconds, keeping a run's power timeline under a fixed footprint.
const (
	DefaultResolutionS = 0.001
	DefaultMaxBuckets  = 8192
	DefaultMaxEvents   = 16384
)

// Recorder is the flight recorder for one run. Construct with New;
// a nil *Recorder is the disabled recorder and every method no-ops.
// Safe for concurrent use: the session writes while SSE readers poll
// Since and snapshot exporters copy.
type Recorder struct {
	mu sync.Mutex

	app, policy string
	finished    bool

	res        float64 // current bucket resolution, seconds
	maxBuckets int
	buckets    []bucket
	samples    int // total samples folded in
	durationS  float64

	maxEvents    int
	decisions    []Decision
	droppedDecs  int
	transitions  []Transition
	droppedTrans int

	lastConfig Config
	haveLast   bool

	// notify is closed and replaced whenever a decision lands or the
	// run finishes, waking Since subscribers; allocated lazily so
	// unwatched runs never pay for it.
	notify chan struct{}
}

// Option configures a Recorder at construction.
type Option func(*Recorder)

// WithResolution sets the base power-bucket resolution in seconds
// (values <= 0 keep the default 1 ms).
func WithResolution(seconds float64) Option {
	return func(r *Recorder) {
		if seconds > 0 {
			r.res = seconds
		}
	}
}

// WithMaxBuckets caps the power timeline's bucket count; past it the
// resolution doubles. Values < 2 keep the default.
func WithMaxBuckets(n int) Option {
	return func(r *Recorder) {
		if n >= 2 {
			r.maxBuckets = n
		}
	}
}

// WithMaxEvents caps the decision and transition logs; entries past the
// cap are dropped (newest first) and counted. Values < 1 keep the
// default.
func WithMaxEvents(n int) Option {
	return func(r *Recorder) {
		if n >= 1 {
			r.maxEvents = n
		}
	}
}

// New returns an empty flight recorder. A Recorder records one run.
func New(opts ...Option) *Recorder {
	r := &Recorder{
		res:        DefaultResolutionS,
		maxBuckets: DefaultMaxBuckets,
		maxEvents:  DefaultMaxEvents,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// StartRun stamps the run's identity onto the recorder.
func (r *Recorder) StartRun(app, policy string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.app, r.policy = app, policy
	r.mu.Unlock()
}

// ObserveSamples folds a segment of the DAQ sample stream into the
// power timeline. Bucket indices come from each sample's absolute
// timestamp, so a dropped sample thins its bucket without shifting any
// boundary.
func (r *Recorder) ObserveSamples(samples []daq.Sample) {
	if r == nil || len(samples) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range samples {
		if s.TimeS < 0 {
			continue
		}
		idx := int(s.TimeS / r.res)
		for idx >= r.maxBuckets {
			r.coarsenLocked()
			idx = int(s.TimeS / r.res)
		}
		for len(r.buckets) <= idx {
			r.buckets = append(r.buckets, bucket{})
		}
		b := &r.buckets[idx]
		b.n++
		b.gpu += s.Rails.GPU
		b.mem += s.Rails.Mem
		b.other += s.Rails.Other
		r.samples++
	}
}

// coarsenLocked doubles the bucket resolution, merging bucket pairs in
// place. floor(t/2res) == floor(floor(t/res)/2) for t >= 0, so merged
// buckets land exactly where direct re-bucketing at the new resolution
// would put their samples.
func (r *Recorder) coarsenLocked() {
	r.res *= 2
	half := (len(r.buckets) + 1) / 2
	merged := make([]bucket, half)
	for i, b := range r.buckets {
		merged[i/2].add(b)
	}
	r.buckets = merged
}

// RecordDecision appends one kernel-boundary record, deriving its index
// and transition flag, and wakes Since subscribers. Past the event cap
// the record is dropped and counted.
func (r *Recorder) RecordDecision(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	d.Index = len(r.decisions) + r.droppedDecs
	r.durationS = d.EndS
	if r.haveLast && d.Config != r.lastConfig {
		d.Transition = true
		if len(r.transitions) < r.maxEvents {
			r.transitions = append(r.transitions, Transition{
				Index: d.Index, AtS: d.StartS, Kernel: d.Kernel,
				From: r.lastConfig, To: d.Config,
			})
		} else {
			r.droppedTrans++
		}
	}
	r.lastConfig, r.haveLast = d.Config, true
	if len(r.decisions) >= r.maxEvents {
		r.droppedDecs++
		r.mu.Unlock()
		return
	}
	r.decisions = append(r.decisions, d)
	r.wakeLocked()
	r.mu.Unlock()
}

// Finish marks the run complete and wakes subscribers. Idempotent.
func (r *Recorder) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.finished {
		r.finished = true
		r.wakeLocked()
	}
	r.mu.Unlock()
}

// wakeLocked closes the current notify channel (if any subscriber
// created one) so every Since waiter re-polls.
func (r *Recorder) wakeLocked() {
	if r.notify != nil {
		close(r.notify)
		r.notify = nil
	}
}

// Since returns the decisions recorded at or after cursor (a value
// previously returned as next; start at 0), the new cursor, whether the
// run has finished, and a channel closed on the next append or finish.
// Every decision is delivered exactly once to a subscriber that
// advances its cursor; the cap drops newest entries, so delivered
// records are never evicted from under a cursor.
func (r *Recorder) Since(cursor int) (events []Decision, next int, done bool, ch <-chan struct{}) {
	if r == nil {
		closed := make(chan struct{})
		close(closed)
		return nil, cursor, true, closed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor < len(r.decisions) {
		events = append(events, r.decisions[cursor:]...)
	}
	if r.notify == nil {
		r.notify = make(chan struct{})
	}
	return events, len(r.decisions), r.finished, r.notify
}

// Counts reports the event totals: decisions retained, decisions
// dropped past the cap, and transitions retained.
func (r *Recorder) Counts() (decisions, dropped, transitions int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.decisions), r.droppedDecs, len(r.transitions)
}
