package timeline

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PowerBucket is one downsampled interval of the power timeline: the
// bucket's start time, how many DAQ samples landed in it, and the mean
// per-rail watts over those samples (zero for an empty bucket, which
// can occur under DAQ dropouts).
type PowerBucket struct {
	TimeS   float64 `json:"time_s"`
	Samples int     `json:"samples"`
	GPUW    float64 `json:"gpu_w"`
	MemW    float64 `json:"mem_w"`
	OtherW  float64 `json:"other_w"`
}

// Snapshot is a deep, immutable copy of a recorder's state, safe to
// serialize while the run continues. Serialization is deterministic:
// slices preserve recording order and no maps are emitted.
type Snapshot struct {
	App         string  `json:"app"`
	Policy      string  `json:"policy"`
	Complete    bool    `json:"complete"`
	DurationS   float64 `json:"duration_s"`
	ResolutionS float64 `json:"resolution_s"`
	SampleCount int     `json:"sample_count"`

	Power       []PowerBucket `json:"power"`
	Decisions   []Decision    `json:"decisions"`
	Transitions []Transition  `json:"transitions"`

	DroppedDecisions   int `json:"dropped_decisions,omitempty"`
	DroppedTransitions int `json:"dropped_transitions,omitempty"`
}

// Snapshot copies the recorder's current state. Safe on a nil Recorder
// (returns an empty, complete snapshot).
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{Complete: true}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		App:                r.app,
		Policy:             r.policy,
		Complete:           r.finished,
		DurationS:          r.durationS,
		ResolutionS:        r.res,
		SampleCount:        r.samples,
		Power:              make([]PowerBucket, len(r.buckets)),
		Decisions:          append([]Decision(nil), r.decisions...),
		Transitions:        append([]Transition(nil), r.transitions...),
		DroppedDecisions:   r.droppedDecs,
		DroppedTransitions: r.droppedTrans,
	}
	for i, b := range r.buckets {
		pb := PowerBucket{TimeS: float64(i) * r.res, Samples: b.n}
		if b.n > 0 {
			n := float64(b.n)
			pb.GPUW, pb.MemW, pb.OtherW = b.gpu/n, b.mem/n, b.other/n
		}
		s.Power[i] = pb
	}
	return s
}

// Coarsen returns a snapshot whose power timeline is re-bucketed at the
// nearest integer multiple of the base resolution to resS (at least the
// base). Decision and transition streams are unchanged. resS values
// that are not positive finite return the receiver unchanged.
func (s *Snapshot) Coarsen(resS float64) *Snapshot {
	if s == nil || resS <= 0 || math.IsInf(resS, 0) || math.IsNaN(resS) || s.ResolutionS <= 0 {
		return s
	}
	factor := int(math.Round(resS / s.ResolutionS))
	if factor <= 1 {
		return s
	}
	out := *s
	out.ResolutionS = s.ResolutionS * float64(factor)
	merged := make([]PowerBucket, (len(s.Power)+factor-1)/factor)
	type sums struct {
		n               int
		gpu, mem, other float64
	}
	acc := make([]sums, len(merged))
	for i, b := range s.Power {
		a := &acc[i/factor]
		a.n += b.Samples
		n := float64(b.Samples)
		a.gpu += b.GPUW * n
		a.mem += b.MemW * n
		a.other += b.OtherW * n
	}
	for i, a := range acc {
		pb := PowerBucket{TimeS: float64(i) * out.ResolutionS, Samples: a.n}
		if a.n > 0 {
			n := float64(a.n)
			pb.GPUW, pb.MemW, pb.OtherW = a.gpu/n, a.mem/n, a.other/n
		}
		merged[i] = pb
	}
	out.Power = merged
	return &out
}

// WriteJSON writes the snapshot as indented JSON. Output is
// deterministic for a deterministic run.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the power timeline as CSV
// (time_s,samples,gpu_w,mem_w,other_w rows in time order).
func (s *Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "samples", "gpu_w", "mem_w", "other_w"}); err != nil {
		return err
	}
	for _, b := range s.Power {
		row := []string{
			formatF(b.TimeS),
			strconv.Itoa(b.Samples),
			formatF(b.GPUW),
			formatF(b.MemW),
			formatF(b.OtherW),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

// KernelSummary aggregates one kernel's share of the run.
type KernelSummary struct {
	Kernel      string  `json:"kernel"`
	Invocations int     `json:"invocations"`
	TimeS       float64 `json:"time_s"`
	EnergyJ     float64 `json:"energy_j"`
	EnergyShare float64 `json:"energy_share"`
	Transitions int     `json:"transitions"`
}

// ActionCount is one action source's tally.
type ActionCount struct {
	Source string `json:"source"`
	N      int    `json:"n"`
}

// Summary is the per-kernel energy breakdown and action census of a
// timeline, the report-friendly digest of the flight recording.
type Summary struct {
	App         string          `json:"app"`
	Policy      string          `json:"policy"`
	Complete    bool            `json:"complete"`
	Boundaries  int             `json:"boundaries"`
	DurationS   float64         `json:"duration_s"`
	EnergyJ     float64         `json:"energy_j"`
	Transitions int             `json:"transitions"`
	Kernels     []KernelSummary `json:"kernels"`
	Actions     []ActionCount   `json:"actions"`
}

// Summary digests the snapshot. Kernels and actions are sorted by name
// for deterministic output.
func (s *Snapshot) Summary() Summary {
	sum := Summary{
		App:         s.App,
		Policy:      s.Policy,
		Complete:    s.Complete,
		Boundaries:  len(s.Decisions) + s.DroppedDecisions,
		DurationS:   s.DurationS,
		Transitions: len(s.Transitions) + s.DroppedTransitions,
	}
	perKernel := make(map[string]*KernelSummary)
	actions := make(map[string]int)
	order := make([]string, 0, 4)
	for _, d := range s.Decisions {
		ks := perKernel[d.Kernel]
		if ks == nil {
			ks = &KernelSummary{Kernel: d.Kernel}
			perKernel[d.Kernel] = ks
			order = append(order, d.Kernel)
		}
		ks.Invocations++
		ks.TimeS += d.TimeS
		ks.EnergyJ += d.EnergyJ
		if d.Transition {
			ks.Transitions++
		}
		sum.EnergyJ += d.EnergyJ
		src := d.Source
		if src == "" {
			src = "(none)"
		}
		actions[src]++
	}
	sort.Strings(order)
	for _, name := range order {
		ks := *perKernel[name]
		if sum.EnergyJ > 0 {
			ks.EnergyShare = ks.EnergyJ / sum.EnergyJ
		}
		sum.Kernels = append(sum.Kernels, ks)
	}
	srcs := make([]string, 0, len(actions))
	for src := range actions {
		srcs = append(srcs, src) //lint:ignore nondeterminism keys are sorted before use
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		sum.Actions = append(sum.Actions, ActionCount{Source: src, N: actions[src]})
	}
	return sum
}

// String renders the summary as an aligned report table.
func (s Summary) String() string {
	var b strings.Builder
	state := "in progress"
	if s.Complete {
		state = "complete"
	}
	fmt.Fprintf(&b, "Timeline: %s under %s (%s)\n", s.App, s.Policy, state)
	fmt.Fprintf(&b, "  boundaries=%d transitions=%d duration=%.4fs energy=%.2fJ\n",
		s.Boundaries, s.Transitions, s.DurationS, s.EnergyJ)
	fmt.Fprintf(&b, "  %-24s %6s %10s %10s %7s %6s\n", "kernel", "invocs", "time(s)", "energy(J)", "share", "trans")
	for _, k := range s.Kernels {
		fmt.Fprintf(&b, "  %-24s %6d %10.4f %10.2f %6.1f%% %6d\n",
			k.Kernel, k.Invocations, k.TimeS, k.EnergyJ, 100*k.EnergyShare, k.Transitions)
	}
	parts := make([]string, 0, len(s.Actions))
	for _, a := range s.Actions {
		parts = append(parts, fmt.Sprintf("%s=%d", a.Source, a.N))
	}
	if len(parts) > 0 {
		fmt.Fprintf(&b, "  actions: %s\n", strings.Join(parts, " "))
	}
	return b.String()
}
