package timeline

import (
	"bytes"
	"strings"
	"testing"

	"harmonia/internal/daq"
	"harmonia/internal/hw"
	"harmonia/internal/power"
)

// sampleAt builds a DAQ sample at t seconds with the given rail powers.
func sampleAt(t, gpu, mem, other float64) daq.Sample {
	return daq.Sample{TimeS: t, Rails: power.Rails{GPU: gpu, Mem: mem, Other: other}}
}

func TestBucketIndexFromAbsoluteTime(t *testing.T) {
	r := New(WithResolution(0.001))
	r.StartRun("app", "pol")
	// Two samples in bucket 0, a dropout gap, one sample in bucket 3.
	r.ObserveSamples([]daq.Sample{
		sampleAt(0.0000, 10, 20, 5),
		sampleAt(0.0005, 30, 40, 5),
		sampleAt(0.0035, 100, 200, 50),
	})
	snap := r.Snapshot()
	if len(snap.Power) != 4 {
		t.Fatalf("want 4 buckets (index 3 occupied), got %d", len(snap.Power))
	}
	b0, b3 := snap.Power[0], snap.Power[3]
	if b0.Samples != 2 || b0.GPUW != 20 || b0.MemW != 30 {
		t.Fatalf("bucket 0 = %+v, want mean of the two samples", b0)
	}
	if snap.Power[1].Samples != 0 || snap.Power[2].Samples != 0 {
		t.Fatal("dropout buckets must stay empty, not collapse")
	}
	if b3.Samples != 1 || b3.GPUW != 100 {
		t.Fatalf("bucket 3 = %+v", b3)
	}
	if b3.TimeS != 0.003 {
		t.Fatalf("bucket 3 starts at %v, want 0.003", b3.TimeS)
	}
}

func TestCoarseningDoublesResolution(t *testing.T) {
	r := New(WithResolution(0.001), WithMaxBuckets(4))
	r.StartRun("app", "pol")
	// Buckets 0..3 at 1 kHz, then a sample past the cap forces res=2ms.
	r.ObserveSamples([]daq.Sample{
		sampleAt(0.0005, 10, 0, 0),
		sampleAt(0.0015, 20, 0, 0),
		sampleAt(0.0025, 30, 0, 0),
		sampleAt(0.0035, 40, 0, 0),
		sampleAt(0.0045, 50, 0, 0),
	})
	snap := r.Snapshot()
	if snap.ResolutionS != 0.002 {
		t.Fatalf("resolution = %v, want doubled to 0.002", snap.ResolutionS)
	}
	if len(snap.Power) != 3 {
		t.Fatalf("want 3 coarse buckets, got %d", len(snap.Power))
	}
	// Pair merges preserve sample counts and means.
	if snap.Power[0].Samples != 2 || snap.Power[0].GPUW != 15 {
		t.Fatalf("merged bucket 0 = %+v, want 2 samples mean 15", snap.Power[0])
	}
	if snap.Power[2].Samples != 1 || snap.Power[2].GPUW != 50 {
		t.Fatalf("bucket 2 = %+v", snap.Power[2])
	}
	if snap.SampleCount != 5 {
		t.Fatalf("sample count = %d, want 5", snap.SampleCount)
	}
}

func TestSnapshotCoarsenRebuckets(t *testing.T) {
	r := New(WithResolution(0.001))
	r.StartRun("app", "pol")
	r.ObserveSamples([]daq.Sample{
		sampleAt(0.0005, 10, 2, 0),
		sampleAt(0.0015, 30, 4, 0),
		sampleAt(0.0025, 50, 6, 0),
	})
	snap := r.Snapshot().Coarsen(0.002)
	if snap.ResolutionS != 0.002 || len(snap.Power) != 2 {
		t.Fatalf("coarsened to res %v with %d buckets", snap.ResolutionS, len(snap.Power))
	}
	if snap.Power[0].Samples != 2 || snap.Power[0].GPUW != 20 || snap.Power[0].MemW != 3 {
		t.Fatalf("coarse bucket 0 = %+v", snap.Power[0])
	}
	// Coarsen to an equal-or-finer resolution is a no-op.
	if again := snap.Coarsen(0.001); again != snap {
		t.Fatal("finer Coarsen must return the receiver unchanged")
	}
}

func TestDecisionTransitionsAndCaps(t *testing.T) {
	r := New(WithMaxEvents(2))
	r.StartRun("app", "pol")
	cfgA := ConfigOf(hw.MaxConfig())
	cfgB := cfgA
	cfgB.CUs = cfgA.CUs / 2
	r.RecordDecision(Decision{Kernel: "k", Iter: 0, Config: cfgA})
	r.RecordDecision(Decision{Kernel: "k", Iter: 1, Config: cfgB})
	r.RecordDecision(Decision{Kernel: "k", Iter: 2, Config: cfgB}) // dropped
	decs, dropped, trans := r.Counts()
	if decs != 2 || dropped != 1 {
		t.Fatalf("counts = %d kept, %d dropped", decs, dropped)
	}
	if trans != 1 {
		t.Fatalf("transitions = %d, want 1 (A->B)", trans)
	}
	snap := r.Snapshot()
	if snap.DroppedDecisions != 1 {
		t.Fatalf("snapshot dropped = %d", snap.DroppedDecisions)
	}
	tr := snap.Transitions[0]
	if tr.From != cfgA || tr.To != cfgB || tr.Kernel != "k" {
		t.Fatalf("transition = %+v", tr)
	}
	// Indexes keep counting past the cap so SSE ids stay unique.
	if snap.Decisions[1].Index != 1 {
		t.Fatalf("decision 1 index = %d", snap.Decisions[1].Index)
	}
}

func TestSinceCursorAndFinish(t *testing.T) {
	r := New()
	r.StartRun("app", "pol")
	r.RecordDecision(Decision{Kernel: "a"})
	r.RecordDecision(Decision{Kernel: "b"})
	events, next, done, _ := r.Since(0)
	if len(events) != 2 || next != 2 || done {
		t.Fatalf("Since(0) = %d events, next %d, done %v", len(events), next, done)
	}
	// Caught up: no events, a channel that fires on the next record.
	events, next, done, ch := r.Since(next)
	if len(events) != 0 || done {
		t.Fatalf("caught-up Since returned %d events, done %v", len(events), done)
	}
	r.RecordDecision(Decision{Kernel: "c"})
	select {
	case <-ch:
	default:
		t.Fatal("notify channel did not fire on RecordDecision")
	}
	events, next, done, ch = r.Since(next)
	if len(events) != 1 || events[0].Kernel != "c" || done {
		t.Fatalf("Since after wake = %+v done %v", events, done)
	}
	r.Finish()
	r.Finish() // idempotent
	select {
	case <-ch:
	default:
		t.Fatal("notify channel did not fire on Finish")
	}
	if _, _, done, _ = r.Since(next); !done {
		t.Fatal("Since not done after Finish")
	}
	if !r.Snapshot().Complete {
		t.Fatal("snapshot not complete after Finish")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.StartRun("a", "p")
	r.ObserveSamples([]daq.Sample{sampleAt(0, 1, 2, 3)})
	r.RecordDecision(Decision{})
	r.Finish()
	if d, drop, tr := r.Counts(); d != 0 || drop != 0 || tr != 0 {
		t.Fatal("nil recorder counts not zero")
	}
	events, _, done, ch := r.Since(0)
	if len(events) != 0 || !done {
		t.Fatal("nil recorder Since must be empty and done")
	}
	select {
	case <-ch:
	default:
		t.Fatal("nil recorder Since channel must be closed")
	}
	snap := r.Snapshot()
	if snap == nil || !snap.Complete {
		t.Fatal("nil recorder snapshot must be complete and non-nil")
	}
	if s := snap.Summary(); s.Boundaries != 0 {
		t.Fatal("nil summary must be empty")
	}
}

func TestSnapshotWriters(t *testing.T) {
	r := New(WithResolution(0.001))
	r.StartRun("SRAD", "harmonia")
	r.ObserveSamples([]daq.Sample{sampleAt(0.0005, 10, 20, 5)})
	r.RecordDecision(Decision{Kernel: "srad_k1", TimeS: 0.001, EnergyJ: 0.2, Config: ConfigOf(hw.MaxConfig()), Source: "cg"})
	r.Finish()
	snap := r.Snapshot()

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"app": "SRAD"`, `"kernel": "srad_k1"`, `"source": "cg"`, `"gpu_w"`} {
		if !strings.Contains(js.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, js.String())
		}
	}

	var csv bytes.Buffer
	if err := snap.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "time_s,samples,gpu_w,mem_w,other_w" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "0,1,10,20,5") {
		t.Fatalf("CSV rows = %q", lines[1:])
	}

	sum := snap.Summary()
	if sum.Boundaries != 1 || len(sum.Kernels) != 1 || sum.Kernels[0].Kernel != "srad_k1" {
		t.Fatalf("summary = %+v", sum)
	}
	if got := sum.String(); !strings.Contains(got, "srad_k1") || !strings.Contains(got, "harmonia") {
		t.Fatalf("summary rendering missing fields:\n%s", got)
	}
}
