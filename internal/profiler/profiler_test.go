package profiler

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"harmonia/internal/counters"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

func kernel(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %q missing", name)
	return nil
}

func TestProfileKernelBasics(t *testing.T) {
	p := New()
	prof := p.ProfileKernel(kernel(t, "Stencil.Step"), 10, hw.MaxConfig())
	if prof.Samples != 10 || prof.Kernel != "Stencil.Step" {
		t.Fatalf("identity: %+v", prof)
	}
	if prof.MeanTime <= 0 || prof.MinTime <= 0 || prof.MaxTime < prof.MinTime {
		t.Errorf("times: mean %v min %v max %v", prof.MeanTime, prof.MinTime, prof.MaxTime)
	}
	// Phase-free kernel: zero spread across iterations.
	if math.Abs(prof.Spread-1) > 1e-9 {
		t.Errorf("steady kernel spread = %v, want 1.0", prof.Spread)
	}
	// Min <= Mean <= Max element-wise.
	minV, meanV, maxV := prof.Min.Values(), prof.Mean.Values(), prof.Max.Values()
	for i, name := range counters.FieldNames() {
		if minV[i] > meanV[i]+1e-9 || meanV[i] > maxV[i]+1e-9 {
			t.Errorf("%s: min %v mean %v max %v", name, minV[i], meanV[i], maxV[i])
		}
	}
}

func TestPhaseKernelShowsSpread(t *testing.T) {
	p := New()
	prof := p.ProfileKernel(kernel(t, "Graph500.BottomStepUp"), 8, hw.MaxConfig())
	if prof.Spread < 4 {
		t.Errorf("BFS kernel spread = %.1fx, want several-fold (Figure 14)", prof.Spread)
	}
	if prof.Max.VALUInsts <= prof.Min.VALUInsts {
		t.Error("instruction counters show no phase variation")
	}
}

func TestProfileAppAndSuite(t *testing.T) {
	p := New()
	app := workloads.CoMD()
	profs := p.ProfileApp(app, hw.MaxConfig())
	if len(profs) != len(app.Kernels) {
		t.Fatalf("got %d profiles, want %d", len(profs), len(app.Kernels))
	}
	p.Iterations = 2 // keep the suite sweep fast
	suite := p.ProfileSuite(hw.MaxConfig())
	if len(suite) != len(workloads.AllKernels()) {
		t.Fatalf("suite profiles = %d, want %d", len(suite), len(workloads.AllKernels()))
	}
	for i := 1; i < len(suite); i++ {
		if suite[i].Kernel < suite[i-1].Kernel {
			t.Fatal("suite profiles not sorted")
		}
	}
}

func TestZeroIterationsClamped(t *testing.T) {
	p := New()
	prof := p.ProfileKernel(kernel(t, "Stencil.Step"), 0, hw.MaxConfig())
	if prof.Samples != 1 {
		t.Errorf("samples = %d, want 1", prof.Samples)
	}
}

func TestRenderings(t *testing.T) {
	p := New()
	prof := p.ProfileKernel(kernel(t, "SPMV.CSRVector"), 4, hw.MaxConfig())
	if prof.String() == "" {
		t.Error("empty String")
	}
	table := Table([]KernelProfile{prof})
	if !strings.Contains(table, "SPMV.CSRVector") {
		t.Errorf("table missing kernel: %q", table)
	}
}

func TestCounterValuesRoundTripProperty(t *testing.T) {
	// Values/FromValues must be exact inverses.
	f := func(a, b, c uint8) bool {
		s := counters.Set{
			VALUBusy: float64(a), MemUnitBusy: float64(b), VALUInsts: float64(c) * 1e5,
			NormVGPR: float64(a) / 255, Occupancy: float64(b) / 255,
		}
		back, err := counters.FromValues(s.Values())
		return err == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := counters.FromValues([]float64{1, 2}); err == nil {
		t.Error("short vector accepted")
	}
}
