// Package profiler reproduces the paper's measurement methodology
// (Section 6): applications are run multiple times, performance counters
// are sampled through the CodeXL-style interface at kernel boundaries,
// and per-kernel statistics (mean, minimum, maximum, run-to-run spread)
// are aggregated "to eliminate run-to-run variance".
//
// On the deterministic simulator, variance across repeats is zero by
// construction; variance across *iterations* (application phases) is
// real, and the profiler's spread statistics expose exactly the
// phase-driven counter swings Figures 14-16 build on.
package profiler

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"harmonia/internal/counters"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

// KernelProfile is the aggregated measurement of one kernel at one
// hardware configuration across an application's iterations.
type KernelProfile struct {
	Kernel  string
	Config  hw.Config
	Samples int

	Mean counters.Set
	Min  counters.Set
	Max  counters.Set

	MeanTime float64
	MinTime  float64
	MaxTime  float64

	// Spread is max/min of total kernel time across iterations — the
	// phase-variation indicator (Graph500's main kernel spans several x;
	// steady kernels sit at 1.0).
	Spread float64
}

// Profiler collects kernel profiles on a simulator.
type Profiler struct {
	Sim *gpusim.Model
	// Iterations overrides the application's iteration count when > 0.
	Iterations int
}

// New returns a profiler on the default simulator.
func New() *Profiler { return &Profiler{Sim: gpusim.Default()} }

// ProfileKernel measures one kernel across iterations at cfg.
func (p *Profiler) ProfileKernel(k *workloads.Kernel, iterations int, cfg hw.Config) KernelProfile {
	if iterations <= 0 {
		iterations = 1
	}
	prof := KernelProfile{
		Kernel:  k.Name,
		Config:  cfg,
		Samples: iterations,
		MinTime: math.Inf(1),
	}
	var sets []counters.Set
	minV := make([]float64, len(counters.FieldNames()))
	maxV := make([]float64, len(counters.FieldNames()))
	for i := range minV {
		minV[i] = math.Inf(1)
		maxV[i] = math.Inf(-1)
	}
	for i := 0; i < iterations; i++ {
		r := p.Sim.Run(k, i, cfg)
		sets = append(sets, r.Counters)
		for j, v := range r.Counters.Values() {
			minV[j] = math.Min(minV[j], v)
			maxV[j] = math.Max(maxV[j], v)
		}
		prof.MeanTime += r.Time / float64(iterations)
		prof.MinTime = math.Min(prof.MinTime, r.Time)
		prof.MaxTime = math.Max(prof.MaxTime, r.Time)
	}
	prof.Mean = counters.Average(sets)
	prof.Min, _ = counters.FromValues(minV) //lint:ignore errdrop the vectors come from Values(), reconstruction cannot fail
	prof.Max, _ = counters.FromValues(maxV) //lint:ignore errdrop the vectors come from Values(), reconstruction cannot fail
	if prof.MinTime > 0 {
		prof.Spread = prof.MaxTime / prof.MinTime
	}
	return prof
}

// ProfileApp measures every kernel of an application at cfg.
func (p *Profiler) ProfileApp(app *workloads.Application, cfg hw.Config) []KernelProfile {
	iters := app.Iterations
	if p.Iterations > 0 {
		iters = p.Iterations
	}
	out := make([]KernelProfile, 0, len(app.Kernels))
	for _, k := range app.Kernels {
		out = append(out, p.ProfileKernel(k, iters, cfg))
	}
	return out
}

// ProfileSuite measures every kernel in the standard suite at cfg,
// sorted by kernel name — the corpus view the paper's Section 4 training
// methodology starts from.
func (p *Profiler) ProfileSuite(cfg hw.Config) []KernelProfile {
	var out []KernelProfile
	for _, app := range workloads.Suite() {
		out = append(out, p.ProfileApp(app, cfg)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

func (kp KernelProfile) String() string {
	return fmt.Sprintf("%s @ %v: %d samples, %.3fms mean (spread %.2fx), VALUBusy %.0f%%, MemBusy %.0f%%",
		kp.Kernel, kp.Config, kp.Samples, kp.MeanTime*1e3, kp.Spread,
		kp.Mean.VALUBusy, kp.Mean.MemUnitBusy)
}

// Table renders profiles as an aligned text table.
func Table(profiles []KernelProfile) string {
	var b strings.Builder
	b.WriteString("kernel                        samples  mean(ms)  spread  VALUBusy  MemBusy  icAct  occ\n")
	for _, p := range profiles {
		fmt.Fprintf(&b, "%-28s  %7d  %8.3f  %5.2fx  %7.1f%%  %6.1f%%  %5.2f  %4.2f\n",
			p.Kernel, p.Samples, p.MeanTime*1e3, p.Spread,
			p.Mean.VALUBusy, p.Mean.MemUnitBusy, p.Mean.ICActivity, p.Mean.Occupancy)
	}
	return b.String()
}
