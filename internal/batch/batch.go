// Package batch is a deterministic bounded-worker runner over job
// matrices. It generalizes internal/sweep's worker pool from "score one
// hardware configuration" to arbitrary (job → result, error) functions:
// a fixed set of workers drains an index queue, results are assembled in
// input order, and the first error — by input order, not completion
// order — is the one returned. Parallel and serial execution therefore
// produce identical outputs for pure job functions, which is what lets
// the experiments suite fan out across applications without perturbing
// the paper's numbers.
package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"harmonia/internal/trace"
)

// Workers clamps a requested worker count against the job count: zero or
// negative means GOMAXPROCS, and the pool never exceeds n jobs.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn over every job on a pool of the given size and returns the
// results in input order. fn receives the job's input index alongside
// its value so jobs can be labelled without closing over loop variables.
//
// Error semantics are deterministic: every job that starts runs to
// completion, and if any jobs fail, the job error with the earliest
// input index is returned (results of successful jobs are still
// populated). After the first observed failure the context passed to
// still-unstarted jobs is canceled, so long matrices stop promptly; fn
// implementations that honour ctx can also abort mid-job.
//
// A canceled parent context stops unstarted jobs and returns ctx.Err()
// unless an earlier job error takes precedence by input order.
//
// When ctx carries a trace span (trace.NewContext), every executed job
// is recorded as a "cell" child span under it — index, and the error
// text on failure. The spans are pure observation and do not change
// scheduling or results; under workers > 1 their start order follows
// scheduling, so traced parallel runs have deterministic results but
// scheduling-ordered span sequences.
func Map[J, R any](ctx context.Context, workers int, jobs []J, fn func(ctx context.Context, i int, job J) (R, error)) ([]R, error) {
	out := make([]R, len(jobs))
	if len(jobs) == 0 {
		return out, ctx.Err()
	}
	errs := make([]error, len(jobs))
	workers = Workers(workers, len(jobs))
	root := trace.FromContext(ctx)

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	runCell := func(i int) {
		cs := root.Child("cell")
		cs.Int("index", int64(i))
		out[i], errs[i] = fn(jobCtx, i, jobs[i])
		if errs[i] != nil {
			cs.Attr("error", errs[i].Error())
			cancel()
		}
		cs.End()
	}

	if workers == 1 {
		for i := range jobs {
			if err := jobCtx.Err(); err != nil {
				errs[i] = err
				break
			}
			runCell(i)
		}
		return out, firstError(errs)
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := jobCtx.Err(); err != nil {
					errs[i] = err
					continue
				}
				runCell(i)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, firstError(errs)
}

// firstError returns the earliest job error by input order. Context
// cancellations recorded for jobs that were skipped after another job
// failed are artifacts, not causes, so a real job error at any index
// takes precedence over an earlier cancellation; pure cancellation (the
// parent context died with no job failing) surfaces as the earliest
// recorded ctx error.
func firstError(errs []error) error {
	var cancellation error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancellation == nil {
				cancellation = err
			}
			continue
		}
		return err
	}
	return cancellation
}
