// Package batch is a deterministic bounded-worker runner over job
// matrices. It generalizes internal/sweep's worker pool from "score one
// hardware configuration" to arbitrary (job → result, error) functions:
// a fixed set of workers drains an index queue, results are assembled in
// input order, and the first error — by input order, not completion
// order — is the one returned. Parallel and serial execution therefore
// produce identical outputs for pure job functions, which is what lets
// the experiments suite fan out across applications without perturbing
// the paper's numbers.
//
// Nested fan-outs divide a Budget instead of each claiming the whole
// machine: an outer Map over applications claims N workers and hands
// every job a budgeted share for its inner sweeps, so the total number
// of concurrently executing jobs never exceeds the declared allowance.
// Before budgets, each of W outer jobs spawned full-GOMAXPROCS inner
// pools at every kernel boundary — W× oversubscription plus pool churn,
// the root cause of the suite's 1.17× parallel-scaling bug.
package batch

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"harmonia/internal/trace"
)

// Workers clamps a requested worker count against the job count: zero or
// negative means GOMAXPROCS, and the pool never exceeds n jobs.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Budget is a declared allowance of concurrently executing jobs that
// nested fan-outs divide instead of each independently claiming
// GOMAXPROCS. An outer fan-out over J jobs splits the budget into a
// pool width W = min(total, J) and an inner share total/W handed to
// every job for its own nested sweeps, so concurrent execution stays
// within the allowance: W outer jobs × (total/W) inner workers ≤ total.
//
// The zero value is not a usable budget; construct with NewBudget.
// Budgets are immutable values — splitting never mutates, so one budget
// may parameterize any number of fan-outs.
type Budget struct {
	total int
}

// NewBudget declares an allowance of n concurrent workers. Zero or
// negative means GOMAXPROCS, mirroring the Workers convention.
func NewBudget(n int) Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return Budget{total: n}
}

// Workers returns the budget's total allowance, the width to pass to a
// flat (non-nested) fan-out.
func (b Budget) Workers() int {
	if b.total < 1 {
		return 1
	}
	return b.total
}

// Split divides the budget across an outer fan-out of n jobs: it
// returns the outer pool width and the inner budget each job should
// hand to its nested sweeps. The product never exceeds the total, and
// both sides are at least 1, so a budget of 1 degrades to fully serial
// execution (outer width 1, inner share 1) — the shape a 448-cell sweep
// inside an already-parallel suite should take.
func (b Budget) Split(n int) (workers int, inner Budget) {
	total := b.Workers()
	workers = Workers(total, n)
	share := total / workers
	if share < 1 {
		share = 1
	}
	return workers, Budget{total: share}
}

// Worker-gauge instrumentation: every goroutine a pool in this module
// spawns (batch.Map's extra workers and internal/sweep's) is counted
// for its lifetime, so tests can assert that budgeted nested fan-outs
// never exceed their declared allowance. The calling goroutine always
// participates in its own pool and is never double-counted, so the
// invariant under a budget of N is PeakWorkers()+1 ≤ N. The cost is two
// atomic updates per spawned worker — per pool spin-up, not per job.
var (
	liveWorkers atomic.Int64
	peakWorkers atomic.Int64
)

// EnterWorker records one spawned pool worker for the duration between
// the call and the returned release. It is exported for this module's
// pool implementations (internal/sweep); application code has no reason
// to call it.
func EnterWorker() (leave func()) {
	n := liveWorkers.Add(1)
	for {
		p := peakWorkers.Load()
		if n <= p || peakWorkers.CompareAndSwap(p, n) {
			break
		}
	}
	return func() { liveWorkers.Add(-1) }
}

// ResetPeakWorkers clears the spawned-worker high-water mark (test
// hook).
func ResetPeakWorkers() { peakWorkers.Store(liveWorkers.Load()) }

// PeakWorkers returns the highest number of concurrently live spawned
// pool workers since the last reset (test hook). The goroutine that
// called the outermost fan-out is not included: total concurrent
// executors = PeakWorkers() + 1.
func PeakWorkers() int64 { return peakWorkers.Load() }

// Map runs fn over every job on a pool of the given size and returns the
// results in input order. fn receives the job's input index alongside
// its value so jobs can be labelled without closing over loop variables.
//
// Error semantics are deterministic: every job that starts runs to
// completion, and if any jobs fail, the job error with the earliest
// input index is returned (results of successful jobs are still
// populated). After the first observed failure the context passed to
// still-unstarted jobs is canceled, so long matrices stop promptly; fn
// implementations that honour ctx can also abort mid-job.
//
// A canceled parent context stops unstarted jobs and returns ctx.Err()
// unless an earlier job error takes precedence by input order.
//
// The calling goroutine participates in the pool: a width-W parallel
// run spawns only W-1 extra goroutines, and a width-1 run spawns none
// and allocates no synchronization state at all — the serial fast path
// a budgeted inner sweep rides at every kernel boundary.
//
// When ctx carries a trace span (trace.NewContext), every executed job
// is recorded as a "cell" child span under it — index, and the error
// text on failure. The spans are pure observation and do not change
// scheduling or results; under workers > 1 their start order follows
// scheduling, so traced parallel runs have deterministic results but
// scheduling-ordered span sequences.
func Map[J, R any](ctx context.Context, workers int, jobs []J, fn func(ctx context.Context, i int, job J) (R, error)) ([]R, error) {
	out := make([]R, len(jobs))
	if len(jobs) == 0 {
		return out, ctx.Err()
	}
	errs := make([]error, len(jobs))
	workers = Workers(workers, len(jobs))
	root := trace.FromContext(ctx)

	if workers == 1 {
		// Serial fast path: no derived context, no goroutines. A job
		// error stops the loop exactly where the parallel path's
		// cancellation would have recorded skips, and firstError
		// resolves both shapes to the same returned error.
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				break
			}
			cs := root.Child("cell")
			cs.Int("index", int64(i))
			out[i], errs[i] = fn(ctx, i, jobs[i])
			if errs[i] != nil {
				cs.Attr("error", errs[i].Error())
				cs.End()
				break
			}
			cs.End()
		}
		return out, firstError(errs)
	}

	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The index queue is an atomic counter rather than a fed channel:
	// no per-job channel sends, and the caller drains alongside the
	// spawned workers instead of blocking as a feeder — which is what
	// keeps a budgeted nested fan-out's concurrency at exactly its
	// declared width.
	var next atomic.Int64
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			if err := jobCtx.Err(); err != nil {
				errs[i] = err
				continue
			}
			cs := root.Child("cell")
			cs.Int("index", int64(i))
			out[i], errs[i] = fn(jobCtx, i, jobs[i])
			if errs[i] != nil {
				cs.Attr("error", errs[i].Error())
				cancel()
			}
			cs.End()
		}
	}

	var wg sync.WaitGroup
	//lint:ignore ctxflow workers run drain, which checks jobCtx.Err before every cell, and are wg-joined below
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer EnterWorker()()
			drain()
		}()
	}
	drain()
	wg.Wait()
	return out, firstError(errs)
}

// firstError returns the earliest job error by input order. Context
// cancellations recorded for jobs that were skipped after another job
// failed are artifacts, not causes, so a real job error at any index
// takes precedence over an earlier cancellation; pure cancellation (the
// parent context died with no job failing) surfaces as the earliest
// recorded ctx error.
func firstError(errs []error) error {
	var cancellation error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancellation == nil {
				cancellation = err
			}
			continue
		}
		return err
	}
	return cancellation
}
