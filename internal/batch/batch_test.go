package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"harmonia/internal/trace"
)

func TestMapPreservesInputOrder(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	out, err := Map(context.Background(), 8, jobs, func(_ context.Context, i int, j int) (string, error) {
		return fmt.Sprintf("%d/%d", i, j), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if want := fmt.Sprintf("%d/%d", i, i); s != want {
			t.Fatalf("index %d: got %q want %q", i, s, want)
		}
	}
}

func TestSerialParallelEquivalence(t *testing.T) {
	jobs := make([]int, 257)
	for i := range jobs {
		jobs[i] = i * 3
	}
	fn := func(_ context.Context, i int, j int) (int, error) { return i*1000 + j, nil }
	serial, err := Map(context.Background(), 1, jobs, fn)
	if err != nil {
		t.Fatal(err)
	}
	f := func(workers uint8) bool {
		par, err := Map(context.Background(), int(workers%33), jobs, fn)
		if err != nil || len(par) != len(serial) {
			return false
		}
		for i := range serial {
			if par[i] != serial[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Error(err)
	}
}

func TestEarliestErrorWins(t *testing.T) {
	boom3 := errors.New("job 3 failed")
	boom7 := errors.New("job 7 failed")
	fn := func(_ context.Context, i int, _ int) (int, error) {
		switch i {
		case 3:
			return 0, boom3
		case 7:
			return 0, boom7
		}
		return i, nil
	}
	// Serial execution is fully deterministic: job 3 fails first and
	// job 7 is never started, so its error can't surface.
	if _, err := Map(context.Background(), 1, make([]int, 10), fn); !errors.Is(err, boom3) {
		t.Fatalf("workers=1: got %v, want job 3's error", err)
	}
	// In parallel, whichever failing job actually ran earliest wins —
	// but the error is always a real job error, never a cancellation
	// artifact from a skipped job.
	for _, workers := range []int{4, 16} {
		_, err := Map(context.Background(), workers, make([]int, 10), fn)
		if !errors.Is(err, boom3) && !errors.Is(err, boom7) {
			t.Fatalf("workers=%d: got %v, want a job error", workers, err)
		}
	}
}

func TestRealErrorBeatsCancellationArtifacts(t *testing.T) {
	// Job 5 fails and cancels the shared context; earlier-index jobs
	// that then see a dead context must not mask the real error.
	boom := errors.New("the real failure")
	var failed atomic.Bool
	_, err := Map(context.Background(), 2, make([]int, 50),
		func(ctx context.Context, i int, _ int) (int, error) {
			if i == 5 {
				failed.Store(true)
				return 0, boom
			}
			if failed.Load() {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the real job error", err)
	}
}

func TestContextCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, make([]int, 100), func(ctx context.Context, i int, _ int) (int, error) {
		return i, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(context.Background(), workers, make([]int, 60),
		func(_ context.Context, i int, _ int) (int, error) {
			n := cur.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			runtime.Gosched()
			cur.Add(-1)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", p, workers)
	}
}

func TestEveryJobRunsExactlyOnce(t *testing.T) {
	ran := make([]atomic.Int64, 200)
	_, err := Map(context.Background(), 16, make([]int, len(ran)),
		func(_ context.Context, i int, _ int) (int, error) {
			ran[i].Add(1)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if n := ran[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestWorkersClamp(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, runtime.GOMAXPROCS(0)},
		{-3, 10, runtime.GOMAXPROCS(0)},
		{5, 3, 3},
		{2, 10, 2},
		{4, 0, 1},
	}
	for _, c := range cases {
		got := Workers(c.workers, c.n)
		want := c.want
		if want > c.n && c.n > 0 {
			want = c.n
		}
		if got != want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, want)
		}
	}
}

func TestEmptyJobs(t *testing.T) {
	out, err := Map(context.Background(), 4, []int(nil), func(_ context.Context, i int, _ int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
}

func TestBudgetSplit(t *testing.T) {
	cases := []struct {
		total, jobs   int
		wantW, wantIn int
	}{
		{8, 4, 4, 2},                     // even split
		{8, 3, 3, 2},                     // remainder discarded: 3×2 ≤ 8
		{8, 16, 8, 1},                    // more jobs than budget: width capped, serial inner
		{1, 10, 1, 1},                    // budget 1 degrades to fully serial
		{4, 1, 1, 4},                     // single job gets the whole allowance
		{6, 4, 4, 1},                     // 6/4 rounds down, never up
		{0, 5, runtime.GOMAXPROCS(0), 0}, // zero means GOMAXPROCS
	}
	for _, c := range cases {
		b := NewBudget(c.total)
		w, inner := b.Split(c.jobs)
		if c.total == 0 {
			// GOMAXPROCS-dependent: check only the invariants below.
			c.wantW = w
			c.wantIn = inner.Workers()
		}
		if w != c.wantW || inner.Workers() != c.wantIn {
			t.Errorf("NewBudget(%d).Split(%d) = (%d, %d), want (%d, %d)",
				c.total, c.jobs, w, inner.Workers(), c.wantW, c.wantIn)
		}
		if w*inner.Workers() > b.Workers() && b.Workers() > 1 {
			t.Errorf("NewBudget(%d).Split(%d): %d×%d exceeds allowance %d",
				c.total, c.jobs, w, inner.Workers(), b.Workers())
		}
		if w < 1 || inner.Workers() < 1 {
			t.Errorf("NewBudget(%d).Split(%d): degenerate split (%d, %d)",
				c.total, c.jobs, w, inner.Workers())
		}
	}
}

func TestBudgetSplitInvariant(t *testing.T) {
	f := func(total, jobs uint8) bool {
		b := NewBudget(int(total%64) + 1)
		w, inner := b.Split(int(jobs % 100))
		if w < 1 || inner.Workers() < 1 {
			return false
		}
		// The allowance is never exceeded (except the degenerate
		// width-1 × share-1 floor, which is ≤ any budget ≥ 1).
		return w*inner.Workers() <= b.Workers() || (w == 1 && inner.Workers() == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroBudgetDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := NewBudget(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("NewBudget(0).Workers() = %d, want %d", got, want)
	}
	if got := NewBudget(-5).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewBudget(-5).Workers() = %d, want GOMAXPROCS", got)
	}
}

// TestSerialMapSpawnsNoWorkers: the width-1 fast path must not register
// any pool workers on the gauge — it runs entirely on the caller.
func TestSerialMapSpawnsNoWorkers(t *testing.T) {
	ResetPeakWorkers()
	base := PeakWorkers()
	_, err := Map(context.Background(), 1, make([]int, 50), func(_ context.Context, i int, _ int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := PeakWorkers(); p != base {
		t.Fatalf("serial Map moved the worker gauge: %d → %d", base, p)
	}
}

// TestMapSpawnsWorkersMinusOne: a width-W pool spawns exactly W-1
// goroutines; the caller is the W-th executor.
func TestMapSpawnsWorkersMinusOne(t *testing.T) {
	const workers = 5
	ResetPeakWorkers()
	// Hold every executor in-flight simultaneously so the gauge's peak
	// is deterministic, then release once all are counted.
	release := make(chan struct{})
	var inFlight sync.WaitGroup
	inFlight.Add(workers)
	done := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), workers, make([]int, workers),
			func(_ context.Context, i int, _ int) (int, error) {
				inFlight.Done()
				<-release
				return i, nil
			})
		done <- err
	}()
	inFlight.Wait()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p := PeakWorkers(); p != workers-1 {
		t.Fatalf("PeakWorkers() = %d, want %d (pool of %d spawns workers-1)", p, workers-1, workers)
	}
}

// TestBudgetedNestingStaysWithinAllowance: an outer Map splitting a
// budget across jobs that each run a budgeted inner Map never has more
// than budget-1 spawned workers live (the caller is the +1).
func TestBudgetedNestingStaysWithinAllowance(t *testing.T) {
	for _, total := range []int{1, 2, 4, 8} {
		ResetPeakWorkers()
		b := NewBudget(total)
		outerW, inner := b.Split(6)
		_, err := Map(context.Background(), outerW, make([]int, 6),
			func(ctx context.Context, _ int, _ int) (int, error) {
				sub, err := Map(ctx, inner.Workers(), make([]int, 40),
					func(_ context.Context, j int, _ int) (int, error) {
						runtime.Gosched()
						return j, nil
					})
				return len(sub), err
			})
		if err != nil {
			t.Fatal(err)
		}
		if p := PeakWorkers(); p+1 > int64(total) {
			t.Fatalf("budget %d: peak spawned workers %d (+1 caller) exceeds allowance", total, p)
		}
	}
}

// TestMapRecordsCellSpans: a context carrying a span yields one "cell"
// child per job, indexed, with failures annotated — and a bare context
// records nothing.
func TestMapRecordsCellSpans(t *testing.T) {
	rec := trace.New(1)
	root := rec.Start(nil, "batch")
	ctx := trace.NewContext(context.Background(), root)
	boom := errors.New("job 2 failed")
	_, err := Map(ctx, 1, []int{10, 20, 30}, func(_ context.Context, i int, j int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return j, nil
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	root.End()

	snap := rec.Snapshot()
	var cells []trace.SpanData
	for _, sp := range snap.Spans {
		if sp.Name == "cell" {
			cells = append(cells, sp)
		}
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cell spans, want 3", len(cells))
	}
	for i, sp := range cells {
		attrs := map[string]string{}
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["index"] != fmt.Sprint(i) {
			t.Fatalf("cell %d index attr = %q", i, attrs["index"])
		}
		if i == 2 && attrs["error"] == "" {
			t.Fatal("failed cell span missing error attr")
		}
		if !sp.Ended {
			t.Fatalf("cell %d span left open", i)
		}
	}

	// Untraced contexts must stay span-free.
	if _, err := Map(context.Background(), 2, []int{1}, func(_ context.Context, _ int, j int) (int, error) {
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 4 {
		t.Fatalf("untraced Map added spans: %d", rec.Len())
	}
}
