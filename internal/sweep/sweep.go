// Package sweep evaluates functions over the hardware configuration
// space in parallel. The paper's methodology is built on exhaustive
// sweeps — 448 configurations per kernel for sensitivity measurement
// (Section 4.1), oracle search (Section 7), and the balance and metric
// explorations of Section 3 — and the simulator is pure, so the sweeps
// parallelize perfectly across a worker pool.
//
// All functions are deterministic: results are assembled in input order
// and minima are resolved to the earliest index, so parallel and serial
// execution produce identical answers.
package sweep

import (
	"runtime"
	"sync"

	"harmonia/internal/hw"
)

// Eval scores one configuration.
type Eval func(cfg hw.Config) float64

// workersOrDefault clamps the worker count.
func workersOrDefault(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map evaluates eval at every configuration in space, in parallel,
// returning values in input order.
func Map(space []hw.Config, workers int, eval Eval) []float64 {
	out := make([]float64, len(space))
	if len(space) == 0 {
		return out
	}
	workers = workersOrDefault(workers, len(space))
	if workers == 1 {
		for i, cfg := range space {
			out[i] = eval(cfg)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = eval(space[i])
			}
		}()
	}
	for i := range space {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Min returns the configuration with the smallest value and that value,
// ties resolved to the earliest configuration in space. It returns false
// when space is empty.
func Min(space []hw.Config, workers int, eval Eval) (hw.Config, float64, bool) {
	if len(space) == 0 {
		return hw.Config{}, 0, false
	}
	vals := Map(space, workers, eval)
	bestI := 0
	for i, v := range vals {
		if v < vals[bestI] {
			bestI = i
		}
	}
	return space[bestI], vals[bestI], true
}

// Result pairs a configuration with its value.
type Result struct {
	Config hw.Config
	Value  float64
}

// All evaluates the whole space and returns (config, value) pairs in
// input order.
func All(space []hw.Config, workers int, eval Eval) []Result {
	vals := Map(space, workers, eval)
	out := make([]Result, len(space))
	for i := range space {
		out[i] = Result{Config: space[i], Value: vals[i]}
	}
	return out
}
