// Package sweep evaluates functions over the hardware configuration
// space in parallel. The paper's methodology is built on exhaustive
// sweeps — 448 configurations per kernel for sensitivity measurement
// (Section 4.1), oracle search (Section 7), and the balance and metric
// explorations of Section 3 — and the simulator is pure, so the sweeps
// parallelize perfectly across a worker pool.
//
// The pool itself is internal/batch's deterministic bounded-worker
// runner: results are assembled in input order and minima are resolved
// to the earliest index, so parallel and serial execution produce
// identical answers.
package sweep

import (
	"context"
	"math"

	"harmonia/internal/batch"
	"harmonia/internal/hw"
	"harmonia/internal/trace"
)

// Eval scores one configuration.
type Eval func(cfg hw.Config) float64

// Map evaluates eval at every configuration in space, in parallel,
// returning values in input order.
func Map(space []hw.Config, workers int, eval Eval) []float64 {
	//lint:ignore errdrop the eval closure never errors and the background context is never canceled
	out, _ := batch.Map(context.Background(), workers, space,
		func(_ context.Context, _ int, cfg hw.Config) (float64, error) {
			return eval(cfg), nil
		})
	return out
}

// Min returns the configuration with the smallest value and that value,
// ties resolved to the earliest configuration in space. Non-finite
// values (NaN, ±Inf) never win: NaN compares false against everything,
// so a single NaN early in the sweep would otherwise poison the whole
// minimum. It returns false when space is empty or no configuration
// evaluates to a finite value.
func Min(space []hw.Config, workers int, eval Eval) (hw.Config, float64, bool) {
	if len(space) == 0 {
		return hw.Config{}, 0, false
	}
	vals := Map(space, workers, eval)
	bestI := -1
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if bestI < 0 || v < vals[bestI] {
			bestI = i
		}
	}
	if bestI < 0 {
		return hw.Config{}, 0, false
	}
	return space[bestI], vals[bestI], true
}

// MinTraced is Min, recording the sweep as a child span of sp (when sp
// is non-nil): the swept space size and, when a winner exists, the
// argmin configuration and its value. The annotation is pure
// observation — the returned values are exactly Min's.
func MinTraced(sp *trace.Span, space []hw.Config, workers int, eval Eval) (hw.Config, float64, bool) {
	if sp == nil {
		return Min(space, workers, eval)
	}
	ss := sp.Child("sweep")
	ss.Int("space", int64(len(space)))
	best, val, ok := Min(space, workers, eval)
	if ok {
		ss.Attr("argmin", best.String()).Float("value", val)
	} else {
		ss.Bool("no_finite_value", true)
	}
	ss.End()
	return best, val, ok
}

// Result pairs a configuration with its value.
type Result struct {
	Config hw.Config
	Value  float64
}

// All evaluates the whole space and returns (config, value) pairs in
// input order.
func All(space []hw.Config, workers int, eval Eval) []Result {
	vals := Map(space, workers, eval)
	out := make([]Result, len(space))
	for i := range space {
		out[i] = Result{Config: space[i], Value: vals[i]}
	}
	return out
}
