// Package sweep evaluates functions over the hardware configuration
// space in parallel. The paper's methodology is built on exhaustive
// sweeps — 448 configurations per kernel for sensitivity measurement
// (Section 4.1), oracle search (Section 7), and the balance and metric
// explorations of Section 3 — and the simulator is pure, so the sweeps
// parallelize perfectly across a worker pool.
//
// Because sweeps run at every kernel boundary on the hottest path in
// the repo, the pool here is leaner than internal/batch's general
// runner: evals never error and need no context, so the loop is a bare
// atomic index counter with no channels, no error slice, and no derived
// context. Results are assembled in input order and minima resolve to
// the earliest index, so parallel and serial execution produce
// identical answers. A serial cutoff keeps tiny spaces (or sweeps
// running under a budget share of 1) from paying any pool spin-up at
// all, and Min evaluates into pooled scratch so a steady-state sweep
// allocates nothing.
package sweep

import (
	"math"
	"sync"
	"sync/atomic"

	"harmonia/internal/batch"
	"harmonia/internal/hw"
	"harmonia/internal/trace"
)

// Eval scores one configuration.
type Eval func(cfg hw.Config) float64

// minCellsPerWorker is the serial cutoff: a worker is only worth
// spawning if it has at least this many cells to score. Below the
// threshold, goroutine spin-up and the scheduler handoff cost more than
// the evaluations they would parallelize; a 448-cell paper-space sweep
// still fans out to up to 28 workers, while an 8-cell DVFS ladder runs
// serially no matter the requested width.
const minCellsPerWorker = 16

// width clamps the requested worker count against both the space size
// and the serial cutoff.
func width(workers, n int) int {
	workers = batch.Workers(workers, n)
	if maxW := n / minCellsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// MapInto evaluates eval at every configuration in space and writes the
// values into dst, which must have len(dst) == len(space). It is the
// allocation-free core of Map/Min: the serial path (width 1 after the
// cutoff) is a bare loop, and the parallel path's only allocations are
// the worker goroutines themselves.
func MapInto(dst []float64, space []hw.Config, workers int, eval Eval) {
	if len(dst) != len(space) {
		panic("sweep.MapInto: len(dst) != len(space)")
	}
	workers = width(workers, len(space))
	if workers == 1 {
		for i, cfg := range space {
			dst[i] = eval(cfg)
		}
		return
	}
	// The calling goroutine participates: spawn workers-1, drain
	// alongside them. Spawned workers register on the batch worker
	// gauge so budget tests can assert nested fan-outs stay within
	// their declared allowance.
	var next atomic.Int64
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(space) {
				return
			}
			dst[i] = eval(space[i])
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer batch.EnterWorker()()
			drain()
		}()
	}
	drain()
	wg.Wait()
}

// Map evaluates eval at every configuration in space, in parallel,
// returning values in input order.
func Map(space []hw.Config, workers int, eval Eval) []float64 {
	out := make([]float64, len(space))
	MapInto(out, space, workers, eval)
	return out
}

// scratch recycles value buffers across Min calls so a steady-state
// sweep at a stable space size allocates nothing.
var scratch = sync.Pool{New: func() any { return new([]float64) }}

// Min returns the configuration with the smallest value and that value,
// ties resolved to the earliest configuration in space. Non-finite
// values (NaN, ±Inf) never win: NaN compares false against everything,
// so a single NaN early in the sweep would otherwise poison the whole
// minimum. It returns false when space is empty or no configuration
// evaluates to a finite value.
func Min(space []hw.Config, workers int, eval Eval) (hw.Config, float64, bool) {
	if len(space) == 0 {
		return hw.Config{}, 0, false
	}
	bp := scratch.Get().(*[]float64)
	if cap(*bp) < len(space) {
		*bp = make([]float64, len(space))
	}
	vals := (*bp)[:len(space)]
	MapInto(vals, space, workers, eval)
	bestI := -1
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if bestI < 0 || v < vals[bestI] {
			bestI = i
		}
	}
	var (
		best hw.Config
		val  float64
	)
	if bestI >= 0 {
		best, val = space[bestI], vals[bestI]
	}
	scratch.Put(bp)
	if bestI < 0 {
		return hw.Config{}, 0, false
	}
	return best, val, true
}

// MinTraced is Min, recording the sweep as a child span of sp (when sp
// is non-nil): the swept space size and, when a winner exists, the
// argmin configuration and its value. The annotation is pure
// observation — the returned values are exactly Min's.
func MinTraced(sp *trace.Span, space []hw.Config, workers int, eval Eval) (hw.Config, float64, bool) {
	if sp == nil {
		return Min(space, workers, eval)
	}
	ss := sp.Child("sweep")
	ss.Int("space", int64(len(space)))
	best, val, ok := Min(space, workers, eval)
	if ok {
		ss.Attr("argmin", best.String()).Float("value", val)
	} else {
		ss.Bool("no_finite_value", true)
	}
	ss.End()
	return best, val, ok
}

// Result pairs a configuration with its value.
type Result struct {
	Config hw.Config
	Value  float64
}

// All evaluates the whole space and returns (config, value) pairs in
// input order.
func All(space []hw.Config, workers int, eval Eval) []Result {
	vals := Map(space, workers, eval)
	out := make([]Result, len(space))
	for i := range space {
		out[i] = Result{Config: space[i], Value: vals[i]}
	}
	return out
}
