package sweep

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

func score(cfg hw.Config) float64 {
	// An arbitrary deterministic function with a unique minimum.
	return math.Abs(float64(cfg.Compute.CUs)-16) +
		math.Abs(float64(cfg.Compute.Freq)-700)/100 +
		math.Abs(float64(cfg.Memory.BusFreq)-925)/150
}

func TestMapMatchesSerial(t *testing.T) {
	space := hw.ConfigSpace()
	serial := Map(space, 1, score)
	parallel := Map(space, 8, score)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %v parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestMinFindsGlobalMinimum(t *testing.T) {
	space := hw.ConfigSpace()
	cfg, val, ok := Min(space, 0, score)
	if !ok {
		t.Fatal("Min on non-empty space returned false")
	}
	want := hw.Config{
		Compute: hw.ComputeConfig{CUs: 16, Freq: 700},
		Memory:  hw.MemConfig{BusFreq: 925},
	}
	if cfg != want || val != 0 {
		t.Errorf("Min = %v (%v), want %v (0)", cfg, val, want)
	}
}

func TestMinTieBreaksToEarliest(t *testing.T) {
	space := hw.ConfigSpace()
	cfg, _, ok := Min(space, 8, func(hw.Config) float64 { return 7 })
	if !ok || cfg != space[0] {
		t.Errorf("tie not broken to earliest: %v", cfg)
	}
}

func TestEmptySpace(t *testing.T) {
	if _, _, ok := Min(nil, 4, score); ok {
		t.Error("Min on empty space returned true")
	}
	if got := Map(nil, 4, score); len(got) != 0 {
		t.Error("Map on empty space returned values")
	}
}

func TestAllPreservesOrder(t *testing.T) {
	space := hw.ConfigSpace()[:20]
	rs := All(space, 4, score)
	for i, r := range rs {
		if r.Config != space[i] {
			t.Fatalf("index %d out of order", i)
		}
		if r.Value != score(space[i]) {
			t.Fatalf("index %d wrong value", i)
		}
	}
}

func TestEveryConfigEvaluatedExactlyOnce(t *testing.T) {
	space := hw.ConfigSpace()
	var calls int64
	Map(space, 16, func(cfg hw.Config) float64 {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	if calls != int64(len(space)) {
		t.Errorf("eval called %d times for %d configs", calls, len(space))
	}
}

// Property: parallel Min equals serial Min for arbitrary worker counts.
func TestParallelSerialEquivalenceProperty(t *testing.T) {
	space := hw.ConfigSpace()
	f := func(workers uint8) bool {
		c1, v1, _ := Min(space, 1, score)
		c2, v2, _ := Min(space, int(workers%32), score)
		return c1 == c2 && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelSimulatorSweepIsSafe(t *testing.T) {
	// The simulator must be safe for concurrent read-only use: sweep a
	// real kernel with many workers and compare to serial. Run with
	// -race in CI to catch data races.
	sim := gpusim.Default()
	var k *workloads.Kernel
	for _, kk := range workloads.AllKernels() {
		if kk.Name == "SRAD.Main" {
			k = kk
		}
	}
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	space := hw.ConfigSpace()
	serial := Map(space, 1, eval)
	parallel := Map(space, 12, eval)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: parallel simulation diverged", i)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B) {
	sim := gpusim.Default()
	k := workloads.AllKernels()[0]
	space := hw.ConfigSpace()
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(space, 1, eval)
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	sim := gpusim.Default()
	k := workloads.AllKernels()[0]
	space := hw.ConfigSpace()
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(space, 0, eval)
	}
}

// Regression tests for NaN poisoning: v < best compares false for NaN,
// so a non-finite value early in the sweep must not lock out every
// later finite one, and non-finite values must never win.
func TestMinSkipsNonFinite(t *testing.T) {
	space := hw.ConfigSpace()[:6]
	cases := []struct {
		name  string
		vals  []float64
		wantI int
		ok    bool
	}{
		{"nan-first", []float64{math.NaN(), 5, 3, 4, 9, 7}, 2, true},
		{"nan-mixed", []float64{6, math.NaN(), 2, math.NaN(), 1, math.NaN()}, 4, true},
		{"inf-mixed", []float64{math.Inf(1), 8, math.Inf(-1), 4, 5, 6}, 3, true},
		{"all-nan", []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}, 0, false},
		{"all-nonfinite", []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.NaN(), math.Inf(1), math.NaN()}, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx := make(map[hw.Config]int, len(space))
			for i, cfg := range space {
				idx[cfg] = i
			}
			for _, workers := range []int{1, 4} {
				cfg, val, ok := Min(space, workers, func(c hw.Config) float64 { return tc.vals[idx[c]] })
				if ok != tc.ok {
					t.Fatalf("workers=%d: ok=%v, want %v", workers, ok, tc.ok)
				}
				if !tc.ok {
					if cfg != (hw.Config{}) || val != 0 {
						t.Fatalf("workers=%d: all-non-finite must return zero values, got %v %v", workers, cfg, val)
					}
					continue
				}
				if cfg != space[tc.wantI] || val != tc.vals[tc.wantI] {
					t.Fatalf("workers=%d: Min = %v (%v), want index %d (%v)",
						workers, cfg, val, tc.wantI, tc.vals[tc.wantI])
				}
			}
		})
	}
}
