package sweep

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"harmonia/internal/batch"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

func score(cfg hw.Config) float64 {
	// An arbitrary deterministic function with a unique minimum.
	return math.Abs(float64(cfg.Compute.CUs)-16) +
		math.Abs(float64(cfg.Compute.Freq)-700)/100 +
		math.Abs(float64(cfg.Memory.BusFreq)-925)/150
}

func TestMapMatchesSerial(t *testing.T) {
	space := hw.ConfigSpace()
	serial := Map(space, 1, score)
	parallel := Map(space, 8, score)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %v parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestMinFindsGlobalMinimum(t *testing.T) {
	space := hw.ConfigSpace()
	cfg, val, ok := Min(space, 0, score)
	if !ok {
		t.Fatal("Min on non-empty space returned false")
	}
	want := hw.Config{
		Compute: hw.ComputeConfig{CUs: 16, Freq: 700},
		Memory:  hw.MemConfig{BusFreq: 925},
	}
	if cfg != want || val != 0 {
		t.Errorf("Min = %v (%v), want %v (0)", cfg, val, want)
	}
}

func TestMinTieBreaksToEarliest(t *testing.T) {
	space := hw.ConfigSpace()
	cfg, _, ok := Min(space, 8, func(hw.Config) float64 { return 7 })
	if !ok || cfg != space[0] {
		t.Errorf("tie not broken to earliest: %v", cfg)
	}
}

func TestEmptySpace(t *testing.T) {
	if _, _, ok := Min(nil, 4, score); ok {
		t.Error("Min on empty space returned true")
	}
	if got := Map(nil, 4, score); len(got) != 0 {
		t.Error("Map on empty space returned values")
	}
}

func TestAllPreservesOrder(t *testing.T) {
	space := hw.ConfigSpace()[:20]
	rs := All(space, 4, score)
	for i, r := range rs {
		if r.Config != space[i] {
			t.Fatalf("index %d out of order", i)
		}
		if r.Value != score(space[i]) {
			t.Fatalf("index %d wrong value", i)
		}
	}
}

func TestEveryConfigEvaluatedExactlyOnce(t *testing.T) {
	space := hw.ConfigSpace()
	var calls int64
	Map(space, 16, func(cfg hw.Config) float64 {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	if calls != int64(len(space)) {
		t.Errorf("eval called %d times for %d configs", calls, len(space))
	}
}

// Property: parallel Min equals serial Min for arbitrary worker counts.
func TestParallelSerialEquivalenceProperty(t *testing.T) {
	space := hw.ConfigSpace()
	f := func(workers uint8) bool {
		c1, v1, _ := Min(space, 1, score)
		c2, v2, _ := Min(space, int(workers%32), score)
		return c1 == c2 && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelSimulatorSweepIsSafe(t *testing.T) {
	// The simulator must be safe for concurrent read-only use: sweep a
	// real kernel with many workers and compare to serial. Run with
	// -race in CI to catch data races.
	sim := gpusim.Default()
	var k *workloads.Kernel
	for _, kk := range workloads.AllKernels() {
		if kk.Name == "SRAD.Main" {
			k = kk
		}
	}
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	space := hw.ConfigSpace()
	serial := Map(space, 1, eval)
	parallel := Map(space, 12, eval)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: parallel simulation diverged", i)
		}
	}
}

func BenchmarkSweepSerial(b *testing.B) {
	sim := gpusim.Default()
	k := workloads.AllKernels()[0]
	space := hw.ConfigSpace()
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(space, 1, eval)
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	sim := gpusim.Default()
	k := workloads.AllKernels()[0]
	space := hw.ConfigSpace()
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(space, 0, eval)
	}
}

func TestMapIntoMatchesMap(t *testing.T) {
	space := hw.ConfigSpace()
	want := Map(space, 4, score)
	dst := make([]float64, len(space))
	MapInto(dst, space, 4, score)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("index %d: MapInto %v, Map %v", i, dst[i], want[i])
		}
	}
}

func TestMapIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MapInto with mismatched dst did not panic")
		}
	}()
	MapInto(make([]float64, 3), hw.ConfigSpace()[:5], 1, score)
}

// TestSmallSweepStaysSerial: the serial cutoff means sweeping a space
// smaller than minCellsPerWorker never spawns pool workers, no matter
// the requested width.
func TestSmallSweepStaysSerial(t *testing.T) {
	batch.ResetPeakWorkers()
	base := batch.PeakWorkers()
	Map(hw.ConfigSpace()[:minCellsPerWorker-1], 16, score)
	Min(hw.ConfigSpace()[:8], 0, score)
	if p := batch.PeakWorkers(); p != base {
		t.Fatalf("small sweep spawned pool workers: gauge %d → %d", base, p)
	}
}

// TestWidthCutoff: width respects the jobs-per-worker floor.
func TestWidthCutoff(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{8, 448, 8},                        // plenty of cells per worker
		{64, 448, 448 / minCellsPerWorker}, // capped by the cutoff
		{8, minCellsPerWorker - 1, 1},      // too small: serial
		{8, minCellsPerWorker, 1},          // exactly one worker's worth
		{8, 2 * minCellsPerWorker, 2},
		{1, 448, 1},
	}
	for _, c := range cases {
		if got := width(c.workers, c.n); got != c.want {
			t.Errorf("width(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestMinAllocationFree: steady-state Min over a stable space size must
// not allocate — the scratch pool recycles the value buffer and the
// serial path spins no goroutines.
func TestMinAllocationFree(t *testing.T) {
	space := hw.ConfigSpace()
	Min(space, 1, score) // warm the scratch pool
	avg := testing.AllocsPerRun(20, func() {
		Min(space, 1, score)
	})
	if avg > 0 {
		t.Fatalf("serial Min allocates %.1f objects per run, want 0", avg)
	}
}

// BenchmarkSmallSweep measures the kernel-boundary shape that made pool
// spin-up dominate before the serial cutoff: a tiny space swept with a
// large requested width. With the cutoff this is a bare loop.
func BenchmarkSmallSweep(b *testing.B) {
	sim := gpusim.Default()
	k := workloads.AllKernels()[0]
	space := hw.ConfigSpace()[:8]
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Min(space, 16, eval)
	}
}

// BenchmarkMinSerial is the budgeted inner-sweep shape: full space,
// budget share of 1. Zero allocations once the scratch pool is warm.
func BenchmarkMinSerial(b *testing.B) {
	sim := gpusim.Default()
	k := workloads.AllKernels()[0]
	space := hw.ConfigSpace()
	eval := func(cfg hw.Config) float64 { return sim.Run(k, 0, cfg).Time }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Min(space, 1, eval)
	}
}

// Regression tests for NaN poisoning: v < best compares false for NaN,
// so a non-finite value early in the sweep must not lock out every
// later finite one, and non-finite values must never win.
func TestMinSkipsNonFinite(t *testing.T) {
	space := hw.ConfigSpace()[:6]
	cases := []struct {
		name  string
		vals  []float64
		wantI int
		ok    bool
	}{
		{"nan-first", []float64{math.NaN(), 5, 3, 4, 9, 7}, 2, true},
		{"nan-mixed", []float64{6, math.NaN(), 2, math.NaN(), 1, math.NaN()}, 4, true},
		{"inf-mixed", []float64{math.Inf(1), 8, math.Inf(-1), 4, 5, 6}, 3, true},
		{"all-nan", []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()}, 0, false},
		{"all-nonfinite", []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.NaN(), math.Inf(1), math.NaN()}, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx := make(map[hw.Config]int, len(space))
			for i, cfg := range space {
				idx[cfg] = i
			}
			for _, workers := range []int{1, 4} {
				cfg, val, ok := Min(space, workers, func(c hw.Config) float64 { return tc.vals[idx[c]] })
				if ok != tc.ok {
					t.Fatalf("workers=%d: ok=%v, want %v", workers, ok, tc.ok)
				}
				if !tc.ok {
					if cfg != (hw.Config{}) || val != 0 {
						t.Fatalf("workers=%d: all-non-finite must return zero values, got %v %v", workers, cfg, val)
					}
					continue
				}
				if cfg != space[tc.wantI] || val != tc.vals[tc.wantI] {
					t.Fatalf("workers=%d: Min = %v (%v), want index %d (%v)",
						workers, cfg, val, tc.wantI, tc.vals[tc.wantI])
				}
			}
		})
	}
}
