package serve

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the operator-only debug mux: net/http/pprof
// profiles and the expvar JSON dump. It is deliberately a separate
// handler from the API mux — cmd/harmonia-serve binds it to its own
// listener (-debug-addr, typically loopback) so profiling endpoints are
// never reachable on the service port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
