package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"harmonia/internal/export"
	"harmonia/internal/session"
	"harmonia/internal/timeline"
	"harmonia/internal/trace"
)

// Run states. A run is queued on submission, running once a worker
// picks it up, and done or failed when it finishes. Two quarantine
// states exist beyond the happy path: panicked marks a run whose
// backend execution panicked (the stack is captured on the record and
// the daemon stays up), and interrupted marks a run that a restarted
// daemon found submitted but unfinished in its journal.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusFailed      = "failed"
	StatusPanicked    = "panicked"
	StatusInterrupted = "interrupted"
)

// terminalStatus reports whether a run in this status has finished for
// good.
func terminalStatus(status string) bool {
	switch status {
	case StatusDone, StatusFailed, StatusPanicked, StatusInterrupted:
		return true
	}
	return false
}

// Run is one evaluation request's lifecycle record. Fields are guarded
// by mu; Done closes when the run reaches a terminal state.
type Run struct {
	ID string
	// seq is the registry's creation sequence number. Ordering uses it
	// rather than the ID string: IDs are zero-padded to six digits, so
	// string order breaks when the counter rolls past run-999999
	// ("run-1000000" < "run-999999" lexicographically).
	seq int

	mu         sync.Mutex
	app        string
	policy     string
	status     string
	err        string
	stack      string
	createdAt  time.Time
	startedAt  time.Time
	finishedAt time.Time
	report     *session.Report
	// headline carries the recorded result numbers of a run restored
	// from the journal, whose full report (kernel runs, trace) was not
	// persisted. Live runs leave it nil and serve the report instead.
	headline *headline
	restored bool
	// tracer records the run's span tree (GET /v1/runs/{id}/spans). Nil
	// for journal-restored records, whose execution predates this
	// process.
	tracer *trace.Recorder
	// timeline flight-records the run (GET /v1/runs/{id}/timeline and
	// the /live SSE stream). Nil for journal-restored terminal records;
	// journal-replayed re-executions get a fresh recorder.
	timeline *timeline.Recorder

	done chan struct{}
}

// setTracer installs the run's span recorder; called between create and
// enqueue, before any worker touches the record.
func (r *Run) setTracer(rec *trace.Recorder) {
	r.mu.Lock()
	r.tracer = rec
	r.mu.Unlock()
}

// Tracer returns the run's span recorder, or nil for restored records.
func (r *Run) Tracer() *trace.Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// setTimeline installs the run's flight recorder; called between create
// and enqueue, before any worker touches the record.
func (r *Run) setTimeline(rec *timeline.Recorder) {
	r.mu.Lock()
	r.timeline = rec
	r.mu.Unlock()
}

// Timeline returns the run's flight recorder, or nil for restored
// terminal records.
func (r *Run) Timeline() *timeline.Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.timeline
}

// headline is the ED²/time/energy triple a journal Done record
// preserves for a finished run.
type headline struct {
	ed2, timeS, energyJ *float64
}

// newRun returns a queued run record.
func newRun(id string, seq int, app, policy string, now time.Time) *Run {
	return &Run{
		ID:        id,
		seq:       seq,
		app:       app,
		policy:    policy,
		status:    StatusQueued,
		createdAt: now,
		done:      make(chan struct{}),
	}
}

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// start marks the run running.
func (r *Run) start(now time.Time) {
	r.mu.Lock()
	r.status = StatusRunning
	r.startedAt = now
	r.mu.Unlock()
}

// finish records the outcome and releases waiters.
func (r *Run) finish(rep *session.Report, err error, now time.Time) {
	r.mu.Lock()
	r.finishedAt = now
	if err != nil {
		r.status = StatusFailed
		r.err = err.Error()
	} else {
		r.status = StatusDone
		r.report = rep
	}
	r.mu.Unlock()
	close(r.done)
}

// finishPanic quarantines the run: terminal "panicked" state carrying
// the recovered value and the goroutine stack, no report.
func (r *Run) finishPanic(err error, stack string, now time.Time) {
	r.mu.Lock()
	r.finishedAt = now
	r.status = StatusPanicked
	r.err = err.Error()
	r.stack = stack
	r.mu.Unlock()
	close(r.done)
}

// finishRestored stamps a journal-replayed outcome onto the record:
// status done/failed/panicked/interrupted, the recorded error text, and
// for done runs the recorded headline numbers. The record is terminal
// from birth.
func (r *Run) finishRestored(status, errMsg string, h *headline, now time.Time) {
	r.mu.Lock()
	r.finishedAt = now
	r.status = status
	r.err = errMsg
	r.headline = h
	r.restored = true
	r.mu.Unlock()
	close(r.done)
}

// Headline returns the run's result numbers: from the full report when
// the run executed in this process, from the journal-restored headline
// otherwise. Returns nil for runs without results.
func (r *Run) Headline() *headline {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.report != nil {
		ed2, t, e := r.report.ED2(), r.report.TotalTime(), r.report.TotalEnergy()
		return &headline{ed2: &ed2, timeS: &t, energyJ: &e}
	}
	return r.headline
}

// Status returns the run's current state string.
func (r *Run) Status() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Report returns the finished run's report, or nil.
func (r *Run) Report() *session.Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.report
}

// terminalSince reports whether the run finished at or before cutoff.
func (r *Run) terminalSince(cutoff time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return terminalStatus(r.status) && !r.finishedAt.After(cutoff)
}

// RunJSON is the wire form of a run record.
type RunJSON struct {
	ID     string `json:"id"`
	App    string `json:"app"`
	Policy string `json:"policy"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Stack is the captured goroutine stack of a panicked run.
	Stack string `json:"stack,omitempty"`
	// Restored marks a record replayed from the journal by a restarted
	// daemon; restored done runs carry headline numbers but no full
	// report or trace.
	Restored   bool               `json:"restored,omitempty"`
	CreatedAt  time.Time          `json:"created_at"`
	FinishedAt *time.Time         `json:"finished_at,omitempty"`
	Report     *export.ReportJSON `json:"report,omitempty"`
}

// JSON snapshots the run for serialization. The trace is served
// separately (GET /v1/runs/{id}/trace), not embedded.
func (r *Run) JSON() RunJSON {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := RunJSON{
		ID:        r.ID,
		App:       r.app,
		Policy:    r.policy,
		Status:    r.status,
		Error:     r.err,
		Stack:     r.stack,
		Restored:  r.restored,
		CreatedAt: r.createdAt,
	}
	if !r.finishedAt.IsZero() {
		t := r.finishedAt
		out.FinishedAt = &t
	}
	if r.report != nil {
		rep := export.Report(r.report)
		out.Report = &rep
	}
	return out
}

// registry is the in-memory run store with TTL-based retention,
// modelled on a production exporter's retention manager: finished runs
// are kept for TTL so clients can poll results, then evicted; a hard
// cap bounds memory under bursts (oldest finished runs go first;
// in-flight runs are never evicted).
type registry struct {
	ttl time.Duration
	max int
	now func() time.Time
	// onEvict, when non-nil, observes how many records each eviction
	// pass dropped (feeds the retention counter on /metrics).
	onEvict func(n int)

	mu   sync.Mutex
	runs map[string]*Run
	seq  int
}

// newRegistry returns an empty registry. ttl <= 0 means keep forever
// (until the cap); max <= 0 means unbounded.
func newRegistry(ttl time.Duration, max int, now func() time.Time) *registry {
	return &registry{ttl: ttl, max: max, now: now, runs: make(map[string]*Run)}
}

// create allocates a run record with a fresh sequential ID and stores
// it, evicting expired runs first.
func (g *registry) create(app, policy string) *Run {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.evictLocked(now)
	g.seq++
	run := newRun(fmt.Sprintf("run-%06d", g.seq), g.seq, app, policy, now)
	g.runs[run.ID] = run
	return run
}

// restore re-inserts a run under its original journal ID and advances
// the sequence counter past it, so IDs minted after a replay never
// collide with replayed ones.
func (g *registry) restore(id, app, policy string) *Run {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := seqOf(id)
	if seq > g.seq {
		g.seq = seq
	}
	run := newRun(id, seq, app, policy, now)
	g.runs[id] = run
	return run
}

// seqOf extracts the numeric sequence from an "x-000123" style ID, or 0.
func seqOf(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// get returns the run by ID.
func (g *registry) get(id string) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.evictLocked(g.now())
	run, ok := g.runs[id]
	return run, ok
}

// list returns every retained run, newest first.
func (g *registry) list() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.evictLocked(g.now())
	out := make([]*Run, 0, len(g.runs))
	for _, run := range g.runs {
		out = append(out, run)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// size returns the number of retained runs.
func (g *registry) size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs)
}

// evictLocked drops finished runs older than TTL, then — if the store
// still exceeds the cap — the oldest finished runs beyond it. Callers
// hold g.mu.
func (g *registry) evictLocked(now time.Time) {
	before := len(g.runs)
	if g.ttl > 0 {
		cutoff := now.Add(-g.ttl)
		for id, run := range g.runs {
			if run.terminalSince(cutoff) {
				delete(g.runs, id)
			}
		}
	}
	if g.max > 0 && len(g.runs) > g.max {
		finished := make([]*Run, 0, len(g.runs))
		for _, run := range g.runs {
			if run.terminalSince(now) {
				finished = append(finished, run)
			}
		}
		sort.Slice(finished, func(i, j int) bool { return finished[i].seq < finished[j].seq })
		for _, run := range finished {
			if len(g.runs) <= g.max {
				break
			}
			delete(g.runs, run.ID)
		}
	}
	if n := before - len(g.runs); n > 0 && g.onEvict != nil {
		g.onEvict(n)
	}
}
