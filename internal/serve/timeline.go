package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"harmonia/internal/telemetry"
	"harmonia/internal/timeline"
)

// Telemetry bucket layouts for the decision-quality families. Oracle
// gap is a ratio clustered near zero (the paper's headline is ~3%), so
// exponential buckets from 0.5% resolve the interesting range; churn is
// a 0..1 transitions-per-boundary rate; dither depth is a small integer
// streak length.
var (
	oracleGapBuckets = telemetry.ExponentialBuckets(0.005, 1.6, 11)
	churnBuckets     = telemetry.LinearBuckets(0.1, 0.1, 10)
	ditherBuckets    = telemetry.LinearBuckets(1, 1, 8)
)

// handleGetTimeline is GET /v1/runs/{id}/timeline: the run's power
// timeline and decision log as JSON (default) or the power buckets as
// CSV (?format=csv). ?res=<seconds> re-buckets the power series to a
// coarser resolution before writing. Safe to call while the run is
// still executing — the snapshot is a consistent prefix.
func (s *Server) handleGetTimeline(w http.ResponseWriter, r *http.Request) {
	run, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errRunNotFound("run", r.PathValue("id")))
		return
	}
	tl := run.Timeline()
	if tl == nil {
		writeError(w, http.StatusConflict,
			"run %s has no recorded timeline (restored from a previous process's journal)", run.ID)
		return
	}
	snap := tl.Snapshot()
	if resStr := r.URL.Query().Get("res"); resStr != "" {
		res, err := strconv.ParseFloat(resStr, 64)
		if err != nil || res <= 0 {
			writeError(w, http.StatusBadRequest, "bad res %q (want seconds > 0)", resStr)
			return
		}
		snap = snap.Coarsen(res)
	}
	var err error
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		err = snap.WriteJSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = snap.WriteCSV(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or csv)",
			r.URL.Query().Get("format"))
		return
	}
	if err != nil {
		s.slog.Error("writing timeline", "run_id", run.ID, "error", err.Error())
	}
}

// QualityStatsJSON is the GET /v1/stats/quality response body.
type QualityStatsJSON struct {
	// Enabled reports whether the server analyzes finished runs at all
	// (Options.QualityMaxSamples > 0). When false, Stats stays empty.
	Enabled bool `json:"enabled"`
	Stats   any  `json:"stats"`
}

// handleQualityStats is GET /v1/stats/quality: the per-policy
// decision-quality aggregate over every run analyzed since the server
// started.
func (s *Server) handleQualityStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, QualityStatsJSON{
		Enabled: s.qualityEngine != nil,
		Stats:   s.qualityAgg.Snapshot(),
	})
}

// handleLive is GET /v1/runs/{id}/live: a Server-Sent Events stream of
// the run's kernel-boundary decision records. Each boundary is one
// "kernel-boundary" event whose data is the Decision JSON and whose id
// is the decision index; a final "done" event closes the stream once
// the run finishes. A client connecting after the run finished still
// receives every retained event exactly once, then "done".
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	run, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errRunNotFound("run", r.PathValue("id")))
		return
	}
	tl := run.Timeline()
	if tl == nil {
		writeError(w, http.StatusConflict,
			"run %s has no recorded timeline (restored from a previous process's journal)", run.ID)
		return
	}
	// ResponseController unwraps the logging/instrumentation middleware
	// wrappers to reach the connection's Flusher.
	fl := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	// Probe flush support before committing the stream: the probe sends
	// the 200 and headers, so a failure here can still answer 406.
	if err := fl.Flush(); err != nil {
		w.Header().Del("Content-Type")
		w.Header().Del("Cache-Control")
		writeError(w, http.StatusNotAcceptable, "streaming unsupported by this connection")
		return
	}
	s.liveStreams.Add(1)
	defer s.liveStreams.Add(-1)
	cursor := 0
	for {
		events, next, done, ch := tl.Since(cursor)
		cursor = next
		for i := range events {
			data, err := json.Marshal(&events[i])
			if err != nil {
				s.slog.Error("encoding live event", "run_id", run.ID, "error", err.Error())
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: kernel-boundary\ndata: %s\n\n", events[i].Index, data)
			s.liveEvents.Inc()
		}
		if len(events) > 0 {
			if err := fl.Flush(); err != nil {
				return // client gone mid-stream
			}
		}
		if done {
			decs, dropped, _ := tl.Counts()
			fmt.Fprintf(w, "event: done\ndata: {\"decisions\":%d,\"dropped\":%d}\n\n", decs, dropped)
			fl.Flush() //nolint:errcheck // stream is ending either way
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}

// finishTimeline settles a finished job's flight recorder: marks it
// complete (waking live streams), counts its events into telemetry,
// and — when quality analysis is enabled and the run succeeded — feeds
// the timeline through the decision-quality engine.
func (s *Server) finishTimeline(j *job) {
	tl := j.run.Timeline()
	if tl == nil {
		return
	}
	tl.Finish()
	decs, dropped, _ := tl.Counts()
	s.timelineEvents.Add(float64(decs))
	if dropped > 0 {
		s.timelineDropped.Add(float64(dropped))
	}
	if s.qualityEngine != nil && j.run.Status() == StatusDone {
		s.analyzeRun(j, tl)
	}
}

// analyzeRun scores one finished run's timeline against the oracle and
// folds the result into the quality aggregate and telemetry families.
func (s *Server) analyzeRun(j *job, tl *timeline.Recorder) {
	res, err := s.qualityEngine.Analyze(j.app, tl.Snapshot())
	if err != nil {
		s.slog.Error("quality analysis", "run_id", j.run.ID, "error", err.Error())
		return
	}
	s.qualityAgg.Add(res)
	if res.OracleGap.Sampled > 0 {
		s.oracleGapHist.With(res.Policy).Observe(res.OracleGap.Gap)
	}
	for _, c := range res.Confusion.Cells {
		if c.Truth != c.Predicted {
			s.misbinTotal.With(c.Tunable, c.Pair()).Add(float64(c.N))
		}
		s.binChecksTotal.With(c.Tunable).Add(float64(c.N))
	}
	s.churnHist.With(res.Policy).Observe(res.Churn.Rate)
	s.ditherHist.With(res.Policy).Observe(float64(res.FG.MaxDither))
	for _, ac := range res.FG.Actions {
		s.qualActions.With(res.Policy, ac.Source).Add(float64(ac.N))
	}
}
