// Package serve exposes a harmonia.System as a concurrent JSON-over-HTTP
// evaluation service: POST /v1/runs executes an application of the suite
// under a named policy (optionally with an injected fault profile) on a
// bounded worker pool, POST /v1/batch fans a whole app × policy matrix
// out on the same pool and aggregates it under one pollable batch ID,
// GET /v1/runs/{id} and /v1/runs/{id}/trace return the report and the
// 1 kHz power trace through internal/export, and GET /metrics renders
// the shared telemetry registry in Prometheus text format — the
// long-running-exporter shape GPU power tooling takes in production.
// Served runs are bit-identical to System.Run with the same inputs: the
// service adds scheduling and observation, never physics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"harmonia"
	"harmonia/internal/export"
	"harmonia/internal/floats"
	"harmonia/internal/quality"
	"harmonia/internal/resilience"
	"harmonia/internal/session"
	"harmonia/internal/telemetry"
	"harmonia/internal/timeline"
	"harmonia/internal/trace"
)

// Options configures a Server. The zero value serves with sensible
// defaults.
type Options struct {
	// Workers bounds the evaluation worker pool (the sweep-pool
	// pattern: a fixed set of workers draining a job queue). Zero means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue: how many runs may be
	// queued or executing at once across the whole server. Submissions
	// beyond it are shed with 429 and a Retry-After hint rather than
	// queued unboundedly. Zero means 1024 + 4x workers, enough for one
	// maximum-size batch on an idle server plus per-worker headroom.
	QueueDepth int
	// RunTTL is how long finished runs stay pollable before the
	// registry evicts them; zero means 1 hour, negative keeps forever.
	RunTTL time.Duration
	// MaxRuns caps retained run records regardless of TTL (oldest
	// finished first; in-flight runs are never evicted). Zero means
	// 4096, negative is unbounded.
	MaxRuns int
	// Telemetry is the metrics registry /metrics renders. Nil uses the
	// system's registry (harmonia.WithTelemetry) so run instrumentation
	// and HTTP instrumentation land in one scrape, or a fresh registry
	// if the system has none.
	Telemetry *telemetry.Registry
	// Logger receives one-line request summaries; nil uses log.Default.
	Logger *log.Logger
	// Now is the clock, injectable for retention tests; nil means
	// time.Now.
	Now func() time.Time

	// BaseContext is the ancestor of every detached run context;
	// canceling it cancels in-flight work at the next kernel boundary.
	// Nil means context.Background(). Shutdown and Close cancel the
	// server's derived context regardless.
	//lint:ignore ctxflow BaseContext is the http.Server-style lifetime option, the sanctioned way to hand the server its root
	BaseContext context.Context
	// RequestTimeout bounds each run from admission to completion; runs
	// over it are canceled at the next kernel boundary and fail. Zero
	// means no per-run deadline.
	RequestTimeout time.Duration
	// RatePerSec throttles admission with a token bucket (one token per
	// submission, a batch spending one for its whole matrix); RateBurst
	// is its capacity (values below 1 are raised to 1). RatePerSec <= 0
	// disables rate limiting.
	RatePerSec float64
	RateBurst  int
	// BreakerThreshold trips the backend circuit breaker after that
	// many consecutive run failures or panics (cancellations don't
	// count); while open, submissions fail fast with 503. Zero means 5;
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the initial fail-fast window after a trip,
	// doubling on each failed half-open probe up to 16x. Zero means
	// 10 seconds.
	BreakerCooldown time.Duration
	// Journal, when non-nil, receives a write-ahead record of every
	// submission and outcome so a restarted daemon can resume. Replay,
	// when non-nil, is the folded state of a previous journal to
	// restore before serving.
	Journal *resilience.Journal
	Replay  *resilience.State
	// QualityMaxSamples enables post-run decision-quality analysis
	// (GET /v1/stats/quality and the harmonia_quality_* telemetry):
	// after each successful run, its timeline is scored against the
	// exhaustive oracle at up to this many sampled kernel boundaries.
	// Each sample costs one oracle sweep, so enable it on systems built
	// with harmonia.WithSimCache. Zero disables the analysis (timelines
	// are still recorded and served).
	QualityMaxSamples int

	// runFn overrides backend execution; in-package chaos tests inject
	// panicking or hanging backends here. Nil means sys.RunContext. Set
	// before New so workers observe it without synchronization.
	runFn func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, opts ...harmonia.RunOption) (*session.Report, error)
}

// Server is the HTTP evaluation service. Construct with New, mount
// Handler, and Shutdown (graceful) or Close (immediate) when done.
type Server struct {
	sys *harmonia.System
	// runFn executes one run; defaults to sys.RunContext. Chaos tests
	// swap it for panicking or hanging backends.
	runFn   func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, opts ...harmonia.RunOption) (*session.Report, error)
	reg     *registry
	batches *batchRegistry
	tel     *telemetry.Registry
	log     *log.Logger
	// slog is the structured logger (request and run lifecycle lines
	// with request/trace-ID correlation), derived from log's writer so
	// both loggers share one destination.
	slog   *slog.Logger
	now    func() time.Time
	reqSeq atomic.Uint64

	mux     *http.ServeMux
	handler http.Handler

	jobs       chan *job
	queueDepth int64
	// sweepShare is each worker's slice of the machine for nested
	// oracle sweeps: the run pool already keeps `workers` jobs in
	// flight, so a sweep inside one job gets GOMAXPROCS/workers, not
	// the whole machine.
	sweepShare int
	// pending counts admitted-but-not-terminal runs (queued plus
	// executing); admission bounds it by queueDepth, and because the
	// jobs channel is buffered to queueDepth, an admitted enqueue never
	// blocks.
	pending atomic.Int64
	//lint:ignore ctxflow baseCtx is the server-lifetime context Shutdown/Close cancel; it scopes the server, not a call
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	// runsWG tracks admitted runs to their terminal state; drain waits
	// on it. drainMu orders admission — the Add AND the enqueue, both
	// under the RLock admit takes and admitted releases — against
	// Shutdown's Lock, so once shutdown begins no admitted job can land
	// in the channel behind the drain.
	runsWG    sync.WaitGroup
	drainMu   sync.RWMutex
	draining  bool
	closeOnce sync.Once
	closeErr  error

	requestTimeout time.Duration
	limiter        *resilience.Bucket
	breaker        *resilience.Breaker
	journal        *resilience.Journal

	started time.Time

	httpReqs     *telemetry.CounterVec
	httpDur      *telemetry.HistogramVec
	inflight     *telemetry.Gauge
	retained     *telemetry.Gauge
	evicted      *telemetry.Counter
	batchesTotal *telemetry.Counter
	batchCells   *telemetry.Counter

	shedTotal       *telemetry.CounterVec
	panicsTotal     *telemetry.Counter
	breakerState    *telemetry.Gauge
	breakerTrips    *telemetry.Gauge
	drainingGauge   *telemetry.Gauge
	journalRecords  *telemetry.Counter
	journalReplayed *telemetry.CounterVec

	timelineEvents  *telemetry.Counter
	timelineDropped *telemetry.Counter
	liveStreams     *telemetry.Gauge
	liveEvents      *telemetry.Counter
	oracleGapHist   *telemetry.HistogramVec
	misbinTotal     *telemetry.CounterVec
	binChecksTotal  *telemetry.CounterVec
	churnHist       *telemetry.HistogramVec
	ditherHist      *telemetry.HistogramVec
	qualActions     *telemetry.CounterVec

	// qualityEngine scores finished runs against the oracle when
	// Options.QualityMaxSamples > 0; qualityAgg accumulates the
	// per-policy statistics /v1/stats/quality serves.
	qualityEngine *harmonia.QualityEngine
	qualityAgg    *quality.Aggregator
}

// job is one queued evaluation. cancel, when non-nil, releases the
// per-run deadline timer and must run once the job is terminal. probe
// marks the job that holds the circuit breaker's half-open probe slot;
// its outcome (or cancellation) must resolve the slot.
type job struct {
	//lint:ignore ctxflow a queued job carries its admission-time run context to the worker that executes it — the documented request-scoped exception
	ctx    context.Context
	cancel context.CancelFunc
	run    *Run
	app    *harmonia.Application
	pol    harmonia.Policy
	opts   []harmonia.RunOption
	probe  bool
}

// New returns a server over the given system and starts its worker
// pool.
func New(sys *harmonia.System, opts Options) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = maxBatchCells + 4*workers
	}
	ttl := opts.RunTTL
	switch {
	case ttl == 0:
		ttl = time.Hour
	case ttl < 0:
		ttl = 0
	}
	maxRuns := opts.MaxRuns
	switch {
	case maxRuns == 0:
		maxRuns = 4096
	case maxRuns < 0:
		maxRuns = 0
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = sys.Telemetry()
	}
	if tel == nil {
		tel = telemetry.New()
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	base := opts.BaseContext
	if base == nil {
		//lint:ignore ctxflow the documented nil-BaseContext default; Shutdown/Close cancel the derived context regardless
		base = context.Background()
	}
	var breaker *resilience.Breaker
	if opts.BreakerThreshold >= 0 {
		breaker = resilience.NewBreaker(resilience.BreakerOptions{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
		})
	}
	ctx, cancel := context.WithCancel(base)
	share := runtime.GOMAXPROCS(0) / workers
	if share < 1 {
		share = 1
	}
	s := &Server{
		sys:            sys,
		sweepShare:     share,
		reg:            newRegistry(ttl, maxRuns, now),
		batches:        newBatchRegistry(ttl, maxRuns, now),
		tel:            tel,
		log:            logger,
		slog:           slog.New(slog.NewTextHandler(logger.Writer(), nil)),
		now:            now,
		jobs:           make(chan *job, depth),
		queueDepth:     int64(depth),
		baseCtx:        ctx,
		cancel:         cancel,
		requestTimeout: opts.RequestTimeout,
		limiter:        resilience.NewBucket(resilience.BucketOptions{Rate: opts.RatePerSec, Burst: float64(opts.RateBurst)}),
		breaker:        breaker,
		journal:        opts.Journal,
		started:        now(),
		httpReqs: tel.CounterVec("harmonia_http_requests_total",
			"HTTP requests served.", "method", "path", "code"),
		httpDur: tel.HistogramVec("harmonia_http_request_duration_seconds",
			"HTTP request latency in seconds.", telemetry.DefDurationBuckets, "path"),
		inflight: tel.Gauge("harmonia_serve_inflight_runs",
			"Runs queued or executing right now."),
		retained: tel.Gauge("harmonia_serve_retained_runs",
			"Finished and in-flight runs held in the registry."),
		evicted: tel.Counter("harmonia_serve_evicted_runs_total",
			"Run records evicted by TTL or capacity retention."),
		batchesTotal: tel.Counter("harmonia_serve_batches_total",
			"Batch matrices accepted by POST /v1/batch."),
		batchCells: tel.Counter("harmonia_serve_batch_cells_total",
			"Individual (app, policy) runs scheduled by batches."),
		shedTotal: tel.CounterVec("harmonia_serve_shed_total",
			"Submissions rejected by admission control, by reason.", "reason"),
		panicsTotal: tel.Counter("harmonia_serve_panics_total",
			"Panics recovered (HTTP handlers and quarantined runs)."),
		breakerState: tel.Gauge("harmonia_serve_breaker_state",
			"Backend circuit breaker state: 0 closed, 1 half-open, 2 open."),
		breakerTrips: tel.Gauge("harmonia_serve_breaker_trips_total",
			"Times the backend circuit breaker has tripped open."),
		drainingGauge: tel.Gauge("harmonia_serve_draining",
			"1 while the server is draining for shutdown, else 0."),
		journalRecords: tel.Counter("harmonia_serve_journal_appends_total",
			"Records appended to the write-ahead journal this process."),
		journalReplayed: tel.CounterVec("harmonia_serve_journal_replayed_total",
			"Journal runs handled at startup, by outcome.", "outcome"),
		timelineEvents: tel.Counter("harmonia_timeline_events_total",
			"Kernel-boundary decision records flight-recorded across finished runs."),
		timelineDropped: tel.Counter("harmonia_timeline_dropped_total",
			"Decision records dropped past the flight recorder's event cap."),
		liveStreams: tel.Gauge("harmonia_serve_live_streams",
			"Open SSE subscriptions on /v1/runs/{id}/live."),
		liveEvents: tel.Counter("harmonia_serve_live_events_total",
			"Kernel-boundary events delivered over SSE streams."),
		oracleGapHist: tel.HistogramVec("harmonia_quality_oracle_gap",
			"Sampled per-run ED2 regret vs the exhaustive oracle (0 = oracle-equal).",
			oracleGapBuckets, "policy"),
		misbinTotal: tel.CounterVec("harmonia_quality_misbin_total",
			"Sensitivity bin mispredictions, by tunable and truth->predicted pair.", "tunable", "pair"),
		binChecksTotal: tel.CounterVec("harmonia_quality_bin_checks_total",
			"Sensitivity bin predictions checked against measured ground truth.", "tunable"),
		churnHist: tel.HistogramVec("harmonia_quality_config_churn",
			"Per-run hardware configuration transitions per kernel boundary.",
			churnBuckets, "policy"),
		ditherHist: tel.HistogramVec("harmonia_quality_fg_dither_depth",
			"Per-run deepest fine-grain dither streak (consecutive fg reverts).",
			ditherBuckets, "policy"),
		qualActions: tel.CounterVec("harmonia_quality_actions_total",
			"Controller actions observed at kernel boundaries, by source.", "policy", "action"),
	}
	s.qualityAgg = quality.NewAggregator()
	if opts.QualityMaxSamples > 0 {
		s.qualityEngine = sys.QualityEngine(opts.QualityMaxSamples, share)
	}
	s.runFn = s.sys.RunContext
	if opts.runFn != nil {
		s.runFn = opts.runFn
	}
	s.reg.onEvict = func(n int) { s.evicted.Add(float64(n)) }
	s.batches.onDone = func(b *Batch) {
		s.journalAppend(resilience.Record{T: resilience.RecBatchDone, ID: b.ID})
	}
	s.buildMux()
	if opts.Replay != nil {
		s.replay(opts.Replay)
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Shutdown drains the server: new submissions are shed, /readyz turns
// 503, and in-flight runs get until ctx's deadline to finish. Past the
// deadline, remaining runs are canceled at their next kernel boundary
// and queued jobs failed. Either way the batch watchers are reaped and
// the journal closed before returning, so a clean exit proves no
// goroutine leaked. Idempotent; later calls return the first result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() { s.closeErr = s.shutdown(ctx) })
	return s.closeErr
}

// Close stops the server immediately: Shutdown with an already-expired
// deadline, so in-flight runs are canceled at once.
func (s *Server) Close() {
	//lint:ignore ctxflow Close constructs an already-canceled context on purpose: Shutdown with an expired deadline
	done, cancel := context.WithCancel(context.Background())
	cancel()
	//lint:ignore errdrop forced shutdown always reports context.Canceled by construction
	s.Shutdown(done)
}

func (s *Server) shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.drainingGauge.Set(1)

	// Give admitted runs until the deadline to reach a terminal state.
	drained := make(chan struct{})
	go func() {
		s.runsWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	// Stop the pool. Canceling the base context aborts still-running
	// runs at their next kernel boundary (a no-op after a clean drain)
	// and wakes idle workers.
	s.cancel()
	s.wg.Wait()

	// Fail whatever never got picked up (forced path only) so no waiter
	// hangs. Admitted enqueues happen under the drain read-lock, so every
	// admitted job is already executed or sitting in the channel — but
	// the journal-replay resubmitter races its sends against the
	// base-context cancellation, so drain and wait concurrently until
	// the run accounting settles instead of trusting one pass over the
	// channel.
	settled := make(chan struct{})
	go func() {
		s.runsWG.Wait()
		close(settled)
	}()
drain:
	for {
		select {
		case j := <-s.jobs:
			s.releaseProbe(j)
			j.run.finish(nil, errors.New("server shut down before the run was scheduled"), s.now())
			s.journalOutcome(j.run)
			s.jobDone(j)
		case <-settled:
			break drain
		}
	}
	// Every cell is terminal now, so each batch watcher exits; waiting
	// here is the goroutine-leak gate.
	s.batches.wait()
	if cerr := s.journal.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Handler returns the service's HTTP handler (all routes, wrapped in
// logging and metrics middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// worker drains the job queue: the bounded-pool pattern of
// internal/sweep, with runs instead of configurations.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.jobs:
			s.execute(j)
		}
	}
}

// execute runs one job to a terminal state. A backend panic is
// quarantined onto the run record — terminal "panicked" status with the
// captured stack — and fed to the circuit breaker; the worker and the
// daemon stay up.
func (s *Server) execute(j *job) {
	defer s.jobDone(j)
	j.run.start(s.now())
	started := s.now()
	rep, err, stack := s.runJob(j)
	now := s.now()
	switch {
	case stack != "":
		j.run.finishPanic(err, stack, now)
		s.panicsTotal.Inc()
		s.log.Printf("run=%s panic quarantined: %v", j.run.ID, err)
		s.breakerFeed(false)
	case err != nil:
		j.run.finish(nil, err, now)
		if isCancellation(err) {
			// A cancelled run said nothing about backend health; if it
			// held the half-open probe slot, hand the slot back so the
			// breaker doesn't wedge half-open forever.
			s.releaseProbe(j)
		} else {
			s.breakerFeed(false)
		}
	default:
		j.run.finish(rep, nil, now)
		s.breakerFeed(true)
	}
	s.logRun(j.run, now.Sub(started))
	s.journalOutcome(j.run)
	s.finishTimeline(j)
}

// logRun emits one structured line per finished run, carrying the trace
// ID so a log line can be correlated with its span tree
// (GET /v1/runs/{id}/spans) and with the submitting request's log line.
func (s *Server) logRun(run *Run, elapsed time.Duration) {
	attrs := []any{
		"run_id", run.ID,
		"status", run.Status(),
		"duration", elapsed.String(),
	}
	if rec := run.Tracer(); rec != nil {
		attrs = append(attrs, "trace_id", rec.TraceID())
	}
	s.slog.Info("run finished", attrs...)
}

// runJob invokes the backend with panic capture: a panic comes back as
// (nil, err, stack) instead of unwinding the worker.
func (s *Server) runJob(j *job) (rep *session.Report, err error, stack string) {
	defer func() {
		if p := recover(); p != nil {
			rep = nil
			err = fmt.Errorf("backend panic: %v", p)
			stack = string(debug.Stack())
		}
	}()
	rep, err = s.runFn(j.ctx, j.app, j.pol, j.opts...)
	return rep, err, ""
}

// jobDone settles one admitted job's accounting: deadline timer, the
// pending/inflight counters, and the drain WaitGroup.
func (s *Server) jobDone(j *job) {
	if j.cancel != nil {
		j.cancel()
	}
	s.pending.Add(-1)
	s.inflight.Add(-1)
	s.retained.Set(float64(s.reg.size()))
	s.runsWG.Done()
}

// isCancellation reports whether err is the caller or deadline going
// away rather than the backend misbehaving; cancellations don't feed
// the circuit breaker.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// breakerFeed reports one run outcome to the circuit breaker and
// refreshes its gauges.
func (s *Server) breakerFeed(ok bool) {
	if s.breaker == nil {
		return
	}
	if ok {
		s.breaker.Success()
	} else {
		s.breaker.Failure()
	}
	s.breakerState.Set(float64(s.breaker.State()))
	s.breakerTrips.Set(float64(s.breaker.Trips()))
}

// releaseProbe hands a job's half-open probe slot back to the breaker
// when the job resolved nothing about backend health (cancellation, or
// failed during shutdown without ever running). A no-op for non-probe
// jobs.
func (s *Server) releaseProbe(j *job) {
	if !j.probe || s.breaker == nil {
		return
	}
	s.breaker.CancelProbe()
	s.breakerState.Set(float64(s.breaker.State()))
}

// shedError is an admission rejection: which HTTP status to shed with,
// the bounded-cardinality reason label, and the Retry-After hint.
type shedError struct {
	status     int
	reason     string
	retryAfter time.Duration
	msg        string
}

func (e *shedError) Error() string { return e.msg }

// Unwrap ties every admission rejection to the harmonia.ErrShedding
// sentinel, so callers holding only an error can errors.Is it.
func (e *shedError) Unwrap() error { return harmonia.ErrShedding }

// statusFor is the single place backend errors map to HTTP status
// codes: the harmonia sentinel errors each have exactly one status, a
// shed keeps the status admission control chose, and anything
// unrecognized is a 500.
func statusFor(err error) int {
	var shed *shedError
	switch {
	case errors.As(err, &shed):
		return shed.status
	case errors.Is(err, harmonia.ErrRunNotFound):
		return http.StatusNotFound
	case errors.Is(err, harmonia.ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, harmonia.ErrShedding):
		return http.StatusServiceUnavailable
	default: // harmonia.ErrTrainingFailed and everything else
		return http.StatusInternalServerError
	}
}

// writeErr writes err with the status statusFor assigns it.
func writeErr(w http.ResponseWriter, err error) {
	writeError(w, statusFor(err), "%s", err.Error())
}

// admit reserves n admission slots or explains the rejection. On
// success the runs are committed — n runsWG entries and n pending slots
// are held, probe reports whether this submission owns the breaker's
// half-open probe slot (assign it to exactly one of the jobs), and the
// drain read-lock is STILL HELD: the caller must enqueue exactly n jobs
// and then call admitted(), so every admitted enqueue is ordered before
// shutdown can start draining (enqueues of admitted jobs cannot fail or
// block). Checks run cheapest-first; the queue bound precedes the token
// bucket so a queue_full shed spends no token, and the breaker goes
// last so its probe slot is only consumed by a submission that will
// actually execute (a token spent on a breaker rejection is refunded).
func (s *Server) admit(n int) (probe bool, shed *shedError) {
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		return false, &shedError{status: http.StatusServiceUnavailable, reason: "draining",
			retryAfter: time.Second, msg: "server is draining for shutdown"}
	}
	if p := s.pending.Add(int64(n)); p > s.queueDepth {
		s.pending.Add(int64(-n))
		s.drainMu.RUnlock()
		return false, &shedError{status: http.StatusTooManyRequests, reason: "queue_full",
			retryAfter: time.Second,
			msg:        fmt.Sprintf("admission queue full (%d of %d slots pending)", p-int64(n), s.queueDepth)}
	}
	if ok, retry := s.limiter.Allow(); !ok {
		s.pending.Add(int64(-n))
		s.drainMu.RUnlock()
		return false, &shedError{status: http.StatusTooManyRequests, reason: "rate_limited",
			retryAfter: retry, msg: "rate limit exceeded"}
	}
	if s.breaker != nil {
		ok, pr, retry := s.breaker.Allow()
		if !ok {
			s.pending.Add(int64(-n))
			s.limiter.Refund()
			s.breakerState.Set(float64(s.breaker.State()))
			s.drainMu.RUnlock()
			return false, &shedError{status: http.StatusServiceUnavailable, reason: "breaker_open",
				retryAfter: retry, msg: "circuit breaker open: backend is failing"}
		}
		probe = pr
		s.breakerState.Set(float64(s.breaker.State()))
	}
	s.runsWG.Add(n)
	s.inflight.Add(float64(n))
	return probe, nil
}

// admitted releases the drain read-lock a successful admit left held.
// Call it once the admitted jobs are enqueued; holding the lock across
// the enqueue is what stops shutdown's forced path from draining the
// channel between a reservation and its enqueue and then hanging on the
// stranded job's runsWG entry.
func (s *Server) admitted() { s.drainMu.RUnlock() }

// enqueue hands an admitted job to the pool. pending <= queueDepth ==
// cap(jobs) and running jobs have already left the channel, so the send
// never blocks.
func (s *Server) enqueue(j *job) {
	s.jobs <- j
}

// newRunTracer builds the per-run span recorder: span IDs seeded
// deterministically by the run's registry sequence number, the trace ID
// adopted from an inbound W3C traceparent header when the caller sent
// one (joining the run's spans to the caller's distributed trace), and
// header attributes linking the run to the request that submitted it.
func (s *Server) newRunTracer(r *http.Request, run *Run) *trace.Recorder {
	attrs := []trace.Attr{{Key: "run_id", Value: run.ID}}
	if rid := requestIDFrom(r.Context()); rid != "" {
		attrs = append(attrs, trace.Attr{Key: "request_id", Value: rid})
	}
	opts := []trace.Option{}
	if tid, parent, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		opts = append(opts, trace.WithTraceID(tid))
		attrs = append(attrs, trace.Attr{Key: "parent_span_id", Value: parent})
	}
	opts = append(opts, trace.WithAttrs(attrs...))
	return trace.New(uint64(run.seq), opts...)
}

// newJob builds a job under the per-run deadline, when one is set.
func (s *Server) newJob(parent context.Context, run *Run, app *harmonia.Application, pol harmonia.Policy, opts []harmonia.RunOption) *job {
	ctx := parent
	var cancel context.CancelFunc
	if s.requestTimeout > 0 {
		ctx, cancel = context.WithTimeout(parent, s.requestTimeout)
	}
	return &job{ctx: ctx, cancel: cancel, run: run, app: app, pol: pol, opts: opts}
}

// writeShed rejects a submission with Retry-After and counts it.
func (s *Server) writeShed(w http.ResponseWriter, e *shedError) {
	s.shedTotal.With(e.reason).Inc()
	secs := int(e.retryAfter / time.Second)
	if e.retryAfter%time.Second != 0 {
		secs++
	}
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, e.status, "%s", e.msg)
}

// buildMux registers every route. Paths are passed twice — once as the
// mux pattern, once as the bounded-cardinality metrics label.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(label, h))
	}
	route("POST /v1/runs", "/v1/runs", s.handleCreateRun)
	route("GET /v1/runs", "/v1/runs", s.handleListRuns)
	route("POST /v1/batch", "/v1/batch", s.handleCreateBatch)
	route("GET /v1/batch/{id}", "/v1/batch/{id}", s.handleGetBatch)
	route("GET /v1/runs/{id}", "/v1/runs/{id}", s.handleGetRun)
	route("GET /v1/runs/{id}/trace", "/v1/runs/{id}/trace", s.handleGetTrace)
	route("GET /v1/runs/{id}/spans", "/v1/runs/{id}/spans", s.handleGetSpans)
	route("GET /v1/runs/{id}/timeline", "/v1/runs/{id}/timeline", s.handleGetTimeline)
	route("GET /v1/runs/{id}/live", "/v1/runs/{id}/live", s.handleLive)
	route("GET /v1/stats/quality", "/v1/stats/quality", s.handleQualityStats)
	route("GET /v1/apps", "/v1/apps", s.handleApps)
	route("GET /v1/configs", "/v1/configs", s.handleConfigs)
	route("GET /healthz", "/healthz", s.handleHealthz)
	route("GET /readyz", "/readyz", s.handleReadyz)
	route("GET /metrics", "/metrics", s.handleMetrics)
	s.mux = mux
	s.handler = s.traced(s.logged(s.recovered(mux)))
}

// ctxKeyRequestID carries the request ID minted (or accepted) by the
// traced middleware through the request context.
type ctxKeyRequestID struct{}

// requestIDFrom returns the request's ID, or "" outside the middleware.
func requestIDFrom(ctx context.Context) string {
	v, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return v
}

// traced is the outermost middleware: it mints a request ID (honoring
// an inbound X-Request-ID), echoes it on the response, and stores it in
// the context so run submission can stamp it onto the run's trace and
// the access log can correlate lines with spans.
func (s *Server) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID{}, rid)))
	})
}

// recovered is the panic backstop for HTTP handlers: a panicking
// handler yields one 500 and a logged stack instead of a dead
// connection (and, without http.Server's own recovery, a dead daemon).
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.panicsTotal.Inc()
				s.log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusWriter captures the response code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the wrapped writer to http.ResponseController so
// streaming handlers (SSE) can reach the connection's Flusher.
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// logged emits one structured slog line per request, correlated with
// the request ID the traced middleware minted and — when the caller
// sent a W3C traceparent — the distributed trace ID the run's spans
// will join.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"duration", time.Since(t0).Round(time.Microsecond).String(),
			"request_id", requestIDFrom(r.Context()),
		}
		if tid, _, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
			attrs = append(attrs, "trace_id", tid)
		}
		s.slog.Info("request", attrs...)
	})
}

// instrument wraps one route with request counting and latency
// observation under its pattern label.
func (s *Server) instrument(label string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.httpReqs.With(r.Method, label, fmt.Sprintf("%d", sw.code)).Inc()
		s.httpDur.With(label).Observe(time.Since(t0).Seconds())
	})
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are gone; nothing to do
}

// errorJSON is the wire form of every error response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// RunRequest is the body of POST /v1/runs.
type RunRequest struct {
	// App names a suite application, e.g. "Graph500" (GET /v1/apps
	// lists them).
	App string `json:"app"`
	// Policy is one of harmonia, naive, cg-only, compute-only,
	// baseline, powertune, oracle, fixed.
	Policy string `json:"policy"`
	// Config is the pinned configuration for policy "fixed", in
	// CUs/cuMHz/memMHz form, e.g. "16/700/925".
	Config string `json:"config,omitempty"`
	// TDPWatts caps policy "powertune"; zero means the stock 250 W.
	TDPWatts float64 `json:"tdp_watts,omitempty"`
	// FaultIntensity > 0 runs under the canonical fault profile at that
	// intensity (see harmonia.FaultProfile); FaultSeed seeds it.
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	FaultSeed      int64   `json:"fault_seed,omitempty"`
	// Wait false turns the call asynchronous: respond 202 immediately
	// and poll GET /v1/runs/{id}. Default (absent or true) blocks until
	// the run finishes and returns the report inline.
	Wait *bool `json:"wait,omitempty"`
}

// PolicyNames lists the policies POST /v1/runs accepts.
func PolicyNames() []string {
	return []string{"harmonia", "naive", "cg-only", "compute-only", "baseline", "powertune", "oracle", "fixed"}
}

// buildPolicy resolves a request's policy. A 4xx-worthy problem returns
// (nil, msg, nil); an internal failure (predictor training) returns the
// error.
func (s *Server) buildPolicy(req *RunRequest, app *harmonia.Application) (harmonia.Policy, string, error) {
	switch req.Policy {
	case "harmonia":
		p, err := s.sys.HarmoniaE()
		return p, "", err
	case "naive":
		p, err := s.sys.HarmoniaNaiveE()
		return p, "", err
	case "cg-only":
		p, err := s.sys.CGOnlyE()
		return p, "", err
	case "compute-only":
		p, err := s.sys.ComputeDVFSOnlyE()
		return p, "", err
	case "baseline":
		return s.sys.Baseline(), "", nil
	case "powertune":
		tdp := req.TDPWatts
		if floats.Zero(tdp) {
			tdp = 250
		}
		if tdp < 0 {
			return nil, fmt.Sprintf("tdp_watts must be positive, got %g", tdp), nil
		}
		return s.sys.PowerTune(tdp), "", nil
	case "oracle":
		// Budgeted: the worker pool provides the run-level parallelism,
		// so each run's oracle sweeps with its share of the machine.
		return s.sys.OracleWithWorkers(s.sweepShare, app), "", nil
	case "fixed":
		if req.Config == "" {
			return nil, `policy "fixed" needs "config", e.g. "16/700/925"`, nil
		}
		// harmonia.ParseConfig wraps ErrInvalidConfig, which statusFor
		// maps to 400; returning it as the error keeps the status
		// mapping in that one place.
		cfg, err := harmonia.ParseConfig(req.Config)
		if err != nil {
			return nil, "", err
		}
		return s.sys.Fixed(cfg), "", nil
	default:
		return nil, fmt.Sprintf("unknown policy %q (want one of %s)",
			req.Policy, strings.Join(PolicyNames(), ", ")), nil
	}
}

// handleCreateRun is POST /v1/runs.
func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	app := harmonia.App(req.App)
	if app == nil {
		writeError(w, http.StatusBadRequest, "unknown app %q (GET /v1/apps lists the suite)", req.App)
		return
	}
	if req.FaultIntensity < 0 || req.FaultIntensity > 1 {
		writeError(w, http.StatusBadRequest, "fault_intensity must be in [0, 1], got %g", req.FaultIntensity)
		return
	}
	pol, msg, err := s.buildPolicy(&req, app)
	if err != nil {
		writeErr(w, err)
		return
	}
	if msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	var opts []harmonia.RunOption
	if req.FaultIntensity > 0 {
		opts = append(opts, harmonia.RunWithFaults(harmonia.FaultProfile(req.FaultSeed, req.FaultIntensity)))
	}
	wait := req.Wait == nil || *req.Wait

	jobCtx := s.baseCtx
	if wait {
		// A synchronous caller that disconnects cancels its run at the
		// next kernel boundary; detached runs only stop at shutdown.
		jobCtx = r.Context()
	}
	probe, shed := s.admit(1)
	if shed != nil {
		s.writeShed(w, shed)
		return
	}
	var run *Run
	func() {
		// admit left the drain read-lock held; release it only after the
		// enqueue so shutdown cannot drain between reservation and send.
		defer s.admitted()
		run = s.reg.create(req.App, pol.Name())
		rec := s.newRunTracer(r, run)
		run.setTracer(rec)
		tl := timeline.New()
		run.setTimeline(tl)
		s.retained.Set(float64(s.reg.size()))
		s.journalSubmit(run.ID, req.App, &req, "")
		j := s.newJob(jobCtx, run, app, pol, append(opts, harmonia.RunWithTrace(rec), harmonia.RunWithTimeline(tl)))
		j.probe = probe
		s.enqueue(j)
	}()
	if !wait {
		writeJSON(w, http.StatusAccepted, run.JSON())
		return
	}
	select {
	case <-run.Done():
	case <-r.Context().Done():
		// The worker sees the same context and will mark the run
		// failed — unless the server shuts down with the job still
		// queued, in which case Shutdown fails it.
		select {
		case <-run.Done():
		case <-s.baseCtx.Done():
			<-run.Done()
		}
	}
	out := run.JSON()
	status := http.StatusOK
	switch out.Status {
	case StatusFailed, StatusInterrupted:
		status = http.StatusUnprocessableEntity
	case StatusPanicked:
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, out)
}

// handleListRuns is GET /v1/runs.
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	runs := s.reg.list()
	out := struct {
		Runs []RunJSON `json:"runs"`
	}{Runs: make([]RunJSON, 0, len(runs))}
	for _, run := range runs {
		j := run.JSON()
		j.Report = nil // the list is a summary; fetch /v1/runs/{id} for the report
		out.Runs = append(out.Runs, j)
	}
	writeJSON(w, http.StatusOK, out)
}

// errRunNotFound wraps harmonia.ErrRunNotFound with the missing ID;
// statusFor maps it to 404.
func errRunNotFound(kind, id string) error {
	return fmt.Errorf("%w: no %s %q (expired or never created)", harmonia.ErrRunNotFound, kind, id)
}

// handleGetRun is GET /v1/runs/{id}.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errRunNotFound("run", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, run.JSON())
}

// handleGetSpans is GET /v1/runs/{id}/spans: the run's recorded span
// tree, as the native span schema (default) or Chrome trace-event JSON
// (?format=chrome) loadable at ui.perfetto.dev or chrome://tracing.
// Safe to call while the run is still executing — open spans export
// with ended=false.
func (s *Server) handleGetSpans(w http.ResponseWriter, r *http.Request) {
	run, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errRunNotFound("run", r.PathValue("id")))
		return
	}
	rec := run.Tracer()
	if rec == nil {
		writeError(w, http.StatusConflict,
			"run %s has no recorded spans (restored from a previous process's journal)", run.ID)
		return
	}
	snap := rec.Snapshot()
	var err error
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		err = snap.WriteJSON(w)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		err = snap.WriteChrome(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or chrome)",
			r.URL.Query().Get("format"))
		return
	}
	if err != nil {
		s.slog.Error("writing spans", "run_id", run.ID, "error", err.Error())
	}
}

// handleGetTrace is GET /v1/runs/{id}/trace: the 1 kHz power trace as
// CSV (default) or JSON (?format=json), straight from internal/export.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errRunNotFound("run", r.PathValue("id")))
		return
	}
	rep := run.Report()
	if rep == nil {
		writeError(w, http.StatusConflict, "run %s has no report (status %s)", run.ID, run.JSON().Status)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := export.WriteTraceCSV(w, rep.Trace); err != nil {
			s.log.Printf("method=%s path=%s error=%q", r.Method, r.URL.Path, err)
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := export.WriteTraceJSON(w, rep.Trace); err != nil {
			s.log.Printf("method=%s path=%s error=%q", r.Method, r.URL.Path, err)
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want csv or json)", r.URL.Query().Get("format"))
	}
}

// AppJSON is one suite application in GET /v1/apps.
type AppJSON struct {
	Name       string   `json:"name"`
	Iterations int      `json:"iterations"`
	Kernels    []string `json:"kernels"`
}

// handleApps is GET /v1/apps.
func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	suite := harmonia.Suite()
	out := struct {
		Apps []AppJSON `json:"apps"`
	}{Apps: make([]AppJSON, 0, len(suite))}
	for _, app := range suite {
		out.Apps = append(out.Apps, AppJSON{
			Name:       app.Name,
			Iterations: app.Iterations,
			Kernels:    app.KernelNames(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ConfigJSON is one hardware configuration in GET /v1/configs.
type ConfigJSON struct {
	CUs    int `json:"cus"`
	CUMHz  int `json:"cu_mhz"`
	MemMHz int `json:"mem_mhz"`
}

// handleConfigs is GET /v1/configs: the legal configuration space the
// policies pick from.
func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	space := harmonia.ConfigSpace()
	out := struct {
		Count    int          `json:"count"`
		Policies []string     `json:"policies"`
		Configs  []ConfigJSON `json:"configs"`
	}{Count: len(space), Policies: PolicyNames(), Configs: make([]ConfigJSON, 0, len(space))}
	for _, cfg := range space {
		out.Configs = append(out.Configs, ConfigJSON{
			CUs:    cfg.Compute.CUs,
			CUMHz:  int(cfg.Compute.Freq),
			MemMHz: int(cfg.Memory.BusFreq),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status       string  `json:"status"`
		UptimeS      float64 `json:"uptime_s"`
		RetainedRuns int     `json:"retained_runs"`
	}{
		Status:       "ok",
		UptimeS:      s.now().Sub(s.started).Seconds(),
		RetainedRuns: s.reg.size(),
	})
}

// handleReadyz is GET /readyz: readiness, as distinct from /healthz
// liveness. A draining server is still alive (liveness stays 200 so the
// drain isn't cut short by a restart) but not ready — load balancers
// should stop routing to it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	body := struct {
		Status      string `json:"status"`
		Breaker     string `json:"breaker,omitempty"`
		PendingRuns int    `json:"pending_runs"`
	}{
		Status:      "ready",
		PendingRuns: int(s.pending.Load()),
	}
	if s.breaker != nil {
		body.Breaker = s.breaker.State().String()
	}
	if draining {
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics is GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.retained.Set(float64(s.reg.size()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.tel.WritePrometheus(w); err != nil {
		s.log.Printf("method=%s path=%s error=%q", r.Method, r.URL.Path, err)
	}
}
