// Package serve exposes a harmonia.System as a concurrent JSON-over-HTTP
// evaluation service: POST /v1/runs executes an application of the suite
// under a named policy (optionally with an injected fault profile) on a
// bounded worker pool, POST /v1/batch fans a whole app × policy matrix
// out on the same pool and aggregates it under one pollable batch ID,
// GET /v1/runs/{id} and /v1/runs/{id}/trace return the report and the
// 1 kHz power trace through internal/export, and GET /metrics renders
// the shared telemetry registry in Prometheus text format — the
// long-running-exporter shape GPU power tooling takes in production.
// Served runs are bit-identical to System.Run with the same inputs: the
// service adds scheduling and observation, never physics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"harmonia"
	"harmonia/internal/export"
	"harmonia/internal/floats"
	"harmonia/internal/hw"
	"harmonia/internal/telemetry"
)

// Options configures a Server. The zero value serves with sensible
// defaults.
type Options struct {
	// Workers bounds the evaluation worker pool (the sweep-pool
	// pattern: a fixed set of workers draining a job queue). Zero means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds how many submitted runs may wait for a worker;
	// zero means 4x workers. Submitters block (respecting their request
	// context) when the queue is full.
	QueueDepth int
	// RunTTL is how long finished runs stay pollable before the
	// registry evicts them; zero means 1 hour, negative keeps forever.
	RunTTL time.Duration
	// MaxRuns caps retained run records regardless of TTL (oldest
	// finished first; in-flight runs are never evicted). Zero means
	// 4096, negative is unbounded.
	MaxRuns int
	// Telemetry is the metrics registry /metrics renders. Nil uses the
	// system's registry (harmonia.WithTelemetry) so run instrumentation
	// and HTTP instrumentation land in one scrape, or a fresh registry
	// if the system has none.
	Telemetry *telemetry.Registry
	// Logger receives one-line request summaries; nil uses log.Default.
	Logger *log.Logger
	// Now is the clock, injectable for retention tests; nil means
	// time.Now.
	Now func() time.Time
}

// Server is the HTTP evaluation service. Construct with New, mount
// Handler, and Close when done.
type Server struct {
	sys     *harmonia.System
	reg     *registry
	batches *batchRegistry
	tel     *telemetry.Registry
	log     *log.Logger
	now     func() time.Time

	mux     *http.ServeMux
	handler http.Handler

	jobs    chan *job
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	started time.Time

	httpReqs     *telemetry.CounterVec
	httpDur      *telemetry.HistogramVec
	inflight     *telemetry.Gauge
	retained     *telemetry.Gauge
	evicted      *telemetry.Counter
	batchesTotal *telemetry.Counter
	batchCells   *telemetry.Counter
}

// job is one queued evaluation.
type job struct {
	ctx  context.Context
	run  *Run
	app  *harmonia.Application
	pol  harmonia.Policy
	opts []harmonia.RunOption
}

// New returns a server over the given system and starts its worker
// pool.
func New(sys *harmonia.System, opts Options) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	ttl := opts.RunTTL
	switch {
	case ttl == 0:
		ttl = time.Hour
	case ttl < 0:
		ttl = 0
	}
	maxRuns := opts.MaxRuns
	switch {
	case maxRuns == 0:
		maxRuns = 4096
	case maxRuns < 0:
		maxRuns = 0
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = sys.Telemetry()
	}
	if tel == nil {
		tel = telemetry.New()
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		sys:     sys,
		reg:     newRegistry(ttl, maxRuns, now),
		batches: newBatchRegistry(ttl, maxRuns, now),
		tel:     tel,
		log:     logger,
		now:     now,
		jobs:    make(chan *job, depth),
		baseCtx: ctx,
		cancel:  cancel,
		started: now(),
		httpReqs: tel.CounterVec("harmonia_http_requests_total",
			"HTTP requests served.", "method", "path", "code"),
		httpDur: tel.HistogramVec("harmonia_http_request_duration_seconds",
			"HTTP request latency in seconds.", telemetry.DefDurationBuckets, "path"),
		inflight: tel.Gauge("harmonia_serve_inflight_runs",
			"Runs queued or executing right now."),
		retained: tel.Gauge("harmonia_serve_retained_runs",
			"Finished and in-flight runs held in the registry."),
		evicted: tel.Counter("harmonia_serve_evicted_runs_total",
			"Run records evicted by TTL or capacity retention."),
		batchesTotal: tel.Counter("harmonia_serve_batches_total",
			"Batch matrices accepted by POST /v1/batch."),
		batchCells: tel.Counter("harmonia_serve_batch_cells_total",
			"Individual (app, policy) runs scheduled by batches."),
	}
	s.reg.onEvict = func(n int) { s.evicted.Add(float64(n)) }
	s.buildMux()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the worker pool. In-flight runs are canceled through the
// base context; jobs still queued are failed so no waiter hangs.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	for {
		select {
		case j := <-s.jobs:
			j.run.finish(nil, errors.New("server shut down before the run was scheduled"), s.now())
			s.inflight.Add(-1)
		default:
			return
		}
	}
}

// Handler returns the service's HTTP handler (all routes, wrapped in
// logging and metrics middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// worker drains the job queue: the bounded-pool pattern of
// internal/sweep, with runs instead of configurations.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.jobs:
			s.execute(j)
		}
	}
}

// execute runs one job to a terminal state.
func (s *Server) execute(j *job) {
	j.run.start(s.now())
	rep, err := s.sys.RunContext(j.ctx, j.app, j.pol, j.opts...)
	j.run.finish(rep, err, s.now())
	s.inflight.Add(-1)
	s.retained.Set(float64(s.reg.size()))
}

// submit queues a job, blocking until a queue slot frees, the caller's
// context cancels, or the server shuts down.
func (s *Server) submit(ctx context.Context, j *job) error {
	select {
	case s.jobs <- j:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.baseCtx.Done():
		return errors.New("server shutting down")
	}
}

// buildMux registers every route. Paths are passed twice — once as the
// mux pattern, once as the bounded-cardinality metrics label.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(label, h))
	}
	route("POST /v1/runs", "/v1/runs", s.handleCreateRun)
	route("GET /v1/runs", "/v1/runs", s.handleListRuns)
	route("POST /v1/batch", "/v1/batch", s.handleCreateBatch)
	route("GET /v1/batch/{id}", "/v1/batch/{id}", s.handleGetBatch)
	route("GET /v1/runs/{id}", "/v1/runs/{id}", s.handleGetRun)
	route("GET /v1/runs/{id}/trace", "/v1/runs/{id}/trace", s.handleGetTrace)
	route("GET /v1/apps", "/v1/apps", s.handleApps)
	route("GET /v1/configs", "/v1/configs", s.handleConfigs)
	route("GET /healthz", "/healthz", s.handleHealthz)
	route("GET /metrics", "/metrics", s.handleMetrics)
	s.mux = mux
	s.handler = s.logged(mux)
}

// statusWriter captures the response code for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// logged is the outermost middleware: one structured line per request
// via the stdlib logger.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Printf("method=%s path=%s status=%d duration=%s",
			r.Method, r.URL.Path, sw.code, time.Since(t0).Round(time.Microsecond))
	})
}

// instrument wraps one route with request counting and latency
// observation under its pattern label.
func (s *Server) instrument(label string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.httpReqs.With(r.Method, label, fmt.Sprintf("%d", sw.code)).Inc()
		s.httpDur.With(label).Observe(time.Since(t0).Seconds())
	})
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are gone; nothing to do
}

// errorJSON is the wire form of every error response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// RunRequest is the body of POST /v1/runs.
type RunRequest struct {
	// App names a suite application, e.g. "Graph500" (GET /v1/apps
	// lists them).
	App string `json:"app"`
	// Policy is one of harmonia, naive, cg-only, compute-only,
	// baseline, powertune, oracle, fixed.
	Policy string `json:"policy"`
	// Config is the pinned configuration for policy "fixed", in
	// CUs/cuMHz/memMHz form, e.g. "16/700/925".
	Config string `json:"config,omitempty"`
	// TDPWatts caps policy "powertune"; zero means the stock 250 W.
	TDPWatts float64 `json:"tdp_watts,omitempty"`
	// FaultIntensity > 0 runs under the canonical fault profile at that
	// intensity (see harmonia.FaultProfile); FaultSeed seeds it.
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	FaultSeed      int64   `json:"fault_seed,omitempty"`
	// Wait false turns the call asynchronous: respond 202 immediately
	// and poll GET /v1/runs/{id}. Default (absent or true) blocks until
	// the run finishes and returns the report inline.
	Wait *bool `json:"wait,omitempty"`
}

// PolicyNames lists the policies POST /v1/runs accepts.
func PolicyNames() []string {
	return []string{"harmonia", "naive", "cg-only", "compute-only", "baseline", "powertune", "oracle", "fixed"}
}

// buildPolicy resolves a request's policy. A 4xx-worthy problem returns
// (nil, msg, nil); an internal failure (predictor training) returns the
// error.
func (s *Server) buildPolicy(req *RunRequest, app *harmonia.Application) (harmonia.Policy, string, error) {
	switch req.Policy {
	case "harmonia":
		p, err := s.sys.HarmoniaE()
		return p, "", err
	case "naive":
		p, err := s.sys.HarmoniaNaiveE()
		return p, "", err
	case "cg-only":
		p, err := s.sys.CGOnlyE()
		return p, "", err
	case "compute-only":
		p, err := s.sys.ComputeDVFSOnlyE()
		return p, "", err
	case "baseline":
		return s.sys.Baseline(), "", nil
	case "powertune":
		tdp := req.TDPWatts
		if floats.Zero(tdp) {
			tdp = 250
		}
		if tdp < 0 {
			return nil, fmt.Sprintf("tdp_watts must be positive, got %g", tdp), nil
		}
		return s.sys.PowerTune(tdp), "", nil
	case "oracle":
		return s.sys.Oracle(app), "", nil
	case "fixed":
		if req.Config == "" {
			return nil, `policy "fixed" needs "config", e.g. "16/700/925"`, nil
		}
		cfg, err := hw.ParseConfig(req.Config)
		if err != nil {
			return nil, err.Error(), nil
		}
		return s.sys.Fixed(cfg), "", nil
	default:
		return nil, fmt.Sprintf("unknown policy %q (want one of %s)",
			req.Policy, strings.Join(PolicyNames(), ", ")), nil
	}
}

// handleCreateRun is POST /v1/runs.
func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	app := harmonia.App(req.App)
	if app == nil {
		writeError(w, http.StatusBadRequest, "unknown app %q (GET /v1/apps lists the suite)", req.App)
		return
	}
	if req.FaultIntensity < 0 || req.FaultIntensity > 1 {
		writeError(w, http.StatusBadRequest, "fault_intensity must be in [0, 1], got %g", req.FaultIntensity)
		return
	}
	pol, msg, err := s.buildPolicy(&req, app)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building policy: %v", err)
		return
	}
	if msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	var opts []harmonia.RunOption
	if req.FaultIntensity > 0 {
		opts = append(opts, harmonia.RunWithFaults(harmonia.FaultProfile(req.FaultSeed, req.FaultIntensity)))
	}
	wait := req.Wait == nil || *req.Wait

	run := s.reg.create(req.App, pol.Name())
	s.retained.Set(float64(s.reg.size()))
	jobCtx := s.baseCtx
	if wait {
		// A synchronous caller that disconnects cancels its run at the
		// next kernel boundary; detached runs only stop at shutdown.
		jobCtx = r.Context()
	}
	j := &job{ctx: jobCtx, run: run, app: app, pol: pol, opts: opts}
	if err := s.submit(r.Context(), j); err != nil {
		run.finish(nil, fmt.Errorf("never scheduled: %w", err), s.now())
		writeError(w, http.StatusServiceUnavailable, "could not schedule run: %v", err)
		return
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, run.JSON())
		return
	}
	select {
	case <-run.Done():
	case <-r.Context().Done():
		// The worker sees the same context and will mark the run
		// failed — unless the server shuts down with the job still
		// queued, in which case Close fails it.
		select {
		case <-run.Done():
		case <-s.baseCtx.Done():
			<-run.Done()
		}
	}
	out := run.JSON()
	status := http.StatusOK
	if out.Status == StatusFailed {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, out)
}

// handleListRuns is GET /v1/runs.
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	runs := s.reg.list()
	out := struct {
		Runs []RunJSON `json:"runs"`
	}{Runs: make([]RunJSON, 0, len(runs))}
	for _, run := range runs {
		j := run.JSON()
		j.Report = nil // the list is a summary; fetch /v1/runs/{id} for the report
		out.Runs = append(out.Runs, j)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetRun is GET /v1/runs/{id}.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q (expired or never created)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, run.JSON())
}

// handleGetTrace is GET /v1/runs/{id}/trace: the 1 kHz power trace as
// CSV (default) or JSON (?format=json), straight from internal/export.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	run, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no run %q (expired or never created)", r.PathValue("id"))
		return
	}
	rep := run.Report()
	if rep == nil {
		writeError(w, http.StatusConflict, "run %s has no report (status %s)", run.ID, run.JSON().Status)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := export.WriteTraceCSV(w, rep.Trace); err != nil {
			s.log.Printf("method=%s path=%s error=%q", r.Method, r.URL.Path, err)
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := export.WriteTraceJSON(w, rep.Trace); err != nil {
			s.log.Printf("method=%s path=%s error=%q", r.Method, r.URL.Path, err)
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want csv or json)", r.URL.Query().Get("format"))
	}
}

// AppJSON is one suite application in GET /v1/apps.
type AppJSON struct {
	Name       string   `json:"name"`
	Iterations int      `json:"iterations"`
	Kernels    []string `json:"kernels"`
}

// handleApps is GET /v1/apps.
func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	suite := harmonia.Suite()
	out := struct {
		Apps []AppJSON `json:"apps"`
	}{Apps: make([]AppJSON, 0, len(suite))}
	for _, app := range suite {
		out.Apps = append(out.Apps, AppJSON{
			Name:       app.Name,
			Iterations: app.Iterations,
			Kernels:    app.KernelNames(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ConfigJSON is one hardware configuration in GET /v1/configs.
type ConfigJSON struct {
	CUs    int `json:"cus"`
	CUMHz  int `json:"cu_mhz"`
	MemMHz int `json:"mem_mhz"`
}

// handleConfigs is GET /v1/configs: the legal configuration space the
// policies pick from.
func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	space := harmonia.ConfigSpace()
	out := struct {
		Count    int          `json:"count"`
		Policies []string     `json:"policies"`
		Configs  []ConfigJSON `json:"configs"`
	}{Count: len(space), Policies: PolicyNames(), Configs: make([]ConfigJSON, 0, len(space))}
	for _, cfg := range space {
		out.Configs = append(out.Configs, ConfigJSON{
			CUs:    cfg.Compute.CUs,
			CUMHz:  int(cfg.Compute.Freq),
			MemMHz: int(cfg.Memory.BusFreq),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status       string  `json:"status"`
		UptimeS      float64 `json:"uptime_s"`
		RetainedRuns int     `json:"retained_runs"`
	}{
		Status:       "ok",
		UptimeS:      s.now().Sub(s.started).Seconds(),
		RetainedRuns: s.reg.size(),
	})
}

// handleMetrics is GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.retained.Set(float64(s.reg.size()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.tel.WritePrometheus(w); err != nil {
		s.log.Printf("method=%s path=%s error=%q", r.Method, r.URL.Path, err)
	}
}
