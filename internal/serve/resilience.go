// Journal wiring and crash recovery for the serve layer: every
// submission and outcome is appended to the optional write-ahead
// journal, and replay folds a previous process's journal back into live
// registry state — terminal runs restored with their recorded numbers,
// interrupted standalone runs quarantined, and unfinished batch cells
// re-executed under their recorded settings.

package serve

import (
	"errors"
	"fmt"

	"harmonia"
	"harmonia/internal/resilience"
	"harmonia/internal/timeline"
)

// journalAppend writes one record to the journal, if any. Append
// failures are logged and swallowed: a sick journal degrades resumption
// but must not take down serving.
func (s *Server) journalAppend(rec resilience.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		s.log.Printf("journal append t=%s id=%s error=%q", rec.T, rec.ID, err)
		return
	}
	s.journalRecords.Inc()
}

// journalSubmit records a run submission with everything replay needs
// to re-execute it. Policy is the request's policy name (the replayable
// form), not the resolved instance name.
func (s *Server) journalSubmit(id, app string, req *RunRequest, batch string) {
	s.journalAppend(resilience.Record{
		T: resilience.RecRun, ID: id, App: app, Policy: req.Policy,
		Config: req.Config, TDPWatts: req.TDPWatts,
		FaultSeed: req.FaultSeed, FaultIntensity: req.FaultIntensity,
		Batch: batch,
	})
}

// journalBatch records a batch submission and its cell run IDs.
func (s *Server) journalBatch(b *Batch, req *BatchRequest, runs []*Run) {
	ids := make([]string, len(runs))
	for i, run := range runs {
		ids[i] = run.ID
	}
	s.journalAppend(resilience.Record{
		T: resilience.RecBatch, ID: b.ID,
		Apps: req.Apps, Policies: req.Policies, Runs: ids,
	})
}

// journalOutcome records a run's terminal state: done with its headline
// numbers (JSON round-trips float64 exactly, so restore is bit-exact),
// or failed/panicked/interrupted with the error text.
func (s *Server) journalOutcome(run *Run) {
	if s.journal == nil {
		return
	}
	run.mu.Lock()
	status, errMsg, rep := run.status, run.err, run.report
	run.mu.Unlock()
	switch status {
	case StatusDone:
		rec := resilience.Record{T: resilience.RecDone, ID: run.ID}
		if rep != nil {
			rec.ED2 = resilience.F64(rep.ED2())
			rec.TimeS = resilience.F64(rep.TotalTime())
			rec.EnergyJ = resilience.F64(rep.TotalEnergy())
		}
		s.journalAppend(rec)
	case StatusFailed, StatusPanicked, StatusInterrupted:
		s.journalAppend(resilience.Record{T: resilience.RecFail, ID: run.ID, Status: status, Err: errMsg})
	}
}

// replay folds a previous process's journal state into the live
// registries. Runs with recorded outcomes are restored as terminal
// records (done runs keep their bit-exact headline numbers). Standalone
// runs the crash interrupted are quarantined as "interrupted" — their
// submitter is gone, so re-executing would burn capacity no one polls.
// Unfinished batch cells ARE re-executed, under their recorded policy,
// config, and fault seed: batches are pollable by ID, so the restarted
// daemon finishes the matrix as if never interrupted. Batch records are
// rebuilt over their (restored or re-executing) cells.
func (s *Server) replay(st *resilience.State) {
	var resub []*job
	for _, id := range st.RunOrder {
		rs := st.Runs[id]
		run := s.reg.restore(rs.ID, rs.App, rs.Policy)
		switch {
		case rs.Status == "done":
			run.finishRestored(StatusDone, "",
				&headline{ed2: rs.ED2, timeS: rs.TimeS, energyJ: rs.EnergyJ}, s.now())
			s.journalReplayed.With("restored").Inc()
		case rs.Terminal():
			run.finishRestored(rs.Status, rs.Err, nil, s.now())
			s.journalReplayed.With("restored").Inc()
		case rs.Batch == "":
			run.finishRestored(StatusInterrupted, "interrupted by daemon restart", nil, s.now())
			s.journalOutcome(run)
			s.journalReplayed.With("interrupted").Inc()
		default:
			j, err := s.rebuildJob(rs, run)
			if err != nil {
				run.finishRestored(StatusFailed, "replaying from journal: "+err.Error(), nil, s.now())
				s.journalOutcome(run)
				s.journalReplayed.With("interrupted").Inc()
				continue
			}
			resub = append(resub, j)
			s.journalReplayed.With("resubmitted").Inc()
		}
	}
	for _, id := range st.BatchOrder {
		bs := st.Batches[id]
		cells := make([]*Run, 0, len(bs.Runs))
		for _, rid := range bs.Runs {
			// A cell missing from the journal (torn tail ate its RecRun)
			// is silently dropped from the restored batch.
			if run, ok := s.reg.get(rid); ok {
				cells = append(cells, run)
			}
		}
		s.batches.restore(bs.ID, bs.Apps, bs.Policies, cells, bs.Done)
	}
	s.retained.Set(float64(s.reg.size()))
	if len(resub) == 0 {
		return
	}
	// Resubmissions bypass admission — they were admitted before the
	// crash — so pending may transiently exceed the bound; the blocking
	// sends ride their own goroutine so startup never waits for pool
	// capacity.
	s.runsWG.Add(len(resub))
	s.pending.Add(int64(len(resub)))
	s.inflight.Add(float64(len(resub)))
	s.log.Printf("journal replay: re-executing %d unfinished batch cells", len(resub))
	go func() {
		for _, j := range resub {
			select {
			case s.jobs <- j:
			case <-s.baseCtx.Done():
				j.run.finish(nil, errors.New("server shut down before the replayed run was rescheduled"), s.now())
				s.journalOutcome(j.run)
				s.jobDone(j)
			}
		}
	}()
}

// rebuildJob reconstructs an executable job from a journaled
// submission: resolve the app, rebuild a fresh policy instance from the
// recorded request fields, and re-arm the recorded fault profile.
func (s *Server) rebuildJob(rs *resilience.RunState, run *Run) (*job, error) {
	app := harmonia.App(rs.App)
	if app == nil {
		return nil, fmt.Errorf("unknown app %q", rs.App)
	}
	req := RunRequest{App: rs.App, Policy: rs.Policy, Config: rs.Config, TDPWatts: rs.TDPWatts}
	pol, msg, err := s.buildPolicy(&req, app)
	if err != nil {
		return nil, err
	}
	if msg != "" {
		return nil, errors.New(msg)
	}
	var opts []harmonia.RunOption
	if rs.FaultIntensity > 0 {
		opts = append(opts, harmonia.RunWithFaults(harmonia.FaultProfile(rs.FaultSeed, rs.FaultIntensity)))
	}
	// A replayed re-execution records a fresh timeline: the flight
	// recorder is a pure function of the run's inputs, so the replay's
	// timeline is byte-identical to the one the crashed process lost.
	tl := timeline.New()
	run.setTimeline(tl)
	opts = append(opts, harmonia.RunWithTimeline(tl))
	return s.newJob(s.baseCtx, run, app, pol, opts), nil
}
