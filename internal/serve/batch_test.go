package serve

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"harmonia"
)

// postBatch POSTs a batch request and decodes the response envelope.
func postBatch(t *testing.T, ts *httptest.Server, body string) (int, BatchJSON) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out BatchJSON
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted ||
		resp.StatusCode == http.StatusUnprocessableEntity {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

func TestBatchMatrixRunsAndAggregates(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 4})
	status, b := postBatch(t, ts, `{"apps":["SRAD","LUD"],"policies":["baseline","fixed"],"config":"16/700/925"}`)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d", status)
	}
	if b.Status != StatusDone {
		t.Fatalf("batch status = %s, want done: %+v", b.Status, b)
	}
	if len(b.Cells) != 4 {
		t.Fatalf("batch has %d cells, want 4", len(b.Cells))
	}
	if b.Summary.Total != 4 || b.Summary.Done != 4 || b.Summary.Failed != 0 {
		t.Fatalf("summary %+v, want 4 total, 4 done", b.Summary)
	}
	// Cells are row-major: for each app in order, every policy in order.
	wantCells := []struct{ app, pol string }{
		{"SRAD", "baseline"}, {"SRAD", "fixed@16/700/925"},
		{"LUD", "baseline"}, {"LUD", "fixed@16/700/925"},
	}
	for i, c := range b.Cells {
		if c.App != wantCells[i].app || !strings.HasPrefix(c.Policy, strings.SplitN(wantCells[i].pol, "@", 2)[0]) {
			t.Errorf("cell %d = (%s, %s), want (%s, %s)", i, c.App, c.Policy, wantCells[i].app, wantCells[i].pol)
		}
		if c.ED2 == nil || c.TimeS == nil || c.EnergyJ == nil {
			t.Errorf("cell %d missing headline metrics: %+v", i, c)
		}
		if c.RunID == "" {
			t.Errorf("cell %d has no run_id", i)
		}
	}

	// Every cell's child run is pollable individually and carries the
	// same headline numbers.
	var run RunJSON
	if s := getJSON(t, ts.URL+"/v1/runs/"+b.Cells[0].RunID, &run); s != http.StatusOK {
		t.Fatalf("GET child run = %d", s)
	}
	if run.Report == nil || math.Float64bits(run.Report.ED2) != math.Float64bits(*b.Cells[0].ED2) {
		t.Errorf("child run report disagrees with batch cell")
	}

	// The batch itself is pollable by ID.
	var again BatchJSON
	if s := getJSON(t, ts.URL+"/v1/batch/"+b.ID, &again); s != http.StatusOK {
		t.Fatalf("GET /v1/batch/{id} = %d", s)
	}
	if again.ID != b.ID || again.Status != StatusDone || len(again.Cells) != 4 {
		t.Errorf("polled batch diverged: %+v", again)
	}
}

// TestBatchCellsBitIdenticalToDirectRuns: a served batch cell must
// reproduce System.Run exactly — the batch engine adds scheduling, not
// physics.
func TestBatchCellsBitIdenticalToDirectRuns(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 3})
	status, b := postBatch(t, ts, `{"apps":["SRAD","LUD","Sort"],"policies":["baseline"]}`)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d", status)
	}
	direct := harmonia.NewSystem()
	for _, cell := range b.Cells {
		rep, err := direct.Run(harmonia.App(cell.App), direct.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(rep.ED2()) != math.Float64bits(*cell.ED2) {
			t.Errorf("%s: batch ED2 %v != direct %v", cell.App, *cell.ED2, rep.ED2())
		}
		if math.Float64bits(rep.TotalTime()) != math.Float64bits(*cell.TimeS) {
			t.Errorf("%s: batch time %v != direct %v", cell.App, *cell.TimeS, rep.TotalTime())
		}
	}
}

func TestBatchAsync(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 2})
	status, b := postBatch(t, ts, `{"apps":["SRAD"],"policies":["baseline"],"wait":false}`)
	if status != http.StatusAccepted {
		t.Fatalf("async POST /v1/batch = %d, want 202", status)
	}
	if b.ID == "" {
		t.Fatal("async batch has no ID")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var polled BatchJSON
		if s := getJSON(t, ts.URL+"/v1/batch/"+b.ID, &polled); s != http.StatusOK {
			t.Fatalf("GET /v1/batch/{id} = %d", s)
		}
		if polled.Status == StatusDone {
			if polled.Summary.Done != 1 {
				t.Fatalf("done batch summary %+v", polled.Summary)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never finished: %+v", polled)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBatchValidationRejectsWholeMatrix(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 2})
	cases := []struct {
		name, body string
	}{
		{"unknown-app", `{"apps":["SRAD","NoSuchApp"],"policies":["baseline"]}`},
		{"unknown-policy", `{"apps":["SRAD"],"policies":["baseline","warp-drive"]}`},
		{"empty-apps", `{"apps":[],"policies":["baseline"]}`},
		{"empty-policies", `{"apps":["SRAD"],"policies":[]}`},
		{"fixed-without-config", `{"apps":["SRAD"],"policies":["fixed"]}`},
		{"bad-intensity", `{"apps":["SRAD"],"policies":["baseline"],"fault_intensity":2}`},
		{"bad-json", `{"apps":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _ := postBatch(t, ts, tc.body)
			if status != http.StatusBadRequest {
				t.Errorf("POST = %d, want 400", status)
			}
		})
	}
	// Nothing was scheduled: the run list stays empty.
	var list struct {
		Runs []RunJSON `json:"runs"`
	}
	getJSON(t, ts.URL+"/v1/runs", &list)
	if len(list.Runs) != 0 {
		t.Errorf("invalid batches scheduled %d runs, want 0", len(list.Runs))
	}
}

func TestBatchTooLarge(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	apps := make([]string, 200)
	for i := range apps {
		apps[i] = "SRAD"
	}
	pols := `["baseline","fixed","powertune","cg-only","compute-only","harmonia"]`
	body, _ := json.Marshal(apps)
	status, _ := postBatch(t, ts, `{"apps":`+string(body)+`,"policies":`+pols+`}`)
	if status != http.StatusBadRequest {
		t.Fatalf("1200-cell batch = %d, want 400", status)
	}
}

func TestBatchUnknownID(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	if s := getJSON(t, ts.URL+"/v1/batch/batch-000404", nil); s != http.StatusNotFound {
		t.Fatalf("GET unknown batch = %d, want 404", s)
	}
}

func TestBatchTelemetryCounters(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 2})
	if status, _ := postBatch(t, ts, `{"apps":["SRAD","LUD"],"policies":["baseline"]}`); status != http.StatusOK {
		t.Fatalf("POST /v1/batch = %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"harmonia_serve_batches_total 1",
		"harmonia_serve_batch_cells_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestBatchRegistryTTLEviction(t *testing.T) {
	clock := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	g := newBatchRegistry(time.Minute, 0, func() time.Time { return clock })
	run := newRun("run-000001", 1, "app", "pol", clock)
	b := g.create([]string{"app"}, []string{"pol"}, []*Run{run})
	run.finish(nil, nil, clock)
	<-b.Done()
	if _, ok := g.get(b.ID); !ok {
		t.Fatal("fresh batch should be retained")
	}
	clock = clock.Add(2 * time.Minute)
	if _, ok := g.get(b.ID); ok {
		t.Error("batch should be evicted after TTL")
	}
}
