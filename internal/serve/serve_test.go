package serve

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"harmonia"
	"harmonia/internal/telemetry"
)

// newTestServer spins up a full service over one shared System with
// telemetry attached, the way cmd/harmonia-serve wires it.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *harmonia.System, *telemetry.Registry) {
	t.Helper()
	reg := harmonia.NewTelemetry()
	sys := harmonia.NewSystem(harmonia.WithTelemetry(reg))
	if opts.Telemetry == nil {
		opts.Telemetry = reg
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	srv := New(sys, opts)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, sys, reg
}

// postRun POSTs a run request and decodes the response envelope.
func postRun(t *testing.T, ts *httptest.Server, body string) (int, RunJSON) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out RunJSON
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted ||
		resp.StatusCode == http.StatusUnprocessableEntity {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServedRunBitIdenticalToSystemRun is the acceptance gate: a served
// Graph500 run under the harmonia policy must reproduce System.Run
// bit for bit (encoding/json round-trips float64 exactly, so comparing
// the decoded fields compares the bits).
func TestServedRunBitIdenticalToSystemRun(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	status, served := postRun(t, ts, `{"app":"Graph500","policy":"harmonia"}`)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/runs = %d", status)
	}
	if served.Status != StatusDone || served.Report == nil {
		t.Fatalf("run not done: %+v", served)
	}

	direct := harmonia.NewSystem()
	rep, err := direct.Run(harmonia.App("Graph500"), direct.Harmonia())
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name      string
		want, got float64
	}{
		{"ed2", rep.ED2(), served.Report.ED2},
		{"time_s", rep.TotalTime(), served.Report.TimeS},
		{"energy_j", rep.TotalEnergy(), served.Report.EnergyJ},
		{"avg_power_w", rep.AveragePower(), served.Report.AvgW},
	}
	for _, p := range pairs {
		if math.Float64bits(p.want) != math.Float64bits(p.got) {
			t.Errorf("%s: served %v (bits %x) != direct %v (bits %x)",
				p.name, p.got, math.Float64bits(p.got), p.want, math.Float64bits(p.want))
		}
	}
	if len(served.Report.Runs) != len(rep.Runs) {
		t.Errorf("served %d kernel runs, direct %d", len(served.Report.Runs), len(rep.Runs))
	}
}

func TestGetRunAndList(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	_, created := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`)

	var got RunJSON
	if s := getJSON(t, ts.URL+"/v1/runs/"+created.ID, &got); s != http.StatusOK {
		t.Fatalf("GET run = %d", s)
	}
	if got.ID != created.ID || got.Status != StatusDone || got.Report == nil {
		t.Errorf("GET run = %+v", got)
	}
	if got.Report.ED2 != created.Report.ED2 {
		t.Errorf("polled report differs from POST response")
	}

	var list struct {
		Runs []RunJSON `json:"runs"`
	}
	if s := getJSON(t, ts.URL+"/v1/runs", &list); s != http.StatusOK {
		t.Fatalf("GET list = %d", s)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != created.ID {
		t.Errorf("list = %+v", list)
	}
	if list.Runs[0].Report != nil {
		t.Errorf("list should omit full reports")
	}

	if s := getJSON(t, ts.URL+"/v1/runs/run-999999", nil); s != http.StatusNotFound {
		t.Errorf("GET missing run = %d, want 404", s)
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	_, created := postRun(t, ts, `{"app":"Graph500","policy":"baseline"}`)

	resp, err := http.Get(ts.URL + "/v1/runs/" + created.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("trace content-type = %q", ct)
	}
	rows, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("trace has %d rows, want header + samples", len(rows))
	}
	wantHeader := []string{"time_s", "gpu_w", "mem_w", "other_w", "card_w"}
	for i, h := range wantHeader {
		if rows[0][i] != h {
			t.Errorf("trace header = %v", rows[0])
			break
		}
	}

	var jsonTrace []struct {
		TimeS float64 `json:"time_s"`
		CardW float64 `json:"card_w"`
	}
	if s := getJSON(t, ts.URL+"/v1/runs/"+created.ID+"/trace?format=json", &jsonTrace); s != http.StatusOK {
		t.Fatalf("GET trace json = %d", s)
	}
	if len(jsonTrace) != len(rows)-1 {
		t.Errorf("json trace %d samples, csv %d", len(jsonTrace), len(rows)-1)
	}
}

func TestAppsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	var out struct {
		Apps []AppJSON `json:"apps"`
	}
	if s := getJSON(t, ts.URL+"/v1/apps", &out); s != http.StatusOK {
		t.Fatalf("GET apps = %d", s)
	}
	if len(out.Apps) != len(harmonia.Suite()) {
		t.Errorf("apps = %d, want %d", len(out.Apps), len(harmonia.Suite()))
	}
	found := false
	for _, a := range out.Apps {
		if a.Name == "Graph500" && a.Iterations > 0 && len(a.Kernels) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("Graph500 missing or empty in %+v", out.Apps)
	}
}

func TestConfigsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	var out struct {
		Count    int          `json:"count"`
		Policies []string     `json:"policies"`
		Configs  []ConfigJSON `json:"configs"`
	}
	if s := getJSON(t, ts.URL+"/v1/configs", &out); s != http.StatusOK {
		t.Fatalf("GET configs = %d", s)
	}
	want := len(harmonia.ConfigSpace())
	if out.Count != want || len(out.Configs) != want {
		t.Errorf("configs count = %d/%d, want %d", out.Count, len(out.Configs), want)
	}
	if len(out.Policies) != len(PolicyNames()) {
		t.Errorf("policies = %v, want %v", out.Policies, PolicyNames())
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	var out struct {
		Status string `json:"status"`
	}
	if s := getJSON(t, ts.URL+"/healthz", &out); s != http.StatusOK || out.Status != "ok" {
		t.Errorf("healthz = %d %+v", s, out)
	}
}

// promSampleRe matches one exposition sample line.
var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// parsePrometheus validates text exposition format and returns the
// families declared by # TYPE lines.
func parsePrometheus(t *testing.T, text string) map[string]string {
	t.Helper()
	families := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			families[parts[2]] = parts[3]
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bad sample line %q", line)
			}
			name := m[1]
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if trimmed, ok := strings.CutSuffix(name, suffix); ok {
					if _, isHist := families[trimmed]; isHist {
						base = trimmed
						break
					}
				}
			}
			if _, ok := families[base]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", line)
			}
		}
	}
	return families
}

// TestMetricsExposition is the second acceptance gate: after traffic,
// /metrics must expose at least six distinct families in valid
// Prometheus text format, covering both run and HTTP instrumentation.
func TestMetricsExposition(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	postRun(t, ts, `{"app":"Graph500","policy":"harmonia"}`)
	postRun(t, ts, `{"app":"Graph500","policy":"baseline"}`)
	getJSON(t, ts.URL+"/healthz", nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families := parsePrometheus(t, string(raw))
	if len(families) < 6 {
		t.Errorf("exposed %d metric families, want >= 6: %v", len(families), families)
	}
	for name, typ := range map[string]string{
		"harmonia_runs_started_total":            "counter",
		"harmonia_runs_completed_total":          "counter",
		"harmonia_kernel_invocations_total":      "counter",
		"harmonia_simulated_seconds_total":       "counter",
		"harmonia_run_ed2":                       "histogram",
		"harmonia_http_requests_total":           "counter",
		"harmonia_http_request_duration_seconds": "histogram",
		"harmonia_serve_retained_runs":           "gauge",
	} {
		if families[name] != typ {
			t.Errorf("family %s = %q, want %q", name, families[name], typ)
		}
	}
	text := string(raw)
	if !strings.Contains(text, `harmonia_runs_completed_total{policy="harmonia"} 1`) {
		t.Errorf("per-policy run counter missing:\n%s", text)
	}
	if !strings.Contains(text, `harmonia_runs_completed_total{policy="baseline"} 1`) {
		t.Errorf("per-policy baseline counter missing:\n%s", text)
	}
}

func TestAsyncRun(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	status, created := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`)
	if status != http.StatusAccepted {
		t.Fatalf("async POST = %d, want 202", status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got RunJSON
		getJSON(t, ts.URL+"/v1/runs/"+created.ID, &got)
		if got.Status == StatusDone {
			if got.Report == nil {
				t.Fatalf("done without report: %+v", got)
			}
			break
		}
		if got.Status == StatusFailed {
			t.Fatalf("async run failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("async run stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFaultedRunDiffersAndReplays(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	_, clean := postRun(t, ts, `{"app":"Graph500","policy":"naive"}`)
	_, faulted1 := postRun(t, ts, `{"app":"Graph500","policy":"naive","fault_seed":7,"fault_intensity":1}`)
	_, faulted2 := postRun(t, ts, `{"app":"Graph500","policy":"naive","fault_seed":7,"fault_intensity":1}`)
	if clean.Report == nil || faulted1.Report == nil || faulted2.Report == nil {
		t.Fatal("missing reports")
	}
	if clean.Report.ED2 == faulted1.Report.ED2 {
		t.Errorf("full-intensity faults did not change the naive controller's ED2")
	}
	if faulted1.Report.ED2 != faulted2.Report.ED2 {
		t.Errorf("same fault seed did not replay: %v vs %v", faulted1.Report.ED2, faulted2.Report.ED2)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	cases := []struct {
		body string
		want int
	}{
		{`{"app":"NoSuchApp","policy":"harmonia"}`, http.StatusBadRequest},
		{`{"app":"Graph500","policy":"nonsense"}`, http.StatusBadRequest},
		{`{"app":"Graph500","policy":"fixed"}`, http.StatusBadRequest},
		{`{"app":"Graph500","policy":"fixed","config":"9999/1/1"}`, http.StatusBadRequest},
		{`{"app":"Graph500","policy":"harmonia","fault_intensity":2}`, http.StatusBadRequest},
		{`{"app":"Graph500","policy":"harmonia","surprise":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, _ := postRun(t, ts, c.body); status != c.want {
			t.Errorf("POST %s = %d, want %d", c.body, status, c.want)
		}
	}
}

// TestConcurrentRunsOneSystem fires N parallel POSTs at one shared
// System across every policy kind; under -race this is the concurrency
// acceptance test for the whole service path (lazy training, shared
// models, registry, telemetry).
func TestConcurrentRunsOneSystem(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 8})
	bodies := []string{
		`{"app":"Graph500","policy":"harmonia"}`,
		`{"app":"Graph500","policy":"baseline"}`,
		`{"app":"SRAD","policy":"cg-only"}`,
		`{"app":"SRAD","policy":"naive"}`,
		`{"app":"Graph500","policy":"powertune","tdp_watts":150}`,
		`{"app":"SRAD","policy":"compute-only"}`,
		`{"app":"Graph500","policy":"fixed","config":"16/700/925"}`,
		`{"app":"Sort","policy":"harmonia","fault_seed":3,"fault_intensity":0.5}`,
	}
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(bodies))
	for r := 0; r < rounds; r++ {
		for _, body := range bodies {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				status, run := postRun(t, ts, body)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("POST %s = %d (%s)", body, status, run.Error)
					return
				}
				if run.Status != StatusDone || run.Report == nil {
					errs <- fmt.Sprintf("POST %s finished %s", body, run.Status)
				}
			}(body)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Every concurrent harmonia run must agree bit for bit: shared lazy
	// training must hand all of them the same predictor.
	var list struct {
		Runs []RunJSON `json:"runs"`
	}
	getJSON(t, ts.URL+"/v1/runs", &list)
	if len(list.Runs) != rounds*len(bodies) {
		t.Errorf("registry holds %d runs, want %d", len(list.Runs), rounds*len(bodies))
	}
	ed2ByID := map[string]float64{}
	for _, run := range list.Runs {
		var full RunJSON
		getJSON(t, ts.URL+"/v1/runs/"+run.ID, &full)
		if full.Policy == "harmonia" && full.App == "Graph500" && full.Report != nil {
			ed2ByID[run.ID] = full.Report.ED2
		}
	}
	var first float64
	ok := false
	for _, ed2 := range ed2ByID {
		if !ok {
			first, ok = ed2, true
			continue
		}
		if math.Float64bits(ed2) != math.Float64bits(first) {
			t.Errorf("concurrent harmonia runs disagree: %v vs %v", ed2, first)
		}
	}
}

func TestRegistryTTLEviction(t *testing.T) {
	clock := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		mu.Lock()
		clock = clock.Add(d)
		mu.Unlock()
	}
	ts, _, _ := newTestServer(t, Options{RunTTL: time.Minute, Now: now})

	_, created := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`)
	if s := getJSON(t, ts.URL+"/v1/runs/"+created.ID, nil); s != http.StatusOK {
		t.Fatalf("run should be retained: %d", s)
	}
	advance(2 * time.Minute)
	if s := getJSON(t, ts.URL+"/v1/runs/"+created.ID, nil); s != http.StatusNotFound {
		t.Errorf("run should be evicted after TTL: %d", s)
	}
}

func TestRegistryCapEviction(t *testing.T) {
	reg := newRegistry(0, 2, time.Now)
	evicted := 0
	reg.onEvict = func(n int) { evicted += n }
	for i := 0; i < 4; i++ {
		run := reg.create("app", "pol")
		run.start(time.Now())
		run.finish(nil, nil, time.Now())
	}
	if got := reg.size(); got > 3 {
		// create evicts before inserting, so at most cap+1 live briefly.
		t.Errorf("registry size = %d, want <= 3", got)
	}
	reg.list()
	if got := reg.size(); got != 2 {
		t.Errorf("registry size after list = %d, want 2", got)
	}
	if evicted == 0 {
		t.Error("onEvict never fired")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/nothing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/nothing = %d, want 404", resp.StatusCode)
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/runs = %d, want 405", resp2.StatusCode)
	}
}

// TestListOrderSurvivesSeqRollover is the regression test for ordering
// by ID string: IDs are zero-padded to six digits, so "run-1000000"
// sorts before "run-999999" lexicographically and a registry that had
// crossed a million runs would list (and evict) out of order. Ordering
// must follow the creation sequence, not the ID string.
func TestListOrderSurvivesSeqRollover(t *testing.T) {
	reg := newRegistry(0, 0, time.Now)
	reg.seq = 999997 // two runs this side of the six-digit pad, then past it
	var created []*Run
	for i := 0; i < 4; i++ {
		created = append(created, reg.create("app", "pol"))
	}
	if created[1].ID != "run-999999" || created[2].ID != "run-1000000" {
		t.Fatalf("unexpected IDs around rollover: %s, %s", created[1].ID, created[2].ID)
	}
	got := reg.list()
	if len(got) != len(created) {
		t.Fatalf("list returned %d runs, want %d", len(got), len(created))
	}
	for i, run := range got {
		want := created[len(created)-1-i] // newest first
		if run.ID != want.ID {
			t.Errorf("list[%d] = %s, want %s", i, run.ID, want.ID)
		}
	}
}

// TestCapEvictionSurvivesSeqRollover: capacity eviction must drop the
// oldest finished runs by creation order, not by ID string, across the
// same boundary.
func TestCapEvictionSurvivesSeqRollover(t *testing.T) {
	reg := newRegistry(0, 2, time.Now)
	reg.seq = 999997
	var created []*Run
	for i := 0; i < 4; i++ {
		run := reg.create("app", "pol")
		run.start(time.Now())
		run.finish(nil, nil, time.Now())
		created = append(created, run)
	}
	reg.list() // trigger eviction down to the cap
	if got := reg.size(); got != 2 {
		t.Fatalf("registry size = %d, want 2", got)
	}
	// The two newest (run-1000000, run-1000001) survive; with string
	// ordering the buggy code would have evicted them first.
	for _, run := range created[2:] {
		if _, ok := reg.get(run.ID); !ok {
			t.Errorf("newest run %s was evicted; oldest should go first", run.ID)
		}
	}
	for _, run := range created[:2] {
		if _, ok := reg.get(run.ID); ok {
			t.Errorf("oldest run %s survived past the cap", run.ID)
		}
	}
}
