package serve

// Tests for the spans endpoint, request/trace correlation, the sentinel
// error → HTTP status mapping, and the operator debug mux.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// runToDone submits a synchronous run and returns its ID.
func runToDone(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	status, run := postRun(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/runs = %d", status)
	}
	if run.Status != StatusDone {
		t.Fatalf("run status %q, want done", run.Status)
	}
	return run.ID
}

func TestGetSpansNativeFormat(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	id := runToDone(t, ts, `{"app":"SRAD","policy":"harmonia"}`)

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET spans = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceID string `json:"trace_id"`
		Attrs   []struct{ Key, Value string }
		Spans   []struct {
			ID     string `json:"id"`
			Parent string `json:"parent"`
			Name   string `json:"name"`
			Ended  bool   `json:"ended"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceID) != 32 {
		t.Fatalf("trace_id %q is not 32 hex digits", doc.TraceID)
	}
	if len(doc.Spans) == 0 {
		t.Fatal("no spans recorded for a finished run")
	}
	names := map[string]bool{}
	for _, sp := range doc.Spans {
		names[sp.Name] = true
		if !sp.Ended {
			t.Fatalf("span %q still open after the run finished", sp.Name)
		}
	}
	for _, want := range []string{"run", "kernel", "decide", "simulate", "observe"} {
		if !names[want] {
			t.Fatalf("span tree missing %q spans", want)
		}
	}
	// The trace header links back to the run and the submitting request.
	got := map[string]string{}
	for _, a := range doc.Attrs {
		got[a.Key] = a.Value
	}
	if got["run_id"] != id {
		t.Fatalf("trace run_id attr = %q, want %q", got["run_id"], id)
	}
	if !strings.HasPrefix(got["request_id"], "req-") {
		t.Fatalf("trace request_id attr = %q", got["request_id"])
	}
}

func TestGetSpansChromeFormat(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	id := runToDone(t, ts, `{"app":"SRAD","policy":"baseline"}`)

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/spans?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET spans?format=chrome = %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome export is not valid trace-event JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) < 2 {
		t.Fatalf("unexpected chrome doc: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Args["run_id"] != id {
		t.Fatalf("first event is not the process metadata record: %+v", doc.TraceEvents[0])
	}
	sawComplete := false
	for _, ev := range doc.TraceEvents[1:] {
		if ev.Ph == "X" {
			sawComplete = true
			if ev.Args["span_id"] == "" {
				t.Fatal("complete event without span_id")
			}
		}
	}
	if !sawComplete {
		t.Fatal("no complete (ph X) events in chrome export")
	}

	// Unknown format is a 400, not a silent default.
	if code := getJSON(t, ts.URL+"/v1/runs/"+id+"/spans?format=xml", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown format = %d, want 400", code)
	}
}

func TestSpansNotFoundAndStatusMapping(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	for _, path := range []string{
		"/v1/runs/run-999999",
		"/v1/runs/run-999999/spans",
		"/v1/runs/run-999999/trace",
		"/v1/batch/batch-999999",
	} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404 (ErrRunNotFound mapping)", path, code)
		}
	}
	// A fixed-policy run with an off-grid config maps ErrInvalidConfig
	// to 400.
	status, _ := postRun(t, ts, `{"app":"SRAD","policy":"fixed","config":"999/999/999"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("off-grid fixed config = %d, want 400", status)
	}
}

func TestRequestIDMintedAndEchoed(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(rid, "req-") {
		t.Fatalf("minted X-Request-Id = %q", rid)
	}

	// An inbound X-Request-Id is honored, not replaced.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/apps", nil)
	req.Header.Set("X-Request-Id", "client-abc123")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if rid := resp2.Header.Get("X-Request-Id"); rid != "client-abc123" {
		t.Fatalf("inbound request ID replaced with %q", rid)
	}
}

func TestTraceparentAdopted(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs",
		strings.NewReader(`{"app":"SRAD","policy":"baseline"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var run RunJSON
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceID string `json:"trace_id"`
		Attrs   []struct{ Key, Value string }
	}
	if code := getJSON(t, ts.URL+"/v1/runs/"+run.ID+"/spans", &doc); code != http.StatusOK {
		t.Fatalf("GET spans = %d", code)
	}
	if doc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("run trace ID %q did not adopt the inbound traceparent", doc.TraceID)
	}
	attrs := map[string]string{}
	for _, a := range doc.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["parent_span_id"] != "00f067aa0ba902b7" {
		t.Fatalf("parent_span_id attr = %q", attrs["parent_span_id"])
	}
}

func TestBatchCellsGetSpans(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 2})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"apps":["SRAD"],"policies":["baseline","harmonia"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b BatchJSON
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if b.Status != StatusDone {
		t.Fatalf("batch status %q", b.Status)
	}
	seen := map[string]bool{}
	for _, cell := range b.Cells {
		var doc struct {
			TraceID string `json:"trace_id"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if code := getJSON(t, ts.URL+"/v1/runs/"+cell.RunID+"/spans", &doc); code != http.StatusOK {
			t.Fatalf("cell %s spans = %d", cell.RunID, code)
		}
		if len(doc.Spans) == 0 {
			t.Fatalf("cell %s recorded no spans", cell.RunID)
		}
		if seen[doc.TraceID] {
			t.Fatalf("two batch cells share trace ID %s", doc.TraceID)
		}
		seen[doc.TraceID] = true
	}
}

func TestDebugHandler(t *testing.T) {
	ts := httptest.NewServer(DebugHandler())
	defer ts.Close()
	for path, wantCT := range map[string]string{
		"/debug/pprof/":        "text/html",
		"/debug/vars":          "application/json",
		"/debug/pprof/cmdline": "text/plain",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, wantCT) {
			t.Errorf("GET %s Content-Type = %q, want %q", path, ct, wantCT)
		}
		if len(body) == 0 {
			t.Errorf("GET %s returned an empty body", path)
		}
	}
}
