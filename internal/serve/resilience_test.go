// Chaos and resilience tests: graceful drain, load shedding, panic
// quarantine, circuit breaking, and the crash/restart journal drill.
// TestChaosMixedWorkloadSoak is the bounded chaos harness `make soak`
// runs under -race with extra iterations.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"harmonia"
	"harmonia/internal/resilience"
	"harmonia/internal/session"
)

// newChaosServer builds a server whose internals the test can poke,
// plus an httptest frontend. Cleanup closes both.
func newChaosServer(t *testing.T, opts Options) (*Server, *httptest.Server, *harmonia.System) {
	t.Helper()
	reg := harmonia.NewTelemetry()
	sys := harmonia.NewSystem(harmonia.WithTelemetry(reg))
	if opts.Telemetry == nil {
		opts.Telemetry = reg
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	srv := New(sys, opts)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, sys
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShutdownCancelsInFlightRun is the base-context regression test:
// a run executing real simulations must be canceled at its next kernel
// boundary when Shutdown's grace expires, instead of outliving the
// server on a context.Background() descendant.
func TestShutdownCancelsInFlightRun(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	var opts Options
	opts.Workers = 1
	opts.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		once.Do(func() { close(started) })
		// Loop real runs forever; only context cancellation — checked at
		// kernel boundaries inside RunContext — can stop this.
		sys := harmonia.NewSystem()
		for {
			if _, err := sys.RunContext(ctx, app, pol, ro...); err != nil {
				return nil, err
			}
		}
	}
	srv, ts, _ := newChaosServer(t, opts)

	status, run := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", status)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown with a hung run should report the expired grace")
	}
	var got RunJSON
	getJSON(t, ts.URL+"/v1/runs/"+run.ID, &got)
	if got.Status != StatusFailed || !strings.Contains(got.Error, "context canceled") {
		t.Errorf("run after forced shutdown = %q (%q), want failed by cancellation", got.Status, got.Error)
	}
}

// TestDrainFinishesInFlightRuns: with grace available, Shutdown lets
// admitted runs complete instead of canceling them.
func TestDrainFinishesInFlightRuns(t *testing.T) {
	srv, ts, _ := newChaosServer(t, Options{Workers: 2})
	status, run := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	var got RunJSON
	getJSON(t, ts.URL+"/v1/runs/"+run.ID, &got)
	if got.Status != StatusDone {
		t.Errorf("run after graceful drain = %q (%q), want done", got.Status, got.Error)
	}
	// Draining is terminal: readiness stays down, submissions shed.
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz after drain = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("GET /healthz after drain = %d, want 200 (liveness is not readiness)", code)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"SRAD","policy":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining rejection missing Retry-After")
	}
}

// TestOverloadShedsWith429AndRetryAfter saturates a tiny admission
// queue and asserts the overflow submission is shed, not queued.
func TestOverloadShedsWith429AndRetryAfter(t *testing.T) {
	release := make(chan struct{})
	var opts Options
	opts.Workers = 1
	opts.QueueDepth = 2
	opts.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	srv, ts, _ := newChaosServer(t, opts)

	for i := 0; i < 2; i++ {
		if status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`); status != http.StatusAccepted {
			t.Fatalf("submission %d = %d, want 202", i, status)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"SRAD","policy":"baseline","wait":false}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission = %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("shed body = %s, want queue-full explanation", body)
	}

	// A batch that doesn't fit whole is shed atomically: nothing runs.
	status, _ := postBatch(t, ts, `{"apps":["SRAD","LUD"],"policies":["baseline","fixed"],"config":"16/700/925","wait":false}`)
	if status != http.StatusTooManyRequests {
		t.Errorf("oversized batch = %d, want 429", status)
	}

	close(release)
	waitFor(t, 5*time.Second, "queued runs to finish", func() bool {
		return srv.pending.Load() == 0
	})
	// Capacity is back: the next submission is admitted.
	if status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`); status != http.StatusAccepted {
		t.Errorf("post-release submission = %d, want 202", status)
	}
}

// TestRateLimiterSheds: a one-token bucket admits the first submission
// and rate-limits the second.
func TestRateLimiterSheds(t *testing.T) {
	_, ts, _ := newChaosServer(t, Options{Workers: 1, RatePerSec: 0.0001, RateBurst: 1})
	if status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`); status != http.StatusOK {
		t.Fatalf("first submission = %d, want 200", status)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"SRAD","policy":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), "rate limit") {
		t.Errorf("second submission = %d (%s), want 429 rate limited", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit rejection missing Retry-After")
	}
}

// TestPanickingBackendQuarantined: a panicking run yields a terminal
// "panicked" record with the captured stack, the daemon stays healthy,
// and repeated panics trip the circuit breaker to fail-fast 503s until
// the cooldown's half-open probe finds the backend recovered.
func TestPanickingBackendQuarantined(t *testing.T) {
	var poisoned atomic.Bool
	poisoned.Store(true)
	var opts Options
	opts.Workers = 1
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 20 * time.Millisecond
	opts.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		if poisoned.Load() {
			panic("chaos: poisoned backend")
		}
		return nil, nil
	}
	srv, ts, _ := newChaosServer(t, opts)

	resp0, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"SRAD","policy":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	var run RunJSON
	decodeErr := json.NewDecoder(resp0.Body).Decode(&run)
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusInternalServerError || decodeErr != nil {
		t.Fatalf("panicked sync run = %d (%v), want 500 with a run body", resp0.StatusCode, decodeErr)
	}
	if run.Status != StatusPanicked || !strings.Contains(run.Error, "poisoned backend") {
		t.Fatalf("run = %q (%q), want panicked with the panic value", run.Status, run.Error)
	}
	var got RunJSON
	getJSON(t, ts.URL+"/v1/runs/"+run.ID, &got)
	if got.Stack == "" || !strings.Contains(got.Stack, "goroutine") {
		t.Error("quarantined run record is missing the captured stack")
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("daemon unhealthy after quarantined panic: /healthz = %d", code)
	}

	// Second consecutive panic trips the breaker.
	if status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`); status != http.StatusInternalServerError {
		t.Fatalf("second panicked run = %d, want 500", status)
	}
	waitFor(t, 2*time.Second, "breaker to trip", func() bool {
		return srv.breaker.State() == resilience.BreakerOpen
	})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"SRAD","policy":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "circuit breaker") {
		t.Fatalf("submission with open breaker = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker rejection missing Retry-After")
	}

	// Backend recovers; after the cooldown the half-open probe closes
	// the breaker and service resumes.
	poisoned.Store(false)
	waitFor(t, 5*time.Second, "breaker to close after recovery", func() bool {
		status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`)
		return status == http.StatusOK && srv.breaker.State() == resilience.BreakerClosed
	})
}

// TestCrashRestartReplayByteIdentical is the kill-mid-batch drill: a
// daemon journaling to a WAL "crashes" (its journal is snapshotted
// mid-batch, after two of four cells finished), a restarted daemon
// replays the snapshot, restores the finished cells from their recorded
// numbers, re-executes the unfinished ones, and the resumed batch is
// byte-identical to an uninterrupted reference.
func TestCrashRestartReplayByteIdentical(t *testing.T) {
	const batchBody = `{"apps":["SRAD","LUD"],"policies":["baseline","fixed"],"config":"16/700/925","wait":false}`
	dir := t.TempDir()

	// Reference: the same matrix, uninterrupted, on its own system.
	_, tsRef, _ := newChaosServer(t, Options{Workers: 1})
	refStatus, ref := postBatch(t, tsRef,
		`{"apps":["SRAD","LUD"],"policies":["baseline","fixed"],"config":"16/700/925"}`)
	if refStatus != http.StatusOK || ref.Status != StatusDone {
		t.Fatalf("reference batch = %d %s", refStatus, ref.Status)
	}

	// Phase 1: daemon A journals the batch and hangs after two cells.
	walA := filepath.Join(dir, "wal.jsonl")
	jA, stA, err := resilience.OpenJournal(walA)
	if err != nil {
		t.Fatal(err)
	}
	var cellsStarted int32
	var optsA Options
	optsA.Workers = 1
	optsA.Journal = jA
	optsA.Replay = stA
	sysA := harmonia.NewSystem()
	optsA.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		if atomic.AddInt32(&cellsStarted, 1) > 2 {
			<-ctx.Done() // the "crash": this cell never finishes
			return nil, ctx.Err()
		}
		return sysA.RunContext(ctx, app, pol, ro...)
	}
	srvA, tsA, _ := newChaosServer(t, optsA)
	if status, b := postBatch(t, tsA, batchBody); status != http.StatusAccepted || b.ID != "batch-000001" {
		t.Fatalf("batch submission = %d %q", status, b.ID)
	}
	// The crash image must hold both finished cells' outcome records.
	var img []byte
	waitFor(t, 30*time.Second, "two journaled cell outcomes", func() bool {
		img, err = os.ReadFile(walA)
		return err == nil && bytes.Count(img, []byte(`"t":"done"`)) >= 2
	})
	walB := filepath.Join(dir, "wal-restart.jsonl")
	if err := os.WriteFile(walB, img, 0o644); err != nil {
		t.Fatal(err)
	}
	srvA.Close()

	// Phase 2: a restarted daemon replays the crash image.
	jB, stB, err := resilience.OpenJournal(walB)
	if err != nil {
		t.Fatal(err)
	}
	if len(stB.Runs) != 4 || len(stB.Batches) != 1 {
		t.Fatalf("crash image folded to %d runs, %d batches; want 4 and 1", len(stB.Runs), len(stB.Batches))
	}
	var optsB Options
	optsB.Workers = 1
	optsB.Journal = jB
	optsB.Replay = stB
	_, tsB, _ := newChaosServer(t, optsB)

	var resumed BatchJSON
	waitFor(t, 60*time.Second, "replayed batch to finish", func() bool {
		getJSON(t, tsB.URL+"/v1/batch/batch-000001", &resumed)
		return resumed.Status == StatusDone
	})
	if !resumed.Restored {
		t.Error("resumed batch not marked restored")
	}
	if len(resumed.Cells) != len(ref.Cells) {
		t.Fatalf("resumed batch has %d cells, reference %d", len(resumed.Cells), len(ref.Cells))
	}
	for i, cell := range resumed.Cells {
		want := ref.Cells[i]
		if cell.RunID != want.RunID || cell.App != want.App || cell.Status != StatusDone {
			t.Errorf("cell %d = %s/%s/%s, want %s/%s/done", i, cell.RunID, cell.App, cell.Status, want.RunID, want.App)
			continue
		}
		if cell.ED2 == nil || want.ED2 == nil ||
			math.Float64bits(*cell.ED2) != math.Float64bits(*want.ED2) ||
			math.Float64bits(*cell.TimeS) != math.Float64bits(*want.TimeS) ||
			math.Float64bits(*cell.EnergyJ) != math.Float64bits(*want.EnergyJ) {
			t.Errorf("cell %d (%s/%s) not byte-identical after resume: ed2 %v vs %v",
				i, cell.App, cell.Policy, cell.ED2, want.ED2)
		}
	}

	// A third daemon over the now-complete journal restores everything
	// terminally with no re-execution.
	jC, stC, err := resilience.OpenJournal(walB)
	if err != nil {
		t.Fatal(err)
	}
	for id, rs := range stC.Runs {
		if !rs.Terminal() {
			t.Errorf("run %s non-terminal after resumed daemon finished", id)
		}
	}
	if !stC.Batches["batch-000001"].Done {
		t.Error("batch not marked done in the resumed journal")
	}
	if err := jC.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInterruptedStandaloneRunQuarantined: a journaled standalone run
// with no outcome record is restored as terminal "interrupted", not
// re-executed (its submitter is gone), and the restart journals that
// outcome so a second restart restores it without reprocessing.
func TestInterruptedStandaloneRunQuarantined(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "wal.jsonl")
	seed := `{"t":"run","id":"run-000007","app":"SRAD","policy":"baseline"}` + "\n"
	if err := os.WriteFile(wal, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	j, st, err := resilience.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	var opts Options
	opts.Workers = 1
	opts.Journal = j
	opts.Replay = st
	srv, ts, _ := newChaosServer(t, opts)

	var got RunJSON
	if code := getJSON(t, ts.URL+"/v1/runs/run-000007", &got); code != http.StatusOK {
		t.Fatalf("GET replayed run = %d", code)
	}
	if got.Status != StatusInterrupted || !got.Restored {
		t.Fatalf("replayed run = %+v, want restored interrupted", got)
	}
	// New IDs mint past the replayed sequence.
	status, fresh := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`)
	if status != http.StatusOK || fresh.ID != "run-000008" {
		t.Errorf("fresh run after replay = %d %s, want 200 run-000008", status, fresh.ID)
	}
	srv.Close()

	_, st2, err := resilience.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	if rs := st2.Runs["run-000007"]; rs == nil || rs.Status != StatusInterrupted {
		t.Errorf("second restart sees %+v, want journaled interrupted outcome", st2.Runs["run-000007"])
	}
}

// TestShutdownReapsBatchWatchers: after Shutdown returns, the batch
// watcher goroutines are gone (the goroutine-leak gate).
func TestShutdownReapsBatchWatchers(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, ts, _ := newChaosServer(t, Options{Workers: 2})
	if status, _ := postBatch(t, ts, `{"apps":["SRAD"],"policies":["baseline","fixed"],"config":"16/700/925"}`); status != http.StatusOK {
		t.Fatalf("batch = %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	ts.Close()
	waitFor(t, 5*time.Second, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestSlowClientReaped: the slowloris hardening — a client that sends
// headers one byte at a time is cut off by ReadHeaderTimeout instead of
// holding a connection open indefinitely. Exercises the same http.Server
// settings cmd/harmonia-serve applies.
func TestSlowClientReaped(t *testing.T) {
	_, ts, _ := newChaosServer(t, Options{Workers: 1})
	httpSrv := &http.Server{
		Handler:           ts.Config.Handler,
		ReadHeaderTimeout: 100 * time.Millisecond,
		ReadTimeout:       200 * time.Millisecond,
		WriteTimeout:      time.Second,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(l) //nolint:errcheck
	defer httpSrv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/runs HTTP/1.1\r\nHost: x\r\nContent-")); err != nil {
		t.Fatal(err)
	}
	// Stall mid-header; the server must hang up.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := conn.Read(buf); err == nil {
		// A 408 response also counts as being reaped; a second read must
		// then hit the closed connection.
		if _, err := conn.Read(buf); err == nil {
			t.Fatal("slow client still connected after ReadHeaderTimeout")
		}
	}
}

// TestChaosMixedWorkloadSoak is the chaos harness: a mixed stream of
// good runs, failing runs, panicking runs, batches, and polls against a
// journaling server, then a drain mid-flight. It asserts the daemon
// never deadlocks, every admitted run lands in a terminal state, the
// journal holds a terminal record for every submission it admitted, and
// no goroutine leaks. `make soak` runs it under -race with
// HARMONIA_SOAK_ITERS for a bounded burn-in.
func TestChaosMixedWorkloadSoak(t *testing.T) {
	iters := 1
	if v := os.Getenv("HARMONIA_SOAK_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad HARMONIA_SOAK_ITERS %q", v)
		}
		iters = n
	}
	for it := 0; it < iters; it++ {
		t.Run(fmt.Sprintf("iter%02d", it), chaosIteration)
	}
}

func chaosIteration(t *testing.T) {
	before := runtime.NumGoroutine()
	wal := filepath.Join(t.TempDir(), "wal.jsonl")
	j, st, err := resilience.OpenJournal(wal)
	if err != nil {
		t.Fatal(err)
	}
	var calls int32
	var opts Options
	opts.Workers = 4
	opts.QueueDepth = 32
	opts.BreakerThreshold = -1 // chaos wants the faults to keep flowing
	opts.Journal = j
	opts.Replay = st
	sys := harmonia.NewSystem()
	opts.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		switch atomic.AddInt32(&calls, 1) % 5 {
		case 2:
			panic("chaos: injected panic")
		case 4:
			return nil, fmt.Errorf("chaos: injected failure")
		default:
			return sys.RunContext(ctx, app, pol, ro...)
		}
	}
	srv, ts, _ := newChaosServer(t, opts)

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch (c + i) % 3 {
				case 0:
					status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`)
					chaosStatusOK(t, "sync run", status)
				case 1:
					status, _ := postRun(t, ts, `{"app":"LUD","policy":"fixed","config":"16/700/925","wait":false}`)
					chaosStatusOK(t, "async run", status)
				default:
					status, _ := postBatch(t, ts, `{"apps":["SRAD"],"policies":["baseline","fixed"],"config":"16/700/925","wait":false}`)
					chaosStatusOK(t, "batch", status)
				}
				getJSON(t, ts.URL+"/v1/runs", nil)
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("chaos drain failed: %v", err)
	}
	for _, run := range srv.reg.list() {
		if out := run.JSON(); !terminalStatus(out.Status) {
			t.Errorf("run %s left non-terminal after drain: %s", out.ID, out.Status)
		}
	}
	// The WAL must account for every admitted run.
	_, final, err := resilience.OpenJournal(wal)
	if err != nil {
		t.Fatalf("journal corrupt after chaos: %v", err)
	}
	for id, rs := range final.Runs {
		if !rs.Terminal() {
			t.Errorf("journal lost the outcome of %s", id)
		}
	}
	ts.Close()
	waitFor(t, 5*time.Second, "chaos goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

// chaosStatusOK accepts every status the resilience layer may
// legitimately answer under chaos; anything else is a bug.
func chaosStatusOK(t *testing.T, what string, status int) {
	t.Helper()
	switch status {
	case http.StatusOK, http.StatusAccepted, http.StatusUnprocessableEntity,
		http.StatusInternalServerError, http.StatusTooManyRequests, http.StatusServiceUnavailable:
	default:
		t.Errorf("%s = %d, not an expected chaos status", what, status)
	}
}

// TestCancelledProbeReleasesBreaker: a half-open probe whose run is
// cancelled (here by the per-run deadline) resolves nothing about
// backend health, so the probe slot must go back to the breaker —
// re-open, retry later — instead of wedging it half-open forever with
// every subsequent submission shed 503.
func TestCancelledProbeReleasesBreaker(t *testing.T) {
	const (
		modeFail = iota
		modeHang
		modeHealthy
	)
	var mode atomic.Int32
	var opts Options
	opts.Workers = 1
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = 20 * time.Millisecond
	opts.RequestTimeout = 50 * time.Millisecond
	opts.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		switch mode.Load() {
		case modeFail:
			return nil, fmt.Errorf("chaos: backend down")
		case modeHang:
			<-ctx.Done()
			return nil, ctx.Err()
		default:
			return nil, nil
		}
	}
	srv, ts, _ := newChaosServer(t, opts)

	if status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("tripping run = %d, want 422", status)
	}
	waitFor(t, 2*time.Second, "breaker to trip", func() bool {
		return srv.breaker.State() == resilience.BreakerOpen
	})

	// The backend now hangs until cancelled: the next admitted
	// submission is the half-open probe, and it dies by deadline.
	mode.Store(modeHang)
	waitFor(t, 5*time.Second, "a probe to be admitted and time out", func() bool {
		status, run := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`)
		return status == http.StatusUnprocessableEntity &&
			strings.Contains(run.Error, "context deadline exceeded")
	})
	// The cancelled probe must have handed its slot back: the breaker
	// re-opens rather than staying half-open. (Without the release this
	// never converges — half-open persists and every request is shed.)
	waitFor(t, 2*time.Second, "cancelled probe to re-open the breaker", func() bool {
		return srv.breaker.State() == resilience.BreakerOpen
	})

	// Backend recovers: a later probe closes the breaker and service
	// resumes — the wedge would make this time out.
	mode.Store(modeHealthy)
	waitFor(t, 5*time.Second, "breaker to close after recovery", func() bool {
		status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline"}`)
		return status == http.StatusOK && srv.breaker.State() == resilience.BreakerClosed
	})
}

// TestQueueFullShedDoesNotSpendRateToken: the queue bound is checked
// before the token bucket, so a queue_full rejection leaves the
// client's token for the retry once capacity returns. (The old order
// debited the token first, double-punishing clients during overload.)
func TestQueueFullShedDoesNotSpendRateToken(t *testing.T) {
	release := make(chan struct{})
	var opts Options
	opts.Workers = 1
	opts.QueueDepth = 1
	opts.RatePerSec = 0.0001 // effectively no refill during the test
	opts.RateBurst = 2
	opts.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	srv, ts, _ := newChaosServer(t, opts)

	// First submission spends one of the two tokens and fills the queue.
	if status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`); status != http.StatusAccepted {
		t.Fatalf("first submission = %d, want 202", status)
	}
	// Overflow: shed queue_full, and the second token must survive.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"SRAD","policy":"baseline","wait":false}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), "queue full") {
		t.Fatalf("overflow submission = %d (%s), want 429 queue full", resp.StatusCode, body)
	}

	close(release)
	waitFor(t, 5*time.Second, "queued run to finish", func() bool {
		return srv.pending.Load() == 0
	})
	// Capacity is back and the retry still has its token.
	if status, _ := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`); status != http.StatusAccepted {
		t.Errorf("retry after queue_full shed = %d, want 202 (the shed must not have spent the rate token)", status)
	}
}
