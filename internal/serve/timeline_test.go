package serve

// Tests for the flight-recorder surface: the timeline endpoint (JSON,
// CSV, re-bucketing), the SSE live stream's exactly-once delivery, the
// decision-quality stats endpoint, and timeline byte-identity across a
// crash-restart journal replay.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"harmonia"
	"harmonia/internal/resilience"
	"harmonia/internal/session"
	"harmonia/internal/timeline"
)

// getTimeline fetches a run's timeline snapshot.
func getTimeline(t *testing.T, ts *httptest.Server, id, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/timeline" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// scrapeMetrics returns the /metrics exposition body.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestGetTimelineJSONAndCSV(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	id := runToDone(t, ts, `{"app":"SRAD","policy":"harmonia"}`)

	status, body := getTimeline(t, ts, id, "")
	if status != http.StatusOK {
		t.Fatalf("GET timeline = %d: %s", status, body)
	}
	var snap timeline.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.App != "SRAD" || snap.Policy != "harmonia" {
		t.Fatalf("snapshot identity = %s/%s", snap.App, snap.Policy)
	}
	if len(snap.Decisions) == 0 || len(snap.Power) == 0 || snap.SampleCount == 0 {
		t.Fatalf("empty snapshot: %d decisions, %d buckets, %d samples",
			len(snap.Decisions), len(snap.Power), snap.SampleCount)
	}
	for _, d := range snap.Decisions {
		if d.Source == "" {
			t.Fatalf("harmonia decision %d unannotated", d.Index)
		}
	}

	// Coarser ?res= re-buckets without losing samples.
	status, body = getTimeline(t, ts, id, "?res=0.016")
	if status != http.StatusOK {
		t.Fatalf("GET timeline?res = %d", status)
	}
	var coarse timeline.Snapshot
	if err := json.Unmarshal(body, &coarse); err != nil {
		t.Fatal(err)
	}
	if coarse.ResolutionS < 0.016 || len(coarse.Power) >= len(snap.Power) {
		t.Fatalf("res=0.016 gave resolution %v with %d buckets (fine had %d)",
			coarse.ResolutionS, len(coarse.Power), len(snap.Power))
	}
	if coarse.SampleCount != snap.SampleCount {
		t.Fatalf("coarsening lost samples: %d != %d", coarse.SampleCount, snap.SampleCount)
	}

	// CSV rendering of the power series.
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/timeline?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csvBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("CSV Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(csvBody)), "\n")
	if lines[0] != "time_s,samples,gpu_w,mem_w,other_w" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if len(lines) != len(snap.Power)+1 {
		t.Fatalf("CSV has %d rows, snapshot %d buckets", len(lines)-1, len(snap.Power))
	}

	// Bad inputs.
	if status, _ := getTimeline(t, ts, id, "?format=xml"); status != http.StatusBadRequest {
		t.Fatalf("unknown format = %d, want 400", status)
	}
	if status, _ := getTimeline(t, ts, id, "?res=-1"); status != http.StatusBadRequest {
		t.Fatalf("negative res = %d, want 400", status)
	}
	if status, _ := getTimeline(t, ts, "run-999999", ""); status != http.StatusNotFound {
		t.Fatalf("unknown run = %d, want 404", status)
	}
}

// TestLiveStreamDeliversEveryBoundaryOnce: a client attaching to a
// finished run's live stream receives every kernel-boundary event
// exactly once — ids strictly sequential, count matching the timeline —
// then the done event.
func TestLiveStreamDeliversEveryBoundaryOnce(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1})
	id := runToDone(t, ts, `{"app":"SRAD","policy":"harmonia"}`)

	_, body := getTimeline(t, ts, id, "")
	var snap timeline.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET live = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var ids []string
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				sawDone = true
			} else if !strings.Contains(line, `"kernel"`) {
				t.Fatalf("boundary event data missing kernel: %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}
	if len(ids) != len(snap.Decisions) {
		t.Fatalf("stream delivered %d events, timeline has %d decisions", len(ids), len(snap.Decisions))
	}
	seen := map[string]bool{}
	for i, sid := range ids {
		if seen[sid] {
			t.Fatalf("event id %s delivered twice", sid)
		}
		seen[sid] = true
		if want := strconv.Itoa(i); sid != want {
			t.Fatalf("event %d has id %s, want %s", i, sid, want)
		}
	}

	// The stream fed the live-events counter.
	metrics := scrapeMetrics(t, ts)
	if !strings.Contains(metrics, "harmonia_serve_live_events_total") {
		t.Fatal("live events counter missing from /metrics")
	}
	if strings.Contains(metrics, "harmonia_serve_live_events_total 0\n") {
		t.Fatal("live events counter still zero after a full stream")
	}
}

// TestLiveStreamFollowsRunningRun: a client attached while the run is
// mid-flight receives boundaries as they happen and the done event when
// it finishes, without polling.
func TestLiveStreamFollowsRunningRun(t *testing.T) {
	release := make(chan struct{})
	var opts Options
	opts.Workers = 1
	sys := harmonia.NewSystem()
	opts.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		<-release // hold the run "in flight" until the stream is attached
		return sys.RunContext(ctx, app, pol, ro...)
	}
	_, ts, _ := newChaosServer(t, opts)

	status, run := postRun(t, ts, `{"app":"SRAD","policy":"baseline","wait":false}`)
	if status != http.StatusAccepted {
		t.Fatalf("POST run = %d", status)
	}

	stream, err := http.Get(ts.URL + "/v1/runs/" + run.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	close(release)

	events := 0
	sawDone := false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: kernel-boundary") {
			events++
		}
		if strings.HasPrefix(line, "event: done") {
			sawDone = true
		}
	}
	if !sawDone || events == 0 {
		t.Fatalf("followed stream saw %d boundaries, done=%v", events, sawDone)
	}
}

func TestQualityStatsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, Options{Workers: 1, QualityMaxSamples: 4})
	runToDone(t, ts, `{"app":"SRAD","policy":"harmonia"}`)

	// Analysis runs after the run goes terminal; poll for it.
	type statsBody struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			Runs     int `json:"runs_analyzed"`
			Policies []struct {
				Policy     string  `json:"policy"`
				GapRuns    int     `json:"gap_runs"`
				BinChecks  int     `json:"bin_checks"`
				Boundaries int     `json:"boundaries"`
				ChurnRate  float64 `json:"churn_rate"`
			} `json:"policies"`
		} `json:"stats"`
	}
	var body statsBody
	waitFor(t, 30*time.Second, "quality analysis of the finished run", func() bool {
		body = statsBody{}
		if code := getJSON(t, ts.URL+"/v1/stats/quality", &body); code != http.StatusOK {
			return false
		}
		return body.Stats.Runs == 1
	})
	if !body.Enabled {
		t.Fatal("quality analysis not reported enabled")
	}
	if len(body.Stats.Policies) != 1 {
		t.Fatalf("policies = %+v", body.Stats.Policies)
	}
	p := body.Stats.Policies[0]
	if p.Policy != "harmonia" || p.GapRuns != 1 || p.BinChecks == 0 || p.Boundaries == 0 {
		t.Fatalf("policy stats = %+v", p)
	}

	// The analysis families made it to /metrics.
	metrics := scrapeMetrics(t, ts)
	for _, fam := range []string{"harmonia_quality_bin_checks_total", "harmonia_quality_oracle_gap", "harmonia_quality_actions_total"} {
		if !strings.Contains(metrics, fam) {
			t.Fatalf("family %s missing from /metrics", fam)
		}
	}

	// A server without QualityMaxSamples leaves analysis off.
	tsOff, _, _ := newTestServer(t, Options{Workers: 1})
	runToDone(t, tsOff, `{"app":"SRAD","policy":"baseline"}`)
	var off statsBody
	if code := getJSON(t, tsOff.URL+"/v1/stats/quality", &off); code != http.StatusOK {
		t.Fatalf("GET quality stats = %d", code)
	}
	if off.Enabled || off.Stats.Runs != 0 {
		t.Fatalf("disabled server reported enabled=%v runs=%d", off.Enabled, off.Stats.Runs)
	}
}

// TestReplayedTimelineByteIdentical is the flight-recorder half of the
// crash drill: batch cells interrupted by a "crash" are re-executed by
// the restarted daemon, and because the recorder is a pure function of
// the run's inputs, each replayed cell's timeline is byte-identical to
// an uninterrupted reference run's. Cells that finished before the
// crash are journal-restored without a recorder and answer 409.
func TestReplayedTimelineByteIdentical(t *testing.T) {
	const batchBody = `{"apps":["SRAD","LUD"],"policies":["baseline","fixed"],"config":"16/700/925","wait":false}`
	dir := t.TempDir()

	// Reference: the same matrix, uninterrupted.
	_, tsRef, _ := newChaosServer(t, Options{Workers: 1})
	refStatus, ref := postBatch(t, tsRef,
		`{"apps":["SRAD","LUD"],"policies":["baseline","fixed"],"config":"16/700/925"}`)
	if refStatus != http.StatusOK || ref.Status != StatusDone {
		t.Fatalf("reference batch = %d %s", refStatus, ref.Status)
	}

	// Phase 1: daemon A journals the batch and hangs after two cells.
	walA := filepath.Join(dir, "wal.jsonl")
	jA, stA, err := resilience.OpenJournal(walA)
	if err != nil {
		t.Fatal(err)
	}
	var cellsStarted int32
	var optsA Options
	optsA.Workers = 1
	optsA.Journal = jA
	optsA.Replay = stA
	sysA := harmonia.NewSystem()
	optsA.runFn = func(ctx context.Context, app *harmonia.Application, pol harmonia.Policy, ro ...harmonia.RunOption) (*session.Report, error) {
		if atomic.AddInt32(&cellsStarted, 1) > 2 {
			<-ctx.Done() // the "crash": this cell never finishes
			return nil, ctx.Err()
		}
		return sysA.RunContext(ctx, app, pol, ro...)
	}
	srvA, tsA, _ := newChaosServer(t, optsA)
	if status, b := postBatch(t, tsA, batchBody); status != http.StatusAccepted || b.ID != "batch-000001" {
		t.Fatalf("batch submission = %d %q", status, b.ID)
	}
	var img []byte
	waitFor(t, 30*time.Second, "two journaled cell outcomes", func() bool {
		img, err = os.ReadFile(walA)
		return err == nil && bytes.Count(img, []byte(`"t":"done"`)) >= 2
	})
	walB := filepath.Join(dir, "wal-restart.jsonl")
	if err := os.WriteFile(walB, img, 0o644); err != nil {
		t.Fatal(err)
	}
	srvA.Close()

	// Phase 2: a restarted daemon replays and re-executes the last two
	// cells, each with a fresh flight recorder.
	jB, stB, err := resilience.OpenJournal(walB)
	if err != nil {
		t.Fatal(err)
	}
	var optsB Options
	optsB.Workers = 1
	optsB.Journal = jB
	optsB.Replay = stB
	_, tsB, _ := newChaosServer(t, optsB)
	var resumed BatchJSON
	waitFor(t, 60*time.Second, "replayed batch to finish", func() bool {
		getJSON(t, tsB.URL+"/v1/batch/batch-000001", &resumed)
		return resumed.Status == StatusDone
	})
	if len(resumed.Cells) != len(ref.Cells) {
		t.Fatalf("resumed batch has %d cells, reference %d", len(resumed.Cells), len(ref.Cells))
	}

	for i, cell := range resumed.Cells {
		refCell := ref.Cells[i]
		status, replayed := getTimeline(t, tsB, cell.RunID, "")
		if i < 2 {
			// Journal-restored terminal records carry no recorder.
			if status != http.StatusConflict {
				t.Errorf("restored cell %s timeline = %d, want 409", cell.RunID, status)
			}
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("replayed cell %s timeline = %d: %s", cell.RunID, status, replayed)
		}
		refStatus, reference := getTimeline(t, tsRef, refCell.RunID, "")
		if refStatus != http.StatusOK {
			t.Fatalf("reference cell %s timeline = %d", refCell.RunID, refStatus)
		}
		if !bytes.Equal(replayed, reference) {
			t.Errorf("cell %d (%s/%s): replayed timeline differs from uninterrupted reference",
				i, cell.App, cell.Policy)
		}
	}
}
