package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"harmonia"
	"harmonia/internal/timeline"
)

// Batch aggregates one POST /v1/batch submission: the full app × policy
// matrix as child runs in the main registry, plus one record clients
// poll for the aggregate. Cells are row-major — for each app in order,
// every policy in order — so cell i is (apps[i/len(policies)],
// policies[i%len(policies)]).
type Batch struct {
	ID string
	// seq orders batches for eviction, like Run.seq.
	seq int

	apps     []string
	policies []string
	cells    []*Run
	restored bool
	// muted suppresses the onDone callback: a replayed batch the
	// journal already records as done must not journal a second
	// batchdone line. Set before the watcher starts, never mutated.
	muted bool

	mu         sync.Mutex
	createdAt  time.Time
	finishedAt time.Time

	done chan struct{}
}

// Done returns a channel closed when every cell has reached a terminal
// state.
func (b *Batch) Done() <-chan struct{} { return b.done }

// watch waits for all child runs, stamps the batch finished, and
// reports completion (the server journals it). It runs on its own
// goroutine, started at creation and tracked by the registry's
// WaitGroup so shutdown can prove no watcher leaked.
func (b *Batch) watch(now func() time.Time, onDone func(*Batch)) {
	for _, run := range b.cells {
		<-run.Done()
	}
	b.mu.Lock()
	b.finishedAt = now()
	b.mu.Unlock()
	close(b.done)
	if onDone != nil && !b.muted {
		onDone(b)
	}
}

// terminalSince reports whether the batch finished at or before cutoff.
func (b *Batch) terminalSince(cutoff time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.finishedAt.IsZero() && !b.finishedAt.After(cutoff)
}

// BatchCellJSON is one (app, policy) cell of a batch response: the child
// run's identity and headline numbers (poll GET /v1/runs/{run_id} for
// the full report).
type BatchCellJSON struct {
	RunID  string `json:"run_id"`
	App    string `json:"app"`
	Policy string `json:"policy"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Headline metrics of the finished run.
	ED2     *float64 `json:"ed2,omitempty"`
	TimeS   *float64 `json:"time_s,omitempty"`
	EnergyJ *float64 `json:"energy_j,omitempty"`
}

// BatchSummaryJSON counts the batch's cells by outcome.
type BatchSummaryJSON struct {
	Total  int `json:"total"`
	Queued int `json:"queued"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
}

// BatchJSON is the wire form of a batch record.
type BatchJSON struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Restored marks a batch replayed from the journal by a restarted
	// daemon (its unfinished cells were re-executed).
	Restored   bool             `json:"restored,omitempty"`
	Apps       []string         `json:"apps"`
	Policies   []string         `json:"policies"`
	CreatedAt  time.Time        `json:"created_at"`
	FinishedAt *time.Time       `json:"finished_at,omitempty"`
	Summary    BatchSummaryJSON `json:"summary"`
	Cells      []BatchCellJSON  `json:"cells"`
}

// JSON snapshots the batch and its cells for serialization.
func (b *Batch) JSON() BatchJSON {
	b.mu.Lock()
	out := BatchJSON{
		ID:        b.ID,
		Restored:  b.restored,
		Apps:      b.apps,
		Policies:  b.policies,
		CreatedAt: b.createdAt,
	}
	if !b.finishedAt.IsZero() {
		t := b.finishedAt
		out.FinishedAt = &t
	}
	b.mu.Unlock()

	out.Summary.Total = len(b.cells)
	for _, run := range b.cells {
		rj := run.JSON()
		cell := BatchCellJSON{
			RunID:  rj.ID,
			App:    rj.App,
			Policy: rj.Policy,
			Status: rj.Status,
			Error:  rj.Error,
		}
		switch rj.Status {
		case StatusDone:
			out.Summary.Done++
			if h := run.Headline(); h != nil {
				cell.ED2, cell.TimeS, cell.EnergyJ = h.ed2, h.timeS, h.energyJ
			}
		case StatusQueued, StatusRunning:
			out.Summary.Queued++
		default: // failed, panicked, interrupted
			out.Summary.Failed++
		}
		out.Cells = append(out.Cells, cell)
	}
	switch {
	case out.Summary.Failed > 0 && out.Summary.Queued == 0:
		out.Status = StatusFailed
	case out.Summary.Done == out.Summary.Total:
		out.Status = StatusDone
	default:
		out.Status = StatusRunning
	}
	return out
}

// batchRegistry stores batch records with the same TTL-plus-cap
// retention the run registry applies: finished batches are kept for TTL
// so clients can poll the aggregate, oldest finished go first past the
// cap, and in-flight batches are never evicted.
type batchRegistry struct {
	ttl time.Duration
	max int
	now func() time.Time
	// onDone, when non-nil, observes each batch reaching its terminal
	// state (the server journals a batchdone record there).
	onDone func(*Batch)

	mu      sync.Mutex
	batches map[string]*Batch
	seq     int
	// watchers tracks the per-batch watcher goroutines so shutdown can
	// wait for all of them (the goroutine-leak gate).
	watchers sync.WaitGroup
}

func newBatchRegistry(ttl time.Duration, max int, now func() time.Time) *batchRegistry {
	return &batchRegistry{ttl: ttl, max: max, now: now, batches: make(map[string]*Batch)}
}

// create stores a batch over the given cells and starts its watcher.
func (g *batchRegistry) create(apps, policies []string, cells []*Run) *Batch {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.evictLocked(now)
	g.seq++
	b := &Batch{
		ID:        fmt.Sprintf("batch-%06d", g.seq),
		seq:       g.seq,
		apps:      apps,
		policies:  policies,
		cells:     cells,
		createdAt: now,
		done:      make(chan struct{}),
	}
	g.batches[b.ID] = b
	g.startWatcher(b)
	return b
}

// restore re-inserts a replayed batch under its original journal ID,
// advancing the sequence counter past it. A batch whose every cell is
// already terminal completes immediately (watchers over closed Done
// channels return at once); one with re-executed cells watches them
// like a live batch.
func (g *batchRegistry) restore(id string, apps, policies []string, cells []*Run, alreadyDone bool) *Batch {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := seqOf(id)
	if seq > g.seq {
		g.seq = seq
	}
	b := &Batch{
		ID:        id,
		seq:       seq,
		apps:      apps,
		policies:  policies,
		cells:     cells,
		restored:  true,
		muted:     alreadyDone,
		createdAt: now,
		done:      make(chan struct{}),
	}
	g.batches[id] = b
	g.startWatcher(b)
	return b
}

// startWatcher launches b's completion watcher under the registry's
// WaitGroup. Callers hold g.mu.
func (g *batchRegistry) startWatcher(b *Batch) {
	g.watchers.Add(1)
	go func() {
		defer g.watchers.Done()
		b.watch(g.now, g.onDone)
	}()
}

// wait blocks until every watcher goroutine has exited (all batches
// terminal). Only meaningful once no new batches can be created.
func (g *batchRegistry) wait() { g.watchers.Wait() }

func (g *batchRegistry) get(id string) (*Batch, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.evictLocked(g.now())
	b, ok := g.batches[id]
	return b, ok
}

// evictLocked mirrors registry.evictLocked for batches. Callers hold
// g.mu.
func (g *batchRegistry) evictLocked(now time.Time) {
	if g.ttl > 0 {
		cutoff := now.Add(-g.ttl)
		for id, b := range g.batches {
			if b.terminalSince(cutoff) {
				delete(g.batches, id)
			}
		}
	}
	if g.max > 0 && len(g.batches) > g.max {
		finished := make([]*Batch, 0, len(g.batches))
		for _, b := range g.batches {
			if b.terminalSince(now) {
				finished = append(finished, b)
			}
		}
		sort.Slice(finished, func(i, j int) bool { return finished[i].seq < finished[j].seq })
		for _, b := range finished {
			if len(g.batches) <= g.max {
				break
			}
			delete(g.batches, b.ID)
		}
	}
}

// BatchRequest is the body of POST /v1/batch: the cross product of apps
// and policies, each cell sharing the request's config, TDP, and fault
// settings. The matrix fans out on the server's existing worker pool as
// ordinary runs; the batch record aggregates them.
type BatchRequest struct {
	// Apps names suite applications (GET /v1/apps lists them).
	Apps []string `json:"apps"`
	// Policies are POST /v1/runs policy names; every app runs under
	// every policy.
	Policies []string `json:"policies"`
	// Config pins policy "fixed" cells, e.g. "16/700/925".
	Config string `json:"config,omitempty"`
	// TDPWatts caps "powertune" cells; zero means the stock 250 W.
	TDPWatts float64 `json:"tdp_watts,omitempty"`
	// FaultIntensity > 0 runs every cell under the canonical fault
	// profile at that intensity; FaultSeed seeds it.
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	FaultSeed      int64   `json:"fault_seed,omitempty"`
	// Wait false turns the call asynchronous: respond 202 immediately
	// and poll GET /v1/batch/{id}. Default (absent or true) blocks until
	// every cell finishes and returns the aggregate inline.
	Wait *bool `json:"wait,omitempty"`
}

// maxBatchCells bounds one submission (apps × policies).
const maxBatchCells = 1024

// handleCreateBatch is POST /v1/batch.
func (s *Server) handleCreateBatch(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Apps) == 0 || len(req.Policies) == 0 {
		writeError(w, http.StatusBadRequest, "batch needs at least one app and one policy")
		return
	}
	if n := len(req.Apps) * len(req.Policies); n > maxBatchCells {
		writeError(w, http.StatusBadRequest, "batch of %d cells exceeds the %d-cell limit", n, maxBatchCells)
		return
	}
	if req.FaultIntensity < 0 || req.FaultIntensity > 1 {
		writeError(w, http.StatusBadRequest, "fault_intensity must be in [0, 1], got %g", req.FaultIntensity)
		return
	}

	// Validate the whole matrix before creating anything: one bad cell
	// rejects the batch with nothing scheduled. Policies are stateful,
	// so each cell gets its own instance.
	type cell struct {
		app *harmonia.Application
		pol harmonia.Policy
	}
	cells := make([]cell, 0, len(req.Apps)*len(req.Policies))
	for _, appName := range req.Apps {
		app := harmonia.App(appName)
		if app == nil {
			writeError(w, http.StatusBadRequest, "unknown app %q (GET /v1/apps lists the suite)", appName)
			return
		}
		for _, polName := range req.Policies {
			rr := RunRequest{App: appName, Policy: polName, Config: req.Config, TDPWatts: req.TDPWatts}
			pol, msg, err := s.buildPolicy(&rr, app)
			if err != nil {
				writeErr(w, err)
				return
			}
			if msg != "" {
				writeError(w, http.StatusBadRequest, "%s", msg)
				return
			}
			cells = append(cells, cell{app: app, pol: pol})
		}
	}

	var opts []harmonia.RunOption
	if req.FaultIntensity > 0 {
		opts = append(opts, harmonia.RunWithFaults(harmonia.FaultProfile(req.FaultSeed, req.FaultIntensity)))
	}
	wait := req.Wait == nil || *req.Wait
	jobCtx := s.baseCtx
	if wait {
		jobCtx = r.Context()
	}

	// Admission is all-or-nothing: the whole matrix gets slots or the
	// batch is shed with nothing scheduled.
	probe, shed := s.admit(len(cells))
	if shed != nil {
		s.writeShed(w, shed)
		return
	}
	var b *Batch
	runs := make([]*Run, len(cells))
	func() {
		// admit left the drain read-lock held; release it only after the
		// enqueues so shutdown cannot drain between reservation and send.
		defer s.admitted()
		for i, c := range cells {
			runs[i] = s.reg.create(c.app.Name, c.pol.Name())
			runs[i].setTracer(s.newRunTracer(r, runs[i]))
			runs[i].setTimeline(timeline.New())
		}
		s.retained.Set(float64(s.reg.size()))
		b = s.batches.create(req.Apps, req.Policies, runs)
		s.batchesTotal.Inc()
		s.batchCells.Add(float64(len(cells)))

		// Journal the batch before its cells so replay never sees a cell
		// pointing at an unknown batch, and enqueue after the records
		// exist so a poller never sees a dangling ID. Admitted enqueues
		// cannot block or fail.
		s.journalBatch(b, &req, runs)
		for i, c := range cells {
			rr := RunRequest{App: c.app.Name, Policy: req.Policies[i%len(req.Policies)],
				Config: req.Config, TDPWatts: req.TDPWatts,
				FaultSeed: req.FaultSeed, FaultIntensity: req.FaultIntensity}
			s.journalSubmit(runs[i].ID, c.app.Name, &rr, b.ID)
			// Full-slice append: each cell must get its own RunWithTrace
			// without cells sharing (and clobbering) one backing array.
			cellOpts := append(opts[:len(opts):len(opts)],
				harmonia.RunWithTrace(runs[i].Tracer()), harmonia.RunWithTimeline(runs[i].Timeline()))
			j := s.newJob(jobCtx, runs[i], c.app, c.pol, cellOpts)
			// The matrix shares one admission; its first cell carries the
			// half-open probe slot if this submission was granted it.
			j.probe = probe && i == 0
			s.enqueue(j)
		}
	}()

	if !wait {
		writeJSON(w, http.StatusAccepted, b.JSON())
		return
	}
	select {
	case <-b.Done():
	case <-r.Context().Done():
		// Cell workers share the request context and will fail their
		// runs; the watcher then closes Done.
		<-b.Done()
	}
	out := b.JSON()
	status := http.StatusOK
	if out.Status == StatusFailed {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, out)
}

// handleGetBatch is GET /v1/batch/{id}.
func (s *Server) handleGetBatch(w http.ResponseWriter, r *http.Request) {
	b, ok := s.batches.get(r.PathValue("id"))
	if !ok {
		writeErr(w, errRunNotFound("batch", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, b.JSON())
}
