package experiments

import (
	"context"
	"fmt"
	"strings"

	"harmonia/internal/batch"
	"harmonia/internal/core"
	"harmonia/internal/metrics"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

// This file holds the ablation studies DESIGN.md calls out: the paper's
// explicit what-ifs (memory voltage scaling, Sections 3.3/7.2; the
// ED-vs-ED² objective remark, Section 3.4; TDP-constrained operation,
// Section 1) and the sensitivity of the controller to its own knobs
// (dithering budget, deadband).
//
// Every study fans its per-application measurements out on the Env's
// batch pool (Env.Workers; results in suite order), so the studies
// parallelize without changing any number.

// ---------------------------------------------------------------------
// Memory voltage scaling what-if.
// ---------------------------------------------------------------------

// MemVoltageResult compares Harmonia's savings with the measured fixed
// memory rail against the hypothetical voltage-scaled rail.
type MemVoltageResult struct {
	// FixedRail is the geomean power saving with the paper's platform
	// constraint (memory voltage fixed).
	FixedRail float64
	// ScaledRail is the geomean power saving with the what-if enabled.
	ScaledRail float64
	// MemSavingsFixed and MemSavingsScaled are the memory-rail-only
	// savings (geomean across apps).
	MemSavingsFixed  float64
	MemSavingsScaled float64
}

// MemVoltageScalingStudy quantifies the paper's repeated remark that
// memory savings "would actually be greater" with a scalable memory
// rail: it reruns the suite under Harmonia with both power models.
func MemVoltageScalingStudy(ctx context.Context, e *Env) (MemVoltageResult, error) {
	scaledParams := power.DefaultParams()
	scaledParams.MemVoltageScaling = true
	scaled := power.New(scaledParams)

	type appRatios struct {
		cardFixed, memFixed, cardScaled, memScaled float64
	}
	var res MemVoltageResult
	perApp, err := batch.Map(ctx, e.Workers, workloads.Suite(),
		func(cellCtx context.Context, _ int, app *workloads.Application) (appRatios, error) {
			var r appRatios
			// Four runs per cell (two power models × two policies):
			// cancellation should land between runs, not only at
			// batch.Map's cell boundary.
			for _, variant := range []struct {
				pm   *power.Model
				card *float64
				mem  *float64
			}{
				{e.Power, &r.cardFixed, &r.memFixed},
				{scaled, &r.cardScaled, &r.memScaled},
			} {
				base, err := (&session.Session{Sim: e.Runner(), Power: variant.pm, Policy: policy.NewBaseline()}).
					RunContext(cellCtx, workloads.ByName(app.Name))
				if err != nil {
					return r, err
				}
				hm, err := (&session.Session{Sim: e.Runner(), Power: variant.pm,
					Policy: core.New(core.Options{Predictor: e.Predictor()})}).
					RunContext(cellCtx, workloads.ByName(app.Name))
				if err != nil {
					return r, err
				}
				*variant.card = hm.AveragePower() / base.AveragePower()
				*variant.mem = (hm.Energy.Mem / hm.TotalTime()) / (base.Energy.Mem / base.TotalTime())
			}
			return r, nil
		})
	if err != nil {
		return res, err
	}
	var cardFixed, cardScaled, memFixed, memScaled []float64
	for _, r := range perApp {
		cardFixed = append(cardFixed, r.cardFixed)
		cardScaled = append(cardScaled, r.cardScaled)
		memFixed = append(memFixed, r.memFixed)
		memScaled = append(memScaled, r.memScaled)
	}
	res.FixedRail = metrics.GeoMeanImprovement(cardFixed)
	res.ScaledRail = metrics.GeoMeanImprovement(cardScaled)
	res.MemSavingsFixed = metrics.GeoMeanImprovement(memFixed)
	res.MemSavingsScaled = metrics.GeoMeanImprovement(memScaled)
	return res, nil
}

func (r MemVoltageResult) String() string {
	return fmt.Sprintf(
		"Memory-voltage-scaling what-if (Sections 3.3/7.2)\n"+
			"  card power saving:   fixed rail %5.1f%%  -> scaled rail %5.1f%%\n"+
			"  memory rail saving:  fixed rail %5.1f%%  -> scaled rail %5.1f%%",
		r.FixedRail*100, r.ScaledRail*100, r.MemSavingsFixed*100, r.MemSavingsScaled*100)
}

// ---------------------------------------------------------------------
// ED versus ED² objective.
// ---------------------------------------------------------------------

// ObjectiveResult compares oracles optimizing different objectives
// against the baseline (Section 3.4: "using ED here yields similar
// conclusions").
type ObjectiveResult struct {
	// Geomean improvements in the respective metric and geomean slowdowns.
	ED2Gain, ED2Slowdown       float64
	EDGain, EDSlowdown         float64
	EnergyGain, EnergySlowdown float64
}

// ObjectiveStudy reruns the oracle with ED, ED², and energy objectives.
func ObjectiveStudy(ctx context.Context, e *Env) (ObjectiveResult, error) {
	var res ObjectiveResult
	type slot struct {
		obj  oracle.Objective
		gain *float64
		slow *float64
		of   func(metrics.Sample) float64
	}
	slots := []slot{
		{oracle.MinED2, &res.ED2Gain, &res.ED2Slowdown, func(s metrics.Sample) float64 { return s.ED2() }},
		{oracle.MinED, &res.EDGain, &res.EDSlowdown, func(s metrics.Sample) float64 { return s.ED() }},
		{oracle.MinEnergy, &res.EnergyGain, &res.EnergySlowdown, func(s metrics.Sample) float64 { return s.Energy() }},
	}
	type appPoint struct{ ratio, slow float64 }
	outer, share := e.fanout(len(workloads.Suite()))
	for _, sl := range slots {
		perApp, err := batch.Map(ctx, outer, workloads.Suite(),
			func(_ context.Context, _ int, app *workloads.Application) (appPoint, error) {
				base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(app.Name))
				if err != nil {
					return appPoint{}, err
				}
				fresh := workloads.ByName(app.Name)
				or, err := e.session(oracle.NewFor(sl.obj, e.Runner(), e.Power, fresh).WithWorkers(share)).Run(fresh)
				if err != nil {
					return appPoint{}, err
				}
				return appPoint{
					ratio: sl.of(or.Sample()) / sl.of(base.Sample()),
					slow:  or.TotalTime() / base.TotalTime(),
				}, nil
			})
		if err != nil {
			return res, err
		}
		var ratios, slows []float64
		for _, p := range perApp {
			ratios = append(ratios, p.ratio)
			slows = append(slows, p.slow)
		}
		*sl.gain = metrics.GeoMeanImprovement(ratios)
		*sl.slow = metrics.GeoMean(slows) - 1
	}
	return res, nil
}

func (r ObjectiveResult) String() string {
	return fmt.Sprintf(
		"Objective study (Section 3.4)\n"+
			"  oracle-ED2:    %5.1f%% ED2 gain,    %+6.2f%% time\n"+
			"  oracle-ED:     %5.1f%% ED gain,     %+6.2f%% time\n"+
			"  oracle-energy: %5.1f%% energy gain, %+6.2f%% time",
		r.ED2Gain*100, r.ED2Slowdown*100,
		r.EDGain*100, r.EDSlowdown*100,
		r.EnergyGain*100, r.EnergySlowdown*100)
}

// ---------------------------------------------------------------------
// TDP-constrained operation.
// ---------------------------------------------------------------------

// TDPRow is the behaviour of the stock PowerTune manager at one cap.
type TDPRow struct {
	TDPWatts float64
	// Slowdown vs the uncapped baseline (geomean).
	Slowdown float64
	// PeakPower is the highest per-app average power observed.
	PeakPower float64
}

// TDPStudy sweeps board power caps through the stock PowerTune manager,
// demonstrating the fixed-envelope regime of the paper's introduction.
func TDPStudy(ctx context.Context, e *Env, caps []float64) ([]TDPRow, error) {
	type appPoint struct{ slow, power float64 }
	var rows []TDPRow
	for _, cap := range caps {
		perApp, err := batch.Map(ctx, e.Workers, workloads.Suite(),
			func(_ context.Context, _ int, app *workloads.Application) (appPoint, error) {
				base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(app.Name))
				if err != nil {
					return appPoint{}, err
				}
				fresh := workloads.ByName(app.Name)
				pt, err := e.session(policy.NewPowerTuneWithTDP(e.Power, cap)).Run(fresh)
				if err != nil {
					return appPoint{}, err
				}
				return appPoint{slow: pt.TotalTime() / base.TotalTime(), power: pt.AveragePower()}, nil
			})
		if err != nil {
			return nil, err
		}
		var slows []float64
		peak := 0.0
		for _, p := range perApp {
			slows = append(slows, p.slow)
			if p.power > peak {
				peak = p.power
			}
		}
		rows = append(rows, TDPRow{
			TDPWatts:  cap,
			Slowdown:  metrics.GeoMean(slows) - 1,
			PeakPower: peak,
		})
	}
	return rows, nil
}

// TDPString renders the TDP sweep.
func TDPString(rows []TDPRow) string {
	var b strings.Builder
	b.WriteString("TDP study — stock PowerTune under board power caps\n")
	b.WriteString("  cap (W)   slowdown   peak avg power (W)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %7.0f   %+7.2f%%   %8.1f\n", r.TDPWatts, r.Slowdown*100, r.PeakPower)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Controller-knob ablation.
// ---------------------------------------------------------------------

// KnobRow is the headline outcome for one controller configuration.
type KnobRow struct {
	Label    string
	ED2Gain  float64
	Slowdown float64
}

// ControllerKnobStudy sweeps Harmonia's dithering budget and deadband,
// validating the defaults DESIGN.md §6 documents.
func ControllerKnobStudy(ctx context.Context, e *Env) ([]KnobRow, error) {
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"default (dither 1, deadband 0.5%)", core.Options{}},
		{"dither 3", core.Options{MaxDither: 3}},
		{"deadband 5%", core.Options{Deadband: 0.05}},
		{"no smoothing", core.Options{SmoothAlpha: 1}},
	}
	type appPoint struct{ ratio, slow float64 }
	var rows []KnobRow
	for _, v := range variants {
		perApp, err := batch.Map(ctx, e.Workers, workloads.Suite(),
			func(_ context.Context, _ int, app *workloads.Application) (appPoint, error) {
				base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(app.Name))
				if err != nil {
					return appPoint{}, err
				}
				opts := v.opts
				opts.Predictor = e.Predictor()
				fresh := workloads.ByName(app.Name)
				hm, err := e.session(core.New(opts)).Run(fresh)
				if err != nil {
					return appPoint{}, err
				}
				return appPoint{ratio: hm.ED2() / base.ED2(), slow: hm.TotalTime() / base.TotalTime()}, nil
			})
		if err != nil {
			return nil, err
		}
		var ratios, slows []float64
		for _, p := range perApp {
			ratios = append(ratios, p.ratio)
			slows = append(slows, p.slow)
		}
		rows = append(rows, KnobRow{
			Label:    v.label,
			ED2Gain:  metrics.GeoMeanImprovement(ratios),
			Slowdown: metrics.GeoMean(slows) - 1,
		})
	}
	return rows, nil
}

// KnobString renders the controller-knob ablation.
func KnobString(rows []KnobRow) string {
	var b strings.Builder
	b.WriteString("Controller-knob ablation\n")
	b.WriteString("  variant                               ED2 gain   slowdown\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-36s %7.1f%%   %+7.2f%%\n", r.Label, r.ED2Gain*100, r.Slowdown*100)
	}
	return b.String()
}
