package experiments

import (
	"fmt"
	"strings"

	"harmonia/internal/core"
	"harmonia/internal/gpusim"
	"harmonia/internal/metrics"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

// This file holds the ablation studies DESIGN.md calls out: the paper's
// explicit what-ifs (memory voltage scaling, Sections 3.3/7.2; the
// ED-vs-ED² objective remark, Section 3.4; TDP-constrained operation,
// Section 1) and the sensitivity of the controller to its own knobs
// (dithering budget, deadband).

// ---------------------------------------------------------------------
// Memory voltage scaling what-if.
// ---------------------------------------------------------------------

// MemVoltageResult compares Harmonia's savings with the measured fixed
// memory rail against the hypothetical voltage-scaled rail.
type MemVoltageResult struct {
	// FixedRail is the geomean power saving with the paper's platform
	// constraint (memory voltage fixed).
	FixedRail float64
	// ScaledRail is the geomean power saving with the what-if enabled.
	ScaledRail float64
	// MemSavingsFixed and MemSavingsScaled are the memory-rail-only
	// savings (geomean across apps).
	MemSavingsFixed  float64
	MemSavingsScaled float64
}

// MemVoltageScalingStudy quantifies the paper's repeated remark that
// memory savings "would actually be greater" with a scalable memory
// rail: it reruns the suite under Harmonia with both power models.
func MemVoltageScalingStudy(e *Env) (MemVoltageResult, error) {
	scaledParams := power.DefaultParams()
	scaledParams.MemVoltageScaling = true
	scaled := power.New(scaledParams)

	var res MemVoltageResult
	var cardFixed, cardScaled, memFixed, memScaled []float64
	for _, app := range workloads.Suite() {
		for _, variant := range []struct {
			pm   *power.Model
			card *[]float64
			mem  *[]float64
		}{
			{e.Power, &cardFixed, &memFixed},
			{scaled, &cardScaled, &memScaled},
		} {
			base, err := (&session.Session{Sim: e.Sim, Power: variant.pm, Policy: policy.NewBaseline()}).
				Run(workloads.ByName(app.Name))
			if err != nil {
				return res, err
			}
			hm, err := (&session.Session{Sim: e.Sim, Power: variant.pm,
				Policy: core.New(core.Options{Predictor: e.Predictor()})}).
				Run(workloads.ByName(app.Name))
			if err != nil {
				return res, err
			}
			*variant.card = append(*variant.card, hm.AveragePower()/base.AveragePower())
			*variant.mem = append(*variant.mem,
				(hm.Energy.Mem/hm.TotalTime())/(base.Energy.Mem/base.TotalTime()))
		}
	}
	res.FixedRail = metrics.GeoMeanImprovement(cardFixed)
	res.ScaledRail = metrics.GeoMeanImprovement(cardScaled)
	res.MemSavingsFixed = metrics.GeoMeanImprovement(memFixed)
	res.MemSavingsScaled = metrics.GeoMeanImprovement(memScaled)
	return res, nil
}

func (r MemVoltageResult) String() string {
	return fmt.Sprintf(
		"Memory-voltage-scaling what-if (Sections 3.3/7.2)\n"+
			"  card power saving:   fixed rail %5.1f%%  -> scaled rail %5.1f%%\n"+
			"  memory rail saving:  fixed rail %5.1f%%  -> scaled rail %5.1f%%",
		r.FixedRail*100, r.ScaledRail*100, r.MemSavingsFixed*100, r.MemSavingsScaled*100)
}

// ---------------------------------------------------------------------
// ED versus ED² objective.
// ---------------------------------------------------------------------

// ObjectiveResult compares oracles optimizing different objectives
// against the baseline (Section 3.4: "using ED here yields similar
// conclusions").
type ObjectiveResult struct {
	// Geomean improvements in the respective metric and geomean slowdowns.
	ED2Gain, ED2Slowdown       float64
	EDGain, EDSlowdown         float64
	EnergyGain, EnergySlowdown float64
}

// ObjectiveStudy reruns the oracle with ED, ED², and energy objectives.
func ObjectiveStudy(e *Env) (ObjectiveResult, error) {
	var res ObjectiveResult
	type slot struct {
		obj  oracle.Objective
		gain *float64
		slow *float64
		of   func(metrics.Sample) float64
	}
	slots := []slot{
		{oracle.MinED2, &res.ED2Gain, &res.ED2Slowdown, func(s metrics.Sample) float64 { return s.ED2() }},
		{oracle.MinED, &res.EDGain, &res.EDSlowdown, func(s metrics.Sample) float64 { return s.ED() }},
		{oracle.MinEnergy, &res.EnergyGain, &res.EnergySlowdown, func(s metrics.Sample) float64 { return s.Energy() }},
	}
	for _, sl := range slots {
		var ratios, slows []float64
		for _, app := range workloads.Suite() {
			base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(app.Name))
			if err != nil {
				return res, err
			}
			fresh := workloads.ByName(app.Name)
			or, err := e.session(oracle.NewFor(sl.obj, e.Sim, e.Power, fresh)).Run(fresh)
			if err != nil {
				return res, err
			}
			ratios = append(ratios, sl.of(or.Sample())/sl.of(base.Sample()))
			slows = append(slows, or.TotalTime()/base.TotalTime())
		}
		*sl.gain = metrics.GeoMeanImprovement(ratios)
		*sl.slow = metrics.GeoMean(slows) - 1
	}
	return res, nil
}

func (r ObjectiveResult) String() string {
	return fmt.Sprintf(
		"Objective study (Section 3.4)\n"+
			"  oracle-ED2:    %5.1f%% ED2 gain,    %+6.2f%% time\n"+
			"  oracle-ED:     %5.1f%% ED gain,     %+6.2f%% time\n"+
			"  oracle-energy: %5.1f%% energy gain, %+6.2f%% time",
		r.ED2Gain*100, r.ED2Slowdown*100,
		r.EDGain*100, r.EDSlowdown*100,
		r.EnergyGain*100, r.EnergySlowdown*100)
}

// ---------------------------------------------------------------------
// TDP-constrained operation.
// ---------------------------------------------------------------------

// TDPRow is the behaviour of the stock PowerTune manager at one cap.
type TDPRow struct {
	TDPWatts float64
	// Slowdown vs the uncapped baseline (geomean).
	Slowdown float64
	// PeakPower is the highest per-app average power observed.
	PeakPower float64
}

// TDPStudy sweeps board power caps through the stock PowerTune manager,
// demonstrating the fixed-envelope regime of the paper's introduction.
func TDPStudy(e *Env, caps []float64) ([]TDPRow, error) {
	var rows []TDPRow
	for _, cap := range caps {
		var slows []float64
		peak := 0.0
		for _, app := range workloads.Suite() {
			base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(app.Name))
			if err != nil {
				return nil, err
			}
			fresh := workloads.ByName(app.Name)
			pt, err := e.session(policy.NewPowerTuneWithTDP(e.Power, cap)).Run(fresh)
			if err != nil {
				return nil, err
			}
			slows = append(slows, pt.TotalTime()/base.TotalTime())
			if p := pt.AveragePower(); p > peak {
				peak = p
			}
		}
		rows = append(rows, TDPRow{
			TDPWatts:  cap,
			Slowdown:  metrics.GeoMean(slows) - 1,
			PeakPower: peak,
		})
	}
	return rows, nil
}

// TDPString renders the TDP sweep.
func TDPString(rows []TDPRow) string {
	var b strings.Builder
	b.WriteString("TDP study — stock PowerTune under board power caps\n")
	b.WriteString("  cap (W)   slowdown   peak avg power (W)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %7.0f   %+7.2f%%   %8.1f\n", r.TDPWatts, r.Slowdown*100, r.PeakPower)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Controller-knob ablation.
// ---------------------------------------------------------------------

// KnobRow is the headline outcome for one controller configuration.
type KnobRow struct {
	Label    string
	ED2Gain  float64
	Slowdown float64
}

// ControllerKnobStudy sweeps Harmonia's dithering budget and deadband,
// validating the defaults DESIGN.md §6 documents.
func ControllerKnobStudy(e *Env) ([]KnobRow, error) {
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"default (dither 1, deadband 0.5%)", core.Options{}},
		{"dither 3", core.Options{MaxDither: 3}},
		{"deadband 5%", core.Options{Deadband: 0.05}},
		{"no smoothing", core.Options{SmoothAlpha: 1}},
	}
	var rows []KnobRow
	for _, v := range variants {
		var ratios, slows []float64
		for _, app := range workloads.Suite() {
			base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(app.Name))
			if err != nil {
				return nil, err
			}
			opts := v.opts
			opts.Predictor = e.Predictor()
			fresh := workloads.ByName(app.Name)
			hm, err := e.session(core.New(opts)).Run(fresh)
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, hm.ED2()/base.ED2())
			slows = append(slows, hm.TotalTime()/base.TotalTime())
		}
		rows = append(rows, KnobRow{
			Label:    v.label,
			ED2Gain:  metrics.GeoMeanImprovement(ratios),
			Slowdown: metrics.GeoMean(slows) - 1,
		})
	}
	return rows, nil
}

// KnobString renders the controller-knob ablation.
func KnobString(rows []KnobRow) string {
	var b strings.Builder
	b.WriteString("Controller-knob ablation\n")
	b.WriteString("  variant                               ED2 gain   slowdown\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-36s %7.1f%%   %+7.2f%%\n", r.Label, r.ED2Gain*100, r.Slowdown*100)
	}
	return b.String()
}

var _ = gpusim.Default // documented dependency of the ablations' sessions
