package experiments

import (
	"fmt"
	"strings"

	"harmonia/internal/core"
	"harmonia/internal/faults"
	"harmonia/internal/metrics"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

// RobustnessPoint is one fault-intensity level of the robustness study:
// geomean degradation of the naive (seed-algorithm) and hardened
// controllers across the 14-application suite, relative to each
// controller's own clean-platform result.
type RobustnessPoint struct {
	// Intensity scales the canonical fault profile; 0 is a clean
	// platform, 1 is the full profile (see faults.Profile).
	Intensity float64
	// NaiveED2 and HardenedED2 are geomean ED2 ratios versus the clean
	// run (1.0 = no degradation; 1.25 = ED2 inflated 25% by faults).
	NaiveED2    float64
	HardenedED2 float64
	// NaiveSlowdown and HardenedSlowdown are geomean execution-time
	// ratios versus the clean run, minus one.
	NaiveSlowdown    float64
	HardenedSlowdown float64
}

// RobustnessResult is the full sweep plus the parameters that make it
// reproducible.
type RobustnessResult struct {
	Seed   int64
	Points []RobustnessPoint
}

// DefaultIntensities is the fault-intensity grid the study sweeps.
var DefaultIntensities = []float64{0, 0.25, 0.5, 1}

// Robustness sweeps fault intensity over the whole application suite,
// comparing the hardened Harmonia controller against the naive one
// (hardening disabled — the controller exactly as the paper describes
// it). Both controllers face the same fault profile derived from the
// same per-application seed, and each is measured against its own
// clean-platform run, so the ratios isolate fault sensitivity from
// baseline algorithm differences. The study is deterministic: the same
// seed reproduces the same fault sequences and the same numbers.
func Robustness(e *Env, seed int64, intensities []float64) (RobustnessResult, error) {
	if len(intensities) == 0 {
		intensities = DefaultIntensities
	}
	out := RobustnessResult{Seed: seed}
	suite := workloads.Suite()

	// Clean-platform ED2 and time per application. By the clean-path
	// equivalence property the hardened and naive controllers produce
	// identical clean runs, so one run serves as both denominators.
	cleanED2 := make([]float64, len(suite))
	cleanTime := make([]float64, len(suite))
	for i, app := range suite {
		rep, err := e.session(e.harmonia()).Run(app)
		if err != nil {
			return out, err
		}
		cleanED2[i] = rep.ED2()
		cleanTime[i] = rep.TotalTime()
	}

	for _, intensity := range intensities {
		pt := RobustnessPoint{Intensity: intensity}
		var ed2N, ed2H, tN, tH []float64
		for i, app := range suite {
			// Per-application seed: every app sees its own deterministic
			// fault stream, stable across intensities and controllers.
			appSeed := seed + int64(i+1)*7919
			cfg := faults.Profile(appSeed, intensity)

			runOne := func(hardened bool) (*session.Report, error) {
				var p core.Options
				p = core.Options{Predictor: e.Predictor()}
				if !hardened {
					p.Robust = core.RobustOptions{Disabled: true}
				}
				sess := e.session(core.New(p))
				if cfg.Enabled() {
					sess.Faults = faults.New(cfg)
				}
				return sess.Run(app)
			}
			repN, err := runOne(false)
			if err != nil {
				return out, err
			}
			repH, err := runOne(true)
			if err != nil {
				return out, err
			}
			ed2N = append(ed2N, repN.ED2()/cleanED2[i])
			ed2H = append(ed2H, repH.ED2()/cleanED2[i])
			tN = append(tN, repN.TotalTime()/cleanTime[i])
			tH = append(tH, repH.TotalTime()/cleanTime[i])
		}
		pt.NaiveED2 = metrics.GeoMean(ed2N)
		pt.HardenedED2 = metrics.GeoMean(ed2H)
		pt.NaiveSlowdown = metrics.GeoMean(tN) - 1
		pt.HardenedSlowdown = metrics.GeoMean(tH) - 1
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

func (r RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness study (seed %d): geomean degradation vs clean run\n", r.Seed)
	b.WriteString("intensity   naive ED2  hardened ED2 | naive slowdown  hardened slowdown\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%9.2f   %8.3fx %12.3fx | %13.2f%% %17.2f%%\n",
			p.Intensity, p.NaiveED2, p.HardenedED2,
			p.NaiveSlowdown*100, p.HardenedSlowdown*100)
	}
	return b.String()
}
