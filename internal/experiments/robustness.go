package experiments

import (
	"context"
	"fmt"
	"strings"

	"harmonia/internal/batch"
	"harmonia/internal/core"
	"harmonia/internal/faults"
	"harmonia/internal/metrics"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

// RobustnessPoint is one fault-intensity level of the robustness study:
// geomean degradation of the naive (seed-algorithm) and hardened
// controllers across the 14-application suite, relative to each
// controller's own clean-platform result.
type RobustnessPoint struct {
	// Intensity scales the canonical fault profile; 0 is a clean
	// platform, 1 is the full profile (see faults.Profile).
	Intensity float64
	// NaiveED2 and HardenedED2 are geomean ED2 ratios versus the clean
	// run (1.0 = no degradation; 1.25 = ED2 inflated 25% by faults).
	NaiveED2    float64
	HardenedED2 float64
	// NaiveSlowdown and HardenedSlowdown are geomean execution-time
	// ratios versus the clean run, minus one.
	NaiveSlowdown    float64
	HardenedSlowdown float64
}

// RobustnessResult is the full sweep plus the parameters that make it
// reproducible.
type RobustnessResult struct {
	Seed   int64
	Points []RobustnessPoint
}

// DefaultIntensities is the fault-intensity grid the study sweeps.
var DefaultIntensities = []float64{0, 0.25, 0.5, 1}

// Robustness sweeps fault intensity over the whole application suite,
// comparing the hardened Harmonia controller against the naive one
// (hardening disabled — the controller exactly as the paper describes
// it). Both controllers face the same fault profile derived from the
// same per-application seed, and each is measured against its own
// clean-platform run, so the ratios isolate fault sensitivity from
// baseline algorithm differences. The study is deterministic: the same
// seed reproduces the same fault sequences and the same numbers —
// applications fan out on the Env's batch pool with results assembled
// in suite order, and each job owns its injector and controller, so
// the parallel sweep is bit-identical to the serial one.
func Robustness(ctx context.Context, e *Env, seed int64, intensities []float64) (RobustnessResult, error) {
	if len(intensities) == 0 {
		intensities = DefaultIntensities
	}
	out := RobustnessResult{Seed: seed}
	suite := workloads.Suite()

	// Clean-platform ED2 and time per application. By the clean-path
	// equivalence property the hardened and naive controllers produce
	// identical clean runs, so one run serves as both denominators.
	type cleanPoint struct{ ed2, time float64 }
	clean, err := batch.Map(ctx, e.Workers, suite,
		func(_ context.Context, _ int, app *workloads.Application) (cleanPoint, error) {
			rep, err := e.session(e.harmonia()).Run(app)
			if err != nil {
				return cleanPoint{}, err
			}
			return cleanPoint{ed2: rep.ED2(), time: rep.TotalTime()}, nil
		})
	if err != nil {
		return out, err
	}

	type faultPoint struct{ ed2N, ed2H, tN, tH float64 }
	for _, intensity := range intensities {
		pt := RobustnessPoint{Intensity: intensity}
		perApp, err := batch.Map(ctx, e.Workers, suite,
			func(_ context.Context, i int, app *workloads.Application) (faultPoint, error) {
				// Per-application seed: every app sees its own deterministic
				// fault stream, stable across intensities and controllers.
				appSeed := seed + int64(i+1)*7919
				cfg := faults.Profile(appSeed, intensity)

				runOne := func(hardened bool) (*session.Report, error) {
					p := core.Options{Predictor: e.Predictor()}
					if !hardened {
						p.Robust = core.RobustOptions{Disabled: true}
					}
					sess := e.session(core.New(p))
					if cfg.Enabled() {
						sess.Faults = faults.New(cfg)
						// Fault-injected runs bypass the simulation memo:
						// the injected path is exactly the raw platform.
						sess.Sim = e.Sim
					}
					return sess.Run(app)
				}
				repN, err := runOne(false)
				if err != nil {
					return faultPoint{}, err
				}
				repH, err := runOne(true)
				if err != nil {
					return faultPoint{}, err
				}
				return faultPoint{
					ed2N: repN.ED2() / clean[i].ed2,
					ed2H: repH.ED2() / clean[i].ed2,
					tN:   repN.TotalTime() / clean[i].time,
					tH:   repH.TotalTime() / clean[i].time,
				}, nil
			})
		if err != nil {
			return out, err
		}
		var ed2N, ed2H, tN, tH []float64
		for _, p := range perApp {
			ed2N = append(ed2N, p.ed2N)
			ed2H = append(ed2H, p.ed2H)
			tN = append(tN, p.tN)
			tH = append(tH, p.tH)
		}
		pt.NaiveED2 = metrics.GeoMean(ed2N)
		pt.HardenedED2 = metrics.GeoMean(ed2H)
		pt.NaiveSlowdown = metrics.GeoMean(tN) - 1
		pt.HardenedSlowdown = metrics.GeoMean(tH) - 1
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

func (r RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness study (seed %d): geomean degradation vs clean run\n", r.Seed)
	b.WriteString("intensity   naive ED2  hardened ED2 | naive slowdown  hardened slowdown\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%9.2f   %8.3fx %12.3fx | %13.2f%% %17.2f%%\n",
			p.Intensity, p.NaiveED2, p.HardenedED2,
			p.NaiveSlowdown*100, p.HardenedSlowdown*100)
	}
	return b.String()
}
