package experiments

import (
	"context"

	"math"
	"sync"
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
)

// One Env for the whole test binary: predictor training and the
// five-policy evaluation sweep are the expensive parts.
var (
	envOnce sync.Once
	testEnv *Env
)

func env(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { testEnv = NewEnv() })
	return testEnv
}

func results(t *testing.T) []AppResult {
	t.Helper()
	rs, err := env(t).Results(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func appResult(t *testing.T, rs []AppResult, name string) AppResult {
	t.Helper()
	for _, r := range rs {
		if r.App == name {
			return r
		}
	}
	t.Fatalf("no result for %q", name)
	return AppResult{}
}

// -------------------- Figure 1 --------------------

func TestFig1MemoryIsMajorConsumer(t *testing.T) {
	r := Fig1PowerBreakdown(env(t))
	if r.MemShare < 0.20 || r.MemShare > 0.45 {
		t.Errorf("memory share = %.0f%%, want 20-45%% (Figure 1)", r.MemShare*100)
	}
	if r.GPUShare <= r.MemShare {
		t.Errorf("GPU share %.0f%% should exceed memory share %.0f%%", r.GPUShare*100, r.MemShare*100)
	}
	if sum := r.GPUShare + r.MemShare + r.OtherShare; math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

// -------------------- Table 1 --------------------

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1DVFS()
	want := map[string]struct {
		f hw.MHz
		v float64
	}{
		"DPM0": {300, 0.85}, "DPM1": {500, 0.95}, "DPM2": {925, 1.17}, "Boost": {1000, 1.19},
	}
	if len(rows) != len(want) {
		t.Fatalf("table has %d rows", len(rows))
	}
	for _, s := range rows {
		w, ok := want[s.Name]
		if !ok || s.Freq != w.f || s.Voltage != w.v {
			t.Errorf("row %+v does not match Table 1", s)
		}
	}
	if Table1String() == "" {
		t.Error("empty rendering")
	}
}

// -------------------- Figure 3 --------------------

func TestFig3MaxFlopsScalesLinearly(t *testing.T) {
	r := Fig3BalanceCurves(env(t), "MaxFlops.Main")
	// (a) On every curve, performance rises essentially linearly with
	// ops/byte (compute bound): top point ~27x the bottom one in the
	// paper; require strong scaling and near-identical peaks across
	// memory configs.
	var peaks []float64
	for _, c := range r.Curves {
		max := 0.0
		for _, p := range c.Points {
			max = math.Max(max, p.Performance)
		}
		peaks = append(peaks, max)
	}
	for _, p := range peaks {
		if p < 15 {
			t.Errorf("MaxFlops peak normalized perf = %v, want >15x", p)
		}
		if math.Abs(p-peaks[0])/peaks[0] > 0.02 {
			t.Errorf("MaxFlops peak differs across memory configs: %v vs %v", p, peaks[0])
		}
	}
}

func TestFig3DeviceMemorySaturates(t *testing.T) {
	r := Fig3BalanceCurves(env(t), "DeviceMemory.Stream")
	// (b) Performance saturates around a knee near 4x the minimum
	// ops/byte at maximum memory bandwidth.
	if r.Knee < 2 || r.Knee > 7 {
		t.Errorf("DeviceMemory knee = %.1fx, want ~4x (Figure 3b)", r.Knee)
	}
	// Higher memory bandwidth must raise the saturation plateau.
	first, last := r.Curves[0], r.Curves[len(r.Curves)-1]
	peak := func(c BalanceCurve) float64 {
		max := 0.0
		for _, p := range c.Points {
			max = math.Max(max, p.Performance)
		}
		return max
	}
	if peak(last) <= peak(first)*1.5 {
		t.Errorf("max-memory plateau %.1f not clearly above min-memory %.1f", peak(last), peak(first))
	}
}

func TestFig3LUDKnee(t *testing.T) {
	r := Fig3BalanceCurves(env(t), "LUD.Internal")
	// (c) LUD's best balance point is around 15x the minimum ops/byte.
	if r.Knee < 8 || r.Knee > 22 {
		t.Errorf("LUD knee = %.1fx, want ~15x (Figure 3c)", r.Knee)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig3UnknownKernel(t *testing.T) {
	r := Fig3BalanceCurves(env(t), "no.such")
	if len(r.Curves) != 0 {
		t.Error("unknown kernel should produce empty result")
	}
}

// -------------------- Figures 4-5 --------------------

func TestFig4ComputeConfigMovesPowerStrongly(t *testing.T) {
	r := Fig4ComputePowerRange(env(t))
	if len(r.Points) != 64 {
		t.Fatalf("got %d points, want 64 compute configs", len(r.Points))
	}
	// Paper: about 70% variation; on this platform's calibration the
	// swing is larger (~150%) — same direction, stronger magnitude
	// (documented in EXPERIMENTS.md). Require a big swing.
	if r.Variation < 0.4 || r.Variation > 2.0 {
		t.Errorf("compute-range variation = %.0f%%, want large (paper: ~70%%)", r.Variation*100)
	}
}

func TestFig5MemoryConfigMovesPowerModestly(t *testing.T) {
	r := Fig5MemoryPowerRange(env(t))
	if len(r.Points) != 7 {
		t.Fatalf("got %d points, want 7 memory configs", len(r.Points))
	}
	// Paper: about 10% variation.
	if r.Variation < 0.05 || r.Variation > 0.2 {
		t.Errorf("memory-range variation = %.1f%%, want ~10%%", r.Variation*100)
	}
	// And it must be far smaller than the compute-range effect.
	if f4 := Fig4ComputePowerRange(env(t)); r.Variation > f4.Variation/2 {
		t.Errorf("memory effect (%.0f%%) not clearly below compute effect (%.0f%%)",
			r.Variation*100, f4.Variation*100)
	}
}

// -------------------- Figure 6 --------------------

func TestFig6EnergyOptimalSacrificesPerformance(t *testing.T) {
	r := Fig6MetricComparison(env(t))
	for _, app := range []string{"LUD", "DeviceMemory"} {
		eRow, ok1 := r.Row(app, "energy")
		dRow, ok2 := r.Row(app, "ed2")
		pRow, ok3 := r.Row(app, "performance")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s: missing rows", app)
		}
		// ED2-optimal keeps performance within a few percent (paper: 1%
		// penalty)...
		if dRow.Performance < 0.95 {
			t.Errorf("%s: ED2-optimal performance = %.2f, want >= 0.95", app, dRow.Performance)
		}
		// ...and never loses more performance than the energy-optimal
		// configuration does.
		if dRow.Performance < eRow.Performance-1e-9 {
			t.Errorf("%s: ED2-optimal slower than energy-optimal", app)
		}
		// The performance row is the normalization anchor.
		if math.Abs(pRow.Performance-1) > 1e-9 || math.Abs(pRow.ED2-1) > 1e-9 {
			t.Errorf("%s: performance row not normalized: %+v", app, pRow)
		}
		// Energy-optimal must use no more energy than ED2-optimal.
		if eRow.Energy > dRow.Energy+1e-9 {
			t.Errorf("%s: energy-optimal energy %.2f above ED2-optimal %.2f",
				app, eRow.Energy, dRow.Energy)
		}
	}
	// The headline contrast (paper: 69%/66% performance loss at the
	// energy optimum): on this platform LUD shows the effect — a
	// significant (>=25%) performance sacrifice for its energy optimum.
	// The divergence in magnitude is recorded in EXPERIMENTS.md.
	eLUD, _ := r.Row("LUD", "energy")
	if eLUD.Performance > 0.75 {
		t.Errorf("LUD energy-optimal keeps %.0f%% of performance; want a significant sacrifice",
			eLUD.Performance*100)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
	if _, ok := r.Row("no.such", "energy"); ok {
		t.Error("Row should miss for unknown app")
	}
}

// -------------------- Figures 7-9 --------------------

func TestFig7OccupancyGatesBandwidthSensitivity(t *testing.T) {
	rows := Fig7OccupancyEffect(env(t))
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	scan, adv := rows[0], rows[1]
	if math.Abs(scan.Occupancy-0.3) > 1e-9 {
		t.Errorf("BottomScan occupancy = %v, want 0.30", scan.Occupancy)
	}
	if adv.Occupancy != 1.0 {
		t.Errorf("AdvanceVelocity occupancy = %v, want 1.0", adv.Occupancy)
	}
	if scan.BandwidthSensitivity > 0.1 {
		t.Errorf("BottomScan bandwidth sensitivity = %v, want ~0", scan.BandwidthSensitivity)
	}
	if adv.BandwidthSensitivity < 0.6 {
		t.Errorf("AdvanceVelocity bandwidth sensitivity = %v, want high", adv.BandwidthSensitivity)
	}
}

func TestFig8DivergenceAloneDoesNotImplySensitivity(t *testing.T) {
	rows := Fig8DivergenceEffect(env(t))
	prep, scan := rows[0], rows[1]
	if prep.BranchDivergence != 75 || scan.BranchDivergence != 6 {
		t.Errorf("divergences = %v / %v, want 75 / 6", prep.BranchDivergence, scan.BranchDivergence)
	}
	// The highly divergent tiny kernel is LESS frequency sensitive than
	// the barely divergent huge kernel.
	if prep.ComputeFreqSensitive >= scan.ComputeFreqSensitive {
		t.Errorf("SRAD.Prepare sensitivity %v >= BottomScan %v; Figure 8 inverts this",
			prep.ComputeFreqSensitive, scan.ComputeFreqSensitive)
	}
	if scan.VALUInsts < 1e6 {
		t.Errorf("BottomScan dynamic instructions = %v, want millions", scan.VALUInsts)
	}
}

func TestFig9ClockDomainCrossing(t *testing.T) {
	r := Fig9ClockDomains(env(t))
	if r.ICActivity < 0.5 {
		t.Errorf("icActivity = %v, want high (saturated bus)", r.ICActivity)
	}
	if r.ComputeFreqSensitivity < 0.3 {
		t.Errorf("compute-freq sensitivity = %v, want material despite memory-boundedness", r.ComputeFreqSensitivity)
	}
	if r.LowFreqLimiter != gpusim.LimitCrossing {
		t.Errorf("limiter at 300MHz = %v, want clock-crossing", r.LowFreqLimiter)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

// -------------------- Tables 2-3 --------------------

func TestTable2HasAllCounters(t *testing.T) {
	if got := len(Table2Counters()); got != 8 {
		t.Errorf("Table 2 rows = %d, want 8", got)
	}
}

func TestTable3ModelQuality(t *testing.T) {
	r := Table3Model(env(t))
	if r.Bandwidth.Corr < 0.85 {
		t.Errorf("bandwidth model correlation = %.3f (paper: 0.96)", r.Bandwidth.Corr)
	}
	if r.Compute.Corr < 0.7 {
		t.Errorf("compute model correlation = %.3f (paper: 0.91)", r.Compute.Corr)
	}
	if r.Accuracy.BandwidthMAE > 0.10 || r.Accuracy.ComputeMAE > 0.15 {
		t.Errorf("MAE = %.3f/%.3f (paper: 0.0303/0.0571)",
			r.Accuracy.BandwidthMAE, r.Accuracy.ComputeMAE)
	}
	// Training scale comparable to the paper's 11250 vectors.
	if r.TrainingPoints < 5000 {
		t.Errorf("training rows = %d, want thousands", r.TrainingPoints)
	}
	if len(r.Paper.Bandwidth.Coeffs) != 7 {
		t.Error("paper reference model missing")
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

// -------------------- Figures 10-13 --------------------

func TestFig10HeadlineED2Results(t *testing.T) {
	rows, sum, err := Fig10ED2(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("got %d apps, want 14", len(rows))
	}
	// Paper: average 12% ED2 improvement; require 8-18%.
	if sum.ED2Harmonia < 0.08 || sum.ED2Harmonia > 0.18 {
		t.Errorf("Harmonia geomean ED2 gain = %.1f%%, want ~12%%", sum.ED2Harmonia*100)
	}
	// Paper: up to 36%, best on BPT.
	if sum.BestED2App != "BPT" {
		t.Errorf("best app = %s, want BPT", sum.BestED2App)
	}
	if sum.BestED2 < 0.25 {
		t.Errorf("best ED2 gain = %.1f%%, want >25%% (paper: 36%%)", sum.BestED2*100)
	}
	// Paper: Harmonia within ~3% of the oracle; allow 6.
	if sum.OracleGapHarmonia > 0.06 {
		t.Errorf("oracle gap = %.1f%%, want small (paper: 3%%)", sum.OracleGapHarmonia*100)
	}
	// Oracle must dominate Harmonia per app (it is the upper bound).
	for _, r := range rows {
		if r.Oracle < r.Harmonia-0.02 {
			t.Errorf("%s: oracle %.1f%% below Harmonia %.1f%%", r.App, r.Oracle*100, r.Harmonia*100)
		}
	}
	// CG contributes roughly half of the gain (paper: ~6% of 12%).
	if sum.ED2CG > sum.ED2Harmonia {
		t.Errorf("CG-only gain %.1f%% exceeds full Harmonia %.1f%%", sum.ED2CG*100, sum.ED2Harmonia*100)
	}
}

func TestFig11EnergyGains(t *testing.T) {
	rows, sum, err := Fig11Energy(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper: ~12% average energy saving (CG and FG+CG nearly identical).
	if sum.EnergySaving < 0.05 || sum.EnergySaving > 0.20 {
		t.Errorf("energy saving = %.1f%%, want ~10%%", sum.EnergySaving*100)
	}
}

func TestFig12PowerSavings(t *testing.T) {
	rows, sum, err := Fig12Power(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 12% average power saving, max 19%.
	if sum.PowerSaving < 0.05 || sum.PowerSaving > 0.20 {
		t.Errorf("power saving = %.1f%%, want ~10%%", sum.PowerSaving*100)
	}
	maxSaving := 0.0
	for _, r := range rows {
		maxSaving = math.Max(maxSaving, r.Harmonia)
	}
	if maxSaving < 0.12 {
		t.Errorf("max power saving = %.1f%%, want >12%% (paper: 19%%)", maxSaving*100)
	}
}

func TestFig13PerformancePreserved(t *testing.T) {
	rows, sum, err := Fig13Performance(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: average slowdown 0.36% — essentially performance neutral.
	if math.Abs(sum.SlowdownHarmonia) > 0.02 {
		t.Errorf("Harmonia mean slowdown = %.2f%%, want within 2%% of zero", sum.SlowdownHarmonia*100)
	}
	// CG-only shows a large performance outlier (paper: 27% on
	// Streamcluster) that FG+CG repairs.
	if sum.WorstCGApp != "Streamcluster" {
		t.Errorf("worst CG app = %s, want Streamcluster", sum.WorstCGApp)
	}
	if sum.WorstCGSlowdown < 0.05 {
		t.Errorf("worst CG slowdown = %.1f%%, want a visible outlier", sum.WorstCGSlowdown*100)
	}
	for _, r := range rows {
		if r.App == "Streamcluster" && r.Harmonia > 0.02 {
			t.Errorf("Streamcluster under Harmonia slowed %.1f%%; FG should repair CG", r.Harmonia*100)
		}
	}
	// Performance gainers: BPT, CFD, XSBench run faster under Harmonia
	// (Section 7.1).
	for _, app := range []string{"BPT", "CFD", "XSBench"} {
		for _, r := range rows {
			if r.App == app && r.Harmonia > 0 {
				t.Errorf("%s slowdown = %.1f%%, want a performance gain", app, r.Harmonia*100)
			}
		}
	}
}

// -------------------- Section 7 studies --------------------

func TestComputeOnlyDVFSIsMarginal(t *testing.T) {
	r, err := ComputeOnlyStudy(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: only ~3% ED2 gain with ~1% performance loss — the point is
	// that compute-frequency-only scaling achieves far less than
	// coordinated management.
	_, sum, err := Fig10ED2(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.ED2Gain > sum.ED2Harmonia/2 {
		t.Errorf("compute-only gain %.1f%% not clearly below Harmonia %.1f%%",
			r.ED2Gain*100, sum.ED2Harmonia*100)
	}
	if math.Abs(r.Slowdown) > 0.03 {
		t.Errorf("compute-only slowdown = %.1f%%, want small", r.Slowdown*100)
	}
}

func TestPredictorAccuracyNearPaper(t *testing.T) {
	acc := PredictorAccuracy(env(t))
	if acc.BandwidthMAE > 0.10 {
		t.Errorf("bandwidth MAE = %.3f (paper: 0.0303)", acc.BandwidthMAE)
	}
	if acc.ComputeMAE > 0.15 {
		t.Errorf("compute MAE = %.3f (paper: 0.0571)", acc.ComputeMAE)
	}
}

// -------------------- Figures 14-18 --------------------

func TestFig14InstructionSwing(t *testing.T) {
	rows := Fig14Graph500Phases(env(t))
	if len(rows) != 8 {
		t.Fatalf("got %d iterations, want 8", len(rows))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		lo = math.Min(lo, r.VALUInsts)
		hi = math.Max(hi, r.VALUInsts)
		if r.VFetchInsts <= 0 || r.VWriteInsts <= 0 {
			t.Errorf("iteration %d missing memory instructions", r.Iter)
		}
	}
	if hi/lo < 4 {
		t.Errorf("instruction swing = %.1fx, want several-fold (Figure 14)", hi/lo)
	}
	if Fig14String(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestFig15MemoryResidencyDithers(t *testing.T) {
	r, err := Fig15MemFreqResidency(env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Overall) < 2 {
		t.Errorf("memory residency = %v, want multiple states (dithering)", r.Overall)
	}
	sum := 0.0
	for _, f := range r.Overall {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("residency sums to %v", sum)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig16ComputePinnedMemoryMoves(t *testing.T) {
	r, err := Fig16TunableResidency(env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: compute frequency occupies a single state (1 GHz) for the
	// dominant kernel; memory frequency spreads across several.
	if frac := r.CUFreq[int(hw.MaxCUFreq)]; frac < 0.8 {
		t.Errorf("time at 1GHz = %.0f%%, want dominant", frac*100)
	}
	if len(r.MemFreq) < 2 {
		t.Errorf("memory states = %v, want several", r.MemFreq)
	}
	// CU count: most time at 32 (paper: ~90%).
	if frac := r.CUs[hw.MaxCUs]; frac < 0.5 {
		t.Errorf("time at 32 CUs = %.0f%%, want majority", frac*100)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig17PowerSharingSplit(t *testing.T) {
	r, err := Fig17PowerSharing(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(fig17Apps) {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.Abs(row.BaselineGPU+row.BaselineMem-1) > 1e-9 {
			t.Errorf("%s: baseline shares sum to %v", row.App, row.BaselineGPU+row.BaselineMem)
		}
		// Harmonia must not exceed baseline total.
		if row.HarmoniaGPU+row.HarmoniaMem > 1+1e-9 {
			t.Errorf("%s: Harmonia power above baseline", row.App)
		}
	}
	// Paper: savings split 64% GPU / 36% memory — require both rails to
	// contribute and the GPU side to dominate.
	if r.GPUSavingsShare <= r.MemSavingsShare {
		t.Errorf("GPU savings share %.0f%% should dominate memory %.0f%%",
			r.GPUSavingsShare*100, r.MemSavingsShare*100)
	}
	if r.MemSavingsShare < 0.10 {
		t.Errorf("memory savings share = %.0f%%, want a material contribution (paper: 36%%)",
			r.MemSavingsShare*100)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig18FGRescuesCGOutliers(t *testing.T) {
	rows, err := Fig18CGvsFG(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(fig18Apps) {
		t.Fatalf("got %d rows", len(rows))
	}
	byApp := map[string]Fig18Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.CGActions < 1 {
			t.Errorf("%s: no CG actions recorded", r.App)
		}
	}
	// Streamcluster: CG-only hurts; FG's increment must be strongly
	// positive (Section 7.2: "FG tuning plays a crucial role").
	sc := byApp["Streamcluster"]
	if sc.CGGain > 0 {
		t.Errorf("Streamcluster CG gain = %.1f%%, expected negative (edge-of-bin miss)", sc.CGGain*100)
	}
	if sc.FGIncrement < 0.05 {
		t.Errorf("Streamcluster FG increment = %.1f%%, want a strong repair", sc.FGIncrement*100)
	}
	// XSBench runs only 2 iterations: CG must capture essentially the
	// whole gain in a single step (Section 7.2).
	xs := byApp["XSBench"]
	if xs.CGGain < 0.02 {
		t.Errorf("XSBench CG gain = %.1f%%, want positive single-shot gain", xs.CGGain*100)
	}
	if math.Abs(xs.FGIncrement) > 0.03 {
		t.Errorf("XSBench FG increment = %.1f%%, want near zero (2 iterations)", xs.FGIncrement*100)
	}
	if Fig18String(rows) == "" {
		t.Error("empty rendering")
	}
}

// -------------------- aggregate sanity --------------------

func TestResultsTableRenders(t *testing.T) {
	rs := results(t)
	s := ResultsTable(rs)
	if len(s) < 100 {
		t.Errorf("suspiciously short table: %q", s)
	}
	_, sum, err := Fig10ED2(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if sum.String() == "" {
		t.Error("empty summary rendering")
	}
}

func TestStressExclusionGeomean(t *testing.T) {
	rs := results(t)
	mf := appResult(t, rs, "MaxFlops")
	dm := appResult(t, rs, "DeviceMemory")
	if !mf.Stress || !dm.Stress {
		t.Error("stress flags lost")
	}
	sum := Summarize(rs)
	// Geomean 2 must differ from Geomean 1 (different population) but
	// both should be in the same band.
	if sum.ED2Harmonia2 == sum.ED2Harmonia {
		t.Error("Geomean 2 identical to Geomean 1; exclusion not applied")
	}
	if math.Abs(sum.ED2Harmonia2-sum.ED2Harmonia) > 0.06 {
		t.Errorf("geomeans diverge too much: %.1f%% vs %.1f%%",
			sum.ED2Harmonia*100, sum.ED2Harmonia2*100)
	}
}

func TestResultsDeterministic(t *testing.T) {
	// A second Env must reproduce the identical headline number.
	e2 := NewEnv()
	rs2, err := e2.Results(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s1 := Summarize(results(t))
	s2 := Summarize(rs2)
	if s1.ED2Harmonia != s2.ED2Harmonia {
		t.Errorf("non-deterministic results: %v vs %v", s1.ED2Harmonia, s2.ED2Harmonia)
	}
}
