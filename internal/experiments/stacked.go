package experiments

import (
	"fmt"
	"strings"

	"harmonia/internal/core"
	"harmonia/internal/metrics"
	"harmonia/internal/policy"
	"harmonia/internal/session"
	"harmonia/internal/thermal"
	"harmonia/internal/workloads"
)

// StackedRow is one policy's outcome under the stacked-memory thermal
// envelope.
type StackedRow struct {
	Policy string
	// PeakC is the hottest die temperature across the app subset.
	PeakC float64
	// ThrottledKernels counts thermally capped invocations.
	ThrottledKernels int
	// Slowdown vs the unthrottled discrete baseline (geomean).
	Slowdown float64
}

// StackedResult is the future-work study of the paper's closing insight:
// with on-package DRAM, compute and memory share one thermal envelope
// and coordinated management pays off in throttling avoided.
type StackedResult struct {
	ThrottleC float64
	Rows      []StackedRow
}

// stackedApps is the memory-heavy subset where the shared envelope bites.
var stackedApps = []string{"DeviceMemory", "SPMV", "miniFE", "XSBench", "BPT"}

// StackedEnvelopeStudy runs the baseline and Harmonia inside a stacked-
// package thermal guard and compares peak temperature, throttling, and
// performance (Section 7.3, insight 6).
func StackedEnvelopeStudy(e *Env, throttleC float64) (StackedResult, error) {
	res := StackedResult{ThrottleC: throttleC}
	policies := []struct {
		name string
		make func() policy.Policy
	}{
		{"baseline", func() policy.Policy { return policy.NewBaseline() }},
		{"harmonia", func() policy.Policy { return core.New(core.Options{Predictor: e.Predictor()}) }},
	}
	for _, p := range policies {
		row := StackedRow{Policy: p.name}
		var slows []float64
		for _, name := range stackedApps {
			ref, err := e.session(policy.NewBaseline()).Run(workloads.ByName(name))
			if err != nil {
				return res, err
			}
			die := thermal.New(thermal.StackedParams())
			guard := thermal.NewThrottle(p.make(), die, e.Power, throttleC)
			sess := &session.Session{Sim: e.Runner(), Power: e.Power, Policy: guard}
			rep, err := sess.Run(workloads.ByName(name))
			if err != nil {
				return res, err
			}
			if guard.PeakC > row.PeakC {
				row.PeakC = guard.PeakC
			}
			row.ThrottledKernels += guard.ThrottledKernels
			slows = append(slows, rep.TotalTime()/ref.TotalTime())
		}
		row.Slowdown = metrics.GeoMean(slows) - 1
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func (r StackedResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stacked-memory envelope study (throttle at %.0f°C)\n", r.ThrottleC)
	b.WriteString("  policy     peak °C   throttled invocations   slowdown\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s  %7.1f   %21d   %+7.2f%%\n",
			row.Policy, row.PeakC, row.ThrottledKernels, row.Slowdown*100)
	}
	return b.String()
}
