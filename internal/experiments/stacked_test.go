package experiments

import "testing"

func TestStackedEnvelopeCoordinationWins(t *testing.T) {
	r, err := StackedEnvelopeStudy(env(t), 85)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %+v", r.Rows)
	}
	base, hm := r.Rows[0], r.Rows[1]
	if base.Policy != "baseline" || hm.Policy != "harmonia" {
		t.Fatalf("row order: %+v", r.Rows)
	}
	// The paper's insight 6: under a shared envelope the coordinated
	// policy runs cooler...
	if hm.PeakC >= base.PeakC {
		t.Errorf("Harmonia peak %.1f°C not below baseline %.1f°C", hm.PeakC, base.PeakC)
	}
	// ...throttles less...
	if hm.ThrottledKernels >= base.ThrottledKernels {
		t.Errorf("Harmonia throttled %d >= baseline %d", hm.ThrottledKernels, base.ThrottledKernels)
	}
	if base.ThrottledKernels == 0 {
		t.Error("baseline never throttled; the envelope is not binding")
	}
	// ...and keeps more performance.
	if hm.Slowdown >= base.Slowdown {
		t.Errorf("Harmonia slowdown %.2f%% not below baseline %.2f%%",
			hm.Slowdown*100, base.Slowdown*100)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}
