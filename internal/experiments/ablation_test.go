package experiments

import (
	"context"

	"math"
	"testing"
)

func TestMemVoltageScalingIncreasesSavings(t *testing.T) {
	r, err := MemVoltageScalingStudy(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Sections 3.3/7.2: savings "would actually be greater" with a
	// scalable memory rail.
	if r.ScaledRail <= r.FixedRail {
		t.Errorf("scaled-rail card saving %.1f%% not above fixed-rail %.1f%%",
			r.ScaledRail*100, r.FixedRail*100)
	}
	if r.MemSavingsScaled <= r.MemSavingsFixed {
		t.Errorf("scaled-rail memory saving %.1f%% not above fixed-rail %.1f%%",
			r.MemSavingsScaled*100, r.MemSavingsFixed*100)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestObjectiveStudyEDSimilarToED2(t *testing.T) {
	r, err := ObjectiveStudy(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Section 3.4: "using ED here yields similar conclusions" — both
	// oracles find material gains with tiny slowdowns, and the energy
	// objective saves at least as much energy as either.
	if r.ED2Gain < 0.10 || r.EDGain < 0.10 {
		t.Errorf("oracle gains too small: ED2 %.1f%%, ED %.1f%%", r.ED2Gain*100, r.EDGain*100)
	}
	if math.Abs(r.ED2Slowdown) > 0.05 || math.Abs(r.EDSlowdown) > 0.05 {
		t.Errorf("oracle slowdowns too large: %.2f%% / %.2f%%", r.ED2Slowdown*100, r.EDSlowdown*100)
	}
	if r.EnergyGain < r.ED2Gain-0.5 {
		t.Errorf("energy-oracle gain %.1f%% implausibly small", r.EnergyGain*100)
	}
	if r.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTDPStudyThrottlesMonotonically(t *testing.T) {
	rows, err := TDPStudy(context.Background(), env(t), []float64{250, 150, 110})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// At the stock 250 W cap there is headroom: no slowdown (Section
	// 7.1's observation).
	if math.Abs(rows[0].Slowdown) > 0.005 {
		t.Errorf("slowdown at 250W = %.2f%%, want ~0", rows[0].Slowdown*100)
	}
	// Tighter caps slow things monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].Slowdown < rows[i-1].Slowdown-1e-9 {
			t.Errorf("slowdown not monotone: %v", rows)
		}
	}
	if rows[2].Slowdown < 0.01 {
		t.Errorf("110W cap slowdown = %.2f%%, want visible throttling", rows[2].Slowdown*100)
	}
	if TDPString(rows) == "" {
		t.Error("empty rendering")
	}
}

func TestControllerKnobDefaultsAreSane(t *testing.T) {
	rows, err := ControllerKnobStudy(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]KnobRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	def := rows[0]
	// The default configuration must be competitive: within 3 points of
	// the best variant's ED2 gain.
	best := def.ED2Gain
	for _, r := range rows {
		if r.ED2Gain > best {
			best = r.ED2Gain
		}
	}
	if best-def.ED2Gain > 0.03 {
		t.Errorf("default config %.1f%% trails best variant %.1f%% by too much",
			def.ED2Gain*100, best*100)
	}
	// Every variant must preserve performance within a few percent.
	for _, r := range rows {
		if math.Abs(r.Slowdown) > 0.05 {
			t.Errorf("%s: slowdown %.2f%%", r.Label, r.Slowdown*100)
		}
	}
	if KnobString(rows) == "" {
		t.Error("empty rendering")
	}
}
