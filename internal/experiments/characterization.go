package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"harmonia/internal/counters"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/power"
	"harmonia/internal/regress"
	"harmonia/internal/sensitivity"
	"harmonia/internal/workloads"
)

// ---------------------------------------------------------------------
// Figure 1: board power breakdown for a memory-intensive workload.
// ---------------------------------------------------------------------

// Fig1Result is the power split of the GPU card running a memory-
// intensive workload (XSBench) at the stock configuration.
type Fig1Result struct {
	Rails      power.Rails
	GPUShare   float64
	MemShare   float64
	OtherShare float64
}

// Fig1PowerBreakdown reproduces Figure 1: the GPU chip, memory system,
// and rest-of-card power shares for XSBench at the baseline maximum
// configuration.
func Fig1PowerBreakdown(e *Env) Fig1Result {
	k := kernelByName("XSBench.Lookup")
	r := e.Runner().Run(k, 0, hw.MaxConfig())
	rails := e.Power.Rails(hw.MaxConfig(), power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	})
	card := rails.Card()
	return Fig1Result{
		Rails:      rails,
		GPUShare:   rails.GPU / card,
		MemShare:   rails.Mem / card,
		OtherShare: rails.Other / card,
	}
}

func (r Fig1Result) String() string {
	return fmt.Sprintf(
		"Figure 1 — power breakdown (XSBench @ stock config)\n"+
			"  GPU chip : %6.1f W (%4.1f%%)\n"+
			"  Memory   : %6.1f W (%4.1f%%)\n"+
			"  Other    : %6.1f W (%4.1f%%)\n"+
			"  Card     : %6.1f W",
		r.Rails.GPU, r.GPUShare*100,
		r.Rails.Mem, r.MemShare*100,
		r.Rails.Other, r.OtherShare*100,
		r.Rails.Card())
}

// ---------------------------------------------------------------------
// Table 1: the GPU DVFS table.
// ---------------------------------------------------------------------

// Table1DVFS reproduces Table 1: the published HD 7970 DPM states.
func Table1DVFS() []hw.DPMState { return hw.DPMTable }

// Table1String renders Table 1.
func Table1String() string {
	var b strings.Builder
	b.WriteString("Table 1 — AMD HD7970 GPU DVFS table\n")
	b.WriteString("  State   Freq(MHz)  Voltage(V)\n")
	for _, s := range Table1DVFS() {
		fmt.Fprintf(&b, "  %-6s  %9d  %10.2f\n", s.Name, int(s.Freq), s.Voltage)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 3: hardware balance curves.
// ---------------------------------------------------------------------

// BalancePoint is one point of a Figure 3 curve.
type BalancePoint struct {
	Config hw.Config
	// HwOpsPerByte is the platform ops/byte normalized to the minimum
	// configuration (the x-axis).
	HwOpsPerByte float64
	// Performance is 1/time normalized to the minimum configuration
	// (the y-axis).
	Performance float64
}

// BalanceCurve is the performance-vs-ops/byte series of one memory
// configuration.
type BalanceCurve struct {
	MemFreq hw.MHz
	Points  []BalancePoint
}

// Fig3Result is the full set of balance curves for one kernel.
type Fig3Result struct {
	Kernel string
	Curves []BalanceCurve
	// Knee is the normalized hardware ops/byte beyond which adding
	// compute throughput at maximum memory bandwidth improves
	// performance by less than 2% per step.
	Knee float64
}

// Fig3BalanceCurves reproduces one panel of Figure 3 for the named
// kernel: normalized performance against normalized hardware ops/byte,
// one curve per memory configuration, points ordered by increasing
// compute throughput.
func Fig3BalanceCurves(e *Env, kernelName string) Fig3Result {
	k := kernelByName(kernelName)
	if k == nil {
		return Fig3Result{Kernel: kernelName}
	}
	minCfg := hw.MinConfig()
	baseOPB := minCfg.OpsPerByte()
	baseTime := e.Runner().Run(k, 0, minCfg).Time

	res := Fig3Result{Kernel: kernelName}
	for _, mf := range hw.MemFreqs() {
		curve := BalanceCurve{MemFreq: mf}
		for _, n := range hw.CUCounts() {
			for _, cf := range hw.CUFreqs() {
				cfg := hw.Config{
					Compute: hw.ComputeConfig{CUs: n, Freq: cf},
					Memory:  hw.MemConfig{BusFreq: mf},
				}
				t := e.Runner().Run(k, 0, cfg).Time
				curve.Points = append(curve.Points, BalancePoint{
					Config:       cfg,
					HwOpsPerByte: cfg.OpsPerByte() / baseOPB,
					Performance:  baseTime / t,
				})
			}
		}
		sort.Slice(curve.Points, func(i, j int) bool {
			return curve.Points[i].HwOpsPerByte < curve.Points[j].HwOpsPerByte
		})
		res.Curves = append(res.Curves, curve)
	}
	res.Knee = kneeOf(res.Curves[len(res.Curves)-1])
	return res
}

// kneeOf locates the balance knee of the maximum-memory curve: the first
// point past which performance stops improving materially.
func kneeOf(curve BalanceCurve) float64 {
	pts := curve.Points
	if len(pts) == 0 {
		return 0
	}
	best := pts[len(pts)-1].Performance
	for _, p := range pts {
		if p.Performance >= 0.98*best {
			return p.HwOpsPerByte
		}
	}
	return pts[len(pts)-1].HwOpsPerByte
}

func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — balance curves for %s (knee at %.1fx min ops/byte)\n", r.Kernel, r.Knee)
	for _, c := range r.Curves {
		max := 0.0
		for _, p := range c.Points {
			max = math.Max(max, p.Performance)
		}
		fmt.Fprintf(&b, "  mem %4dMHz: peak normalized perf %6.2f\n", int(c.MemFreq), max)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figures 4 and 5: power reduction opportunities.
// ---------------------------------------------------------------------

// PowerPoint is one configuration's normalized board power.
type PowerPoint struct {
	Config hw.Config
	// Power is the card power normalized to the minimum hardware
	// configuration.
	Power float64
}

// Fig4Result sweeps compute configurations at maximum memory bandwidth
// for DeviceMemory (Figure 4).
type Fig4Result struct {
	Points []PowerPoint
	// Variation is (max-min)/min across the sweep; the paper reports
	// about 70%.
	Variation float64
}

// cardPowerAt runs the kernel and evaluates card power.
func cardPowerAt(e *Env, k *workloads.Kernel, cfg hw.Config) float64 {
	r := e.Runner().Run(k, 0, cfg)
	return e.Power.Rails(cfg, power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	}).Card()
}

// Fig4ComputePowerRange reproduces Figure 4: DeviceMemory's board power
// across all compute configurations at the maximum 264 GB/s memory
// configuration, normalized to the minimum hardware configuration.
func Fig4ComputePowerRange(e *Env) Fig4Result {
	k := kernelByName("DeviceMemory.Stream")
	base := cardPowerAt(e, k, hw.MinConfig())
	var res Fig4Result
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, n := range hw.CUCounts() {
		for _, cf := range hw.CUFreqs() {
			cfg := hw.Config{
				Compute: hw.ComputeConfig{CUs: n, Freq: cf},
				Memory:  hw.MemConfig{BusFreq: hw.MaxMemFreq},
			}
			p := cardPowerAt(e, k, cfg) / base
			res.Points = append(res.Points, PowerPoint{Config: cfg, Power: p})
			lo, hi = math.Min(lo, p), math.Max(hi, p)
		}
	}
	res.Variation = (hi - lo) / lo
	return res
}

func (r Fig4Result) String() string {
	return fmt.Sprintf("Figure 4 — DeviceMemory board power across %d compute configs @264GB/s: variation %.0f%%",
		len(r.Points), r.Variation*100)
}

// Fig5Result sweeps memory configurations at maximum compute for
// MaxFlops (Figure 5).
type Fig5Result struct {
	Points []PowerPoint
	// Variation is (max-min)/max across the sweep; the paper reports
	// about 10%.
	Variation float64
}

// Fig5MemoryPowerRange reproduces Figure 5: MaxFlops board power across
// memory bus frequencies at 32 CUs / 1 GHz.
func Fig5MemoryPowerRange(e *Env) Fig5Result {
	k := kernelByName("MaxFlops.Main")
	base := cardPowerAt(e, k, hw.MinConfig())
	var res Fig5Result
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, mf := range hw.MemFreqs() {
		cfg := hw.Config{
			Compute: hw.ComputeConfig{CUs: hw.MaxCUs, Freq: hw.MaxCUFreq},
			Memory:  hw.MemConfig{BusFreq: mf},
		}
		p := cardPowerAt(e, k, cfg) / base
		res.Points = append(res.Points, PowerPoint{Config: cfg, Power: p})
		lo, hi = math.Min(lo, p), math.Max(hi, p)
	}
	res.Variation = (hi - lo) / hi
	return res
}

func (r Fig5Result) String() string {
	return fmt.Sprintf("Figure 5 — MaxFlops board power across %d memory configs @32CU/1GHz: variation %.1f%%",
		len(r.Points), r.Variation*100)
}

// ---------------------------------------------------------------------
// Figure 6: which metric to optimize.
// ---------------------------------------------------------------------

// Fig6Row is the outcome of optimizing one objective for one application
// kernel, with every metric normalized to the best-performing
// configuration.
type Fig6Row struct {
	Kernel    string
	Objective string // "energy", "ed2", "performance"
	Config    hw.Config
	// Normalized quantities (best-performance config = 1.0).
	Performance float64
	Energy      float64
	ED2         float64
	ED          float64
}

// Fig6Result is the metric comparison of Figure 6.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6MetricComparison reproduces Figure 6: exhaustively search all
// configurations for the LUD and DeviceMemory applications under three
// objectives (minimum energy, minimum ED², maximum performance) and
// report each winner's normalized performance, energy, ED² and ED. As in
// the paper, the search is at application level: one fixed configuration
// for the whole run.
func Fig6MetricComparison(e *Env) Fig6Result {
	var res Fig6Result
	for _, name := range []string{"LUD", "DeviceMemory"} {
		app := workloads.ByName(name)

		type meas struct {
			cfg    hw.Config
			sample metrics.Sample
		}
		var all []meas
		for _, cfg := range hw.ConfigSpace() {
			var total metrics.Sample
			for iter := 0; iter < app.Iterations; iter++ {
				for _, k := range app.Kernels {
					r := e.Runner().Run(k, iter, cfg)
					rails := e.Power.Rails(cfg, power.Activity{
						VALUBusyFrac:    r.Counters.VALUBusy / 100,
						MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
						AchievedGBs:     r.AchievedGBs,
					})
					total = total.Add(metrics.Sample{Seconds: r.Time, Watts: rails.Card()})
				}
			}
			all = append(all, meas{cfg, total})
		}
		argmin := func(f func(metrics.Sample) float64) meas {
			best := all[0]
			for _, m := range all[1:] {
				if f(m.sample) < f(best.sample) {
					best = m
				}
			}
			return best
		}
		bestEnergy := argmin(func(s metrics.Sample) float64 { return s.Energy() })
		bestED2 := argmin(func(s metrics.Sample) float64 { return s.ED2() })
		bestPerf := argmin(func(s metrics.Sample) float64 { return s.Seconds })

		norm := bestPerf.sample
		row := func(objective string, m meas) Fig6Row {
			return Fig6Row{
				Kernel:      app.Name,
				Objective:   objective,
				Config:      m.cfg,
				Performance: norm.Seconds / m.sample.Seconds,
				Energy:      m.sample.Energy() / norm.Energy(),
				ED2:         m.sample.ED2() / norm.ED2(),
				ED:          m.sample.ED() / norm.ED(),
			}
		}
		res.Rows = append(res.Rows,
			row("energy", bestEnergy), row("ed2", bestED2), row("performance", bestPerf))
	}
	return res
}

// Row returns the row for a kernel/objective pair, or false.
func (r Fig6Result) Row(kernel, objective string) (Fig6Row, bool) {
	for _, row := range r.Rows {
		if row.Kernel == kernel && row.Objective == objective {
			return row, true
		}
	}
	return Fig6Row{}, false
}

func (r Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6 — objective comparison (normalized to best-performing config)\n")
	b.WriteString("  kernel                objective    perf  energy    ED2     ED   config\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-20s  %-11s %5.2f  %6.2f  %5.2f  %5.2f   %v\n",
			row.Kernel, row.Objective, row.Performance, row.Energy, row.ED2, row.ED, row.Config)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figures 7-9: sensitivity characterization.
// ---------------------------------------------------------------------

// Fig7Row pairs a kernel's occupancy with its measured bandwidth
// sensitivity.
type Fig7Row struct {
	Kernel               string
	Occupancy            float64
	BandwidthSensitivity float64
}

// Fig7OccupancyEffect reproduces Figure 7: Sort.BottomScan's VGPR-limited
// 30% occupancy suppresses its memory-bandwidth sensitivity, while
// CoMD.AdvanceVelocity's 100% occupancy enables it.
func Fig7OccupancyEffect(e *Env) []Fig7Row {
	var out []Fig7Row
	for _, name := range []string{"Sort.BottomScan", "CoMD.AdvanceVelocity"} {
		k := kernelByName(name)
		m := sensitivity.Measure(e.Runner(), k)
		out = append(out, Fig7Row{
			Kernel:               name,
			Occupancy:            k.Occupancy(),
			BandwidthSensitivity: m.Bandwidth,
		})
	}
	return out
}

// Fig8Row pairs a kernel's branch divergence with its measured compute-
// frequency sensitivity.
type Fig8Row struct {
	Kernel               string
	BranchDivergence     float64 // percent
	VALUInsts            float64 // dynamic wavefront instructions at max config
	ComputeFreqSensitive float64
}

// Fig8DivergenceEffect reproduces Figure 8: SRAD.Prepare has 75%
// divergence over 8 instructions and low frequency sensitivity;
// Sort.BottomScan has 6% divergence over millions of instructions and
// high frequency sensitivity.
func Fig8DivergenceEffect(e *Env) []Fig8Row {
	var out []Fig8Row
	for _, name := range []string{"SRAD.Prepare", "Sort.BottomScan"} {
		k := kernelByName(name)
		m := sensitivity.Measure(e.Runner(), k)
		r := e.Runner().Run(k, 0, hw.MaxConfig())
		out = append(out, Fig8Row{
			Kernel:               name,
			BranchDivergence:     k.Divergence * 100,
			VALUInsts:            r.Counters.VALUInsts,
			ComputeFreqSensitive: m.CUFreq,
		})
	}
	return out
}

// Fig9Result reproduces Figure 9: the clock-domain-crossing effect on the
// memory-bound DeviceMemory kernel.
type Fig9Result struct {
	Kernel string
	// ICActivity at the stock configuration (high: the off-chip bus is
	// saturated).
	ICActivity float64
	// ComputeFreqSensitivity measured over the frequency range.
	ComputeFreqSensitivity float64
	// LowFreqLimiter is the bandwidth limiter at 300 MHz compute: it
	// must be the clock-domain crossing.
	LowFreqLimiter gpusim.BandwidthLimiter
}

// Fig9ClockDomains reproduces Figure 9.
func Fig9ClockDomains(e *Env) Fig9Result {
	k := kernelByName("DeviceMemory.Stream")
	m := sensitivity.Measure(e.Runner(), k)
	rMax := e.Runner().Run(k, 0, hw.MaxConfig())
	low := hw.Config{
		Compute: hw.ComputeConfig{CUs: hw.MaxCUs, Freq: hw.MinCUFreq},
		Memory:  hw.MemConfig{BusFreq: hw.MaxMemFreq},
	}
	rLow := e.Runner().Run(k, 0, low)
	return Fig9Result{
		Kernel:                 k.Name,
		ICActivity:             rMax.Counters.ICActivity,
		ComputeFreqSensitivity: m.CUFreq,
		LowFreqLimiter:         rLow.Limiter,
	}
}

func (r Fig9Result) String() string {
	return fmt.Sprintf("Figure 9 — %s: icActivity %.2f, compute-freq sensitivity %.2f, limiter @300MHz: %v",
		r.Kernel, r.ICActivity, r.ComputeFreqSensitivity, r.LowFreqLimiter)
}

// ---------------------------------------------------------------------
// Tables 2 and 3: the counter set and the sensitivity models.
// ---------------------------------------------------------------------

// Table2Counters reproduces Table 2.
func Table2Counters() []counters.Description { return counters.Table2() }

// Table3Result carries the trained sensitivity models and their quality,
// the analogue of the paper's Table 3 (whose absolute coefficients were
// fit to the physical HD 7970's counters and do not transfer).
type Table3Result struct {
	Bandwidth *regress.Model
	Compute   *regress.Model
	// TrainingPoints is the number of rows the runtime models were
	// trained on (the paper reports 11250 raw vectors reduced to 2000).
	TrainingPoints int
	// Accuracy on the per-kernel averaged evaluation set (Section 7.2:
	// 3.03% bandwidth, 5.71% compute on hardware).
	Accuracy sensitivity.Accuracy
	// Paper holds the published Table 3 coefficients for side-by-side
	// reference.
	Paper *sensitivity.Predictor
}

// Table3Model trains the sensitivity predictors and reports coefficients
// and accuracy (Sections 4.2-4.3).
func Table3Model(e *Env) Table3Result {
	pts := sensitivity.BuildConfigTrainingSet(e.Runner(), workloads.AllKernels())
	pred := e.Predictor()
	kernelPts := sensitivity.BuildTrainingSet(e.Runner(), workloads.AllKernels())
	return Table3Result{
		Bandwidth:      pred.Bandwidth,
		Compute:        pred.Compute,
		TrainingPoints: len(pts),
		Accuracy:       sensitivity.Evaluate(pred, kernelPts),
		Paper:          sensitivity.PaperModel(),
	}
}

func (r Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — sensitivity model parameters (trained on this platform)\n")
	fmt.Fprintf(&b, "  bandwidth model: %v\n    correlation %.3f\n", r.Bandwidth, r.Bandwidth.Corr)
	fmt.Fprintf(&b, "  compute model:   %v\n    correlation %.3f\n", r.Compute, r.Compute.Corr)
	fmt.Fprintf(&b, "  training rows: %d\n", r.TrainingPoints)
	fmt.Fprintf(&b, "  MAE: bandwidth %.3f, compute %.3f (paper: 0.0303 / 0.0571)\n",
		r.Accuracy.BandwidthMAE, r.Accuracy.ComputeMAE)
	return b.String()
}
