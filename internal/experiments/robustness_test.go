package experiments

import (
	"context"

	"math"
	"testing"
)

// TestRobustnessStudy is the robustness acceptance gate: at two or more
// non-zero fault intensities the hardened controller must degrade
// strictly less than the naive one, the clean point must show no
// degradation for either, and the whole study must be reproducible from
// its seed.
func TestRobustnessStudy(t *testing.T) {
	e := NewEnv()
	res, err := Robustness(context.Background(), e, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)

	if len(res.Points) != len(DefaultIntensities) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(DefaultIntensities))
	}

	clean := res.Points[0]
	if clean.Intensity != 0 {
		t.Fatalf("first point intensity = %v, want 0", clean.Intensity)
	}
	if math.Abs(clean.NaiveED2-1) > 1e-12 || math.Abs(clean.HardenedED2-1) > 1e-12 {
		t.Errorf("clean point shows degradation: naive %v, hardened %v",
			clean.NaiveED2, clean.HardenedED2)
	}

	wins := 0
	for _, p := range res.Points[1:] {
		if p.HardenedED2 < p.NaiveED2 {
			wins++
		}
		if p.HardenedED2 <= 0 || p.NaiveED2 <= 0 ||
			math.IsNaN(p.HardenedED2) || math.IsNaN(p.NaiveED2) {
			t.Fatalf("intensity %v: non-positive or NaN geomean", p.Intensity)
		}
	}
	if wins < 2 {
		t.Errorf("hardened beat naive at only %d non-zero intensities, want >= 2\n%s", wins, res)
	}

	// Reproducibility: same seed, same numbers, bit for bit.
	res2, err := Robustness(context.Background(), e, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if res.Points[i] != res2.Points[i] {
			t.Fatalf("study not reproducible at intensity %v:\n%+v\n%+v",
				res.Points[i].Intensity, res.Points[i], res2.Points[i])
		}
	}
}
