package experiments

import (
	"context"
	"fmt"

	"harmonia/internal/session"
	"harmonia/internal/timeline"
	"harmonia/internal/workloads"
)

// TimelineStudy flight-records one application's run under the Harmonia
// controller and returns the timeline summary: per-kernel time/energy
// shares, hardware transition count, and the controller's action census
// (how many boundaries were CG jumps vs FG steps vs holds). The same
// instrumentation backs GET /v1/runs/{id}/timeline on the daemon; this
// is the offline, single-run rendering of it.
func TimelineStudy(ctx context.Context, e *Env, appName string) (timeline.Summary, error) {
	app := workloads.ByName(appName)
	if app == nil {
		return timeline.Summary{}, fmt.Errorf("unknown application %q", appName)
	}
	rec := timeline.New()
	sess := &session.Session{Sim: e.Runner(), Power: e.Power, Policy: e.harmonia(), Timeline: rec}
	if _, err := sess.RunContext(ctx, app); err != nil {
		return timeline.Summary{}, err
	}
	return rec.Snapshot().Summary(), nil
}
