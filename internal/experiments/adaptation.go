package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"harmonia/internal/batch"
	"harmonia/internal/core"
	"harmonia/internal/hw"
	"harmonia/internal/metrics"
	"harmonia/internal/policy"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

// ---------------------------------------------------------------------
// Figure 14: Graph500.BottomStepUp's time-varying behaviour.
// ---------------------------------------------------------------------

// Fig14Row is one BFS iteration's instruction profile.
type Fig14Row struct {
	Iter        int
	VALUInsts   float64
	VFetchInsts float64
	VWriteInsts float64
	TimeSec     float64
	MemUnitBusy float64
}

// Fig14Graph500Phases reproduces Figure 14: the raw instruction volume of
// Graph500.BottomStepUp across successive BFS iterations at the baseline
// configuration, showing the several-fold frontier-driven swing.
func Fig14Graph500Phases(e *Env) []Fig14Row {
	k := kernelByName("Graph500.BottomStepUp")
	var rows []Fig14Row
	for i := 0; i < 8; i++ {
		r := e.Runner().Run(k, i, hw.MaxConfig())
		rows = append(rows, Fig14Row{
			Iter:        i,
			VALUInsts:   r.Counters.VALUInsts,
			VFetchInsts: r.Counters.VFetchInsts,
			VWriteInsts: r.Counters.VWriteInsts,
			TimeSec:     r.Time,
			MemUnitBusy: r.Counters.MemUnitBusy,
		})
	}
	return rows
}

// Fig14String renders Figure 14's series.
func Fig14String(rows []Fig14Row) string {
	var b strings.Builder
	b.WriteString("Figure 14 — Graph500.BottomStepUp over BFS iterations (baseline config)\n")
	b.WriteString("  iter     VALUInsts   VFetchInsts   VWriteInsts   time(ms)  MemBusy%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %4d  %12.0f  %12.0f  %12.0f  %9.3f  %7.1f\n",
			r.Iter, r.VALUInsts, r.VFetchInsts, r.VWriteInsts, r.TimeSec*1e3, r.MemUnitBusy)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figures 15-16: configuration residency under Harmonia.
// ---------------------------------------------------------------------

// Residency is a tunable's time-share per state value.
type Residency map[int]float64

// SortedStates returns the states in increasing order.
func (r Residency) SortedStates() []int {
	out := make([]int, 0, len(r))
	for v := range r {
		out = append(out, v) //lint:ignore nondeterminism states are sorted before use
	}
	sort.Ints(out)
	return out
}

// Fig15Result is the memory-bus-frequency residency of
// Graph500.BottomStepUp under Harmonia, split into early and late halves
// of the run (the paper plots residency "as time progresses").
type Fig15Result struct {
	EarlyHalf Residency
	LateHalf  Residency
	Overall   Residency
}

// runGraph500 executes Graph500 under a fresh Harmonia controller.
func runGraph500(e *Env) (*session.Report, error) {
	app := workloads.Graph500()
	return e.session(e.harmonia()).Run(app)
}

// Fig15MemFreqResidency reproduces Figure 15.
func Fig15MemFreqResidency(e *Env) (Fig15Result, error) {
	rep, err := runGraph500(e)
	if err != nil {
		return Fig15Result{}, err
	}
	const kernel = "Graph500.BottomStepUp"
	var runs []session.KernelRun
	for _, r := range rep.Runs {
		if r.Kernel == kernel {
			runs = append(runs, r)
		}
	}
	residencyOf := func(rs []session.KernelRun) Residency {
		total := 0.0
		for _, r := range rs {
			total += r.Result.Time
		}
		out := Residency{}
		for _, r := range rs {
			out[int(r.Config.Memory.BusFreq)] += r.Result.Time / total
		}
		return out
	}
	half := len(runs) / 2
	return Fig15Result{
		EarlyHalf: residencyOf(runs[:half]),
		LateHalf:  residencyOf(runs[half:]),
		Overall:   residencyOf(runs),
	}, nil
}

func (r Fig15Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 15 — Graph500.BottomStepUp memory bus frequency residency under Harmonia\n")
	render := func(name string, res Residency) {
		fmt.Fprintf(&b, "  %-8s", name)
		for _, st := range res.SortedStates() {
			fmt.Fprintf(&b, "  %dMHz: %4.1f%%", st, res[st]*100)
		}
		b.WriteString("\n")
	}
	render("early", r.EarlyHalf)
	render("late", r.LateHalf)
	render("overall", r.Overall)
	return b.String()
}

// Fig16Result is the per-tunable state residency across the whole
// Graph500 run under Harmonia (Figure 16).
type Fig16Result struct {
	CUs     Residency
	CUFreq  Residency
	MemFreq Residency
}

// Fig16TunableResidency reproduces Figure 16.
func Fig16TunableResidency(e *Env) (Fig16Result, error) {
	rep, err := runGraph500(e)
	if err != nil {
		return Fig16Result{}, err
	}
	return Fig16Result{
		CUs:     Residency(rep.Residency(hw.TunableCUs)),
		CUFreq:  Residency(rep.Residency(hw.TunableCUFreq)),
		MemFreq: Residency(rep.Residency(hw.TunableMemFreq)),
	}, nil
}

func (r Fig16Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 16 — Graph500 hardware tunable residency under Harmonia\n")
	render := func(name string, res Residency, unit string) {
		fmt.Fprintf(&b, "  %-7s:", name)
		for _, st := range res.SortedStates() {
			fmt.Fprintf(&b, "  %d%s %4.1f%%", st, unit, res[st]*100)
		}
		b.WriteString("\n")
	}
	render("#CUs", r.CUs, "CU")
	render("CUFreq", r.CUFreq, "MHz")
	render("MemFreq", r.MemFreq, "MHz")
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 17: coordinated power sharing.
// ---------------------------------------------------------------------

// Fig17Row compares GPU and memory power between the baseline and
// Harmonia for one application, normalized to the baseline GPU+memory
// total (the paper excludes the constant rest-of-board power).
type Fig17Row struct {
	App string
	// Normalized power shares.
	BaselineGPU, BaselineMem float64
	HarmoniaGPU, HarmoniaMem float64
}

// Fig17Result includes the per-app rows and the savings attribution: the
// paper reports 64% of Harmonia's savings from the compute configuration
// and 36% from memory bus frequency.
type Fig17Result struct {
	Rows []Fig17Row
	// GPUSavingsShare is the fraction of total (GPU+Mem) savings
	// attributable to the GPU rail, across the subset.
	GPUSavingsShare float64
	MemSavingsShare float64
}

// fig17Apps is the application subset shown in the paper's Figure 17.
var fig17Apps = []string{"BPT", "CoMD", "Graph500", "Sort", "SPMV", "Stencil", "XSBench", "miniFE"}

// Fig17PowerSharing reproduces Figure 17. Applications fan out on the
// Env's batch pool; rows and the savings accumulation keep the paper's
// app order regardless of worker count.
func Fig17PowerSharing(ctx context.Context, e *Env) (Fig17Result, error) {
	var res Fig17Result
	type appPower struct{ bGPU, bMem, hGPU, hMem float64 }
	perApp, err := batch.Map(ctx, e.Workers, fig17Apps,
		func(_ context.Context, _ int, name string) (appPower, error) {
			base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(name))
			if err != nil {
				return appPower{}, err
			}
			hm, err := e.session(e.harmonia()).Run(workloads.ByName(name))
			if err != nil {
				return appPower{}, err
			}
			return appPower{
				bGPU: base.Energy.GPU / base.TotalTime(),
				bMem: base.Energy.Mem / base.TotalTime(),
				hGPU: hm.Energy.GPU / hm.TotalTime(),
				hMem: hm.Energy.Mem / hm.TotalTime(),
			}, nil
		})
	if err != nil {
		return res, err
	}
	var gpuSaved, memSaved float64
	for i, p := range perApp {
		norm := p.bGPU + p.bMem
		res.Rows = append(res.Rows, Fig17Row{
			App:         fig17Apps[i],
			BaselineGPU: p.bGPU / norm, BaselineMem: p.bMem / norm,
			HarmoniaGPU: p.hGPU / norm, HarmoniaMem: p.hMem / norm,
		})
		gpuSaved += p.bGPU - p.hGPU
		memSaved += p.bMem - p.hMem
	}
	total := gpuSaved + memSaved
	if total > 0 {
		res.GPUSavingsShare = gpuSaved / total
		res.MemSavingsShare = memSaved / total
	}
	return res, nil
}

func (r Fig17Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 17 — relative GPU and memory power (normalized to baseline GPU+Mem)\n")
	b.WriteString("  app        base GPU  base Mem |  HM GPU   HM Mem\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s  %7.2f  %8.2f | %7.2f  %7.2f\n",
			row.App, row.BaselineGPU, row.BaselineMem, row.HarmoniaGPU, row.HarmoniaMem)
	}
	fmt.Fprintf(&b, "  savings attribution: GPU %.0f%%, memory %.0f%% (paper: 64%% / 36%%)\n",
		r.GPUSavingsShare*100, r.MemSavingsShare*100)
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 18: CG versus FG contributions.
// ---------------------------------------------------------------------

// Fig18Row splits one application's ED² gain into the CG contribution and
// the FG increment on top of it.
type Fig18Row struct {
	App string
	// CGGain is the ED² improvement of CG-only tuning.
	CGGain float64
	// FGIncrement is the additional ED² improvement FG adds (Harmonia
	// minus CG-only).
	FGIncrement float64
	// CGIterations and FGIterations count the controller actions taken
	// by the full Harmonia controller.
	CGActions, FGActions, Reverts int
}

// fig18Apps is the subset shown in the paper's Figure 18.
var fig18Apps = []string{"CoMD", "Graph500", "LUD", "SPMV", "Streamcluster", "XSBench"}

// Fig18CGvsFG reproduces Figure 18: the relative contributions of
// coarse-grain and fine-grain tuning.
func Fig18CGvsFG(ctx context.Context, e *Env) ([]Fig18Row, error) {
	return batch.Map(ctx, e.Workers, fig18Apps,
		func(_ context.Context, _ int, name string) (Fig18Row, error) {
			base, err := e.session(policy.NewBaseline()).Run(workloads.ByName(name))
			if err != nil {
				return Fig18Row{}, err
			}
			cgRep, err := e.session(e.cgOnly()).Run(workloads.ByName(name))
			if err != nil {
				return Fig18Row{}, err
			}
			hmCtrl := core.New(core.Options{Predictor: e.Predictor()})
			hmRep, err := e.session(hmCtrl).Run(workloads.ByName(name))
			if err != nil {
				return Fig18Row{}, err
			}
			cgGain := metrics.Improvement(base.ED2(), cgRep.ED2())
			hmGain := metrics.Improvement(base.ED2(), hmRep.ED2())
			cgN, fgN, rev := hmCtrl.Stats()
			return Fig18Row{
				App: name, CGGain: cgGain, FGIncrement: hmGain - cgGain,
				CGActions: cgN, FGActions: fgN, Reverts: rev,
			}, nil
		})
}

// Fig18String renders Figure 18's rows.
func Fig18String(rows []Fig18Row) string {
	var b strings.Builder
	b.WriteString("Figure 18 — relative contributions of CG versus FG tuning (ED2 gain)\n")
	b.WriteString("  app            CG gain   FG increment   CG/FG/revert actions\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-13s %7.1f%%  %12.1f%%   %d/%d/%d\n",
			r.App, r.CGGain*100, r.FGIncrement*100, r.CGActions, r.FGActions, r.Reverts)
	}
	return b.String()
}
