package experiments

import (
	"context"
	"fmt"
	"strings"

	"harmonia/internal/batch"
	"harmonia/internal/floats"
	"harmonia/internal/metrics"
	"harmonia/internal/policy"
	"harmonia/internal/sensitivity"
	"harmonia/internal/workloads"
)

// AppResult holds one application's measurements under every evaluated
// policy, the raw material of Figures 10-13.
type AppResult struct {
	App    string
	Stress bool

	Baseline    metrics.Sample
	CG          metrics.Sample
	Harmonia    metrics.Sample
	Oracle      metrics.Sample
	ComputeOnly metrics.Sample
}

// ED2Gain returns the fractional ED² improvement of a policy sample over
// the baseline.
func (a AppResult) ED2Gain(s metrics.Sample) float64 {
	return metrics.Improvement(a.Baseline.ED2(), s.ED2())
}

// EnergyGain returns the fractional energy improvement over baseline.
func (a AppResult) EnergyGain(s metrics.Sample) float64 {
	return metrics.Improvement(a.Baseline.Energy(), s.Energy())
}

// PowerGain returns the fractional average-power saving over baseline.
func (a AppResult) PowerGain(s metrics.Sample) float64 {
	return metrics.Improvement(a.Baseline.Watts, s.Watts)
}

// Slowdown returns the fractional execution-time increase over baseline
// (negative = performance gain).
func (a AppResult) Slowdown(s metrics.Sample) float64 {
	if floats.Zero(a.Baseline.Seconds) {
		return 0
	}
	return s.Seconds/a.Baseline.Seconds - 1
}

// Results runs the full 14-application evaluation under the baseline,
// CG-only, Harmonia, oracle, and compute-DVFS-only policies. The sweep is
// cached on the Env. Every policy gets a fresh controller per application
// so no state leaks between runs.
//
// Applications fan out across the Env's batch pool (one job per app;
// Env.Workers bounds it) with results assembled in suite order, so the
// parallel evaluation is bit-identical to the serial one.
//
// ctx cancels the fan-out at the next kernel boundary. The evaluation
// is memoized on the Env: the first caller's ctx governs the one run
// that actually executes, and a canceled first run sticks as the
// memoized error.
func (e *Env) Results(ctx context.Context) ([]AppResult, error) {
	e.resultsOnce.Do(func() {
		// Train the predictor before fanning out so the one-time sweep
		// isn't raced into by every worker at once.
		e.Predictor()
		// The Env budget splits across the app fan-out: each job's
		// oracle sweeps with its share rather than full GOMAXPROCS.
		outer, share := e.fanout(len(workloads.Suite()))
		results, err := batch.Map(ctx, outer, workloads.Suite(),
			func(cellCtx context.Context, _ int, app *workloads.Application) (AppResult, error) {
				res := AppResult{App: app.Name, Stress: app.Stress}
				runs := []struct {
					dst    *metrics.Sample
					policy policy.Policy
				}{
					{&res.Baseline, policy.NewBaseline()},
					{&res.CG, e.cgOnly()},
					{&res.Harmonia, e.harmonia()},
					{&res.Oracle, e.oracleFor(app, share)},
					{&res.ComputeOnly, e.computeOnly()},
				}
				// Five policy runs per cell: cancellation should land
				// between runs, not only at batch.Map's cell boundary.
				for _, r := range runs {
					rep, err := e.session(r.policy).RunContext(cellCtx, app)
					if err != nil {
						return res, err
					}
					*r.dst = rep.Sample()
				}
				return res, nil
			})
		if err != nil {
			e.resultsErr = err
			return
		}
		e.results = results
	})
	return e.results, e.resultsErr
}

// Summary aggregates the headline numbers of Section 7.1.
type Summary struct {
	// Geomean ED² improvements across all 14 applications ("Geomean 1").
	ED2CG, ED2Harmonia, ED2Oracle, ED2ComputeOnly float64
	// ED2Harmonia2 excludes the stress benchmarks ("Geomean 2").
	ED2Harmonia2 float64
	// Power and energy savings of Harmonia (geomean).
	PowerSaving, EnergySaving float64
	// Mean slowdowns (geomean of time ratios minus 1; negative = gain).
	SlowdownHarmonia, SlowdownCG, SlowdownComputeOnly float64
	// Best/worst per-application outcomes.
	BestED2App        string
	BestED2           float64
	WorstCGApp        string
	WorstCGSlowdown   float64
	OracleGapHarmonia float64 // ED2Oracle - ED2Harmonia
}

// Summarize computes the Section 7.1 aggregates from per-app results.
func Summarize(results []AppResult) Summary {
	var s Summary
	var ed2CG, ed2HM, ed2OR, ed2CO, ed2HM2 []float64
	var pwr, en, slowHM, slowCG, slowCO []float64
	s.BestED2 = -1
	for _, r := range results {
		ed2CG = append(ed2CG, r.CG.ED2()/r.Baseline.ED2())
		ed2HM = append(ed2HM, r.Harmonia.ED2()/r.Baseline.ED2())
		ed2OR = append(ed2OR, r.Oracle.ED2()/r.Baseline.ED2())
		ed2CO = append(ed2CO, r.ComputeOnly.ED2()/r.Baseline.ED2())
		if !r.Stress {
			ed2HM2 = append(ed2HM2, r.Harmonia.ED2()/r.Baseline.ED2())
		}
		pwr = append(pwr, r.Harmonia.Watts/r.Baseline.Watts)
		en = append(en, r.Harmonia.Energy()/r.Baseline.Energy())
		slowHM = append(slowHM, r.Harmonia.Seconds/r.Baseline.Seconds)
		slowCG = append(slowCG, r.CG.Seconds/r.Baseline.Seconds)
		slowCO = append(slowCO, r.ComputeOnly.Seconds/r.Baseline.Seconds)

		if gain := r.ED2Gain(r.Harmonia); gain > s.BestED2 {
			s.BestED2, s.BestED2App = gain, r.App
		}
		if slow := r.Slowdown(r.CG); slow > s.WorstCGSlowdown {
			s.WorstCGSlowdown, s.WorstCGApp = slow, r.App
		}
	}
	s.ED2CG = metrics.GeoMeanImprovement(ed2CG)
	s.ED2Harmonia = metrics.GeoMeanImprovement(ed2HM)
	s.ED2Oracle = metrics.GeoMeanImprovement(ed2OR)
	s.ED2ComputeOnly = metrics.GeoMeanImprovement(ed2CO)
	s.ED2Harmonia2 = metrics.GeoMeanImprovement(ed2HM2)
	s.PowerSaving = metrics.GeoMeanImprovement(pwr)
	s.EnergySaving = metrics.GeoMeanImprovement(en)
	s.SlowdownHarmonia = metrics.GeoMean(slowHM) - 1
	s.SlowdownCG = metrics.GeoMean(slowCG) - 1
	s.SlowdownComputeOnly = metrics.GeoMean(slowCO) - 1
	s.OracleGapHarmonia = s.ED2Oracle - s.ED2Harmonia
	return s
}

// Fig10Row is one application's bar group in Figure 10 (ED² improvement).
type Fig10Row struct {
	App                  string
	CG, Harmonia, Oracle float64
}

// Fig10ED2 reproduces Figure 10: per-application ED² improvement of CG,
// FG+CG (Harmonia), and the oracle over the baseline, plus both geomeans.
func Fig10ED2(ctx context.Context, e *Env) ([]Fig10Row, Summary, error) {
	results, err := e.Results(ctx)
	if err != nil {
		return nil, Summary{}, err
	}
	var rows []Fig10Row
	for _, r := range results {
		rows = append(rows, Fig10Row{
			App: r.App, CG: r.ED2Gain(r.CG), Harmonia: r.ED2Gain(r.Harmonia), Oracle: r.ED2Gain(r.Oracle),
		})
	}
	return rows, Summarize(results), nil
}

// Fig11Energy reproduces Figure 11: per-application energy improvement.
func Fig11Energy(ctx context.Context, e *Env) ([]Fig10Row, Summary, error) {
	results, err := e.Results(ctx)
	if err != nil {
		return nil, Summary{}, err
	}
	var rows []Fig10Row
	for _, r := range results {
		rows = append(rows, Fig10Row{
			App: r.App, CG: r.EnergyGain(r.CG), Harmonia: r.EnergyGain(r.Harmonia), Oracle: r.EnergyGain(r.Oracle),
		})
	}
	return rows, Summarize(results), nil
}

// Fig12Power reproduces Figure 12: per-application power savings.
func Fig12Power(ctx context.Context, e *Env) ([]Fig10Row, Summary, error) {
	results, err := e.Results(ctx)
	if err != nil {
		return nil, Summary{}, err
	}
	var rows []Fig10Row
	for _, r := range results {
		rows = append(rows, Fig10Row{
			App: r.App, CG: r.PowerGain(r.CG), Harmonia: r.PowerGain(r.Harmonia), Oracle: r.PowerGain(r.Oracle),
		})
	}
	return rows, Summarize(results), nil
}

// Fig13Row is one application's performance outcome in Figure 13
// (fractional slowdown over baseline; negative = speedup).
type Fig13Row struct {
	App                  string
	CG, Harmonia, Oracle float64
}

// Fig13Performance reproduces Figure 13.
func Fig13Performance(ctx context.Context, e *Env) ([]Fig13Row, Summary, error) {
	results, err := e.Results(ctx)
	if err != nil {
		return nil, Summary{}, err
	}
	var rows []Fig13Row
	for _, r := range results {
		rows = append(rows, Fig13Row{
			App: r.App, CG: r.Slowdown(r.CG), Harmonia: r.Slowdown(r.Harmonia), Oracle: r.Slowdown(r.Oracle),
		})
	}
	return rows, Summarize(results), nil
}

// ComputeOnlyResult is the Section 7.2 compute-DVFS-only study.
type ComputeOnlyResult struct {
	ED2Gain  float64
	Slowdown float64
}

// ComputeOnlyStudy reproduces the paper's observation that compute
// frequency and voltage scaling alone achieves only small ED² gains
// (~3% with 1% performance loss on the physical platform).
func ComputeOnlyStudy(ctx context.Context, e *Env) (ComputeOnlyResult, error) {
	results, err := e.Results(ctx)
	if err != nil {
		return ComputeOnlyResult{}, err
	}
	s := Summarize(results)
	return ComputeOnlyResult{ED2Gain: s.ED2ComputeOnly, Slowdown: s.SlowdownComputeOnly}, nil
}

// PredictorAccuracy reproduces Section 7.2's predictor-error report.
func PredictorAccuracy(e *Env) sensitivity.Accuracy {
	kernelPts := sensitivity.BuildTrainingSet(e.Runner(), workloads.AllKernels())
	return sensitivity.Evaluate(e.Predictor(), kernelPts)
}

// ResultsTable renders the full Figures 10-13 data as one table.
func ResultsTable(results []AppResult) string {
	var b strings.Builder
	b.WriteString("app             ED2: CG    HM    OR | perf: CG    HM    OR | HM power  HM energy\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %7.1f%% %5.1f%% %5.1f%% | %8.1f%% %5.1f%% %5.1f%% | %7.1f%%  %8.1f%%\n",
			r.App,
			r.ED2Gain(r.CG)*100, r.ED2Gain(r.Harmonia)*100, r.ED2Gain(r.Oracle)*100,
			r.Slowdown(r.CG)*100, r.Slowdown(r.Harmonia)*100, r.Slowdown(r.Oracle)*100,
			r.PowerGain(r.Harmonia)*100, r.EnergyGain(r.Harmonia)*100)
	}
	return b.String()
}

func (s Summary) String() string {
	return fmt.Sprintf(
		"Summary — geomean ED2: CG %.1f%%, Harmonia %.1f%% (non-stress %.1f%%), oracle %.1f%%, compute-only %.1f%%\n"+
			"          Harmonia power saving %.1f%%, energy saving %.1f%%, slowdown %.2f%%\n"+
			"          best ED2: %s %.1f%%; worst CG slowdown: %s %.1f%%; oracle gap %.1f%%",
		s.ED2CG*100, s.ED2Harmonia*100, s.ED2Harmonia2*100, s.ED2Oracle*100, s.ED2ComputeOnly*100,
		s.PowerSaving*100, s.EnergySaving*100, s.SlowdownHarmonia*100,
		s.BestED2App, s.BestED2*100, s.WorstCGApp, s.WorstCGSlowdown*100, s.OracleGapHarmonia*100)
}
