// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 3-7) on the simulated platform. Each exported
// function corresponds to one artifact — Fig1PowerBreakdown for Figure 1,
// Table3Model for Table 3, Fig10Results for Figure 10, and so on — and
// returns a typed result carrying the same rows or series the paper
// reports, plus a human-readable rendering.
//
// EXPERIMENTS.md records the measured outcome of each regenerator next to
// the paper's published numbers; cmd/harmonia-report reprints them all.
package experiments

import (
	"sync"

	"harmonia/internal/core"
	"harmonia/internal/gpusim"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/sensitivity"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

// Env is the shared laboratory: simulator, power model, trained
// sensitivity predictor, and result caches. Building the predictor sweeps
// the full configuration space once, so reuse a single Env across
// experiments.
type Env struct {
	Sim   *gpusim.Model
	Power *power.Model

	predOnce sync.Once
	pred     *sensitivity.Predictor

	resultsOnce sync.Once
	results     []AppResult
	resultsErr  error
}

// NewEnv returns an Env with the default simulator and power model.
func NewEnv() *Env {
	return &Env{Sim: gpusim.Default(), Power: power.Default()}
}

// Predictor returns the Env's trained sensitivity predictor, training it
// on first use exactly as DefaultPredictor does.
func (e *Env) Predictor() *sensitivity.Predictor {
	e.predOnce.Do(func() {
		p, err := sensitivity.Train(
			sensitivity.BuildConfigTrainingSet(e.Sim, workloads.AllKernels()))
		if err != nil {
			panic(err) // fixed known-good training set; see DefaultPredictor
		}
		e.pred = p
	})
	return e.pred
}

// session returns a session bound to this Env's models.
func (e *Env) session(p policy.Policy) *session.Session {
	return &session.Session{Sim: e.Sim, Power: e.Power, Policy: p}
}

// harmonia returns a fresh Harmonia controller.
func (e *Env) harmonia() policy.Policy {
	return core.New(core.Options{Predictor: e.Predictor()})
}

// cgOnly returns a fresh coarse-grain-only controller.
func (e *Env) cgOnly() policy.Policy {
	return core.New(core.Options{Predictor: e.Predictor(), DisableFG: true})
}

// computeOnly returns a fresh compute-frequency-only controller.
func (e *Env) computeOnly() policy.Policy {
	return core.NewComputeOnly(e.Predictor())
}

// oracleFor returns the exhaustive ED2 oracle for an application.
func (e *Env) oracleFor(app *workloads.Application) policy.Policy {
	return oracle.New(e.Sim, e.Power, app)
}

// kernelByName finds a catalog kernel.
func kernelByName(name string) *workloads.Kernel {
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}
