// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 3-7) on the simulated platform. Each exported
// function corresponds to one artifact — Fig1PowerBreakdown for Figure 1,
// Table3Model for Table 3, Fig10Results for Figure 10, and so on — and
// returns a typed result carrying the same rows or series the paper
// reports, plus a human-readable rendering.
//
// EXPERIMENTS.md records the measured outcome of each regenerator next to
// the paper's published numbers; cmd/harmonia-report reprints them all.
package experiments

import (
	"sync"

	"harmonia/internal/batch"
	"harmonia/internal/core"
	"harmonia/internal/gpusim"
	"harmonia/internal/oracle"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/sensitivity"
	"harmonia/internal/session"
	"harmonia/internal/simcache"
	"harmonia/internal/workloads"
)

// Env is the shared laboratory: simulator, power model, trained
// sensitivity predictor, and result caches. Building the predictor sweeps
// the full configuration space once, so reuse a single Env across
// experiments.
type Env struct {
	Sim   *gpusim.Model
	Power *power.Model

	// Cache, when non-nil, memoizes simulation results across every
	// study run on this Env: oracle sweeps, sensitivity training, and
	// suite sessions all re-simulate the same (kernel, iteration,
	// configuration) triples, and the simulator is pure, so cached runs
	// are bit-identical to uncached ones. NewEnv installs one; a
	// zero-constructed Env runs uncached.
	Cache *simcache.Cache

	// Workers is the Env's total worker budget: it bounds the batch
	// pool the suite-level studies fan out on (one job per application)
	// AND the nested sweeps those jobs run — an outer fan-out splits
	// the budget and hands each job a share, so total concurrency never
	// exceeds this allowance. Zero means GOMAXPROCS; 1 forces serial
	// execution. Results are assembled in input order either way, so
	// the worker count never changes any study's numbers.
	Workers int

	predOnce sync.Once
	pred     *sensitivity.Predictor

	resultsOnce sync.Once
	results     []AppResult
	resultsErr  error
}

// NewEnv returns an Env with the default simulator and power model, a
// shared simulation memo, and a parallel study pool.
func NewEnv() *Env {
	return &Env{Sim: gpusim.Default(), Power: power.Default(), Cache: simcache.New()}
}

// Runner returns the Env's simulator as the sessions and studies consume
// it: memoized through Cache when one is installed, the raw model
// otherwise.
func (e *Env) Runner() gpusim.Runner {
	return simcache.For(e.Sim, e.Cache)
}

// Predictor returns the Env's trained sensitivity predictor, training it
// on first use exactly as DefaultPredictor does.
func (e *Env) Predictor() *sensitivity.Predictor {
	e.predOnce.Do(func() {
		p, err := sensitivity.Train(
			sensitivity.BuildConfigTrainingSetN(e.Runner(), workloads.AllKernels(), e.Workers))
		if err != nil {
			panic(err) // fixed known-good training set; see DefaultPredictor
		}
		e.pred = p
	})
	return e.pred
}

// session returns a session bound to this Env's models.
func (e *Env) session(p policy.Policy) *session.Session {
	return &session.Session{Sim: e.Runner(), Power: e.Power, Policy: p}
}

// harmonia returns a fresh Harmonia controller.
func (e *Env) harmonia() policy.Policy {
	return core.New(core.Options{Predictor: e.Predictor()})
}

// cgOnly returns a fresh coarse-grain-only controller.
func (e *Env) cgOnly() policy.Policy {
	return core.New(core.Options{Predictor: e.Predictor(), DisableFG: true})
}

// computeOnly returns a fresh compute-frequency-only controller.
func (e *Env) computeOnly() policy.Policy {
	return core.NewComputeOnly(e.Predictor())
}

// fanout splits the Env's worker budget across an outer fan-out of n
// jobs: workers is the batch.Map pool width and share is the sweep
// width each job may hand to nested oracles. Before budgets, every
// nested oracle claimed full GOMAXPROCS on top of the outer pool — W×
// oversubscription plus per-sweep pool churn, the suite's 1.17×
// parallel-scaling bug.
func (e *Env) fanout(n int) (workers, share int) {
	w, inner := batch.NewBudget(e.Workers).Split(n)
	return w, inner.Workers()
}

// oracleFor returns the exhaustive ED2 oracle for an application,
// sweeping with at most the given worker share (its slice of the Env's
// budget). The oracle sweeps through the Env's memo, so re-sweeping a
// kernel the suite has already profiled costs map lookups, not
// simulations.
func (e *Env) oracleFor(app *workloads.Application, workers int) policy.Policy {
	return oracle.New(e.Runner(), e.Power, app).WithWorkers(workers)
}

// kernelByName finds a catalog kernel.
func kernelByName(name string) *workloads.Kernel {
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}
