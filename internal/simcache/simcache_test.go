package simcache

import (
	"sync"
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/power"
	"harmonia/internal/workloads"
)

func testKernel(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %q not in catalog", name)
	return nil
}

func TestCachedBitIdenticalToUncached(t *testing.T) {
	m := gpusim.Default()
	c := New()
	k := testKernel(t, "Graph500.BottomStepUp")
	for _, cfg := range hw.ConfigSpace() {
		for iter := 0; iter < 4; iter++ {
			want := m.Run(k, iter, cfg)
			if got := c.Run(m, k, iter, cfg); got != want {
				t.Fatalf("cold cache diverged at iter %d cfg %v:\n got %+v\nwant %+v", iter, cfg, got, want)
			}
			if got := c.Run(m, k, iter, cfg); got != want {
				t.Fatalf("warm cache diverged at iter %d cfg %v:\n got %+v\nwant %+v", iter, cfg, got, want)
			}
		}
	}
}

func TestHitMissAccounting(t *testing.T) {
	m := gpusim.Default()
	c := New()
	k := testKernel(t, "LUD.Internal")
	cfgs := hw.ConfigSpace()[:10]
	for _, cfg := range cfgs {
		c.Run(m, k, 0, cfg)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != uint64(len(cfgs)) {
		t.Fatalf("after cold pass: hits=%d misses=%d, want 0/%d", hits, misses, len(cfgs))
	}
	for _, cfg := range cfgs {
		c.Run(m, k, 0, cfg)
	}
	if hits, misses := c.Stats(); hits != uint64(len(cfgs)) || misses != uint64(len(cfgs)) {
		t.Fatalf("after warm pass: hits=%d misses=%d, want %d/%d", hits, misses, len(cfgs), len(cfgs))
	}
	if n := c.Len(); n != len(cfgs) {
		t.Fatalf("Len() = %d, want %d", n, len(cfgs))
	}
}

func TestDistinctCalibrationsDoNotCollide(t *testing.T) {
	m1 := gpusim.Default()
	m2 := gpusim.Default()
	// Perturb one calibration constant: same kernel + config must land
	// in a different cache entry and reproduce the perturbed result.
	m2.MemLatency *= 2
	k := testKernel(t, "LUD.Internal")
	cfg := hw.MaxConfig()

	c := New()
	r1 := c.Run(m1, k, 0, cfg)
	r2 := c.Run(m2, k, 0, cfg)
	if r1 == r2 {
		t.Fatal("distinct calibrations returned identical results — likely a key collision")
	}
	if want := m2.Run(k, 0, cfg); r2 != want {
		t.Fatalf("perturbed model's cached result wrong:\n got %+v\nwant %+v", r2, want)
	}
	if hits, _ := c.Stats(); hits != 0 {
		t.Fatalf("second model hit the first model's entry (%d hits)", hits)
	}
}

func TestSameNameDifferentKernelsDoNotCollide(t *testing.T) {
	a := workloads.NewKernel("Twin").MustBuild()
	b := workloads.NewKernel("Twin").Compute(a.VALUPerWI*4, a.SALUPerWI).MustBuild()
	m := gpusim.Default()
	c := New()
	cfg := hw.MaxConfig()
	ra := c.Run(m, a, 0, cfg)
	rb := c.Run(m, b, 0, cfg)
	if wa := m.Run(a, 0, cfg); ra != wa {
		t.Fatalf("kernel a: got %+v want %+v", ra, wa)
	}
	if wb := m.Run(b, 0, cfg); rb != wb {
		t.Fatalf("kernel b collided with a: got %+v want %+v", rb, wb)
	}
}

func TestPhaseStableIterationsShareEntries(t *testing.T) {
	// LUD.Internal has no phase function: every iteration resolves to
	// the same Phase, so iterations beyond the first must hit.
	m := gpusim.Default()
	c := New()
	k := testKernel(t, "LUD.Internal")
	cfg := hw.MaxConfig()
	c.Run(m, k, 0, cfg)
	c.Run(m, k, 1, cfg)
	c.Run(m, k, 7, cfg)
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("phase-stable kernel: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// Graph500.BottomStepUp is phase-varying: different iterations must
	// not share entries (and must reproduce per-iteration results).
	k2 := testKernel(t, "Graph500.BottomStepUp")
	r0 := c.Run(m, k2, 0, cfg)
	r1 := c.Run(m, k2, 1, cfg)
	if r0 == r1 {
		t.Fatal("phase-varying iterations returned identical results")
	}
	if want := m.Run(k2, 1, cfg); r1 != want {
		t.Fatalf("iter 1: got %+v want %+v", r1, want)
	}
}

func TestConcurrentMixedSweep(t *testing.T) {
	// Many goroutines sweep overlapping (kernel, iter, config) triples
	// through one cache; run under -race. Every returned result must
	// equal the raw model's.
	m := gpusim.Default()
	c := New()
	kernels := workloads.AllKernels()[:6]
	space := hw.ConfigSpace()[:40]

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for pass := 0; pass < 2; pass++ {
				for ki, k := range kernels {
					for ci, cfg := range space {
						iter := (g + ki + ci) % 3
						got := c.Run(m, k, iter, cfg)
						if want := m.Run(k, iter, cfg); got != want {
							select {
							case errs <- k.Name:
							default:
							}
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if name, bad := <-errs; bad {
		t.Fatalf("concurrent cached result diverged for kernel %s", name)
	}
	hits, misses := c.Stats()
	if hits+misses == 0 || misses == 0 {
		t.Fatalf("implausible stats: hits=%d misses=%d", hits, misses)
	}
}

func TestForNilCacheReturnsModel(t *testing.T) {
	m := gpusim.Default()
	if r := For(m, nil); r != gpusim.Runner(m) {
		t.Fatalf("For(m, nil) = %T, want the model itself", r)
	}
	c := New()
	cached, ok := For(m, c).(Cached)
	if !ok || cached.Model != m || cached.Cache != c {
		t.Fatalf("For(m, c) = %#v, want Cached{m, c}", cached)
	}
	// Cached with a nil cache degrades to the raw model.
	k := testKernel(t, "LUD.Internal")
	raw := Cached{Model: m}
	if got, want := raw.Run(k, 0, hw.MaxConfig()), m.Run(k, 0, hw.MaxConfig()); got != want {
		t.Fatalf("nil-cache Cached diverged: %+v vs %+v", got, want)
	}
}

func TestDecisionMemoRoundTrip(t *testing.T) {
	m := gpusim.Default()
	pp := power.DefaultParams()
	k := testKernel(t, "LUD.Internal")
	c := New()

	if _, ok := c.Decision(m, pp, k, 0, 0, 448); ok {
		t.Fatal("empty cache returned a decision")
	}
	want := hw.MaxConfig()
	c.StoreDecision(m, pp, k, 0, 0, 448, want)
	got, ok := c.Decision(m, pp, k, 0, 0, 448)
	if !ok || got != want {
		t.Fatalf("Decision = %v, %v; want %v, true", got, ok, want)
	}
	// Phase-stable kernel: a later iteration resolves to the same phase
	// and therefore the same entry.
	if got, ok := c.Decision(m, pp, k, 5, 0, 448); !ok || got != want {
		t.Fatalf("iter 5 Decision = %v, %v; want shared entry", got, ok)
	}
	if hits, misses := c.DecisionStats(); hits != 2 || misses != 1 {
		t.Fatalf("DecisionStats = %d/%d, want 2 hits, 1 miss", hits, misses)
	}
}

func TestDecisionMemoKeySeparation(t *testing.T) {
	m := gpusim.Default()
	pp := power.DefaultParams()
	k := testKernel(t, "LUD.Internal")
	c := New()
	c.StoreDecision(m, pp, k, 0, 0, 448, hw.MaxConfig())

	// A different objective, space size, power calibration, or simulator
	// calibration must not see the entry.
	if _, ok := c.Decision(m, pp, k, 0, 1, 448); ok {
		t.Error("different objective shared a decision")
	}
	if _, ok := c.Decision(m, pp, k, 0, 0, 447); ok {
		t.Error("different space size shared a decision")
	}
	pp2 := pp
	pp2.OtherW *= 2
	if _, ok := c.Decision(m, pp2, k, 0, 0, 448); ok {
		t.Error("different power calibration shared a decision")
	}
	m2 := gpusim.Default()
	m2.MemLatency *= 2
	if _, ok := c.Decision(m2, pp, k, 0, 0, 448); ok {
		t.Error("different simulator calibration shared a decision")
	}
	// Phase-varying kernel: iterations in different phases must not
	// share decisions.
	kv := testKernel(t, "Graph500.BottomStepUp")
	c.StoreDecision(m, pp, kv, 0, 0, 448, hw.MaxConfig())
	if _, ok := c.Decision(m, pp, kv, 1, 0, 448); ok {
		t.Error("phase-varying iterations shared a decision")
	}
}

// TestPreparedBitIdenticalToRun: the prebuilt-key read path must return
// exactly what Run returns — same entries, same bits — hitting the same
// memo slots.
func TestPreparedBitIdenticalToRun(t *testing.T) {
	m := gpusim.Default()
	c := New()
	k := testKernel(t, "Graph500.BottomStepUp")
	for iter := 0; iter < 4; iter++ {
		eval := Cached{Model: m, Cache: c}.Prepare(k, iter)
		for _, cfg := range hw.ConfigSpace() {
			got := eval(cfg)
			want := c.Run(m, k, iter, cfg) // must be a hit on the same slot
			if got != want {
				t.Fatalf("iter %d cfg %v: prepared path diverged", iter, cfg)
			}
		}
	}
	hits, misses := c.Stats()
	space := len(hw.ConfigSpace())
	// Graph500.BottomStepUp's phases repeat, so later iterations reuse
	// earlier entries; at minimum the paired Run calls must all hit.
	if int(misses) > 4*space || int(hits) < 4*space {
		t.Fatalf("prepared path missed the shared memo: %d hits, %d misses", hits, misses)
	}
}

// TestPreparedNilCacheDegradesToModel mirrors For's nil-cache contract.
func TestPreparedNilCacheDegradesToModel(t *testing.T) {
	m := gpusim.Default()
	k := testKernel(t, "LUD.Internal")
	eval := Cached{Model: m}.Prepare(k, 0)
	cfg := hw.MaxConfig()
	if got, want := eval(cfg), m.Run(k, 0, cfg); got != want {
		t.Fatalf("nil-cache prepared path diverged")
	}
}

// TestDecisionShardContention is the regression test for the decision
// memo's single-RWMutex bottleneck: many goroutines hammering the hit
// path across distinct kernels/objectives must spread over the shard
// array rather than serialize on one lock. Run under -race, which turns
// any striping mistake into a detector report; the spread assertion
// guards against a future change routing every key to one shard.
func TestDecisionShardContention(t *testing.T) {
	m := gpusim.Default()
	pp := power.DefaultParams()
	c := New()
	kernels := workloads.AllKernels()
	for _, k := range kernels {
		for obj := 0; obj < 3; obj++ {
			c.StoreDecision(m, pp, k, 0, obj, 448, hw.MaxConfig())
		}
	}
	used := 0
	for i := range c.decShards {
		c.decShards[i].mu.RLock()
		if len(c.decShards[i].m) > 0 {
			used++
		}
		c.decShards[i].mu.RUnlock()
	}
	if used < shardCount/4 {
		t.Fatalf("decision keys landed on %d/%d shards; striping collapsed", used, shardCount)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, k := range kernels {
					obj := (g + i) % 3
					if cfg, ok := c.Decision(m, pp, k, 0, obj, 448); !ok || cfg != hw.MaxConfig() {
						panic("decision lost under concurrent readers")
					}
				}
				// Concurrent writers on other objectives keep the
				// write path in the race mix.
				c.StoreDecision(m, pp, kernels[g%len(kernels)], 0, 3+g, 448, hw.MinConfig())
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkDecisionHitParallel measures decision-memo hit throughput
// under parallelism — the path every repeat-invocation sweep takes.
// Before striping this serialized on one RWMutex.
func BenchmarkDecisionHitParallel(b *testing.B) {
	m := gpusim.Default()
	pp := power.DefaultParams()
	c := New()
	kernels := workloads.AllKernels()
	for _, k := range kernels {
		c.StoreDecision(m, pp, k, 0, 0, 448, hw.MaxConfig())
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := kernels[i%len(kernels)]
			i++
			if _, ok := c.Decision(m, pp, k, 0, 0, 448); !ok {
				b.Fatal("miss on warmed memo")
			}
		}
	})
}
