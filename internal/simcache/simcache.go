// Package simcache memoizes the interval simulator. The paper's entire
// methodology is exhaustive re-simulation: sensitivity training sweeps
// every kernel across all ~448 hardware configurations, the Section 7
// oracle re-sweeps the space for every kernel invocation, and every
// ablation replays the same suite — so the same (kernel, iteration,
// configuration) triples are evaluated over and over. The simulator is
// pure, which makes its results perfectly memoizable: a cached run is
// bit-identical to an uncached one.
//
// The cache key covers exactly what gpusim.(*Model).Run reads — the
// model's calibration constants, every numeric field of the kernel
// descriptor, the phase resolved for the iteration, and the hardware
// configuration — so distinct Model calibrations never collide, two
// kernels that happen to share a name never collide, and iterations that
// resolve to the same phase share one entry (phase-stable kernels hit
// the cache after a single iteration).
//
// The store is sharded to keep concurrent sweeps from serializing on one
// lock: each shard has its own RWMutex-guarded map, and the shard is
// picked by an FNV-1a hash of the kernel name, iteration phase, and
// configuration.
//
// The cache memoizes at two granularities: individual simulation
// results (Run), and whole sweep decisions (Decision/StoreDecision) —
// the argmin configuration an oracle's exhaustive search produces for a
// kernel invocation. The decision level is what makes repeat-invocation
// sweeps cheap: one lookup instead of re-scoring the entire
// configuration space.
package simcache

import (
	"sync"
	"sync/atomic"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/power"
	"harmonia/internal/workloads"
)

// shardCount is a power of two so shard selection is a mask. 64 shards
// keep lock contention negligible at sweep-pool concurrency.
const shardCount = 64

// kernelKey is the comparable projection of a kernel descriptor: every
// field gpusim.(*Model).Run reads, with the per-iteration phase function
// resolved to its Phase value (Phase is three float64s and comparable).
type kernelKey struct {
	name         string
	wgSize, wgs  int
	valu, salu   float64
	fetch, write float64
	bpf, bpw     float64
	vgprs, sgprs int
	lds          int
	div, l2hit   float64
	l2thrash     float64
	rowhit, mlp  float64
	serial       float64
	launch       float64
	phase        workloads.Phase
}

// key is one memo entry's identity: model calibration, kernel
// projection, and hardware configuration. gpusim.Model is a struct of
// calibration floats, so embedding its value keeps two differently
// calibrated simulators from ever sharing entries.
type key struct {
	model  gpusim.Model
	kernel kernelKey
	cfg    hw.Config
}

// kernelKeyOf resolves the iteration to its phase and projects the
// kernel onto the comparable key form.
func kernelKeyOf(k *workloads.Kernel, iter int) kernelKey {
	phase := k.PhaseFor(iter)
	return kernelKey{
		name:   k.Name,
		wgSize: k.WorkgroupSize, wgs: k.Workgroups,
		valu: k.VALUPerWI, salu: k.SALUPerWI,
		fetch: k.FetchPerWI, write: k.WritePerWI,
		bpf: k.BytesPerFetch, bpw: k.BytesPerWrite,
		vgprs: k.VGPRs, sgprs: k.SGPRs, lds: k.LDSBytes,
		div: k.DivergenceFor(phase), l2hit: k.L2Hit,
		l2thrash: k.L2Thrash,
		rowhit:   k.RowHit, mlp: k.MLPPerWave,
		serial: k.SerialCycles,
		launch: k.LaunchOverhead,
		phase:  phase,
	}
}

func keyOf(m *gpusim.Model, k *workloads.Kernel, iter int, cfg hw.Config) key {
	return key{model: *m, kernel: kernelKeyOf(k, iter), cfg: cfg}
}

// shard is one lock-striped slice of the store.
type shard struct {
	mu sync.RWMutex
	m  map[key]gpusim.Result
}

// decShard is one lock-striped slice of the decision memo. Decisions
// were originally a single RWMutex-guarded map while results were
// 64-way striped — every sweep in every worker funneled through one
// lock word, and under the race detector (which serializes RLock
// bookkeeping) the hit path stopped scaling entirely.
type decShard struct {
	mu sync.RWMutex
	m  map[decisionKey]hw.Config
}

// decisionKey identifies one exhaustive-sweep argmin: the sweep's
// output is a pure function of the simulator calibration, the power
// calibration, the kernel-plus-phase projection, the objective, and the
// configuration space swept. The space is hw.ConfigSpace() for every
// oracle; its length is kept as a guard against a future variant
// sweeping a subset.
type decisionKey struct {
	model     gpusim.Model
	pow       power.Params
	kernel    kernelKey
	objective int
	spaceLen  int
}

// Cache is a sharded, concurrency-safe memo of simulation results. The
// zero value is not usable; construct with New. A Cache may back any
// number of Cached runners over any number of models simultaneously.
//
// Beyond per-invocation results the cache holds a second, coarser level:
// memoized sweep decisions (the argmin configuration of an exhaustive
// oracle sweep). Per-result memoization cannot beat the analytic
// interval model on wall-clock — a model evaluation costs about as much
// as a map probe — but a decision entry replaces an entire ~450-point
// sweep (simulation, power rails, and pool scheduling) with one lookup,
// which is where the repeat-invocation speedup comes from.
type Cache struct {
	shards [shardCount]shard

	hits   atomic.Uint64
	misses atomic.Uint64

	decShards [shardCount]decShard
	decHits   atomic.Uint64
	decMisses atomic.Uint64
}

// New returns an empty cache.
func New() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[key]gpusim.Result)
	}
	for i := range c.decShards {
		c.decShards[i].m = make(map[decisionKey]hw.Config)
	}
	return c
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString folds s into an FNV-1a hash state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// shardFor hashes the cheap, high-entropy parts of the key (kernel name,
// phase work scale, configuration) with FNV-1a to pick a shard.
func (c *Cache) shardFor(k *key) *shard {
	h := fnvString(fnvOffset64, k.kernel.name)
	h = (h ^ uint64(k.cfg.Compute.CUs)) * fnvPrime64
	h = (h ^ uint64(k.cfg.Compute.Freq)) * fnvPrime64
	h = (h ^ uint64(k.cfg.Memory.BusFreq)) * fnvPrime64
	h = (h ^ uint64(k.kernel.phase.WorkScale*1024)) * fnvPrime64
	return &c.shards[h&(shardCount-1)]
}

// decShardFor picks a decision shard from the kernel name, resolved
// phase, and objective — the parts of a decision key that vary across
// concurrent sweeps sharing one cache.
func (c *Cache) decShardFor(dk *decisionKey) *decShard {
	h := fnvString(fnvOffset64, dk.kernel.name)
	h = (h ^ uint64(dk.objective)) * fnvPrime64
	h = (h ^ uint64(dk.kernel.phase.WorkScale*1024)) * fnvPrime64
	h = (h ^ uint64(dk.kernel.phase.FetchScale*1024)) * fnvPrime64
	return &c.decShards[h&(shardCount-1)]
}

// Run returns the memoized result of m.Run(k, iter, cfg), simulating
// and storing it on a miss. Results are bit-identical to the uncached
// call: on a miss the model's own Run supplies the stored value.
func (c *Cache) Run(m *gpusim.Model, k *workloads.Kernel, iter int, cfg hw.Config) gpusim.Result {
	r, _ := c.RunHit(m, k, iter, cfg)
	return r
}

// RunHit is Run, additionally reporting whether the result came from
// the memo (true) or a fresh simulation (false). The result value is
// identical either way; the flag exists so the tracing layer can
// annotate simulate spans with cache behaviour without touching it.
func (c *Cache) RunHit(m *gpusim.Model, k *workloads.Kernel, iter int, cfg hw.Config) (gpusim.Result, bool) {
	ky := keyOf(m, k, iter, cfg)
	sh := c.shardFor(&ky)
	sh.mu.RLock()
	r, ok := sh.m[ky]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return r, true
	}
	c.misses.Add(1)
	r = m.Run(k, iter, cfg)
	sh.mu.Lock()
	sh.m[ky] = r
	sh.mu.Unlock()
	return r, false
}

// Prepare returns a single-invocation evaluator for m's kernel k at
// iteration iter whose results are bit-identical to Run's. The memo key
// is built once — per probe only the configuration field changes — so
// the sweep-read path does no key projection, no phase resolution, and
// no allocation; misses fall through to the model's own hoisted
// Invariants. The evaluator is safe for concurrent sweep workers: each
// probe works on its own stack copy of the key.
func (c *Cache) Prepare(m *gpusim.Model, k *workloads.Kernel, iter int) func(cfg hw.Config) gpusim.Result {
	base := keyOf(m, k, iter, hw.Config{})
	run := m.Prepare(k, iter)
	return func(cfg hw.Config) gpusim.Result {
		ky := base
		ky.cfg = cfg
		sh := c.shardFor(&ky)
		sh.mu.RLock()
		r, ok := sh.m[ky]
		sh.mu.RUnlock()
		if ok {
			c.hits.Add(1)
			return r
		}
		c.misses.Add(1)
		r = run(cfg)
		sh.mu.Lock()
		sh.m[ky] = r
		sh.mu.Unlock()
		return r
	}
}

// Decision returns the memoized sweep argmin for the given simulator
// and power calibrations, kernel invocation, objective, and space size,
// if one has been stored. Iterations resolving to the same phase share
// an entry, so a phase-stable kernel pays for one sweep across all its
// invocations — and across every oracle sharing the cache.
func (c *Cache) Decision(m *gpusim.Model, pow power.Params, k *workloads.Kernel, iter, objective, spaceLen int) (hw.Config, bool) {
	dk := decisionKey{
		model: *m, pow: pow, kernel: kernelKeyOf(k, iter),
		objective: objective, spaceLen: spaceLen,
	}
	sh := c.decShardFor(&dk)
	sh.mu.RLock()
	cfg, ok := sh.m[dk]
	sh.mu.RUnlock()
	if ok {
		c.decHits.Add(1)
	} else {
		c.decMisses.Add(1)
	}
	return cfg, ok
}

// StoreDecision records a sweep argmin under the same key Decision
// reads. The sweep that produced cfg must be deterministic (the sweep
// layer breaks ties toward the earliest index), so concurrent callers
// racing to store the same key write the same value.
func (c *Cache) StoreDecision(m *gpusim.Model, pow power.Params, k *workloads.Kernel, iter, objective, spaceLen int, cfg hw.Config) {
	dk := decisionKey{
		model: *m, pow: pow, kernel: kernelKeyOf(k, iter),
		objective: objective, spaceLen: spaceLen,
	}
	sh := c.decShardFor(&dk)
	sh.mu.Lock()
	sh.m[dk] = cfg
	sh.mu.Unlock()
}

// Stats reports the lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// DecisionStats reports the lifetime decision-memo hit and miss counts.
func (c *Cache) DecisionStats() (hits, misses uint64) {
	return c.decHits.Load(), c.decMisses.Load()
}

// Len returns the number of memoized results.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}

// Cached binds a model to a cache as a gpusim.Runner, the form the
// session, oracle, and sensitivity layers consume. A nil cache degrades
// to the raw model.
type Cached struct {
	Model *gpusim.Model
	Cache *Cache
}

var _ gpusim.Runner = Cached{}

// Run implements gpusim.Runner.
func (c Cached) Run(k *workloads.Kernel, iter int, cfg hw.Config) gpusim.Result {
	if c.Cache == nil {
		return c.Model.Run(k, iter, cfg)
	}
	return c.Cache.Run(c.Model, k, iter, cfg)
}

// RunHit is Run plus a memo-hit flag (always false without a cache);
// results are bit-identical to Run's.
func (c Cached) RunHit(k *workloads.Kernel, iter int, cfg hw.Config) (gpusim.Result, bool) {
	if c.Cache == nil {
		return c.Model.Run(k, iter, cfg), false
	}
	return c.Cache.RunHit(c.Model, k, iter, cfg)
}

// Prepare implements gpusim.PreparedRunner: the returned evaluator
// probes the memo with a prebuilt key and falls through to the model's
// hoisted Invariants on a miss, bit-identical to Run either way.
func (c Cached) Prepare(k *workloads.Kernel, iter int) func(cfg hw.Config) gpusim.Result {
	if c.Cache == nil {
		return c.Model.Prepare(k, iter)
	}
	return c.Cache.Prepare(c.Model, k, iter)
}

var _ gpusim.PreparedRunner = Cached{}

// For returns a runner that memoizes m through cache; a nil cache
// returns m itself, so callers can thread an optional cache without
// branching.
func For(m *gpusim.Model, cache *Cache) gpusim.Runner {
	if cache == nil {
		return m
	}
	return Cached{Model: m, Cache: cache}
}
