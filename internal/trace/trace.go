// Package trace is a stdlib-only hierarchical span recorder for run
// observability: every run, kernel boundary, controller decision, and
// oracle sweep can open a span, attach attributes and point events, and
// export the resulting tree as native JSON or Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// The recorder is built around two guarantees the rest of the repo
// depends on:
//
//   - Inertness. Tracing is pure observation: attaching a recorder to a
//     run never changes a single computed value, so a traced run's
//     Report is bit-identical to an untraced one. The nil-recorder fast
//     path makes the disabled case free — every method is safe on a nil
//     *Recorder or nil *Span and allocates nothing.
//
//   - Determinism. Span IDs are drawn from a SplitMix64 stream seeded
//     by the run seed, timestamps come from an injectable monotonic
//     clock, and attributes serialize in insertion order, so two
//     single-threaded runs with the same seed (and the same injected
//     clock) produce byte-identical span trees. The only nondeterminism
//     in the package is the default wall clock, which callers replace
//     with WithClock when they need reproducible timelines.
//
// Concurrent span creation (e.g. internal/batch fanning cells out over
// a worker pool) is safe — one mutex guards the recorder — but start
// order, and therefore ID assignment, then follows scheduling; the
// byte-identical guarantee holds for single-goroutine recorders.
package trace

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation. Values are strings so that span
// trees serialize deterministically; the typed Span helpers (Int,
// Float, Bool) format through strconv with exact round-trip forms.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Int64Attr formats v as an Attr.
func Int64Attr(key string, v int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(v, 10)}
}

// FloatAttr formats v as an Attr with the shortest exact representation.
func FloatAttr(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Event is a point-in-time annotation within a span.
type Event struct {
	Name  string
	At    time.Duration // offset from the recorder's epoch
	Attrs []Attr
}

// SpanData is the immutable export form of one span. Times are offsets
// from the recorder's epoch (its construction instant under the default
// clock, or whatever the injected clock measures from).
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for root spans
	Name   string
	Start  time.Duration
	End    time.Duration
	Ended  bool
	Attrs  []Attr
	Events []Event
}

// Span is one live interval in the recorder's tree. All methods are
// nil-safe no-ops, so call sites never branch on whether tracing is
// enabled.
type Span struct {
	rec *Recorder
	d   *SpanData
}

// Recorder collects spans. The zero value is not usable; construct with
// New. A nil *Recorder is the disabled recorder: Start returns a nil
// span and everything downstream no-ops without allocating.
type Recorder struct {
	// mu guards idState, spans, ambient, and every span's data.
	mu      sync.Mutex
	idState uint64
	traceID string
	attrs   []Attr
	clock   func() time.Duration
	spans   []*SpanData
	ambient *Span
}

// Option configures a Recorder at construction.
type Option func(*Recorder)

// WithClock injects the monotonic clock: a function returning the
// offset of "now" from the recorder's epoch. Deterministic replays and
// the byte-identical span-tree tests inject counters here; the default
// is wall time measured from New.
func WithClock(fn func() time.Duration) Option {
	return func(r *Recorder) { r.clock = fn }
}

// WithTraceID overrides the derived trace ID — the serve layer uses
// this to honor an inbound W3C traceparent so request and run spans
// join one distributed trace.
func WithTraceID(id string) Option {
	return func(r *Recorder) {
		if id != "" {
			r.traceID = id
		}
	}
}

// WithAttrs attaches trace-level attributes (request IDs, run IDs),
// exported in the snapshot header.
func WithAttrs(attrs ...Attr) Option {
	return func(r *Recorder) { r.attrs = append(r.attrs, attrs...) }
}

// New returns a recorder whose span IDs are the SplitMix64 stream
// seeded by seed: same seed, same single-goroutine span sequence, same
// IDs. The default trace ID is derived from the seed's first two
// outputs.
func New(seed uint64, opts ...Option) *Recorder {
	r := &Recorder{idState: seed}
	// Derive the trace ID before any span draws from the stream, then
	// re-seed so span IDs are independent of whether the trace ID was
	// overridden.
	hi, lo := splitmix64(&r.idState), splitmix64(&r.idState)
	r.traceID = formatID(hi) + formatID(lo)
	r.idState = seed ^ 0xa5a5a5a5a5a5a5a5
	for _, opt := range opts {
		opt(r)
	}
	if r.clock == nil {
		r.clock = wallClock()
	}
	return r
}

// wallClock is the default clock: wall time elapsed since the recorder
// was constructed. It is the package's single sanctioned source of
// nondeterminism; everything else in a span tree is a pure function of
// the seed and the call sequence.
func wallClock() func() time.Duration {
	//lint:ignore nondeterminism the default clock is wall time by design; determinism tests inject a virtual clock via WithClock
	start := time.Now()
	//lint:ignore nondeterminism see above — the injectable clock's default only
	return func() time.Duration { return time.Since(start) }
}

// splitmix64 advances the state and returns the next output
// (Steele/Lea/Flood's SplitMix64, the repo's standard seed-expansion
// primitive — see internal/faults).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func formatID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// TraceID returns the recorder's trace identifier (32 lowercase hex
// digits, W3C trace-id shaped). Empty for a nil recorder.
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// now reads the clock under the lock the caller already holds.
func (r *Recorder) now() time.Duration { return r.clock() }

// Start opens a span under parent (nil parent means a root span) and
// returns it. On a nil recorder it returns nil, and every operation on
// the nil span is a free no-op.
func (r *Recorder) Start(parent *Span, name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := &SpanData{
		ID:    splitmix64(&r.idState),
		Name:  name,
		Start: r.now(),
	}
	if parent != nil && parent.d != nil {
		d.Parent = parent.d.ID
	}
	r.spans = append(r.spans, d)
	return &Span{rec: r, d: d}
}

// SetAmbient installs sp as the implicit parent StartAmbient uses and
// returns the previous ambient span. The session layer scopes it around
// policy callbacks so controller decision spans nest under the right
// kernel span without the policy interface carrying a span parameter.
func (r *Recorder) SetAmbient(sp *Span) (prev *Span) {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev = r.ambient
	r.ambient = sp
	return prev
}

// StartAmbient opens a span under the current ambient parent.
func (r *Recorder) StartAmbient(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	parent := r.ambient
	r.mu.Unlock()
	return r.Start(parent, name)
}

// Len returns the number of spans started so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Snapshot copies the recorder's state for export: trace header plus
// every span in start order. Safe to call while spans are still open
// (their Ended flag is false and End holds the snapshot instant).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := Snapshot{
		TraceID: r.traceID,
		Attrs:   append([]Attr(nil), r.attrs...),
		Spans:   make([]SpanData, len(r.spans)),
	}
	for i, d := range r.spans {
		c := *d
		c.Attrs = append([]Attr(nil), d.Attrs...)
		c.Events = append([]Event(nil), d.Events...)
		if !c.Ended {
			c.End = now
		}
		out.Spans[i] = c
	}
	return out
}

// Snapshot is an exported copy of a recorder's span tree.
type Snapshot struct {
	TraceID string
	Attrs   []Attr
	Spans   []SpanData
}

// Attr appends a string attribute and returns the span for chaining.
func (s *Span) Attr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.rec.mu.Lock()
	s.d.Attrs = append(s.d.Attrs, Attr{Key: key, Value: value})
	s.rec.mu.Unlock()
	return s
}

// Int appends an integer attribute.
func (s *Span) Int(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatInt(v, 10))
}

// Float appends a float attribute with the shortest exact form.
func (s *Span) Float(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// Bool appends a boolean attribute.
func (s *Span) Bool(key string, v bool) *Span {
	if s == nil {
		return nil
	}
	return s.Attr(key, strconv.FormatBool(v))
}

// Event records a point event at the current clock reading.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	s.d.Events = append(s.d.Events, Event{Name: name, At: s.rec.now(), Attrs: attrs})
	s.rec.mu.Unlock()
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.Start(s, name)
}

// End closes the span. Idempotent: the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	if !s.d.Ended {
		s.d.Ended = true
		s.d.End = s.rec.now()
	}
	s.rec.mu.Unlock()
}

// ID returns the span's identifier as 16 lowercase hex digits, or ""
// for a nil span.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return formatID(s.d.ID)
}

// Traceable is implemented by policies (the Harmonia controller, the
// oracle) that can emit decision spans. The session layer attaches its
// recorder to the policy at run start when tracing is enabled; untraced
// runs never call it.
type Traceable interface {
	AttachTracer(*Recorder)
}

type ctxKey struct{}

// NewContext returns ctx carrying sp, for layers (internal/batch) whose
// call chain crosses API boundaries that don't speak spans.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>") and returns
// the trace and parent-span IDs. ok is false for anything malformed or
// for the all-zero trace ID the spec forbids.
func ParseTraceparent(header string) (traceID, parentID string, ok bool) {
	if len(header) != 55 || header[2] != '-' || header[35] != '-' || header[52] != '-' {
		return "", "", false
	}
	version, trace, parent, flags := header[0:2], header[3:35], header[36:52], header[53:55]
	for _, part := range []string{version, trace, parent, flags} {
		for i := 0; i < len(part); i++ {
			c := part[i]
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				return "", "", false
			}
		}
	}
	if version == "ff" || allZero(trace) || allZero(parent) {
		return "", "", false
	}
	return trace, parent, true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
