package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// counterClock returns an injectable clock ticking 1ms per reading —
// the deterministic stand-in the byte-identical tests rely on.
func counterClock() func() time.Duration {
	var ticks time.Duration
	return func() time.Duration {
		ticks += time.Millisecond
		return ticks
	}
}

// buildTree records a representative span tree: root with attrs and an
// event, two children, one left open.
func buildTree(r *Recorder) {
	root := r.Start(nil, "run")
	root.Attr("app", "Graph500").Int("iterations", 3).Float("ed2", 1.25).Bool("ok", true)
	root.Event("checkpoint", Int64Attr("kernel", 2))
	k1 := root.Child("kernel")
	k1.Attr("name", "bfs")
	k1.End()
	k2 := root.Child("kernel")
	k2.Attr("name", "sssp")
	k2.End()
	root.End()
	open := r.Start(nil, "dangling")
	open.Attr("state", "open")
	// deliberately not ended: Snapshot must handle open spans.
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.Start(nil, "x")
	if sp != nil {
		t.Fatal("nil recorder returned a live span")
	}
	// Every span operation must be a safe no-op on the nil span.
	sp.Attr("k", "v").Int("i", 1).Float("f", 2).Bool("b", true)
	sp.Event("e")
	sp.End()
	if got := sp.Child("c"); got != nil {
		t.Fatal("nil span spawned a child")
	}
	if sp.ID() != "" {
		t.Fatal("nil span has an ID")
	}
	if r.TraceID() != "" || r.Len() != 0 {
		t.Fatal("nil recorder reports state")
	}
	if prev := r.SetAmbient(nil); prev != nil {
		t.Fatal("nil recorder has an ambient span")
	}
	if r.StartAmbient("x") != nil {
		t.Fatal("nil recorder started an ambient span")
	}
	snap := r.Snapshot()
	if snap.TraceID != "" || len(snap.Spans) != 0 {
		t.Fatal("nil recorder snapshot is not empty")
	}
}

// TestNilSpanZeroAlloc pins the disabled-tracing cost: operating on the
// nil span allocates nothing. (Call sites guard allocating *argument*
// expressions with `if sp != nil`; this test covers the method side.)
func TestNilSpanZeroAlloc(t *testing.T) {
	var sp *Span
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		child := r.Start(nil, "x")
		child.Attr("k", "v").Int("i", 42).Float("f", 3.14)
		child.Event("e")
		child.End()
		sp.Child("c").End()
	})
	if allocs != 0 {
		t.Fatalf("nil-path tracing allocated %v times per op, want 0", allocs)
	}
}

func TestSameSeedSpanTreesByteIdentical(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		r := New(42, WithClock(counterClock()), WithAttrs(Attr{Key: "run_id", Value: "run-000001"}))
		buildTree(r)
		if err := r.Snapshot().WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("same-seed span trees differ:\n%s\n---\n%s", bufs[0].String(), bufs[1].String())
	}

	// Different seeds must diverge (IDs come from the seed stream).
	other := New(43, WithClock(counterClock()))
	if other.TraceID() == New(42).TraceID() {
		t.Fatal("different seeds derived the same trace ID")
	}
}

func TestChromeExportMatchesNativeTree(t *testing.T) {
	var a, b bytes.Buffer
	for _, w := range []*bytes.Buffer{&a, &b} {
		r := New(7, WithClock(counterClock()))
		buildTree(r)
		if err := r.Snapshot().WriteChrome(w); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed chrome exports differ")
	}
}

func TestSpanIDsSeedDeterministic(t *testing.T) {
	r1, r2 := New(99), New(99)
	s1, s2 := r1.Start(nil, "a"), r2.Start(nil, "a")
	if s1.ID() != s2.ID() {
		t.Fatalf("same seed, different first span IDs: %s vs %s", s1.ID(), s2.ID())
	}
	if len(s1.ID()) != 16 {
		t.Fatalf("span ID %q is not 16 hex digits", s1.ID())
	}
	if len(r1.TraceID()) != 32 {
		t.Fatalf("trace ID %q is not 32 hex digits", r1.TraceID())
	}
}

func TestAmbientParentScoping(t *testing.T) {
	r := New(1)
	outer := r.Start(nil, "outer")
	prev := r.SetAmbient(outer)
	if prev != nil {
		t.Fatal("fresh recorder had an ambient span")
	}
	child := r.StartAmbient("decision")
	inner := r.SetAmbient(child)
	if inner != outer {
		t.Fatal("SetAmbient did not return the previous ambient span")
	}
	grandchild := r.StartAmbient("sweep")
	r.SetAmbient(prev)

	snap := r.Snapshot()
	byName := map[string]SpanData{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	if byName["decision"].Parent != byName["outer"].ID {
		t.Fatal("ambient child not parented under the ambient span")
	}
	if byName["sweep"].Parent != byName["decision"].ID {
		t.Fatal("nested ambient scope not honored")
	}
	if r.StartAmbient("root") == nil || grandchild == nil {
		t.Fatal("ambient starts failed")
	}
	if rootish := r.Snapshot().Spans[len(r.Snapshot().Spans)-1]; rootish.Parent != 0 {
		t.Fatal("after restoring a nil ambient, new ambient spans should be roots")
	}
}

func TestSnapshotWhileOpen(t *testing.T) {
	clock := counterClock()
	r := New(5, WithClock(clock))
	sp := r.Start(nil, "open")
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(snap.Spans))
	}
	if snap.Spans[0].Ended {
		t.Fatal("open span exported as ended")
	}
	if snap.Spans[0].End <= snap.Spans[0].Start {
		t.Fatal("open span's End was not stamped with the snapshot instant")
	}
	sp.End()
	end1 := r.Snapshot().Spans[0].End
	sp.End() // idempotent: second End must not move the timestamp
	if end2 := r.Snapshot().Spans[0].End; end2 != end1 {
		t.Fatalf("second End moved the close time: %v -> %v", end1, end2)
	}
}

func TestParseTraceparent(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tid, pid, ok := ParseTraceparent(valid)
	if !ok || tid != "4bf92f3577b34da6a3ce929d0e0e4736" || pid != "00f067aa0ba902b7" {
		t.Fatalf("valid header rejected: %q %q %v", tid, pid, ok)
	}
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // truncated
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad separator
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero parent ID
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",   // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // trailing junk
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("malformed header accepted: %q", h)
		}
	}
}

func TestContextCarriesSpan(t *testing.T) {
	r := New(3)
	sp := r.Start(nil, "x")
	ctx := NewContext(t.Context(), sp)
	if FromContext(ctx) != sp {
		t.Fatal("span did not round-trip through context")
	}
	if FromContext(t.Context()) != nil {
		t.Fatal("empty context yielded a span")
	}
	if got := NewContext(t.Context(), nil); FromContext(got) != nil {
		t.Fatal("nil span stored in context")
	}
}

// TestChromeSchema pins the Chrome trace-event schema: field names and
// shapes Perfetto depends on must not drift.
func TestChromeSchema(t *testing.T) {
	r := New(11, WithClock(counterClock()), WithAttrs(Attr{Key: "run_id", Value: "run-000042"}))
	buildTree(r)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		DisplayUnit string                       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sawMeta, sawComplete, sawInstant bool
	for _, ev := range doc.TraceEvents {
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatalf("event without ph: %v", err)
		}
		for _, key := range []string{"name", "ts", "pid", "tid"} {
			if _, present := ev[key]; !present {
				t.Fatalf("ph %q event missing %q", ph, key)
			}
		}
		switch ph {
		case "M":
			sawMeta = true
			var args map[string]string
			if err := json.Unmarshal(ev["args"], &args); err != nil {
				t.Fatal(err)
			}
			if args["trace_id"] == "" || args["run_id"] != "run-000042" {
				t.Fatalf("metadata args incomplete: %v", args)
			}
		case "X":
			sawComplete = true
			if _, present := ev["dur"]; !present {
				t.Fatal("complete event missing dur")
			}
			var args map[string]string
			if err := json.Unmarshal(ev["args"], &args); err != nil {
				t.Fatal(err)
			}
			if len(args["span_id"]) != 16 {
				t.Fatalf("complete event span_id %q is not 16 hex digits", args["span_id"])
			}
		case "i":
			sawInstant = true
			var scope string
			if err := json.Unmarshal(ev["s"], &scope); err != nil || scope != "t" {
				t.Fatalf("instant event scope = %q, want t", scope)
			}
		default:
			t.Fatalf("unexpected ph %q", ph)
		}
	}
	if !sawMeta || !sawComplete || !sawInstant {
		t.Fatalf("missing event kinds: M=%v X=%v i=%v", sawMeta, sawComplete, sawInstant)
	}
}
