// Span-tree serialization: the native JSON schema served by
// GET /v1/runs/{id}/spans and the Chrome trace-event form
// (?format=chrome) that loads directly into Perfetto or
// chrome://tracing. Both writers are deterministic — field order is
// fixed by struct layout, attribute order is insertion order, and
// floats use strconv's exact shortest form — so byte-identical span
// trees serialize to byte-identical documents.

package trace

import (
	"encoding/json"
	"io"
	"time"
)

// spanJSON is the native wire form of one span.
type spanJSON struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS/DurUS are microseconds from the trace epoch; fractional
	// microseconds carry full nanosecond precision.
	StartUS float64     `json:"start_us"`
	DurUS   float64     `json:"dur_us"`
	Ended   bool        `json:"ended"`
	Attrs   []Attr      `json:"attrs,omitempty"`
	Events  []eventJSON `json:"events,omitempty"`
}

type eventJSON struct {
	Name  string  `json:"name"`
	AtUS  float64 `json:"at_us"`
	Attrs []Attr  `json:"attrs,omitempty"`
}

// traceJSON is the native document: header plus spans in start order.
type traceJSON struct {
	TraceID string     `json:"trace_id"`
	Attrs   []Attr     `json:"attrs,omitempty"`
	Spans   []spanJSON `json:"spans"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteJSON writes the snapshot in the native schema as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	doc := traceJSON{TraceID: s.TraceID, Attrs: s.Attrs, Spans: make([]spanJSON, len(s.Spans))}
	for i, sp := range s.Spans {
		j := spanJSON{
			ID:      formatID(sp.ID),
			Name:    sp.Name,
			StartUS: micros(sp.Start),
			DurUS:   micros(sp.End - sp.Start),
			Ended:   sp.Ended,
			Attrs:   sp.Attrs,
		}
		if sp.Parent != 0 {
			j.Parent = formatID(sp.Parent)
		}
		for _, ev := range sp.Events {
			j.Events = append(j.Events, eventJSON{Name: ev.Name, AtUS: micros(ev.At), Attrs: ev.Attrs})
		}
		doc.Spans[i] = j
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" complete events carry ts+dur, ph "i" instant events mark span
// point events, ph "M" metadata names the process. ts and dur are
// microseconds. All spans share pid/tid 1; viewers nest same-track "X"
// events by interval containment, which reproduces the span hierarchy.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the snapshot as Chrome trace-event JSON. Load the
// output at https://ui.perfetto.dev or chrome://tracing.
func (s Snapshot) WriteChrome(w io.Writer) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	meta := map[string]string{"name": "harmonia"}
	if s.TraceID != "" {
		meta["trace_id"] = s.TraceID
	}
	for _, a := range s.Attrs {
		meta[a.Key] = a.Value
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 1, Args: meta,
	})
	for _, sp := range s.Spans {
		dur := micros(sp.End - sp.Start)
		if dur < 0 {
			dur = 0
		}
		args := make(map[string]string, len(sp.Attrs)+2)
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		args["span_id"] = formatID(sp.ID)
		if sp.Parent != 0 {
			args["parent_id"] = formatID(sp.Parent)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name, Cat: "harmonia", Ph: "X",
			TS: micros(sp.Start), Dur: &dur, PID: 1, TID: 1, Args: args,
		})
		for _, ev := range sp.Events {
			evArgs := make(map[string]string, len(ev.Attrs)+1)
			for _, a := range ev.Attrs {
				evArgs[a.Key] = a.Value
			}
			evArgs["span_id"] = formatID(sp.ID)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: ev.Name, Cat: "harmonia", Ph: "i",
				TS: micros(ev.At), PID: 1, TID: 1, S: "t", Args: evArgs,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
