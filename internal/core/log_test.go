package core

import (
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
)

func TestDecisionLogRecordsEveryBoundary(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	k := kernelByName(t, "Sort.BottomScan")
	const n = 20
	drive(c, k, n)
	log := c.Log()
	if len(log) != n {
		t.Fatalf("log has %d entries, want %d", len(log), n)
	}
	kinds := map[ActionKind]int{}
	for i, a := range log {
		if a.Kernel != k.Name {
			t.Errorf("entry %d kernel = %q", i, a.Kernel)
		}
		if !a.From.Valid() || !a.To.Valid() {
			t.Errorf("entry %d has invalid configs", i)
		}
		if a.Proxy <= 0 {
			t.Errorf("entry %d proxy = %v", i, a.Proxy)
		}
		kinds[a.Kind]++
	}
	if kinds[ActionCG] == 0 {
		t.Error("no CG action logged")
	}
	if kinds[ActionFG] == 0 {
		t.Error("no FG action logged")
	}
	// Once converged, the tail of the log should be holds.
	if last := log[len(log)-1]; last.Kind != ActionHold {
		t.Errorf("last action = %v, want hold after convergence", last.Kind)
	}
}

func TestDecisionLogKindsMatchTransitions(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	k := kernelByName(t, "MaxFlops.Main")
	drive(c, k, 15)
	for i, a := range c.Log() {
		changed := a.From != a.To
		switch a.Kind {
		case ActionHold:
			if changed {
				t.Errorf("entry %d: hold but config changed %v -> %v", i, a.From, a.To)
			}
		case ActionCG, ActionFG:
			if !changed {
				t.Errorf("entry %d: %v but config unchanged", i, a.Kind)
			}
		}
	}
}

func TestDecisionLogBounded(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	sim := gpusim.Default()
	k := kernelByName(t, "Stencil.Step")
	for i := 0; i < maxLogEntries+50; i++ {
		cfg := c.Decide(k.Name, i)
		c.Observe(k.Name, i, sim.Run(k, i, cfg))
	}
	if got := len(c.Log()); got != maxLogEntries {
		t.Errorf("log length = %d, want bounded at %d", got, maxLogEntries)
	}
}

func TestActionKindStrings(t *testing.T) {
	want := map[ActionKind]string{
		ActionHold: "hold", ActionCG: "cg", ActionFG: "fg",
		ActionRevert: "revert", ActionFreeze: "freeze", ActionKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestFreezeAppearsInLogForDitheringTunable(t *testing.T) {
	// Streamcluster's CU probes fail repeatedly; the dithering budget
	// must eventually freeze and the log must show it.
	c := New(Options{Predictor: predictor()})
	drive(c, kernelByName(t, "Streamcluster.PGain"), 40)
	sawFreeze := false
	for _, a := range c.Log() {
		if a.Kind == ActionFreeze {
			sawFreeze = true
		}
	}
	if !sawFreeze {
		t.Error("no freeze action logged for a dithering kernel")
	}
	_ = hw.MaxConfig()
}
