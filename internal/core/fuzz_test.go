package core

import (
	"testing"

	"harmonia/internal/counters"
	"harmonia/internal/faults"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
)

// FuzzControllerRobustness drives the controller with synthetic counter
// streams derived from the fuzz input. Whatever the counters claim, the
// controller must only ever emit configurations on the legal grid and
// must not panic.
func FuzzControllerRobustness(f *testing.F) {
	f.Add(uint8(50), uint8(50), uint8(90), uint8(10), uint8(128))
	f.Add(uint8(0), uint8(100), uint8(0), uint8(100), uint8(255))
	f.Add(uint8(255), uint8(0), uint8(255), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, vb, mb, vu, ms, ic uint8) {
		c := New(Options{Predictor: predictor()})
		cfg := c.Decide("fuzz.kernel", 0)
		for i := 0; i < 24; i++ {
			cs := counters.Set{
				VALUBusy:        float64(vb) / 255 * 100,
				MemUnitBusy:     float64(mb) / 255 * 100,
				VALUUtilization: float64(vu) / 255 * 100,
				MemUnitStalled:  float64(ms) / 255 * 100,
				ICActivity:      float64(ic) / 255,
				NormVGPR:        float64(vb%64) / 256,
				NormSGPR:        float64(mb%100) / 102,
				Occupancy:       float64(vu%10+1) / 10,
				VALUInsts:       float64(int(vb)*1000 + 1),
				NormCUsActive:   float64(cfg.Compute.CUs) / hw.MaxCUs,
				NormCUClock:     cfg.Compute.Freq.GHz(),
				NormMemClock:    float64(cfg.Memory.BusFreq) / float64(hw.MaxMemFreq),
			}
			res := gpusim.Result{Time: 0.001, Counters: cs, Config: cfg}
			c.Observe("fuzz.kernel", i, res)
			cfg = c.Decide("fuzz.kernel", i+1)
			if !cfg.Valid() {
				t.Fatalf("iteration %d: invalid config %v", i, cfg)
			}
		}
	})
}

// FuzzControllerUnderFaults drives both the hardened and the naive
// controller through a fault sequence decoded from the fuzz input: each
// input byte selects, per kernel invocation, whether the observation is
// clean, noisy, stale, mismatched (the command did not latch), or
// throttled. Under every such sequence both controllers must emit only
// legal grid configurations, never panic, and the loop must terminate.
func FuzzControllerUnderFaults(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 0, 0, 3, 3, 3, 1, 2})
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3})
	f.Add([]byte{1, 1, 1, 1, 4, 4, 4, 4, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, seq []byte) {
		if len(seq) > 256 {
			seq = seq[:256]
		}
		sim := gpusim.Default()
		k := kernelByName(t, "Sort.BottomScan")
		for _, c := range []*Controller{
			New(Options{Predictor: predictor()}),
			New(Options{Predictor: predictor(), Robust: RobustOptions{Disabled: true}}),
		} {
			var stale *gpusim.Result
			for i, b := range seq {
				cfg := c.Decide(k.Name, i)
				if !cfg.Valid() {
					t.Fatalf("iteration %d: invalid commanded config %v", i, cfg)
				}
				actual := cfg
				switch b % 5 {
				case 3: // transition fails: stick one CU level away
					actual = hw.TunableCUs.WithLevel(cfg, hw.TunableCUs.LevelFor(cfg)-1)
					if actual == cfg {
						actual = hw.TunableCUs.WithLevel(cfg, hw.TunableCUs.LevelFor(cfg)+1)
					}
				case 4: // thermal throttle: compute clock forced down
					actual = hw.TunableCUFreq.WithLevel(cfg, 0)
				}
				res := sim.Run(k, i, actual)
				switch b % 5 {
				case 1: // noise burst
					res.Counters.VALUBusy = float64(b) / 255 * 100
					res.Counters.MemUnitBusy = float64(255-b) / 255 * 100
				case 2: // stale sample replayed
					if stale != nil {
						res = *stale
					}
				}
				stale = &res
				c.Observe(k.Name, i, res)
			}
			if got := c.Decide(k.Name, len(seq)); !got.Valid() {
				t.Fatalf("final decision invalid: %v", got)
			}
		}
	})
}

// FuzzInjectorDeterminism checks that a fault injector built from any
// profile replays identically from its seed and never produces an
// off-grid configuration.
func FuzzInjectorDeterminism(f *testing.F) {
	f.Add(int64(1), float64(0.5), uint8(20))
	f.Add(int64(-7), float64(2), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, intensity float64, steps uint8) {
		if intensity < 0 || intensity > 10 {
			return
		}
		cfg := faults.Profile(seed, intensity)
		k := kernelByName(t, "MaxFlops.Main")
		sim := gpusim.Default()
		run := func() []hw.Config {
			inj := faults.New(cfg)
			var got []hw.Config
			cur := hw.MaxConfig()
			for i := 0; i < int(steps); i++ {
				actual := inj.ApplyConfig(cur)
				if !actual.Valid() {
					t.Fatalf("injector produced off-grid config %v", actual)
				}
				res := inj.Observation(k.Name, sim.Run(k, i, actual))
				if res.Counters.VALUBusy < 0 || res.Counters.VALUBusy > 100 {
					t.Fatalf("noised VALUBusy out of range: %v", res.Counters.VALUBusy)
				}
				got = append(got, actual)
				cur = hw.TunableCUs.WithLevel(cur, i%hw.TunableCUs.Levels())
			}
			return got
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d: fault sequence not reproducible: %v vs %v", i, a[i], b[i])
			}
		}
	})
}
