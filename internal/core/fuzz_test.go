package core

import (
	"testing"

	"harmonia/internal/counters"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
)

// FuzzControllerRobustness drives the controller with synthetic counter
// streams derived from the fuzz input. Whatever the counters claim, the
// controller must only ever emit configurations on the legal grid and
// must not panic.
func FuzzControllerRobustness(f *testing.F) {
	f.Add(uint8(50), uint8(50), uint8(90), uint8(10), uint8(128))
	f.Add(uint8(0), uint8(100), uint8(0), uint8(100), uint8(255))
	f.Add(uint8(255), uint8(0), uint8(255), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, vb, mb, vu, ms, ic uint8) {
		c := New(Options{Predictor: predictor()})
		cfg := c.Decide("fuzz.kernel", 0)
		for i := 0; i < 24; i++ {
			cs := counters.Set{
				VALUBusy:        float64(vb) / 255 * 100,
				MemUnitBusy:     float64(mb) / 255 * 100,
				VALUUtilization: float64(vu) / 255 * 100,
				MemUnitStalled:  float64(ms) / 255 * 100,
				ICActivity:      float64(ic) / 255,
				NormVGPR:        float64(vb%64) / 256,
				NormSGPR:        float64(mb%100) / 102,
				Occupancy:       float64(vu%10+1) / 10,
				VALUInsts:       float64(int(vb)*1000 + 1),
				NormCUsActive:   float64(cfg.Compute.CUs) / hw.MaxCUs,
				NormCUClock:     cfg.Compute.Freq.GHz(),
				NormMemClock:    float64(cfg.Memory.BusFreq) / float64(hw.MaxMemFreq),
			}
			res := gpusim.Result{Time: 0.001, Counters: cs, Config: cfg}
			c.Observe("fuzz.kernel", i, res)
			cfg = c.Decide("fuzz.kernel", i+1)
			if !cfg.Valid() {
				t.Fatalf("iteration %d: invalid config %v", i, cfg)
			}
		}
	})
}
