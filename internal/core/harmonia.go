// Package core implements Harmonia, the paper's contribution: a two-level
// coordinated power-management policy for the GPU and its memory system
// (Section 5, Algorithm 1).
//
// At every kernel boundary the controller:
//
//  1. Monitors — samples the kernel's performance counters.
//  2. Predicts — computes per-tunable sensitivities with the linear
//     models of Table 3 and bins them HIGH/MED/LOW.
//  3. Coarse-grain (CG) tunes — when the bins change, jumps each tunable
//     to the empirically fixed value of its bin, bringing the hardware to
//     the vicinity of the balance point. If the bin change immediately
//     follows a configuration change made by the controller itself, the
//     previous decision is reverted instead: the sensitivity change was
//     an artifact of the configuration change, not the workload
//     (Section 5.2).
//  4. Fine-grain (FG) tunes — when the bins are stable, follows the
//     gradient of machine-level VALU utilization (the paper's "gradient
//     of core utilization" performance proxy): steps tunables toward
//     lower power while the gradient is non-negative, reverts the
//     responsible tunable when performance degrades, counts dithering,
//     and converges to the last zero-gradient state after too many
//     oscillations.
//
// Per-kernel state persists across iterations, so iterative HPC
// applications start each kernel at its last best configuration
// (Section 5.1).
package core

import (
	"fmt"
	"math"
	"sort"

	"harmonia/internal/counters"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/sensitivity"
	"harmonia/internal/timeline"
	"harmonia/internal/trace"
)

// Options configures a Controller.
type Options struct {
	// Predictor supplies the sensitivity models; nil trains the default
	// predictor on the standard workload suite.
	Predictor *sensitivity.Predictor
	// Tunables restricts which hardware tunables the controller manages;
	// empty means all three. The paper's compute-frequency-only study
	// (Section 7.2) is this controller with only TunableCUFreq.
	Tunables []hw.Tunable
	// DisableFG turns off the fine-grain feedback loop, yielding the
	// paper's "CG" configuration (Figures 10-13).
	DisableFG bool
	// MaxDither is the number of oscillations of one tunable the FG loop
	// tolerates before freezing it at the last good state. Zero means
	// the default of 1.
	MaxDither int
	// SmoothAlpha is the exponential-moving-average weight the
	// monitoring block gives the newest counter sample when maintaining
	// per-kernel history (Section 5.1). Zero means the default of 0.3.
	SmoothAlpha float64
	// Deadband is the relative change in the utilization proxy treated
	// as "no change" (Algorithm 1's gradient-zero case). Zero means the
	// default of 2%.
	Deadband float64
	// Initial is the configuration used before the first observation of
	// each kernel; zero value means the baseline maximum configuration.
	Initial hw.Config
	// Robust configures the hardening layer that protects the loop from
	// degraded telemetry (see RobustOptions). The zero value enables
	// hardening with defaults; set Robust.Disabled for the naive
	// controller. On a clean platform the hardening layer never fires,
	// so the hardened and naive controllers are bit-for-bit identical.
	Robust RobustOptions
}

// RobustOptions configures the controller's hardening layer: outlier
// rejection on monitoring samples before they reach the EMA,
// verification that a commanded configuration actually took effect
// (with bounded retry), and a graceful-degradation watchdog that
// freezes fine-grain tuning and falls back to the last known-good
// configuration while telemetry is unreliable, recovering automatically
// when readings stabilize. All of these react only to evidence of
// faults — samples that contradict per-kernel history or a DPM readback
// that contradicts the command — so on clean telemetry the hardened
// controller takes exactly the decisions the naive one does.
type RobustOptions struct {
	// Disabled turns the hardening layer off entirely (the naive
	// controller of the robustness study).
	Disabled bool
	// OutlierK is the MAD multiplier of the outlier test: a sample
	// whose VALUBusy or MemUnitBusy deviates more than
	// max(OutlierK·MAD, OutlierFloor) from the per-kernel history at
	// the same configuration is rejected. Zero means the default of 6.
	OutlierK float64
	// OutlierFloor is the absolute deviation (percentage points) below
	// which a sample is never an outlier, guarding against a zero MAD
	// on deterministic histories. Zero means the default of 8.
	OutlierFloor float64
	// HistoryWindow is how many accepted samples per (kernel,
	// configuration) the outlier test remembers. Zero means 12.
	HistoryWindow int
	// MinHistory is how many samples the window needs before the
	// outlier test may reject. Zero means 5.
	MinHistory int
	// VerifyRetries is how many times a commanded configuration that
	// did not take effect (per the sample's DPM-state readback) is
	// re-issued before the controller gives up and adopts the actual
	// hardware state. Zero means 2.
	VerifyRetries int
	// WatchdogM is how many consecutive unreliable samples (outliers or
	// failed transitions) trip the degradation watchdog. Zero means 3.
	WatchdogM int
	// RecoverN is how many consecutive clean samples end degraded mode.
	// Zero means 2.
	RecoverN int
}

// Hardening defaults.
const (
	defaultOutlierK      = 6
	defaultOutlierFloor  = 8
	defaultHistoryWindow = 12
	defaultMinHistory    = 5
	defaultVerifyRetries = 2
	defaultWatchdogM     = 3
	defaultRecoverN      = 2
)

func (r RobustOptions) withDefaults() RobustOptions {
	if r.OutlierK <= 0 {
		r.OutlierK = defaultOutlierK
	}
	if r.OutlierFloor <= 0 {
		r.OutlierFloor = defaultOutlierFloor
	}
	if r.HistoryWindow <= 0 {
		r.HistoryWindow = defaultHistoryWindow
	}
	if r.MinHistory <= 0 {
		r.MinHistory = defaultMinHistory
	}
	if r.VerifyRetries <= 0 {
		r.VerifyRetries = defaultVerifyRetries
	}
	if r.WatchdogM <= 0 {
		r.WatchdogM = defaultWatchdogM
	}
	if r.RecoverN <= 0 {
		r.RecoverN = defaultRecoverN
	}
	return r
}

// cgTarget maps a sensitivity bin to the grid level a tunable is set to
// during coarse-grain tuning: the "empirically fixed high, medium, or low
// value" of Section 5.2, grounded in the oracle's per-kernel optima on
// this platform (DESIGN.md §6). Highly sensitive tunables get their
// maximum; LOW-bin tunables jump most of the way down and the FG loop
// walks the remaining steps to the floor when that proves free (Sort's
// memory bus reaches 475 MHz this way); MED lands high enough that a
// misbinned kernel is not badly hurt before FG reacts.
func cgTarget(t hw.Tunable, b sensitivity.Bin) int {
	switch b {
	case sensitivity.High:
		return t.Levels() - 1
	case sensitivity.Med:
		switch t {
		case hw.TunableCUs:
			return 6 // 28 CUs
		case hw.TunableCUFreq:
			return 6 // 900 MHz
		default:
			return 5 // 1225 MHz memory
		}
	default: // Low
		switch t {
		case hw.TunableCUs:
			return 3 // 16 CUs
		case hw.TunableCUFreq:
			return 5 // 800 MHz
		default:
			return 3 // 925 MHz memory; FG walks the rest to the floor
		}
	}
}

// ActionKind classifies one controller decision for the decision log.
type ActionKind int

const (
	// ActionHold: no change this boundary.
	ActionHold ActionKind = iota
	// ActionCG: coarse-grain jump to the bin targets.
	ActionCG
	// ActionFG: fine-grain downward step.
	ActionFG
	// ActionRevert: a change was undone (degradation or artificial
	// sensitivity shift).
	ActionRevert
	// ActionFreeze: a tunable was pinned after exceeding the dithering
	// budget.
	ActionFreeze
	// ActionReject: a monitoring sample failed the outlier test and was
	// discarded before reaching the EMA; the configuration held.
	ActionReject
	// ActionRetry: the sample's DPM readback shows the commanded
	// configuration did not take effect; the command was re-issued.
	ActionRetry
	// ActionDegrade: the watchdog tripped after too many consecutive
	// unreliable samples; FG froze and the kernel fell back to its last
	// known-good configuration.
	ActionDegrade
	// ActionRecover: telemetry stabilized and the controller left
	// degraded mode.
	ActionRecover
)

func (a ActionKind) String() string {
	switch a {
	case ActionHold:
		return "hold"
	case ActionCG:
		return "cg"
	case ActionFG:
		return "fg"
	case ActionRevert:
		return "revert"
	case ActionFreeze:
		return "freeze"
	case ActionReject:
		return "reject"
	case ActionRetry:
		return "retry"
	case ActionDegrade:
		return "degrade"
	case ActionRecover:
		return "recover"
	default:
		return "unknown"
	}
}

// Action is one entry of the controller's decision log.
type Action struct {
	Kernel string
	Kind   ActionKind
	// From and To are the configurations before and after the decision.
	From, To hw.Config
	// Bins is the sensitivity classification in effect.
	Bins sensitivity.Bins
	// Proxy is the machine-utilization reading that drove the decision.
	Proxy float64
}

// Controller is the Harmonia policy. It implements policy.Policy.
type Controller struct {
	opts     Options
	pred     *sensitivity.Predictor
	tunables []hw.Tunable
	kernels  map[string]*kernelState

	// Counters for introspection and the CG-vs-FG experiments.
	cgActions, fgActions, reverts int

	// Hardening-layer counters.
	rejected, retried, degradeEvents int

	// log is the bounded decision log (most recent last).
	log []Action

	// tracer, when attached, receives one "decision" span per Observe;
	// span is the live span of the Observe in flight, annotated by
	// record. Tracing never feeds back into decisions.
	tracer *trace.Recorder
	span   *trace.Span
}

// maxLogEntries bounds the decision log so long sessions cannot grow it
// without bound.
const maxLogEntries = 4096

// Log returns the controller's decision log, most recent last. The log
// is bounded; old entries fall off the front.
func (c *Controller) Log() []Action { return c.log }

func (c *Controller) record(a Action) {
	// Every Observe records exactly one Action (the guard paths record
	// and return; the main path records via defer), so annotating here
	// puts the decision's outcome on the span of the Observe in flight.
	if sp := c.span; sp != nil {
		sp.Attr("action", a.Kind.String()).
			Attr("bins", a.Bins.CUs.String()+"/"+a.Bins.CUFreq.String()+"/"+a.Bins.MemFreq.String()).
			Attr("from", a.From.String()).
			Attr("to", a.To.String()).
			Float("proxy", a.Proxy)
	}
	if len(c.log) >= maxLogEntries {
		copy(c.log, c.log[1:])
		c.log = c.log[:len(c.log)-1]
	}
	c.log = append(c.log, a)
}

// kernelState is the per-kernel controller memory (Section 5.1: "use each
// kernel's historical data from previous iterations to predict hardware
// configurations for the same kernel in the next iteration").
type kernelState struct {
	next hw.Config // configuration for the next invocation

	haveHist bool
	hist     counters.Set // EWMA-smoothed counter history for this kernel

	haveBins bool
	bins     sensitivity.Bins // last accepted (non-artificial) bins
	pending  sensitivity.Bins // candidate new bins awaiting confirmation
	pendingN int              // consecutive observations of pending
	prevRaw  sensitivity.Bins // raw bins of the immediately previous iteration

	haveProxy bool
	proxy     float64 // utilization proxy of the previous invocation

	prev      hw.Config    // configuration of the previous invocation
	lastMoved []hw.Tunable // tunables we changed between prev and next
	lastCG    bool         // whether that change was a CG jump

	isolate  []hw.Tunable // single-step blame-isolation queue
	dither   map[hw.Tunable]int
	frozen   map[hw.Tunable]bool
	lastGood hw.Config

	lastKind ActionKind // classification of the most recent decision

	// Hardening-layer state. obsHist keeps a bounded window of accepted
	// VALUBusy/MemUnitBusy samples per configuration, the per-kernel
	// history the outlier test measures deviation against.
	obsHist    map[hw.Config]*obsWindow
	cmdRetries int  // consecutive re-issues of the current command
	unreliable int  // consecutive unreliable samples (watchdog input)
	cleanRun   int  // consecutive clean samples while degraded
	degraded   bool // watchdog tripped; FG frozen, holding lastGood
}

// obsWindow is a bounded ring of accepted counter samples at one
// configuration.
type obsWindow struct {
	vb, mb []float64
}

func (w *obsWindow) push(vb, mb float64, cap int) {
	if len(w.vb) >= cap {
		w.vb = append(w.vb[:0], w.vb[1:]...)
		w.mb = append(w.mb[:0], w.mb[1:]...)
	}
	w.vb = append(w.vb, vb)
	w.mb = append(w.mb, mb)
}

// New returns a Harmonia controller.
func New(opts Options) *Controller {
	pred := opts.Predictor
	if pred == nil {
		pred = sensitivity.DefaultPredictor()
	}
	tunables := opts.Tunables
	if len(tunables) == 0 {
		tunables = hw.Tunables()
	}
	if opts.MaxDither <= 0 {
		opts.MaxDither = 1
	}
	if opts.Deadband <= 0 {
		opts.Deadband = 0.005
	}
	if opts.SmoothAlpha <= 0 || opts.SmoothAlpha > 1 {
		opts.SmoothAlpha = 0.3
	}
	if !opts.Initial.Valid() {
		opts.Initial = hw.MaxConfig()
	}
	if !opts.Robust.Disabled {
		opts.Robust = opts.Robust.withDefaults()
	}
	return &Controller{
		opts:     opts,
		pred:     pred,
		tunables: tunables,
		kernels:  make(map[string]*kernelState),
	}
}

// NewComputeOnly returns the compute-frequency-and-voltage-scaling-only
// policy of Section 7.2's study ("compute frequency and voltage scaling
// alone achieve only an average ED2 gain of 3%").
func NewComputeOnly(pred *sensitivity.Predictor) *Controller {
	return New(Options{Predictor: pred, Tunables: []hw.Tunable{hw.TunableCUFreq}})
}

// Name implements policy.Policy.
func (c *Controller) Name() string {
	switch {
	case c.opts.DisableFG:
		return "harmonia-cg"
	case len(c.tunables) == 1 && c.tunables[0] == hw.TunableCUFreq:
		return "compute-dvfs-only"
	default:
		return "harmonia"
	}
}

// Stats reports how many coarse-grain actions, fine-grain actions, and
// reverts the controller has taken.
func (c *Controller) Stats() (cg, fg, reverts int) {
	return c.cgActions, c.fgActions, c.reverts
}

// RobustStats reports the hardening layer's activity: outlier-rejected
// samples, re-issued commands, and watchdog degradation events. All
// three are zero on a clean platform.
func (c *Controller) RobustStats() (rejected, retried, degraded int) {
	return c.rejected, c.retried, c.degradeEvents
}

// Degraded reports whether the named kernel is currently running in
// degraded mode (FG frozen, holding the last known-good configuration).
func (c *Controller) Degraded(kernel string) bool {
	st, ok := c.kernels[kernel]
	return ok && st.degraded
}

func (c *Controller) state(kernel string) *kernelState {
	st, ok := c.kernels[kernel]
	if !ok {
		st = &kernelState{
			next:     c.opts.Initial,
			prev:     c.opts.Initial,
			lastGood: c.opts.Initial,
			dither:   make(map[hw.Tunable]int),
			frozen:   make(map[hw.Tunable]bool),
			obsHist:  make(map[hw.Config]*obsWindow),
		}
		c.kernels[kernel] = st
	}
	return st
}

// Decide implements policy.Policy.
func (c *Controller) Decide(kernel string, _ int) hw.Config {
	return c.state(kernel).next
}

// AttachTracer implements trace.Traceable: subsequent Observe calls
// each open a "decision" span under the recorder's ambient parent,
// carrying the predictor inputs (busy fractions), the sensitivity bins,
// the configurations before and after, and the action taken — including
// the hardening layer's reject/retry/degrade outcomes. The span is pure
// observation; the controller's decisions are identical without it.
func (c *Controller) AttachTracer(rec *trace.Recorder) { c.tracer = rec }

// TimelineDecision implements timeline.Annotator: queried by the
// session right after Observe, it classifies the boundary just
// processed — the action taken (hold/cg/fg/revert/freeze/...), the
// sensitivity bins in effect, and the machine-utilization proxy that
// drove the decision. Pure observation: it only reads state Observe
// already produced.
func (c *Controller) TimelineDecision(kernel string, _ int) (timeline.Detail, bool) {
	st, ok := c.kernels[kernel]
	if !ok {
		return timeline.Detail{}, false
	}
	return timeline.Detail{
		Source:   st.lastKind.String(),
		Bins:     st.bins,
		HaveBins: st.haveBins,
		Proxy:    st.proxy,
	}, true
}

// Observe implements policy.Policy: it opens the decision span when a
// tracer is attached, then runs one step of Algorithm 1 via observe.
func (c *Controller) Observe(kernel string, iter int, res gpusim.Result) {
	sp := c.tracer.StartAmbient("decision")
	// The sp != nil guard is about the disabled path's cost, not safety:
	// span methods are nil-safe, but argument expressions like
	// Config.String() would still run (and allocate) on every untraced
	// Observe.
	if sp != nil {
		sp.Attr("kernel", kernel).
			Attr("config", res.Config.String()).
			Float("valu_busy", res.Counters.VALUBusy).
			Float("mem_unit_busy", res.Counters.MemUnitBusy)
	}
	c.span = sp
	c.observe(kernel, iter, res)
	c.span = nil
	sp.End()
}

// observe runs one step of Algorithm 1, fronted (unless Robust.Disabled)
// by the hardening layer of guard.
func (c *Controller) observe(kernel string, _ int, res gpusim.Result) {
	st := c.state(kernel)
	if !c.opts.Robust.Disabled && c.guard(kernel, st, res) {
		return
	}
	cur := res.Config

	// Monitoring block: fold the new sample into the kernel's history
	// (Section 5.1) and predict sensitivities from the smoothed view.
	if !st.haveHist {
		st.hist = res.Counters
		st.haveHist = true
	} else {
		st.hist = st.hist.Blend(res.Counters, c.opts.SmoothAlpha)
	}
	bins := c.binsFor(st.hist)
	proxy := gpusim.MachineUtilization(res.Counters, cur)
	rawStable := st.haveBins && bins == st.prevRaw
	st.lastKind = ActionHold
	defer func() {
		st.prev = cur
		st.proxy = proxy
		st.haveProxy = true
		st.prevRaw = bins
		c.record(Action{Kernel: kernel, Kind: st.lastKind, From: cur, To: st.next, Bins: st.bins, Proxy: proxy})
	}()

	// First observation of this kernel: adopt the bins and take the
	// initial coarse-grain decision.
	if !st.haveBins {
		st.bins = bins
		st.haveBins = true
		st.lastGood = cur
		c.applyCG(st, cur, bins)
		return
	}

	if bins != st.bins {
		if len(st.lastMoved) > 0 {
			// The sensitivity change immediately follows our own
			// configuration change: treat it as artificial and revert
			// the previous decision (Algorithm 1). The accepted bins
			// stay as they were.
			st.pendingN = 0
			c.revertTo(st, cur, st.prev, st.lastMoved)
			return
		}
		// Candidate phase change: require the new bins to persist for a
		// second observation before acting, so that single-iteration
		// flickers (common in phase-heavy kernels such as Graph500's
		// BFS) do not trigger spurious coarse-grain jumps.
		if bins != st.pending || st.pendingN == 0 {
			st.pending = bins
			st.pendingN = 1
			st.next = cur
			return
		}
		// Confirmed application phase change: re-run coarse-grain tuning.
		st.pendingN = 0
		st.bins = bins
		c.resetFG(st)
		c.applyCG(st, cur, bins)
		return
	}
	st.pendingN = 0

	// Bins stable: fine-grain tuning on the utilization gradient. Per
	// Section 5.2, FG only acts when the sensitivities have not changed
	// between two subsequent iterations — during rapid phase churn the
	// loop holds rather than chase a moving target. Degradation caused
	// by our own last move is still repaired immediately.
	if c.opts.DisableFG || !st.haveProxy {
		st.lastMoved = nil
		st.lastCG = false
		st.next = cur
		return
	}
	degradedAfterMove := len(st.lastMoved) > 0 && proxy < st.proxy-c.opts.Deadband*st.proxy
	if !rawStable && !degradedAfterMove {
		st.lastMoved = nil
		st.lastCG = false
		st.next = cur
		return
	}
	c.fineGrain(st, cur, proxy)
}

// guard is the hardening layer run before Algorithm 1 sees a sample. It
// returns true when it consumed the sample: the observation was an
// outlier, the commanded configuration did not take effect, or the
// kernel is in (or just left) degraded mode. Clean samples on a clean
// platform fall straight through — guard then only records history — so
// the hardened controller's decisions are bit-for-bit those of the
// naive one until a fault is actually observed.
func (c *Controller) guard(kernel string, st *kernelState, res gpusim.Result) bool {
	commanded := st.next
	mismatch := res.Config != commanded
	outlier := !mismatch && c.isOutlier(st, res)
	unreliable := mismatch || outlier

	record := func(kind ActionKind, to hw.Config) {
		c.record(Action{
			Kernel: kernel, Kind: kind, From: res.Config, To: to,
			Bins: st.bins, Proxy: gpusim.MachineUtilization(res.Counters, res.Config),
		})
		st.lastKind = kind
	}

	if st.degraded {
		// Degraded mode: hold the last known-good configuration, take no
		// decisions, and watch for telemetry to stabilize.
		if mismatch {
			// The platform will not run what we hold (stuck DPM,
			// persistent throttle). Holding a configuration that never
			// latches would block recovery forever — adopt the actual
			// hardware state as the hold point instead; once readbacks
			// match it, samples count as clean again.
			st.lastGood = res.Config
			st.cleanRun = 0
		} else if unreliable {
			st.cleanRun = 0
		} else {
			st.cleanRun++
			c.pushObs(st, res)
		}
		st.next = st.lastGood
		if st.cleanRun >= c.opts.Robust.RecoverN {
			st.degraded = false
			st.unreliable, st.cleanRun, st.cmdRetries = 0, 0, 0
			// Resume with a clean slate: no pending move to blame and no
			// stale proxy baseline from before the fault burst.
			st.lastMoved, st.lastCG = nil, false
			st.haveProxy = false
			record(ActionRecover, st.next)
			return true
		}
		record(ActionDegrade, st.next)
		return true
	}

	if !unreliable {
		st.unreliable = 0
		st.cmdRetries = 0
		c.pushObs(st, res)
		return false
	}

	st.unreliable++
	if mismatch {
		if st.cmdRetries < c.opts.Robust.VerifyRetries {
			// The DPM readback contradicts the command: re-issue it
			// rather than interpret a gradient measured at the wrong
			// operating point.
			st.cmdRetries++
			c.retried++
			st.next = commanded
			record(ActionRetry, st.next)
			return true
		}
		// Retries exhausted: the transition genuinely is not taking
		// (stuck DPM, persistent throttle). Adopt the hardware's actual
		// state, clearing move blame — our intended change never ran.
		// Adoption resolves the discrepancy, so it ends the unreliable
		// streak rather than feeding the watchdog: future readbacks at
		// the adopted configuration will match what we command.
		st.cmdRetries = 0
		st.unreliable = 0
		st.lastMoved, st.lastCG = nil, false
		st.next = res.Config
		record(ActionHold, st.next)
		return true
	}

	if st.unreliable >= c.opts.Robust.WatchdogM {
		// Telemetry has been unreliable for M consecutive samples: freeze
		// FG and fall back to the last configuration that demonstrably
		// performed (Section 5.2's safety intent, extended to faults).
		st.degraded = true
		st.cleanRun = 0
		st.lastMoved, st.lastCG = nil, false
		st.next = st.lastGood
		c.degradeEvents++
		record(ActionDegrade, st.next)
		return true
	}

	// Outlier: discard the sample before it reaches the EMA or the
	// gradient, and hold.
	c.rejected++
	st.next = commanded
	record(ActionReject, st.next)
	return true
}

// pushObs folds an accepted sample into the per-configuration history
// the outlier test uses.
func (c *Controller) pushObs(st *kernelState, res gpusim.Result) {
	w := st.obsHist[res.Config]
	if w == nil {
		w = &obsWindow{}
		st.obsHist[res.Config] = w
	}
	w.push(res.Counters.VALUBusy, res.Counters.MemUnitBusy, c.opts.Robust.HistoryWindow)
}

// isOutlier applies the robust deviation test: a sample is an outlier
// when VALUBusy or MemUnitBusy deviates from the median of the
// per-kernel history at the same configuration by more than
// max(OutlierK·MAD, OutlierFloor). Histories shorter than MinHistory
// never reject, and the absolute floor keeps deterministic (zero-MAD)
// histories from rejecting legitimate small shifts.
func (c *Controller) isOutlier(st *kernelState, res gpusim.Result) bool {
	w := st.obsHist[res.Config]
	if w == nil || len(w.vb) < c.opts.Robust.MinHistory {
		return false
	}
	r := c.opts.Robust
	exceeds := func(hist []float64, v float64) bool {
		med := median(hist)
		thr := math.Max(r.OutlierK*mad(hist, med), r.OutlierFloor)
		return math.Abs(v-med) > thr
	}
	return exceeds(w.vb, res.Counters.VALUBusy) || exceeds(w.mb, res.Counters.MemUnitBusy)
}

// median returns the median of xs (not modifying it).
func median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// mad returns the median absolute deviation of xs about med.
func mad(xs []float64, med float64) float64 {
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return median(dev)
}

// binsFor predicts sensitivity bins from a (smoothed) counter sample,
// with unmanaged tunables reported as High so that CG pins them at their
// maximum (i.e. leaves them at the baseline value).
func (c *Controller) binsFor(cs counters.Set) sensitivity.Bins {
	bins := sensitivity.Bins{CUs: sensitivity.High, CUFreq: sensitivity.High, MemFreq: sensitivity.High}
	for _, t := range c.tunables {
		switch t {
		case hw.TunableCUs:
			bins.CUs = sensitivity.BinOf(c.pred.PredictCUs(cs))
		case hw.TunableCUFreq:
			bins.CUFreq = sensitivity.BinOf(c.pred.PredictCUFreq(cs))
		case hw.TunableMemFreq:
			bins.MemFreq = sensitivity.BinOf(c.pred.PredictBandwidth(cs))
		}
	}
	return bins
}

func binFor(bins sensitivity.Bins, t hw.Tunable) sensitivity.Bin {
	switch t {
	case hw.TunableCUs:
		return bins.CUs
	case hw.TunableCUFreq:
		return bins.CUFreq
	default:
		return bins.MemFreq
	}
}

// applyCG jumps every managed tunable to its bin target (Algorithm 1's
// SetCU_Freq_MemBW).
func (c *Controller) applyCG(st *kernelState, cur hw.Config, bins sensitivity.Bins) {
	next := cur
	var moved []hw.Tunable
	for _, t := range c.tunables {
		target := cgTarget(t, binFor(bins, t))
		if t.LevelFor(next) != target {
			next = t.WithLevel(next, target)
			moved = append(moved, t)
		}
	}
	st.next = next
	st.lastMoved = moved
	st.lastCG = len(moved) > 0
	if len(moved) > 0 {
		c.cgActions++
		st.lastKind = ActionCG
	}
}

// revertTo restores the given tunables of cur to their values in prev.
func (c *Controller) revertTo(st *kernelState, cur, prev hw.Config, moved []hw.Tunable) {
	next := cur
	for _, t := range moved {
		next = t.WithLevel(next, t.LevelFor(prev))
	}
	st.next = next
	st.lastMoved = nil
	st.lastCG = false
	st.lastKind = ActionRevert
	c.reverts++
}

func (c *Controller) resetFG(st *kernelState) {
	st.isolate = nil
	st.dither = make(map[hw.Tunable]int)
	st.frozen = make(map[hw.Tunable]bool)
}

// fgEligible reports whether the FG loop may step t downward: the
// tunable must be managed, not frozen by dithering, and not predicted
// highly sensitive — CG pinned HIGH-bin tunables at their maximum on
// purpose, and probing them down would knowingly sacrifice performance
// (this is why Figure 16 shows Graph500's compute frequency occupying a
// single state).
func (c *Controller) fgEligible(st *kernelState, t hw.Tunable) bool {
	return !st.frozen[t] && binFor(st.bins, t) != sensitivity.High
}

// fineGrain runs one step of the FG block: decrement toward lower power
// while the utilization gradient is non-negative; on degradation, revert
// — isolating the responsible tunable when several moved together — and
// count dithering, freezing a tunable at its last good value once it has
// oscillated MaxDither times (Section 5.2).
func (c *Controller) fineGrain(st *kernelState, cur hw.Config, proxy float64) {
	moved := st.lastMoved // what we changed before this observation
	wasCG := st.lastCG
	st.lastMoved = nil
	st.lastCG = false

	eps := c.opts.Deadband * st.proxy
	if eps < 1e-9 {
		eps = 1e-9
	}
	degraded := proxy < st.proxy-eps

	if degraded && len(moved) == 0 {
		// Utilization dropped without any controller action: a natural
		// workload fluctuation. Hold the configuration rather than
		// react to what the sensitivity change did not announce.
		st.next = cur
		return
	}

	if degraded && len(moved) > 0 {
		if len(moved) == 1 {
			// Unambiguous blame: revert the tunable.
			t := moved[0]
			st.next = t.WithLevel(cur, t.LevelFor(st.prev))
			if wasCG {
				// A coarse-grain jump overshot the balance point:
				// fall back and let FG approach it one step at a time
				// instead of pinning the tunable at the baseline.
				st.isolate = append(st.isolate, t)
				st.lastKind = ActionRevert
				c.reverts++
				return
			}
			// A fine-grain step failed: count the oscillation; past
			// the dithering budget, pin the tunable at the last
			// zero-gradient state (Algorithm 1's cut-off).
			st.lastKind = ActionRevert
			st.dither[t]++
			if st.dither[t] >= c.opts.MaxDither {
				st.next = t.WithLevel(st.next, t.LevelFor(st.lastGood))
				st.frozen[t] = true
				st.lastKind = ActionFreeze
			} else {
				// Re-probe later, after the other suspects.
				st.isolate = append(st.isolate, t)
			}
			c.reverts++
			return
		}
		// Several tunables moved together (a CG jump or a concurrent FG
		// step): revert them all, then test them one at a time to
		// isolate the responsible tunable.
		c.revertTo(st, cur, st.prev, moved)
		st.isolate = append(st.isolate, moved...)
		return
	}

	// Gradient >= 0: the current configuration performs at least as well
	// as the previous one; remember it and keep reducing power.
	st.lastGood = cur

	// Isolation mode: step one suspect at a time so blame stays
	// unambiguous.
	for len(st.isolate) > 0 {
		t := st.isolate[0]
		st.isolate = st.isolate[1:]
		if !c.fgEligible(st, t) {
			continue
		}
		if next, ok := t.Step(cur, hw.Down); ok {
			st.next = next
			st.lastMoved = []hw.Tunable{t}
			st.lastKind = ActionFG
			c.fgActions++
			return
		}
	}

	// Concurrent decrement (Section 5.2: "all tunables can be fine-tuned
	// concurrently") of the eligible tunables with a clean record;
	// tunables that have already caused a revert are only re-probed
	// individually through the isolation queue.
	next := cur
	var movedNow []hw.Tunable
	for _, t := range c.tunables {
		if !c.fgEligible(st, t) || st.dither[t] > 0 {
			continue
		}
		if stepped, ok := t.Step(next, hw.Down); ok {
			next = stepped
			movedNow = append(movedNow, t)
		}
	}
	if len(movedNow) == 0 {
		st.next = cur // converged: floor or frozen everywhere
		return
	}
	st.next = next
	st.lastMoved = movedNow
	st.lastKind = ActionFG
	c.fgActions++
}

// Snapshot describes the controller's current per-kernel decisions, for
// reporting and debugging.
type Snapshot struct {
	Kernel string
	Config hw.Config
	Bins   sensitivity.Bins
}

// Snapshots returns the current state for every kernel seen so far, in
// kernel-name order.
func (c *Controller) Snapshots() []Snapshot {
	names := make([]string, 0, len(c.kernels))
	for name := range c.kernels {
		names = append(names, name) //lint:ignore nondeterminism keys are sorted before use
	}
	sort.Strings(names)
	out := make([]Snapshot, 0, len(names))
	for _, name := range names {
		st := c.kernels[name]
		out = append(out, Snapshot{Kernel: name, Config: st.next, Bins: st.bins})
	}
	return out
}

func (c *Controller) String() string {
	cg, fg, rv := c.Stats()
	return fmt.Sprintf("%s: %d kernels, %d CG, %d FG, %d reverts",
		c.Name(), len(c.kernels), cg, fg, rv)
}
