// Package core implements Harmonia, the paper's contribution: a two-level
// coordinated power-management policy for the GPU and its memory system
// (Section 5, Algorithm 1).
//
// At every kernel boundary the controller:
//
//  1. Monitors — samples the kernel's performance counters.
//  2. Predicts — computes per-tunable sensitivities with the linear
//     models of Table 3 and bins them HIGH/MED/LOW.
//  3. Coarse-grain (CG) tunes — when the bins change, jumps each tunable
//     to the empirically fixed value of its bin, bringing the hardware to
//     the vicinity of the balance point. If the bin change immediately
//     follows a configuration change made by the controller itself, the
//     previous decision is reverted instead: the sensitivity change was
//     an artifact of the configuration change, not the workload
//     (Section 5.2).
//  4. Fine-grain (FG) tunes — when the bins are stable, follows the
//     gradient of machine-level VALU utilization (the paper's "gradient
//     of core utilization" performance proxy): steps tunables toward
//     lower power while the gradient is non-negative, reverts the
//     responsible tunable when performance degrades, counts dithering,
//     and converges to the last zero-gradient state after too many
//     oscillations.
//
// Per-kernel state persists across iterations, so iterative HPC
// applications start each kernel at its last best configuration
// (Section 5.1).
package core

import (
	"fmt"

	"harmonia/internal/counters"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/sensitivity"
)

// Options configures a Controller.
type Options struct {
	// Predictor supplies the sensitivity models; nil trains the default
	// predictor on the standard workload suite.
	Predictor *sensitivity.Predictor
	// Tunables restricts which hardware tunables the controller manages;
	// empty means all three. The paper's compute-frequency-only study
	// (Section 7.2) is this controller with only TunableCUFreq.
	Tunables []hw.Tunable
	// DisableFG turns off the fine-grain feedback loop, yielding the
	// paper's "CG" configuration (Figures 10-13).
	DisableFG bool
	// MaxDither is the number of oscillations of one tunable the FG loop
	// tolerates before freezing it at the last good state. Zero means
	// the default of 1.
	MaxDither int
	// SmoothAlpha is the exponential-moving-average weight the
	// monitoring block gives the newest counter sample when maintaining
	// per-kernel history (Section 5.1). Zero means the default of 0.3.
	SmoothAlpha float64
	// Deadband is the relative change in the utilization proxy treated
	// as "no change" (Algorithm 1's gradient-zero case). Zero means the
	// default of 2%.
	Deadband float64
	// Initial is the configuration used before the first observation of
	// each kernel; zero value means the baseline maximum configuration.
	Initial hw.Config
}

// cgTarget maps a sensitivity bin to the grid level a tunable is set to
// during coarse-grain tuning: the "empirically fixed high, medium, or low
// value" of Section 5.2, grounded in the oracle's per-kernel optima on
// this platform (DESIGN.md §6). Highly sensitive tunables get their
// maximum; LOW-bin tunables jump most of the way down and the FG loop
// walks the remaining steps to the floor when that proves free (Sort's
// memory bus reaches 475 MHz this way); MED lands high enough that a
// misbinned kernel is not badly hurt before FG reacts.
func cgTarget(t hw.Tunable, b sensitivity.Bin) int {
	switch b {
	case sensitivity.High:
		return t.Levels() - 1
	case sensitivity.Med:
		switch t {
		case hw.TunableCUs:
			return 6 // 28 CUs
		case hw.TunableCUFreq:
			return 6 // 900 MHz
		default:
			return 5 // 1225 MHz memory
		}
	default: // Low
		switch t {
		case hw.TunableCUs:
			return 3 // 16 CUs
		case hw.TunableCUFreq:
			return 5 // 800 MHz
		default:
			return 3 // 925 MHz memory; FG walks the rest to the floor
		}
	}
}

// ActionKind classifies one controller decision for the decision log.
type ActionKind int

const (
	// ActionHold: no change this boundary.
	ActionHold ActionKind = iota
	// ActionCG: coarse-grain jump to the bin targets.
	ActionCG
	// ActionFG: fine-grain downward step.
	ActionFG
	// ActionRevert: a change was undone (degradation or artificial
	// sensitivity shift).
	ActionRevert
	// ActionFreeze: a tunable was pinned after exceeding the dithering
	// budget.
	ActionFreeze
)

func (a ActionKind) String() string {
	switch a {
	case ActionHold:
		return "hold"
	case ActionCG:
		return "cg"
	case ActionFG:
		return "fg"
	case ActionRevert:
		return "revert"
	case ActionFreeze:
		return "freeze"
	default:
		return "unknown"
	}
}

// Action is one entry of the controller's decision log.
type Action struct {
	Kernel string
	Kind   ActionKind
	// From and To are the configurations before and after the decision.
	From, To hw.Config
	// Bins is the sensitivity classification in effect.
	Bins sensitivity.Bins
	// Proxy is the machine-utilization reading that drove the decision.
	Proxy float64
}

// Controller is the Harmonia policy. It implements policy.Policy.
type Controller struct {
	opts     Options
	pred     *sensitivity.Predictor
	tunables []hw.Tunable
	kernels  map[string]*kernelState

	// Counters for introspection and the CG-vs-FG experiments.
	cgActions, fgActions, reverts int

	// log is the bounded decision log (most recent last).
	log []Action
}

// maxLogEntries bounds the decision log so long sessions cannot grow it
// without bound.
const maxLogEntries = 4096

// Log returns the controller's decision log, most recent last. The log
// is bounded; old entries fall off the front.
func (c *Controller) Log() []Action { return c.log }

func (c *Controller) record(a Action) {
	if len(c.log) >= maxLogEntries {
		copy(c.log, c.log[1:])
		c.log = c.log[:len(c.log)-1]
	}
	c.log = append(c.log, a)
}

// kernelState is the per-kernel controller memory (Section 5.1: "use each
// kernel's historical data from previous iterations to predict hardware
// configurations for the same kernel in the next iteration").
type kernelState struct {
	next hw.Config // configuration for the next invocation

	haveHist bool
	hist     counters.Set // EWMA-smoothed counter history for this kernel

	haveBins bool
	bins     sensitivity.Bins // last accepted (non-artificial) bins
	pending  sensitivity.Bins // candidate new bins awaiting confirmation
	pendingN int              // consecutive observations of pending
	prevRaw  sensitivity.Bins // raw bins of the immediately previous iteration

	haveProxy bool
	proxy     float64 // utilization proxy of the previous invocation

	prev      hw.Config    // configuration of the previous invocation
	lastMoved []hw.Tunable // tunables we changed between prev and next
	lastCG    bool         // whether that change was a CG jump

	isolate  []hw.Tunable // single-step blame-isolation queue
	dither   map[hw.Tunable]int
	frozen   map[hw.Tunable]bool
	lastGood hw.Config

	lastKind ActionKind // classification of the most recent decision
}

// New returns a Harmonia controller.
func New(opts Options) *Controller {
	pred := opts.Predictor
	if pred == nil {
		pred = sensitivity.DefaultPredictor()
	}
	tunables := opts.Tunables
	if len(tunables) == 0 {
		tunables = hw.Tunables()
	}
	if opts.MaxDither <= 0 {
		opts.MaxDither = 1
	}
	if opts.Deadband <= 0 {
		opts.Deadband = 0.005
	}
	if opts.SmoothAlpha <= 0 || opts.SmoothAlpha > 1 {
		opts.SmoothAlpha = 0.3
	}
	if !opts.Initial.Valid() {
		opts.Initial = hw.MaxConfig()
	}
	return &Controller{
		opts:     opts,
		pred:     pred,
		tunables: tunables,
		kernels:  make(map[string]*kernelState),
	}
}

// NewComputeOnly returns the compute-frequency-and-voltage-scaling-only
// policy of Section 7.2's study ("compute frequency and voltage scaling
// alone achieve only an average ED2 gain of 3%").
func NewComputeOnly(pred *sensitivity.Predictor) *Controller {
	return New(Options{Predictor: pred, Tunables: []hw.Tunable{hw.TunableCUFreq}})
}

// Name implements policy.Policy.
func (c *Controller) Name() string {
	switch {
	case c.opts.DisableFG:
		return "harmonia-cg"
	case len(c.tunables) == 1 && c.tunables[0] == hw.TunableCUFreq:
		return "compute-dvfs-only"
	default:
		return "harmonia"
	}
}

// Stats reports how many coarse-grain actions, fine-grain actions, and
// reverts the controller has taken.
func (c *Controller) Stats() (cg, fg, reverts int) {
	return c.cgActions, c.fgActions, c.reverts
}

func (c *Controller) state(kernel string) *kernelState {
	st, ok := c.kernels[kernel]
	if !ok {
		st = &kernelState{
			next:     c.opts.Initial,
			prev:     c.opts.Initial,
			lastGood: c.opts.Initial,
			dither:   make(map[hw.Tunable]int),
			frozen:   make(map[hw.Tunable]bool),
		}
		c.kernels[kernel] = st
	}
	return st
}

// Decide implements policy.Policy.
func (c *Controller) Decide(kernel string, _ int) hw.Config {
	return c.state(kernel).next
}

// Observe implements policy.Policy: it runs one step of Algorithm 1.
func (c *Controller) Observe(kernel string, _ int, res gpusim.Result) {
	st := c.state(kernel)
	cur := res.Config

	// Monitoring block: fold the new sample into the kernel's history
	// (Section 5.1) and predict sensitivities from the smoothed view.
	if !st.haveHist {
		st.hist = res.Counters
		st.haveHist = true
	} else {
		st.hist = st.hist.Blend(res.Counters, c.opts.SmoothAlpha)
	}
	bins := c.binsFor(st.hist)
	proxy := gpusim.MachineUtilization(res.Counters, cur)
	rawStable := st.haveBins && bins == st.prevRaw
	st.lastKind = ActionHold
	defer func() {
		st.prev = cur
		st.proxy = proxy
		st.haveProxy = true
		st.prevRaw = bins
		c.record(Action{Kernel: kernel, Kind: st.lastKind, From: cur, To: st.next, Bins: st.bins, Proxy: proxy})
	}()

	// First observation of this kernel: adopt the bins and take the
	// initial coarse-grain decision.
	if !st.haveBins {
		st.bins = bins
		st.haveBins = true
		st.lastGood = cur
		c.applyCG(st, cur, bins)
		return
	}

	if bins != st.bins {
		if len(st.lastMoved) > 0 {
			// The sensitivity change immediately follows our own
			// configuration change: treat it as artificial and revert
			// the previous decision (Algorithm 1). The accepted bins
			// stay as they were.
			st.pendingN = 0
			c.revertTo(st, cur, st.prev, st.lastMoved)
			return
		}
		// Candidate phase change: require the new bins to persist for a
		// second observation before acting, so that single-iteration
		// flickers (common in phase-heavy kernels such as Graph500's
		// BFS) do not trigger spurious coarse-grain jumps.
		if bins != st.pending || st.pendingN == 0 {
			st.pending = bins
			st.pendingN = 1
			st.next = cur
			return
		}
		// Confirmed application phase change: re-run coarse-grain tuning.
		st.pendingN = 0
		st.bins = bins
		c.resetFG(st)
		c.applyCG(st, cur, bins)
		return
	}
	st.pendingN = 0

	// Bins stable: fine-grain tuning on the utilization gradient. Per
	// Section 5.2, FG only acts when the sensitivities have not changed
	// between two subsequent iterations — during rapid phase churn the
	// loop holds rather than chase a moving target. Degradation caused
	// by our own last move is still repaired immediately.
	if c.opts.DisableFG || !st.haveProxy {
		st.lastMoved = nil
		st.lastCG = false
		st.next = cur
		return
	}
	degradedAfterMove := len(st.lastMoved) > 0 && proxy < st.proxy-c.opts.Deadband*st.proxy
	if !rawStable && !degradedAfterMove {
		st.lastMoved = nil
		st.lastCG = false
		st.next = cur
		return
	}
	c.fineGrain(st, cur, proxy)
}

// binsFor predicts sensitivity bins from a (smoothed) counter sample,
// with unmanaged tunables reported as High so that CG pins them at their
// maximum (i.e. leaves them at the baseline value).
func (c *Controller) binsFor(cs counters.Set) sensitivity.Bins {
	bins := sensitivity.Bins{CUs: sensitivity.High, CUFreq: sensitivity.High, MemFreq: sensitivity.High}
	for _, t := range c.tunables {
		switch t {
		case hw.TunableCUs:
			bins.CUs = sensitivity.BinOf(c.pred.PredictCUs(cs))
		case hw.TunableCUFreq:
			bins.CUFreq = sensitivity.BinOf(c.pred.PredictCUFreq(cs))
		case hw.TunableMemFreq:
			bins.MemFreq = sensitivity.BinOf(c.pred.PredictBandwidth(cs))
		}
	}
	return bins
}

func binFor(bins sensitivity.Bins, t hw.Tunable) sensitivity.Bin {
	switch t {
	case hw.TunableCUs:
		return bins.CUs
	case hw.TunableCUFreq:
		return bins.CUFreq
	default:
		return bins.MemFreq
	}
}

// applyCG jumps every managed tunable to its bin target (Algorithm 1's
// SetCU_Freq_MemBW).
func (c *Controller) applyCG(st *kernelState, cur hw.Config, bins sensitivity.Bins) {
	next := cur
	var moved []hw.Tunable
	for _, t := range c.tunables {
		target := cgTarget(t, binFor(bins, t))
		if t.LevelFor(next) != target {
			next = t.WithLevel(next, target)
			moved = append(moved, t)
		}
	}
	st.next = next
	st.lastMoved = moved
	st.lastCG = len(moved) > 0
	if len(moved) > 0 {
		c.cgActions++
		st.lastKind = ActionCG
	}
}

// revertTo restores the given tunables of cur to their values in prev.
func (c *Controller) revertTo(st *kernelState, cur, prev hw.Config, moved []hw.Tunable) {
	next := cur
	for _, t := range moved {
		next = t.WithLevel(next, t.LevelFor(prev))
	}
	st.next = next
	st.lastMoved = nil
	st.lastCG = false
	st.lastKind = ActionRevert
	c.reverts++
}

func (c *Controller) resetFG(st *kernelState) {
	st.isolate = nil
	st.dither = make(map[hw.Tunable]int)
	st.frozen = make(map[hw.Tunable]bool)
}

// fgEligible reports whether the FG loop may step t downward: the
// tunable must be managed, not frozen by dithering, and not predicted
// highly sensitive — CG pinned HIGH-bin tunables at their maximum on
// purpose, and probing them down would knowingly sacrifice performance
// (this is why Figure 16 shows Graph500's compute frequency occupying a
// single state).
func (c *Controller) fgEligible(st *kernelState, t hw.Tunable) bool {
	return !st.frozen[t] && binFor(st.bins, t) != sensitivity.High
}

// fineGrain runs one step of the FG block: decrement toward lower power
// while the utilization gradient is non-negative; on degradation, revert
// — isolating the responsible tunable when several moved together — and
// count dithering, freezing a tunable at its last good value once it has
// oscillated MaxDither times (Section 5.2).
func (c *Controller) fineGrain(st *kernelState, cur hw.Config, proxy float64) {
	moved := st.lastMoved // what we changed before this observation
	wasCG := st.lastCG
	st.lastMoved = nil
	st.lastCG = false

	eps := c.opts.Deadband * st.proxy
	if eps < 1e-9 {
		eps = 1e-9
	}
	degraded := proxy < st.proxy-eps

	if degraded && len(moved) == 0 {
		// Utilization dropped without any controller action: a natural
		// workload fluctuation. Hold the configuration rather than
		// react to what the sensitivity change did not announce.
		st.next = cur
		return
	}

	if degraded && len(moved) > 0 {
		if len(moved) == 1 {
			// Unambiguous blame: revert the tunable.
			t := moved[0]
			st.next = t.WithLevel(cur, t.LevelFor(st.prev))
			if wasCG {
				// A coarse-grain jump overshot the balance point:
				// fall back and let FG approach it one step at a time
				// instead of pinning the tunable at the baseline.
				st.isolate = append(st.isolate, t)
				st.lastKind = ActionRevert
				c.reverts++
				return
			}
			// A fine-grain step failed: count the oscillation; past
			// the dithering budget, pin the tunable at the last
			// zero-gradient state (Algorithm 1's cut-off).
			st.lastKind = ActionRevert
			st.dither[t]++
			if st.dither[t] >= c.opts.MaxDither {
				st.next = t.WithLevel(st.next, t.LevelFor(st.lastGood))
				st.frozen[t] = true
				st.lastKind = ActionFreeze
			} else {
				// Re-probe later, after the other suspects.
				st.isolate = append(st.isolate, t)
			}
			c.reverts++
			return
		}
		// Several tunables moved together (a CG jump or a concurrent FG
		// step): revert them all, then test them one at a time to
		// isolate the responsible tunable.
		c.revertTo(st, cur, st.prev, moved)
		st.isolate = append(st.isolate, moved...)
		return
	}

	// Gradient >= 0: the current configuration performs at least as well
	// as the previous one; remember it and keep reducing power.
	st.lastGood = cur

	// Isolation mode: step one suspect at a time so blame stays
	// unambiguous.
	for len(st.isolate) > 0 {
		t := st.isolate[0]
		st.isolate = st.isolate[1:]
		if !c.fgEligible(st, t) {
			continue
		}
		if next, ok := t.Step(cur, hw.Down); ok {
			st.next = next
			st.lastMoved = []hw.Tunable{t}
			st.lastKind = ActionFG
			c.fgActions++
			return
		}
	}

	// Concurrent decrement (Section 5.2: "all tunables can be fine-tuned
	// concurrently") of the eligible tunables with a clean record;
	// tunables that have already caused a revert are only re-probed
	// individually through the isolation queue.
	next := cur
	var movedNow []hw.Tunable
	for _, t := range c.tunables {
		if !c.fgEligible(st, t) || st.dither[t] > 0 {
			continue
		}
		if stepped, ok := t.Step(next, hw.Down); ok {
			next = stepped
			movedNow = append(movedNow, t)
		}
	}
	if len(movedNow) == 0 {
		st.next = cur // converged: floor or frozen everywhere
		return
	}
	st.next = next
	st.lastMoved = movedNow
	st.lastKind = ActionFG
	c.fgActions++
}

// Snapshot describes the controller's current per-kernel decisions, for
// reporting and debugging.
type Snapshot struct {
	Kernel string
	Config hw.Config
	Bins   sensitivity.Bins
}

// Snapshots returns the current state for every kernel seen so far.
func (c *Controller) Snapshots() []Snapshot {
	out := make([]Snapshot, 0, len(c.kernels))
	for name, st := range c.kernels {
		out = append(out, Snapshot{Kernel: name, Config: st.next, Bins: st.bins})
	}
	return out
}

func (c *Controller) String() string {
	cg, fg, rv := c.Stats()
	return fmt.Sprintf("%s: %d kernels, %d CG, %d FG, %d reverts",
		c.Name(), len(c.kernels), cg, fg, rv)
}
