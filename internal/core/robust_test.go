package core

import (
	"testing"

	"harmonia/internal/faults"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

func naiveOptions() Options {
	return Options{Predictor: predictor(), Robust: RobustOptions{Disabled: true}}
}

// TestCleanPathEquivalence is the acceptance gate for the hardening
// layer: with no faults injected, the hardened controller must
// reproduce the naive (seed) controller's results bit-for-bit on the
// whole 14-application suite — every decision and therefore every ED²
// identical. The hardening layer only reacts to evidence of faults, so
// a clean platform must never trigger it.
func TestCleanPathEquivalence(t *testing.T) {
	for _, app := range workloads.Suite() {
		hardened := New(Options{Predictor: predictor()})
		naive := New(naiveOptions())

		repH, err := session.New(hardened).Run(app)
		if err != nil {
			t.Fatalf("%s hardened: %v", app.Name, err)
		}
		repN, err := session.New(naive).Run(app)
		if err != nil {
			t.Fatalf("%s naive: %v", app.Name, err)
		}

		if repH.ED2() != repN.ED2() {
			t.Errorf("%s: hardened ED2 %v != naive ED2 %v", app.Name, repH.ED2(), repN.ED2())
		}
		if len(repH.Runs) != len(repN.Runs) {
			t.Fatalf("%s: run counts differ", app.Name)
		}
		for i := range repH.Runs {
			if repH.Runs[i].Config != repN.Runs[i].Config {
				t.Fatalf("%s run %d: hardened %v != naive %v",
					app.Name, i, repH.Runs[i].Config, repN.Runs[i].Config)
			}
		}
		rej, ret, deg := hardened.RobustStats()
		if rej != 0 || ret != 0 || deg != 0 {
			t.Errorf("%s: hardening fired on clean platform: %d rejected, %d retried, %d degraded",
				app.Name, rej, ret, deg)
		}
	}
}

// converge drives a hardened controller on the clean simulator until it
// settles, returning the settled config and the iteration reached.
func converge(t *testing.T, c *Controller, k *workloads.Kernel, n int) (hw.Config, int) {
	t.Helper()
	sim := gpusim.Default()
	for i := 0; i < n; i++ {
		cfg := c.Decide(k.Name, i)
		c.Observe(k.Name, i, sim.Run(k, i, cfg))
	}
	return c.Decide(k.Name, n), n
}

// TestFaultHandlingPaths exercises the hardened controller's reactions
// to each telemetry fault class, table-driven.
func TestFaultHandlingPaths(t *testing.T) {
	sim := gpusim.Default()
	tests := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"noisy sample rejected, no spurious CG jump", func(t *testing.T) {
			c := New(Options{Predictor: predictor()})
			k := kernelByName(t, "MaxFlops.Main")
			settled, iter := converge(t, c, k, 30)

			// One wildly noisy observation: VALUBusy collapses as if the
			// kernel became memory bound. The naive controller CG-jumps on
			// this; the hardened one must reject it and hold.
			res := sim.Run(k, iter, settled)
			res.Counters.VALUBusy /= 4
			res.Counters.MemUnitBusy = 95
			c.Observe(k.Name, iter, res)

			if got := c.Decide(k.Name, iter+1); got != settled {
				t.Errorf("noisy sample moved config %v -> %v", settled, got)
			}
			rej, _, _ := c.RobustStats()
			if rej != 1 {
				t.Errorf("rejected = %d, want 1", rej)
			}
			if lg := c.Log(); lg[len(lg)-1].Kind != ActionReject {
				t.Errorf("last action = %v, want reject", lg[len(lg)-1].Kind)
			}
		}},
		{"stuck tunable retried then adopted", func(t *testing.T) {
			c := New(Options{Predictor: predictor()})
			k := kernelByName(t, "MaxFlops.Main")
			_, iter := converge(t, c, k, 6)

			// The hardware sticks at one fewer CU level than commanded:
			// every readback reports `stuck`, not the command. The
			// controller must re-issue the command VerifyRetries times,
			// then give up and adopt reality.
			commanded := c.Decide(k.Name, iter)
			stuck := hw.TunableCUs.WithLevel(commanded, hw.TunableCUs.LevelFor(commanded)-1)
			if stuck == commanded {
				stuck = hw.TunableCUs.WithLevel(commanded, hw.TunableCUs.LevelFor(commanded)+1)
			}
			for i := 0; i < defaultVerifyRetries; i++ {
				c.Observe(k.Name, iter, sim.Run(k, iter, stuck))
				if got := c.Decide(k.Name, iter+1); got != commanded {
					t.Fatalf("retry %d: command changed %v -> %v", i, commanded, got)
				}
			}
			// Retries exhausted: the next mismatch adopts the stuck state.
			c.Observe(k.Name, iter, sim.Run(k, iter, stuck))
			if got := c.Decide(k.Name, iter+1); got != stuck {
				t.Fatalf("after retries, want adopted %v, got %v", stuck, got)
			}
			_, ret, _ := c.RobustStats()
			if ret != defaultVerifyRetries {
				t.Errorf("retried = %d, want %d", ret, defaultVerifyRetries)
			}
		}},
		{"watchdog degrades after M unreliable samples and recovers", func(t *testing.T) {
			c := New(Options{Predictor: predictor()})
			k := kernelByName(t, "CoMD.AdvanceVelocity")
			settled, iter := converge(t, c, k, 30)

			// M consecutive garbage samples (outliers at the settled
			// config) must trip the watchdog.
			for i := 0; i < defaultWatchdogM; i++ {
				res := sim.Run(k, iter+i, settled)
				res.Counters.VALUBusy = 0
				res.Counters.MemUnitBusy = 100
				c.Observe(k.Name, iter+i, res)
			}
			if !c.Degraded(k.Name) {
				t.Fatal("watchdog did not trip after M unreliable samples")
			}
			_, _, deg := c.RobustStats()
			if deg != 1 {
				t.Errorf("degrade events = %d, want 1", deg)
			}
			held := c.Decide(k.Name, iter+defaultWatchdogM)
			if !held.Valid() {
				t.Fatalf("degraded hold config invalid: %v", held)
			}

			// Telemetry stabilizes: RecoverN clean samples end degraded
			// mode automatically.
			for i := 0; i < defaultRecoverN; i++ {
				c.Observe(k.Name, iter+defaultWatchdogM+i,
					sim.Run(k, 0, held))
			}
			if c.Degraded(k.Name) {
				t.Fatal("controller did not recover after clean samples")
			}
			lg := c.Log()
			if lg[len(lg)-1].Kind != ActionRecover {
				t.Errorf("last action = %v, want recover", lg[len(lg)-1].Kind)
			}
		}},
		{"repeated noise bursts do not dither config", func(t *testing.T) {
			// Alternating clean/noisy samples: the hardened controller
			// must not bounce between configurations (spurious
			// revert/dither), only reject the bad samples.
			c := New(Options{Predictor: predictor()})
			k := kernelByName(t, "Sort.BottomScan")
			settled, iter := converge(t, c, k, 50)
			cgBefore, _, _ := c.Stats()
			for i := 0; i < 12; i++ {
				res := sim.Run(k, iter+i, settled)
				if i%2 == 0 {
					res.Counters.VALUBusy *= 0.3
				}
				c.Observe(k.Name, iter+i, res)
				got := c.Decide(k.Name, iter+i+1)
				if dist(got, settled) > 1 {
					t.Fatalf("iteration %d: config ran away: %v -> %v", i, settled, got)
				}
			}
			cgAfter, _, _ := c.Stats()
			if cgAfter != cgBefore {
				t.Errorf("noise bursts caused %d spurious CG jumps", cgAfter-cgBefore)
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, tc.run)
	}
}

// dist is the L1 grid distance between two configurations.
func dist(a, b hw.Config) int {
	d := 0
	for _, tu := range hw.Tunables() {
		la, lb := tu.LevelFor(a), tu.LevelFor(b)
		if la > lb {
			d += la - lb
		} else {
			d += lb - la
		}
	}
	return d
}

// TestHardenedSurvivesInjectedFaultSession drives the hardened and the
// naive controller through identical fault-injected sessions and checks
// the hardened one never emits an illegal configuration and engages its
// machinery.
func TestHardenedSurvivesInjectedFaultSession(t *testing.T) {
	app := workloads.ByName("Graph500")
	if app == nil {
		t.Fatal("Graph500 missing from suite")
	}
	hardened := New(Options{Predictor: predictor()})
	sess := session.New(hardened)
	sess.Faults = faults.New(faults.Profile(99, 1))
	rep, err := sess.Run(app)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		if !run.Config.Valid() || !run.Commanded.Valid() {
			t.Fatalf("illegal config in faulted run: %+v", run)
		}
	}
	rej, ret, _ := hardened.RobustStats()
	if rej+ret == 0 {
		t.Error("full-intensity faults never engaged the hardening layer")
	}
}
