package core

import (
	"sync"
	"testing"

	"harmonia/internal/counters"
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/sensitivity"
	"harmonia/internal/workloads"
)

// A shared trained predictor: training sweeps the whole config space, so
// build it once.
var (
	predOnce sync.Once
	pred     *sensitivity.Predictor
)

func predictor() *sensitivity.Predictor {
	predOnce.Do(func() { pred = sensitivity.DefaultPredictor() })
	return pred
}

func kernelByName(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %q not found", name)
	return nil
}

// drive runs the controller against the simulator for n iterations of one
// kernel and returns the visited configurations.
func drive(c *Controller, k *workloads.Kernel, n int) []hw.Config {
	sim := gpusim.Default()
	var visited []hw.Config
	for i := 0; i < n; i++ {
		cfg := c.Decide(k.Name, i)
		visited = append(visited, cfg)
		c.Observe(k.Name, i, sim.Run(k, i, cfg))
	}
	return visited
}

func TestControllerName(t *testing.T) {
	p := predictor()
	if got := New(Options{Predictor: p}).Name(); got != "harmonia" {
		t.Errorf("Name = %q", got)
	}
	if got := New(Options{Predictor: p, DisableFG: true}).Name(); got != "harmonia-cg" {
		t.Errorf("CG-only Name = %q", got)
	}
	if got := NewComputeOnly(p).Name(); got != "compute-dvfs-only" {
		t.Errorf("compute-only Name = %q", got)
	}
}

func TestInitialDecisionIsBaseline(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	if got := c.Decide("any.kernel", 0); got != hw.MaxConfig() {
		t.Errorf("first decision = %v, want baseline max", got)
	}
}

func TestDecisionsAlwaysValid(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	for _, k := range workloads.AllKernels() {
		for _, cfg := range drive(c, k, 12) {
			if !cfg.Valid() {
				t.Fatalf("%s: invalid decision %v", k.Name, cfg)
			}
		}
	}
}

func TestMaxFlopsConvergesToLowMemoryFullCompute(t *testing.T) {
	// MaxFlops is compute bound and memory insensitive: Harmonia must
	// keep compute at maximum and walk memory to the floor (Fig 3a,
	// Section 7.1).
	c := New(Options{Predictor: predictor()})
	k := kernelByName(t, "MaxFlops.Main")
	visited := drive(c, k, 30)
	final := visited[len(visited)-1]
	if final.Compute.CUs != hw.MaxCUs || final.Compute.Freq != hw.MaxCUFreq {
		t.Errorf("final compute config = %v, want maximum", final.Compute)
	}
	if final.Memory.BusFreq != hw.MinMemFreq {
		t.Errorf("final memory freq = %v, want %v (floor)", final.Memory.BusFreq, hw.MinMemFreq)
	}
}

func TestSortBottomScanMemoryFloor(t *testing.T) {
	// Section 7.1: BottomScan's memory bus can be reduced to 475 MHz
	// without hurting performance.
	c := New(Options{Predictor: predictor()})
	k := kernelByName(t, "Sort.BottomScan")
	visited := drive(c, k, 50)
	final := visited[len(visited)-1]
	if final.Memory.BusFreq != hw.MinMemFreq {
		t.Errorf("final memory freq = %v, want 475MHz", final.Memory.BusFreq)
	}
	if final.Compute.CUs < 28 {
		t.Errorf("final CUs = %d; compute-sensitive kernel should stay high", final.Compute.CUs)
	}
}

func TestThrashingKernelGetsCUsGated(t *testing.T) {
	// Section 7.1: BPT's optimal balance point uses far fewer CUs.
	c := New(Options{Predictor: predictor()})
	k := kernelByName(t, "BPT.FindK")
	visited := drive(c, k, 40)
	final := visited[len(visited)-1]
	if final.Compute.CUs > 20 {
		t.Errorf("final CUs = %d, want aggressive power gating (<=20)", final.Compute.CUs)
	}
}

func TestPerKernelStateIsIndependent(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	sim := gpusim.Default()
	mf := kernelByName(t, "MaxFlops.Main")
	av := kernelByName(t, "CoMD.AdvanceVelocity")
	for i := 0; i < 25; i++ {
		for _, k := range []*workloads.Kernel{mf, av} {
			cfg := c.Decide(k.Name, i)
			c.Observe(k.Name, i, sim.Run(k, i, cfg))
		}
	}
	mfCfg := c.Decide(mf.Name, 25)
	avCfg := c.Decide(av.Name, 25)
	if mfCfg.Memory.BusFreq >= avCfg.Memory.BusFreq {
		t.Errorf("MaxFlops mem %v should be below AdvanceVelocity mem %v",
			mfCfg.Memory.BusFreq, avCfg.Memory.BusFreq)
	}
	if mfCfg.Compute.CUs <= avCfg.Compute.CUs {
		t.Errorf("MaxFlops CUs %d should exceed AdvanceVelocity CUs %d",
			mfCfg.Compute.CUs, avCfg.Compute.CUs)
	}
}

func TestComputeOnlyTouchesOnlyFrequency(t *testing.T) {
	c := NewComputeOnly(predictor())
	for _, k := range workloads.AllKernels() {
		for _, cfg := range drive(c, k, 10) {
			if cfg.Compute.CUs != hw.MaxCUs {
				t.Fatalf("%s: compute-only policy changed CU count: %v", k.Name, cfg)
			}
			if cfg.Memory.BusFreq != hw.MaxMemFreq {
				t.Fatalf("%s: compute-only policy changed memory: %v", k.Name, cfg)
			}
		}
	}
}

func TestCGOnlyNeverFineTunes(t *testing.T) {
	c := New(Options{Predictor: predictor(), DisableFG: true})
	for _, k := range workloads.AllKernels() {
		drive(c, k, 10)
	}
	_, fg, _ := c.Stats()
	if fg != 0 {
		t.Errorf("CG-only controller took %d FG actions", fg)
	}
}

func TestFGRecoversFromCGMisprediction(t *testing.T) {
	// Streamcluster: CG misbins the CU sensitivity (narrow HIGH miss,
	// Section 7.1) and slows the kernel; the FG loop must recover most
	// of the loss.
	sim := gpusim.Default()
	k := kernelByName(t, "Streamcluster.PGain")
	base := sim.Run(k, 0, hw.MaxConfig()).Time

	run := func(disableFG bool) float64 {
		c := New(Options{Predictor: predictor(), DisableFG: disableFG})
		total := 0.0
		for i := 0; i < 60; i++ {
			cfg := c.Decide(k.Name, i)
			r := sim.Run(k, i, cfg)
			c.Observe(k.Name, i, r)
			total += r.Time
		}
		return total / (60 * base)
	}
	cgLoss := run(true) - 1
	hmLoss := run(false) - 1
	if cgLoss < 0.05 {
		t.Errorf("CG-only Streamcluster slowdown = %.1f%%, want a visible outlier (>5%%)", cgLoss*100)
	}
	if hmLoss > 0.02 {
		t.Errorf("Harmonia Streamcluster slowdown = %.1f%%, want <2%% (FG repairs CG)", hmLoss*100)
	}
	if hmLoss > cgLoss/2 {
		t.Errorf("FG repaired too little: CG %.1f%% vs FG+CG %.1f%%", cgLoss*100, hmLoss*100)
	}
}

func TestGraph500PinsComputeAndDithersMemory(t *testing.T) {
	// Figures 15-16: high divergence pins compute frequency at maximum
	// (a single state) while memory frequency moves across states.
	c := New(Options{Predictor: predictor()})
	k := kernelByName(t, "Graph500.BottomStepUp")
	visited := drive(c, k, 24)
	freqStates := map[hw.MHz]bool{}
	memStates := map[hw.MHz]bool{}
	for _, cfg := range visited {
		freqStates[cfg.Compute.Freq] = true
		memStates[cfg.Memory.BusFreq] = true
	}
	if len(freqStates) != 1 || !freqStates[hw.MaxCUFreq] {
		t.Errorf("compute freq states = %v, want only 1000MHz", freqStates)
	}
	if len(memStates) < 2 {
		t.Errorf("memory states = %v, want multiple (dithering)", memStates)
	}
}

func TestRevertOnArtificialSensitivityChange(t *testing.T) {
	// Construct a synthetic scenario: a result whose counters depend on
	// the config in a way that flips bins right after a controller move.
	// The controller must revert rather than chase its own tail.
	p := predictor()
	c := New(Options{Predictor: p})
	k := kernelByName(t, "CoMD.EAM_Force_1")
	sim := gpusim.Default()

	// Run normally until stable.
	for i := 0; i < 20; i++ {
		cfg := c.Decide(k.Name, i)
		c.Observe(k.Name, i, sim.Run(k, i, cfg))
	}
	_, _, reverts := c.Stats()
	// Some reverts should have occurred during convergence (probing),
	// and the controller must have settled: the next decisions repeat.
	a := c.Decide(k.Name, 20)
	sim20 := sim.Run(k, 20, a)
	c.Observe(k.Name, 20, sim20)
	b := c.Decide(k.Name, 21)
	if a != b {
		t.Errorf("controller not settled after 20 iterations: %v -> %v", a, b)
	}
	_ = reverts
}

func TestStatsCounting(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	drive(c, kernelByName(t, "MaxFlops.Main"), 15)
	cg, fg, _ := c.Stats()
	if cg < 1 {
		t.Errorf("CG actions = %d, want >= 1", cg)
	}
	if fg < 1 {
		t.Errorf("FG actions = %d, want >= 1 (memory walk)", fg)
	}
	if c.String() == "" {
		t.Error("String() empty")
	}
}

func TestSnapshots(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	drive(c, kernelByName(t, "MaxFlops.Main"), 5)
	drive(c, kernelByName(t, "Sort.BottomScan"), 5)
	snaps := c.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	for _, s := range snaps {
		if !s.Config.Valid() {
			t.Errorf("%s: invalid snapshot config", s.Kernel)
		}
	}
}

func TestOptionDefaults(t *testing.T) {
	c := New(Options{Predictor: predictor()})
	if c.opts.MaxDither != 1 || c.opts.Deadband != 0.005 || c.opts.SmoothAlpha != 0.3 {
		t.Errorf("defaults = %+v", c.opts)
	}
	if len(c.tunables) != 3 {
		t.Errorf("default tunables = %v", c.tunables)
	}
	if c.opts.Initial != hw.MaxConfig() {
		t.Errorf("default initial = %v", c.opts.Initial)
	}
}

func TestCustomInitialConfig(t *testing.T) {
	init := hw.Config{
		Compute: hw.ComputeConfig{CUs: 16, Freq: 700},
		Memory:  hw.MemConfig{BusFreq: 925},
	}
	c := New(Options{Predictor: predictor(), Initial: init})
	if got := c.Decide("x.y", 0); got != init {
		t.Errorf("initial decision = %v, want %v", got, init)
	}
}

func TestCGTargetsMonotoneInBin(t *testing.T) {
	for _, tu := range hw.Tunables() {
		lo := cgTarget(tu, sensitivity.Low)
		med := cgTarget(tu, sensitivity.Med)
		hi := cgTarget(tu, sensitivity.High)
		if !(lo <= med && med <= hi) {
			t.Errorf("%v: CG targets not monotone: %d %d %d", tu, lo, med, hi)
		}
		if hi != tu.Levels()-1 {
			t.Errorf("%v: HIGH target %d, want maximum level", tu, hi)
		}
	}
}

func TestUnmanagedTunablesPinnedHigh(t *testing.T) {
	c := New(Options{Predictor: predictor(), Tunables: []hw.Tunable{hw.TunableMemFreq}})
	res := gpusim.Default().Run(kernelByName(t, "CoMD.AdvanceVelocity"), 0, hw.MaxConfig())
	bins := c.binsFor(res.Counters)
	if bins.CUs != sensitivity.High || bins.CUFreq != sensitivity.High {
		t.Errorf("unmanaged tunables not pinned HIGH: %+v", bins)
	}
}

func TestHysteresisSuppressesSingleIterationFlicker(t *testing.T) {
	// Feed the controller alternating counter profiles: bins that flip
	// for exactly one observation must not trigger a CG jump.
	p := predictor()
	c := New(Options{Predictor: p, SmoothAlpha: 1}) // no smoothing: raw bins
	k := kernelByName(t, "CoMD.EAM_Force_1")
	sim := gpusim.Default()

	// Converge on the real kernel first.
	for i := 0; i < 15; i++ {
		cfg := c.Decide(k.Name, i)
		c.Observe(k.Name, i, sim.Run(k, i, cfg))
	}
	settled := c.Decide(k.Name, 15)

	// One flicker observation: synthesize a memory-bound counter sample.
	flicker := sim.Run(kernelByName(t, "CoMD.AdvanceVelocity"), 0, settled)
	flicker.Config = settled
	c.Observe(k.Name, 15, flicker)
	after := c.Decide(k.Name, 16)
	if after != settled {
		t.Errorf("single flicker moved config %v -> %v", settled, after)
	}
}

func TestBlendedHistoryUsedForBins(t *testing.T) {
	// With SmoothAlpha small, one aberrant sample barely moves the
	// history.
	cs := counters.Set{VALUBusy: 50, MemUnitBusy: 50, VALUUtilization: 90}
	aberrant := counters.Set{VALUBusy: 100, MemUnitBusy: 0, VALUUtilization: 10}
	blended := cs.Blend(aberrant, 0.3)
	if blended.VALUBusy != 65 || blended.MemUnitBusy != 35 {
		t.Errorf("blend = %+v", blended)
	}
}
