// Package oracle implements the paper's oracle comparison scheme: for
// every iteration of every kernel it exhaustively profiles all ~450
// hardware configurations and picks the one minimizing ED² (Section 7).
// As the paper notes, the scheme is useful as an evaluation bound but
// impractical to deploy — here it simply has privileged access to the
// simulator and power model that a real policy would not.
package oracle

import (
	"sync"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/power"
	"harmonia/internal/simcache"
	"harmonia/internal/sweep"
	"harmonia/internal/timeline"
	"harmonia/internal/trace"
	"harmonia/internal/workloads"
)

// Objective selects the figure of merit the oracle minimizes. The paper
// evaluates against the ED² oracle and notes that ED "yields similar
// conclusions" (Section 3.4); the energy objective exists for the
// Figure 6 style comparison.
type Objective int

const (
	// MinED2 minimizes energy-delay² (the paper's oracle).
	MinED2 Objective = iota
	// MinED minimizes energy-delay.
	MinED
	// MinEnergy minimizes energy.
	MinEnergy
	// MinTime maximizes performance.
	MinTime
)

func (o Objective) String() string {
	switch o {
	case MinED2:
		return "ed2"
	case MinED:
		return "ed"
	case MinEnergy:
		return "energy"
	case MinTime:
		return "time"
	default:
		return "unknown"
	}
}

// Oracle is the per-kernel-invocation exhaustive-search policy. It
// implements policy.Policy and is safe for concurrent use: the decision
// cache is mutex-guarded, so one Oracle may serve parallel sessions
// (e.g. concurrent served runs) without racing.
type Oracle struct {
	sim       gpusim.Runner
	pow       *power.Model
	objective Objective
	kernels   map[string]*workloads.Kernel
	space     []hw.Config
	workers   int

	// When sim is a simcache runner, memo/model give the oracle access
	// to the shared decision memo: the argmin of a deterministic sweep
	// is itself memoizable, so a fresh Oracle over a warm cache skips
	// the re-sweep entirely instead of re-scoring the space through
	// per-result cache hits.
	memo  *simcache.Cache
	model *gpusim.Model

	mu     sync.Mutex
	cache  map[cacheKey]hw.Config
	tracer *trace.Recorder
	// sources remembers, per invocation, how the answer was produced
	// (oracle-cache / oracle-memo / oracle-sweep), for the timeline's
	// decision records. Allocated only once a timeline recorder is
	// attached, keeping the unrecorded Decide path allocation-free.
	sources map[cacheKey]string
}

type cacheKey struct {
	kernel string
	iter   int
}

// New returns the ED² oracle for the kernels of the given applications.
// sim may be the raw interval model or a memoizing simcache runner —
// with the latter, repeated sweeps of the same kernel hit the cache
// instead of re-simulating the whole configuration space.
func New(sim gpusim.Runner, pow *power.Model, apps ...*workloads.Application) *Oracle {
	return NewFor(MinED2, sim, pow, apps...)
}

// NewFor returns an oracle minimizing the given objective.
func NewFor(obj Objective, sim gpusim.Runner, pow *power.Model, apps ...*workloads.Application) *Oracle {
	kernels := make(map[string]*workloads.Kernel)
	for _, app := range apps {
		for _, k := range app.Kernels {
			kernels[k.Name] = k
		}
	}
	o := &Oracle{
		sim:       sim,
		pow:       pow,
		objective: obj,
		kernels:   kernels,
		space:     hw.ConfigSpace(),
		cache:     make(map[cacheKey]hw.Config),
	}
	if cached, ok := sim.(simcache.Cached); ok && cached.Cache != nil {
		o.memo, o.model = cached.Cache, cached.Model
	}
	return o
}

// WithWorkers sets the worker count the oracle's exhaustive sweeps may
// use and returns the oracle. Zero (the default) means GOMAXPROCS — the
// right width for a standalone oracle, but a W-wide oversubscription
// when W oracle-driven sessions already run in parallel. Fan-outs that
// run oracles as inner jobs should hand each one its batch.Budget share
// instead: a share of 1 makes every sweep ride internal/sweep's serial
// fast path.
func (o *Oracle) WithWorkers(workers int) *Oracle {
	o.workers = workers
	return o
}

// Name implements policy.Policy.
func (o *Oracle) Name() string {
	if o.objective == MinED2 {
		return "oracle"
	}
	return "oracle-" + o.objective.String()
}

// AttachTracer implements trace.Traceable: decision spans — one per
// Decide, annotated with how the answer was produced (local cache, the
// shared decision memo, or a fresh exhaustive sweep) — are recorded
// under rec's ambient parent. Tracing is pure observation; decisions
// are identical with or without a recorder.
func (o *Oracle) AttachTracer(rec *trace.Recorder) {
	o.mu.Lock()
	o.tracer = rec
	o.mu.Unlock()
}

// AttachTimeline implements timeline.Attachable: once attached, Decide
// remembers each invocation's answer source so TimelineDecision can
// report it. Pure observation — decisions are identical either way.
func (o *Oracle) AttachTimeline(*timeline.Recorder) {
	o.mu.Lock()
	if o.sources == nil {
		o.sources = make(map[cacheKey]string)
	}
	o.mu.Unlock()
}

// TimelineDecision implements timeline.Annotator, classifying how the
// invocation's answer was produced. It reports nothing until a
// timeline recorder is attached.
func (o *Oracle) TimelineDecision(kernel string, iter int) (timeline.Detail, bool) {
	o.mu.Lock()
	src, ok := o.sources[cacheKey{kernel, iter}]
	o.mu.Unlock()
	if !ok {
		return timeline.Detail{}, false
	}
	return timeline.Detail{Source: src}, true
}

// noteSource records the answer source for one invocation when a
// timeline recorder is attached (no-op otherwise). Sources are sticky:
// later decision-cache hits do not overwrite how the answer was first
// computed.
func (o *Oracle) noteSource(key cacheKey, src string) {
	o.mu.Lock()
	if o.sources != nil {
		if _, ok := o.sources[key]; !ok {
			o.sources[key] = src
		}
	}
	o.mu.Unlock()
}

// Decide implements policy.Policy: the ED²-minimal configuration for this
// exact kernel invocation, found by exhaustive profiling.
func (o *Oracle) Decide(kernel string, iter int) hw.Config {
	key := cacheKey{kernel, iter}
	o.mu.Lock()
	cfg, ok := o.cache[key]
	tracer := o.tracer
	recordSources := o.sources != nil
	o.mu.Unlock()
	// sp != nil guards below keep the untraced path free of the
	// allocation the Config.String() arguments would otherwise cost.
	sp := tracer.StartAmbient("oracle.decide")
	if sp != nil {
		sp.Attr("kernel", kernel).Int("iter", int64(iter))
	}
	defer sp.End()
	if ok {
		if sp != nil {
			sp.Attr("source", "decision-cache").Attr("config", cfg.String())
		}
		if recordSources {
			o.noteSource(key, "oracle-cache")
		}
		return cfg
	}
	k, ok := o.kernels[kernel]
	if !ok {
		if sp != nil {
			sp.Attr("source", "unknown-kernel").Attr("config", hw.MaxConfig().String())
		}
		return hw.MaxConfig()
	}
	// A shared decision memo may already hold this sweep's argmin —
	// computed by this oracle at an earlier iteration of the same phase,
	// or by any other oracle over the same cache.
	if o.memo != nil {
		if cfg, ok := o.memo.Decision(o.model, o.pow.Params(), k, iter, int(o.objective), len(o.space)); ok {
			o.mu.Lock()
			o.cache[key] = cfg
			o.mu.Unlock()
			if sp != nil {
				sp.Attr("source", "memo").Attr("config", cfg.String())
			}
			if recordSources {
				o.noteSource(key, "oracle-memo")
			}
			return cfg
		}
	}
	// Exhaustive profiling of the whole configuration space; the
	// simulator is pure, so the search fans out over a worker pool with
	// deterministic earliest-index tie-breaking. The lock is NOT held
	// across the sweep: concurrent callers may race to compute the same
	// key, but the sweep is deterministic so both write the same value.
	best, _, ok := sweep.MinTraced(sp, o.space, o.workers, o.evalFor(k, iter))
	if !ok {
		best = hw.MaxConfig()
	}
	if o.memo != nil {
		o.memo.StoreDecision(o.model, o.pow.Params(), k, iter, int(o.objective), len(o.space), best)
	}
	o.mu.Lock()
	o.cache[key] = best
	o.mu.Unlock()
	if sp != nil {
		sp.Attr("source", "sweep").Attr("config", best.String())
	}
	if recordSources {
		o.noteSource(key, "oracle-sweep")
	}
	return best
}

// Observe implements policy.Policy; the oracle needs no feedback.
func (*Oracle) Observe(string, int, gpusim.Result) {}

// evalFor returns the sweep evaluator for one kernel invocation. When
// the runner supports prepared evaluation (gpusim.PreparedRunner), the
// per-invocation work — invariant hoisting, memo-key projection — is
// done once here instead of once per swept configuration; results are
// bit-identical either way.
func (o *Oracle) evalFor(k *workloads.Kernel, iter int) sweep.Eval {
	if pr, ok := o.sim.(gpusim.PreparedRunner); ok {
		run := pr.Prepare(k, iter)
		return func(cfg hw.Config) float64 { return o.score(run(cfg), cfg) }
	}
	return func(cfg hw.Config) float64 { return o.evaluate(k, iter, cfg) }
}

// evaluate scores one kernel invocation at cfg under the objective.
func (o *Oracle) evaluate(k *workloads.Kernel, iter int, cfg hw.Config) float64 {
	return o.score(o.sim.Run(k, iter, cfg), cfg)
}

// score folds one simulation result into the oracle's figure of merit.
func (o *Oracle) score(r gpusim.Result, cfg hw.Config) float64 {
	rails := o.pow.Rails(cfg, power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	})
	energy := rails.Card() * r.Time
	switch o.objective {
	case MinED:
		return energy * r.Time
	case MinEnergy:
		return energy
	case MinTime:
		return r.Time
	default:
		return energy * r.Time * r.Time
	}
}

// ed2 evaluates one kernel invocation's energy-delay-squared at cfg,
// regardless of the oracle's configured objective (used by tests).
func (o *Oracle) ed2(k *workloads.Kernel, iter int, cfg hw.Config) float64 {
	r := o.sim.Run(k, iter, cfg)
	rails := o.pow.Rails(cfg, power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	})
	energy := rails.Card() * r.Time
	return energy * r.Time * r.Time
}
