// Package oracle implements the paper's oracle comparison scheme: for
// every iteration of every kernel it exhaustively profiles all ~450
// hardware configurations and picks the one minimizing ED² (Section 7).
// As the paper notes, the scheme is useful as an evaluation bound but
// impractical to deploy — here it simply has privileged access to the
// simulator and power model that a real policy would not.
package oracle

import (
	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/power"
	"harmonia/internal/sweep"
	"harmonia/internal/workloads"
)

// Objective selects the figure of merit the oracle minimizes. The paper
// evaluates against the ED² oracle and notes that ED "yields similar
// conclusions" (Section 3.4); the energy objective exists for the
// Figure 6 style comparison.
type Objective int

const (
	// MinED2 minimizes energy-delay² (the paper's oracle).
	MinED2 Objective = iota
	// MinED minimizes energy-delay.
	MinED
	// MinEnergy minimizes energy.
	MinEnergy
	// MinTime maximizes performance.
	MinTime
)

func (o Objective) String() string {
	switch o {
	case MinED2:
		return "ed2"
	case MinED:
		return "ed"
	case MinEnergy:
		return "energy"
	case MinTime:
		return "time"
	default:
		return "unknown"
	}
}

// Oracle is the per-kernel-invocation exhaustive-search policy. It
// implements policy.Policy.
type Oracle struct {
	sim       *gpusim.Model
	pow       *power.Model
	objective Objective
	kernels   map[string]*workloads.Kernel
	space     []hw.Config
	cache     map[cacheKey]hw.Config
}

type cacheKey struct {
	kernel string
	iter   int
}

// New returns the ED² oracle for the kernels of the given applications.
func New(sim *gpusim.Model, pow *power.Model, apps ...*workloads.Application) *Oracle {
	return NewFor(MinED2, sim, pow, apps...)
}

// NewFor returns an oracle minimizing the given objective.
func NewFor(obj Objective, sim *gpusim.Model, pow *power.Model, apps ...*workloads.Application) *Oracle {
	kernels := make(map[string]*workloads.Kernel)
	for _, app := range apps {
		for _, k := range app.Kernels {
			kernels[k.Name] = k
		}
	}
	return &Oracle{
		sim:       sim,
		pow:       pow,
		objective: obj,
		kernels:   kernels,
		space:     hw.ConfigSpace(),
		cache:     make(map[cacheKey]hw.Config),
	}
}

// Name implements policy.Policy.
func (o *Oracle) Name() string {
	if o.objective == MinED2 {
		return "oracle"
	}
	return "oracle-" + o.objective.String()
}

// Decide implements policy.Policy: the ED²-minimal configuration for this
// exact kernel invocation, found by exhaustive profiling.
func (o *Oracle) Decide(kernel string, iter int) hw.Config {
	key := cacheKey{kernel, iter}
	if cfg, ok := o.cache[key]; ok {
		return cfg
	}
	k, ok := o.kernels[kernel]
	if !ok {
		return hw.MaxConfig()
	}
	// Exhaustive profiling of the whole configuration space; the
	// simulator is pure, so the search fans out over a worker pool with
	// deterministic earliest-index tie-breaking.
	best, _, ok := sweep.Min(o.space, 0, func(cfg hw.Config) float64 {
		return o.evaluate(k, iter, cfg)
	})
	if !ok {
		best = hw.MaxConfig()
	}
	o.cache[key] = best
	return best
}

// Observe implements policy.Policy; the oracle needs no feedback.
func (*Oracle) Observe(string, int, gpusim.Result) {}

// evaluate scores one kernel invocation at cfg under the objective.
func (o *Oracle) evaluate(k *workloads.Kernel, iter int, cfg hw.Config) float64 {
	r := o.sim.Run(k, iter, cfg)
	rails := o.pow.Rails(cfg, power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	})
	energy := rails.Card() * r.Time
	switch o.objective {
	case MinED:
		return energy * r.Time
	case MinEnergy:
		return energy
	case MinTime:
		return r.Time
	default:
		return energy * r.Time * r.Time
	}
}

// ed2 evaluates one kernel invocation's energy-delay-squared at cfg,
// regardless of the oracle's configured objective (used by tests).
func (o *Oracle) ed2(k *workloads.Kernel, iter int, cfg hw.Config) float64 {
	r := o.sim.Run(k, iter, cfg)
	rails := o.pow.Rails(cfg, power.Activity{
		VALUBusyFrac:    r.Counters.VALUBusy / 100,
		MemUnitBusyFrac: r.Counters.MemUnitBusy / 100,
		AchievedGBs:     r.AchievedGBs,
	})
	energy := rails.Card() * r.Time
	return energy * r.Time * r.Time
}
