package oracle

import (
	"sync"
	"testing"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/power"
	"harmonia/internal/simcache"
	"harmonia/internal/workloads"
)

func newOracle(apps ...*workloads.Application) *Oracle {
	return New(gpusim.Default(), power.Default(), apps...)
}

func TestOracleName(t *testing.T) {
	if got := newOracle().Name(); got != "oracle" {
		t.Errorf("Name = %q", got)
	}
}

func TestUnknownKernelFallsBackToMax(t *testing.T) {
	o := newOracle()
	if got := o.Decide("no.such", 0); got != hw.MaxConfig() {
		t.Errorf("unknown kernel config = %v, want max", got)
	}
}

func TestOracleDecisionsAreOptimal(t *testing.T) {
	// Spot-check: the oracle's pick must have ED2 no worse than a
	// handful of alternatives including the baseline.
	sim := gpusim.Default()
	pow := power.Default()
	app := workloads.Sort()
	o := New(sim, pow, app)
	k := app.Kernels[0]
	best := o.Decide(k.Name, 0)
	ed2 := func(cfg hw.Config) float64 { return o.ed2(k, 0, cfg) }
	for _, alt := range []hw.Config{
		hw.MaxConfig(), hw.MinConfig(),
		{Compute: hw.ComputeConfig{CUs: 16, Freq: 700}, Memory: hw.MemConfig{BusFreq: 925}},
	} {
		if ed2(best) > ed2(alt)+1e-12 {
			t.Errorf("oracle pick %v worse than %v", best, alt)
		}
	}
}

func TestOracleMatchesExhaustiveSearch(t *testing.T) {
	sim := gpusim.Default()
	pow := power.Default()
	app := workloads.MaxFlops()
	o := New(sim, pow, app)
	k := app.Kernels[0]
	best := o.Decide(k.Name, 0)
	for _, cfg := range hw.ConfigSpace() {
		if o.ed2(k, 0, cfg) < o.ed2(k, 0, best)-1e-12 {
			t.Fatalf("config %v beats oracle pick %v", cfg, best)
		}
	}
}

func TestOracleKnownOptimaShapes(t *testing.T) {
	o := newOracle(workloads.Suite()...)
	// MaxFlops: max compute, min memory.
	if got := o.Decide("MaxFlops.Main", 0); got.Compute != hw.MaxConfig().Compute ||
		got.Memory.BusFreq != hw.MinMemFreq {
		t.Errorf("MaxFlops oracle = %v", got)
	}
	// CoMD.AdvanceVelocity (memory bound): far fewer CUs, max memory.
	if got := o.Decide("CoMD.AdvanceVelocity", 0); got.Compute.CUs > 16 ||
		got.Memory.BusFreq != hw.MaxMemFreq {
		t.Errorf("AdvanceVelocity oracle = %v", got)
	}
	// BPT (thrashing): an interior CU count.
	if got := o.Decide("BPT.FindK", 0); got.Compute.CUs >= hw.MaxCUs || got.Compute.CUs <= hw.MinCUs {
		t.Errorf("BPT oracle CUs = %v, want interior", got.Compute.CUs)
	}
	// Streamcluster: everything maxed (no headroom).
	if got := o.Decide("Streamcluster.PGain", 0); got != hw.MaxConfig() {
		t.Errorf("Streamcluster oracle = %v, want max", got)
	}
}

func TestOracleCacheStable(t *testing.T) {
	o := newOracle(workloads.Graph500())
	a := o.Decide("Graph500.BottomStepUp", 3)
	b := o.Decide("Graph500.BottomStepUp", 3)
	if a != b {
		t.Errorf("cached decision changed: %v vs %v", a, b)
	}
}

func TestOraclePerIterationAdaptation(t *testing.T) {
	// Phase-varying kernels may get different optima per iteration;
	// whatever it picks must be valid for each.
	o := newOracle(workloads.Graph500())
	for i := 0; i < 8; i++ {
		cfg := o.Decide("Graph500.BottomStepUp", i)
		if !cfg.Valid() {
			t.Errorf("iteration %d: invalid config %v", i, cfg)
		}
	}
}

func TestObjectiveNamesAndStrings(t *testing.T) {
	if MinED2.String() != "ed2" || MinED.String() != "ed" ||
		MinEnergy.String() != "energy" || MinTime.String() != "time" ||
		Objective(9).String() != "unknown" {
		t.Error("objective strings wrong")
	}
	pm := power.Default()
	sim := gpusim.Default()
	if got := NewFor(MinED, sim, pm).Name(); got != "oracle-ed" {
		t.Errorf("Name = %q", got)
	}
	if got := New(sim, pm).Name(); got != "oracle" {
		t.Errorf("Name = %q", got)
	}
}

func TestObserveIsNoOp(t *testing.T) {
	o := newOracle(workloads.MaxFlops())
	before := o.Decide("MaxFlops.Main", 0)
	o.Observe("MaxFlops.Main", 0, gpusim.Result{})
	if after := o.Decide("MaxFlops.Main", 0); after != before {
		t.Error("Observe changed oracle state")
	}
}

func TestObjectivesDisagreeWhereExpected(t *testing.T) {
	// For a compute-bound kernel, the time objective keeps memory high
	// or anywhere (it is free); the energy objective must drop memory to
	// the floor; ED2 sits with energy here because the memory reduction
	// is performance-free.
	sim := gpusim.Default()
	pm := power.Default()
	app := workloads.MaxFlops()
	energy := NewFor(MinEnergy, sim, pm, app).Decide("MaxFlops.Main", 0)
	ed := NewFor(MinED, sim, pm, app).Decide("MaxFlops.Main", 0)
	if energy.Memory.BusFreq != hw.MinMemFreq {
		t.Errorf("energy objective memory = %v, want floor", energy.Memory.BusFreq)
	}
	if ed.Memory.BusFreq != hw.MinMemFreq {
		t.Errorf("ED objective memory = %v, want floor", ed.Memory.BusFreq)
	}
}

// TestOracleSharedAcrossConcurrentSessions is the regression test for
// the unsynchronized decision cache: one Oracle served to many parallel
// sessions (the POST /v1/runs "oracle" policy shape) must not race, and
// every session must see identical decisions. Run under -race.
func TestOracleSharedAcrossConcurrentSessions(t *testing.T) {
	app := workloads.ByName("Graph500")
	o := newOracle(app)

	type decision struct {
		kernel string
		iter   int
		cfg    hw.Config
	}
	const goroutines = 8
	results := make([][]decision, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < app.Iterations; iter++ {
				for _, k := range app.Kernels {
					cfg := o.Decide(k.Name, iter)
					results[g] = append(results[g], decision{k.Name, iter, cfg})
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("goroutine %d made %d decisions, want %d", g, len(results[g]), len(results[0]))
		}
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d decision %d = %+v, want %+v", g, i, results[g][i], results[0][i])
			}
		}
	}
}

// TestFreshOracleReusesMemoizedDecisions: two Oracles sharing one
// simcache must agree on every decision, with the second never
// re-sweeping — and both must match an uncached oracle bit-for-bit.
func TestFreshOracleReusesMemoizedDecisions(t *testing.T) {
	app := workloads.ByName("Graph500")
	cache := simcache.New()
	runner := simcache.For(gpusim.Default(), cache)

	plain := New(gpusim.Default(), power.Default(), app)
	first := New(runner, power.Default(), app)
	second := New(runner, power.Default(), app)

	for _, k := range app.Kernels {
		for iter := 0; iter < 3; iter++ {
			want := plain.Decide(k.Name, iter)
			if got := first.Decide(k.Name, iter); got != want {
				t.Fatalf("%s iter %d: memoized oracle chose %v, uncached %v", k.Name, iter, got, want)
			}
		}
	}
	hits0, _ := cache.DecisionStats()
	for _, k := range app.Kernels {
		for iter := 0; iter < 3; iter++ {
			if got, want := second.Decide(k.Name, iter), plain.Decide(k.Name, iter); got != want {
				t.Fatalf("%s iter %d: second oracle chose %v, want %v", k.Name, iter, got, want)
			}
		}
	}
	hits1, _ := cache.DecisionStats()
	if hits1 == hits0 {
		t.Fatal("second oracle never hit the shared decision memo")
	}
}
