package gpusim

import (
	"math"
	"testing"

	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

// goldenRow pins the exact float64 bit patterns of four Result fields
// for one (kernel, iter, config) triple. The bits were captured from
// the single-pass Run implementation before the Invariants hoisting, so
// this test is the proof that the hoisted fast path did not perturb a
// single ULP of the model's arithmetic.
type goldenRow struct {
	kernel                       string
	iter                         int
	cfg                          hw.Config
	timeBits, valuBusyBits       uint64
	achievedGBsBits, memTimeBits uint64
}

var goldenRows = []goldenRow{
	{"Sort.BottomScan", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f8d4d6e95199a4e, 0x40552b13b63042fc, 0x3ffb7b87f87e354c, 0x3f683f91e646f156},
	{"Sort.BottomScan", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f62856baaa431d2, 0x4050bec73d07d60e, 0x4025bd7ac1785fc6, 0x3f5046578b907ac5},
	{"Sort.BottomScan", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f5b492b52ef1402, 0x40522fac8326f7c8, 0x402d83841aa72f47, 0x3f426ffd7747ee64},
	{"Sort.BottomScan", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f4940367f4ced19, 0x404d7a515d0bbefc, 0x403fe46be2835286, 0x3f3a1554fbdad752},
	{"Sort.BottomScan", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f8d4d6e95199a4e, 0x40552b13b63042fc, 0x3ffb7b87f87e354c, 0x3f683f91e646f156},
	{"Sort.BottomScan", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f62856baaa431d2, 0x4050bec73d07d60e, 0x4025bd7ac1785fc6, 0x3f5046578b907ac5},
	{"Sort.BottomScan", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f5b492b52ef1402, 0x40522fac8326f7c8, 0x402d83841aa72f47, 0x3f426ffd7747ee64},
	{"Sort.BottomScan", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f4940367f4ced19, 0x404d7a515d0bbefc, 0x403fe46be2835286, 0x3f3a1554fbdad752},
	{"Sort.BottomScan", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f8d4d6e95199a4e, 0x40552b13b63042fc, 0x3ffb7b87f87e354c, 0x3f683f91e646f156},
	{"Sort.BottomScan", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f62856baaa431d2, 0x4050bec73d07d60e, 0x4025bd7ac1785fc6, 0x3f5046578b907ac5},
	{"Sort.BottomScan", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f5b492b52ef1402, 0x40522fac8326f7c8, 0x402d83841aa72f47, 0x3f426ffd7747ee64},
	{"Sort.BottomScan", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f4940367f4ced19, 0x404d7a515d0bbefc, 0x403fe46be2835286, 0x3f3a1554fbdad752},
	{"DeviceMemory.Stream", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3fb2210a8358564a, 0x4058f912416e5118, 0x403640f564c86c69, 0x3f9502606aa1673b},
	{"DeviceMemory.Stream", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f898fd841be3dbb, 0x4051b61bf2805c58, 0x405f90d22581eac2, 0x3f897d7ea2e676bf},
	{"DeviceMemory.Stream", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f82d7f85bec9290, 0x405338832ff42dd6, 0x406568eccdafc3bf, 0x3f82bdc17901764d},
	{"DeviceMemory.Stream", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f7d0da87a61743a, 0x4042b31287eec898, 0x406bc5b74f8da1aa, 0x3f7cee336a141f1d},
	{"DeviceMemory.Stream", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3fb2210a8358564a, 0x4058f912416e5118, 0x403640f564c86c69, 0x3f9502606aa1673b},
	{"DeviceMemory.Stream", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f898fd841be3dbb, 0x4051b61bf2805c58, 0x405f90d22581eac2, 0x3f897d7ea2e676bf},
	{"DeviceMemory.Stream", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f82d7f85bec9290, 0x405338832ff42dd6, 0x406568eccdafc3bf, 0x3f82bdc17901764d},
	{"DeviceMemory.Stream", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f7d0da87a61743a, 0x4042b31287eec898, 0x406bc5b74f8da1aa, 0x3f7cee336a141f1d},
	{"DeviceMemory.Stream", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3fb2210a8358564a, 0x4058f912416e5118, 0x403640f564c86c69, 0x3f9502606aa1673b},
	{"DeviceMemory.Stream", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f898fd841be3dbb, 0x4051b61bf2805c58, 0x405f90d22581eac2, 0x3f897d7ea2e676bf},
	{"DeviceMemory.Stream", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f82d7f85bec9290, 0x405338832ff42dd6, 0x406568eccdafc3bf, 0x3f82bdc17901764d},
	{"DeviceMemory.Stream", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f7d0da87a61743a, 0x4042b31287eec898, 0x406bc5b74f8da1aa, 0x3f7cee336a141f1d},
	{"LUD.Internal", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f8b1b747734690d, 0x40583c781c2af784, 0x401647f76d384450, 0x3f62ad81adea8976},
	{"LUD.Internal", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f5ccb8450a03bc7, 0x4056d0cf8843ac54, 0x4045930fe1302f5f, 0x3f4abc62ec3f389c},
	{"LUD.Internal", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f57a0c11fb0bb73, 0x40563e7abc06ff49, 0x404b63512402861d, 0x3f4889bf8208e5b6},
	{"LUD.Internal", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f4435b8c589d717, 0x40538130e0e12ca5, 0x40606fddcfa04f2e, 0x3f40e8a5fa2acbce},
	{"LUD.Internal", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f8b1b747734690d, 0x40583c781c2af784, 0x401647f76d384450, 0x3f62ad81adea8976},
	{"LUD.Internal", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f5ccb8450a03bc7, 0x4056d0cf8843ac54, 0x4045930fe1302f5f, 0x3f4abc62ec3f389c},
	{"LUD.Internal", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f57a0c11fb0bb73, 0x40563e7abc06ff49, 0x404b63512402861d, 0x3f4889bf8208e5b6},
	{"LUD.Internal", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f4435b8c589d717, 0x40538130e0e12ca5, 0x40606fddcfa04f2e, 0x3f40e8a5fa2acbce},
	{"LUD.Internal", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f8b1b747734690d, 0x40583c781c2af784, 0x401647f76d384450, 0x3f62ad81adea8976},
	{"LUD.Internal", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f5ccb8450a03bc7, 0x4056d0cf8843ac54, 0x4045930fe1302f5f, 0x3f4abc62ec3f389c},
	{"LUD.Internal", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f57a0c11fb0bb73, 0x40563e7abc06ff49, 0x404b63512402861d, 0x3f4889bf8208e5b6},
	{"LUD.Internal", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f4435b8c589d717, 0x40538130e0e12ca5, 0x40606fddcfa04f2e, 0x3f40e8a5fa2acbce},
	{"SRAD.Prepare", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f037c6cf1534d3d, 0x402d98ae7e472cc6, 0x400724b083834882, 0x3ed0ac1fae1b30de},
	{"SRAD.Prepare", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3ef97ba715582be6, 0x4006a1a4835b90de, 0x4011b26af8c208cb, 0x3ec99b319f346334},
	{"SRAD.Prepare", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3efd7c67af91a88a, 0x3fff4b613aa0f4b5, 0x400e96c27541e96c, 0x3eca2c2623ab2ae6},
	{"SRAD.Prepare", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3ef826118c9a57b0, 0x3feca88480800e3a, 0x4012acbddc34e96f, 0x3ec96ae01db775f8},
	{"SRAD.Prepare", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f037c6cf1534d3d, 0x402d98ae7e472cc6, 0x400724b083834882, 0x3ed0ac1fae1b30de},
	{"SRAD.Prepare", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3ef97ba715582be6, 0x4006a1a4835b90de, 0x4011b26af8c208cb, 0x3ec99b319f346334},
	{"SRAD.Prepare", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3efd7c67af91a88a, 0x3fff4b613aa0f4b5, 0x400e96c27541e96c, 0x3eca2c2623ab2ae6},
	{"SRAD.Prepare", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3ef826118c9a57b0, 0x3feca88480800e3a, 0x4012acbddc34e96f, 0x3ec96ae01db775f8},
	{"SRAD.Prepare", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f037c6cf1534d3d, 0x402d98ae7e472cc6, 0x400724b083834882, 0x3ed0ac1fae1b30de},
	{"SRAD.Prepare", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3ef97ba715582be6, 0x4006a1a4835b90de, 0x4011b26af8c208cb, 0x3ec99b319f346334},
	{"SRAD.Prepare", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3efd7c67af91a88a, 0x3fff4b613aa0f4b5, 0x400e96c27541e96c, 0x3eca2c2623ab2ae6},
	{"SRAD.Prepare", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3ef826118c9a57b0, 0x3feca88480800e3a, 0x4012acbddc34e96f, 0x3ec96ae01db775f8},
	{"XSBench.Lookup", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f87b2bc76148c75, 0x4040b8e810c3697b, 0x404199fb8dc5c539, 0x3f8545c78a6dacac},
	{"XSBench.Lookup", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f795bd78fffa63c, 0x401f4128b7e3c416, 0x40535cd9d08c549f, 0x3f78a41dd5f7b964},
	{"XSBench.Lookup", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f771c0f373349f2, 0x401b6fe6582d1f0b, 0x405a0b138b0307a3, 0x3f76719747b25a92},
	{"XSBench.Lookup", 0, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f720d8d0bf0c380, 0x400a577bfc30a8bd, 0x4062b72c685e4541, 0x3f71c084a0aadb9b},
	{"XSBench.Lookup", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f87b2bc76148c75, 0x4040b8e810c3697b, 0x404199fb8dc5c539, 0x3f8545c78a6dacac},
	{"XSBench.Lookup", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f795bd78fffa63c, 0x401f4128b7e3c416, 0x40535cd9d08c549f, 0x3f78a41dd5f7b964},
	{"XSBench.Lookup", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f771c0f373349f2, 0x401b6fe6582d1f0b, 0x405a0b138b0307a3, 0x3f76719747b25a92},
	{"XSBench.Lookup", 3, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f720d8d0bf0c380, 0x400a577bfc30a8bd, 0x4062b72c685e4541, 0x3f71c084a0aadb9b},
	{"XSBench.Lookup", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 4, Freq: 300}, Memory: hw.MemConfig{BusFreq: 475}}, 0x3f87b2bc76148c75, 0x4040b8e810c3697b, 0x404199fb8dc5c539, 0x3f8545c78a6dacac},
	{"XSBench.Lookup", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 12, Freq: 800}, Memory: hw.MemConfig{BusFreq: 775}}, 0x3f795bd78fffa63c, 0x401f4128b7e3c416, 0x40535cd9d08c549f, 0x3f78a41dd5f7b964},
	{"XSBench.Lookup", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 24, Freq: 500}, Memory: hw.MemConfig{BusFreq: 1075}}, 0x3f771c0f373349f2, 0x401b6fe6582d1f0b, 0x405a0b138b0307a3, 0x3f76719747b25a92},
	{"XSBench.Lookup", 7, hw.Config{Compute: hw.ComputeConfig{CUs: 32, Freq: 1000}, Memory: hw.MemConfig{BusFreq: 1375}}, 0x3f720d8d0bf0c380, 0x400a577bfc30a8bd, 0x4062b72c685e4541, 0x3f71c084a0aadb9b},
}

func kernelByName(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("golden kernel %q not found", name)
	return nil
}

// TestGoldenBits replays every pinned row through all three entry
// points — Run, hoisted Invariants, and Prepare — and requires exact
// bit equality on each sampled field.
func TestGoldenBits(t *testing.T) {
	m := Default()
	for _, row := range goldenRows {
		k := kernelByName(t, row.kernel)
		check := func(label string, r Result) {
			t.Helper()
			got := [4]uint64{
				math.Float64bits(r.Time),
				math.Float64bits(r.Counters.VALUBusy),
				math.Float64bits(r.AchievedGBs),
				math.Float64bits(r.MemoryTime),
			}
			want := [4]uint64{row.timeBits, row.valuBusyBits, row.achievedGBsBits, row.memTimeBits}
			if got != want {
				t.Errorf("%s: %s iter %d %v: bits %#x, want %#x",
					label, row.kernel, row.iter, row.cfg, got, want)
			}
		}
		check("Run", m.Run(k, row.iter, row.cfg))
		inv := m.Invariants(k, row.iter)
		check("Invariants.Run", inv.Run(row.cfg))
		check("Prepare", m.Prepare(k, row.iter)(row.cfg))
	}
}
