// Package gpusim is an analytical/interval timing simulator for a
// GCN-class discrete GPU (the AMD Radeon HD 7970 of the paper's test
// bed). Given a kernel descriptor and a hardware configuration, it
// produces the kernel's execution time and the Table 2 performance
// counters that Harmonia's sensitivity predictors and fine-grain feedback
// loop consume.
//
// The model captures every first-order mechanism the paper's
// characterization identifies:
//
//   - occupancy-limited latency hiding (VGPR/SGPR/LDS limits, Section 3.5
//     and Figure 7);
//   - branch-divergence serialization of vector issue (Figure 8);
//   - the compute-clock/memory-clock domain crossing between the L2 and
//     the memory controllers, which throttles effective DRAM bandwidth at
//     low compute frequency (Figure 9);
//   - memory-level-parallelism-limited achievable bandwidth: a kernel can
//     only pull as much bandwidth as its in-flight wavefronts can request;
//   - CU-count-dependent L2 interference (Section 7.1's BPT/CFD/XSBench
//     performance gains under power gating);
//   - GDDR5 channel efficiency driven by row-buffer locality.
//
// It is an interval model, not a cycle-accurate one: the experiments run
// 14 applications across all 448 hardware configurations many times, and
// an interval model keeps that factorial tractable while preserving the
// behaviours above. This substitution is recorded in DESIGN.md.
package gpusim

import (
	"math"

	"harmonia/internal/counters"
	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

// Runner simulates kernel invocations. *Model is the canonical
// implementation; internal/simcache wraps one in a memoizing layer that
// returns bit-identical results. Implementations must be pure: the same
// (kernel, iter, config) triple always yields the same Result, and
// concurrent calls are safe.
type Runner interface {
	Run(k *workloads.Kernel, iter int, cfg hw.Config) Result
}

// Model holds the simulator's calibration constants.
type Model struct {
	// MemLatency is the loaded DRAM round-trip latency in seconds.
	MemLatency float64
	// CrossLinesPerCycle is how many cache lines the L2-to-memory-
	// controller clock-domain crossing can deliver per compute-clock
	// cycle. It makes effective DRAM bandwidth proportional to compute
	// frequency when compute clocks are low (Figure 9).
	CrossLinesPerCycle float64
	// ChannelEffBase and ChannelEffRow set GDDR5 channel efficiency:
	// eff = ChannelEffBase + ChannelEffRow * RowHit.
	ChannelEffBase float64
	ChannelEffRow  float64
	// L2BytesPerCycle is the L2 cache service bandwidth per compute-clock
	// cycle, in bytes.
	L2BytesPerCycle float64
	// SALUIssueFactor is the fraction of a VALU issue slot a scalar
	// instruction effectively consumes (most scalar work co-issues).
	SALUIssueFactor float64
	// HideWaves is the number of extra wavefronts per SIMD needed for
	// full compute/memory overlap; fewer waves expose proportionally
	// more of the shorter phase.
	HideWaves float64
}

// Default returns the calibrated model used throughout the experiments.
func Default() *Model {
	return &Model{
		MemLatency:         350e-9,
		CrossLinesPerCycle: 6,
		ChannelEffBase:     0.55,
		ChannelEffRow:      0.35,
		L2BytesPerCycle:    512,
		SALUIssueFactor:    0.25,
		HideWaves:          7,
	}
}

var _ Runner = (*Model)(nil)

// Result is the outcome of one kernel invocation at one configuration.
type Result struct {
	// Time is the kernel execution time in seconds.
	Time float64
	// Counters is the Table 2 performance-counter sample.
	Counters counters.Set
	// DRAMBytes is the off-chip traffic of the invocation.
	DRAMBytes float64
	// AchievedGBs is the realized DRAM bandwidth in GB/s.
	AchievedGBs float64
	// Config echoes the configuration the kernel ran at.
	Config hw.Config
	// Breakdown components (seconds): compute-issue time, memory-path
	// time, and serial/launch time, before overlap.
	ComputeTime float64
	MemoryTime  float64
	SerialTime  float64
	// BandwidthBound reports which limiter set the effective bandwidth.
	Limiter BandwidthLimiter
}

// BandwidthLimiter identifies what bounded effective DRAM bandwidth.
type BandwidthLimiter int

const (
	// LimitDRAM means the DRAM channels themselves were the bound.
	LimitDRAM BandwidthLimiter = iota
	// LimitCrossing means the L2-to-MC clock-domain crossing was the
	// bound (low compute frequency, Figure 9).
	LimitCrossing
	// LimitMLP means in-flight memory parallelism was the bound (low
	// occupancy, Figure 7).
	LimitMLP
)

func (b BandwidthLimiter) String() string {
	switch b {
	case LimitDRAM:
		return "dram"
	case LimitCrossing:
		return "clock-crossing"
	case LimitMLP:
		return "mlp"
	default:
		return "unknown"
	}
}

// EffectiveL2Hit returns the kernel's L2 hit rate with n CUs active:
// the descriptor's base rate degraded by interference as more CUs share
// the 768 KB L2.
func EffectiveL2Hit(k *workloads.Kernel, nCU int) float64 {
	frac := float64(nCU-hw.MinCUs) / float64(hw.MaxCUs-hw.MinCUs)
	hit := k.L2Hit * (1 - k.L2Thrash*frac)
	return math.Max(hit, 0)
}

// Run simulates one invocation of kernel k's iteration iter at
// configuration cfg. It is Invariants + Invariants.Run in one call; a
// sweep over many configurations of the same invocation should hoist
// the Invariants (or use Prepare) instead of paying the per-iteration
// derivations once per cell.
func (m *Model) Run(k *workloads.Kernel, iter int, cfg hw.Config) Result {
	inv := m.Invariants(k, iter)
	return inv.Run(cfg)
}

// Invariants holds every quantity of one (model, kernel, iteration)
// triple that does not depend on the hardware configuration: the
// resolved phase, work geometry, occupancy, divergence-inflated
// instruction counts, raw memory traffic, and channel efficiency. An
// exhaustive sweep re-derives none of it — the 448-config inner loop
// pays only for the config-dependent remainder in Invariants.Run.
//
// Every field is the verbatim subexpression the original single-pass
// Run computed (hoisted whole, never re-associated), so Invariants.Run
// is bit-identical to Run — the property the golden-bits regression
// test pins.
type Invariants struct {
	model  *Model
	kernel *workloads.Kernel
	phase  workloads.Phase

	totalWaves float64 // wavefronts launched, after phase work scaling
	totalWI    float64 // work-items launched
	occWaves   float64 // resident wavefronts per SIMD (resource-limited)
	occupancy  float64 // occWaves / architectural maximum
	util       float64 // active-lane fraction after divergence, floored
	valuExec   float64 // divergence-inflated VALU instructions per WI
	issueWork  float64 // total issue cycles × CUs (divide by nCU per config)
	rawBytes   float64 // memory-hierarchy traffic before L2 filtering
	chanEff    float64 // GDDR5 channel efficiency at this row locality
	writeShare float64 // write fraction of rawBytes

	// Config-independent counters, precomputed once.
	valuUtilPct float64
	normVGPR    float64
	normSGPR    float64
	valuInsts   float64
	vfetchInsts float64
	vwriteInsts float64
}

// Invariants precomputes the configuration-independent portion of
// simulating kernel k's iteration iter.
func (m *Model) Invariants(k *workloads.Kernel, iter int) Invariants {
	phase := k.PhaseFor(iter)
	div := k.DivergenceFor(phase)

	// Work geometry.
	workgroups := float64(k.Workgroups) * phase.WorkScale
	wavesPerWG := float64(k.WavesPerWorkgroup())
	totalWaves := workgroups * wavesPerWG
	totalWI := workgroups * float64(k.WorkgroupSize)

	// Occupancy is a static resource property of the kernel (VGPR/SGPR/
	// LDS limits).
	occWaves := float64(k.OccupancyWaves())
	occupancy := occWaves / hw.MaxWavesPerSIMD

	// Compute phase: one wavefront VALU instruction occupies a SIMD for
	// 4 cycles (64 work-items over 16 lanes); divergence serializes both
	// branch paths, inflating issued instructions.
	util := 1 - div
	if util < 1e-3 {
		util = 1e-3
	}
	valuExec := k.VALUPerWI / util
	issueWork := totalWaves * (valuExec + m.SALUIssueFactor*k.SALUPerWI)

	// Memory traffic demanded of the hierarchy, before the L2 filters it.
	rawBytes := totalWI * (k.FetchPerWI*k.BytesPerFetch*phase.FetchScale +
		k.WritePerWI*k.BytesPerWrite)
	chanEff := m.ChannelEffBase + m.ChannelEffRow*k.RowHit

	writeBytes := totalWI * k.WritePerWI * k.BytesPerWrite
	writeShare := 0.0
	if rawBytes > 0 {
		writeShare = writeBytes / rawBytes
	}

	clampPct := func(v float64) float64 { return math.Max(0, math.Min(100, v)) }
	return Invariants{
		model:  m,
		kernel: k,
		phase:  phase,

		totalWaves: totalWaves,
		totalWI:    totalWI,
		occWaves:   occWaves,
		occupancy:  occupancy,
		util:       util,
		valuExec:   valuExec,
		issueWork:  issueWork,
		rawBytes:   rawBytes,
		chanEff:    chanEff,
		writeShare: writeShare,

		valuUtilPct: clampPct(util * 100),
		normVGPR:    math.Min(float64(k.VGPRs)/hw.VGPRsPerSIMD, 1),
		normSGPR:    math.Min(float64(k.SGPRs)/hw.MaxSGPRsPerWave, 1),
		valuInsts:   totalWaves * valuExec,
		vfetchInsts: totalWaves * k.FetchPerWI * phase.FetchScale,
		vwriteInsts: totalWaves * k.WritePerWI,
	}
}

// Run evaluates the configuration-dependent remainder of the model: the
// per-config work is the issue-rate division, the L2 interference and
// bandwidth-limiter resolution, the overlap combine, and the counter
// normalizations — no per-iteration rederivation and no allocation.
func (inv *Invariants) Run(cfg hw.Config) Result {
	m, k := inv.model, inv.kernel
	nCU := float64(cfg.Compute.CUs)
	fCU := cfg.Compute.Freq.Hz()

	// The machine-wide number of in-flight wavefronts is the kernel's
	// resource occupancy additionally capped by the grid size.
	inflightWaves := math.Min(nCU*hw.SIMDsPerCU*inv.occWaves, inv.totalWaves)

	issueCycles := inv.issueWork / nCU
	tCompute := issueCycles / fCU

	// Memory phase.
	l2hit := EffectiveL2Hit(k, cfg.Compute.CUs)
	dramBytes := inv.rawBytes * (1 - l2hit)
	l2Bytes := inv.rawBytes * l2hit

	peakBW := cfg.Memory.BandwidthGBs() * 1e9
	dramBW := peakBW * inv.chanEff
	crossBW := fCU * m.CrossLinesPerCycle * hw.CacheLineBytes
	mlpBW := inflightWaves * k.MLPPerWave * hw.CacheLineBytes / m.MemLatency

	effBW := dramBW
	limiter := LimitDRAM
	if crossBW < effBW {
		effBW, limiter = crossBW, LimitCrossing
	}
	if mlpBW < effBW {
		effBW, limiter = mlpBW, LimitMLP
	}

	tDRAM := dramBytes / effBW
	tL2 := l2Bytes / (m.L2BytesPerCycle * fCU)
	tMemory := tDRAM + tL2

	// Overlap: with enough resident wavefronts the shorter phase hides
	// completely under the longer one; with few, part of it is exposed.
	overlap := (inv.occWaves - 1) / m.HideWaves
	overlap = math.Max(0, math.Min(1, overlap))
	tBody := math.Max(tCompute, tMemory) + (1-overlap)*math.Min(tCompute, tMemory)

	tSerial := k.SerialCycles/fCU + k.LaunchOverhead
	total := tBody + tSerial

	achieved := dramBytes / total

	// Counters (Table 2).
	clampPct := func(v float64) float64 { return math.Max(0, math.Min(100, v)) }
	valuBusy := clampPct(tCompute / total * 100)
	memBusy := clampPct(tMemory / total * 100)
	stalled := 0.05 * memBusy
	if tMemory > tCompute {
		stalled = clampPct((tMemory - tCompute) / total * 100)
	}

	cs := counters.Set{
		VALUBusy:         valuBusy,
		VALUUtilization:  inv.valuUtilPct,
		MemUnitBusy:      memBusy,
		MemUnitStalled:   stalled,
		WriteUnitStalled: clampPct(stalled * inv.writeShare),
		NormVGPR:         inv.normVGPR,
		NormSGPR:         inv.normSGPR,
		ICActivity:       math.Max(0, math.Min(1, achieved/peakBW)),
		L2HitRate:        l2hit,
		Occupancy:        inv.occupancy,
		VALUInsts:        inv.valuInsts,
		VFetchInsts:      inv.vfetchInsts,
		VWriteInsts:      inv.vwriteInsts,
		NormCUsActive:    nCU / hw.MaxCUs,
		NormCUClock:      cfg.Compute.Freq.GHz() / hw.MaxCUFreq.GHz(),
		NormMemClock:     float64(cfg.Memory.BusFreq) / float64(hw.MaxMemFreq),
	}

	return Result{
		Time:        total,
		Counters:    cs,
		DRAMBytes:   dramBytes,
		AchievedGBs: achieved / 1e9,
		Config:      cfg,
		ComputeTime: tCompute,
		MemoryTime:  tMemory,
		SerialTime:  tSerial,
		Limiter:     limiter,
	}
}

// PreparedRunner is implemented by runners that can hoist the
// per-(kernel, iteration) invariant work out of a configuration sweep:
// Prepare returns an evaluator bound to one invocation whose results
// are bit-identical to Run's. The evaluator must be safe for concurrent
// use by sweep workers. internal/simcache's Cached satisfies this with
// a prebuilt memo key; the raw Model satisfies it with hoisted
// Invariants.
type PreparedRunner interface {
	Runner
	Prepare(k *workloads.Kernel, iter int) func(cfg hw.Config) Result
}

// Prepare returns a single-invocation evaluator over hoisted
// Invariants, implementing PreparedRunner.
func (m *Model) Prepare(k *workloads.Kernel, iter int) func(cfg hw.Config) Result {
	inv := m.Invariants(k, iter)
	return func(cfg hw.Config) Result { return inv.Run(cfg) }
}

var _ PreparedRunner = (*Model)(nil)

// RunApp simulates one full iteration of an application (each kernel
// once, in order) and returns the per-kernel results.
func (m *Model) RunApp(app *workloads.Application, iter int, cfg hw.Config) []Result {
	out := make([]Result, len(app.Kernels))
	for i, k := range app.Kernels {
		out[i] = m.Run(k, iter, cfg)
	}
	return out
}

// MachineUtilization is Harmonia's fine-grain performance proxy: the
// VALU-issue throughput of the whole machine relative to its peak
// capability at the reference (maximum) configuration. The paper uses
// "the gradient of core utilization ... changes in the VALUBusy
// performance counter" (Section 5.2); measuring VALUBusy against the
// reference clock and full CU count makes the counter comparable across
// configurations, which is what lets the gradient distinguish "we saved
// power for free" (utilization unchanged) from "we hurt the application"
// (utilization dropped).
func MachineUtilization(cs counters.Set, cfg hw.Config) float64 {
	fFrac := cfg.Compute.Freq.GHz() / hw.MaxCUFreq.GHz()
	cuFrac := float64(cfg.Compute.CUs) / hw.MaxCUs
	return cs.VALUBusy * fFrac * cuFrac
}
