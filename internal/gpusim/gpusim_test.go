package gpusim

import (
	"math"
	"testing"
	"testing/quick"

	"harmonia/internal/hw"
	"harmonia/internal/workloads"
)

func kernel(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	for _, k := range workloads.AllKernels() {
		if k.Name == name {
			return k
		}
	}
	t.Fatalf("kernel %q not found", name)
	return nil
}

func cfg(cus int, cf, mf hw.MHz) hw.Config {
	return hw.Config{
		Compute: hw.ComputeConfig{CUs: cus, Freq: cf},
		Memory:  hw.MemConfig{BusFreq: mf},
	}
}

func TestResultsSaneAcrossSpace(t *testing.T) {
	m := Default()
	for _, k := range workloads.AllKernels() {
		for _, c := range []hw.Config{
			hw.MinConfig(), hw.MaxConfig(),
			cfg(16, 600, 925), cfg(4, 1000, 1375), cfg(32, 300, 475),
		} {
			r := m.Run(k, 0, c)
			if r.Time <= 0 || math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
				t.Fatalf("%s @ %v: bad time %v", k.Name, c, r.Time)
			}
			if err := r.Counters.Validate(); err != nil {
				t.Fatalf("%s @ %v: %v", k.Name, c, err)
			}
			if r.DRAMBytes < 0 || r.AchievedGBs < 0 {
				t.Fatalf("%s @ %v: negative traffic", k.Name, c)
			}
			if r.AchievedGBs > c.Memory.BandwidthGBs()+1e-9 {
				t.Fatalf("%s @ %v: achieved %v GB/s exceeds peak %v",
					k.Name, c, r.AchievedGBs, c.Memory.BandwidthGBs())
			}
		}
	}
}

// Performance must never degrade when any single tunable is raised
// with the others held fixed, for phase-free kernels: the model has
// no contention mechanism other than L2 thrash, which only CU count
// triggers — and even then more CUs add compute throughput; check the
// frequency tunables strictly and CU count for non-thrashing kernels.
func TestMonotonicityInFrequencies(t *testing.T) {
	m := Default()
	for _, k := range workloads.AllKernels() {
		for _, base := range hw.ConfigSpace() {
			if up, ok := hw.StepCUFreq(base, hw.Up); ok {
				if m.Run(k, 0, up).Time > m.Run(k, 0, base).Time*(1+1e-9) {
					t.Fatalf("%s: raising CU freq %v slowed kernel down", k.Name, base)
				}
			}
			if up, ok := hw.StepMemFreq(base, hw.Up); ok {
				if m.Run(k, 0, up).Time > m.Run(k, 0, base).Time*(1+1e-9) {
					t.Fatalf("%s: raising mem freq %v slowed kernel down", k.Name, base)
				}
			}
			if k.L2Thrash == 0 {
				if up, ok := hw.StepCUs(base, hw.Up); ok {
					if m.Run(k, 0, up).Time > m.Run(k, 0, base).Time*(1+1e-9) {
						t.Fatalf("%s: adding CUs at %v slowed kernel down", k.Name, base)
					}
				}
			}
		}
	}
}

func TestMaxFlopsComputeBound(t *testing.T) {
	m := Default()
	k := kernel(t, "MaxFlops.Main")
	// Performance scales with compute throughput...
	half := m.Run(k, 0, cfg(16, 1000, 1375))
	full := m.Run(k, 0, cfg(32, 1000, 1375))
	if ratio := half.Time / full.Time; ratio < 1.8 || ratio > 2.2 {
		t.Errorf("MaxFlops CU scaling ratio = %v, want ~2 (compute bound)", ratio)
	}
	// ...and is indifferent to memory bandwidth (Figure 3a).
	slowMem := m.Run(k, 0, cfg(32, 1000, 475))
	if loss := slowMem.Time/full.Time - 1; loss > 0.01 {
		t.Errorf("MaxFlops lost %.1f%% from min memory; want ~0", loss*100)
	}
}

func TestDeviceMemoryBandwidthBound(t *testing.T) {
	m := Default()
	k := kernel(t, "DeviceMemory.Stream")
	full := m.Run(k, 0, hw.MaxConfig())
	// Memory frequency matters a lot...
	slowMem := m.Run(k, 0, cfg(32, 1000, 475))
	if ratio := slowMem.Time / full.Time; ratio < 2 {
		t.Errorf("DeviceMemory min-memory slowdown = %vx, want >2x", ratio)
	}
	// ...but beyond the balance point extra compute does not help:
	// 32 CUs vs 20 CUs at max memory should be nearly identical
	// (Figure 3b: knee near 4x the minimum ops/byte).
	fewer := m.Run(k, 0, cfg(20, 1000, 1375))
	if d := fewer.Time/full.Time - 1; d > 0.02 {
		t.Errorf("DeviceMemory 20->32 CU change = %.1f%%, want ~0 (past knee)", d*100)
	}
	// It must be bandwidth-limited at the top configuration.
	if full.Limiter != LimitDRAM {
		t.Errorf("DeviceMemory limiter at max config = %v, want dram", full.Limiter)
	}
}

func TestClockDomainCrossingEffect(t *testing.T) {
	// Figure 9: for memory-bound kernels with poor L2 hit rates,
	// lowering compute frequency reduces effective DRAM bandwidth.
	m := Default()
	k := kernel(t, "DeviceMemory.Stream")
	low := m.Run(k, 0, cfg(32, 300, 1375))
	high := m.Run(k, 0, cfg(32, 1000, 1375))
	if low.Limiter != LimitCrossing {
		t.Errorf("limiter at 300MHz = %v, want clock-crossing", low.Limiter)
	}
	if ratio := low.Time / high.Time; ratio < 1.3 {
		t.Errorf("DeviceMemory 300MHz slowdown = %vx; crossing should bite", ratio)
	}
	// The achieved bandwidth must drop even though DRAM is at full speed.
	if low.AchievedGBs >= high.AchievedGBs {
		t.Errorf("achieved BW did not drop: %v vs %v GB/s", low.AchievedGBs, high.AchievedGBs)
	}
}

func TestLowOccupancyLimitsBandwidthSensitivity(t *testing.T) {
	// Figure 7: Sort.BottomScan (30% occupancy) cannot exploit extra
	// bandwidth; CoMD.AdvanceVelocity (100% occupancy) can.
	m := Default()
	scan := kernel(t, "Sort.BottomScan")
	adv := kernel(t, "CoMD.AdvanceVelocity")

	scanLoss := m.Run(scan, 0, cfg(32, 1000, 475)).Time/m.Run(scan, 0, hw.MaxConfig()).Time - 1
	advLoss := m.Run(adv, 0, cfg(32, 1000, 475)).Time/m.Run(adv, 0, hw.MaxConfig()).Time - 1
	if scanLoss > 0.05 {
		t.Errorf("BottomScan memory-floor loss = %.1f%%, want ~0", scanLoss*100)
	}
	if advLoss < 0.5 {
		t.Errorf("AdvanceVelocity memory-floor loss = %.1f%%, want large", advLoss*100)
	}
	if occ := m.Run(scan, 0, hw.MaxConfig()).Counters.Occupancy; math.Abs(occ-0.3) > 1e-9 {
		t.Errorf("BottomScan occupancy counter = %v, want 0.3", occ)
	}
}

func TestL2ThrashingGivesCUGatingWins(t *testing.T) {
	// Section 7.1: BPT runs *faster* with fewer CUs because L2
	// interference drops.
	m := Default()
	k := kernel(t, "BPT.FindK")
	full := m.Run(k, 0, hw.MaxConfig())
	best := full
	bestCUs := 32
	for _, n := range hw.CUCounts() {
		r := m.Run(k, 0, cfg(n, 1000, 1375))
		if r.Time < best.Time {
			best, bestCUs = r, n
		}
	}
	if bestCUs >= 32 {
		t.Fatalf("BPT.FindK fastest at %d CUs; expected an interior optimum", bestCUs)
	}
	if gain := full.Time/best.Time - 1; gain < 0.05 {
		t.Errorf("BPT.FindK CU-gating gain = %.1f%%, want >5%%", gain*100)
	}
	// The hit rate must be visibly higher with fewer CUs.
	if best.Counters.L2HitRate <= full.Counters.L2HitRate {
		t.Errorf("L2 hit rate did not improve: %v vs %v",
			best.Counters.L2HitRate, full.Counters.L2HitRate)
	}
}

func TestEffectiveL2Hit(t *testing.T) {
	k := kernel(t, "BPT.FindK") // L2Hit 0.7, thrash 0.6
	if got := EffectiveL2Hit(k, hw.MinCUs); math.Abs(got-k.L2Hit) > 1e-9 {
		t.Errorf("hit at 4 CUs = %v, want %v", got, k.L2Hit)
	}
	want := k.L2Hit * (1 - k.L2Thrash)
	if got := EffectiveL2Hit(k, hw.MaxCUs); math.Abs(got-want) > 1e-9 {
		t.Errorf("hit at 32 CUs = %v, want %v", got, want)
	}
	// Monotone decreasing in CU count.
	prev := 1.0
	for _, n := range hw.CUCounts() {
		cur := EffectiveL2Hit(k, n)
		if cur > prev {
			t.Errorf("hit rate rose with CUs at %d: %v > %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestDivergenceInflatesIssue(t *testing.T) {
	m := Default()
	base := *kernel(t, "Stencil.Step")
	base.Phases = nil
	diverged := base
	diverged.Divergence = 0.5
	r0 := m.Run(&base, 0, hw.MaxConfig())
	r1 := m.Run(&diverged, 0, hw.MaxConfig())
	if r1.Counters.VALUInsts <= r0.Counters.VALUInsts {
		t.Error("divergence should inflate issued VALU instructions")
	}
	if r1.Counters.VALUUtilization >= r0.Counters.VALUUtilization {
		t.Error("divergence should reduce VALUUtilization")
	}
	if r1.Time <= r0.Time {
		t.Error("divergence should slow the kernel")
	}
}

func TestGraph500PhasesChangeWork(t *testing.T) {
	m := Default()
	k := kernel(t, "Graph500.BottomStepUp")
	c := hw.MaxConfig()
	insts := make([]float64, 8)
	for i := range insts {
		insts[i] = m.Run(k, i, c).Counters.VALUInsts
	}
	lo, hi := insts[0], insts[0]
	for _, v := range insts {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi/lo < 3 {
		t.Errorf("instruction swing across iterations = %.1fx, want >3x (Figure 14)", hi/lo)
	}
}

func TestSerialTimeScalesWithComputeFreq(t *testing.T) {
	m := Default()
	k := kernel(t, "SRAD.Prepare")
	low := m.Run(k, 0, cfg(32, 300, 1375))
	high := m.Run(k, 0, cfg(32, 1000, 1375))
	if low.SerialTime <= high.SerialTime {
		t.Error("serial cycles should take longer at lower compute frequency")
	}
	// But launch overhead bounds the ratio below fmax/fmin.
	if ratio := low.SerialTime / high.SerialTime; ratio >= 1000.0/300.0 {
		t.Errorf("serial ratio = %v, should be damped by launch overhead", ratio)
	}
}

func TestMachineUtilization(t *testing.T) {
	m := Default()
	k := kernel(t, "CoMD.AdvanceVelocity")
	// For a memory-bound kernel, dropping compute frequency leaves
	// machine utilization nearly unchanged (free power savings)...
	u1 := MachineUtilization(m.Run(k, 0, cfg(32, 1000, 1375)).Counters, cfg(32, 1000, 1375))
	u2 := MachineUtilization(m.Run(k, 0, cfg(32, 700, 1375)).Counters, cfg(32, 700, 1375))
	if rel := math.Abs(u2-u1) / u1; rel > 0.10 {
		t.Errorf("mem-bound machine utilization moved %.1f%% on freq drop, want <10%%", rel*100)
	}
	// ...while for a compute-bound kernel it visibly drops.
	kc := kernel(t, "MaxFlops.Main")
	c1, c2 := cfg(32, 1000, 1375), cfg(32, 700, 1375)
	v1 := MachineUtilization(m.Run(kc, 0, c1).Counters, c1)
	v2 := MachineUtilization(m.Run(kc, 0, c2).Counters, c2)
	if v2 >= v1*0.95 {
		t.Errorf("compute-bound machine utilization %v -> %v; should drop with frequency", v1, v2)
	}
}

// Property: time decreases (weakly) as both compute tunables rise
// together for arbitrary kernels from the catalog and arbitrary levels.
func TestTimeWeaklyMonotoneProperty(t *testing.T) {
	m := Default()
	kernels := workloads.AllKernels()
	f := func(ki uint8, cu, cf, mf uint8) bool {
		k := kernels[int(ki)%len(kernels)]
		if k.L2Thrash > 0 {
			return true // CU count is legitimately non-monotone here
		}
		c := hw.MinConfig()
		c = hw.TunableCUs.WithLevel(c, int(cu)%8)
		c = hw.TunableCUFreq.WithLevel(c, int(cf)%8)
		c = hw.TunableMemFreq.WithLevel(c, int(mf)%7)
		up := hw.TunableCUs.WithLevel(c, hw.TunableCUs.LevelFor(c)+1)
		up = hw.TunableCUFreq.WithLevel(up, hw.TunableCUFreq.LevelFor(up)+1)
		return m.Run(k, 0, up).Time <= m.Run(k, 0, c).Time*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunApp(t *testing.T) {
	m := Default()
	app := workloads.LUD()
	rs := m.RunApp(app, 0, hw.MaxConfig())
	if len(rs) != len(app.Kernels) {
		t.Fatalf("RunApp returned %d results for %d kernels", len(rs), len(app.Kernels))
	}
	for i, r := range rs {
		if r.Time <= 0 {
			t.Errorf("kernel %d time %v", i, r.Time)
		}
	}
}

func TestLimiterString(t *testing.T) {
	if LimitDRAM.String() != "dram" || LimitCrossing.String() != "clock-crossing" ||
		LimitMLP.String() != "mlp" || BandwidthLimiter(9).String() != "unknown" {
		t.Error("limiter strings wrong")
	}
}
