package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/policy"
	"harmonia/internal/power"
	"harmonia/internal/session"
	"harmonia/internal/workloads"
)

func TestSteadyState(t *testing.T) {
	m := New(DefaultParams())
	if got := m.SteadyC(100); math.Abs(got-(40+35)) > 1e-9 {
		t.Errorf("steady at 100W = %v, want 75", got)
	}
	if m.TempC() != 40 {
		t.Errorf("initial temp = %v, want ambient", m.TempC())
	}
}

func TestStepConvergesToSteady(t *testing.T) {
	m := New(DefaultParams())
	for i := 0; i < 100; i++ {
		m.Step(150, 0.010) // 10ms steps, tau 20ms
	}
	want := m.SteadyC(150)
	if math.Abs(m.TempC()-want) > 0.1 {
		t.Errorf("temp after 1s = %v, want ~%v", m.TempC(), want)
	}
}

func TestStepExactExponential(t *testing.T) {
	m := New(DefaultParams())
	// One step of exactly one time constant covers 1-1/e of the gap.
	m.Step(100, m.Params().TimeConstS)
	gap := m.SteadyC(100) - 40
	want := 40 + gap*(1-1/math.E)
	if math.Abs(m.TempC()-want) > 1e-9 {
		t.Errorf("temp = %v, want %v", m.TempC(), want)
	}
}

func TestStepSplitInvarianceProperty(t *testing.T) {
	// Integrating in one step or many must land on the same temperature
	// (the exponential update is exact).
	f := func(p uint8, n uint8) bool {
		watts := float64(p%200) + 20
		steps := int(n%20) + 1
		total := 0.05
		one := New(DefaultParams())
		one.Step(watts, total)
		many := New(DefaultParams())
		for i := 0; i < steps; i++ {
			many.Step(watts, total/float64(steps))
		}
		return math.Abs(one.TempC()-many.TempC()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroAndNegativeDt(t *testing.T) {
	m := New(DefaultParams())
	before := m.TempC()
	m.Step(500, 0)
	m.Step(500, -1)
	if m.TempC() != before {
		t.Error("non-positive dt changed temperature")
	}
}

func TestStackedModeDepositsMemoryPower(t *testing.T) {
	discrete := New(DefaultParams())
	stacked := New(StackedParams())
	rails := power.Rails{GPU: 100, Mem: 50, Other: 20}
	if got := discrete.DiePower(rails); got != 100 {
		t.Errorf("discrete die power = %v, want 100", got)
	}
	if got := stacked.DiePower(rails); got != 150 {
		t.Errorf("stacked die power = %v, want 150", got)
	}
	// At equal rails, the stacked package must run hotter at steady
	// state.
	if stacked.SteadyC(stacked.DiePower(rails)) <= discrete.SteadyC(discrete.DiePower(rails)) {
		t.Error("stacked package not hotter")
	}
}

func TestResetAndString(t *testing.T) {
	m := New(StackedParams())
	m.Step(200, 1)
	m.Reset()
	if m.TempC() != m.Params().AmbientC {
		t.Error("reset did not return to ambient")
	}
	if m.String() == "" {
		t.Error("empty rendering")
	}
}

func TestThrottleGuardsHotWorkload(t *testing.T) {
	pm := power.Default()
	die := New(StackedParams())
	guard := NewThrottle(policy.NewBaseline(), die, pm, 85)
	sess := &session.Session{Sim: gpusim.Default(), Power: pm, Policy: guard}
	rep, err := sess.Run(workloads.MaxFlops())
	if err != nil {
		t.Fatal(err)
	}
	if guard.PeakC <= 85 {
		t.Skipf("workload never crossed the throttle point (peak %.1f°C)", guard.PeakC)
	}
	if guard.ThrottledKernels == 0 {
		t.Error("die crossed the throttle point but nothing throttled")
	}
	// Some invocations must have run below boost.
	sawCapped := false
	for _, run := range rep.Runs {
		if run.Config.Compute.Freq < hw.MaxCUFreq {
			sawCapped = true
		}
	}
	if !sawCapped {
		t.Error("no capped invocations recorded")
	}
}

func TestThrottleReleasesWhenCool(t *testing.T) {
	pm := power.Default()
	die := New(DefaultParams())
	guard := NewThrottle(policy.NewBaseline(), die, pm, 200) // unreachable cap
	sess := &session.Session{Sim: gpusim.Default(), Power: pm, Policy: guard}
	if _, err := sess.Run(workloads.SRAD()); err != nil {
		t.Fatal(err)
	}
	if guard.ThrottledKernels != 0 {
		t.Errorf("throttled %d kernels below an unreachable cap", guard.ThrottledKernels)
	}
	if guard.Name() != "baseline+thermal" {
		t.Errorf("Name = %q", guard.Name())
	}
}

func TestCoordinatedPolicyRunsCoolerStacked(t *testing.T) {
	// The paper's closing argument: under a shared (stacked) envelope,
	// coordinated compute+memory management matters more. Harmonia's
	// lower total power must produce a lower peak die temperature than
	// the baseline on a memory-heavy workload.
	pm := power.Default()
	sim := gpusim.Default()

	peak := func(p policy.Policy) float64 {
		die := New(StackedParams())
		guard := NewThrottle(p, die, pm, 1000) // observe only, never throttle
		sess := &session.Session{Sim: sim, Power: pm, Policy: guard}
		if _, err := sess.Run(workloads.SPMV()); err != nil {
			t.Fatal(err)
		}
		return guard.PeakC
	}
	basePeak := peak(policy.NewBaseline())
	// Fixed low-power config stands in for a converged coordinated
	// policy (Harmonia's SPMV endpoint: ~12-16 CUs, reduced memory).
	coordPeak := peak(policy.NewFixed(hw.Config{
		Compute: hw.ComputeConfig{CUs: 16, Freq: 1000},
		Memory:  hw.MemConfig{BusFreq: 1225},
	}))
	if coordPeak >= basePeak {
		t.Errorf("coordinated peak %.1f°C not below baseline %.1f°C", coordPeak, basePeak)
	}
}

var _ policy.Policy = (*Throttle)(nil)
