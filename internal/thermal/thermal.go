// Package thermal models the die-temperature dynamics behind the paper's
// power-envelope arguments: current GPUs manage power under a board TDP
// and thermal cap (Section 2.3), and future on-package DRAM stacks will
// force compute and memory into one *shared* thermal envelope — the
// paper's closing insight ("compute and memory will share tighter
// package power envelopes ... coordinated power management and the
// concept of hardware balance will become increasingly important in such
// systems", Section 7.3, item 6).
//
// The model is a single-node RC network per die: heat capacity C, thermal
// resistance R to ambient, steady state T = Tamb + P·R, exponential
// approach with time constant τ = R·C. In discrete-GPU mode only the GPU
// chip's power heats the die (the GDDR5 devices live across the board);
// in stacked mode the memory power is deposited into the same package.
//
// Throttle wraps any power-management policy with a thermal guard: when
// the die exceeds the throttle temperature it forces the compute
// frequency down one step per kernel boundary until the die cools,
// mirroring how production thermal managers override DVFS governors.
package thermal

import (
	"fmt"
	"math"

	"harmonia/internal/gpusim"
	"harmonia/internal/hw"
	"harmonia/internal/policy"
	"harmonia/internal/power"
)

// Params configures the RC die model.
type Params struct {
	// AmbientC is the ambient (heatsink base) temperature in °C.
	AmbientC float64
	// RthCPerW is the junction-to-ambient thermal resistance in °C/W.
	RthCPerW float64
	// TimeConstS is the RC time constant in seconds.
	TimeConstS float64
	// Stacked deposits memory power into the same package as the GPU
	// (the on-package-DRAM future the paper's Section 1 and insight 6
	// describe). Discrete mode heats the die with GPU power only.
	Stacked bool
}

// DefaultParams models a discrete high-end card: ~0.35 °C/W junction to
// ambient at 40 °C intake with a ~20 ms hotspot time constant.
func DefaultParams() Params {
	return Params{AmbientC: 40, RthCPerW: 0.35, TimeConstS: 0.020}
}

// StackedParams models the tighter on-package envelope: the same die now
// absorbs memory power through a slightly higher effective resistance.
func StackedParams() Params {
	p := DefaultParams()
	p.Stacked = true
	p.RthCPerW = 0.40
	return p
}

// Model is the RC die-temperature state.
type Model struct {
	p     Params
	tempC float64
}

// New returns a model at thermal equilibrium with ambient.
func New(p Params) *Model {
	return &Model{p: p, tempC: p.AmbientC}
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.p }

// TempC returns the current die temperature.
func (m *Model) TempC() float64 { return m.tempC }

// DiePower selects the power deposited in the die for the given rails:
// GPU only for a discrete card, GPU+memory for a stacked package.
func (m *Model) DiePower(r power.Rails) float64 {
	if m.p.Stacked {
		return r.GPU + r.Mem
	}
	return r.GPU
}

// SteadyC returns the steady-state temperature at constant die power.
func (m *Model) SteadyC(dieWatts float64) float64 {
	return m.p.AmbientC + dieWatts*m.p.RthCPerW
}

// Step advances the die temperature by dt seconds at constant die power,
// using the exact exponential solution of the RC node.
func (m *Model) Step(dieWatts, dtS float64) float64 {
	if dtS <= 0 {
		return m.tempC
	}
	target := m.SteadyC(dieWatts)
	alpha := 1 - math.Exp(-dtS/m.p.TimeConstS)
	m.tempC += (target - m.tempC) * alpha
	return m.tempC
}

// Reset returns the die to ambient.
func (m *Model) Reset() { m.tempC = m.p.AmbientC }

func (m *Model) String() string {
	mode := "discrete"
	if m.p.Stacked {
		mode = "stacked"
	}
	return fmt.Sprintf("thermal(%s): %.1f°C", mode, m.tempC)
}

// Throttle is a thermal guard wrapped around an inner policy. It
// implements policy.Policy.
type Throttle struct {
	// Inner is the wrapped power-management policy.
	Inner policy.Policy
	// Die is the thermal model, advanced on every observation.
	Die *Model
	// Power evaluates the rails heating the die.
	Power *power.Model
	// ThrottleC is the junction temperature above which the guard caps
	// the compute frequency; ReleaseC is where it lets go (hysteresis).
	ThrottleC, ReleaseC float64

	// capLevel is the current forced compute-frequency ceiling (grid
	// level); Levels()-1 means uncapped.
	capLevel int

	// ThrottledKernels counts kernel invocations that ran capped.
	ThrottledKernels int
	// PeakC records the hottest observed die temperature.
	PeakC float64
}

// NewThrottle wraps inner with a thermal guard at the given throttle
// temperature (release 5 °C lower).
func NewThrottle(inner policy.Policy, die *Model, pm *power.Model, throttleC float64) *Throttle {
	return &Throttle{
		Inner: inner, Die: die, Power: pm,
		ThrottleC: throttleC, ReleaseC: throttleC - 5,
		capLevel: hw.TunableCUFreq.Levels() - 1,
		PeakC:    die.TempC(),
	}
}

// Name implements policy.Policy.
func (t *Throttle) Name() string { return t.Inner.Name() + "+thermal" }

// Decide implements policy.Policy: the inner decision with the compute
// frequency clamped to the thermal cap.
func (t *Throttle) Decide(kernel string, iter int) hw.Config {
	cfg := t.Inner.Decide(kernel, iter)
	if lvl := hw.TunableCUFreq.LevelFor(cfg); lvl > t.capLevel {
		cfg = hw.TunableCUFreq.WithLevel(cfg, t.capLevel)
		t.ThrottledKernels++
	}
	return cfg
}

// Observe implements policy.Policy: advance the die model and adjust the
// cap, then forward the observation to the inner policy.
func (t *Throttle) Observe(kernel string, iter int, res gpusim.Result) {
	rails := t.Power.Rails(res.Config, power.Activity{
		VALUBusyFrac:    res.Counters.VALUBusy / 100,
		MemUnitBusyFrac: res.Counters.MemUnitBusy / 100,
		AchievedGBs:     res.AchievedGBs,
	})
	temp := t.Die.Step(t.Die.DiePower(rails), res.Time)
	if temp > t.PeakC {
		t.PeakC = temp
	}
	switch {
	case temp > t.ThrottleC && t.capLevel > 0:
		t.capLevel--
	case temp < t.ReleaseC && t.capLevel < hw.TunableCUFreq.Levels()-1:
		t.capLevel++
	}
	t.Inner.Observe(kernel, iter, res)
}
