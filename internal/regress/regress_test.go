package regress

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFitRecoversExactLinearModel(t *testing.T) {
	// y = 2 + 3*x0 - 0.5*x1, noiseless.
	var X [][]float64
	var y []float64
	for i := 0; i < 20; i++ {
		x0 := float64(i)
		x1 := float64(i*i%7) - 3
		X = append(X, []float64{x0, x1})
		y = append(y, 2+3*x0-0.5*x1)
	}
	m, err := Fit(X, y, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Intercept, 2, 1e-6) || !almost(m.Coeffs[0], 3, 1e-6) || !almost(m.Coeffs[1], -0.5, 1e-6) {
		t.Errorf("fit = %v", m)
	}
	if m.R2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", m.R2)
	}
	if m.Corr < 0.999999 {
		t.Errorf("Corr = %v, want ~1", m.Corr)
	}
}

func TestFitWithNoiseIsUnbiasedEnough(t *testing.T) {
	// Deterministic pseudo-noise via a simple LCG so the test is stable.
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>40)/float64(1<<24) - 0.5 // ~U(-0.5, 0.5)
	}
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x0, x1 := next()*10, next()*10
		X = append(X, []float64{x0, x1})
		y = append(y, 1+2*x0+4*x1+next()*0.1)
	}
	m, err := Fit(X, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Intercept, 1, 0.05) || !almost(m.Coeffs[0], 2, 0.02) || !almost(m.Coeffs[1], 4, 0.02) {
		t.Errorf("noisy fit = %v", m)
	}
	if m.R2 < 0.99 {
		t.Errorf("R2 = %v", m.R2)
	}
}

func TestFitShapeErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1}, nil); err == nil {
		t.Error("n <= p fit should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}, nil); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1}, nil); err == nil {
		t.Error("mismatched y should error")
	}
}

func TestPredictErrorsOnWrongLength(t *testing.T) {
	m := &Model{Intercept: 1, Coeffs: []float64{1, 2}}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Error("expected error for wrong feature count")
	}
	if _, err := m.Predict(nil); err == nil {
		t.Error("expected error for nil feature vector")
	}
	got, err := m.Predict([]float64{1, 1})
	if err != nil || got != 4 {
		t.Errorf("Predict = %v, %v; want 4, nil", got, err)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	if got := Pearson(a, b); !almost(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	c := []float64{8, 6, 4, 2}
	if got := Pearson(a, c); !almost(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant series correlation = %v, want 0", got)
	}
	if got := Pearson(a, []float64{1}); got != 0 {
		t.Errorf("mismatched lengths = %v, want 0", got)
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 3 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r)
			b[i] = float64(int(r)*int(r)%17) - 8
		}
		p1, p2 := Pearson(a, b), Pearson(b, a)
		return almost(p1, p2, 1e-12) && p1 >= -1-1e-12 && p1 <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fitting y = c (a constant) yields near-zero coefficients.
func TestFitConstantTargetProperty(t *testing.T) {
	f := func(c int8) bool {
		var X [][]float64
		var y []float64
		for i := 0; i < 12; i++ {
			X = append(X, []float64{float64(i), float64((i * 3) % 5)})
			y = append(y, float64(c))
		}
		m, err := Fit(X, y, nil)
		if err != nil {
			return false
		}
		return almost(m.Intercept, float64(c), 1e-4) &&
			almost(m.Coeffs[0], 0, 1e-4) && almost(m.Coeffs[1], 0, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAbsError(t *testing.T) {
	if got := MeanAbsError([]float64{1, 2, 3}, []float64{2, 2, 1}); !almost(got, 1, 1e-12) {
		t.Errorf("MAE = %v, want 1", got)
	}
	if got := MeanAbsError(nil, nil); !math.IsNaN(got) {
		t.Errorf("MAE of empty = %v, want NaN", got)
	}
	if got := MeanAbsError([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("MAE of mismatched = %v, want NaN", got)
	}
}

func TestColumnCorrelations(t *testing.T) {
	X := [][]float64{{1, 4}, {2, 3}, {3, 2}, {4, 1}}
	y := []float64{1, 2, 3, 4}
	got := ColumnCorrelations(X, y)
	if len(got) != 2 || !almost(got[0], 1, 1e-12) || !almost(got[1], -1, 1e-12) {
		t.Errorf("ColumnCorrelations = %v", got)
	}
	if got := ColumnCorrelations(nil, nil); got != nil {
		t.Errorf("empty = %v", got)
	}
}

func TestModelString(t *testing.T) {
	m := &Model{Intercept: 0.06, Coeffs: []float64{0.007, 0.452}, Names: []string{"CtoM", "NormVGPR"}}
	s := m.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
	// Unnamed coefficients should still render.
	m2 := &Model{Intercept: 1, Coeffs: []float64{2}}
	if s := m2.String(); s == "" {
		t.Error("unnamed model String is empty")
	}
}

func TestSolveSingular(t *testing.T) {
	// Two identical feature columns with no ridge would be singular;
	// ridge keeps it solvable, so build a directly-singular system.
	_, err := solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2})
	if err == nil {
		t.Error("expected singular matrix error")
	}
}
