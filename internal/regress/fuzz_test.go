package regress

import (
	"math"
	"testing"
)

// FuzzFitStability feeds the OLS fitter structured-random data and
// asserts it never panics, never returns NaN/Inf coefficients on finite
// input, and that returned models predict finitely.
func FuzzFitStability(f *testing.F) {
	f.Add(int64(1), 12, 0.5, 2.0)
	f.Add(int64(42), 30, -3.0, 0.0)
	f.Add(int64(7), 8, 100.0, -50.0)
	f.Fuzz(func(t *testing.T, seed int64, n int, a, b float64) {
		if n < 4 || n > 200 {
			return
		}
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return
		}
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return
		}
		// Deterministic pseudo-random design from the seed.
		state := uint64(seed)
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>40)/float64(1<<24) - 0.5
		}
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x0, x1 := next()*10, next()*10
			X[i] = []float64{x0, x1}
			y[i] = a*x0 + b*x1 + next()
		}
		m, err := Fit(X, y, nil)
		if err != nil {
			return // singular designs are allowed to fail cleanly
		}
		if math.IsNaN(m.Intercept) || math.IsInf(m.Intercept, 0) {
			t.Fatalf("non-finite intercept: %v", m.Intercept)
		}
		for _, c := range m.Coeffs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("non-finite coefficient: %v", c)
			}
		}
		if p, err := m.Predict([]float64{1, 1}); err != nil || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("bad prediction: %v, %v", p, err)
		}
		if m.R2 > 1+1e-9 {
			t.Fatalf("R2 = %v > 1", m.R2)
		}
	})
}

// FuzzPearsonBounds asserts Pearson stays within [-1, 1] on arbitrary
// finite series.
func FuzzPearsonBounds(f *testing.F) {
	f.Add(int64(3), 10)
	f.Add(int64(99), 50)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 2 || n > 500 {
			return
		}
		state := uint64(seed)
		next := func() float64 {
			state = state*2862933555777941757 + 3037000493
			return float64(int64(state>>33)) / float64(1<<20)
		}
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = next(), next()
		}
		p := Pearson(a, b)
		if math.IsNaN(p) || p < -1-1e-9 || p > 1+1e-9 {
			t.Fatalf("Pearson = %v out of bounds", p)
		}
	})
}
